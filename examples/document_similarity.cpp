// Document similarity estimation (§5.2 of the paper): estimate pairwise
// TF-IDF cosine similarities of a document corpus from small sketches, and
// retrieve the most similar document pairs.
//
//   build/examples/example_document_similarity

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "data/newsgroups.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "vector/vector_ops.h"

using namespace ipsketch;

int main() {
  // 1. A corpus of documents (synthetic 20-Newsgroups stand-in: Zipf
  //    vocabulary, 20 topics, log-normal lengths).
  NewsgroupsOptions ng;
  ng.num_documents = 120;
  ng.seed = 99;
  const auto corpus = GenerateNewsgroupsCorpus(ng).value();

  // 2. Unigram+bigram TF-IDF vectors, L2-normalized so that inner product
  //    equals cosine similarity.
  FeatureOptions features;
  std::vector<std::vector<uint64_t>> docs;
  for (const auto& d : corpus) docs.push_back(IdFeatures(d.token_ids, features));
  TfidfVectorizer vectorizer;
  const auto vectors = vectorizer.FitTransform(docs).value();
  std::printf("corpus: %zu documents, %zu distinct features\n",
              corpus.size(), vectorizer.vocabulary_size());

  // 3. Sketch every document once (256 samples ≈ 385 words ≈ 3 KB each —
  //    each original vector has thousands of non-zeros).
  WmhOptions options;
  options.num_samples = 256;
  options.seed = 4711;
  std::vector<WmhSketch> sketches;
  double avg_nnz = 0.0;
  for (const auto& v : vectors) {
    sketches.push_back(SketchWmh(v, options).value());
    avg_nnz += static_cast<double>(v.nnz());
  }
  std::printf("sketched every document: %.0f avg non-zeros -> %.0f words\n\n",
              avg_nnz / vectors.size(), sketches[0].StorageWords());

  // 4. Estimate all pairwise cosines from sketches and rank.
  struct Pair {
    size_t i, j;
    double estimated;
    double exact;
  };
  std::vector<Pair> pairs;
  double total_abs_error = 0.0;
  for (size_t i = 0; i < sketches.size(); ++i) {
    for (size_t j = i + 1; j < sketches.size(); ++j) {
      const double est =
          EstimateWmhInnerProduct(sketches[i], sketches[j]).value();
      const double exact = Dot(vectors[i], vectors[j]);
      pairs.push_back({i, j, est, exact});
      total_abs_error += std::abs(est - exact);
    }
  }
  std::printf("estimated %zu pairwise cosines, mean |error| = %.4f\n\n",
              pairs.size(), total_abs_error / pairs.size());

  std::sort(pairs.begin(), pairs.end(), [](const Pair& x, const Pair& y) {
    return x.estimated > y.estimated;
  });
  std::printf("top 10 most similar pairs (by sketch estimate):\n");
  std::printf("  %-12s %-8s %-8s %10s %10s %s\n", "pair", "topic_i",
              "topic_j", "est.cos", "exact.cos", "topics match?");
  size_t topic_matches = 0;
  for (size_t k = 0; k < 10 && k < pairs.size(); ++k) {
    const Pair& p = pairs[k];
    const bool same = corpus[p.i].topic == corpus[p.j].topic;
    topic_matches += same;
    std::printf("  (%3zu, %3zu)  %-8zu %-8zu %10.4f %10.4f %s\n", p.i, p.j,
                corpus[p.i].topic, corpus[p.j].topic, p.estimated, p.exact,
                same ? "yes" : "no");
  }
  std::printf("\n%zu/10 of the retrieved pairs share a topic — the sketches\n"
              "preserve the corpus's similarity structure at a fraction of\n"
              "the storage.\n",
              topic_matches);
  return 0;
}
