// The service layer end to end: ingest a corpus of sparse vectors into a
// sharded SketchStore with a thread pool, answer point estimates and top-k
// retrieval through a QueryEngine, and persist/reload the whole catalog —
// the dataset-search deployment shape the paper motivates (§1.2).
//
// The service is family-generic: the store is configured with a *family
// name* from the sketch/family.h registry, and the identical QueryEngine
// code serves a Weighted MinHash catalog and a CountSketch catalog side by
// side below.
//
//   build/example_sketch_service

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/synthetic.h"
#include "service/front_door.h"
#include "service/metrics.h"
#include "service/persistence.h"
#include "service/query_engine.h"
#include "service/sketch_store.h"
#include "service/thread_pool.h"
#include "vector/vector_ops.h"

using namespace ipsketch;

namespace {

constexpr uint64_t kDimension = 100000;
constexpr size_t kCorpusSize = 400;

// A corpus member: a random sparse vector over a large domain.
SparseVector CorpusVector(uint64_t dimension, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(dimension, 300, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(dimension, std::move(entries));
}

SketchStoreOptions StoreOptions(const std::string& family) {
  SketchStoreOptions options;
  options.family = family;  // one-line swap: "wmh" <-> "cs" <-> "kmv" ...
  options.sketch.dimension = kDimension;
  options.sketch.num_samples = 256;
  options.sketch.seed = 7;
  options.num_shards = 16;
  return options;
}

}  // namespace

int main() {
  // 1. A store: 16 shards, a family picked by name from the registry,
  //    every sketch built with the same resolved options.
  SketchStore store = SketchStore::Make(StoreOptions("wmh")).value();
  std::printf("store: family %s, %zu shards, m = %zu, resolved options {%s}\n",
              store.family().name().c_str(), store.num_shards(),
              store.options().sketch.num_samples,
              FamilyOptionsToString(store.options().sketch).c_str());

  // 2. Batch ingest across a thread pool. Sketching dominates the cost and
  //    parallelizes across workers; shard locks are touched only to insert.
  std::vector<std::pair<uint64_t, SparseVector>> batch;
  for (uint64_t id = 0; id < kCorpusSize; ++id) {
    batch.push_back({id, CorpusVector(kDimension, id)});
  }
  ThreadPool pool(4);
  Status ingest = store.BuildAndInsertBatch(batch, &pool);
  std::printf("ingested %zu vectors across %zu threads: %s\n", store.size(),
              pool.num_threads(), ingest.ToString().c_str());

  // 3. Point estimate between two stored vectors — no raw vectors touched.
  QueryEngine engine(&store, &pool);
  std::printf("\n<v17, v42>: exact %.4f, from sketches %.4f\n",
              Dot(batch[17].second, batch[42].second),
              engine.EstimateInnerProduct(17, 42).value());

  // 4. Top-k retrieval: the query is sketched once, then every shard is
  //    scanned in parallel with a private heap per worker.
  const SparseVector query = CorpusVector(kDimension, 42);  // = vector 42
  std::printf("\ntop-5 by estimated inner product against (a copy of) v42:\n");
  const std::vector<QueryHit> top5 = engine.TopK(query, 5).value();
  for (const auto& hit : top5) {
    std::printf("  id %-4llu estimate %8.4f  (exact %8.4f)\n",
                static_cast<unsigned long long>(hit.id), hit.estimate,
                Dot(query, batch[hit.id].second));
  }

  // 5. The same queries, asynchronously: the FrontDoor admits concurrent
  //    callers into a bounded queue, coalesces them into batches that
  //    traverse the catalog once per batch over lock-free store snapshots,
  //    and sheds with Unavailable instead of queueing without bound under
  //    overload. Futures (and callbacks) resolve with exactly the answers
  //    the synchronous engine gives.
  {
    FrontDoor door(&store, &pool);
    FrontDoorFuture<double> pair = door.SubmitEstimate(17, 42);
    std::vector<FrontDoorFuture<std::vector<QueryHit>>> topks;
    for (int i = 0; i < 3; ++i) topks.push_back(door.SubmitTopK(query, 5));
    std::printf("\nasync <v17, v42>: %.4f (same as sync)\n",
                pair.Take().value());
    for (auto& f : topks) {
      if (f.Take().value()[0].id != top5[0].id) return 1;
    }
    std::printf("3 batched async top-5s agree with the synchronous scan\n");
  }

  // 6. The SAME service code, a different family: a CountSketch catalog.
  //    Only the family name in the options changed.
  SketchStore cs_store = SketchStore::Make(StoreOptions("cs")).value();
  if (!cs_store.BuildAndInsertBatch(batch, &pool).ok()) return 1;
  QueryEngine cs_engine(&cs_store, &pool);
  std::printf("\nsame corpus through a '%s' store (mergeable: %s):\n",
              cs_store.family().name().c_str(),
              cs_store.family().supports_merge() ? "yes" : "no");
  const std::vector<QueryHit> cs_top3 = cs_engine.TopK(query, 3).value();
  for (const auto& hit : cs_top3) {
    std::printf("  id %-4llu estimate %8.4f  (exact %8.4f)\n",
                static_cast<unsigned long long>(hit.id), hit.estimate,
                Dot(query, batch[hit.id].second));
  }

  // 7. Persist the whole catalog and reload it; estimates are
  //    byte-identical because sketches serialize as IEEE-754 bit patterns.
  //    LoadSketchStoreAs re-verifies the family tag and options, so a file
  //    from a differently-configured catalog is rejected, not mis-served.
  const std::string path = "/tmp/ipsketch_service_demo.store";
  if (!SaveSketchStore(store, path).ok()) {
    std::printf("\nsave failed\n");
    return 1;
  }
  SketchStore reloaded = LoadSketchStoreAs(path, StoreOptions("wmh")).value();
  QueryEngine engine2(&reloaded, &pool);
  std::printf("\nreloaded %zu sketches from %s\n", reloaded.size(),
              path.c_str());
  std::printf("<v17, v42> after reload: %.17g (before: %.17g)\n",
              engine2.EstimateInnerProduct(17, 42).value(),
              engine.EstimateInnerProduct(17, 42).value());
  const Status wrong = LoadSketchStoreAs(path, StoreOptions("cs")).status();
  std::printf("opening the file as a 'cs' store is refused: %s\n",
              wrong.ToString().c_str());
  std::remove(path.c_str());

  // 8. Compact catalogs: quantize the reloaded full-precision catalog in
  //    place (32-bit hashes + float32 values — exactly what the paper's §5
  //    accounting charges), halving the resident footprint. Ingest ran on
  //    the fast engine at full precision; quantization is a cheap
  //    post-pass, and the SAME QueryEngine code keeps serving.
  const double full_words = reloaded.TotalResidentWords();
  if (!reloaded.CompactifyInPlace("wmh_compact").ok()) return 1;
  const double compact_words = reloaded.TotalResidentWords();
  std::printf("\ncompactified to '%s': %.0f -> %.0f resident words "
              "(%.2fx)\n",
              reloaded.family().name().c_str(), full_words, compact_words,
              compact_words / full_words);
  QueryEngine compact_engine(&reloaded, &pool);
  std::printf("<v17, v42> from the compact catalog: %.4f\n",
              compact_engine.EstimateInnerProduct(17, 42).value());
  const std::vector<QueryHit> compact_top3 =
      compact_engine.TopK(query, 3).value();
  std::printf("top-3 against v42 from the compact catalog:\n");
  for (const auto& hit : compact_top3) {
    std::printf("  id %-4llu estimate %8.4f  (exact %8.4f)\n",
                static_cast<unsigned long long>(hit.id), hit.estimate,
                Dot(query, batch[hit.id].second));
  }
  // Compact stores persist like any other family: the file carries the
  // "wmh_compact" tag and is refused under full-precision expectations.
  const std::string compact_path = "/tmp/ipsketch_service_demo_compact.store";
  if (!SaveSketchStore(reloaded, compact_path).ok()) return 1;
  const Status as_full =
      LoadSketchStoreAs(compact_path, StoreOptions("wmh")).status();
  std::printf("opening the compact file as a 'wmh' store is refused: %s\n",
              as_full.ToString().c_str());
  std::remove(compact_path.c_str());

  // 9. Observability: ask any query for a per-stage trace, and dump the
  //    process-wide metrics every component above recorded into — same text
  //    a /metrics endpoint would serve.
  metrics::QueryTrace trace;
  if (!compact_engine.TopK(query, 3, &trace).ok()) return 1;
  std::printf("\nwhere that top-3 query spent its time:\n  %s\n",
              trace.ToString().c_str());
  std::printf("\nmetrics snapshot (Prometheus text exposition):\n%s",
              metrics::MetricsRegistry::Global().RenderText().c_str());
  return 0;
}
