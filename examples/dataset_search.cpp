// Dataset search (§1.2 of the paper): given a query table, find joinable and
// correlated tables in a catalog using only precomputed sketches — no joins
// are ever materialized.
//
// Recreates the paper's motivating scenario: an analyst holds a table of
// daily NYC taxi ridership for 2022 and searches a data lake for tables
// that (a) join on date and (b) explain ridership fluctuations. A weather
// table (rain suppresses ridership) is hidden among unrelated tables.
//
//   build/examples/example_dataset_search

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "table/join.h"
#include "table/sketch_index.h"

using namespace ipsketch;

namespace {

constexpr uint64_t kDay0 = 20220101;

// Builds the analyst's query and the catalog tables over date-keyed rows.
struct Scenario {
  KeyedColumn taxi;
  std::vector<Table> catalog;
};

Scenario BuildScenario() {
  Xoshiro256StarStar rng(2022);
  std::vector<uint64_t> days_2022;
  std::vector<double> rain, temperature, rides;
  for (uint64_t d = 0; d < 365; ++d) {
    days_2022.push_back(kDay0 + d);
    const double r = std::max(0.0, rng.NextGaussian() + 0.4);  // precipitation
    const double t = 15.0 + 10.0 * std::sin(d / 58.0) + rng.NextGaussian();
    rain.push_back(r);
    temperature.push_back(t);
    // Ridership: baseline minus a strong rain effect plus noise.
    rides.push_back(120000.0 - 25000.0 * r + 800.0 * t +
                    4000.0 * rng.NextGaussian());
  }

  // Weather table covers 1960..2022 (the paper's point: low key overlap
  // with the query, which only spans 2022 — Jaccard ≈ 1/63).
  std::vector<uint64_t> weather_days;
  std::vector<double> weather_rain, weather_temp;
  for (uint64_t year = 0; year < 63; ++year) {
    for (uint64_t d = 0; d < 365; ++d) {
      weather_days.push_back(19600101 + year * 10000 + d);
      if (year == 62) {  // 2022: reuse the values driving ridership
        weather_rain.push_back(rain[d]);
        weather_temp.push_back(temperature[d]);
      } else {
        weather_rain.push_back(std::max(0.0, rng.NextGaussian() + 0.4));
        weather_temp.push_back(15.0 + 10.0 * std::sin(d / 58.0) +
                               rng.NextGaussian());
      }
    }
  }

  // Distractor tables: one over the same dates but uncorrelated values, one
  // over a disjoint key domain entirely.
  std::vector<double> lottery;
  for (size_t i = 0; i < days_2022.size(); ++i) {
    lottery.push_back(rng.NextUnit() * 1000.0);
  }
  std::vector<uint64_t> product_ids;
  std::vector<double> prices;
  for (uint64_t p = 0; p < 2000; ++p) {
    product_ids.push_back(90000000 + p);
    prices.push_back(5.0 + 95.0 * rng.NextUnit());
  }

  Scenario s{
      KeyedColumn::MakeOrDie("taxi_rides_2022", days_2022, rides),
      {},
  };
  s.catalog.push_back(Table::MakeOrDie("weather_1960_2022", weather_days,
                                       {"precipitation", "temperature"},
                                       {weather_rain, weather_temp}));
  s.catalog.push_back(Table::MakeOrDie("lottery_numbers", days_2022,
                                       {"jackpot"}, {lottery}));
  s.catalog.push_back(Table::MakeOrDie("product_prices", product_ids,
                                       {"price"}, {prices}));
  return s;
}

}  // namespace

int main() {
  const Scenario s = BuildScenario();

  // Precompute sketches for every column in the catalog (in a real system
  // this happens offline, once, for the whole data lake).
  ColumnSketchOptions options;
  options.num_samples = 512;
  options.seed = 1234;
  options.key_domain = 100000000;  // covers the yyyymmdd + product domains
  SketchIndex index(options);
  for (const Table& t : s.catalog) {
    if (Status st = index.AddTable(t); !st.ok()) {
      std::fprintf(stderr, "indexing failed: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::printf("catalog: %zu sketched columns from %zu tables\n\n",
              index.size(), s.catalog.size());

  // Search by estimated |post-join correlation| with the taxi column.
  const auto hits = index.Search(s.taxi, RankBy::kAbsCorrelation, 4).value();
  // (ranking uses the standardized-correlation estimate — the plug-in
  // moments variant is hopeless for columns like ride counts whose mean
  // dwarfs their spread; see table/join_estimates.h)
  std::printf("query: %s — top matches by |estimated correlation|:\n",
              s.taxi.name().c_str());
  std::printf("  %-32s %12s %12s %12s\n", "column", "est.size", "est.mean",
              "est.corr");
  for (const auto& hit : hits) {
    std::printf("  %-32s %12.1f %12.1f %12.3f\n", hit.column_name.c_str(),
                hit.stats.size, hit.stats.mean_b,
                hit.stats.standardized_correlation);
  }

  // Verify the winner against an exact join (which the search never ran).
  const auto weather_col =
      s.catalog[0].Column("precipitation").value();
  const auto exact = ComputeJoinStats(s.taxi, weather_col).value();
  std::printf(
      "\nexact join with weather.precipitation (for reference only):\n"
      "  size %zu, mean precip %.2f, correlation %.3f\n",
      exact.size, exact.mean_b, exact.correlation);
  std::printf("\nthe estimated ranking surfaced the weather table without\n"
              "materializing a single join.\n");
  return 0;
}
