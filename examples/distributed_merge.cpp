// Distributed aggregation with mergeable sketches: shards of a dataset are
// sketched independently (as on separate machines), the small sketches are
// merged centrally, and join statistics are estimated against the combined
// data — without any shard ever shipping its rows.
//
// Also demonstrates the trade-off the library documents in sketch/merge.h:
// linear sketches (JL) and KMV merge exactly, while the paper's more
// accurate WMH sketch does not merge — you pick per use case.
//
//   build/examples/example_distributed_merge

#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "sketch/merge.h"
#include "sketch/serialize.h"
#include "vector/vector_ops.h"

using namespace ipsketch;

namespace {

// Shard s covers keys [s·kShardRows, (s+1)·kShardRows).
constexpr size_t kShards = 4;
constexpr uint64_t kShardRows = 5000;
constexpr uint64_t kDomain = 1 << 20;

SparseVector ShardVector(size_t shard, uint64_t seed) {
  Xoshiro256StarStar rng(MixCombine(seed, shard));
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < kShardRows; ++i) {
    entries.push_back({shard * kShardRows + i, rng.NextGaussian() + 0.3});
  }
  return SparseVector::MakeOrDie(kDomain, std::move(entries));
}

}  // namespace

int main() {
  // 1. Each shard sketches its slice of the "events" vector locally and
  //    serializes the sketch — a few KB instead of 5000 rows.
  JlOptions jl;
  jl.num_rows = 1024;
  jl.seed = 77;
  KmvOptions kmv;
  kmv.k = 1024;
  kmv.seed = 77;

  std::vector<std::string> jl_wire, kmv_wire;
  std::vector<SparseVector> shards;
  for (size_t s = 0; s < kShards; ++s) {
    shards.push_back(ShardVector(s, 1));
    jl_wire.push_back(SerializeJl(SketchJl(shards[s], jl).value()));
    kmv_wire.push_back(SerializeKmv(SketchKmv(shards[s], kmv).value()));
  }
  std::printf("each shard ships %zu bytes (JL) / %zu bytes (KMV) instead of "
              "%llu rows\n\n",
              jl_wire[0].size(), kmv_wire[0].size(),
              static_cast<unsigned long long>(kShardRows));

  // 2. The coordinator deserializes and merges — S(a1)+...+S(a4) = S(Σ ai).
  JlSketch jl_total = DeserializeJl(jl_wire[0]).value();
  KmvSketch kmv_total = DeserializeKmv(kmv_wire[0]).value();
  for (size_t s = 1; s < kShards; ++s) {
    jl_total = MergeJl(jl_total, DeserializeJl(jl_wire[s]).value()).value();
    kmv_total =
        MergeKmv(kmv_total, DeserializeKmv(kmv_wire[s]).value()).value();
  }

  // 3. A query vector (e.g. a filter/weight vector) sketched with the same
  //    configuration estimates against the merged whole.
  Xoshiro256StarStar rng(9);
  std::vector<Entry> q_entries;
  for (uint64_t i = 0; i < kShards * kShardRows; i += 3) {
    q_entries.push_back({i, rng.NextUnit()});
  }
  const auto query = SparseVector::MakeOrDie(kDomain, std::move(q_entries));

  SparseVector whole = shards[0];
  for (size_t s = 1; s < kShards; ++s) {
    whole = Add(whole, shards[s]).value();
  }
  const double truth = Dot(whole, query);
  const double scale = whole.Norm() * query.Norm();

  const double jl_est =
      EstimateJlInnerProduct(jl_total, SketchJl(query, jl).value()).value();
  const double kmv_est =
      EstimateKmvInnerProduct(kmv_total, SketchKmv(query, kmv).value())
          .value();

  std::printf("exact <whole, query> = %.1f\n", truth);
  std::printf("merged JL estimate   = %.1f  (scaled error %.4f)\n", jl_est,
              std::fabs(jl_est - truth) / scale);
  std::printf("merged KMV estimate  = %.1f  (scaled error %.4f)\n", kmv_est,
              std::fabs(kmv_est - truth) / scale);
  std::printf(
      "\ntrade-off note: the paper's WMH sketch is more accurate per byte on\n"
      "sparse low-overlap pairs (see bench_fig4_synthetic) but does NOT merge\n"
      "— it normalizes by the vector norm before sampling (sketch/merge.h).\n"
      "Distributed pipelines therefore either sketch shards with WMH and\n"
      "estimate shard-by-shard (inner products are additive over disjoint\n"
      "shards!), or use a mergeable family when a single combined sketch is\n"
      "required.\n");
  return 0;
}
