// Join statistics from sketches: the worked example of Figures 2-3 of the
// paper, end to end. Two tables are reduced to vectors, the vectors to
// sketches, and SIZE/SUM/MEAN of the (never materialized) join are estimated
// from the sketches — alongside the exact values for comparison.
//
//   build/examples/example_join_statistics

#include <cstdio>

#include "table/join.h"
#include "table/join_estimates.h"
#include "vector/vector_ops.h"

using namespace ipsketch;

int main() {
  // The exact T_A and T_B of Figure 2.
  const auto table_a = KeyedColumn::MakeOrDie(
      "V_A", {1, 3, 4, 5, 6, 7, 8, 9, 11},
      {6.0, 2.0, 6.0, 1.0, 4.0, 2.0, 2.0, 8.0, 3.0});
  const auto table_b = KeyedColumn::MakeOrDie(
      "V_B", {2, 4, 5, 8, 10, 11, 12, 15, 16},
      {1.0, 5.0, 1.0, 2.0, 4.0, 2.5, 6.0, 6.0, 3.7});

  const auto exact = ComputeJoinStats(table_a, table_b).value();
  std::printf("Figure 2 ground truth (exact one-to-one join):\n");
  std::printf("  SIZE = %zu   SUM(V_A) = %.1f   SUM(V_B) = %.1f   "
              "MEAN(V_A) = %.1f\n\n",
              exact.size, exact.sum_a, exact.sum_b, exact.mean_a);

  // Sketch each column's three encodings (x_1[K], x_V, x_V²). The tiny
  // Figure-2 tables need only a tiny key domain; production catalogs use
  // 2^32 or 2^64 — the sketch size would not change.
  ColumnSketchOptions options;
  options.num_samples = 512;
  options.seed = 31;
  options.key_domain = 32;
  const auto sketch_a = SketchColumn(table_a, options).value();
  const auto sketch_b = SketchColumn(table_b, options).value();

  const auto est = EstimateJoinStats(sketch_a, sketch_b).value();
  std::printf("sketch-based estimates (m = %zu samples per encoding):\n",
              options.num_samples);
  std::printf("  SIZE ~= %.2f   SUM(V_A) ~= %.2f   SUM(V_B) ~= %.2f   "
              "MEAN(V_A) ~= %.2f\n",
              est.size, est.sum_a, est.sum_b, est.mean_a);
  std::printf("  post-join <V_A, V_B> ~= %.2f   (exact %.1f)\n\n",
              est.inner_product, exact.inner_product);

  std::printf("reductions used (Figure 3):\n");
  std::printf("  SIZE        = <x_1[K_A], x_1[K_B]>\n");
  std::printf("  SUM(V_A)    = <x_V_A,    x_1[K_B]>\n");
  std::printf("  MEAN(V_A)   = SUM / SIZE\n");
  std::printf("  <V_A, V_B>  = <x_V_A,    x_V_B>\n");
  std::printf("\nnote: tiny tables are the hardest case for sketches (every\n"
              "sample matters); accuracy here is limited by m, while on\n"
              "thousand-row tables the same m gives percent-level errors —\n"
              "see tests/join_estimates_test.cc.\n");
  return 0;
}
