// Quickstart: sketch two sparse vectors independently, then estimate their
// inner product from the sketches alone — the core workflow of the paper.
//
// Sketching goes through the SketchFamily registry (sketch/family.h): the
// method is picked *by name*, so swapping Weighted MinHash for CountSketch
// (or JL, MH, KMV, ICWS) is a one-line change.
//
//   build/examples/example_quickstart

#include <cmath>
#include <cstdio>

#include "data/synthetic.h"
#include "sketch/estimator_registry.h"
#include "sketch/family.h"
#include "vector/vector_ops.h"

using namespace ipsketch;

int main() {
  // 1. Two sparse vectors over a large domain. In a real system these
  //    would live on different machines or be columns of different tables;
  //    here we generate the paper's §5.1 synthetic workload.
  SyntheticPairOptions gen;
  gen.dimension = 10000;  // logical dimension n (can be 2^32, 2^64, ...)
  gen.nnz = 2000;         // non-zeros per vector
  gen.overlap = 0.05;     // only 5% of the non-zeros are shared
  gen.seed = 7;
  const VectorPair pair = GenerateSyntheticPair(gen).value();

  std::printf("a: %zu non-zeros, ||a|| = %.2f\n", pair.a.nnz(), pair.a.Norm());
  std::printf("b: %zu non-zeros, ||b|| = %.2f\n", pair.b.nnz(), pair.b.Norm());
  const double truth = Dot(pair.a, pair.b);
  std::printf("exact <a,b> = %.4f\n\n", truth);

  // 2. Pick a sketch family from the registry BY NAME. This is the only
  //    line that changes to swap methods — try "cs" for CountSketch.
  const char* kFamilyName = "wmh";  // one-line swap: "wmh" <-> "cs"
  FamilyOptions options;
  options.dimension = gen.dimension;
  options.num_samples = 256;  // m: error decays as 1/sqrt(m)
  options.seed = 42;          // sketches are comparable iff seeds match
  auto family = MakeFamily(kFamilyName, options).value();

  // 3. Sketch each vector INDEPENDENTLY — the vectors never meet until
  //    estimation time — and estimate from the sketches alone.
  auto sketcher = family->MakeSketcher().value();
  auto sketch_a = family->NewSketch();
  auto sketch_b = family->NewSketch();
  if (!sketcher->Sketch(pair.a, sketch_a.get()).ok() ||
      !sketcher->Sketch(pair.b, sketch_b.get()).ok()) {
    std::printf("sketching failed\n");
    return 1;
  }
  std::printf("family %-4s (%s): %.1f x 64-bit words per sketch, merge %s\n",
              family->name().c_str(), family->display_name().c_str(),
              family->StorageWords(*sketch_a).value(),
              family->supports_merge() ? "yes" : "no");

  const double estimate = family->Estimate(*sketch_a, *sketch_b).value();
  std::printf("%s estimate  = %.4f\n", family->display_name().c_str(),
              estimate);
  std::printf("scaled error  = %.5f  (error / ||a||/||b|| scale)\n\n",
              std::abs(estimate - truth) / (pair.a.Norm() * pair.b.Norm()));

  // 4. Why Weighted MinHash? Compare every registered family at the same
  //    400-word storage budget. With 5% overlap, Theorem 2's error scale is
  //    far smaller than Fact 1's, and the sampling methods win.
  std::printf("all families at a 400-word budget (scaled error, 5 trials):\n");
  std::printf("  theoretical scales: Fact-1 = 1.0, Theorem-2 = %.3f\n",
              Theorem2Bound(pair.a, pair.b) / Fact1Bound(pair.a, pair.b));
  for (const FamilyInfo& info : RegisteredFamilies()) {
    auto method = MakeFamilyEvaluator(info.name).value();
    double err = 0.0;
    for (uint64_t trial = 0; trial < 5; ++trial) {
      method->Prepare(pair.a, pair.b, 400, 100 + trial);
      err += std::abs(method->Estimate(400).value() - truth) /
             (pair.a.Norm() * pair.b.Norm());
    }
    std::printf("  %-5s mean scaled error = %.5f\n",
                method->name().c_str(), err / 5.0);
  }
  return 0;
}
