// Quickstart: sketch two sparse vectors independently, then estimate their
// inner product from the sketches alone — the core workflow of the paper.
//
//   build/examples/example_quickstart

#include <cstdio>

#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "data/synthetic.h"
#include "sketch/estimator_registry.h"
#include "vector/vector_ops.h"

using namespace ipsketch;

int main() {
  // 1. Two sparse vectors over a large domain. In a real system these
  //    would live on different machines or be columns of different tables;
  //    here we generate the paper's §5.1 synthetic workload.
  SyntheticPairOptions gen;
  gen.dimension = 10000;  // logical dimension n (can be 2^32, 2^64, ...)
  gen.nnz = 2000;         // non-zeros per vector
  gen.overlap = 0.05;     // only 5% of the non-zeros are shared
  gen.seed = 7;
  const VectorPair pair = GenerateSyntheticPair(gen).value();

  std::printf("a: %zu non-zeros, ||a|| = %.2f\n", pair.a.nnz(), pair.a.Norm());
  std::printf("b: %zu non-zeros, ||b|| = %.2f\n", pair.b.nnz(), pair.b.Norm());
  const double truth = Dot(pair.a, pair.b);
  std::printf("exact <a,b> = %.4f\n\n", truth);

  // 2. Sketch each vector INDEPENDENTLY. Only (num_samples, seed, L) must
  //    match; the vectors never meet until estimation time.
  WmhOptions options;
  options.num_samples = 256;  // m: error decays as 1/sqrt(m)
  options.seed = 42;          // sketches are comparable iff seeds match
  const WmhSketch sketch_a = SketchWmh(pair.a, options).value();
  const WmhSketch sketch_b = SketchWmh(pair.b, options).value();
  std::printf("each sketch: m = %zu samples, %.1f x 64-bit words\n",
              sketch_a.num_samples(), sketch_a.StorageWords());

  // 3. Estimate the inner product from the sketches (Algorithm 5).
  const double estimate = EstimateWmhInnerProduct(sketch_a, sketch_b).value();
  std::printf("WMH estimate  = %.4f\n", estimate);
  std::printf("scaled error  = %.5f  (error / ||a||/||b|| scale)\n\n",
              std::abs(estimate - truth) / (pair.a.Norm() * pair.b.Norm()));

  // 4. Why Weighted MinHash? Compare every method at the same 400-word
  //    storage budget. With 5% overlap, Theorem 2's error scale is far
  //    smaller than Fact 1's, and the sampling methods win.
  std::printf("all methods at a 400-word budget (scaled error, 5 trials):\n");
  std::printf("  theoretical scales: Fact-1 = 1.0, Theorem-2 = %.3f\n",
              Theorem2Bound(pair.a, pair.b) / Fact1Bound(pair.a, pair.b));
  for (auto& method : MakeExtendedEvaluators()) {
    double err = 0.0;
    for (uint64_t trial = 0; trial < 5; ++trial) {
      method->Prepare(pair.a, pair.b, 400, 100 + trial);
      err += std::abs(method->Estimate(400).value() - truth) /
             (pair.a.Norm() * pair.b.Norm());
    }
    std::printf("  %-5s mean scaled error = %.5f\n", method->name().c_str(),
                err / 5.0);
  }
  return 0;
}
