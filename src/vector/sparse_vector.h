// Sparse vector representation shared by every sketch in the library.
//
// All sketching methods in the paper (linear and sampling-based alike) only
// touch the non-zero entries of their input, and the motivating applications
// (dataset search, §1.2) produce vectors whose logical dimension can be as
// large as the key domain (2^32 or 2^64) while only thousands of entries are
// non-zero. `SparseVector` therefore stores a sorted coordinate list of
// (index, value) pairs and never materializes the dense form.

#ifndef IPSKETCH_VECTOR_SPARSE_VECTOR_H_
#define IPSKETCH_VECTOR_SPARSE_VECTOR_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace ipsketch {

/// One non-zero coordinate of a sparse vector.
struct Entry {
  uint64_t index = 0;
  double value = 0.0;

  friend bool operator==(const Entry& a, const Entry& b) {
    return a.index == b.index && a.value == b.value;
  }
};

/// Immutable sparse vector over the index domain [0, dimension).
///
/// Entries are stored sorted by index with no duplicates and no explicit
/// zeros; construction enforces these invariants. The logical `dimension`
/// bounds the index domain — it matters for hashing (which hashes indices,
/// not positions) and for the discretization analysis (L must scale with n).
class SparseVector {
 public:
  /// An empty vector of dimension 0.
  SparseVector() = default;

  /// Builds a vector from unordered (index, value) pairs.
  /// Fails with InvalidArgument on duplicate indices or out-of-range indices;
  /// entries with value exactly 0 are dropped.
  static Result<SparseVector> Make(uint64_t dimension, std::vector<Entry> entries);

  /// `Make` that aborts on error — for literals in tests and examples.
  static SparseVector MakeOrDie(uint64_t dimension, std::vector<Entry> entries);

  /// Builds from a dense array; dimension is `dense.size()`.
  static SparseVector FromDense(const std::vector<double>& dense);

  /// Materializes the dense form (tests and tiny examples only).
  /// Requires dimension() to fit in memory.
  std::vector<double> ToDense() const;

  /// Logical dimension n of the vector.
  uint64_t dimension() const { return dimension_; }

  /// Number of stored (non-zero) entries.
  size_t nnz() const { return entries_.size(); }

  /// True iff there are no non-zero entries.
  bool empty() const { return entries_.empty(); }

  /// The sorted non-zero entries.
  const std::vector<Entry>& entries() const { return entries_; }

  /// Value at `index` (0 if not stored). Binary search, O(log nnz).
  double Get(uint64_t index) const;

  /// Euclidean norm ‖a‖.
  double Norm() const;
  /// Squared Euclidean norm ‖a‖².
  double SquaredNorm() const;
  /// ℓ1 norm ‖a‖₁.
  double L1Norm() const;
  /// ℓ∞ norm ‖a‖∞ = max |a[i]|.
  double InfNorm() const;

  /// Returns this vector scaled by `factor` (entries that become 0 stay,
  /// scaling by 0 yields an empty vector).
  SparseVector Scaled(double factor) const;

  /// Returns the unit-norm version a/‖a‖. Fails on the zero vector.
  Result<SparseVector> Normalized() const;

  /// True iff both vectors have the same dimension and identical entries.
  friend bool operator==(const SparseVector& a, const SparseVector& b) {
    return a.dimension_ == b.dimension_ && a.entries_ == b.entries_;
  }

  /// Compact debug rendering, e.g. "[3: 1.5, 7: -2]  (dim 16)".
  std::string DebugString() const;

 private:
  SparseVector(uint64_t dimension, std::vector<Entry> entries)
      : dimension_(dimension), entries_(std::move(entries)) {}

  uint64_t dimension_ = 0;
  std::vector<Entry> entries_;  // sorted by index, values non-zero
};

}  // namespace ipsketch

#endif  // IPSKETCH_VECTOR_SPARSE_VECTOR_H_
