#include "vector/sparse_vector.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ipsketch {

Result<SparseVector> SparseVector::Make(uint64_t dimension,
                                        std::vector<Entry> entries) {
  std::sort(entries.begin(), entries.end(),
            [](const Entry& a, const Entry& b) { return a.index < b.index; });
  std::vector<Entry> kept;
  kept.reserve(entries.size());
  for (size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    if (e.index >= dimension) {
      return Status::InvalidArgument("entry index " + std::to_string(e.index) +
                                     " >= dimension " +
                                     std::to_string(dimension));
    }
    if (i + 1 < entries.size() && entries[i + 1].index == e.index) {
      return Status::InvalidArgument("duplicate index " +
                                     std::to_string(e.index));
    }
    if (!std::isfinite(e.value)) {
      return Status::InvalidArgument("non-finite value at index " +
                                     std::to_string(e.index));
    }
    if (e.value != 0.0) kept.push_back(e);
  }
  return SparseVector(dimension, std::move(kept));
}

SparseVector SparseVector::MakeOrDie(uint64_t dimension,
                                     std::vector<Entry> entries) {
  auto r = Make(dimension, std::move(entries));
  IPS_CHECK(r.ok());
  return std::move(r).value();
}

SparseVector SparseVector::FromDense(const std::vector<double>& dense) {
  std::vector<Entry> entries;
  for (size_t i = 0; i < dense.size(); ++i) {
    if (dense[i] != 0.0) entries.push_back({i, dense[i]});
  }
  return SparseVector(dense.size(), std::move(entries));
}

std::vector<double> SparseVector::ToDense() const {
  std::vector<double> dense(dimension_, 0.0);
  for (const Entry& e : entries_) dense[e.index] = e.value;
  return dense;
}

double SparseVector::Get(uint64_t index) const {
  auto it = std::lower_bound(
      entries_.begin(), entries_.end(), index,
      [](const Entry& e, uint64_t idx) { return e.index < idx; });
  if (it != entries_.end() && it->index == index) return it->value;
  return 0.0;
}

double SparseVector::Norm() const { return std::sqrt(SquaredNorm()); }

double SparseVector::SquaredNorm() const {
  double s = 0.0;
  for (const Entry& e : entries_) s += e.value * e.value;
  return s;
}

double SparseVector::L1Norm() const {
  double s = 0.0;
  for (const Entry& e : entries_) s += std::fabs(e.value);
  return s;
}

double SparseVector::InfNorm() const {
  double s = 0.0;
  for (const Entry& e : entries_) s = std::max(s, std::fabs(e.value));
  return s;
}

SparseVector SparseVector::Scaled(double factor) const {
  if (factor == 0.0) return SparseVector(dimension_, {});
  std::vector<Entry> scaled = entries_;
  for (Entry& e : scaled) e.value *= factor;
  return SparseVector(dimension_, std::move(scaled));
}

Result<SparseVector> SparseVector::Normalized() const {
  const double norm = Norm();
  if (norm == 0.0) {
    return Status::FailedPrecondition("cannot normalize the zero vector");
  }
  return Scaled(1.0 / norm);
}

std::string SparseVector::DebugString() const {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (i) os << ", ";
    os << entries_[i].index << ": " << entries_[i].value;
    if (i >= 16) {
      os << ", ...";
      break;
    }
  }
  os << "]  (dim " << dimension_ << ", nnz " << entries_.size() << ")";
  return os.str();
}

}  // namespace ipsketch
