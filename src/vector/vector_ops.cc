#include "vector/vector_ops.h"

#include <algorithm>
#include <cmath>

namespace ipsketch {
namespace {

// Invokes fn(a_value, b_value) for every index in the support intersection.
template <typename Fn>
void ForEachIntersecting(const SparseVector& a, const SparseVector& b, Fn fn) {
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  size_t i = 0, j = 0;
  while (i < ea.size() && j < eb.size()) {
    if (ea[i].index < eb[j].index) {
      ++i;
    } else if (eb[j].index < ea[i].index) {
      ++j;
    } else {
      fn(ea[i], eb[j]);
      ++i;
      ++j;
    }
  }
}

}  // namespace

double Dot(const SparseVector& a, const SparseVector& b) {
  double s = 0.0;
  ForEachIntersecting(
      a, b, [&](const Entry& x, const Entry& y) { s += x.value * y.value; });
  return s;
}

size_t SupportIntersectionSize(const SparseVector& a, const SparseVector& b) {
  size_t n = 0;
  ForEachIntersecting(a, b, [&](const Entry&, const Entry&) { ++n; });
  return n;
}

size_t SupportUnionSize(const SparseVector& a, const SparseVector& b) {
  return a.nnz() + b.nnz() - SupportIntersectionSize(a, b);
}

double SupportJaccard(const SparseVector& a, const SparseVector& b) {
  const size_t u = SupportUnionSize(a, b);
  if (u == 0) return 0.0;
  return static_cast<double>(SupportIntersectionSize(a, b)) /
         static_cast<double>(u);
}

double OverlapRatio(const SparseVector& a, const SparseVector& b) {
  const size_t m = std::max(a.nnz(), b.nnz());
  if (m == 0) return 0.0;
  return static_cast<double>(SupportIntersectionSize(a, b)) /
         static_cast<double>(m);
}

SparseVector RestrictToIntersection(const SparseVector& a,
                                    const SparseVector& b) {
  std::vector<Entry> kept;
  ForEachIntersecting(
      a, b, [&](const Entry& x, const Entry&) { kept.push_back(x); });
  return SparseVector::MakeOrDie(a.dimension(), std::move(kept));
}

IntersectionNorms ComputeIntersectionNorms(const SparseVector& a,
                                           const SparseVector& b) {
  double sa = 0.0, sb = 0.0;
  ForEachIntersecting(a, b, [&](const Entry& x, const Entry& y) {
    sa += x.value * x.value;
    sb += y.value * y.value;
  });
  return {std::sqrt(sa), std::sqrt(sb)};
}

double Fact1Bound(const SparseVector& a, const SparseVector& b) {
  return a.Norm() * b.Norm();
}

double Theorem2Bound(const SparseVector& a, const SparseVector& b) {
  const IntersectionNorms in = ComputeIntersectionNorms(a, b);
  return std::max(in.a_norm * b.Norm(), a.Norm() * in.b_norm);
}

double CosineSimilarity(const SparseVector& a, const SparseVector& b) {
  const double na = a.Norm();
  const double nb = b.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

Result<SparseVector> Add(const SparseVector& a, const SparseVector& b) {
  if (a.dimension() != b.dimension()) {
    return Status::InvalidArgument("dimension mismatch in Add");
  }
  std::vector<Entry> out;
  out.reserve(a.nnz() + b.nnz());
  const auto& ea = a.entries();
  const auto& eb = b.entries();
  size_t i = 0, j = 0;
  while (i < ea.size() || j < eb.size()) {
    if (j == eb.size() || (i < ea.size() && ea[i].index < eb[j].index)) {
      out.push_back(ea[i++]);
    } else if (i == ea.size() || eb[j].index < ea[i].index) {
      out.push_back(eb[j++]);
    } else {
      const double v = ea[i].value + eb[j].value;
      if (v != 0.0) out.push_back({ea[i].index, v});
      ++i;
      ++j;
    }
  }
  return SparseVector::Make(a.dimension(), std::move(out));
}

Result<SparseVector> Hadamard(const SparseVector& a, const SparseVector& b) {
  if (a.dimension() != b.dimension()) {
    return Status::InvalidArgument("dimension mismatch in Hadamard");
  }
  std::vector<Entry> out;
  ForEachIntersecting(a, b, [&](const Entry& x, const Entry& y) {
    const double v = x.value * y.value;
    if (v != 0.0) out.push_back({x.index, v});
  });
  return SparseVector::Make(a.dimension(), std::move(out));
}

SparseVector Squared(const SparseVector& a) {
  std::vector<Entry> out = a.entries();
  for (Entry& e : out) e.value *= e.value;
  return SparseVector::MakeOrDie(a.dimension(), std::move(out));
}

}  // namespace ipsketch
