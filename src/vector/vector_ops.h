// Pairwise operations on sparse vectors: exact inner products, support
// algebra, and the error-bound quantities from Fact 1 and Theorem 2.

#ifndef IPSKETCH_VECTOR_VECTOR_OPS_H_
#define IPSKETCH_VECTOR_VECTOR_OPS_H_

#include <cstdint>

#include "vector/sparse_vector.h"

namespace ipsketch {

/// Exact inner product ⟨a, b⟩ via sorted-merge over non-zeros.
/// O(nnz(a) + nnz(b)).
double Dot(const SparseVector& a, const SparseVector& b);

/// |I| where I = {i : a[i] != 0 and b[i] != 0} (support intersection).
size_t SupportIntersectionSize(const SparseVector& a, const SparseVector& b);

/// |A ∪ B| over the supports.
size_t SupportUnionSize(const SparseVector& a, const SparseVector& b);

/// Jaccard similarity |A ∩ B| / |A ∪ B| of the supports (0 if both empty).
double SupportJaccard(const SparseVector& a, const SparseVector& b);

/// The paper's "overlap ratio": fraction of each vector's non-zeros that are
/// shared, |A ∩ B| / max(|A|, |B|) (0 if both empty). §5.1 sweeps this.
double OverlapRatio(const SparseVector& a, const SparseVector& b);

/// a restricted to the intersection of supports: a_I (Theorem 2 notation).
SparseVector RestrictToIntersection(const SparseVector& a,
                                    const SparseVector& b);

/// ‖a_I‖ and ‖b_I‖ in one merge pass.
struct IntersectionNorms {
  double a_norm = 0.0;  ///< ‖a_I‖
  double b_norm = 0.0;  ///< ‖b_I‖
};
IntersectionNorms ComputeIntersectionNorms(const SparseVector& a,
                                           const SparseVector& b);

/// The linear-sketching error scale of Fact 1: ‖a‖·‖b‖.
double Fact1Bound(const SparseVector& a, const SparseVector& b);

/// The WMH error scale of Theorem 2: max(‖a_I‖‖b‖, ‖a‖‖b_I‖).
/// Always ≤ Fact1Bound.
double Theorem2Bound(const SparseVector& a, const SparseVector& b);

/// Cosine similarity ⟨a,b⟩ / (‖a‖‖b‖); 0 if either vector is zero.
double CosineSimilarity(const SparseVector& a, const SparseVector& b);

/// Element-wise sum a + b (dimension must match).
Result<SparseVector> Add(const SparseVector& a, const SparseVector& b);

/// Element-wise (Hadamard) product a ⊙ b (dimension must match).
Result<SparseVector> Hadamard(const SparseVector& a, const SparseVector& b);

/// Element-wise square a², used to sketch post-join second moments (§1.2,
/// "Sketching other vector transformations like S((x_VB)²)").
SparseVector Squared(const SparseVector& a);

}  // namespace ipsketch

#endif  // IPSKETCH_VECTOR_VECTOR_OPS_H_
