#include "sketch/kmv.h"

#include <algorithm>

#include "common/hash.h"
#include "core/simd/dispatch.h"

namespace ipsketch {

Status KmvOptions::Validate() const {
  if (k == 0) return Status::InvalidArgument("k must be positive");
  return Status::Ok();
}

Result<KmvSketch> SketchKmv(const SparseVector& a, const KmvOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  KmvSketch sketch;
  sketch.k = options.k;
  sketch.seed = options.seed;
  sketch.dimension = a.dimension();
  sketch.hash_kind = options.hash_kind;

  const IndexHasher h(options.hash_kind, options.seed, /*stream=*/0);
  sketch.samples.reserve(std::min(options.k, a.nnz()));
  for (const Entry& e : a.entries()) {
    sketch.samples.push_back({h.HashUnit(e.index), e.value});
  }
  if (sketch.samples.size() > options.k) {
    std::nth_element(sketch.samples.begin(),
                     sketch.samples.begin() + options.k - 1,
                     sketch.samples.end(),
                     [](const KmvSketch::Sample& x, const KmvSketch::Sample& y) {
                       return x.hash < y.hash;
                     });
    sketch.samples.resize(options.k);
  }
  std::sort(sketch.samples.begin(), sketch.samples.end(),
            [](const KmvSketch::Sample& x, const KmvSketch::Sample& y) {
              return x.hash < y.hash;
            });
  return sketch;
}

Result<double> EstimateKmvInnerProduct(const KmvSketch& a,
                                       const KmvSketch& b) {
  if (a.k != b.k) return Status::InvalidArgument("sketch capacities differ");
  if (a.k == 0) return Status::InvalidArgument("sketches are empty");
  if (a.seed != b.seed) return Status::InvalidArgument("sketch seeds differ");
  if (a.hash_kind != b.hash_kind) {
    return Status::InvalidArgument("sketch hash families differ");
  }
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }

  // Merge the two ascending hash lists into the distinct union, tracking
  // which hashes are present in both sketches (equal hashes mean equal
  // indices, up to 2^-61 collision probability). The match products are
  // written into a contiguous array — 0.0 for union-only entries — so the
  // accumulation below runs through the dispatched sum kernel.
  std::vector<double> hashes;
  std::vector<double> products;  // value_a · value_b when matched, else 0.0
  hashes.reserve(a.samples.size() + b.samples.size());
  products.reserve(a.samples.size() + b.samples.size());
  size_t i = 0, j = 0;
  while (i < a.samples.size() || j < b.samples.size()) {
    if (j == b.samples.size() ||
        (i < a.samples.size() && a.samples[i].hash < b.samples[j].hash)) {
      hashes.push_back(a.samples[i].hash);
      products.push_back(0.0);
      ++i;
    } else if (i == a.samples.size() ||
               b.samples[j].hash < a.samples[i].hash) {
      hashes.push_back(b.samples[j].hash);
      products.push_back(0.0);
      ++j;
    } else {
      hashes.push_back(a.samples[i].hash);
      products.push_back(a.samples[i].value * b.samples[j].value);
      ++i;
      ++j;
    }
  }

  if (a.exhaustive() && b.exhaustive()) {
    // Both supports were retained whole: the matched products are exactly
    // the non-zero terms of ⟨a, b⟩.
    return simd::ActiveKernel().sum_f64(products.data(), products.size());
  }

  const size_t k_prime = std::min(a.k, hashes.size());
  if (k_prime < 2) return 0.0;
  // ζ = k'-th smallest union hash; union ≈ (k'−1)/ζ. The k'−1 entries below
  // ζ are a uniform without-replacement sample of the union.
  const double zeta = hashes[k_prime - 1];
  if (zeta <= 0.0) return Status::Internal("degenerate KMV threshold");
  const double union_est = static_cast<double>(k_prime - 1) / zeta;
  const double match_sum =
      simd::ActiveKernel().sum_f64(products.data(), k_prime - 1);
  return union_est / static_cast<double>(k_prime - 1) * match_sum;
}

KmvSketch TruncatedKmv(const KmvSketch& sketch, size_t k_prime) {
  IPS_CHECK(k_prime > 0 && k_prime <= sketch.k);
  KmvSketch out = sketch;
  out.k = k_prime;
  if (out.samples.size() > k_prime) out.samples.resize(k_prime);
  return out;
}

}  // namespace ipsketch
