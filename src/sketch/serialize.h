// Binary (de)serialization for every sketch type.
//
// The point of inner product sketching is that sketches are *stored* (in a
// dataset-search catalog) or *shipped* (between machines) and compared much
// later, so a stable wire format is part of the public API. The format is:
//
//   [magic u32][version u8][type u8][payload ...]
//
// with all integers little-endian and doubles as IEEE-754 bit patterns.
// Deserialization validates the magic, version, type tag, and payload
// length, returning InvalidArgument on any mismatch — corrupted bytes never
// produce a silently wrong sketch.
//
// Note that the wire sizes here are engineering-faithful but not identical
// to the paper's §5 *accounting* model (which charges 32 bits per stored
// hash); quantize.h provides the compact encodings.

#ifndef IPSKETCH_SKETCH_SERIALIZE_H_
#define IPSKETCH_SKETCH_SERIALIZE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/icws.h"
#include "core/wmh_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/jl_sketch.h"
#include "sketch/kmv.h"
#include "sketch/minhash.h"
#include "sketch/quantize.h"
#include "sketch/simhash.h"

namespace ipsketch {
namespace wire {

/// Little-endian wire primitives shared by the sketch serializers below and
/// by higher-level container formats (service/persistence.cc frames whole
/// stores with them). Integers are little-endian; doubles are IEEE-754 bit
/// patterns; byte strings are u64-length-prefixed.
void AppendU8(std::string* out, uint8_t v);
void AppendU32(std::string* out, uint32_t v);
void AppendU64(std::string* out, uint64_t v);
void AppendDouble(std::string* out, double v);
void AppendBytes(std::string* out, std::string_view bytes);

/// Bounds-checked sequential decoder over a byte view. Every read returns
/// InvalidArgument instead of walking off the end, so corrupted or truncated
/// input is always a recoverable error.
class Reader {
 public:
  explicit Reader(std::string_view bytes) : bytes_(bytes) {}

  Status ReadU8(uint8_t* v);
  Status ReadU32(uint32_t* v);
  Status ReadU64(uint64_t* v);
  Status ReadDouble(double* v);
  /// Reads a u64-length-prefixed byte string as a view into the input.
  Status ReadBytes(std::string_view* bytes);

  /// InvalidArgument unless the input is fully consumed.
  Status ExpectEnd() const;
  /// Bytes not yet consumed.
  size_t Remaining() const { return bytes_.size() - pos_; }

 private:
  std::string_view bytes_;
  size_t pos_ = 0;
};

/// The one place decode-time length fields turn into allocations. Every
/// count is validated against the bytes actually present *before* anything
/// is resized — `count · elem_size ≤ Remaining()`, checked in division form
/// so the product can never wrap a u64 — which caps every allocation at the
/// input size itself: a decoder fed N bytes can never be tricked into
/// allocating more than O(N), no matter what its length fields claim.
///
/// All untrusted-input decoders (sketch payloads, FamilyOptions blocks,
/// store files) route through this class; ad-hoc `Remaining() / k`
/// arithmetic in individual decoders is a bug.
class BoundedReader : public Reader {
 public:
  explicit BoundedReader(std::string_view bytes) : Reader(bytes) {}

  /// Reads a u64 element count and rejects it unless `*n · elem_size` bytes
  /// remain. `elem_size` is the wire size of one element (> 0).
  Status ReadCount(size_t elem_size, uint64_t* n);

  /// Validates a 2-D shape read from the wire: `rows · cols` elements of
  /// `elem_size` bytes each must fit in the remaining input, with no
  /// intermediate product ever overflowing (division form throughout).
  Status CheckShape(uint64_t rows, uint64_t cols, size_t elem_size);

  /// Length-prefixed vector reads: u64 count (validated via ReadCount), then
  /// the elements. Doubles/floats travel as IEEE-754 bit patterns.
  Status ReadDoubles(std::vector<double>* xs);
  Status ReadU64s(std::vector<uint64_t>* xs);
  Status ReadU32s(std::vector<uint32_t>* xs);
  Status ReadF32s(std::vector<float>* xs);
};

}  // namespace wire

/// Serializes a Weighted MinHash sketch.
std::string SerializeWmh(const WmhSketch& sketch);
/// Parses a Weighted MinHash sketch; InvalidArgument on malformed input.
/// Version-1 payloads predate the engine field and decode with
/// `engine = kActiveIndex`; `*v1_payload` (when non-null) reports that the
/// payload was engine-less, so a caller that knows the true v1-era engine
/// (e.g. a store file's header) can adopt it instead — see
/// WmhFamily::Deserialize.
Result<WmhSketch> DeserializeWmh(std::string_view bytes,
                                 bool* v1_payload = nullptr);

std::string SerializeMh(const MhSketch& sketch);
Result<MhSketch> DeserializeMh(std::string_view bytes);

std::string SerializeKmv(const KmvSketch& sketch);
Result<KmvSketch> DeserializeKmv(std::string_view bytes);

std::string SerializeJl(const JlSketch& sketch);
Result<JlSketch> DeserializeJl(std::string_view bytes);

std::string SerializeCountSketch(const CountSketch& sketch);
Result<CountSketch> DeserializeCountSketch(std::string_view bytes);

std::string SerializeIcws(const IcwsSketch& sketch);
Result<IcwsSketch> DeserializeIcws(std::string_view bytes);

std::string SerializeSimHash(const SimHashSketch& sketch);
Result<SimHashSketch> DeserializeSimHash(std::string_view bytes);

/// Serializes a compact (32-bit hash, float32 value) WMH sketch. The wire
/// form carries the engine byte, exactly as full-precision WMH payloads do:
/// compact sketches are only comparable across equal engines. These tags
/// are new in wire version 2, so no version-1 payload exists for them and
/// none is accepted.
std::string SerializeCompactWmh(const CompactWmhSketch& sketch);
Result<CompactWmhSketch> DeserializeCompactWmh(std::string_view bytes);

/// Serializes a b-bit fingerprint WMH sketch (bits validated to [1, 32] on
/// decode; fingerprints must fit the declared width).
std::string SerializeBbitWmh(const BbitWmhSketch& sketch);
Result<BbitWmhSketch> DeserializeBbitWmh(std::string_view bytes);

/// Identifies which sketch type a serialized blob holds without parsing the
/// payload. Returns NotFound for non-sketch bytes.
enum class SketchTypeTag : uint8_t {
  kWmh = 1,
  kMh = 2,
  kKmv = 3,
  kJl = 4,
  kCountSketch = 5,
  kIcws = 6,
  kSimHash = 7,
  kCompactWmh = 8,
  kBbitWmh = 9,
};
Result<SketchTypeTag> PeekSketchType(std::string_view bytes);

}  // namespace ipsketch

#endif  // IPSKETCH_SKETCH_SERIALIZE_H_
