// Sketch merging: combining S(a) and S(b) into a sketch of a + b without
// touching the original vectors.
//
// Mergeability is the operational superpower of *linear* sketches: since
// S(x) = Πx, S(a + b) = S(a) + S(b) exactly, which is what makes JL and
// CountSketch suitable for distributed aggregation. KMV sketches merge too
// (the k smallest of a union are contained in the union of the per-set k
// smallest). The hashing-based inner product sketches do NOT merge:
//
//   * WMH/ICWS normalize by ‖a‖ before sampling, and ‖a + b‖ is not
//     recoverable from ‖a‖, ‖b‖ and the samples;
//   * even unweighted MinHash cannot merge *values*: the minimum of the
//     union may sit at an index where both vectors are non-zero, and
//     a[j] + b[j] is not recoverable from two independently sampled values.
//
// This asymmetry is a genuine trade-off against the accuracy advantage the
// paper proves, and worth surfacing in the API rather than hiding.

#ifndef IPSKETCH_SKETCH_MERGE_H_
#define IPSKETCH_SKETCH_MERGE_H_

#include "common/status.h"
#include "sketch/count_sketch.h"
#include "sketch/jl_sketch.h"
#include "sketch/kmv.h"

namespace ipsketch {

/// S(a) + S(b) = S(a + b) for JL sketches. Requires identical
/// (seed, rows, dimension).
Result<JlSketch> MergeJl(const JlSketch& a, const JlSketch& b);

/// S(a) + S(b) = S(a + b) for CountSketch. Requires identical shapes/seed.
Result<CountSketch> MergeCountSketch(const CountSketch& a,
                                     const CountSketch& b);

/// KMV sketch of a + b from KMV sketches of a and b (same seed/k/domain).
///
/// Equal hashes denote the same index (same hash function); their values
/// are summed, and exact cancellations (a[j] = −b[j]) are dropped. Caveat:
/// if an index is present in both *vectors* but survived in only one
/// *sketch* (beyond the k-th minimum), its merged value is the one that
/// survived — the merged sketch is exact for the union's k smallest hashes
/// whenever both inputs retained them, which is the standard KMV guarantee.
Result<KmvSketch> MergeKmv(const KmvSketch& a, const KmvSketch& b);

}  // namespace ipsketch

#endif  // IPSKETCH_SKETCH_MERGE_H_
