#include "sketch/jl_sketch.h"

#include "common/hash.h"
#include "core/simd/dispatch.h"

namespace ipsketch {

Status JlOptions::Validate() const {
  if (num_rows == 0) return Status::InvalidArgument("num_rows must be positive");
  return Status::Ok();
}

Result<JlSketch> SketchJl(const SparseVector& a, const JlOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  JlSketch sketch;
  sketch.seed = options.seed;
  sketch.dimension = a.dimension();
  sketch.projection.assign(options.num_rows, 0.0);
  for (size_t r = 0; r < options.num_rows; ++r) {
    const SignHash sign(options.seed, r);
    double acc = 0.0;
    for (const Entry& e : a.entries()) {
      acc += sign.Sign(e.index) * e.value;
    }
    sketch.projection[r] = acc;
  }
  return sketch;
}

Result<double> EstimateJlInnerProduct(const JlSketch& a, const JlSketch& b) {
  if (a.num_rows() != b.num_rows()) {
    return Status::InvalidArgument("sketch row counts differ");
  }
  if (a.num_rows() == 0) return Status::InvalidArgument("sketches are empty");
  if (a.seed != b.seed) return Status::InvalidArgument("sketch seeds differ");
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }
  const double dot = simd::ActiveKernel().dot_f64(
      a.projection.data(), b.projection.data(), a.num_rows());
  return dot / static_cast<double>(a.num_rows());
}

JlSketch TruncatedJl(const JlSketch& sketch, size_t m) {
  IPS_CHECK(m > 0 && m <= sketch.num_rows());
  JlSketch out = sketch;
  out.projection.resize(m);
  return out;
}

}  // namespace ipsketch
