#include "sketch/count_sketch.h"

#include <algorithm>

#include "common/hash.h"
#include "common/stats.h"
#include "core/simd/dispatch.h"

namespace ipsketch {

Status CountSketchOptions::Validate() const {
  if (repetitions == 0) {
    return Status::InvalidArgument("repetitions must be positive");
  }
  if (total_counters / repetitions == 0) {
    return Status::InvalidArgument(
        "total_counters must be at least repetitions");
  }
  return Status::Ok();
}

Result<CountSketch> SketchCount(const SparseVector& a,
                                const CountSketchOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  const size_t width = options.total_counters / options.repetitions;

  CountSketch sketch;
  sketch.seed = options.seed;
  sketch.dimension = a.dimension();
  sketch.tables.assign(options.repetitions, std::vector<double>(width, 0.0));

  for (size_t r = 0; r < options.repetitions; ++r) {
    // Domain-separated streams: buckets use stream 2r, signs use 2r+1.
    const BucketHash bucket(options.seed, 2 * r,
                            static_cast<uint32_t>(width));
    const SignHash sign(options.seed, 2 * r + 1);
    auto& table = sketch.tables[r];
    for (const Entry& e : a.entries()) {
      table[bucket.Bucket(e.index)] += sign.Sign(e.index) * e.value;
    }
  }
  return sketch;
}

Result<double> EstimateCountSketchInnerProduct(const CountSketch& a,
                                               const CountSketch& b) {
  if (a.tables.size() != b.tables.size() || a.width() != b.width()) {
    return Status::InvalidArgument("sketch shapes differ");
  }
  if (a.tables.empty() || a.width() == 0) {
    return Status::InvalidArgument("sketches are empty");
  }
  if (a.seed != b.seed) return Status::InvalidArgument("sketch seeds differ");
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }
  std::vector<double> estimates;
  estimates.reserve(a.tables.size());
  for (size_t r = 0; r < a.tables.size(); ++r) {
    estimates.push_back(simd::ActiveKernel().dot_f64(
        a.tables[r].data(), b.tables[r].data(), a.tables[r].size()));
  }
  return Median(std::move(estimates));
}

}  // namespace ipsketch
