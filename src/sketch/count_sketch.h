// CountSketch (Charikar, Chen & Farach-Colton 2002) for inner product
// estimation, in the configuration the paper benchmarks (§5): the total
// counter budget is split into 5 repetitions and the median of the 5
// per-repetition estimates is returned, following Larsen et al. (2021).
//
// Each repetition r hashes coordinate i to bucket h_r(i) with sign s_r(i):
// C_r[h_r(i)] += s_r(i)·a[i]. The per-repetition inner product estimate is
// ⟨C_r(a), C_r(b)⟩, which is unbiased; the median cuts the error tail.

#ifndef IPSKETCH_SKETCH_COUNT_SKETCH_H_
#define IPSKETCH_SKETCH_COUNT_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Configuration for `SketchCount`.
struct CountSketchOptions {
  /// Total number of counters across all repetitions (= storage in words).
  size_t total_counters = 128;
  /// Number of repetitions whose estimates are median-combined. The paper
  /// follows Larsen et al. and uses 5.
  size_t repetitions = 5;
  /// Random seed; sketches are comparable only with equal seeds.
  uint64_t seed = 0;

  /// Validates field ranges (width per repetition must be ≥ 1).
  Status Validate() const;
};

/// A CountSketch: `repetitions` counter arrays of equal width.
struct CountSketch {
  std::vector<std::vector<double>> tables;  ///< [repetition][bucket]
  uint64_t seed = 0;
  uint64_t dimension = 0;

  /// Counters per repetition.
  size_t width() const { return tables.empty() ? 0 : tables[0].size(); }

  /// Storage in 64-bit words: one double per counter.
  double StorageWords() const {
    return static_cast<double>(tables.size() * width());
  }
};

/// Computes the CountSketch of `a`.
Result<CountSketch> SketchCount(const SparseVector& a,
                                const CountSketchOptions& options);

/// Median over repetitions of ⟨C_r(a), C_r(b)⟩.
Result<double> EstimateCountSketchInnerProduct(const CountSketch& a,
                                               const CountSketch& b);

}  // namespace ipsketch

#endif  // IPSKETCH_SKETCH_COUNT_SKETCH_H_
