// Johnson–Lindenstrauss random projection (equivalently, the AMS "tug of
// war" sketch with ±1 entries; Fact 1 of the paper).
//
// S(a) = Π·a for a random Π ∈ R^{m×n} with i.i.d. ±1/√m entries, and
// F(S(a), S(b)) = ⟨S(a), S(b)⟩. The matrix is never materialized: entry
// signs come from a 4-wise independent hash of (row, column), so sketching
// costs O(nnz·m) and arbitrary (e.g. 2^64) dimensions are supported.
//
// We store the *unscaled* row sums Σ_i sign(r,i)·a[i] and fold the 1/m
// factor into the estimator; this keeps any prefix of the rows a valid
// smaller sketch (used to sweep storage budgets cheaply).

#ifndef IPSKETCH_SKETCH_JL_SKETCH_H_
#define IPSKETCH_SKETCH_JL_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Configuration for `SketchJl`.
struct JlOptions {
  /// Number of projection rows m; error decays as O(1/√m) (Fact 1).
  size_t num_rows = 128;
  /// Random seed; sketches are comparable only with equal seeds.
  uint64_t seed = 0;

  /// Validates field ranges.
  Status Validate() const;
};

/// A JL sketch: m unscaled projection coordinates.
struct JlSketch {
  std::vector<double> projection;  ///< row sums Σ_i sign(r,i)·a[i]
  uint64_t seed = 0;
  uint64_t dimension = 0;

  /// Number of rows m.
  size_t num_rows() const { return projection.size(); }

  /// Storage in 64-bit words: one double per row.
  double StorageWords() const { return static_cast<double>(num_rows()); }
};

/// Computes Π·a (unscaled).
Result<JlSketch> SketchJl(const SparseVector& a, const JlOptions& options);

/// Returns ⟨S(a), S(b)⟩/m, the Fact-1 estimator of ⟨a, b⟩.
Result<double> EstimateJlInnerProduct(const JlSketch& a, const JlSketch& b);

/// Prefix of the first m rows (a valid m-row sketch).
JlSketch TruncatedJl(const JlSketch& sketch, size_t m);

}  // namespace ipsketch

#endif  // IPSKETCH_SKETCH_JL_SKETCH_H_
