// Algorithms 1 & 2: the unweighted (augmented) MinHash inner product sketch.
//
// For each of m independent hash functions h_i: {0..n−1} → [0,1), the sketch
// stores the minimum hash over a's support and the vector value at the
// argmin index. Matching minima across two sketches yield a uniform sample
// of the support intersection (Fact 3); Algorithm 2 turns the sample into an
// inner product estimate using a Flajolet–Martin union-size estimate:
//
//   Ũ   = m / Σ_i min(H_hash_a[i], H_hash_b[i]) − 1
//   est = (Ũ/m)·Σ_i 1[H_hash_a[i] = H_hash_b[i]]·H_val_a[i]·H_val_b[i]
//
// Theorem 4: for vectors with entries in [−c, c], m = O(1/ε²) samples give
// error ε·c²·√(max(|A|,|B|)·|A∩B|) — matching the binary-vector optimum of
// Pagh et al. (2014) but degrading with c² for heavy entries, which is what
// Weighted MinHash fixes.

#ifndef IPSKETCH_SKETCH_MINHASH_H_
#define IPSKETCH_SKETCH_MINHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Configuration for `SketchMh`.
struct MhOptions {
  /// Number of samples m.
  size_t num_samples = 128;
  /// Random seed; sketches are comparable only with equal seeds.
  uint64_t seed = 0;
  /// Hash family (see HashKind). The default idealized mixing hash matches
  /// the analysis; kCarterWegman31 reproduces the paper's §5 practical
  /// choice.
  HashKind hash_kind = HashKind::kMixed64;

  /// Validates field ranges.
  Status Validate() const;
};

/// The sketch H_a = {H_hash, H_val} of Algorithm 1.
struct MhSketch {
  /// Minimum hash per sample, in [0, 1); 1.0 for the empty vector.
  std::vector<double> hashes;
  /// Vector value at the argmin index, per sample.
  std::vector<double> values;
  uint64_t seed = 0;
  uint64_t dimension = 0;
  HashKind hash_kind = HashKind::kMixed64;

  /// Number of samples m.
  size_t num_samples() const { return hashes.size(); }

  /// Storage in 64-bit words: one double + one 32-bit hash per sample.
  double StorageWords() const {
    return 1.5 * static_cast<double>(num_samples());
  }
};

/// Computes the augmented MinHash sketch of `a` (Algorithm 1).
Result<MhSketch> SketchMh(const SparseVector& a, const MhOptions& options);

/// Estimates ⟨a, b⟩ from two MinHash sketches (Algorithm 2).
Result<double> EstimateMhInnerProduct(const MhSketch& a, const MhSketch& b);

/// Span-level core of `EstimateMhInnerProduct`: Algorithm 2 over the raw
/// hash/value lanes of two sketches the caller has already verified to be
/// mutually comparable (equal m, seed, hash family, dimension). Both the
/// pairwise estimator above and the slab catalog's 1-vs-many re-rank path
/// (`SketchFamily::NewSlab`) run through this one function, which is what
/// makes their estimates bit-identical. `m` must be positive.
Result<double> EstimateMhSpans(const double* a_hashes, const double* a_values,
                               const double* b_hashes, const double* b_values,
                               size_t m);

/// Estimates the support Jaccard similarity |A∩B| / |A∪B| (Fact 3): the
/// fraction of matching samples.
Result<double> EstimateSupportJaccard(const MhSketch& a, const MhSketch& b);

/// Estimates the support union size |A∪B| via Ũ = m/Σ min(h_a, h_b) − 1
/// (Lemma 1, the Flajolet–Martin variant).
Result<double> EstimateSupportUnion(const MhSketch& a, const MhSketch& b);

/// Prefix of the first m samples (a valid m-sample sketch).
MhSketch TruncatedMh(const MhSketch& sketch, size_t m);

}  // namespace ipsketch

#endif  // IPSKETCH_SKETCH_MINHASH_H_
