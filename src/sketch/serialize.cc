#include "sketch/serialize.h"

#include <cstring>

namespace ipsketch {

// --- wire primitives --------------------------------------------------------

namespace wire {

void AppendU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

void AppendDouble(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  AppendU64(out, bits);
}

void AppendBytes(std::string* out, std::string_view bytes) {
  AppendU64(out, bytes.size());
  out->append(bytes);
}

namespace {
Status Truncated() { return Status::InvalidArgument("truncated sketch bytes"); }
}  // namespace

Status Reader::ReadU8(uint8_t* v) {
  if (pos_ + 1 > bytes_.size()) return Truncated();
  *v = static_cast<uint8_t>(bytes_[pos_++]);
  return Status::Ok();
}

Status Reader::ReadU32(uint32_t* v) {
  if (pos_ + 4 > bytes_.size()) return Truncated();
  *v = 0;
  for (int i = 0; i < 4; ++i) {
    *v |= static_cast<uint32_t>(static_cast<uint8_t>(bytes_[pos_++]))
          << (8 * i);
  }
  return Status::Ok();
}

Status Reader::ReadU64(uint64_t* v) {
  if (pos_ + 8 > bytes_.size()) return Truncated();
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    *v |= static_cast<uint64_t>(static_cast<uint8_t>(bytes_[pos_++]))
          << (8 * i);
  }
  return Status::Ok();
}

Status Reader::ReadDouble(double* v) {
  uint64_t bits = 0;
  IPS_RETURN_IF_ERROR(ReadU64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::Ok();
}

Status Reader::ReadBytes(std::string_view* bytes) {
  uint64_t n = 0;
  IPS_RETURN_IF_ERROR(ReadU64(&n));
  if (n > Remaining()) return Truncated();
  *bytes = bytes_.substr(pos_, n);
  pos_ += n;
  return Status::Ok();
}

Status Reader::ExpectEnd() const {
  if (pos_ != bytes_.size()) {
    return Status::InvalidArgument("trailing bytes after sketch payload");
  }
  return Status::Ok();
}

Status BoundedReader::ReadCount(size_t elem_size, uint64_t* n) {
  IPS_RETURN_IF_ERROR(ReadU64(n));
  // Division form: `*n * elem_size` could wrap a u64 for hostile counts.
  if (*n > Remaining() / elem_size) {
    return Status::InvalidArgument("element count exceeds remaining bytes");
  }
  return Status::Ok();
}

Status BoundedReader::CheckShape(uint64_t rows, uint64_t cols,
                                 size_t elem_size) {
  const uint64_t max_elems = Remaining() / elem_size;
  // rows · cols ≤ max_elems without ever forming the product: either factor
  // alone must fit, and so must the pair. Zero-element shapes are trivially
  // in bounds (decoders that allocate per *row* must bound rows separately).
  if (rows > max_elems || cols > max_elems ||
      (cols != 0 && rows > max_elems / cols)) {
    return Status::InvalidArgument("decoded shape exceeds remaining bytes");
  }
  return Status::Ok();
}

Status BoundedReader::ReadDoubles(std::vector<double>* xs) {
  uint64_t n = 0;
  IPS_RETURN_IF_ERROR(ReadCount(8, &n));
  xs->resize(n);
  for (auto& x : *xs) IPS_RETURN_IF_ERROR(ReadDouble(&x));
  return Status::Ok();
}

Status BoundedReader::ReadU64s(std::vector<uint64_t>* xs) {
  uint64_t n = 0;
  IPS_RETURN_IF_ERROR(ReadCount(8, &n));
  xs->resize(n);
  for (auto& x : *xs) IPS_RETURN_IF_ERROR(ReadU64(&x));
  return Status::Ok();
}

Status BoundedReader::ReadU32s(std::vector<uint32_t>* xs) {
  uint64_t n = 0;
  IPS_RETURN_IF_ERROR(ReadCount(4, &n));
  xs->resize(n);
  for (auto& x : *xs) IPS_RETURN_IF_ERROR(ReadU32(&x));
  return Status::Ok();
}

Status BoundedReader::ReadF32s(std::vector<float>* xs) {
  uint64_t n = 0;
  IPS_RETURN_IF_ERROR(ReadCount(4, &n));
  xs->resize(n);
  for (auto& x : *xs) {
    uint32_t bits = 0;
    IPS_RETURN_IF_ERROR(ReadU32(&bits));
    std::memcpy(&x, &bits, sizeof(x));
  }
  return Status::Ok();
}

}  // namespace wire

namespace {

constexpr uint32_t kMagic = 0x49505348;  // "IPSH"
// Version 2 added the engine byte to WMH payloads and the engine byte + L
// to ICWS payloads; every other payload is unchanged. Version-1 bytes still
// parse: they predate the dart engines, so their sketches were by
// definition built by the legacy engines (WMH kActiveIndex, ICWS kExact) —
// that is what the missing fields decode to.
constexpr uint8_t kVersion = 2;
constexpr uint8_t kVersionV1 = 1;

// --- encoding ---------------------------------------------------------------

using wire::AppendDouble;
using wire::AppendU32;
using wire::AppendU64;
using wire::AppendU8;

void PutU8(std::string* out, uint8_t v) { AppendU8(out, v); }
void PutU32(std::string* out, uint32_t v) { AppendU32(out, v); }
void PutU64(std::string* out, uint64_t v) { AppendU64(out, v); }
void PutDouble(std::string* out, double v) { AppendDouble(out, v); }

void PutDoubles(std::string* out, const std::vector<double>& xs) {
  PutU64(out, xs.size());
  for (double x : xs) PutDouble(out, x);
}

void PutU64s(std::string* out, const std::vector<uint64_t>& xs) {
  PutU64(out, xs.size());
  for (uint64_t x : xs) PutU64(out, x);
}

void PutU32s(std::string* out, const std::vector<uint32_t>& xs) {
  PutU64(out, xs.size());
  for (uint32_t x : xs) PutU32(out, x);
}

void PutF32s(std::string* out, const std::vector<float>& xs) {
  PutU64(out, xs.size());
  for (float x : xs) {
    uint32_t bits = 0;
    std::memcpy(&bits, &x, sizeof(bits));
    PutU32(out, bits);
  }
}

void PutHeader(std::string* out, SketchTypeTag tag) {
  PutU32(out, kMagic);
  PutU8(out, kVersion);
  PutU8(out, static_cast<uint8_t>(tag));
}

// --- decoding ---------------------------------------------------------------

// Extends the shared bounded wire decoder with the header framing that is
// specific to sketch payloads (vector reads live on wire::BoundedReader,
// the one place length fields become allocations).
class Reader : public wire::BoundedReader {
 public:
  using wire::BoundedReader::BoundedReader;

  /// Header check for payloads that are identical across accepted format
  /// versions (everything except WMH and ICWS).
  Status ExpectHeader(SketchTypeTag tag) {
    uint8_t version = 0;
    return ExpectHeader(tag, &version);
  }

  /// Reads and validates the header; `*version` reports which accepted
  /// format version (1 or 2) the payload uses.
  Status ExpectHeader(SketchTypeTag tag, uint8_t* version) {
    uint32_t magic = 0;
    IPS_RETURN_IF_ERROR(ReadU32(&magic));
    if (magic != kMagic) return Status::InvalidArgument("bad sketch magic");
    IPS_RETURN_IF_ERROR(ReadU8(version));
    if (*version != kVersion && *version != kVersionV1) {
      return Status::InvalidArgument("unsupported sketch version " +
                                     std::to_string(*version));
    }
    uint8_t got = 0;
    IPS_RETURN_IF_ERROR(ReadU8(&got));
    if (got != static_cast<uint8_t>(tag)) {
      return Status::InvalidArgument("sketch type mismatch");
    }
    return Status::Ok();
  }
};

// Reads and validates the engine byte shared by the full-precision WMH
// payload and both quantized encodings — one bounds check, so a new engine
// enumerator cannot be accepted by one decoder and rejected by another.
Status ReadWmhEngine(Reader* r, WmhEngine* engine) {
  uint8_t byte = 0;
  IPS_RETURN_IF_ERROR(r->ReadU8(&byte));
  if (byte > static_cast<uint8_t>(WmhEngine::kDart)) {
    return Status::InvalidArgument("unknown WMH engine");
  }
  *engine = static_cast<WmhEngine>(byte);
  return Status::Ok();
}

}  // namespace

// --- WMH ---------------------------------------------------------------------

std::string SerializeWmh(const WmhSketch& sketch) {
  std::string out;
  PutHeader(&out, SketchTypeTag::kWmh);
  PutU64(&out, sketch.seed);
  PutU64(&out, sketch.L);
  PutU64(&out, sketch.dimension);
  PutU8(&out, static_cast<uint8_t>(sketch.engine));
  PutDouble(&out, sketch.norm);
  PutDoubles(&out, sketch.hashes);
  PutDoubles(&out, sketch.values);
  return out;
}

Result<WmhSketch> DeserializeWmh(std::string_view bytes, bool* v1_payload) {
  Reader r(bytes);
  uint8_t version = 0;
  IPS_RETURN_IF_ERROR(r.ExpectHeader(SketchTypeTag::kWmh, &version));
  if (v1_payload != nullptr) *v1_payload = version < 2;
  WmhSketch s;
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.seed));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.L));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.dimension));
  if (version >= 2) {
    IPS_RETURN_IF_ERROR(ReadWmhEngine(&r, &s.engine));
  } else {
    s.engine = WmhEngine::kActiveIndex;  // the only v1 production engine
  }
  IPS_RETURN_IF_ERROR(r.ReadDouble(&s.norm));
  IPS_RETURN_IF_ERROR(r.ReadDoubles(&s.hashes));
  IPS_RETURN_IF_ERROR(r.ReadDoubles(&s.values));
  if (s.hashes.size() != s.values.size()) {
    return Status::InvalidArgument("WMH hash/value length mismatch");
  }
  IPS_RETURN_IF_ERROR(r.ExpectEnd());
  return s;
}

// --- MH ------------------------------------------------------------------------

std::string SerializeMh(const MhSketch& sketch) {
  std::string out;
  PutHeader(&out, SketchTypeTag::kMh);
  PutU64(&out, sketch.seed);
  PutU64(&out, sketch.dimension);
  PutU8(&out, static_cast<uint8_t>(sketch.hash_kind));
  PutDoubles(&out, sketch.hashes);
  PutDoubles(&out, sketch.values);
  return out;
}

Result<MhSketch> DeserializeMh(std::string_view bytes) {
  Reader r(bytes);
  IPS_RETURN_IF_ERROR(r.ExpectHeader(SketchTypeTag::kMh));
  MhSketch s;
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.seed));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.dimension));
  uint8_t kind = 0;
  IPS_RETURN_IF_ERROR(r.ReadU8(&kind));
  if (kind > static_cast<uint8_t>(HashKind::kCarterWegman31)) {
    return Status::InvalidArgument("unknown hash kind");
  }
  s.hash_kind = static_cast<HashKind>(kind);
  IPS_RETURN_IF_ERROR(r.ReadDoubles(&s.hashes));
  IPS_RETURN_IF_ERROR(r.ReadDoubles(&s.values));
  if (s.hashes.size() != s.values.size()) {
    return Status::InvalidArgument("MH hash/value length mismatch");
  }
  IPS_RETURN_IF_ERROR(r.ExpectEnd());
  return s;
}

// --- KMV ---------------------------------------------------------------------

std::string SerializeKmv(const KmvSketch& sketch) {
  std::string out;
  PutHeader(&out, SketchTypeTag::kKmv);
  PutU64(&out, sketch.seed);
  PutU64(&out, sketch.dimension);
  PutU64(&out, sketch.k);
  PutU8(&out, static_cast<uint8_t>(sketch.hash_kind));
  PutU64(&out, sketch.samples.size());
  for (const auto& sample : sketch.samples) {
    PutDouble(&out, sample.hash);
    PutDouble(&out, sample.value);
  }
  return out;
}

Result<KmvSketch> DeserializeKmv(std::string_view bytes) {
  Reader r(bytes);
  IPS_RETURN_IF_ERROR(r.ExpectHeader(SketchTypeTag::kKmv));
  KmvSketch s;
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.seed));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.dimension));
  uint64_t k = 0;
  IPS_RETURN_IF_ERROR(r.ReadU64(&k));
  s.k = static_cast<size_t>(k);
  uint8_t kind = 0;
  IPS_RETURN_IF_ERROR(r.ReadU8(&kind));
  if (kind > static_cast<uint8_t>(HashKind::kCarterWegman31)) {
    return Status::InvalidArgument("unknown hash kind");
  }
  s.hash_kind = static_cast<HashKind>(kind);
  uint64_t n = 0;
  IPS_RETURN_IF_ERROR(r.ReadCount(16, &n));
  if (n > s.k) {
    return Status::InvalidArgument("KMV sample count out of range");
  }
  s.samples.resize(n);
  double prev = -1.0;
  for (auto& sample : s.samples) {
    IPS_RETURN_IF_ERROR(r.ReadDouble(&sample.hash));
    IPS_RETURN_IF_ERROR(r.ReadDouble(&sample.value));
    // Negated comparison so a NaN hash (which compares false both ways, and
    // would otherwise slip through a `<=` check into the estimator's match
    // loop) is rejected along with out-of-order samples.
    if (!(sample.hash > prev)) {
      return Status::InvalidArgument("KMV samples not strictly sorted");
    }
    prev = sample.hash;
  }
  IPS_RETURN_IF_ERROR(r.ExpectEnd());
  return s;
}

// --- JL ----------------------------------------------------------------------

std::string SerializeJl(const JlSketch& sketch) {
  std::string out;
  PutHeader(&out, SketchTypeTag::kJl);
  PutU64(&out, sketch.seed);
  PutU64(&out, sketch.dimension);
  PutDoubles(&out, sketch.projection);
  return out;
}

Result<JlSketch> DeserializeJl(std::string_view bytes) {
  Reader r(bytes);
  IPS_RETURN_IF_ERROR(r.ExpectHeader(SketchTypeTag::kJl));
  JlSketch s;
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.seed));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.dimension));
  IPS_RETURN_IF_ERROR(r.ReadDoubles(&s.projection));
  IPS_RETURN_IF_ERROR(r.ExpectEnd());
  return s;
}

// --- CountSketch ---------------------------------------------------------------

std::string SerializeCountSketch(const CountSketch& sketch) {
  std::string out;
  PutHeader(&out, SketchTypeTag::kCountSketch);
  PutU64(&out, sketch.seed);
  PutU64(&out, sketch.dimension);
  PutU64(&out, sketch.tables.size());
  PutU64(&out, sketch.width());
  for (const auto& table : sketch.tables) {
    for (double c : table) PutDouble(&out, c);
  }
  return out;
}

Result<CountSketch> DeserializeCountSketch(std::string_view bytes) {
  Reader r(bytes);
  IPS_RETURN_IF_ERROR(r.ExpectHeader(SketchTypeTag::kCountSketch));
  CountSketch s;
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.seed));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.dimension));
  uint64_t reps = 0, width = 0;
  IPS_RETURN_IF_ERROR(r.ReadU64(&reps));
  IPS_RETURN_IF_ERROR(r.ReadU64(&width));
  // CheckShape bounds reps · width without forming the product (the old
  // `reps * width` pre-check wrapped at 2⁶⁴ — e.g. reps = width = 2³² passed
  // as 0 and then tried to allocate 2³² tables). A zero width with nonzero
  // reps is rejected separately: each empty row consumes no payload bytes,
  // so `reps` rows would otherwise allocate unboundedly many vectors.
  IPS_RETURN_IF_ERROR(r.CheckShape(reps, width, 8));
  if (reps != 0 && width == 0) {
    return Status::InvalidArgument("CountSketch shape out of range");
  }
  s.tables.assign(reps, std::vector<double>(width));
  for (auto& table : s.tables) {
    for (auto& c : table) IPS_RETURN_IF_ERROR(r.ReadDouble(&c));
  }
  IPS_RETURN_IF_ERROR(r.ExpectEnd());
  return s;
}

// --- ICWS ----------------------------------------------------------------------

std::string SerializeIcws(const IcwsSketch& sketch) {
  std::string out;
  PutHeader(&out, SketchTypeTag::kIcws);
  PutU64(&out, sketch.seed);
  PutU64(&out, sketch.dimension);
  PutU8(&out, static_cast<uint8_t>(sketch.engine));
  PutU64(&out, sketch.L);
  PutDouble(&out, sketch.norm);
  PutU64s(&out, sketch.fingerprints);
  PutDoubles(&out, sketch.values);
  return out;
}

Result<IcwsSketch> DeserializeIcws(std::string_view bytes) {
  Reader r(bytes);
  uint8_t version = 0;
  IPS_RETURN_IF_ERROR(r.ExpectHeader(SketchTypeTag::kIcws, &version));
  IcwsSketch s;
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.seed));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.dimension));
  if (version >= 2) {
    uint8_t engine = 0;
    IPS_RETURN_IF_ERROR(r.ReadU8(&engine));
    if (engine > static_cast<uint8_t>(IcwsEngine::kDart)) {
      return Status::InvalidArgument("unknown ICWS engine");
    }
    s.engine = static_cast<IcwsEngine>(engine);
    IPS_RETURN_IF_ERROR(r.ReadU64(&s.L));
  } else {
    s.engine = IcwsEngine::kExact;  // v1 predates the dart variant
    s.L = 0;
  }
  IPS_RETURN_IF_ERROR(r.ReadDouble(&s.norm));
  IPS_RETURN_IF_ERROR(r.ReadU64s(&s.fingerprints));
  IPS_RETURN_IF_ERROR(r.ReadDoubles(&s.values));
  if (s.fingerprints.size() != s.values.size()) {
    return Status::InvalidArgument("ICWS fingerprint/value length mismatch");
  }
  IPS_RETURN_IF_ERROR(r.ExpectEnd());
  return s;
}

// --- SimHash -------------------------------------------------------------------

std::string SerializeSimHash(const SimHashSketch& sketch) {
  std::string out;
  PutHeader(&out, SketchTypeTag::kSimHash);
  PutU64(&out, sketch.seed);
  PutU64(&out, sketch.dimension);
  PutU64(&out, sketch.num_bits);
  PutDouble(&out, sketch.norm);
  PutU64s(&out, sketch.bits);
  return out;
}

Result<SimHashSketch> DeserializeSimHash(std::string_view bytes) {
  Reader r(bytes);
  IPS_RETURN_IF_ERROR(r.ExpectHeader(SketchTypeTag::kSimHash));
  SimHashSketch s;
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.seed));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.dimension));
  uint64_t num_bits = 0;
  IPS_RETURN_IF_ERROR(r.ReadU64(&num_bits));
  s.num_bits = static_cast<size_t>(num_bits);
  IPS_RETURN_IF_ERROR(r.ReadDouble(&s.norm));
  IPS_RETURN_IF_ERROR(r.ReadU64s(&s.bits));
  // Overflow-free word-count check: `(num_bits + 63) / 64` wraps to 0 for
  // num_bits near 2⁶⁴, which let a hostile header pair an absurd num_bits
  // with an empty bits vector and mis-decode silently.
  if (s.bits.size() != num_bits / 64 + (num_bits % 64 != 0 ? 1 : 0)) {
    return Status::InvalidArgument("SimHash bit-word count mismatch");
  }
  IPS_RETURN_IF_ERROR(r.ExpectEnd());
  return s;
}

// --- compact / b-bit WMH -------------------------------------------------------

namespace {

// The quantized payloads are new in wire version 2: no version-1 producer
// ever existed for these tags, so unlike WMH/ICWS there is no legacy
// decode path — a version-1 header on them is corruption, not history.
Status ExpectQuantizedHeader(Reader* r, SketchTypeTag tag) {
  uint8_t version = 0;
  IPS_RETURN_IF_ERROR(r->ExpectHeader(tag, &version));
  if (version < 2) {
    return Status::InvalidArgument(
        "quantized WMH payloads require wire version 2");
  }
  return Status::Ok();
}

}  // namespace

std::string SerializeCompactWmh(const CompactWmhSketch& sketch) {
  std::string out;
  PutHeader(&out, SketchTypeTag::kCompactWmh);
  PutU64(&out, sketch.seed);
  PutU64(&out, sketch.L);
  PutU64(&out, sketch.dimension);
  PutU8(&out, static_cast<uint8_t>(sketch.engine));
  PutDouble(&out, sketch.norm);
  PutU32s(&out, sketch.hashes);
  PutF32s(&out, sketch.values);
  return out;
}

Result<CompactWmhSketch> DeserializeCompactWmh(std::string_view bytes) {
  Reader r(bytes);
  IPS_RETURN_IF_ERROR(
      ExpectQuantizedHeader(&r, SketchTypeTag::kCompactWmh));
  CompactWmhSketch s;
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.seed));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.L));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.dimension));
  IPS_RETURN_IF_ERROR(ReadWmhEngine(&r, &s.engine));
  IPS_RETURN_IF_ERROR(r.ReadDouble(&s.norm));
  IPS_RETURN_IF_ERROR(r.ReadU32s(&s.hashes));
  IPS_RETURN_IF_ERROR(r.ReadF32s(&s.values));
  if (s.hashes.size() != s.values.size()) {
    return Status::InvalidArgument(
        "compact WMH hash/value length mismatch");
  }
  IPS_RETURN_IF_ERROR(r.ExpectEnd());
  return s;
}

std::string SerializeBbitWmh(const BbitWmhSketch& sketch) {
  std::string out;
  PutHeader(&out, SketchTypeTag::kBbitWmh);
  PutU64(&out, sketch.seed);
  PutU64(&out, sketch.L);
  PutU64(&out, sketch.dimension);
  PutU8(&out, static_cast<uint8_t>(sketch.engine));
  PutU32(&out, sketch.bits);
  PutDouble(&out, sketch.norm);
  PutU32s(&out, sketch.fingerprints);
  PutF32s(&out, sketch.values);
  return out;
}

Result<BbitWmhSketch> DeserializeBbitWmh(std::string_view bytes) {
  Reader r(bytes);
  IPS_RETURN_IF_ERROR(ExpectQuantizedHeader(&r, SketchTypeTag::kBbitWmh));
  BbitWmhSketch s;
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.seed));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.L));
  IPS_RETURN_IF_ERROR(r.ReadU64(&s.dimension));
  IPS_RETURN_IF_ERROR(ReadWmhEngine(&r, &s.engine));
  IPS_RETURN_IF_ERROR(r.ReadU32(&s.bits));
  if (s.bits < 1 || s.bits > 32) {
    return Status::InvalidArgument(
        "b-bit WMH fingerprint width out of range");
  }
  IPS_RETURN_IF_ERROR(r.ReadDouble(&s.norm));
  IPS_RETURN_IF_ERROR(r.ReadU32s(&s.fingerprints));
  IPS_RETURN_IF_ERROR(r.ReadF32s(&s.values));
  if (s.fingerprints.size() != s.values.size()) {
    return Status::InvalidArgument(
        "b-bit WMH fingerprint/value length mismatch");
  }
  IPS_RETURN_IF_ERROR(CheckBbitFingerprintWidths(s));
  IPS_RETURN_IF_ERROR(r.ExpectEnd());
  return s;
}

Result<SketchTypeTag> PeekSketchType(std::string_view bytes) {
  Reader r(bytes);
  uint32_t magic = 0;
  Status st = r.ReadU32(&magic);
  if (!st.ok() || magic != kMagic) {
    return Status::NotFound("not a serialized sketch");
  }
  uint8_t version = 0;
  uint8_t tag = 0;
  IPS_RETURN_IF_ERROR(r.ReadU8(&version));
  IPS_RETURN_IF_ERROR(r.ReadU8(&tag));
  if (tag < 1 || tag > static_cast<uint8_t>(SketchTypeTag::kBbitWmh)) {
    return Status::NotFound("unknown sketch type tag");
  }
  return static_cast<SketchTypeTag>(tag);
}

}  // namespace ipsketch
