#include "sketch/family.h"

#include <algorithm>
#include <bit>
#include <utility>

#include "core/icws.h"
#include "core/rounding.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "sketch/count_sketch.h"
#include "sketch/jl_sketch.h"
#include "sketch/kmv.h"
#include "sketch/merge.h"
#include "sketch/minhash.h"
#include "sketch/quantize.h"
#include "sketch/serialize.h"

namespace ipsketch {

// --- FamilyOptions wire form and rendering ----------------------------------

void AppendFamilyOptions(std::string* out, const FamilyOptions& options) {
  wire::AppendU64(out, options.dimension);
  wire::AppendU64(out, options.num_samples);
  wire::AppendU64(out, options.seed);
  wire::AppendU64(out, options.params.size());
  for (const auto& [key, value] : options.params) {
    wire::AppendBytes(out, key);
    wire::AppendBytes(out, value);
  }
}

Status ReadFamilyOptions(wire::BoundedReader* r, FamilyOptions* options) {
  uint64_t num_samples = 0;
  IPS_RETURN_IF_ERROR(r->ReadU64(&options->dimension));
  IPS_RETURN_IF_ERROR(r->ReadU64(&num_samples));
  IPS_RETURN_IF_ERROR(r->ReadU64(&options->seed));
  options->num_samples = static_cast<size_t>(num_samples);
  // Two length prefixes per param is ≥ 16 bytes; bound before the loop.
  uint64_t num_params = 0;
  IPS_RETURN_IF_ERROR(r->ReadCount(16, &num_params));
  options->params.clear();
  std::string_view prev_key;
  for (uint64_t i = 0; i < num_params; ++i) {
    std::string_view key, value;
    IPS_RETURN_IF_ERROR(r->ReadBytes(&key));
    IPS_RETURN_IF_ERROR(r->ReadBytes(&value));
    // The writer walks a sorted map, so keys arrive strictly increasing;
    // anything else (duplicates included) is corruption, not data.
    if (i > 0 && !(prev_key < key)) {
      return Status::InvalidArgument(
          "family option params not in canonical (strictly sorted) order");
    }
    prev_key = key;
    options->params.emplace(std::string(key), std::string(value));
  }
  return Status::Ok();
}

std::string FamilyOptionsToString(const FamilyOptions& options) {
  std::string out = "dimension=" + std::to_string(options.dimension) +
                    " num_samples=" + std::to_string(options.num_samples) +
                    " seed=" + std::to_string(options.seed);
  for (const auto& [key, value] : options.params) {
    out += " " + key + "=" + value;
  }
  return out;
}

// --- default capability stubs ----------------------------------------------

Result<std::unique_ptr<AnySketch>> SketchFamily::Merge(
    const AnySketch& /*a*/, const AnySketch& /*b*/) const {
  return Status::FailedPrecondition(name() +
                                    " sketches do not support merging");
}

Result<std::unique_ptr<AnySketch>> SketchFamily::Truncate(
    const AnySketch& /*sketch*/, size_t /*m*/) const {
  return Status::FailedPrecondition(name() +
                                    " sketches do not support truncation");
}

Result<double> SketchFamily::ResidentWords(const AnySketch& sketch) const {
  // For most families the resident layout matches the §5 accounting;
  // families that store 64-bit doubles where the accounting charges 32 bits
  // override.
  return StorageWords(sketch);
}

Status SketchFamily::AppendLshCodes(const AnySketch& /*sketch*/,
                                    std::vector<uint64_t>* /*out*/) const {
  return Status::FailedPrecondition(
      "family '" + name() +
      "' does not expose positional LSH codes (supports_banding is false)");
}

Result<std::unique_ptr<SketchSlab>> SketchFamily::NewSlab() const {
  return Status::FailedPrecondition(
      "family '" + name() +
      "' does not support slab catalogs (supports_banding is false)");
}

namespace {

// --- param parsing helpers --------------------------------------------------

/// Rejects any param key outside `allowed` (keys are few; linear scan).
Status CheckKnownParams(const std::string& family, const FamilyOptions& options,
                        const std::vector<std::string>& allowed) {
  for (const auto& [key, value] : options.params) {
    bool known = false;
    for (const auto& a : allowed) known = known || a == key;
    if (!known) {
      return Status::InvalidArgument("unknown option '" + key +
                                     "' for family '" + family + "'");
    }
  }
  return Status::Ok();
}

/// Parses params[key] as a u64 if present, else leaves *out unchanged.
Status ParseU64Param(const FamilyOptions& options, const std::string& key,
                     uint64_t* out) {
  auto it = options.params.find(key);
  if (it == options.params.end()) return Status::Ok();
  const std::string& text = it->second;
  if (text.empty()) {
    return Status::InvalidArgument("option '" + key + "' must be an integer");
  }
  uint64_t value = 0;
  for (char c : text) {
    if (c < '0' || c > '9' || value > (~uint64_t{0} - 9) / 10) {
      return Status::InvalidArgument("option '" + key +
                                     "' is not a valid integer: " + text);
    }
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *out = value;
  return Status::Ok();
}

Status ParseHashKindParam(const FamilyOptions& options, HashKind* out) {
  auto it = options.params.find("hash");
  if (it == options.params.end()) return Status::Ok();
  if (it->second == "mixed64") {
    *out = HashKind::kMixed64;
  } else if (it->second == "cw61") {
    *out = HashKind::kCarterWegman61;
  } else if (it->second == "cw31") {
    *out = HashKind::kCarterWegman31;
  } else {
    return Status::InvalidArgument(
        "option 'hash' must be mixed64, cw61, or cw31; got " + it->second);
  }
  return Status::Ok();
}

const char* HashKindName(HashKind kind) {
  switch (kind) {
    case HashKind::kMixed64: return "mixed64";
    case HashKind::kCarterWegman61: return "cw61";
    case HashKind::kCarterWegman31: return "cw31";
  }
  return "mixed64";
}

Status CommonValidate(const FamilyOptions& options) {
  if (options.dimension == 0) {
    return Status::InvalidArgument(
        "family options require a positive dimension");
  }
  return Status::Ok();
}

/// Downcasts or explains which family the operation belongs to.
template <typename T>
Result<const T*> Cast(const std::string& family, const AnySketch& sketch) {
  const T* typed = GetSketchAs<T>(sketch);
  if (typed == nullptr) {
    return Status::InvalidArgument("sketch is not of family '" + family + "'");
  }
  return typed;
}

template <typename T>
std::unique_ptr<AnySketch> Wrap(T sketch) {
  return std::make_unique<TypedSketch<T>>(std::move(sketch));
}

// --- SoA slab + LSH codes for the banding families ---------------------------
//
// Each banding family binds the generic pieces below through a small traits
// struct: the concrete sketch type, its lane types, span accessors, the
// per-sample 64-bit collision code, and the family's span-level estimator
// core. Routing both this slab path and the pairwise Estimate through that
// one core is what makes their results bit-identical.

/// Traits for "wmh": double hash/value lanes, FM union estimate needs L.
struct WmhSlabTraits {
  using SketchT = WmhSketch;
  using HashT = double;
  using ValueT = double;
  uint64_t L = 0;

  static const std::vector<double>& Hashes(const SketchT& s) {
    return s.hashes;
  }
  static const std::vector<double>& Values(const SketchT& s) {
    return s.values;
  }
  static double Norm(const SketchT& s) { return s.norm; }
  /// Equal doubles have equal bit patterns (minimum hashes are never -0.0 or
  /// NaN), so the raw pattern is a collision-exact code.
  static uint64_t Code(double h) { return std::bit_cast<uint64_t>(h); }
  Result<double> Estimate(const double* qh, const double* qv, double qn,
                          const double* sh, const double* sv, double sn,
                          size_t m) const {
    return EstimateWmhSpans(qh, qv, qn, sh, sv, sn, m, L);
  }
};

/// Traits for "icws": 64-bit fingerprints are already collision codes.
struct IcwsSlabTraits {
  using SketchT = IcwsSketch;
  using HashT = uint64_t;
  using ValueT = double;

  static const std::vector<uint64_t>& Hashes(const SketchT& s) {
    return s.fingerprints;
  }
  static const std::vector<double>& Values(const SketchT& s) {
    return s.values;
  }
  static double Norm(const SketchT& s) { return s.norm; }
  static uint64_t Code(uint64_t fingerprint) { return fingerprint; }
  Result<double> Estimate(const uint64_t* qh, const double* qv, double qn,
                          const uint64_t* sh, const double* sv, double sn,
                          size_t m) const {
    return EstimateIcwsSpans(qh, qv, qn, sh, sv, sn, m);
  }
};

/// Traits for "mh": unweighted sketches carry no norm (the estimator never
/// reads it; the slab stores a 0.0 placeholder per slot).
struct MhSlabTraits {
  using SketchT = MhSketch;
  using HashT = double;
  using ValueT = double;

  static const std::vector<double>& Hashes(const SketchT& s) {
    return s.hashes;
  }
  static const std::vector<double>& Values(const SketchT& s) {
    return s.values;
  }
  static double Norm(const SketchT&) { return 0.0; }
  static uint64_t Code(double h) { return std::bit_cast<uint64_t>(h); }
  Result<double> Estimate(const double* qh, const double* qv, double /*qn*/,
                          const double* sh, const double* sv, double /*sn*/,
                          size_t m) const {
    return EstimateMhSpans(qh, qv, sh, sv, m);
  }
};

/// Traits for "wmh_compact": 32-bit fixed-point hashes, float32 values.
struct CompactWmhSlabTraits {
  using SketchT = CompactWmhSketch;
  using HashT = uint32_t;
  using ValueT = float;
  uint64_t L = 0;

  static const std::vector<uint32_t>& Hashes(const SketchT& s) {
    return s.hashes;
  }
  static const std::vector<float>& Values(const SketchT& s) {
    return s.values;
  }
  static double Norm(const SketchT& s) { return s.norm; }
  static uint64_t Code(uint32_t h) { return h; }
  Result<double> Estimate(const uint32_t* qh, const float* qv, double qn,
                          const uint32_t* sh, const float* sv, double sn,
                          size_t m) const {
    return EstimateCompactWmhSpans(qh, qv, qn, sh, sv, sn, m, L);
  }
};

/// Traits for "wmh_bbit": b-bit fingerprints in uint32_t slots. Fingerprint
/// equality is exactly the estimator's match event (spurious rate 2⁻ᵇ — the
/// re-rank estimator corrects the rate; banding just sees more candidates).
struct BbitWmhSlabTraits {
  using SketchT = BbitWmhSketch;
  using HashT = uint32_t;
  using ValueT = float;
  uint32_t bits = 0;

  static const std::vector<uint32_t>& Hashes(const SketchT& s) {
    return s.fingerprints;
  }
  static const std::vector<float>& Values(const SketchT& s) {
    return s.values;
  }
  static double Norm(const SketchT& s) { return s.norm; }
  static uint64_t Code(uint32_t fingerprint) { return fingerprint; }
  Result<double> Estimate(const uint32_t* qh, const float* qv, double qn,
                          const uint32_t* sh, const float* sv, double sn,
                          size_t m) const {
    return EstimateBbitWmhSpans(qh, qv, qn, sh, sv, sn, m, bits);
  }
};

/// The generic structure-of-arrays block: hash and value lanes of slot s at
/// flat offset s·m, norms in a parallel array. Estimation walks the arena
/// slot after slot through the family's span core (which runs the dispatched
/// SIMD kernels), with no per-sketch pointer chasing.
template <typename Traits>
class SoaSlab final : public SketchSlab {
 public:
  SoaSlab(const SketchFamily* family, Traits traits)
      : family_(family),
        m_(family->options().num_samples),
        traits_(traits) {}

  size_t size() const override { return norms_.size(); }

  Status Append(const AnySketch& sketch) override {
    IPS_RETURN_IF_ERROR(family_->CheckCompatible(sketch));
    const auto& s = *GetSketchAs<typename Traits::SketchT>(sketch);
    const auto& hashes = Traits::Hashes(s);
    const auto& values = Traits::Values(s);
    hashes_.insert(hashes_.end(), hashes.begin(), hashes.end());
    values_.insert(values_.end(), values.begin(), values.end());
    norms_.push_back(Traits::Norm(s));
    return Status::Ok();
  }

  void SwapRemove(size_t slot) override {
    IPS_CHECK(slot < norms_.size());
    const size_t last = norms_.size() - 1;
    if (slot != last) {
      std::copy_n(hashes_.begin() + static_cast<ptrdiff_t>(last * m_), m_,
                  hashes_.begin() + static_cast<ptrdiff_t>(slot * m_));
      std::copy_n(values_.begin() + static_cast<ptrdiff_t>(last * m_), m_,
                  values_.begin() + static_cast<ptrdiff_t>(slot * m_));
      norms_[slot] = norms_[last];
    }
    hashes_.resize(last * m_);
    values_.resize(last * m_);
    norms_.pop_back();
  }

  Result<double> EstimateAt(const AnySketch& query,
                            size_t slot) const override {
    IPS_RETURN_IF_ERROR(family_->CheckCompatible(query));
    IPS_CHECK(slot < norms_.size());
    return EstimateSlot(*GetSketchAs<typename Traits::SketchT>(query), slot);
  }

  Status EstimateMany(const AnySketch& query, const uint32_t* slots,
                      size_t count, double* out) const override {
    IPS_RETURN_IF_ERROR(family_->CheckCompatible(query));
    const auto& q = *GetSketchAs<typename Traits::SketchT>(query);
    for (size_t i = 0; i < count; ++i) {
      IPS_CHECK(slots[i] < norms_.size());
      auto est = EstimateSlot(q, slots[i]);
      IPS_RETURN_IF_ERROR(est.status());
      out[i] = est.value();
    }
    return Status::Ok();
  }

  Status EstimateAll(const AnySketch& query, double* out) const override {
    IPS_RETURN_IF_ERROR(family_->CheckCompatible(query));
    const auto& q = *GetSketchAs<typename Traits::SketchT>(query);
    for (size_t slot = 0; slot < norms_.size(); ++slot) {
      auto est = EstimateSlot(q, slot);
      IPS_RETURN_IF_ERROR(est.status());
      out[slot] = est.value();
    }
    return Status::Ok();
  }

 private:
  Result<double> EstimateSlot(const typename Traits::SketchT& q,
                              size_t slot) const {
    return traits_.Estimate(Traits::Hashes(q).data(), Traits::Values(q).data(),
                            Traits::Norm(q), hashes_.data() + slot * m_,
                            values_.data() + slot * m_, norms_[slot], m_);
  }

  const SketchFamily* family_;
  size_t m_;
  Traits traits_;
  std::vector<typename Traits::HashT> hashes_;
  std::vector<typename Traits::ValueT> values_;
  std::vector<double> norms_;
};

/// Shared body of the per-family AppendLshCodes overrides.
template <typename Traits>
Status AppendCodesImpl(const SketchFamily& family, const AnySketch& sketch,
                       std::vector<uint64_t>* out) {
  IPS_RETURN_IF_ERROR(family.CheckCompatible(sketch));
  const auto& hashes =
      Traits::Hashes(*GetSketchAs<typename Traits::SketchT>(sketch));
  out->reserve(out->size() + hashes.size());
  for (const auto h : hashes) out->push_back(Traits::Code(h));
  return Status::Ok();
}

// --- generic sketcher for the stateless families ----------------------------

/// Sketcher over a plain SketchX(vector, options) function: no scratch state
/// beyond the output sketch itself (whose buffers are reused via move
/// assignment).
template <typename SketchT, typename OptionsT,
          Result<SketchT> (*SketchFn)(const SparseVector&, const OptionsT&)>
class FnSketcher final : public Sketcher {
 public:
  FnSketcher(std::string family, OptionsT options, uint64_t dimension)
      : family_(std::move(family)),
        options_(std::move(options)),
        dimension_(dimension) {}

  Status Sketch(const SparseVector& a, AnySketch* out) override {
    if (a.dimension() != dimension_) {
      return Status::InvalidArgument(
          "vector dimension does not match the family's");
    }
    SketchT* typed = GetMutableSketchAs<SketchT>(out);
    if (typed == nullptr) {
      return Status::InvalidArgument("output sketch is not of family '" +
                                     family_ + "'");
    }
    auto sketched = SketchFn(a, options_);
    IPS_RETURN_IF_ERROR(sketched.status());
    *typed = std::move(sketched).value();
    return Status::Ok();
  }

 private:
  std::string family_;
  OptionsT options_;
  uint64_t dimension_;
};

// --- WMH ---------------------------------------------------------------------

/// Wraps the scratch-reusing WmhSketcher context.
class WmhFamilySketcher final : public Sketcher {
 public:
  WmhFamilySketcher(WmhSketcher sketcher, uint64_t dimension)
      : sketcher_(std::move(sketcher)), dimension_(dimension) {}

  Status Sketch(const SparseVector& a, AnySketch* out) override {
    if (a.dimension() != dimension_) {
      return Status::InvalidArgument(
          "vector dimension does not match the family's");
    }
    WmhSketch* typed = GetMutableSketchAs<WmhSketch>(out);
    if (typed == nullptr) {
      return Status::InvalidArgument("output sketch is not of family 'wmh'");
    }
    return sketcher_.Sketch(a, typed);
  }

 private:
  WmhSketcher sketcher_;
  uint64_t dimension_;
};

class WmhFamily final : public SketchFamily {
 public:
  WmhFamily(FamilyInfo info, FamilyOptions resolved, WmhOptions concrete)
      : SketchFamily(std::move(info), std::move(resolved)),
        concrete_(concrete) {}

  std::unique_ptr<AnySketch> NewSketch() const override {
    return std::make_unique<TypedSketch<WmhSketch>>();
  }

  Result<std::unique_ptr<Sketcher>> MakeSketcher() const override {
    auto made = WmhSketcher::Make(concrete_);
    IPS_RETURN_IF_ERROR(made.status());
    return std::unique_ptr<Sketcher>(new WmhFamilySketcher(
        std::move(made).value(), options().dimension));
  }

  Status CheckCompatible(const AnySketch& sketch) const override {
    auto typed = Cast<WmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    const WmhSketch& s = *typed.value();
    if (s.num_samples() != concrete_.num_samples ||
        s.seed != concrete_.seed || s.L != concrete_.L ||
        s.engine != concrete_.engine ||
        s.dimension != options().dimension) {
      return Status::InvalidArgument(
          "wmh sketch parameters do not match the family's "
          "(m, seed, L, engine, dimension)");
    }
    if (s.hashes.size() != s.values.size()) {
      return Status::InvalidArgument("wmh sketch hash/value length mismatch");
    }
    return Status::Ok();
  }

  Result<double> Estimate(const AnySketch& a,
                          const AnySketch& b) const override {
    auto ta = Cast<WmhSketch>(name(), a);
    IPS_RETURN_IF_ERROR(ta.status());
    auto tb = Cast<WmhSketch>(name(), b);
    IPS_RETURN_IF_ERROR(tb.status());
    return EstimateWmhInnerProduct(*ta.value(), *tb.value());
  }

  Result<std::unique_ptr<AnySketch>> Truncate(const AnySketch& sketch,
                                              size_t m) const override {
    auto typed = Cast<WmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    if (m > typed.value()->num_samples()) {
      return Status::OutOfRange("truncation beyond the sketch's samples");
    }
    return Wrap(TruncatedWmh(*typed.value(), m));
  }

  Result<double> StorageWords(const AnySketch& sketch) const override {
    auto typed = Cast<WmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return typed.value()->StorageWords();
  }

  Result<double> ResidentWords(const AnySketch& sketch) const override {
    auto typed = Cast<WmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    // Two resident doubles per sample (hash + value) + the norm; the §5
    // accounting charges only 1.5 words because it assumes a 32-bit hash.
    return 2.0 * static_cast<double>(typed.value()->num_samples()) + 1.0;
  }

  Status AppendLshCodes(const AnySketch& sketch,
                        std::vector<uint64_t>* out) const override {
    return AppendCodesImpl<WmhSlabTraits>(*this, sketch, out);
  }

  Result<std::unique_ptr<SketchSlab>> NewSlab() const override {
    return std::unique_ptr<SketchSlab>(
        new SoaSlab<WmhSlabTraits>(this, WmhSlabTraits{concrete_.L}));
  }

  Result<std::string> Serialize(const AnySketch& sketch) const override {
    auto typed = Cast<WmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return SerializeWmh(*typed.value());
  }

  Result<std::unique_ptr<AnySketch>> Deserialize(
      std::string_view bytes) const override {
    bool v1_payload = false;
    auto parsed = DeserializeWmh(bytes, &v1_payload);
    IPS_RETURN_IF_ERROR(parsed.status());
    WmhSketch sketch = std::move(parsed).value();
    // Engine-less v1 payloads were built by whichever v1-era engine this
    // family resolves to (the store header is authoritative) — adopt it so
    // legacy expanded_reference catalogs keep loading. A dart family never
    // adopts: no v1 producer existed for it.
    if (v1_payload && (concrete_.engine == WmhEngine::kActiveIndex ||
                       concrete_.engine == WmhEngine::kExpandedReference)) {
      sketch.engine = concrete_.engine;
    }
    return Wrap(std::move(sketch));
  }

 private:
  WmhOptions concrete_;
};

// --- ICWS --------------------------------------------------------------------

/// Wraps the scratch-reusing IcwsSketcher context.
class IcwsFamilySketcher final : public Sketcher {
 public:
  IcwsFamilySketcher(IcwsSketcher sketcher, uint64_t dimension)
      : sketcher_(std::move(sketcher)), dimension_(dimension) {}

  Status Sketch(const SparseVector& a, AnySketch* out) override {
    if (a.dimension() != dimension_) {
      return Status::InvalidArgument(
          "vector dimension does not match the family's");
    }
    IcwsSketch* typed = GetMutableSketchAs<IcwsSketch>(out);
    if (typed == nullptr) {
      return Status::InvalidArgument("output sketch is not of family 'icws'");
    }
    return sketcher_.Sketch(a, typed);
  }

 private:
  IcwsSketcher sketcher_;
  uint64_t dimension_;
};

class IcwsFamily final : public SketchFamily {
 public:
  IcwsFamily(FamilyInfo info, FamilyOptions resolved, IcwsOptions concrete)
      : SketchFamily(std::move(info), std::move(resolved)),
        concrete_(concrete) {}

  std::unique_ptr<AnySketch> NewSketch() const override {
    return std::make_unique<TypedSketch<IcwsSketch>>();
  }

  Result<std::unique_ptr<Sketcher>> MakeSketcher() const override {
    auto made = IcwsSketcher::Make(concrete_);
    IPS_RETURN_IF_ERROR(made.status());
    return std::unique_ptr<Sketcher>(new IcwsFamilySketcher(
        std::move(made).value(), options().dimension));
  }

  Status CheckCompatible(const AnySketch& sketch) const override {
    auto typed = Cast<IcwsSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    const IcwsSketch& s = *typed.value();
    if (s.num_samples() != concrete_.num_samples ||
        s.seed != concrete_.seed || s.engine != concrete_.engine ||
        s.L != concrete_.L || s.dimension != options().dimension) {
      return Status::InvalidArgument(
          "icws sketch parameters do not match the family's "
          "(m, seed, engine, L, dimension)");
    }
    if (s.fingerprints.size() != s.values.size()) {
      return Status::InvalidArgument(
          "icws sketch fingerprint/value length mismatch");
    }
    return Status::Ok();
  }

  Result<double> Estimate(const AnySketch& a,
                          const AnySketch& b) const override {
    auto ta = Cast<IcwsSketch>(name(), a);
    IPS_RETURN_IF_ERROR(ta.status());
    auto tb = Cast<IcwsSketch>(name(), b);
    IPS_RETURN_IF_ERROR(tb.status());
    return EstimateIcwsInnerProduct(*ta.value(), *tb.value());
  }

  Result<std::unique_ptr<AnySketch>> Truncate(const AnySketch& sketch,
                                              size_t m) const override {
    auto typed = Cast<IcwsSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    if (m > typed.value()->num_samples()) {
      return Status::OutOfRange("truncation beyond the sketch's samples");
    }
    return Wrap(TruncatedIcws(*typed.value(), m));
  }

  Result<double> StorageWords(const AnySketch& sketch) const override {
    auto typed = Cast<IcwsSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return typed.value()->StorageWords();
  }

  Result<double> ResidentWords(const AnySketch& sketch) const override {
    auto typed = Cast<IcwsSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    // A 64-bit fingerprint + a double value per sample + the norm.
    return 2.0 * static_cast<double>(typed.value()->num_samples()) + 1.0;
  }

  Status AppendLshCodes(const AnySketch& sketch,
                        std::vector<uint64_t>* out) const override {
    return AppendCodesImpl<IcwsSlabTraits>(*this, sketch, out);
  }

  Result<std::unique_ptr<SketchSlab>> NewSlab() const override {
    return std::unique_ptr<SketchSlab>(
        new SoaSlab<IcwsSlabTraits>(this, IcwsSlabTraits{}));
  }

  Result<std::string> Serialize(const AnySketch& sketch) const override {
    auto typed = Cast<IcwsSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return SerializeIcws(*typed.value());
  }

  Result<std::unique_ptr<AnySketch>> Deserialize(
      std::string_view bytes) const override {
    auto parsed = DeserializeIcws(bytes);
    IPS_RETURN_IF_ERROR(parsed.status());
    return Wrap(std::move(parsed).value());
  }

 private:
  IcwsOptions concrete_;
};

// --- MH ----------------------------------------------------------------------

class MhFamily final : public SketchFamily {
 public:
  MhFamily(FamilyInfo info, FamilyOptions resolved, MhOptions concrete)
      : SketchFamily(std::move(info), std::move(resolved)),
        concrete_(concrete) {}

  std::unique_ptr<AnySketch> NewSketch() const override {
    return std::make_unique<TypedSketch<MhSketch>>();
  }

  Result<std::unique_ptr<Sketcher>> MakeSketcher() const override {
    return std::unique_ptr<Sketcher>(
        new FnSketcher<MhSketch, MhOptions, &SketchMh>(name(), concrete_,
                                                       options().dimension));
  }

  Status CheckCompatible(const AnySketch& sketch) const override {
    auto typed = Cast<MhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    const MhSketch& s = *typed.value();
    if (s.num_samples() != concrete_.num_samples ||
        s.seed != concrete_.seed || s.hash_kind != concrete_.hash_kind ||
        s.dimension != options().dimension) {
      return Status::InvalidArgument(
          "mh sketch parameters do not match the family's "
          "(m, seed, hash, dimension)");
    }
    if (s.hashes.size() != s.values.size()) {
      return Status::InvalidArgument("mh sketch hash/value length mismatch");
    }
    return Status::Ok();
  }

  Result<double> Estimate(const AnySketch& a,
                          const AnySketch& b) const override {
    auto ta = Cast<MhSketch>(name(), a);
    IPS_RETURN_IF_ERROR(ta.status());
    auto tb = Cast<MhSketch>(name(), b);
    IPS_RETURN_IF_ERROR(tb.status());
    return EstimateMhInnerProduct(*ta.value(), *tb.value());
  }

  Result<std::unique_ptr<AnySketch>> Truncate(const AnySketch& sketch,
                                              size_t m) const override {
    auto typed = Cast<MhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    if (m > typed.value()->num_samples()) {
      return Status::OutOfRange("truncation beyond the sketch's samples");
    }
    return Wrap(TruncatedMh(*typed.value(), m));
  }

  Result<double> StorageWords(const AnySketch& sketch) const override {
    auto typed = Cast<MhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return typed.value()->StorageWords();
  }

  Result<double> ResidentWords(const AnySketch& sketch) const override {
    auto typed = Cast<MhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    // Two resident doubles per sample (hash + value).
    return 2.0 * static_cast<double>(typed.value()->num_samples());
  }

  Status AppendLshCodes(const AnySketch& sketch,
                        std::vector<uint64_t>* out) const override {
    return AppendCodesImpl<MhSlabTraits>(*this, sketch, out);
  }

  Result<std::unique_ptr<SketchSlab>> NewSlab() const override {
    return std::unique_ptr<SketchSlab>(
        new SoaSlab<MhSlabTraits>(this, MhSlabTraits{}));
  }

  Result<std::string> Serialize(const AnySketch& sketch) const override {
    auto typed = Cast<MhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return SerializeMh(*typed.value());
  }

  Result<std::unique_ptr<AnySketch>> Deserialize(
      std::string_view bytes) const override {
    auto parsed = DeserializeMh(bytes);
    IPS_RETURN_IF_ERROR(parsed.status());
    return Wrap(std::move(parsed).value());
  }

 private:
  MhOptions concrete_;
};

// --- KMV ---------------------------------------------------------------------

class KmvFamily final : public SketchFamily {
 public:
  KmvFamily(FamilyInfo info, FamilyOptions resolved, KmvOptions concrete)
      : SketchFamily(std::move(info), std::move(resolved)),
        concrete_(concrete) {}

  std::unique_ptr<AnySketch> NewSketch() const override {
    return std::make_unique<TypedSketch<KmvSketch>>();
  }

  Result<std::unique_ptr<Sketcher>> MakeSketcher() const override {
    return std::unique_ptr<Sketcher>(
        new FnSketcher<KmvSketch, KmvOptions, &SketchKmv>(
            name(), concrete_, options().dimension));
  }

  Status CheckCompatible(const AnySketch& sketch) const override {
    auto typed = Cast<KmvSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    const KmvSketch& s = *typed.value();
    if (s.k != concrete_.k || s.seed != concrete_.seed ||
        s.hash_kind != concrete_.hash_kind ||
        s.dimension != options().dimension) {
      return Status::InvalidArgument(
          "kmv sketch parameters do not match the family's "
          "(k, seed, hash, dimension)");
    }
    if (s.samples.size() > s.k) {
      return Status::InvalidArgument("kmv sketch holds more than k samples");
    }
    return Status::Ok();
  }

  Result<double> Estimate(const AnySketch& a,
                          const AnySketch& b) const override {
    auto ta = Cast<KmvSketch>(name(), a);
    IPS_RETURN_IF_ERROR(ta.status());
    auto tb = Cast<KmvSketch>(name(), b);
    IPS_RETURN_IF_ERROR(tb.status());
    return EstimateKmvInnerProduct(*ta.value(), *tb.value());
  }

  Result<std::unique_ptr<AnySketch>> Merge(const AnySketch& a,
                                           const AnySketch& b) const override {
    auto ta = Cast<KmvSketch>(name(), a);
    IPS_RETURN_IF_ERROR(ta.status());
    auto tb = Cast<KmvSketch>(name(), b);
    IPS_RETURN_IF_ERROR(tb.status());
    auto merged = MergeKmv(*ta.value(), *tb.value());
    IPS_RETURN_IF_ERROR(merged.status());
    return Wrap(std::move(merged).value());
  }

  Result<std::unique_ptr<AnySketch>> Truncate(const AnySketch& sketch,
                                              size_t m) const override {
    auto typed = Cast<KmvSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    if (m > typed.value()->k) {
      return Status::OutOfRange("truncation beyond the sketch's capacity");
    }
    return Wrap(TruncatedKmv(*typed.value(), m));
  }

  Result<double> StorageWords(const AnySketch& sketch) const override {
    auto typed = Cast<KmvSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return typed.value()->StorageWords();
  }

  Result<double> ResidentWords(const AnySketch& sketch) const override {
    auto typed = Cast<KmvSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    // Two resident doubles per retained sample (hash + value).
    return 2.0 * static_cast<double>(typed.value()->samples.size());
  }

  Result<std::string> Serialize(const AnySketch& sketch) const override {
    auto typed = Cast<KmvSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return SerializeKmv(*typed.value());
  }

  Result<std::unique_ptr<AnySketch>> Deserialize(
      std::string_view bytes) const override {
    auto parsed = DeserializeKmv(bytes);
    IPS_RETURN_IF_ERROR(parsed.status());
    return Wrap(std::move(parsed).value());
  }

 private:
  KmvOptions concrete_;
};

// --- CS ----------------------------------------------------------------------

class CsFamily final : public SketchFamily {
 public:
  CsFamily(FamilyInfo info, FamilyOptions resolved,
           CountSketchOptions concrete)
      : SketchFamily(std::move(info), std::move(resolved)),
        concrete_(concrete) {}

  std::unique_ptr<AnySketch> NewSketch() const override {
    return std::make_unique<TypedSketch<CountSketch>>();
  }

  Result<std::unique_ptr<Sketcher>> MakeSketcher() const override {
    return std::unique_ptr<Sketcher>(
        new FnSketcher<CountSketch, CountSketchOptions, &SketchCount>(
            name(), concrete_, options().dimension));
  }

  Status CheckCompatible(const AnySketch& sketch) const override {
    auto typed = Cast<CountSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    const CountSketch& s = *typed.value();
    if (s.tables.size() != concrete_.repetitions ||
        s.width() != concrete_.total_counters / concrete_.repetitions ||
        s.seed != concrete_.seed || s.dimension != options().dimension) {
      return Status::InvalidArgument(
          "cs sketch parameters do not match the family's "
          "(repetitions, width, seed, dimension)");
    }
    for (const auto& table : s.tables) {
      if (table.size() != s.width()) {
        return Status::InvalidArgument("cs sketch tables have ragged widths");
      }
    }
    return Status::Ok();
  }

  Result<double> Estimate(const AnySketch& a,
                          const AnySketch& b) const override {
    auto ta = Cast<CountSketch>(name(), a);
    IPS_RETURN_IF_ERROR(ta.status());
    auto tb = Cast<CountSketch>(name(), b);
    IPS_RETURN_IF_ERROR(tb.status());
    return EstimateCountSketchInnerProduct(*ta.value(), *tb.value());
  }

  Result<std::unique_ptr<AnySketch>> Merge(const AnySketch& a,
                                           const AnySketch& b) const override {
    auto ta = Cast<CountSketch>(name(), a);
    IPS_RETURN_IF_ERROR(ta.status());
    auto tb = Cast<CountSketch>(name(), b);
    IPS_RETURN_IF_ERROR(tb.status());
    auto merged = MergeCountSketch(*ta.value(), *tb.value());
    IPS_RETURN_IF_ERROR(merged.status());
    return Wrap(std::move(merged).value());
  }

  Result<double> StorageWords(const AnySketch& sketch) const override {
    auto typed = Cast<CountSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return typed.value()->StorageWords();
  }

  Result<std::string> Serialize(const AnySketch& sketch) const override {
    auto typed = Cast<CountSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return SerializeCountSketch(*typed.value());
  }

  Result<std::unique_ptr<AnySketch>> Deserialize(
      std::string_view bytes) const override {
    auto parsed = DeserializeCountSketch(bytes);
    IPS_RETURN_IF_ERROR(parsed.status());
    return Wrap(std::move(parsed).value());
  }

 private:
  CountSketchOptions concrete_;
};

// --- JL ----------------------------------------------------------------------

class JlFamily final : public SketchFamily {
 public:
  JlFamily(FamilyInfo info, FamilyOptions resolved, JlOptions concrete)
      : SketchFamily(std::move(info), std::move(resolved)),
        concrete_(concrete) {}

  std::unique_ptr<AnySketch> NewSketch() const override {
    return std::make_unique<TypedSketch<JlSketch>>();
  }

  Result<std::unique_ptr<Sketcher>> MakeSketcher() const override {
    return std::unique_ptr<Sketcher>(
        new FnSketcher<JlSketch, JlOptions, &SketchJl>(name(), concrete_,
                                                       options().dimension));
  }

  Status CheckCompatible(const AnySketch& sketch) const override {
    auto typed = Cast<JlSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    const JlSketch& s = *typed.value();
    if (s.num_rows() != concrete_.num_rows || s.seed != concrete_.seed ||
        s.dimension != options().dimension) {
      return Status::InvalidArgument(
          "jl sketch parameters do not match the family's "
          "(rows, seed, dimension)");
    }
    return Status::Ok();
  }

  Result<double> Estimate(const AnySketch& a,
                          const AnySketch& b) const override {
    auto ta = Cast<JlSketch>(name(), a);
    IPS_RETURN_IF_ERROR(ta.status());
    auto tb = Cast<JlSketch>(name(), b);
    IPS_RETURN_IF_ERROR(tb.status());
    return EstimateJlInnerProduct(*ta.value(), *tb.value());
  }

  Result<std::unique_ptr<AnySketch>> Merge(const AnySketch& a,
                                           const AnySketch& b) const override {
    auto ta = Cast<JlSketch>(name(), a);
    IPS_RETURN_IF_ERROR(ta.status());
    auto tb = Cast<JlSketch>(name(), b);
    IPS_RETURN_IF_ERROR(tb.status());
    auto merged = MergeJl(*ta.value(), *tb.value());
    IPS_RETURN_IF_ERROR(merged.status());
    return Wrap(std::move(merged).value());
  }

  Result<std::unique_ptr<AnySketch>> Truncate(const AnySketch& sketch,
                                              size_t m) const override {
    auto typed = Cast<JlSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    if (m > typed.value()->num_rows()) {
      return Status::OutOfRange("truncation beyond the sketch's rows");
    }
    return Wrap(TruncatedJl(*typed.value(), m));
  }

  Result<double> StorageWords(const AnySketch& sketch) const override {
    auto typed = Cast<JlSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return typed.value()->StorageWords();
  }

  Result<std::string> Serialize(const AnySketch& sketch) const override {
    auto typed = Cast<JlSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return SerializeJl(*typed.value());
  }

  Result<std::unique_ptr<AnySketch>> Deserialize(
      std::string_view bytes) const override {
    auto parsed = DeserializeJl(bytes);
    IPS_RETURN_IF_ERROR(parsed.status());
    return Wrap(std::move(parsed).value());
  }

 private:
  JlOptions concrete_;
};

// --- quantized WMH encodings -------------------------------------------------

/// Mixin implemented by the compact catalog families: the conversion from a
/// resident full-precision WmhSketch that QuantizeWmhSketch (and through
/// it, the service layer's CompactifyInPlace/QuantizeStore) dispatches on.
class WmhQuantizingFamily {
 public:
  virtual ~WmhQuantizingFamily() = default;

  /// The quantized form of `full`, wrapped for this family.
  virtual Result<std::unique_ptr<AnySketch>> QuantizeFrom(
      const WmhSketch& full) const = 0;
};

/// Sketcher shared by both quantized families: sketches full-precision into
/// a reusable scratch sketch with the kDart-or-configured engine (the hot
/// path is unchanged), then quantizes as a cheap post-pass.
template <typename CompactT>
class QuantizingFamilySketcher final : public Sketcher {
 public:
  QuantizingFamilySketcher(std::string family, WmhSketcher sketcher,
                           uint64_t dimension, uint32_t bits)
      : family_(std::move(family)),
        sketcher_(std::move(sketcher)),
        dimension_(dimension),
        bits_(bits) {}

  Status Sketch(const SparseVector& a, AnySketch* out) override {
    if (a.dimension() != dimension_) {
      return Status::InvalidArgument(
          "vector dimension does not match the family's");
    }
    CompactT* typed = GetMutableSketchAs<CompactT>(out);
    if (typed == nullptr) {
      return Status::InvalidArgument("output sketch is not of family '" +
                                     family_ + "'");
    }
    IPS_RETURN_IF_ERROR(sketcher_.Sketch(a, &scratch_));
    return Quantize(typed);
  }

 private:
  Status Quantize(CompactWmhSketch* out) {
    CompactFromWmh(scratch_, out);
    return Status::Ok();
  }
  Status Quantize(BbitWmhSketch* out) {
    return BbitFromWmh(scratch_, bits_, out);
  }

  std::string family_;
  WmhSketcher sketcher_;
  WmhSketch scratch_;
  uint64_t dimension_;
  uint32_t bits_;  // unused by the compact encoding
};

class CompactWmhFamily final : public SketchFamily,
                               public WmhQuantizingFamily {
 public:
  CompactWmhFamily(FamilyInfo info, FamilyOptions resolved,
                   WmhOptions concrete)
      : SketchFamily(std::move(info), std::move(resolved)),
        concrete_(concrete) {}

  std::unique_ptr<AnySketch> NewSketch() const override {
    return std::make_unique<TypedSketch<CompactWmhSketch>>();
  }

  Result<std::unique_ptr<Sketcher>> MakeSketcher() const override {
    auto made = WmhSketcher::Make(concrete_);
    IPS_RETURN_IF_ERROR(made.status());
    return std::unique_ptr<Sketcher>(
        new QuantizingFamilySketcher<CompactWmhSketch>(
            name(), std::move(made).value(), options().dimension,
            /*bits=*/0));
  }

  Status CheckCompatible(const AnySketch& sketch) const override {
    auto typed = Cast<CompactWmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    const CompactWmhSketch& s = *typed.value();
    if (s.num_samples() != concrete_.num_samples ||
        s.seed != concrete_.seed || s.L != concrete_.L ||
        s.engine != concrete_.engine ||
        s.dimension != options().dimension) {
      return Status::InvalidArgument(
          "wmh_compact sketch parameters do not match the family's "
          "(m, seed, L, engine, dimension)");
    }
    if (s.hashes.size() != s.values.size()) {
      return Status::InvalidArgument(
          "wmh_compact sketch hash/value length mismatch");
    }
    return Status::Ok();
  }

  Result<double> Estimate(const AnySketch& a,
                          const AnySketch& b) const override {
    auto ta = Cast<CompactWmhSketch>(name(), a);
    IPS_RETURN_IF_ERROR(ta.status());
    auto tb = Cast<CompactWmhSketch>(name(), b);
    IPS_RETURN_IF_ERROR(tb.status());
    return EstimateCompactWmhInnerProduct(*ta.value(), *tb.value());
  }

  Result<std::unique_ptr<AnySketch>> Truncate(const AnySketch& sketch,
                                              size_t m) const override {
    auto typed = Cast<CompactWmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    if (m > typed.value()->num_samples()) {
      return Status::OutOfRange("truncation beyond the sketch's samples");
    }
    // Compact sketches are coordinate-wise, so prefix slicing is exact:
    // truncation commutes with quantization.
    return Wrap(TruncatedCompactWmh(*typed.value(), m));
  }

  Result<double> StorageWords(const AnySketch& sketch) const override {
    auto typed = Cast<CompactWmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return typed.value()->StorageWords();
  }

  Status AppendLshCodes(const AnySketch& sketch,
                        std::vector<uint64_t>* out) const override {
    return AppendCodesImpl<CompactWmhSlabTraits>(*this, sketch, out);
  }

  Result<std::unique_ptr<SketchSlab>> NewSlab() const override {
    return std::unique_ptr<SketchSlab>(new SoaSlab<CompactWmhSlabTraits>(
        this, CompactWmhSlabTraits{concrete_.L}));
  }

  Result<std::string> Serialize(const AnySketch& sketch) const override {
    auto typed = Cast<CompactWmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return SerializeCompactWmh(*typed.value());
  }

  Result<std::unique_ptr<AnySketch>> Deserialize(
      std::string_view bytes) const override {
    auto parsed = DeserializeCompactWmh(bytes);
    IPS_RETURN_IF_ERROR(parsed.status());
    return Wrap(std::move(parsed).value());
  }

  Result<std::unique_ptr<AnySketch>> QuantizeFrom(
      const WmhSketch& full) const override {
    return Wrap(CompactFromWmh(full));
  }

 private:
  WmhOptions concrete_;
};

class BbitWmhFamily final : public SketchFamily, public WmhQuantizingFamily {
 public:
  BbitWmhFamily(FamilyInfo info, FamilyOptions resolved, WmhOptions concrete,
                uint32_t bits)
      : SketchFamily(std::move(info), std::move(resolved)),
        concrete_(concrete),
        bits_(bits) {}

  std::unique_ptr<AnySketch> NewSketch() const override {
    return std::make_unique<TypedSketch<BbitWmhSketch>>();
  }

  Result<std::unique_ptr<Sketcher>> MakeSketcher() const override {
    auto made = WmhSketcher::Make(concrete_);
    IPS_RETURN_IF_ERROR(made.status());
    return std::unique_ptr<Sketcher>(
        new QuantizingFamilySketcher<BbitWmhSketch>(
            name(), std::move(made).value(), options().dimension, bits_));
  }

  Status CheckCompatible(const AnySketch& sketch) const override {
    auto typed = Cast<BbitWmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    const BbitWmhSketch& s = *typed.value();
    if (s.num_samples() != concrete_.num_samples ||
        s.seed != concrete_.seed || s.L != concrete_.L ||
        s.engine != concrete_.engine || s.bits != bits_ ||
        s.dimension != options().dimension) {
      return Status::InvalidArgument(
          "wmh_bbit sketch parameters do not match the family's "
          "(m, seed, L, engine, bits, dimension)");
    }
    if (s.fingerprints.size() != s.values.size()) {
      return Status::InvalidArgument(
          "wmh_bbit sketch fingerprint/value length mismatch");
    }
    // The same declared-width invariant the wire decoder enforces on load
    // — otherwise a store could persist a file its own decoder refuses to
    // reopen.
    return CheckBbitFingerprintWidths(s);
  }

  Result<double> Estimate(const AnySketch& a,
                          const AnySketch& b) const override {
    auto ta = Cast<BbitWmhSketch>(name(), a);
    IPS_RETURN_IF_ERROR(ta.status());
    auto tb = Cast<BbitWmhSketch>(name(), b);
    IPS_RETURN_IF_ERROR(tb.status());
    return EstimateBbitWmhInnerProduct(*ta.value(), *tb.value());
  }

  Result<std::unique_ptr<AnySketch>> Truncate(const AnySketch& sketch,
                                              size_t m) const override {
    auto typed = Cast<BbitWmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    if (m > typed.value()->num_samples()) {
      return Status::OutOfRange("truncation beyond the sketch's samples");
    }
    return Wrap(TruncatedBbitWmh(*typed.value(), m));
  }

  Result<double> StorageWords(const AnySketch& sketch) const override {
    auto typed = Cast<BbitWmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return typed.value()->StorageWords();
  }

  Result<double> ResidentWords(const AnySketch& sketch) const override {
    auto typed = Cast<BbitWmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    // Fingerprints live in uint32_t slots regardless of b, so the resident
    // footprint is one word per sample + the norm (the §5 accounting
    // charges only (b + 32)/64 per sample).
    return static_cast<double>(typed.value()->num_samples()) + 1.0;
  }

  Status AppendLshCodes(const AnySketch& sketch,
                        std::vector<uint64_t>* out) const override {
    return AppendCodesImpl<BbitWmhSlabTraits>(*this, sketch, out);
  }

  Result<std::unique_ptr<SketchSlab>> NewSlab() const override {
    return std::unique_ptr<SketchSlab>(
        new SoaSlab<BbitWmhSlabTraits>(this, BbitWmhSlabTraits{bits_}));
  }

  Result<std::string> Serialize(const AnySketch& sketch) const override {
    auto typed = Cast<BbitWmhSketch>(name(), sketch);
    IPS_RETURN_IF_ERROR(typed.status());
    return SerializeBbitWmh(*typed.value());
  }

  Result<std::unique_ptr<AnySketch>> Deserialize(
      std::string_view bytes) const override {
    auto parsed = DeserializeBbitWmh(bytes);
    IPS_RETURN_IF_ERROR(parsed.status());
    return Wrap(std::move(parsed).value());
  }

  Result<std::unique_ptr<AnySketch>> QuantizeFrom(
      const WmhSketch& full) const override {
    auto quantized = BbitFromWmh(full, bits_);
    IPS_RETURN_IF_ERROR(quantized.status());
    return Wrap(std::move(quantized).value());
  }

 private:
  WmhOptions concrete_;
  uint32_t bits_;
};

// --- per-family construction -------------------------------------------------

/// Parses and resolves the WMH-shaped params {L, engine} shared by "wmh"
/// and its quantized encodings: defaults are materialized into
/// `options->params` so the resolved identity is complete and comparable.
Status ResolveWmhParams(FamilyOptions* options, WmhOptions* concrete) {
  concrete->num_samples = options->num_samples;
  concrete->seed = options->seed;
  IPS_RETURN_IF_ERROR(ParseU64Param(*options, "L", &concrete->L));
  auto engine_it = options->params.find("engine");
  if (engine_it != options->params.end()) {
    if (engine_it->second == "active_index") {
      concrete->engine = WmhEngine::kActiveIndex;
    } else if (engine_it->second == "expanded_reference") {
      concrete->engine = WmhEngine::kExpandedReference;
    } else if (engine_it->second == "dart") {
      concrete->engine = WmhEngine::kDart;
    } else {
      return Status::InvalidArgument(
          "option 'engine' must be dart, active_index, or "
          "expanded_reference; got " +
          engine_it->second);
    }
  }
  // Resolve L and the engine here, as the store always has: every sketch
  // built through this family — and every later reopening of a persisted
  // store — agrees on them.
  if (concrete->L == 0) concrete->L = DefaultL(options->dimension);
  IPS_RETURN_IF_ERROR(concrete->Validate());
  options->params["L"] = std::to_string(concrete->L);
  options->params["engine"] = WmhEngineName(concrete->engine);
  return Status::Ok();
}

Result<std::shared_ptr<const SketchFamily>> MakeWmh(const FamilyInfo& info,
                                                    FamilyOptions options) {
  IPS_RETURN_IF_ERROR(CheckKnownParams("wmh", options, {"L", "engine"}));
  WmhOptions concrete;
  IPS_RETURN_IF_ERROR(ResolveWmhParams(&options, &concrete));
  return std::shared_ptr<const SketchFamily>(
      new WmhFamily(info, std::move(options), concrete));
}

Result<std::shared_ptr<const SketchFamily>> MakeWmhCompact(
    const FamilyInfo& info, FamilyOptions options) {
  IPS_RETURN_IF_ERROR(
      CheckKnownParams("wmh_compact", options, {"L", "engine"}));
  WmhOptions concrete;
  IPS_RETURN_IF_ERROR(ResolveWmhParams(&options, &concrete));
  return std::shared_ptr<const SketchFamily>(
      new CompactWmhFamily(info, std::move(options), concrete));
}

Result<std::shared_ptr<const SketchFamily>> MakeWmhBbit(
    const FamilyInfo& info, FamilyOptions options) {
  IPS_RETURN_IF_ERROR(
      CheckKnownParams("wmh_bbit", options, {"L", "engine", "bits"}));
  uint64_t bits = 16;  // the b-bit literature's default operating point
  IPS_RETURN_IF_ERROR(ParseU64Param(options, "bits", &bits));
  if (bits < 1 || bits > 32) {
    return Status::InvalidArgument("option 'bits' must be in [1, 32]; got " +
                                   std::to_string(bits));
  }
  WmhOptions concrete;
  IPS_RETURN_IF_ERROR(ResolveWmhParams(&options, &concrete));
  options.params["bits"] = std::to_string(bits);
  return std::shared_ptr<const SketchFamily>(new BbitWmhFamily(
      info, std::move(options), concrete, static_cast<uint32_t>(bits)));
}

Result<std::shared_ptr<const SketchFamily>> MakeIcws(const FamilyInfo& info,
                                                     FamilyOptions options) {
  IPS_RETURN_IF_ERROR(CheckKnownParams("icws", options, {"L", "engine"}));
  IcwsOptions concrete;
  concrete.num_samples = options.num_samples;
  concrete.seed = options.seed;
  // The family default is the fast ingest engine; the core IcwsOptions
  // default stays kExact (the continuous reference for direct callers).
  concrete.engine = IcwsEngine::kDart;
  auto engine_it = options.params.find("engine");
  if (engine_it != options.params.end()) {
    if (engine_it->second == "icws") {
      concrete.engine = IcwsEngine::kExact;
    } else if (engine_it->second == "dart") {
      concrete.engine = IcwsEngine::kDart;
    } else {
      return Status::InvalidArgument(
          "option 'engine' must be dart or icws; got " + engine_it->second);
    }
  }
  IPS_RETURN_IF_ERROR(ParseU64Param(options, "L", &concrete.L));
  if (concrete.engine == IcwsEngine::kExact) {
    if (options.params.count("L") != 0) {
      return Status::InvalidArgument(
          "option 'L' requires engine=dart (the exact ICWS engine has no "
          "discretization parameter)");
    }
    concrete.L = 0;
    options.params["engine"] = "icws";
  } else {
    if (concrete.L == 0) concrete.L = DefaultL(options.dimension);
    options.params["engine"] = "dart";
    options.params["L"] = std::to_string(concrete.L);
  }
  IPS_RETURN_IF_ERROR(concrete.Validate());
  return std::shared_ptr<const SketchFamily>(
      new IcwsFamily(info, std::move(options), concrete));
}

Result<std::shared_ptr<const SketchFamily>> MakeMh(const FamilyInfo& info,
                                                   FamilyOptions options) {
  IPS_RETURN_IF_ERROR(CheckKnownParams("mh", options, {"hash"}));
  MhOptions concrete;
  concrete.num_samples = options.num_samples;
  concrete.seed = options.seed;
  IPS_RETURN_IF_ERROR(ParseHashKindParam(options, &concrete.hash_kind));
  IPS_RETURN_IF_ERROR(concrete.Validate());
  options.params["hash"] = HashKindName(concrete.hash_kind);
  return std::shared_ptr<const SketchFamily>(
      new MhFamily(info, std::move(options), concrete));
}

Result<std::shared_ptr<const SketchFamily>> MakeKmv(const FamilyInfo& info,
                                                    FamilyOptions options) {
  IPS_RETURN_IF_ERROR(CheckKnownParams("kmv", options, {"hash"}));
  KmvOptions concrete;
  concrete.k = options.num_samples;
  concrete.seed = options.seed;
  IPS_RETURN_IF_ERROR(ParseHashKindParam(options, &concrete.hash_kind));
  IPS_RETURN_IF_ERROR(concrete.Validate());
  options.params["hash"] = HashKindName(concrete.hash_kind);
  return std::shared_ptr<const SketchFamily>(
      new KmvFamily(info, std::move(options), concrete));
}

Result<std::shared_ptr<const SketchFamily>> MakeCs(const FamilyInfo& info,
                                                   FamilyOptions options) {
  IPS_RETURN_IF_ERROR(CheckKnownParams("cs", options, {"repetitions"}));
  CountSketchOptions concrete;
  concrete.total_counters = options.num_samples;
  concrete.seed = options.seed;
  uint64_t repetitions = concrete.repetitions;
  IPS_RETURN_IF_ERROR(ParseU64Param(options, "repetitions", &repetitions));
  concrete.repetitions = static_cast<size_t>(repetitions);
  IPS_RETURN_IF_ERROR(concrete.Validate());
  options.params["repetitions"] = std::to_string(concrete.repetitions);
  return std::shared_ptr<const SketchFamily>(
      new CsFamily(info, std::move(options), concrete));
}

Result<std::shared_ptr<const SketchFamily>> MakeJl(const FamilyInfo& info,
                                                   FamilyOptions options) {
  IPS_RETURN_IF_ERROR(CheckKnownParams("jl", options, {}));
  JlOptions concrete;
  concrete.num_rows = options.num_samples;
  concrete.seed = options.seed;
  IPS_RETURN_IF_ERROR(concrete.Validate());
  return std::shared_ptr<const SketchFamily>(
      new JlFamily(info, std::move(options), concrete));
}

}  // namespace

// --- registry ----------------------------------------------------------------

const std::vector<FamilyInfo>& RegisteredFamilies() {
  static const std::vector<FamilyInfo>* families = new std::vector<FamilyInfo>{
      {"jl", "JL", StorageClass::kLinear, /*merge=*/true, /*trunc=*/true,
       /*banding=*/false},
      {"cs", "CS", StorageClass::kLinear, /*merge=*/true, /*trunc=*/false,
       /*banding=*/false},
      {"mh", "MH", StorageClass::kSampling, /*merge=*/false, /*trunc=*/true,
       /*banding=*/true},
      {"kmv", "KMV", StorageClass::kSampling, /*merge=*/true, /*trunc=*/true,
       /*banding=*/false},
      {"wmh", "WMH", StorageClass::kSamplingWithNorm, /*merge=*/false,
       /*trunc=*/true, /*banding=*/true},
      {"icws", "ICWS", StorageClass::kSamplingWithNorm, /*merge=*/false,
       /*trunc=*/true, /*banding=*/true},
      {"wmh_compact", "WMH32", StorageClass::kCompactSamplingWithNorm,
       /*merge=*/false, /*trunc=*/true, /*banding=*/true},
      {"wmh_bbit", "WMHb", StorageClass::kBbitSamplingWithNorm,
       /*merge=*/false, /*trunc=*/true, /*banding=*/true},
  };
  return *families;
}

Result<FamilyInfo> GetFamilyInfo(const std::string& name) {
  for (const FamilyInfo& info : RegisteredFamilies()) {
    if (info.name == name) return info;
  }
  std::string known;
  for (const FamilyInfo& info : RegisteredFamilies()) {
    if (!known.empty()) known += ", ";
    known += info.name;
  }
  return Status::InvalidArgument("unknown sketch family '" + name +
                                 "' (registered: " + known + ")");
}

Result<std::shared_ptr<const SketchFamily>> MakeFamily(
    const std::string& name, const FamilyOptions& options) {
  auto info = GetFamilyInfo(name);
  IPS_RETURN_IF_ERROR(info.status());
  IPS_RETURN_IF_ERROR(CommonValidate(options));
  if (name == "wmh") return MakeWmh(info.value(), options);
  if (name == "wmh_compact") return MakeWmhCompact(info.value(), options);
  if (name == "wmh_bbit") return MakeWmhBbit(info.value(), options);
  if (name == "icws") return MakeIcws(info.value(), options);
  if (name == "mh") return MakeMh(info.value(), options);
  if (name == "kmv") return MakeKmv(info.value(), options);
  if (name == "cs") return MakeCs(info.value(), options);
  return MakeJl(info.value(), options);
}

Result<std::unique_ptr<AnySketch>> QuantizeWmhSketch(
    const SketchFamily& target, const AnySketch& full) {
  const auto* quantizing = dynamic_cast<const WmhQuantizingFamily*>(&target);
  if (quantizing == nullptr) {
    return Status::InvalidArgument(
        "family '" + target.name() +
        "' is not a quantized WMH encoding (expected wmh_compact or "
        "wmh_bbit)");
  }
  const WmhSketch* typed = GetSketchAs<WmhSketch>(full);
  if (typed == nullptr) {
    return Status::InvalidArgument(
        "only full-precision wmh sketches can be quantized");
  }
  auto out = quantizing->QuantizeFrom(*typed);
  IPS_RETURN_IF_ERROR(out.status());
  // The quantized sketch must land exactly on the target's resolved
  // identity — a full sketch built with different (m, seed, L, engine) is
  // rejected here, never silently relabeled.
  IPS_RETURN_IF_ERROR(target.CheckCompatible(*out.value()));
  return out;
}

}  // namespace ipsketch
