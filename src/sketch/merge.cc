#include "sketch/merge.h"

namespace ipsketch {

Result<JlSketch> MergeJl(const JlSketch& a, const JlSketch& b) {
  if (a.num_rows() != b.num_rows()) {
    return Status::InvalidArgument("sketch row counts differ");
  }
  if (a.seed != b.seed) return Status::InvalidArgument("sketch seeds differ");
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }
  JlSketch out = a;
  for (size_t r = 0; r < out.projection.size(); ++r) {
    out.projection[r] += b.projection[r];
  }
  return out;
}

Result<CountSketch> MergeCountSketch(const CountSketch& a,
                                     const CountSketch& b) {
  if (a.tables.size() != b.tables.size() || a.width() != b.width()) {
    return Status::InvalidArgument("sketch shapes differ");
  }
  if (a.seed != b.seed) return Status::InvalidArgument("sketch seeds differ");
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }
  CountSketch out = a;
  for (size_t r = 0; r < out.tables.size(); ++r) {
    for (size_t j = 0; j < out.tables[r].size(); ++j) {
      out.tables[r][j] += b.tables[r][j];
    }
  }
  return out;
}

Result<KmvSketch> MergeKmv(const KmvSketch& a, const KmvSketch& b) {
  if (a.k != b.k) return Status::InvalidArgument("sketch capacities differ");
  if (a.seed != b.seed) return Status::InvalidArgument("sketch seeds differ");
  if (a.hash_kind != b.hash_kind) {
    return Status::InvalidArgument("sketch hash families differ");
  }
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }

  KmvSketch out;
  out.k = a.k;
  out.seed = a.seed;
  out.hash_kind = a.hash_kind;
  out.dimension = a.dimension;
  out.samples.reserve(a.samples.size() + b.samples.size());

  size_t i = 0, j = 0;
  while (i < a.samples.size() || j < b.samples.size()) {
    if (j == b.samples.size() ||
        (i < a.samples.size() && a.samples[i].hash < b.samples[j].hash)) {
      out.samples.push_back(a.samples[i++]);
    } else if (i == a.samples.size() ||
               b.samples[j].hash < a.samples[i].hash) {
      out.samples.push_back(b.samples[j++]);
    } else {
      // Same hash ⇒ same index: the merged vector holds the value sum.
      const double sum = a.samples[i].value + b.samples[j].value;
      if (sum != 0.0) out.samples.push_back({a.samples[i].hash, sum});
      ++i;
      ++j;
    }
  }
  if (out.samples.size() > out.k) out.samples.resize(out.k);
  return out;
}

}  // namespace ipsketch
