#include "sketch/minhash.h"

#include <algorithm>

#include "common/hash.h"
#include "core/simd/dispatch.h"

namespace ipsketch {

Status MhOptions::Validate() const {
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  return Status::Ok();
}

Result<MhSketch> SketchMh(const SparseVector& a, const MhOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  MhSketch sketch;
  sketch.seed = options.seed;
  sketch.dimension = a.dimension();
  sketch.hash_kind = options.hash_kind;
  if (a.empty()) {
    // Hash supremum: keeps min(h_a, h_b) equal to h_b in the union
    // estimator while making matches impossible.
    sketch.hashes.assign(options.num_samples, 1.0);
    sketch.values.assign(options.num_samples, 0.0);
    return sketch;
  }
  sketch.hashes.resize(options.num_samples);
  sketch.values.resize(options.num_samples);
  for (size_t s = 0; s < options.num_samples; ++s) {
    const IndexHasher h(options.hash_kind, options.seed, s);
    double best_hash = 2.0;
    double best_value = 0.0;
    for (const Entry& e : a.entries()) {
      const double hv = h.HashUnit(e.index);
      if (hv < best_hash) {
        best_hash = hv;
        best_value = e.value;
      }
    }
    sketch.hashes[s] = best_hash;
    sketch.values[s] = best_value;
  }
  return sketch;
}

Result<double> EstimateMhInnerProduct(const MhSketch& a, const MhSketch& b) {
  if (a.num_samples() != b.num_samples()) {
    return Status::InvalidArgument("sketch sample counts differ");
  }
  if (a.num_samples() == 0) return Status::InvalidArgument("sketches are empty");
  if (a.seed != b.seed) return Status::InvalidArgument("sketch seeds differ");
  if (a.hash_kind != b.hash_kind) {
    return Status::InvalidArgument("sketch hash families differ");
  }
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }

  return EstimateMhSpans(a.hashes.data(), a.values.data(), b.hashes.data(),
                         b.values.data(), a.num_samples());
}

Result<double> EstimateMhSpans(const double* a_hashes, const double* a_values,
                               const double* b_hashes, const double* b_values,
                               size_t m) {
  if (m == 0) return Status::InvalidArgument("sketches are empty");
  // Fused min/match hot loop, dispatched to the widest kernel tier the CPU
  // supports (scalar and vector tiers are bit-identical). The 1.0 sentinel
  // (empty sketch) never counts as a match.
  const simd::MhPairStats stats = simd::ActiveKernel().mh_pair(
      a_hashes, b_hashes, a_values, b_values, m);
  if (stats.min_hash_sum <= 0.0) {
    return Status::Internal("degenerate minimum-hash sum");
  }
  const double md = static_cast<double>(m);
  const double u_tilde = md / stats.min_hash_sum - 1.0;
  return (u_tilde / md) * stats.match_sum;
}

namespace {

Status CheckMhCompatible(const MhSketch& a, const MhSketch& b) {
  if (a.num_samples() != b.num_samples() || a.num_samples() == 0) {
    return Status::InvalidArgument("sketch sample counts differ or empty");
  }
  if (a.seed != b.seed) return Status::InvalidArgument("sketch seeds differ");
  if (a.hash_kind != b.hash_kind) {
    return Status::InvalidArgument("sketch hash families differ");
  }
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }
  return Status::Ok();
}

}  // namespace

Result<double> EstimateSupportJaccard(const MhSketch& a, const MhSketch& b) {
  IPS_RETURN_IF_ERROR(CheckMhCompatible(a, b));
  // The 1.0 sentinel (empty sketch) never counts as a match.
  const uint64_t matches = simd::ActiveKernel().count_eq_below1_f64(
      a.hashes.data(), b.hashes.data(), a.num_samples());
  return static_cast<double>(matches) /
         static_cast<double>(a.num_samples());
}

Result<double> EstimateSupportUnion(const MhSketch& a, const MhSketch& b) {
  IPS_RETURN_IF_ERROR(CheckMhCompatible(a, b));
  const double min_hash_sum = simd::ActiveKernel().min_sum_f64(
      a.hashes.data(), b.hashes.data(), a.num_samples());
  if (min_hash_sum <= 0.0) {
    return Status::Internal("degenerate minimum-hash sum");
  }
  const double md = static_cast<double>(a.num_samples());
  return md / min_hash_sum - 1.0;
}

MhSketch TruncatedMh(const MhSketch& sketch, size_t m) {
  IPS_CHECK(m > 0 && m <= sketch.num_samples());
  MhSketch out = sketch;
  out.hashes.resize(m);
  out.values.resize(m);
  return out;
}

}  // namespace ipsketch
