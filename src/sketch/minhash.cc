#include "sketch/minhash.h"

#include <algorithm>

#include "common/hash.h"

namespace ipsketch {

Status MhOptions::Validate() const {
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  return Status::Ok();
}

Result<MhSketch> SketchMh(const SparseVector& a, const MhOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  MhSketch sketch;
  sketch.seed = options.seed;
  sketch.dimension = a.dimension();
  sketch.hash_kind = options.hash_kind;
  if (a.empty()) {
    // Hash supremum: keeps min(h_a, h_b) equal to h_b in the union
    // estimator while making matches impossible.
    sketch.hashes.assign(options.num_samples, 1.0);
    sketch.values.assign(options.num_samples, 0.0);
    return sketch;
  }
  sketch.hashes.resize(options.num_samples);
  sketch.values.resize(options.num_samples);
  for (size_t s = 0; s < options.num_samples; ++s) {
    const IndexHasher h(options.hash_kind, options.seed, s);
    double best_hash = 2.0;
    double best_value = 0.0;
    for (const Entry& e : a.entries()) {
      const double hv = h.HashUnit(e.index);
      if (hv < best_hash) {
        best_hash = hv;
        best_value = e.value;
      }
    }
    sketch.hashes[s] = best_hash;
    sketch.values[s] = best_value;
  }
  return sketch;
}

Result<double> EstimateMhInnerProduct(const MhSketch& a, const MhSketch& b) {
  if (a.num_samples() != b.num_samples()) {
    return Status::InvalidArgument("sketch sample counts differ");
  }
  if (a.num_samples() == 0) return Status::InvalidArgument("sketches are empty");
  if (a.seed != b.seed) return Status::InvalidArgument("sketch seeds differ");
  if (a.hash_kind != b.hash_kind) {
    return Status::InvalidArgument("sketch hash families differ");
  }
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }

  const size_t m = a.num_samples();
  double min_hash_sum = 0.0;
  double match_sum = 0.0;
  for (size_t i = 0; i < m; ++i) {
    min_hash_sum += std::min(a.hashes[i], b.hashes[i]);
    if (a.hashes[i] == b.hashes[i] && a.hashes[i] < 1.0) {
      match_sum += a.values[i] * b.values[i];
    }
  }
  if (min_hash_sum <= 0.0) {
    return Status::Internal("degenerate minimum-hash sum");
  }
  const double md = static_cast<double>(m);
  const double u_tilde = md / min_hash_sum - 1.0;
  return (u_tilde / md) * match_sum;
}

namespace {

Status CheckMhCompatible(const MhSketch& a, const MhSketch& b) {
  if (a.num_samples() != b.num_samples() || a.num_samples() == 0) {
    return Status::InvalidArgument("sketch sample counts differ or empty");
  }
  if (a.seed != b.seed) return Status::InvalidArgument("sketch seeds differ");
  if (a.hash_kind != b.hash_kind) {
    return Status::InvalidArgument("sketch hash families differ");
  }
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }
  return Status::Ok();
}

}  // namespace

Result<double> EstimateSupportJaccard(const MhSketch& a, const MhSketch& b) {
  IPS_RETURN_IF_ERROR(CheckMhCompatible(a, b));
  size_t matches = 0;
  for (size_t i = 0; i < a.num_samples(); ++i) {
    // The 1.0 sentinel (empty sketch) never counts as a match.
    matches += (a.hashes[i] == b.hashes[i] && a.hashes[i] < 1.0);
  }
  return static_cast<double>(matches) /
         static_cast<double>(a.num_samples());
}

Result<double> EstimateSupportUnion(const MhSketch& a, const MhSketch& b) {
  IPS_RETURN_IF_ERROR(CheckMhCompatible(a, b));
  double min_hash_sum = 0.0;
  for (size_t i = 0; i < a.num_samples(); ++i) {
    min_hash_sum += std::min(a.hashes[i], b.hashes[i]);
  }
  if (min_hash_sum <= 0.0) {
    return Status::Internal("degenerate minimum-hash sum");
  }
  const double md = static_cast<double>(a.num_samples());
  return md / min_hash_sum - 1.0;
}

MhSketch TruncatedMh(const MhSketch& sketch, size_t m) {
  IPS_CHECK(m > 0 && m <= sketch.num_samples());
  MhSketch out = sketch;
  out.hashes.resize(m);
  out.values.resize(m);
  return out;
}

}  // namespace ipsketch
