// Quantized Weighted MinHash sketches — the paper's §5 future-work item
// ("Standard quantization tricks could likely be used to reduce the size of
// numbers in all sketches").
//
// Two compact encodings of a WmhSketch:
//
//   * CompactWmhSketch — hash as a 32-bit fixed-point fraction (exactly the
//     32 bits the paper's storage accounting charges) and value as float32:
//     1 word per sample instead of the 2 resident words of the
//     full-precision struct. True matches are preserved exactly (equal
//     doubles quantize equally); spurious matches need two distinct minima
//     within 2⁻³² of each other.
//
//   * BbitWmhSketch — in the spirit of b-bit minwise hashing (Li & König
//     2010): only a b-bit fingerprint of each minimum hash is kept for
//     match detection, plus a float32 value. Storage (b+32)/64 words per
//     sample. Fingerprints collide spuriously with probability 2⁻ᵇ, which
//     the estimator corrects for in the match *rate*; the weighted union
//     size is estimated with the unit-norm closed form (the FM estimator
//     needs full-precision minima, which b bits cannot carry).
//
// Both encodings carry the WmhEngine of the full-precision sketch they were
// quantized from: engines realize different hash functions, so — exactly as
// for full-precision sketches — compact sketches are only comparable across
// equal engines, and the estimators below reject cross-engine pairs.
//
// These types are first-class sketch families ("wmh_compact", "wmh_bbit" in
// sketch/family.h) with wire codecs in sketch/serialize.h, so the service
// layer can hold and persist compact catalogs; sketch_store.h's
// CompactifyInPlace/QuantizeStore convert a resident full-precision WMH
// catalog in one post-pass.

#ifndef IPSKETCH_SKETCH_QUANTIZE_H_
#define IPSKETCH_SKETCH_QUANTIZE_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/wmh_sketch.h"

namespace ipsketch {

/// WMH sketch with 32-bit hashes and float32 values: 1 word/sample + norm.
struct CompactWmhSketch {
  std::vector<uint32_t> hashes;  ///< floor(h · 2³²); ~0u = empty sentinel
  std::vector<float> values;     ///< ã[j] as float32
  double norm = 0.0;
  uint64_t seed = 0;
  uint64_t L = 0;
  uint64_t dimension = 0;
  /// Engine of the full-precision sketch this was quantized from; compact
  /// sketches are only comparable across equal engines.
  WmhEngine engine = WmhEngine::kDart;

  size_t num_samples() const { return hashes.size(); }

  /// Storage in 64-bit words: (32+32) bits per sample + the norm. The
  /// resident layout matches the §5 accounting exactly, so this is also the
  /// in-memory footprint.
  double StorageWords() const {
    return static_cast<double>(num_samples()) + 1.0;
  }
};

/// Quantizes a full-precision WMH sketch (lossy). The engine, seed, L, and
/// dimension are carried over.
CompactWmhSketch CompactFromWmh(const WmhSketch& sketch);

/// Buffer-reusing form: quantizes into `*out`, reusing its vectors'
/// capacity (the per-thread sketcher path of the "wmh_compact" family).
void CompactFromWmh(const WmhSketch& sketch, CompactWmhSketch* out);

/// The first `m` samples as a valid m-sample compact sketch. Compact
/// sketches are coordinate-wise, so truncation is exact: it commutes with
/// quantization. Dies on m = 0 or m > num_samples (callers range-check).
CompactWmhSketch TruncatedCompactWmh(const CompactWmhSketch& sketch, size_t m);

/// Algorithm 5 on compact sketches: matches on quantized hashes, FM union
/// estimate from dequantized minima. Same compatibility rules as the
/// full-precision estimator, including engine equality.
Result<double> EstimateCompactWmhInnerProduct(const CompactWmhSketch& a,
                                              const CompactWmhSketch& b);

/// Span-level core of `EstimateCompactWmhInnerProduct`: the compact
/// estimator over raw hash/value lanes of two sketches the caller has
/// already verified to be mutually comparable. Both the pairwise estimator
/// above and the slab catalog's 1-vs-many re-rank path
/// (`SketchFamily::NewSlab`) run through this one function, which is what
/// makes their estimates bit-identical. `m` must be positive.
Result<double> EstimateCompactWmhSpans(
    const uint32_t* a_hashes, const float* a_values, double a_norm,
    const uint32_t* b_hashes, const float* b_values, double b_norm, size_t m,
    uint64_t L);

/// WMH sketch keeping only b-bit match fingerprints (b ≤ 32).
struct BbitWmhSketch {
  std::vector<uint32_t> fingerprints;  ///< low b bits of a mixed hash of h
  std::vector<float> values;
  double norm = 0.0;
  uint32_t bits = 16;  ///< b
  uint64_t seed = 0;
  uint64_t L = 0;
  uint64_t dimension = 0;
  /// Engine of the full-precision sketch this was quantized from.
  WmhEngine engine = WmhEngine::kDart;

  size_t num_samples() const { return fingerprints.size(); }

  /// Storage in 64-bit words: (b + 32) bits per sample + the norm. The
  /// resident struct keeps fingerprints in uint32_t slots, so the in-memory
  /// footprint is num_samples + 1 words regardless of b (family
  /// ResidentWords reports that).
  double StorageWords() const {
    return static_cast<double>(num_samples()) * (bits + 32.0) / 64.0 + 1.0;
  }
};

/// Extracts b-bit fingerprints from a full-precision sketch. `bits` in
/// [1, 32]. The engine, seed, L, and dimension are carried over.
Result<BbitWmhSketch> BbitFromWmh(const WmhSketch& sketch, uint32_t bits);

/// Buffer-reusing form of BbitFromWmh.
Status BbitFromWmh(const WmhSketch& sketch, uint32_t bits,
                   BbitWmhSketch* out);

/// The first `m` samples as a valid m-sample b-bit sketch (exact, as for
/// TruncatedCompactWmh). Dies on m = 0 or m > num_samples.
BbitWmhSketch TruncatedBbitWmh(const BbitWmhSketch& sketch, size_t m);

/// Ok iff every fingerprint fits the sketch's declared b-bit width — the
/// single source of the invariant enforced both at insert time (the
/// "wmh_bbit" family's CheckCompatible) and on wire decode, so a store can
/// never persist a file its own decoder refuses to reopen. Precondition:
/// `sketch.bits` in [1, 32].
Status CheckBbitFingerprintWidths(const BbitWmhSketch& sketch);

/// Inner product estimate from b-bit sketches. The spurious-collision rate
/// 2⁻ᵇ is removed from the match statistics in expectation; residual noise
/// from false matches scales with 2⁻ᵇ (see bench_ext_quantization).
Result<double> EstimateBbitWmhInnerProduct(const BbitWmhSketch& a,
                                           const BbitWmhSketch& b);

/// Span-level core of `EstimateBbitWmhInnerProduct` (same contract as
/// `EstimateCompactWmhSpans`: callers have verified comparability, `m`
/// positive, shared by the pairwise and slab re-rank paths for bit-identical
/// estimates). `bits` is the fingerprint width b in [1, 32].
Result<double> EstimateBbitWmhSpans(
    const uint32_t* a_fingerprints, const float* a_values, double a_norm,
    const uint32_t* b_fingerprints, const float* b_values, double b_norm,
    size_t m, uint32_t bits);

}  // namespace ipsketch

#endif  // IPSKETCH_SKETCH_QUANTIZE_H_
