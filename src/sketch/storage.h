// The paper's storage accounting model (§5, "Storage Size").
//
// All plots are parameterized by storage measured in 64-bit words ("the
// total number of bits in the sketch divided by 64"):
//   * linear sketches (JL, CountSketch) store one 64-bit double per row or
//     counter → m words for m rows;
//   * sampling sketches (MH, KMV, WMH, ICWS) store one 64-bit double value
//     plus one 32-bit hash per sample → 1.5·m words for m samples (WMH and
//     ICWS additionally store the scalar norm: +1 word).

#ifndef IPSKETCH_SKETCH_STORAGE_H_
#define IPSKETCH_SKETCH_STORAGE_H_

#include <cstddef>
#include <cstdint>

namespace ipsketch {

/// Storage class of a sketching method.
enum class StorageClass {
  kLinear = 0,    ///< m doubles (JL, CountSketch)
  kSampling = 1,  ///< m (double value, 32-bit hash) pairs (MH, KMV)
  kSamplingWithNorm = 2,  ///< sampling + one norm scalar (WMH, ICWS)
  kBits = 3,      ///< m single bits (SimHash)
  /// m (32-bit hash, float32 value) pairs + the norm: 1 word per sample
  /// (the "wmh_compact" family).
  kCompactSamplingWithNorm = 4,
  /// m (b-bit fingerprint, float32 value) pairs + the norm, charged at the
  /// default b = 16: 0.75 words per sample (the "wmh_bbit" family). The
  /// budget→samples mapping uses the default width; a sketch's own
  /// StorageWords() is exact for its actual b.
  kBbitSamplingWithNorm = 5,
};

/// Largest sample count m whose sketch fits in `storage_words` 64-bit words.
/// Returns 0 if the budget cannot fit even one sample.
size_t SamplesForStorageWords(double storage_words, StorageClass storage_class);

/// Exact storage in 64-bit words of an m-sample sketch of `storage_class`.
double StorageWordsForSamples(size_t m, StorageClass storage_class);

/// Budget mapping for the b-bit family at an *explicit* width: (b + 32)/64
/// words per sample + the norm. `kBbitSamplingWithNorm` is this at the
/// default b = 16; callers that know the actual width (the harness
/// evaluator with a `bits` param) must use these so a b > 16 sweep never
/// silently exceeds its storage budget. `bits` in [1, 32].
size_t SamplesForBbitStorageWords(double storage_words, uint32_t bits);
double StorageWordsForBbitSamples(size_t m, uint32_t bits);

}  // namespace ipsketch

#endif  // IPSKETCH_SKETCH_STORAGE_H_
