#include "sketch/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "core/simd/dispatch.h"

namespace ipsketch {
namespace {

// Quantized form of the empty-slot sentinel h = 1.0.
constexpr uint32_t kSaturatedHash = ~uint32_t{0};

uint32_t QuantizeHash(double h) {
  // h in [0, 1]; floor to 32-bit fixed point. 1.0 (the empty-sketch
  // sentinel) saturates to the maximum. The inverse mapping — mid-point
  // (q + 0.5)/2³² with the saturated bucket pinned back to exactly 1.0 so
  // the FM union estimate stays unbiased on sparse catalogs — lives in the
  // estimation kernels (core/simd/estimate_kernels.h), which fuse it into
  // the integer-domain min pass.
  if (h >= 1.0) return kSaturatedHash;
  return static_cast<uint32_t>(h * 4294967296.0);
}

Status CheckCompatible(uint64_t seed_a, uint64_t seed_b, uint64_t la,
                       uint64_t lb, uint64_t dim_a, uint64_t dim_b,
                       WmhEngine engine_a, WmhEngine engine_b, size_t ma,
                       size_t mb) {
  if (ma != mb) return Status::InvalidArgument("sketch sample counts differ");
  if (ma == 0) return Status::InvalidArgument("sketches are empty");
  if (seed_a != seed_b) return Status::InvalidArgument("sketch seeds differ");
  if (la != lb) {
    return Status::InvalidArgument("sketch discretization parameters differ");
  }
  if (engine_a != engine_b) {
    // Engines are distributionally equivalent but realize different hash
    // functions; a cross-engine pair would estimate silently wrong. Same
    // rule as the full-precision estimator (core/wmh_estimator.cc).
    return Status::InvalidArgument("sketch engines differ");
  }
  if (dim_a != dim_b) {
    return Status::InvalidArgument("sketch dimensions differ");
  }
  return Status::Ok();
}

// The b-bit width mask — the single invariant shared by the encoder
// (BbitFromWmh) and the validator (CheckBbitFingerprintWidths, and through
// it the wire decoder and insert-time guard). Precondition: bits in [1, 32].
uint32_t BbitMask(uint32_t bits) {
  return bits == 32 ? ~uint32_t{0} : ((uint32_t{1} << bits) - 1);
}

}  // namespace

CompactWmhSketch CompactFromWmh(const WmhSketch& sketch) {
  CompactWmhSketch out;
  CompactFromWmh(sketch, &out);
  return out;
}

void CompactFromWmh(const WmhSketch& sketch, CompactWmhSketch* out) {
  out->norm = sketch.norm;
  out->seed = sketch.seed;
  out->L = sketch.L;
  out->dimension = sketch.dimension;
  out->engine = sketch.engine;
  out->hashes.clear();
  out->values.clear();
  out->hashes.reserve(sketch.num_samples());
  out->values.reserve(sketch.num_samples());
  for (size_t i = 0; i < sketch.num_samples(); ++i) {
    out->hashes.push_back(QuantizeHash(sketch.hashes[i]));
    out->values.push_back(static_cast<float>(sketch.values[i]));
  }
}

CompactWmhSketch TruncatedCompactWmh(const CompactWmhSketch& sketch,
                                     size_t m) {
  IPS_CHECK(m > 0 && m <= sketch.num_samples());
  CompactWmhSketch out = sketch;
  out.hashes.resize(m);
  out.values.resize(m);
  return out;
}

Result<double> EstimateCompactWmhInnerProduct(const CompactWmhSketch& a,
                                              const CompactWmhSketch& b) {
  IPS_RETURN_IF_ERROR(CheckCompatible(a.seed, b.seed, a.L, b.L, a.dimension,
                                      b.dimension, a.engine, b.engine,
                                      a.num_samples(), b.num_samples()));
  return EstimateCompactWmhSpans(a.hashes.data(), a.values.data(), a.norm,
                                 b.hashes.data(), b.values.data(), b.norm,
                                 a.num_samples(), a.L);
}

Result<double> EstimateCompactWmhSpans(const uint32_t* a_hashes,
                                       const float* a_values, double a_norm,
                                       const uint32_t* b_hashes,
                                       const float* b_values, double b_norm,
                                       size_t m, uint64_t L) {
  if (m == 0) return Status::InvalidArgument("sketches are empty");
  if (a_norm == 0.0 || b_norm == 0.0) return 0.0;

  const double md = static_cast<double>(m);
  // Integer-domain min + dequantize + match accumulation in one dispatched
  // pass (scalar and vector tiers are bit-identical).
  const simd::CompactPairStats stats = simd::ActiveKernel().compact_pair(
      a_hashes, b_hashes, a_values, b_values, m);
  if (stats.min_hash_sum <= 0.0) {
    return Status::Internal("degenerate minimum-hash sum");
  }
  // Clamp at 0: with every slot at the empty sentinel, min_hash_sum = m and
  // the FM expression lands on exactly 0; float rounding must not push a
  // near-empty catalog's union size negative.
  const double m_tilde =
      std::max(0.0, (md / stats.min_hash_sum - 1.0) / static_cast<double>(L));
  return a_norm * b_norm * (m_tilde / md) * stats.weighted_match_sum;
}

Result<BbitWmhSketch> BbitFromWmh(const WmhSketch& sketch, uint32_t bits) {
  BbitWmhSketch out;
  IPS_RETURN_IF_ERROR(BbitFromWmh(sketch, bits, &out));
  return out;
}

Status BbitFromWmh(const WmhSketch& sketch, uint32_t bits,
                   BbitWmhSketch* out) {
  if (bits < 1 || bits > 32) {
    return Status::InvalidArgument("bits must be in [1, 32]");
  }
  out->bits = bits;
  out->norm = sketch.norm;
  out->seed = sketch.seed;
  out->L = sketch.L;
  out->dimension = sketch.dimension;
  out->engine = sketch.engine;
  const uint32_t mask = BbitMask(bits);
  out->fingerprints.clear();
  out->values.clear();
  out->fingerprints.reserve(sketch.num_samples());
  out->values.reserve(sketch.num_samples());
  for (size_t i = 0; i < sketch.num_samples(); ++i) {
    // Mix the double's bit pattern so the kept b bits are uniform even
    // though minimum hashes cluster near zero.
    uint64_t pattern;
    static_assert(sizeof(pattern) == sizeof(double));
    std::memcpy(&pattern, &sketch.hashes[i], sizeof(pattern));
    out->fingerprints.push_back(static_cast<uint32_t>(Mix64(pattern)) & mask);
    out->values.push_back(static_cast<float>(sketch.values[i]));
  }
  return Status::Ok();
}

BbitWmhSketch TruncatedBbitWmh(const BbitWmhSketch& sketch, size_t m) {
  IPS_CHECK(m > 0 && m <= sketch.num_samples());
  BbitWmhSketch out = sketch;
  out.fingerprints.resize(m);
  out.values.resize(m);
  return out;
}

Status CheckBbitFingerprintWidths(const BbitWmhSketch& sketch) {
  const uint32_t mask = BbitMask(sketch.bits);
  for (uint32_t fp : sketch.fingerprints) {
    if ((fp & ~mask) != 0) {
      return Status::InvalidArgument(
          "b-bit WMH fingerprint exceeds the declared width");
    }
  }
  return Status::Ok();
}

Result<double> EstimateBbitWmhInnerProduct(const BbitWmhSketch& a,
                                           const BbitWmhSketch& b) {
  IPS_RETURN_IF_ERROR(CheckCompatible(a.seed, b.seed, a.L, b.L, a.dimension,
                                      b.dimension, a.engine, b.engine,
                                      a.num_samples(), b.num_samples()));
  if (a.bits != b.bits) {
    return Status::InvalidArgument("fingerprint widths differ");
  }
  return EstimateBbitWmhSpans(a.fingerprints.data(), a.values.data(), a.norm,
                              b.fingerprints.data(), b.values.data(), b.norm,
                              a.num_samples(), a.bits);
}

Result<double> EstimateBbitWmhSpans(const uint32_t* a_fingerprints,
                                    const float* a_values, double a_norm,
                                    const uint32_t* b_fingerprints,
                                    const float* b_values, double b_norm,
                                    size_t m, uint32_t bits) {
  if (m == 0) return Status::InvalidArgument("sketches are empty");
  if (a_norm == 0.0 || b_norm == 0.0) return 0.0;

  const double md = static_cast<double>(m);
  // The b-bit fingerprint-match hot loop, dispatched to the widest kernel
  // tier the CPU supports (scalar and vector tiers are bit-identical).
  const simd::MatchStats stats = simd::ActiveKernel().match_u32(
      a_fingerprints, b_fingerprints, a_values, b_values, m);
  double weighted_match_sum = stats.weighted_match_sum;

  // Observed match rate = J̄ + (1 − J̄)·2⁻ᵇ; invert for J̄, then scale the
  // weighted sum by the fraction of matches expected to be genuine.
  const double fp = std::pow(0.5, static_cast<double>(bits));
  const double observed = static_cast<double>(stats.match_count) / md;
  const double j_hat =
      std::clamp((observed - fp) / (1.0 - fp), 0.0, 1.0);
  if (stats.match_count > 0 && observed > 0.0) {
    // E[genuine matches]/E[observed matches] = J̄ / (J̄ + (1−J̄)·2⁻ᵇ).
    const double genuine_fraction = j_hat / observed;
    weighted_match_sum *= std::clamp(genuine_fraction, 0.0, 1.0);
  }
  // Weighted union size via the unit-norm closed form (b bits cannot feed
  // the Flajolet–Martin estimator).
  const double m_hat = 2.0 / (1.0 + j_hat);
  return a_norm * b_norm * (m_hat / md) * weighted_match_sum;
}

}  // namespace ipsketch
