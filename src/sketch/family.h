// One polymorphic interface over every sketching method in the library.
//
// The paper's argument is comparative — Weighted MinHash against the linear
// sketches (JL, CountSketch) and the sampling sketches (MinHash, KMV) at the
// same storage budget — and production deployments keep swapping these
// families (Daliri et al. 2024). This header makes the family a runtime
// value: a `SketchFamily` bundles sketching, pairwise estimation, merging
// (where the family supports it), storage accounting, and type-tagged wire
// (de)serialization behind one vtable, and the string-keyed registry
// (`MakeFamily`) constructs any family from a common `FamilyOptions`. The
// service layer (service/sketch_store.h, service/query_engine.h,
// service/persistence.h) and the benchmark evaluators
// (sketch/estimator_registry.h) are both built on this interface, so a
// CountSketch store and a WMH store run through the same code.
//
// Registry keys: "wmh", "icws", "mh", "kmv", "cs", "jl", plus the compact
// catalog encodings "wmh_compact" (32-bit hash + float32 value) and
// "wmh_bbit" (b-bit fingerprint + float32 value, option `bits` in [1, 32]).
// The compact families sketch full-precision WMH internally and quantize as
// a post-pass, so their sketches are comparable with each other (same seed,
// L, engine) but never with full-precision "wmh" sketches.

#ifndef IPSKETCH_SKETCH_FAMILY_H_
#define IPSKETCH_SKETCH_FAMILY_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sketch/storage.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

namespace wire {
class BoundedReader;  // serialize.h
}  // namespace wire

/// A type-erased sketch. Concrete sketches (WmhSketch, CountSketch, ...)
/// travel through the family-generic service and evaluator layers inside
/// `TypedSketch<T>` wrappers; only the owning `SketchFamily` (and tests)
/// look inside.
class AnySketch {
 public:
  virtual ~AnySketch() = default;

  /// Deep copy with the same dynamic type.
  virtual std::unique_ptr<AnySketch> Clone() const = 0;
};

/// The concrete wrapper: an `AnySketch` holding a `T` by value.
template <typename T>
class TypedSketch final : public AnySketch {
 public:
  TypedSketch() = default;
  explicit TypedSketch(T sketch) : value(std::move(sketch)) {}

  std::unique_ptr<AnySketch> Clone() const override {
    return std::make_unique<TypedSketch<T>>(value);
  }

  T value;
};

/// The `T` inside `sketch`, or nullptr if `sketch` wraps a different type.
template <typename T>
const T* GetSketchAs(const AnySketch& sketch) {
  const auto* typed = dynamic_cast<const TypedSketch<T>*>(&sketch);
  return typed == nullptr ? nullptr : &typed->value;
}

/// Mutable variant of `GetSketchAs`.
template <typename T>
T* GetMutableSketchAs(AnySketch* sketch) {
  auto* typed = dynamic_cast<TypedSketch<T>*>(sketch);
  return typed == nullptr ? nullptr : &typed->value;
}

/// Family-agnostic sketching parameters. Each family parses these into its
/// concrete option struct (WmhOptions, CountSketchOptions, ...):
/// `num_samples` maps onto the family's budget knob (samples, rows, or total
/// counters), and family-specific extras ride in `params` as string
/// key/values (e.g. {"L", "4096"} for WMH, {"repetitions", "5"} for CS).
/// Unknown keys are an error, so a typo never silently configures nothing.
///
/// A family *resolves* the options it is constructed from: defaults are
/// materialized into `params` (e.g. WMH's L=0 becomes DefaultL(dimension)),
/// so `SketchFamily::options()` is a complete, comparable identity — the
/// store and the persistence layer compare resolved options field by field.
struct FamilyOptions {
  /// Logical dimension n of every vector this family sketches. Required
  /// (> 0): sketches of different dimensions are never comparable.
  uint64_t dimension = 0;
  /// The storage budget knob: samples m (sampling families), projection
  /// rows (JL), or total counters (CS).
  size_t num_samples = 128;
  /// Random seed; sketches are comparable only across equal seeds.
  uint64_t seed = 0;
  /// Family-specific extras; see each family's documentation. Sorted map so
  /// the wire encoding is deterministic.
  std::map<std::string, std::string> params;

  friend bool operator==(const FamilyOptions& a,
                         const FamilyOptions& b) = default;
};

/// Appends the wire encoding of `options` (used by service/persistence.cc
/// inside the store header).
void AppendFamilyOptions(std::string* out, const FamilyOptions& options);

/// Reads options previously written by `AppendFamilyOptions`. Only the
/// canonical encoding is accepted: param keys must be strictly increasing
/// (exactly what the sorted-map writer emits), so a hostile payload cannot
/// smuggle duplicate keys past the map insert (which would silently drop
/// all but the first and re-encode to different bytes).
Status ReadFamilyOptions(wire::BoundedReader* r, FamilyOptions* options);

/// Renders options as "dimension=512 num_samples=64 seed=42 L=4096 ..." for
/// error messages.
std::string FamilyOptionsToString(const FamilyOptions& options);

/// Static metadata about a registered family.
struct FamilyInfo {
  /// Registry key: "wmh", "icws", "mh", "kmv", "cs", "jl".
  std::string name;
  /// Plot/table display name: "WMH", "ICWS", "MH", "KMV", "CS", "JL".
  std::string display_name;
  /// Storage accounting class (§5); maps budgets in words to `num_samples`.
  StorageClass storage = StorageClass::kLinear;
  /// True iff S(a) ⊕ S(b) = S(a + b) is available (JL, CS, KMV).
  bool supports_merge = false;
  /// True iff a prefix of a larger sketch is a valid smaller sketch, which
  /// makes storage sweeps one sketching pass (everything except CS, whose
  /// bucket layout changes with the width).
  bool supports_truncation = false;
  /// True iff sample i of two comparable sketches collides exactly when the
  /// vectors agree on hash function i — the positional-coordination property
  /// MinHash-LSH banding needs (`AppendLshCodes`/`NewSlab` are implemented).
  /// Holds for the minwise samplers (wmh, icws, mh, wmh_compact, wmh_bbit);
  /// not for the linear sketches (cs, jl — coordinates are projections, not
  /// samples) nor kmv (bottom-k samples are order statistics of one hash,
  /// not positionally aligned).
  bool supports_banding = false;
};

/// A structure-of-arrays catalog block: the hash/value lanes of many
/// sketches of one family stored contiguously (lane i of sketch s at flat
/// offset s·m + i), so a query estimates against slot after slot through
/// the dispatched SIMD kernels with no per-sketch pointer chasing. Created
/// by `SketchFamily::NewSlab` for families with `supports_banding()`; the
/// service-layer index (index/slab_catalog.h) builds on it.
///
/// Estimates are **bit-identical** to `SketchFamily::Estimate` on the same
/// pair — both run the family's span-level estimator core.
///
/// NOT thread-safe: callers synchronize externally (the banded index holds
/// one block per shard under the shard's lock).
class SketchSlab {
 public:
  virtual ~SketchSlab() = default;

  /// Number of sketches resident in the block.
  virtual size_t size() const = 0;

  /// Appends `sketch`'s lanes as slot `size()`. InvalidArgument unless the
  /// sketch passes the family's CheckCompatible.
  virtual Status Append(const AnySketch& sketch) = 0;

  /// Removes slot `slot` by moving the last slot into it (the caller tracks
  /// the slot renumbering). Dies if `slot >= size()`.
  virtual void SwapRemove(size_t slot) = 0;

  /// Estimated inner product of `query` against resident slot `slot`.
  /// InvalidArgument unless `query` is family-compatible; dies if `slot` is
  /// out of range.
  virtual Result<double> EstimateAt(const AnySketch& query,
                                    size_t slot) const = 0;

  /// Estimates `query` against `slots[0..count)` into `out[0..count)` — the
  /// candidate re-rank path. Every slot must be in range.
  virtual Status EstimateMany(const AnySketch& query, const uint32_t* slots,
                              size_t count, double* out) const = 0;

  /// Estimates `query` against every resident slot into `out[0..size())` —
  /// the exact-scan path.
  virtual Status EstimateAll(const AnySketch& query, double* out) const = 0;
};

/// A reusable per-thread sketching context (scratch buffers, validated
/// options). NOT thread-safe: concurrent ingest uses one Sketcher per
/// worker, all from the same family, which is safe because every engine is
/// deterministic in (seed, sample, block).
class Sketcher {
 public:
  virtual ~Sketcher() = default;

  /// Sketches `a` into `*out`, reusing its buffers' capacity. `*out` must
  /// have been created by the same family's `NewSketch` (InvalidArgument
  /// otherwise, as for a vector of the wrong dimension).
  virtual Status Sketch(const SparseVector& a, AnySketch* out) = 0;
};

/// One sketching method behind a uniform vtable. Instances are immutable
/// and thread-safe; they are created by `MakeFamily` with fully resolved
/// options and shared by reference (the store, its query engines, and the
/// persistence layer all point at one family object).
class SketchFamily {
 public:
  virtual ~SketchFamily() = default;

  /// Static metadata (name, storage class, capabilities).
  const FamilyInfo& info() const { return info_; }
  /// Registry key, e.g. "wmh".
  const std::string& name() const { return info_.name; }
  /// Display name, e.g. "WMH".
  const std::string& display_name() const { return info_.display_name; }
  /// Storage accounting class (§5).
  StorageClass storage_class() const { return info_.storage; }
  /// True iff `Merge` is implemented.
  bool supports_merge() const { return info_.supports_merge; }
  /// True iff `Truncate` is implemented.
  bool supports_truncation() const { return info_.supports_truncation; }
  /// True iff `AppendLshCodes` and `NewSlab` are implemented (see
  /// FamilyInfo::supports_banding).
  bool supports_banding() const { return info_.supports_banding; }
  /// The resolved options this family was constructed with.
  const FamilyOptions& options() const { return options_; }

  /// An empty sketch of this family's concrete type, ready for
  /// `Sketcher::Sketch`.
  virtual std::unique_ptr<AnySketch> NewSketch() const = 0;

  /// A fresh per-thread sketching context.
  virtual Result<std::unique_ptr<Sketcher>> MakeSketcher() const = 0;

  /// Ok iff `sketch` is of this family's type and was built with exactly
  /// this family's (num_samples, seed, dimension, extras) — the insert-time
  /// guard that keeps every sketch in a store mutually comparable.
  virtual Status CheckCompatible(const AnySketch& sketch) const = 0;

  /// Estimates ⟨a, b⟩ from two sketches of this family. The sketches must
  /// be mutually comparable (equal parameters); they need not match this
  /// family's `options()` — e.g. truncated sketches estimate fine.
  virtual Result<double> Estimate(const AnySketch& a,
                                  const AnySketch& b) const = 0;

  /// A sketch of a + b from sketches of a and b, for families with
  /// `supports_merge()`; FailedPrecondition otherwise (WMH/ICWS/MH
  /// fundamentally cannot merge — see sketch/merge.h).
  virtual Result<std::unique_ptr<AnySketch>> Merge(const AnySketch& a,
                                                   const AnySketch& b) const;

  /// The first `m` samples as a valid m-sample sketch, for families with
  /// `supports_truncation()`; FailedPrecondition otherwise. OutOfRange if
  /// `m` exceeds the sketch's sample count.
  virtual Result<std::unique_ptr<AnySketch>> Truncate(const AnySketch& sketch,
                                                      size_t m) const;

  /// Storage footprint of `sketch` in 64-bit words under the paper's §5
  /// accounting model.
  virtual Result<double> StorageWords(const AnySketch& sketch) const = 0;

  /// In-memory footprint of `sketch` in 64-bit words — the engineering
  /// truth, as opposed to the §5 *accounting* model (which charges 32 bits
  /// per stored hash even when the resident struct holds a 64-bit double).
  /// Defaults to StorageWords; families whose resident layout is wider than
  /// the accounting (WMH, ICWS, MH, KMV) override. This is the number the
  /// compact catalog families halve.
  virtual Result<double> ResidentWords(const AnySketch& sketch) const;

  /// Appends `sketch`'s per-sample LSH codes — one 64-bit code per sample,
  /// equal across two sketches exactly when the sample collides (matching
  /// minimum hash / fingerprint) — to `*out`. The banded index groups runs
  /// of r codes into band keys. For families with `supports_banding()`;
  /// FailedPrecondition otherwise. InvalidArgument unless `sketch` passes
  /// CheckCompatible.
  ///
  /// Empty-slot sentinels (a sample no entry hashed into) share one code,
  /// so near-empty sketches collide spuriously; the re-rank estimator
  /// scores such candidates correctly, they just cost a candidate slot.
  virtual Status AppendLshCodes(const AnySketch& sketch,
                                std::vector<uint64_t>* out) const;

  /// An empty structure-of-arrays block for this family's lanes, for
  /// families with `supports_banding()`; FailedPrecondition otherwise.
  virtual Result<std::unique_ptr<SketchSlab>> NewSlab() const;

  /// Type-tagged wire encoding (sketch/serialize.h); stable across runs.
  virtual Result<std::string> Serialize(const AnySketch& sketch) const = 0;

  /// Parses bytes produced by `Serialize`. InvalidArgument on malformed
  /// input or on a payload of a different family (the type tag is checked).
  /// Parse-only: callers that require compatibility with this family's
  /// options follow up with `CheckCompatible`.
  virtual Result<std::unique_ptr<AnySketch>> Deserialize(
      std::string_view bytes) const = 0;

 protected:
  SketchFamily(FamilyInfo info, FamilyOptions options)
      : info_(std::move(info)), options_(std::move(options)) {}

 private:
  FamilyInfo info_;
  FamilyOptions options_;
};

/// Metadata for every registered family, in the paper's plotting order
/// (JL, CS, MH, KMV, WMH) plus the ICWS extension and the two compact
/// catalog encodings (wmh_compact, wmh_bbit).
const std::vector<FamilyInfo>& RegisteredFamilies();

/// Metadata for one family; InvalidArgument for unknown names.
Result<FamilyInfo> GetFamilyInfo(const std::string& name);

/// Constructs the family registered under `name` with `options` resolved
/// and validated. InvalidArgument for unknown names, missing dimension,
/// out-of-range fields, or unrecognized `options.params` keys.
Result<std::shared_ptr<const SketchFamily>> MakeFamily(
    const std::string& name, const FamilyOptions& options);

/// Quantizes a full-precision WMH sketch into `target`'s compact concrete
/// type. `target` must be a family made from "wmh_compact" or "wmh_bbit"
/// (InvalidArgument otherwise), and `full` a WmhSketch whose (m, seed, L,
/// engine, dimension) match the target's options — the result is verified
/// with target.CheckCompatible, so a mismatched input is rejected, never
/// relabeled. This is the one-shot conversion the service layer's
/// CompactifyInPlace/QuantizeStore run per stored sketch.
Result<std::unique_ptr<AnySketch>> QuantizeWmhSketch(
    const SketchFamily& target, const AnySketch& full);

}  // namespace ipsketch

#endif  // IPSKETCH_SKETCH_FAMILY_H_
