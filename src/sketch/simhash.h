// SimHash (Charikar 2002): 1-bit quantized random projection for cosine
// similarity. Included as the "1-bit JL" reference point the paper mentions
// in §5 (Storage Size) and §2 (LSH): each of m random hyperplanes
// contributes the single bit sign(⟨π_r, a⟩), and the agreement rate encodes
// the angle between a and b:  P[bit_r(a) = bit_r(b)] = 1 − θ(a,b)/π.

#ifndef IPSKETCH_SKETCH_SIMHASH_H_
#define IPSKETCH_SKETCH_SIMHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Configuration for `SketchSimHash`.
struct SimHashOptions {
  /// Number of hyperplane bits m.
  size_t num_bits = 1024;
  /// Random seed; sketches are comparable only with equal seeds.
  uint64_t seed = 0;

  /// Validates field ranges.
  Status Validate() const;
};

/// A SimHash sketch: m sign bits plus the vector norm (so inner products,
/// not just cosines, can be recovered).
struct SimHashSketch {
  std::vector<uint64_t> bits;  ///< packed sign bits, 64 per word
  size_t num_bits = 0;
  double norm = 0.0;
  uint64_t seed = 0;
  uint64_t dimension = 0;

  /// Bit r as 0/1.
  int Bit(size_t r) const { return (bits[r / 64] >> (r % 64)) & 1; }

  /// Storage in 64-bit words: packed bits + the norm scalar.
  double StorageWords() const {
    return static_cast<double>(bits.size()) + 1.0;
  }
};

/// Computes the SimHash sketch of `a` (±1/√m hyperplanes, sign only).
Result<SimHashSketch> SketchSimHash(const SparseVector& a,
                                    const SimHashOptions& options);

/// Estimates cos∠(a,b) = cos(π·(1 − agreement rate)).
Result<double> EstimateSimHashCosine(const SimHashSketch& a,
                                     const SimHashSketch& b);

/// Estimates ⟨a, b⟩ = ‖a‖·‖b‖·cos∠(a,b).
Result<double> EstimateSimHashInnerProduct(const SimHashSketch& a,
                                           const SimHashSketch& b);

}  // namespace ipsketch

#endif  // IPSKETCH_SKETCH_SIMHASH_H_
