#include "sketch/storage.h"

#include <cmath>
#include <limits>

#include "common/status.h"

namespace ipsketch {

size_t SamplesForStorageWords(double storage_words, StorageClass storage_class) {
  // NaN and non-positive budgets fit nothing.
  if (std::isnan(storage_words) || storage_words <= 0.0) return 0;
  double m = 0.0;
  switch (storage_class) {
    case StorageClass::kLinear:
      m = storage_words;
      break;
    case StorageClass::kSampling:
      m = storage_words / 1.5;
      break;
    case StorageClass::kSamplingWithNorm:
      // Budgets below the one-word norm overhead make this negative; the
      // m < 1 guard below maps them to 0 instead of wrapping in the cast.
      m = (storage_words - 1.0) / 1.5;
      break;
    case StorageClass::kBits:
      // Bits are charged in whole 64-bit words (StorageWordsForSamples uses
      // ceil), so a fractional budget holds no partial word: floor first, or
      // the round-trip through StorageWordsForSamples would exceed budget.
      m = std::floor(storage_words) * 64.0;
      break;
  }
  if (m < 1.0) return 0;
  // Budgets beyond the representable sample count (including +inf) saturate:
  // casting such a double to size_t is undefined behavior, and an unbounded
  // budget fits the largest sketch we can express, not none.
  constexpr double kMaxSamples =
      static_cast<double>(std::numeric_limits<size_t>::max());
  if (m >= kMaxSamples) return std::numeric_limits<size_t>::max();
  return static_cast<size_t>(m);
}

double StorageWordsForSamples(size_t m, StorageClass storage_class) {
  const double md = static_cast<double>(m);
  switch (storage_class) {
    case StorageClass::kLinear:
      return md;
    case StorageClass::kSampling:
      return 1.5 * md;
    case StorageClass::kSamplingWithNorm:
      return 1.5 * md + 1.0;
    case StorageClass::kBits:
      return std::ceil(md / 64.0);
  }
  IPS_CHECK(false);
  return 0.0;
}

}  // namespace ipsketch
