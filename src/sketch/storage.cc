#include "sketch/storage.h"

#include <cmath>
#include <limits>

#include "common/status.h"

namespace ipsketch {

size_t SamplesForStorageWords(double storage_words, SketchFamily family) {
  // NaN and non-positive budgets fit nothing.
  if (std::isnan(storage_words) || storage_words <= 0.0) return 0;
  double m = 0.0;
  switch (family) {
    case SketchFamily::kLinear:
      m = storage_words;
      break;
    case SketchFamily::kSampling:
      m = storage_words / 1.5;
      break;
    case SketchFamily::kSamplingWithNorm:
      // Budgets below the one-word norm overhead make this negative; the
      // m < 1 guard below maps them to 0 instead of wrapping in the cast.
      m = (storage_words - 1.0) / 1.5;
      break;
    case SketchFamily::kBits:
      // Bits are charged in whole 64-bit words (StorageWordsForSamples uses
      // ceil), so a fractional budget holds no partial word: floor first, or
      // the round-trip through StorageWordsForSamples would exceed budget.
      m = std::floor(storage_words) * 64.0;
      break;
  }
  if (m < 1.0) return 0;
  // Budgets beyond the representable sample count (including +inf) saturate:
  // casting such a double to size_t is undefined behavior, and an unbounded
  // budget fits the largest sketch we can express, not none.
  constexpr double kMaxSamples =
      static_cast<double>(std::numeric_limits<size_t>::max());
  if (m >= kMaxSamples) return std::numeric_limits<size_t>::max();
  return static_cast<size_t>(m);
}

double StorageWordsForSamples(size_t m, SketchFamily family) {
  const double md = static_cast<double>(m);
  switch (family) {
    case SketchFamily::kLinear:
      return md;
    case SketchFamily::kSampling:
      return 1.5 * md;
    case SketchFamily::kSamplingWithNorm:
      return 1.5 * md + 1.0;
    case SketchFamily::kBits:
      return std::ceil(md / 64.0);
  }
  IPS_CHECK(false);
  return 0.0;
}

}  // namespace ipsketch
