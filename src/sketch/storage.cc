#include "sketch/storage.h"

#include <cmath>

#include "common/status.h"

namespace ipsketch {

size_t SamplesForStorageWords(double storage_words, SketchFamily family) {
  if (storage_words <= 0.0) return 0;
  double m = 0.0;
  switch (family) {
    case SketchFamily::kLinear:
      m = storage_words;
      break;
    case SketchFamily::kSampling:
      m = storage_words / 1.5;
      break;
    case SketchFamily::kSamplingWithNorm:
      m = (storage_words - 1.0) / 1.5;
      break;
    case SketchFamily::kBits:
      m = storage_words * 64.0;
      break;
  }
  if (m < 1.0) return 0;
  return static_cast<size_t>(m);
}

double StorageWordsForSamples(size_t m, SketchFamily family) {
  const double md = static_cast<double>(m);
  switch (family) {
    case SketchFamily::kLinear:
      return md;
    case SketchFamily::kSampling:
      return 1.5 * md;
    case SketchFamily::kSamplingWithNorm:
      return 1.5 * md + 1.0;
    case SketchFamily::kBits:
      return std::ceil(md / 64.0);
  }
  IPS_CHECK(false);
  return 0.0;
}

}  // namespace ipsketch
