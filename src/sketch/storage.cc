#include "sketch/storage.h"

#include <cmath>
#include <limits>

#include "common/status.h"

namespace ipsketch {

namespace {

/// Shared clamp: m < 1 fits nothing; budgets beyond the representable
/// sample count (including +inf) saturate instead of invoking UB in the
/// cast.
size_t ClampSamples(double m) {
  if (m < 1.0) return 0;
  constexpr double kMaxSamples =
      static_cast<double>(std::numeric_limits<size_t>::max());
  if (m >= kMaxSamples) return std::numeric_limits<size_t>::max();
  return static_cast<size_t>(m);
}

}  // namespace

size_t SamplesForStorageWords(double storage_words, StorageClass storage_class) {
  // NaN and non-positive budgets fit nothing.
  if (std::isnan(storage_words) || storage_words <= 0.0) return 0;
  double m = 0.0;
  switch (storage_class) {
    case StorageClass::kLinear:
      m = storage_words;
      break;
    case StorageClass::kSampling:
      m = storage_words / 1.5;
      break;
    case StorageClass::kSamplingWithNorm:
      // Budgets below the one-word norm overhead make this negative; the
      // m < 1 guard below maps them to 0 instead of wrapping in the cast.
      m = (storage_words - 1.0) / 1.5;
      break;
    case StorageClass::kBits:
      // Bits are charged in whole 64-bit words (StorageWordsForSamples uses
      // ceil), so a fractional budget holds no partial word: floor first, or
      // the round-trip through StorageWordsForSamples would exceed budget.
      m = std::floor(storage_words) * 64.0;
      break;
    case StorageClass::kCompactSamplingWithNorm:
      m = storage_words - 1.0;
      break;
    case StorageClass::kBbitSamplingWithNorm:
      // Charged at the default b = 16: (16 + 32)/64 = 0.75 words/sample.
      return SamplesForBbitStorageWords(storage_words, 16);
  }
  return ClampSamples(m);
}

double StorageWordsForSamples(size_t m, StorageClass storage_class) {
  const double md = static_cast<double>(m);
  switch (storage_class) {
    case StorageClass::kLinear:
      return md;
    case StorageClass::kSampling:
      return 1.5 * md;
    case StorageClass::kSamplingWithNorm:
      return 1.5 * md + 1.0;
    case StorageClass::kBits:
      return std::ceil(md / 64.0);
    case StorageClass::kCompactSamplingWithNorm:
      return md + 1.0;
    case StorageClass::kBbitSamplingWithNorm:
      return StorageWordsForBbitSamples(m, 16);
  }
  IPS_CHECK(false);
  return 0.0;
}

size_t SamplesForBbitStorageWords(double storage_words, uint32_t bits) {
  if (std::isnan(storage_words) || storage_words <= 0.0) return 0;
  const double per_sample = (static_cast<double>(bits) + 32.0) / 64.0;
  return ClampSamples((storage_words - 1.0) / per_sample);
}

double StorageWordsForBbitSamples(size_t m, uint32_t bits) {
  return (static_cast<double>(bits) + 32.0) / 64.0 *
             static_cast<double>(m) +
         1.0;
}

}  // namespace ipsketch
