#include "sketch/simhash.h"

#include <cmath>

#include "common/hash.h"

namespace ipsketch {

Status SimHashOptions::Validate() const {
  if (num_bits == 0) return Status::InvalidArgument("num_bits must be positive");
  return Status::Ok();
}

Result<SimHashSketch> SketchSimHash(const SparseVector& a,
                                    const SimHashOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  SimHashSketch sketch;
  sketch.num_bits = options.num_bits;
  sketch.norm = a.Norm();
  sketch.seed = options.seed;
  sketch.dimension = a.dimension();
  sketch.bits.assign((options.num_bits + 63) / 64, 0);
  for (size_t r = 0; r < options.num_bits; ++r) {
    const SignHash sign(options.seed, r);
    double acc = 0.0;
    for (const Entry& e : a.entries()) {
      acc += sign.Sign(e.index) * e.value;
    }
    if (acc >= 0.0) sketch.bits[r / 64] |= uint64_t{1} << (r % 64);
  }
  return sketch;
}

Result<double> EstimateSimHashCosine(const SimHashSketch& a,
                                     const SimHashSketch& b) {
  if (a.num_bits != b.num_bits) {
    return Status::InvalidArgument("sketch bit counts differ");
  }
  if (a.num_bits == 0) return Status::InvalidArgument("sketches are empty");
  if (a.seed != b.seed) return Status::InvalidArgument("sketch seeds differ");
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }
  size_t disagreements = 0;
  for (size_t w = 0; w < a.bits.size(); ++w) {
    uint64_t diff = a.bits[w] ^ b.bits[w];
    // Mask tail bits beyond num_bits in the final word.
    if (w + 1 == a.bits.size() && a.num_bits % 64 != 0) {
      diff &= (uint64_t{1} << (a.num_bits % 64)) - 1;
    }
    disagreements += static_cast<size_t>(__builtin_popcountll(diff));
  }
  const double theta = M_PI * static_cast<double>(disagreements) /
                       static_cast<double>(a.num_bits);
  return std::cos(theta);
}

Result<double> EstimateSimHashInnerProduct(const SimHashSketch& a,
                                           const SimHashSketch& b) {
  auto cosine = EstimateSimHashCosine(a, b);
  IPS_RETURN_IF_ERROR(cosine.status());
  return a.norm * b.norm * cosine.value();
}

}  // namespace ipsketch
