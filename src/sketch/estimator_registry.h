// Uniform evaluation interface over all sketching methods, used by the
// benchmark harness and the examples.
//
// A `MethodEvaluator` is prepared once per vector pair at the *largest*
// storage budget under study and can then produce estimates at any smaller
// budget. Every evaluator is a thin wrapper over the sketch/family.h
// registry — the same polymorphic code path the service layer runs — so a
// harness sweep and a production store exercise identical sketching and
// estimation code. For families with `supports_truncation()` (sampling
// sketches and JL), a smaller budget is a prefix of the large sketch, so an
// entire storage sweep costs one sketching pass; CountSketch re-buckets per
// budget (cheap — one pass over non-zeros).

#ifndef IPSKETCH_SKETCH_ESTIMATOR_REGISTRY_H_
#define IPSKETCH_SKETCH_ESTIMATOR_REGISTRY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/wmh_sketch.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// One sketching method under the common harness interface.
class MethodEvaluator {
 public:
  virtual ~MethodEvaluator() = default;

  /// Short display name: "JL", "CS", "MH", "KMV", "WMH", "ICWS".
  virtual const std::string& name() const = 0;

  /// Sketches the pair at `max_storage_words`; must be called before
  /// `Estimate`. May be called repeatedly with new pairs/seeds.
  virtual Status Prepare(const SparseVector& a, const SparseVector& b,
                         double max_storage_words, uint64_t seed) = 0;

  /// Estimates ⟨a, b⟩ at a budget of `storage_words` ≤ the prepared budget.
  virtual Result<double> Estimate(double storage_words) = 0;
};

/// An evaluator for any registered family, keyed by the family.h registry
/// name ("wmh", "icws", "mh", "kmv", "cs", "jl"), with optional
/// family-specific params (e.g. {{"L", "2048"}} for WMH).
/// InvalidArgument for unknown names or bad params.
Result<std::unique_ptr<MethodEvaluator>> MakeFamilyEvaluator(
    const std::string& family,
    std::map<std::string, std::string> params = {});

/// Factories for individual methods (fixed registry names, so they cannot
/// fail).
std::unique_ptr<MethodEvaluator> MakeJlEvaluator();
std::unique_ptr<MethodEvaluator> MakeCountSketchEvaluator();
std::unique_ptr<MethodEvaluator> MakeMhEvaluator();
std::unique_ptr<MethodEvaluator> MakeKmvEvaluator();
std::unique_ptr<MethodEvaluator> MakeWmhEvaluator(
    WmhEngine engine = WmhEngine::kDart, uint64_t L = 0);
std::unique_ptr<MethodEvaluator> MakeIcwsEvaluator();

/// The paper's §5 baseline set, in its plotting order:
/// JL, CS, MH, KMV, WMH.
std::vector<std::unique_ptr<MethodEvaluator>> MakeStandardEvaluators();

/// The standard set plus the ICWS extension.
std::vector<std::unique_ptr<MethodEvaluator>> MakeExtendedEvaluators();

}  // namespace ipsketch

#endif  // IPSKETCH_SKETCH_ESTIMATOR_REGISTRY_H_
