#include "sketch/estimator_registry.h"

#include <utility>

#include "core/icws.h"
#include "core/wmh_estimator.h"
#include "sketch/count_sketch.h"
#include "sketch/jl_sketch.h"
#include "sketch/kmv.h"
#include "sketch/minhash.h"
#include "sketch/storage.h"

namespace ipsketch {
namespace {

class JlEvaluator final : public MethodEvaluator {
 public:
  const std::string& name() const override { return name_; }

  Status Prepare(const SparseVector& a, const SparseVector& b,
                 double max_storage_words, uint64_t seed) override {
    JlOptions options;
    options.num_rows = SamplesForStorageWords(max_storage_words,
                                              SketchFamily::kLinear);
    options.seed = seed;
    auto sa = SketchJl(a, options);
    IPS_RETURN_IF_ERROR(sa.status());
    auto sb = SketchJl(b, options);
    IPS_RETURN_IF_ERROR(sb.status());
    a_ = std::move(sa).value();
    b_ = std::move(sb).value();
    return Status::Ok();
  }

  Result<double> Estimate(double storage_words) override {
    const size_t m = SamplesForStorageWords(storage_words,
                                            SketchFamily::kLinear);
    if (m == 0 || m > a_.num_rows()) {
      return Status::OutOfRange("storage budget outside prepared range");
    }
    return EstimateJlInnerProduct(TruncatedJl(a_, m), TruncatedJl(b_, m));
  }

 private:
  std::string name_ = "JL";
  JlSketch a_, b_;
};

class CountSketchEvaluator final : public MethodEvaluator {
 public:
  const std::string& name() const override { return name_; }

  Status Prepare(const SparseVector& a, const SparseVector& b,
                 double max_storage_words, uint64_t seed) override {
    // CountSketch bucket layouts change with the width, so the vectors are
    // kept and re-bucketed per budget (one cheap pass over non-zeros each).
    a_ = a;
    b_ = b;
    seed_ = seed;
    max_words_ = max_storage_words;
    return Status::Ok();
  }

  Result<double> Estimate(double storage_words) override {
    if (storage_words > max_words_) {
      return Status::OutOfRange("storage budget outside prepared range");
    }
    CountSketchOptions options;
    options.total_counters =
        SamplesForStorageWords(storage_words, SketchFamily::kLinear);
    options.seed = seed_;
    auto sa = SketchCount(a_, options);
    IPS_RETURN_IF_ERROR(sa.status());
    auto sb = SketchCount(b_, options);
    IPS_RETURN_IF_ERROR(sb.status());
    return EstimateCountSketchInnerProduct(sa.value(), sb.value());
  }

 private:
  std::string name_ = "CS";
  SparseVector a_, b_;
  uint64_t seed_ = 0;
  double max_words_ = 0.0;
};

class MhEvaluator final : public MethodEvaluator {
 public:
  const std::string& name() const override { return name_; }

  Status Prepare(const SparseVector& a, const SparseVector& b,
                 double max_storage_words, uint64_t seed) override {
    MhOptions options;
    options.num_samples =
        SamplesForStorageWords(max_storage_words, SketchFamily::kSampling);
    options.seed = seed;
    auto sa = SketchMh(a, options);
    IPS_RETURN_IF_ERROR(sa.status());
    auto sb = SketchMh(b, options);
    IPS_RETURN_IF_ERROR(sb.status());
    a_ = std::move(sa).value();
    b_ = std::move(sb).value();
    return Status::Ok();
  }

  Result<double> Estimate(double storage_words) override {
    const size_t m =
        SamplesForStorageWords(storage_words, SketchFamily::kSampling);
    if (m == 0 || m > a_.num_samples()) {
      return Status::OutOfRange("storage budget outside prepared range");
    }
    return EstimateMhInnerProduct(TruncatedMh(a_, m), TruncatedMh(b_, m));
  }

 private:
  std::string name_ = "MH";
  MhSketch a_, b_;
};

class KmvEvaluator final : public MethodEvaluator {
 public:
  const std::string& name() const override { return name_; }

  Status Prepare(const SparseVector& a, const SparseVector& b,
                 double max_storage_words, uint64_t seed) override {
    KmvOptions options;
    options.k =
        SamplesForStorageWords(max_storage_words, SketchFamily::kSampling);
    options.seed = seed;
    auto sa = SketchKmv(a, options);
    IPS_RETURN_IF_ERROR(sa.status());
    auto sb = SketchKmv(b, options);
    IPS_RETURN_IF_ERROR(sb.status());
    a_ = std::move(sa).value();
    b_ = std::move(sb).value();
    return Status::Ok();
  }

  Result<double> Estimate(double storage_words) override {
    const size_t k =
        SamplesForStorageWords(storage_words, SketchFamily::kSampling);
    if (k == 0 || k > a_.k) {
      return Status::OutOfRange("storage budget outside prepared range");
    }
    return EstimateKmvInnerProduct(TruncatedKmv(a_, k), TruncatedKmv(b_, k));
  }

 private:
  std::string name_ = "KMV";
  KmvSketch a_, b_;
};

class WmhEvaluator final : public MethodEvaluator {
 public:
  WmhEvaluator(WmhEngine engine, uint64_t L) : engine_(engine), L_(L) {}

  const std::string& name() const override { return name_; }

  Status Prepare(const SparseVector& a, const SparseVector& b,
                 double max_storage_words, uint64_t seed) override {
    WmhOptions options;
    options.num_samples = SamplesForStorageWords(
        max_storage_words, SketchFamily::kSamplingWithNorm);
    options.seed = seed;
    options.L = L_;
    options.engine = engine_;
    auto sa = SketchWmh(a, options);
    IPS_RETURN_IF_ERROR(sa.status());
    auto sb = SketchWmh(b, options);
    IPS_RETURN_IF_ERROR(sb.status());
    a_ = std::move(sa).value();
    b_ = std::move(sb).value();
    return Status::Ok();
  }

  Result<double> Estimate(double storage_words) override {
    const size_t m = SamplesForStorageWords(storage_words,
                                            SketchFamily::kSamplingWithNorm);
    if (m == 0 || m > a_.num_samples()) {
      return Status::OutOfRange("storage budget outside prepared range");
    }
    return EstimateWmhInnerProduct(TruncatedWmh(a_, m), TruncatedWmh(b_, m));
  }

 private:
  std::string name_ = "WMH";
  WmhEngine engine_;
  uint64_t L_;
  WmhSketch a_, b_;
};

class IcwsEvaluator final : public MethodEvaluator {
 public:
  const std::string& name() const override { return name_; }

  Status Prepare(const SparseVector& a, const SparseVector& b,
                 double max_storage_words, uint64_t seed) override {
    IcwsOptions options;
    options.num_samples = SamplesForStorageWords(
        max_storage_words, SketchFamily::kSamplingWithNorm);
    options.seed = seed;
    auto sa = SketchIcws(a, options);
    IPS_RETURN_IF_ERROR(sa.status());
    auto sb = SketchIcws(b, options);
    IPS_RETURN_IF_ERROR(sb.status());
    a_ = std::move(sa).value();
    b_ = std::move(sb).value();
    return Status::Ok();
  }

  Result<double> Estimate(double storage_words) override {
    const size_t m = SamplesForStorageWords(storage_words,
                                            SketchFamily::kSamplingWithNorm);
    if (m == 0 || m > a_.num_samples()) {
      return Status::OutOfRange("storage budget outside prepared range");
    }
    return EstimateIcwsInnerProduct(TruncatedIcws(a_, m),
                                    TruncatedIcws(b_, m));
  }

 private:
  std::string name_ = "ICWS";
  IcwsSketch a_, b_;
};

}  // namespace

std::unique_ptr<MethodEvaluator> MakeJlEvaluator() {
  return std::make_unique<JlEvaluator>();
}
std::unique_ptr<MethodEvaluator> MakeCountSketchEvaluator() {
  return std::make_unique<CountSketchEvaluator>();
}
std::unique_ptr<MethodEvaluator> MakeMhEvaluator() {
  return std::make_unique<MhEvaluator>();
}
std::unique_ptr<MethodEvaluator> MakeKmvEvaluator() {
  return std::make_unique<KmvEvaluator>();
}
std::unique_ptr<MethodEvaluator> MakeWmhEvaluator(WmhEngine engine,
                                                  uint64_t L) {
  return std::make_unique<WmhEvaluator>(engine, L);
}
std::unique_ptr<MethodEvaluator> MakeIcwsEvaluator() {
  return std::make_unique<IcwsEvaluator>();
}

std::vector<std::unique_ptr<MethodEvaluator>> MakeStandardEvaluators() {
  std::vector<std::unique_ptr<MethodEvaluator>> out;
  out.push_back(MakeJlEvaluator());
  out.push_back(MakeCountSketchEvaluator());
  out.push_back(MakeMhEvaluator());
  out.push_back(MakeKmvEvaluator());
  out.push_back(MakeWmhEvaluator());
  return out;
}

std::vector<std::unique_ptr<MethodEvaluator>> MakeExtendedEvaluators() {
  auto out = MakeStandardEvaluators();
  out.push_back(MakeIcwsEvaluator());
  return out;
}

}  // namespace ipsketch
