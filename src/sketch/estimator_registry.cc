#include "sketch/estimator_registry.h"

#include <utility>

#include "sketch/family.h"
#include "sketch/storage.h"

namespace ipsketch {
namespace {

/// The single evaluator implementation: everything method-specific lives
/// behind the family vtable. Families that support truncation are sketched
/// once at the prepared budget and evaluated by prefix; the rest (CS, whose
/// bucket layout changes with the width) keep the raw vectors and re-sketch
/// per budget through a family resized to that budget.
class FamilyEvaluator final : public MethodEvaluator {
 public:
  FamilyEvaluator(FamilyInfo info, std::map<std::string, std::string> params)
      : info_(std::move(info)), params_(std::move(params)) {}

  const std::string& name() const override { return info_.display_name; }

  Status Prepare(const SparseVector& a, const SparseVector& b,
                 double max_storage_words, uint64_t seed) override {
    FamilyOptions options;
    options.dimension = a.dimension();
    options.seed = seed;
    options.params = params_;
    if (info_.name == "wmh_bbit") {
      // Resolve the width through the registry first (a probe construction
      // at m = 1), so the budget mapping reads the same validated 'bits'
      // the family itself resolves — the registry stays the single
      // parser/validator for the knob.
      options.num_samples = 1;
      auto probe = MakeFamily(info_.name, options);
      IPS_RETURN_IF_ERROR(probe.status());
      // Guaranteed "1".."32" after resolution; stoul is mere conversion.
      bbit_bits_ = static_cast<uint32_t>(
          std::stoul(probe.value()->options().params.at("bits")));
    }
    options.num_samples = SamplesForBudget(max_storage_words);
    auto family = MakeFamily(info_.name, options);
    IPS_RETURN_IF_ERROR(family.status());
    family_ = std::move(family).value();
    max_words_ = max_storage_words;

    if (info_.supports_truncation) {
      auto sketcher = family_->MakeSketcher();
      IPS_RETURN_IF_ERROR(sketcher.status());
      a_ = family_->NewSketch();
      b_ = family_->NewSketch();
      IPS_RETURN_IF_ERROR(sketcher.value()->Sketch(a, a_.get()));
      IPS_RETURN_IF_ERROR(sketcher.value()->Sketch(b, b_.get()));
    } else {
      // Kept raw; re-sketched per budget in Estimate (one cheap pass over
      // the non-zeros each).
      raw_a_ = a;
      raw_b_ = b;
    }
    return Status::Ok();
  }

  Result<double> Estimate(double storage_words) override {
    if (family_ == nullptr) {
      return Status::FailedPrecondition("Prepare before Estimate");
    }
    const size_t m = SamplesForBudget(storage_words);
    if (info_.supports_truncation) {
      if (m == 0 || m > family_->options().num_samples) {
        return Status::OutOfRange("storage budget outside prepared range");
      }
      auto ta = family_->Truncate(*a_, m);
      IPS_RETURN_IF_ERROR(ta.status());
      auto tb = family_->Truncate(*b_, m);
      IPS_RETURN_IF_ERROR(tb.status());
      return family_->Estimate(*ta.value(), *tb.value());
    }

    if (storage_words > max_words_) {
      return Status::OutOfRange("storage budget outside prepared range");
    }
    FamilyOptions options = family_->options();
    options.num_samples = m;
    auto resized = MakeFamily(info_.name, options);
    IPS_RETURN_IF_ERROR(resized.status());
    auto sketcher = resized.value()->MakeSketcher();
    IPS_RETURN_IF_ERROR(sketcher.status());
    auto sa = resized.value()->NewSketch();
    auto sb = resized.value()->NewSketch();
    IPS_RETURN_IF_ERROR(sketcher.value()->Sketch(raw_a_, sa.get()));
    IPS_RETURN_IF_ERROR(sketcher.value()->Sketch(raw_b_, sb.get()));
    return resized.value()->Estimate(*sa, *sb);
  }

 private:
  /// Budget→samples. The static storage-class table charges wmh_bbit at
  /// the default b = 16; this evaluator follows the family's *resolved*
  /// width (set in Prepare), or a b > 16 sweep would silently exceed its
  /// storage budget (and a b < 16 one waste it).
  size_t SamplesForBudget(double storage_words) const {
    if (bbit_bits_ != 0) {
      return SamplesForBbitStorageWords(storage_words, bbit_bits_);
    }
    return SamplesForStorageWords(storage_words, info_.storage);
  }

  FamilyInfo info_;
  std::map<std::string, std::string> params_;
  // Resolved fingerprint width for "wmh_bbit" evaluators; 0 for every
  // other family (use the static storage-class table).
  uint32_t bbit_bits_ = 0;
  std::shared_ptr<const SketchFamily> family_;
  double max_words_ = 0.0;
  // Truncation families: the pair sketched at the prepared budget.
  std::unique_ptr<AnySketch> a_, b_;
  // Re-sketching families: the raw pair.
  SparseVector raw_a_, raw_b_;
};

std::unique_ptr<MethodEvaluator> MakeKnownFamilyEvaluator(
    const std::string& family, std::map<std::string, std::string> params) {
  auto made = MakeFamilyEvaluator(family, std::move(params));
  IPS_CHECK(made.ok());
  return std::move(made).value();
}

}  // namespace

Result<std::unique_ptr<MethodEvaluator>> MakeFamilyEvaluator(
    const std::string& family, std::map<std::string, std::string> params) {
  auto info = GetFamilyInfo(family);
  IPS_RETURN_IF_ERROR(info.status());
  return std::unique_ptr<MethodEvaluator>(
      new FamilyEvaluator(std::move(info).value(), std::move(params)));
}

std::unique_ptr<MethodEvaluator> MakeJlEvaluator() {
  return MakeKnownFamilyEvaluator("jl", {});
}
std::unique_ptr<MethodEvaluator> MakeCountSketchEvaluator() {
  return MakeKnownFamilyEvaluator("cs", {});
}
std::unique_ptr<MethodEvaluator> MakeMhEvaluator() {
  return MakeKnownFamilyEvaluator("mh", {});
}
std::unique_ptr<MethodEvaluator> MakeKmvEvaluator() {
  return MakeKnownFamilyEvaluator("kmv", {});
}
std::unique_ptr<MethodEvaluator> MakeWmhEvaluator(WmhEngine engine,
                                                  uint64_t L) {
  std::map<std::string, std::string> params;
  params["engine"] = WmhEngineName(engine);
  if (L != 0) params["L"] = std::to_string(L);
  return MakeKnownFamilyEvaluator("wmh", std::move(params));
}
std::unique_ptr<MethodEvaluator> MakeIcwsEvaluator() {
  return MakeKnownFamilyEvaluator("icws", {});
}

std::vector<std::unique_ptr<MethodEvaluator>> MakeStandardEvaluators() {
  std::vector<std::unique_ptr<MethodEvaluator>> out;
  out.push_back(MakeJlEvaluator());
  out.push_back(MakeCountSketchEvaluator());
  out.push_back(MakeMhEvaluator());
  out.push_back(MakeKmvEvaluator());
  out.push_back(MakeWmhEvaluator());
  return out;
}

std::vector<std::unique_ptr<MethodEvaluator>> MakeExtendedEvaluators() {
  auto out = MakeStandardEvaluators();
  out.push_back(MakeIcwsEvaluator());
  return out;
}

}  // namespace ipsketch
