// K-Minimum-Values (KMV) sampling sketch (Beyer et al. 2007), augmented with
// vector values as in the correlation sketches of Santos et al. (2021) —
// the "KMV" baseline of the paper's §5.
//
// Unlike MinHash, KMV uses a *single* hash function and keeps the k smallest
// hash values over the support, i.e. it samples k support indices without
// replacement. The k-th smallest hash ζ estimates the distinct union size as
// (k−1)/ζ; matched hashes present in both sketches form a uniform
// without-replacement sample of the support intersection.

#ifndef IPSKETCH_SKETCH_KMV_H_
#define IPSKETCH_SKETCH_KMV_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Configuration for `SketchKmv`.
struct KmvOptions {
  /// Number of minimum values k to retain.
  size_t k = 128;
  /// Random seed; sketches are comparable only with equal seeds.
  uint64_t seed = 0;
  /// Hash family (see HashKind).
  HashKind hash_kind = HashKind::kMixed64;

  /// Validates field ranges.
  Status Validate() const;
};

/// A KMV sketch: the ≤ k smallest-hash support entries, sorted by hash.
struct KmvSketch {
  /// One retained sample: the hash of an index and the vector value there.
  struct Sample {
    double hash = 0.0;
    double value = 0.0;
  };

  std::vector<Sample> samples;  ///< sorted ascending by hash; size ≤ k
  size_t k = 0;                 ///< configured capacity
  uint64_t seed = 0;
  uint64_t dimension = 0;
  HashKind hash_kind = HashKind::kMixed64;

  /// True iff the sketch retained the vector's whole support (nnz ≤ k), in
  /// which case it is lossless for that vector.
  bool exhaustive() const { return samples.size() < k; }

  /// Storage in 64-bit words: one double + one 32-bit hash per sample.
  double StorageWords() const {
    return 1.5 * static_cast<double>(samples.size());
  }
};

/// Computes the KMV sketch of `a`.
Result<KmvSketch> SketchKmv(const SparseVector& a, const KmvOptions& options);

/// Estimates ⟨a, b⟩ from two KMV sketches.
///
/// Merges the two hash lists, takes the k' = min(k, distinct) smallest
/// union hashes, estimates the union as (k'−1)/ζ_{k'} (or exactly, when both
/// sketches are exhaustive), and inverse-weights the matched value products.
Result<double> EstimateKmvInnerProduct(const KmvSketch& a, const KmvSketch& b);

/// Re-capacitates the sketch to k' ≤ k by keeping the k' smallest samples
/// (a valid KMV sketch with parameter k').
KmvSketch TruncatedKmv(const KmvSketch& sketch, size_t k_prime);

}  // namespace ipsketch

#endif  // IPSKETCH_SKETCH_KMV_H_
