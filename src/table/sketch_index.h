// A dataset-search catalog: pre-computed column sketches over a corpus of
// tables, searchable by estimated joinability/relatedness (§1.2's workflow:
// "a small-space sketch is precomputed for all data tables in the search
// set" and queries compare against those sketches).

#ifndef IPSKETCH_TABLE_SKETCH_INDEX_H_
#define IPSKETCH_TABLE_SKETCH_INDEX_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/join_estimates.h"
#include "table/table.h"

namespace ipsketch {

/// Ranking criterion for catalog search.
enum class RankBy {
  kJoinSize = 0,        ///< estimated |K_query ∩ K_candidate|
  kAbsCorrelation = 1,  ///< |estimated post-join Pearson correlation|
  kAbsInnerProduct = 2, ///< |estimated ⟨x_V_query, x_V_candidate⟩|
};

/// A pre-sketched catalog of table columns.
class SketchIndex {
 public:
  /// Creates an empty catalog; all sketches use `options`.
  explicit SketchIndex(ColumnSketchOptions options)
      : options_(options) {}

  /// Sketches every value column of `table` into the catalog.
  Status AddTable(const Table& table);

  /// Sketches a single keyed column into the catalog.
  Status AddColumn(const KeyedColumn& column);

  /// Number of sketched columns.
  size_t size() const { return columns_.size(); }

  /// One search hit.
  struct Hit {
    std::string column_name;  ///< catalog column ("table.column")
    double score = 0.0;       ///< value of the ranking criterion
    EstimatedJoinStats stats; ///< full estimated statistics vs the query
  };

  /// Ranks all catalog columns against `query` and returns the best `top_k`.
  /// The query is sketched once with the catalog's configuration.
  Result<std::vector<Hit>> Search(const KeyedColumn& query, RankBy rank_by,
                                  size_t top_k) const;

  /// The catalog's sketch configuration.
  const ColumnSketchOptions& options() const { return options_; }

 private:
  ColumnSketchOptions options_;
  std::vector<ColumnSketch> columns_;
};

}  // namespace ipsketch

#endif  // IPSKETCH_TABLE_SKETCH_INDEX_H_
