#include "table/join_estimates.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"
#include "core/wmh_estimator.h"
#include "table/vectorize.h"

namespace ipsketch {

Status ColumnSketchOptions::Validate() const {
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (key_domain == 0) {
    return Status::InvalidArgument("key_domain must be positive");
  }
  return Status::Ok();
}

Result<ColumnSketch> SketchColumn(const KeyedColumn& column,
                                  const ColumnSketchOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());

  WmhOptions wmh;
  wmh.num_samples = options.num_samples;
  wmh.L = options.L;
  // All encodings — across every column in the catalog — must be sketched
  // with the SAME hash functions: post-join statistics pair a value sketch
  // of one column with a key-indicator sketch of another (e.g. SUM(V_A⋈) =
  // ⟨x_VA, x_1[K_B]⟩), and Algorithm 5 only accepts sketches built with an
  // identical seed.
  wmh.seed = options.seed;

  ColumnSketch out;
  out.name = column.name();

  auto indicator = KeyIndicatorVector(column, options.key_domain);
  IPS_RETURN_IF_ERROR(indicator.status());
  auto s1 = SketchWmh(indicator.value(), wmh);
  IPS_RETURN_IF_ERROR(s1.status());
  out.key_indicator = std::move(s1).value();

  auto value_vec = ValueVector(column, options.key_domain);
  IPS_RETURN_IF_ERROR(value_vec.status());
  auto s2 = SketchWmh(value_vec.value(), wmh);
  IPS_RETURN_IF_ERROR(s2.status());
  out.values = std::move(s2).value();

  auto squared = SquaredValueVector(column, options.key_domain);
  IPS_RETURN_IF_ERROR(squared.status());
  auto s3 = SketchWmh(squared.value(), wmh);
  IPS_RETURN_IF_ERROR(s3.status());
  out.squared_values = std::move(s3).value();

  // Standardized encoding: ẑ[k] = (v[k] − mean)/stddev on the column's keys.
  RunningMoments moments;
  for (double v : column.values()) moments.Add(v);
  out.value_mean = moments.Mean();
  out.value_stddev = moments.StdDev();
  std::vector<Entry> z_entries;
  z_entries.reserve(column.size());
  if (out.value_stddev > 0.0) {
    for (size_t i = 0; i < column.size(); ++i) {
      const double z =
          (column.values()[i] - out.value_mean) / out.value_stddev;
      if (z != 0.0) z_entries.push_back({column.keys()[i], z});
    }
  }
  auto z_vec = SparseVector::Make(options.key_domain, std::move(z_entries));
  IPS_RETURN_IF_ERROR(z_vec.status());
  auto s4 = SketchWmh(z_vec.value(), wmh);
  IPS_RETURN_IF_ERROR(s4.status());
  out.standardized = std::move(s4).value();

  return out;
}

Result<double> EstimateJoinSize(const ColumnSketch& a, const ColumnSketch& b) {
  return EstimateWmhInnerProduct(a.key_indicator, b.key_indicator);
}

Result<double> EstimateJoinSum(const ColumnSketch& a, const ColumnSketch& b) {
  return EstimateWmhInnerProduct(a.values, b.key_indicator);
}

Result<double> EstimateJoinMean(const ColumnSketch& a, const ColumnSketch& b) {
  auto size = EstimateJoinSize(a, b);
  IPS_RETURN_IF_ERROR(size.status());
  auto sum = EstimateJoinSum(a, b);
  IPS_RETURN_IF_ERROR(sum.status());
  if (size.value() <= 0.0) return 0.0;
  return sum.value() / size.value();
}

Result<double> EstimateJoinInnerProduct(const ColumnSketch& a,
                                        const ColumnSketch& b) {
  return EstimateWmhInnerProduct(a.values, b.values);
}

Result<EstimatedJoinStats> EstimateJoinStats(const ColumnSketch& a,
                                             const ColumnSketch& b) {
  EstimatedJoinStats stats;

  auto size = EstimateJoinSize(a, b);
  IPS_RETURN_IF_ERROR(size.status());
  stats.size = size.value();

  auto sum_a = EstimateJoinSum(a, b);
  IPS_RETURN_IF_ERROR(sum_a.status());
  stats.sum_a = sum_a.value();

  auto sum_b = EstimateJoinSum(b, a);
  IPS_RETURN_IF_ERROR(sum_b.status());
  stats.sum_b = sum_b.value();

  auto ip = EstimateJoinInnerProduct(a, b);
  IPS_RETURN_IF_ERROR(ip.status());
  stats.inner_product = ip.value();

  auto sq_a = EstimateWmhInnerProduct(a.squared_values, b.key_indicator);
  IPS_RETURN_IF_ERROR(sq_a.status());
  stats.sum_sq_a = sq_a.value();

  auto sq_b = EstimateWmhInnerProduct(b.squared_values, a.key_indicator);
  IPS_RETURN_IF_ERROR(sq_b.status());
  stats.sum_sq_b = sq_b.value();

  if (stats.size > 0.0) {
    const double n = stats.size;
    stats.mean_a = stats.sum_a / n;
    stats.mean_b = stats.sum_b / n;
    // Plug-in moment estimates; estimation noise can push the variance
    // estimates slightly negative, so clamp at 0.
    stats.variance_a =
        std::max(0.0, stats.sum_sq_a / n - stats.mean_a * stats.mean_a);
    stats.variance_b =
        std::max(0.0, stats.sum_sq_b / n - stats.mean_b * stats.mean_b);
    stats.covariance = stats.inner_product / n - stats.mean_a * stats.mean_b;
    const double denom = std::sqrt(stats.variance_a * stats.variance_b);
    if (denom > 0.0) {
      stats.correlation = std::clamp(stats.covariance / denom, -1.0, 1.0);
    }
  }

  // Standardized correlation: on globally standardized values the post-join
  // variances are ≈ 1, so r ≈ ⟨ẑ_A, ẑ_B⟩/n − μ̂_zA·μ̂_zB with the post-join
  // standardized means estimated from the same sketches.
  if (stats.size > 0.0 && a.value_stddev > 0.0 && b.value_stddev > 0.0) {
    auto ipz = EstimateWmhInnerProduct(a.standardized, b.standardized);
    IPS_RETURN_IF_ERROR(ipz.status());
    auto mza = EstimateWmhInnerProduct(a.standardized, b.key_indicator);
    IPS_RETURN_IF_ERROR(mza.status());
    auto mzb = EstimateWmhInnerProduct(b.standardized, a.key_indicator);
    IPS_RETURN_IF_ERROR(mzb.status());
    const double n = stats.size;
    const double r =
        ipz.value() / n - (mza.value() / n) * (mzb.value() / n);
    stats.standardized_correlation = std::clamp(r, -1.0, 1.0);
  }
  return stats;
}

}  // namespace ipsketch
