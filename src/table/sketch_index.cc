#include "table/sketch_index.h"

#include <algorithm>
#include <cmath>

namespace ipsketch {

Status SketchIndex::AddTable(const Table& table) {
  for (size_t i = 0; i < table.num_columns(); ++i) {
    auto column = table.ColumnAt(i);
    IPS_RETURN_IF_ERROR(column.status());
    IPS_RETURN_IF_ERROR(AddColumn(column.value()));
  }
  return Status::Ok();
}

Status SketchIndex::AddColumn(const KeyedColumn& column) {
  auto sketch = SketchColumn(column, options_);
  IPS_RETURN_IF_ERROR(sketch.status());
  columns_.push_back(std::move(sketch).value());
  return Status::Ok();
}

Result<std::vector<SketchIndex::Hit>> SketchIndex::Search(
    const KeyedColumn& query, RankBy rank_by, size_t top_k) const {
  auto query_sketch = SketchColumn(query, options_);
  IPS_RETURN_IF_ERROR(query_sketch.status());

  std::vector<Hit> hits;
  hits.reserve(columns_.size());
  for (const ColumnSketch& candidate : columns_) {
    auto stats = EstimateJoinStats(query_sketch.value(), candidate);
    IPS_RETURN_IF_ERROR(stats.status());
    Hit hit;
    hit.column_name = candidate.name;
    hit.stats = stats.value();
    switch (rank_by) {
      case RankBy::kJoinSize:
        hit.score = hit.stats.size;
        break;
      case RankBy::kAbsCorrelation:
        hit.score = std::fabs(hit.stats.standardized_correlation);
        break;
      case RankBy::kAbsInnerProduct:
        hit.score = std::fabs(hit.stats.inner_product);
        break;
    }
    hits.push_back(std::move(hit));
  }
  std::stable_sort(hits.begin(), hits.end(),
                   [](const Hit& x, const Hit& y) { return x.score > y.score; });
  if (hits.size() > top_k) hits.resize(top_k);
  return hits;
}

}  // namespace ipsketch
