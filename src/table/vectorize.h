// Table → vector encodings (Figure 3 of the paper).
//
// A keyed column (K, V) over a key domain of size n becomes:
//   * x_1[K]: the key indicator vector — 1 at each key of K, 0 elsewhere;
//   * x_V:   the value vector — V's value at each key of K, 0 elsewhere;
//   * x_V²:  squared values, enabling post-join second-moment estimates.
//
// Post-join statistics then reduce to inner products, e.g.
//   SIZE = ⟨x_1[K_A], x_1[K_B]⟩,  SUM(V_A⋈) = ⟨x_VA, x_1[K_B]⟩.

#ifndef IPSKETCH_TABLE_VECTORIZE_H_
#define IPSKETCH_TABLE_VECTORIZE_H_

#include <cstdint>

#include "common/status.h"
#include "table/column.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// The key indicator vector x_1[K] over domain [0, key_domain).
/// Fails if keys are duplicated or out of domain.
Result<SparseVector> KeyIndicatorVector(const KeyedColumn& column,
                                        uint64_t key_domain);

/// The value vector x_V over domain [0, key_domain).
/// Fails if keys are duplicated or out of domain. Note that zero values are
/// (correctly) indistinguishable from absent keys in this encoding.
Result<SparseVector> ValueVector(const KeyedColumn& column,
                                 uint64_t key_domain);

/// The squared-value vector x_V² over domain [0, key_domain).
Result<SparseVector> SquaredValueVector(const KeyedColumn& column,
                                        uint64_t key_domain);

}  // namespace ipsketch

#endif  // IPSKETCH_TABLE_VECTORIZE_H_
