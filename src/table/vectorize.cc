#include "table/vectorize.h"

namespace ipsketch {
namespace {

Result<SparseVector> VectorizeWith(const KeyedColumn& column,
                                   uint64_t key_domain, bool indicator,
                                   bool squared) {
  if (!column.HasUniqueKeys()) {
    return Status::FailedPrecondition(
        "column '" + column.name() +
        "' has duplicate keys; aggregate before vectorizing");
  }
  std::vector<Entry> entries;
  entries.reserve(column.size());
  for (size_t i = 0; i < column.size(); ++i) {
    const uint64_t key = column.keys()[i];
    if (key >= key_domain) {
      return Status::OutOfRange("key " + std::to_string(key) +
                                " outside domain " +
                                std::to_string(key_domain));
    }
    double v = indicator ? 1.0 : column.values()[i];
    if (squared) v *= v;
    entries.push_back({key, v});
  }
  return SparseVector::Make(key_domain, std::move(entries));
}

}  // namespace

Result<SparseVector> KeyIndicatorVector(const KeyedColumn& column,
                                        uint64_t key_domain) {
  return VectorizeWith(column, key_domain, /*indicator=*/true,
                       /*squared=*/false);
}

Result<SparseVector> ValueVector(const KeyedColumn& column,
                                 uint64_t key_domain) {
  return VectorizeWith(column, key_domain, /*indicator=*/false,
                       /*squared=*/false);
}

Result<SparseVector> SquaredValueVector(const KeyedColumn& column,
                                        uint64_t key_domain) {
  return VectorizeWith(column, key_domain, /*indicator=*/false,
                       /*squared=*/true);
}

}  // namespace ipsketch
