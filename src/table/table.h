// A minimal relational table: one key column plus named numeric value
// columns, mirroring the T_A / T_B tables of Figure 2.

#ifndef IPSKETCH_TABLE_TABLE_H_
#define IPSKETCH_TABLE_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "table/column.h"

namespace ipsketch {

/// A table with one shared key column and any number of value columns.
class Table {
 public:
  Table() = default;

  /// Builds a table. Every value column must match the key column's length;
  /// keys must be unique (aggregate upstream per footnote 3 of the paper).
  static Result<Table> Make(std::string name, std::vector<uint64_t> keys,
                            std::vector<std::string> column_names,
                            std::vector<std::vector<double>> column_values);

  /// `Make` that aborts on error — for literals in tests and examples.
  static Table MakeOrDie(std::string name, std::vector<uint64_t> keys,
                         std::vector<std::string> column_names,
                         std::vector<std::vector<double>> column_values);

  /// Table name.
  const std::string& name() const { return name_; }
  /// Number of rows.
  size_t num_rows() const { return keys_.size(); }
  /// Number of value columns.
  size_t num_columns() const { return column_names_.size(); }
  /// Row keys.
  const std::vector<uint64_t>& keys() const { return keys_; }
  /// Value column names.
  const std::vector<std::string>& column_names() const {
    return column_names_;
  }

  /// The value column called `name`, as a KeyedColumn over this table's keys.
  Result<KeyedColumn> Column(const std::string& name) const;

  /// The i-th value column as a KeyedColumn.
  Result<KeyedColumn> ColumnAt(size_t i) const;

 private:
  Table(std::string name, std::vector<uint64_t> keys,
        std::vector<std::string> column_names,
        std::vector<std::vector<double>> column_values)
      : name_(std::move(name)),
        keys_(std::move(keys)),
        column_names_(std::move(column_names)),
        column_values_(std::move(column_values)) {}

  std::string name_;
  std::vector<uint64_t> keys_;
  std::vector<std::string> column_names_;
  std::vector<std::vector<double>> column_values_;
};

}  // namespace ipsketch

#endif  // IPSKETCH_TABLE_TABLE_H_
