// Exact one-to-one joins and post-join statistics — the ground truth the
// sketched estimates of join_estimates.h are evaluated against (Figure 2).

#ifndef IPSKETCH_TABLE_JOIN_H_
#define IPSKETCH_TABLE_JOIN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "table/column.h"

namespace ipsketch {

/// One row of a materialized one-to-one join.
struct JoinedRow {
  uint64_t key = 0;
  double value_a = 0.0;
  double value_b = 0.0;
};

/// Post-join statistics of T_A ⋈ T_B (Figure 2's SIZE / SUM / MEAN, plus the
/// second-moment statistics dataset-search systems estimate).
struct JoinStats {
  size_t size = 0;             ///< |K_A ∩ K_B|
  double sum_a = 0.0;          ///< SUM(V_A⋈)
  double sum_b = 0.0;          ///< SUM(V_B⋈)
  double mean_a = 0.0;         ///< MEAN(V_A⋈)
  double mean_b = 0.0;         ///< MEAN(V_B⋈)
  double inner_product = 0.0;  ///< Σ V_A⋈·V_B⋈ = ⟨x_VA, x_VB⟩
  double sum_sq_a = 0.0;       ///< Σ V_A⋈²
  double sum_sq_b = 0.0;       ///< Σ V_B⋈²
  double variance_a = 0.0;     ///< population variance of V_A⋈
  double variance_b = 0.0;     ///< population variance of V_B⋈
  double covariance = 0.0;     ///< population covariance of (V_A⋈, V_B⋈)
  double correlation = 0.0;    ///< Pearson correlation (0 if degenerate)
};

/// Materializes the one-to-one join of two keyed columns.
/// Fails with FailedPrecondition if either column has duplicate keys.
Result<std::vector<JoinedRow>> JoinRows(const KeyedColumn& a,
                                        const KeyedColumn& b);

/// Computes all post-join statistics of the one-to-one join.
Result<JoinStats> ComputeJoinStats(const KeyedColumn& a, const KeyedColumn& b);

}  // namespace ipsketch

#endif  // IPSKETCH_TABLE_JOIN_H_
