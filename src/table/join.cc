#include "table/join.h"

#include <cmath>
#include <unordered_map>

namespace ipsketch {

Result<std::vector<JoinedRow>> JoinRows(const KeyedColumn& a,
                                        const KeyedColumn& b) {
  if (!a.HasUniqueKeys() || !b.HasUniqueKeys()) {
    return Status::FailedPrecondition(
        "one-to-one join requires unique keys; aggregate first");
  }
  std::unordered_map<uint64_t, double> b_map;
  b_map.reserve(b.size());
  for (size_t i = 0; i < b.size(); ++i) b_map.emplace(b.keys()[i], b.values()[i]);

  std::vector<JoinedRow> rows;
  for (size_t i = 0; i < a.size(); ++i) {
    auto it = b_map.find(a.keys()[i]);
    if (it != b_map.end()) {
      rows.push_back({a.keys()[i], a.values()[i], it->second});
    }
  }
  return rows;
}

Result<JoinStats> ComputeJoinStats(const KeyedColumn& a,
                                   const KeyedColumn& b) {
  auto rows = JoinRows(a, b);
  IPS_RETURN_IF_ERROR(rows.status());

  JoinStats stats;
  stats.size = rows.value().size();
  for (const JoinedRow& r : rows.value()) {
    stats.sum_a += r.value_a;
    stats.sum_b += r.value_b;
    stats.inner_product += r.value_a * r.value_b;
    stats.sum_sq_a += r.value_a * r.value_a;
    stats.sum_sq_b += r.value_b * r.value_b;
  }
  if (stats.size > 0) {
    const double n = static_cast<double>(stats.size);
    stats.mean_a = stats.sum_a / n;
    stats.mean_b = stats.sum_b / n;
    stats.variance_a = stats.sum_sq_a / n - stats.mean_a * stats.mean_a;
    stats.variance_b = stats.sum_sq_b / n - stats.mean_b * stats.mean_b;
    stats.covariance = stats.inner_product / n - stats.mean_a * stats.mean_b;
    const double denom = std::sqrt(stats.variance_a * stats.variance_b);
    stats.correlation = denom > 0.0 ? stats.covariance / denom : 0.0;
  }
  return stats;
}

}  // namespace ipsketch
