// Keyed columns: the unit of data in the dataset-search application (§1.2).
//
// A KeyedColumn is a (key, value) pair list — e.g. (date, #taxi rides) —
// extracted from one column of a data table. Join-based statistics between
// two tables reduce to inner products between vector encodings of their
// keyed columns (Figures 2 and 3 of the paper).

#ifndef IPSKETCH_TABLE_COLUMN_H_
#define IPSKETCH_TABLE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace ipsketch {

/// How duplicate keys are collapsed when reducing a many-to-many join input
/// to the one-to-one setting (paper footnote 3: "a typical approach is to
/// use a data aggregation function").
enum class Aggregation {
  kSum = 0,
  kMean = 1,
  kMin = 2,
  kMax = 3,
  kCount = 4,
  kFirst = 5,
};

/// A named column of (key, value) rows.
class KeyedColumn {
 public:
  KeyedColumn() = default;

  /// Builds a column; `keys` and `values` must have equal length and all
  /// values must be finite. Keys may repeat (use `Aggregated` to collapse).
  static Result<KeyedColumn> Make(std::string name, std::vector<uint64_t> keys,
                                  std::vector<double> values);

  /// `Make` that aborts on error — for literals in tests and examples.
  static KeyedColumn MakeOrDie(std::string name, std::vector<uint64_t> keys,
                               std::vector<double> values);

  /// Column name.
  const std::string& name() const { return name_; }
  /// Number of rows.
  size_t size() const { return keys_.size(); }
  /// Row keys, in insertion order.
  const std::vector<uint64_t>& keys() const { return keys_; }
  /// Row values, aligned with keys().
  const std::vector<double>& values() const { return values_; }

  /// True iff no key occurs twice.
  bool HasUniqueKeys() const;

  /// Largest key present (0 for an empty column).
  uint64_t MaxKey() const;

  /// Returns a copy with duplicate keys collapsed by `agg`, keys sorted
  /// ascending. The result always has unique keys.
  KeyedColumn Aggregated(Aggregation agg) const;

 private:
  KeyedColumn(std::string name, std::vector<uint64_t> keys,
              std::vector<double> values)
      : name_(std::move(name)),
        keys_(std::move(keys)),
        values_(std::move(values)) {}

  std::string name_;
  std::vector<uint64_t> keys_;
  std::vector<double> values_;
};

}  // namespace ipsketch

#endif  // IPSKETCH_TABLE_COLUMN_H_
