#include "table/table.h"

#include <unordered_set>

namespace ipsketch {

Result<Table> Table::Make(std::string name, std::vector<uint64_t> keys,
                          std::vector<std::string> column_names,
                          std::vector<std::vector<double>> column_values) {
  if (column_names.size() != column_values.size()) {
    return Status::InvalidArgument("column name/value count mismatch");
  }
  for (const auto& col : column_values) {
    if (col.size() != keys.size()) {
      return Status::InvalidArgument("column length differs from key count");
    }
  }
  std::unordered_set<uint64_t> seen;
  seen.reserve(keys.size());
  for (uint64_t k : keys) {
    if (!seen.insert(k).second) {
      return Status::InvalidArgument("duplicate key " + std::to_string(k) +
                                     " in table '" + name + "'");
    }
  }
  return Table(std::move(name), std::move(keys), std::move(column_names),
               std::move(column_values));
}

Table Table::MakeOrDie(std::string name, std::vector<uint64_t> keys,
                       std::vector<std::string> column_names,
                       std::vector<std::vector<double>> column_values) {
  auto r = Make(std::move(name), std::move(keys), std::move(column_names),
                std::move(column_values));
  IPS_CHECK(r.ok());
  return std::move(r).value();
}

Result<KeyedColumn> Table::Column(const std::string& name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (column_names_[i] == name) return ColumnAt(i);
  }
  return Status::NotFound("no column '" + name + "' in table '" + name_ + "'");
}

Result<KeyedColumn> Table::ColumnAt(size_t i) const {
  if (i >= column_names_.size()) {
    return Status::OutOfRange("column index out of range");
  }
  return KeyedColumn::Make(name_ + "." + column_names_[i], keys_,
                           column_values_[i]);
}

}  // namespace ipsketch
