// Sketch-backed post-join statistics: the dataset-search payload of §1.2.
//
// A `ColumnSketch` bundles WMH sketches of the three Figure-3 encodings of a
// keyed column (key indicator, values, squared values). Once built, any two
// column sketches with matching configuration can estimate — without ever
// joining the tables —
//
//   join size        ⟨x_1[K_A], x_1[K_B]⟩
//   post-join sums   ⟨x_VA, x_1[K_B]⟩,  ⟨x_VA², x_1[K_B]⟩
//   post-join means  SUM/SIZE
//   inner product    ⟨x_VA, x_VB⟩
//   covariance/correlation from the five estimates above.

#ifndef IPSKETCH_TABLE_JOIN_ESTIMATES_H_
#define IPSKETCH_TABLE_JOIN_ESTIMATES_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/wmh_sketch.h"
#include "table/column.h"

namespace ipsketch {

/// Configuration shared by every column sketch in a catalog.
struct ColumnSketchOptions {
  /// Samples per underlying WMH sketch (three sketches are kept per column).
  size_t num_samples = 256;
  /// Master seed; all catalog sketches must share it to be comparable.
  uint64_t seed = 0;
  /// Key domain size n (e.g. 2^32 for 32-bit surrogate keys). Keys must be
  /// smaller than this.
  uint64_t key_domain = uint64_t{1} << 32;
  /// WMH discretization parameter; 0 = DefaultL(key_domain).
  uint64_t L = 0;

  /// Validates field ranges.
  Status Validate() const;
};

/// WMH sketches of one keyed column's vector encodings.
struct ColumnSketch {
  std::string name;          ///< column display name
  WmhSketch key_indicator;   ///< S(x_1[K])
  WmhSketch values;          ///< S(x_V)
  WmhSketch squared_values;  ///< S(x_V²)
  /// S(x_ẑ) for the globally standardized values ẑ = (v − mean)/stddev.
  /// Plug-in variance estimation (E[x²] − mean²) cancels catastrophically
  /// when a column's mean dwarfs its spread, so correlation estimates use
  /// this pre-centered encoding instead (the approach of the correlation-
  /// sketch literature the paper builds on, Santos et al. 2021).
  WmhSketch standardized;
  double value_mean = 0.0;    ///< global mean of the column's values
  double value_stddev = 0.0;  ///< global population stddev (0 if constant)

  /// Total storage in 64-bit words.
  double StorageWords() const {
    return key_indicator.StorageWords() + values.StorageWords() +
           squared_values.StorageWords() + standardized.StorageWords() + 2.0;
  }
};

/// Builds the three sketches for a column. The column must have unique keys
/// within the configured domain.
Result<ColumnSketch> SketchColumn(const KeyedColumn& column,
                                  const ColumnSketchOptions& options);

/// All sketched post-join statistics for a column pair.
struct EstimatedJoinStats {
  double size = 0.0;
  double sum_a = 0.0;
  double sum_b = 0.0;
  double mean_a = 0.0;
  double mean_b = 0.0;
  double inner_product = 0.0;
  double sum_sq_a = 0.0;
  double sum_sq_b = 0.0;
  double variance_a = 0.0;
  double variance_b = 0.0;
  double covariance = 0.0;
  double correlation = 0.0;  ///< plug-in moments estimate, clamped to [−1, 1]
  /// Correlation from the standardized encodings: ⟨ẑ_A, ẑ_B⟩/SIZE minus the
  /// product of post-join standardized means. Far better conditioned than
  /// `correlation` for columns whose mean dwarfs their spread.
  double standardized_correlation = 0.0;
};

/// Estimated join size ⟨x_1[K_A], x_1[K_B]⟩.
Result<double> EstimateJoinSize(const ColumnSketch& a, const ColumnSketch& b);

/// Estimated post-join sum of a's values, ⟨x_VA, x_1[K_B]⟩.
Result<double> EstimateJoinSum(const ColumnSketch& a, const ColumnSketch& b);

/// Estimated post-join mean of a's values (SUM/SIZE; 0 if SIZE ≤ 0).
Result<double> EstimateJoinMean(const ColumnSketch& a, const ColumnSketch& b);

/// Estimated post-join inner product ⟨x_VA, x_VB⟩.
Result<double> EstimateJoinInnerProduct(const ColumnSketch& a,
                                        const ColumnSketch& b);

/// All statistics at once (size, sums, means, moments, correlation).
Result<EstimatedJoinStats> EstimateJoinStats(const ColumnSketch& a,
                                             const ColumnSketch& b);

}  // namespace ipsketch

#endif  // IPSKETCH_TABLE_JOIN_ESTIMATES_H_
