#include "table/column.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

namespace ipsketch {

Result<KeyedColumn> KeyedColumn::Make(std::string name,
                                      std::vector<uint64_t> keys,
                                      std::vector<double> values) {
  if (keys.size() != values.size()) {
    return Status::InvalidArgument("keys and values lengths differ");
  }
  for (double v : values) {
    if (!std::isfinite(v)) {
      return Status::InvalidArgument("non-finite value in column '" + name +
                                     "'");
    }
  }
  return KeyedColumn(std::move(name), std::move(keys), std::move(values));
}

KeyedColumn KeyedColumn::MakeOrDie(std::string name,
                                   std::vector<uint64_t> keys,
                                   std::vector<double> values) {
  auto r = Make(std::move(name), std::move(keys), std::move(values));
  IPS_CHECK(r.ok());
  return std::move(r).value();
}

bool KeyedColumn::HasUniqueKeys() const {
  std::unordered_set<uint64_t> seen;
  seen.reserve(keys_.size());
  for (uint64_t k : keys_) {
    if (!seen.insert(k).second) return false;
  }
  return true;
}

uint64_t KeyedColumn::MaxKey() const {
  uint64_t max_key = 0;
  for (uint64_t k : keys_) max_key = std::max(max_key, k);
  return max_key;
}

KeyedColumn KeyedColumn::Aggregated(Aggregation agg) const {
  struct Acc {
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double first = 0.0;
    size_t count = 0;
  };
  std::map<uint64_t, Acc> groups;  // ordered: output keys sorted ascending
  for (size_t i = 0; i < keys_.size(); ++i) {
    Acc& acc = groups[keys_[i]];
    const double v = values_[i];
    if (acc.count == 0) {
      acc.min = acc.max = acc.first = v;
    } else {
      acc.min = std::min(acc.min, v);
      acc.max = std::max(acc.max, v);
    }
    acc.sum += v;
    ++acc.count;
  }
  std::vector<uint64_t> out_keys;
  std::vector<double> out_values;
  out_keys.reserve(groups.size());
  out_values.reserve(groups.size());
  for (const auto& [key, acc] : groups) {
    out_keys.push_back(key);
    double v = 0.0;
    switch (agg) {
      case Aggregation::kSum:
        v = acc.sum;
        break;
      case Aggregation::kMean:
        v = acc.sum / static_cast<double>(acc.count);
        break;
      case Aggregation::kMin:
        v = acc.min;
        break;
      case Aggregation::kMax:
        v = acc.max;
        break;
      case Aggregation::kCount:
        v = static_cast<double>(acc.count);
        break;
      case Aggregation::kFirst:
        v = acc.first;
        break;
    }
    out_values.push_back(v);
  }
  return KeyedColumn(name_, std::move(out_keys), std::move(out_values));
}

}  // namespace ipsketch
