#include "common/mutex.h"

#include <cstdio>
#include <cstdlib>

namespace ipsketch {
namespace lock_rank_internal {

#ifndef NDEBUG

namespace {

// Per-thread stack of held mutexes. Real chains are ≤ 4 deep
// (kListenerRegistry → kStoreShard → kIndexShard → kLeaf); 16 leaves
// headroom without ever allocating on a lock path.
constexpr size_t kMaxHeld = 16;

struct HeldStack {
  const Mutex* held[kMaxHeld];
  size_t depth = 0;
};

thread_local HeldStack tls_held;

[[noreturn]] void RankViolation(const Mutex* mu, const Mutex* conflicting) {
  std::fprintf(
      stderr,
      "lock rank violation: acquiring mutex %p (rank %d) while holding "
      "mutex %p (rank %d); held stack depth %zu — ranks must strictly "
      "increase along every acquisition chain (see common/mutex.h)\n",
      static_cast<const void*>(mu), static_cast<int>(mu->rank()),
      static_cast<const void*>(conflicting),
      static_cast<int>(conflicting->rank()), tls_held.depth);
  std::abort();
}

}  // namespace

void CheckAcquire(const Mutex* mu) {
  const int rank = static_cast<int>(mu->rank());
  for (size_t i = 0; i < tls_held.depth; ++i) {
    // >= — equal ranks never nest: relocking the same mutex, sibling
    // shards of one store, or shards of two different stores all abort.
    if (static_cast<int>(tls_held.held[i]->rank()) >= rank) {
      RankViolation(mu, tls_held.held[i]);
    }
  }
}

void PushHeld(const Mutex* mu) {
  if (tls_held.depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "lock rank violation: thread holds %zu locks — deeper than "
                 "any sanctioned chain (common/mutex.h kMaxHeld)\n",
                 tls_held.depth);
    std::abort();
  }
  tls_held.held[tls_held.depth++] = mu;
}

void PopHeld(const Mutex* mu) {
  // LIFO in practice (scoped guards), but tolerate out-of-order release so
  // the checker never constrains correct code.
  for (size_t i = tls_held.depth; i-- > 0;) {
    if (tls_held.held[i] == mu) {
      for (size_t j = i + 1; j < tls_held.depth; ++j) {
        tls_held.held[j - 1] = tls_held.held[j];
      }
      --tls_held.depth;
      return;
    }
  }
  std::fprintf(stderr,
               "lock rank violation: releasing mutex %p (rank %d) this "
               "thread does not hold\n",
               static_cast<const void*>(mu), static_cast<int>(mu->rank()));
  std::abort();
}

size_t HeldDepthForTesting() { return tls_held.depth; }

#else  // NDEBUG

size_t HeldDepthForTesting() { return 0; }

#endif  // NDEBUG

}  // namespace lock_rank_internal
}  // namespace ipsketch
