#include "common/status.h"

namespace ipsketch {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string s = StatusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr) {
  std::fprintf(stderr, "IPS_CHECK failed at %s:%d: %s\n", file, line, expr);
  std::abort();
}

}  // namespace internal
}  // namespace ipsketch
