#include "common/hash.h"

#include "common/rng.h"
#include "common/status.h"

namespace ipsketch {

uint64_t ModMersenne31(uint64_t x) {
  // Valid for x < 2^62: two folds bring the value below 2p, then one
  // conditional subtraction.
  x = (x & kMersenne31) + (x >> 31);
  x = (x & kMersenne31) + (x >> 31);
  if (x >= kMersenne31) x -= kMersenne31;
  return x;
}

uint64_t ModMersenne61(unsigned __int128 x) {
  // Valid for x < 2^122 (any product of two 61-bit values).
  uint64_t lo = static_cast<uint64_t>(x & kMersenne61);
  uint64_t hi = static_cast<uint64_t>(x >> 61);
  uint64_t r = lo + hi;
  if (r >= kMersenne61) r -= kMersenne61;
  // lo < 2^61 and hi < 2^61, so lo + hi < 2^62; a second fold is needed only
  // when the sum itself overflowed 61 bits.
  r = (r & kMersenne61) + (r >> 61);
  if (r >= kMersenne61) r -= kMersenne61;
  return r;
}

CarterWegman31::CarterWegman31(uint64_t seed, uint64_t stream) {
  SplitMix64 sm(MixCombine(seed, stream));
  a_ = 1 + sm.Next() % (kMersenne31 - 1);
  b_ = sm.Next() % kMersenne31;
}

uint32_t CarterWegman31::Hash(uint64_t x) const {
  const uint64_t xr = ModMersenne31(x);
  return static_cast<uint32_t>(ModMersenne31(a_ * xr + b_));
}

CarterWegman61::CarterWegman61(uint64_t seed, uint64_t stream) {
  SplitMix64 sm(MixCombine(seed, stream));
  a_ = 1 + sm.Next() % (kMersenne61 - 1);
  b_ = sm.Next() % kMersenne61;
}

uint64_t CarterWegman61::Hash(uint64_t x) const {
  const uint64_t xr = x >= kMersenne61 ? x % kMersenne61 : x;
  unsigned __int128 prod = static_cast<unsigned __int128>(a_) * xr + b_;
  return ModMersenne61(prod);
}

SignHash::SignHash(uint64_t seed, uint64_t stream) {
  SplitMix64 sm(MixCombine(seed, stream));
  for (auto& c : c_) c = sm.Next() % kMersenne61;
  if (c_[3] == 0) c_[3] = 1;  // keep the polynomial degree-3
}

double SignHash::Sign(uint64_t x) const {
  const uint64_t xr = x >= kMersenne61 ? x % kMersenne61 : x;
  // Horner evaluation of c3·x^3 + c2·x^2 + c1·x + c0 mod p.
  unsigned __int128 acc = c_[3];
  for (int i = 2; i >= 0; --i) {
    acc = static_cast<unsigned __int128>(ModMersenne61(acc)) * xr + c_[i];
  }
  const uint64_t v = ModMersenne61(acc);
  // The low bit of a further mix supplies the sign; mixing avoids parity
  // artifacts of the polynomial itself.
  return (Mix64(v) & 1) ? 1.0 : -1.0;
}

IndexHasher::IndexHasher(HashKind kind, uint64_t seed, uint64_t stream)
    : kind_(kind), mix_key_(MixCombine(seed, stream)) {
  switch (kind_) {
    case HashKind::kMixed64:
      break;
    case HashKind::kCarterWegman61: {
      SplitMix64 sm(mix_key_);
      a_ = 1 + sm.Next() % (kMersenne61 - 1);
      b_ = sm.Next() % kMersenne61;
      break;
    }
    case HashKind::kCarterWegman31: {
      SplitMix64 sm(mix_key_);
      a_ = 1 + sm.Next() % (kMersenne31 - 1);
      b_ = sm.Next() % kMersenne31;
      break;
    }
  }
}

double IndexHasher::HashUnit(uint64_t x) const {
  switch (kind_) {
    case HashKind::kMixed64:
      return UnitFromU64(Mix64(mix_key_ ^ x));
    case HashKind::kCarterWegman61: {
      const uint64_t xr = x >= kMersenne61 ? x % kMersenne61 : x;
      const unsigned __int128 prod =
          static_cast<unsigned __int128>(a_) * xr + b_;
      return static_cast<double>(ModMersenne61(prod)) /
             static_cast<double>(kMersenne61);
    }
    case HashKind::kCarterWegman31: {
      const uint64_t xr = ModMersenne31(x);
      return static_cast<double>(ModMersenne31(a_ * xr + b_)) /
             static_cast<double>(kMersenne31);
    }
  }
  IPS_CHECK(false);
  return 0.0;
}

BucketHash::BucketHash(uint64_t seed, uint64_t stream, uint32_t num_buckets)
    : cw_(seed, stream), num_buckets_(num_buckets) {
  IPS_CHECK(num_buckets > 0);
}

uint32_t BucketHash::Bucket(uint64_t x) const {
  // Multiply-shift style range reduction of the 61-bit hash avoids the
  // slight modulo bias of `hash % num_buckets`.
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(cw_.Hash(x)) * num_buckets_;
  return static_cast<uint32_t>(wide >> 61);
}

}  // namespace ipsketch
