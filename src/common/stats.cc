#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/status.h"

namespace ipsketch {

void RunningMoments::Add(double x) {
  const double n1 = static_cast<double>(n_);
  ++n_;
  const double n = static_cast<double>(n_);
  const double delta = x - mean_;
  const double delta_n = delta / n;
  const double delta_n2 = delta_n * delta_n;
  const double term1 = delta * delta_n * n1;
  mean_ += delta_n;
  m4_ += term1 * delta_n2 * (n * n - 3.0 * n + 3.0) + 6.0 * delta_n2 * m2_ -
         4.0 * delta_n * m3_;
  m3_ += term1 * delta_n * (n - 2.0) - 3.0 * delta_n * m2_;
  m2_ += term1;
}

double RunningMoments::SampleVariance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningMoments::StdDev() const { return std::sqrt(Variance()); }

double RunningMoments::Skewness() const {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return std::sqrt(n) * m3_ / std::pow(m2_, 1.5);
}

double RunningMoments::Kurtosis() const {
  if (n_ < 2 || m2_ <= 0.0) return 0.0;
  const double n = static_cast<double>(n_);
  return n * m4_ / (m2_ * m2_);
}

void RunningMoments::Merge(const RunningMoments& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double n = na + nb;
  const double delta = other.mean_ - mean_;
  const double delta2 = delta * delta;
  const double delta3 = delta2 * delta;
  const double delta4 = delta2 * delta2;

  const double m2 = m2_ + other.m2_ + delta2 * na * nb / n;
  const double m3 = m3_ + other.m3_ +
                    delta3 * na * nb * (na - nb) / (n * n) +
                    3.0 * delta * (na * other.m2_ - nb * m2_) / n;
  const double m4 =
      m4_ + other.m4_ +
      delta4 * na * nb * (na * na - na * nb + nb * nb) / (n * n * n) +
      6.0 * delta2 * (na * na * other.m2_ + nb * nb * m2_) / (n * n) +
      4.0 * delta * (na * other.m3_ - nb * m3_) / n;

  mean_ = (na * mean_ + nb * other.mean_) / n;
  m2_ = m2;
  m3_ = m3;
  m4_ = m4;
  n_ += other.n_;
}

double Mean(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double Variance(const std::vector<double>& xs) {
  RunningMoments m;
  for (double x : xs) m.Add(x);
  return m.Variance();
}

double Kurtosis(const std::vector<double>& xs) {
  RunningMoments m;
  for (double x : xs) m.Add(x);
  return m.Kurtosis();
}

double Quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0.0;
  IPS_CHECK(q >= 0.0 && q <= 1.0);
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double Median(std::vector<double> xs) { return Quantile(std::move(xs), 0.5); }

double MedianSorted(const std::vector<double>& sorted_xs) {
  IPS_CHECK(!sorted_xs.empty());
  const size_t n = sorted_xs.size();
  if (n % 2 == 1) return sorted_xs[n / 2];
  return 0.5 * (sorted_xs[n / 2 - 1] + sorted_xs[n / 2]);
}

}  // namespace ipsketch
