// Scalar statistics used by the data generators, the Figure-5 kurtosis
// bucketing, and the experiment harness.

#ifndef IPSKETCH_COMMON_STATS_H_
#define IPSKETCH_COMMON_STATS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ipsketch {

/// Single-pass accumulator of the first four central moments (Welford /
/// Pébay update). Numerically stable; supports kurtosis, the outlier
/// indicator the paper buckets Figure 5 by.
class RunningMoments {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Number of observations added.
  size_t count() const { return n_; }
  /// Sample mean (0 if empty).
  double Mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance M2/n (0 if fewer than 1 observation).
  double Variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
  /// Sample variance M2/(n−1) (0 if fewer than 2 observations).
  double SampleVariance() const;
  /// Population standard deviation.
  double StdDev() const;
  /// Skewness sqrt(n)·M3 / M2^{3/2} (0 for degenerate inputs).
  double Skewness() const;
  /// Raw kurtosis n·M4 / M2² (3 for a normal distribution in the limit).
  /// Returns 0 for degenerate inputs (fewer than 2 points or zero variance).
  double Kurtosis() const;
  /// Excess kurtosis = Kurtosis() − 3.
  double ExcessKurtosis() const { return Kurtosis() - 3.0; }

  /// Merges another accumulator into this one (parallel Pébay merge).
  void Merge(const RunningMoments& other);

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double m3_ = 0.0;
  double m4_ = 0.0;
};

/// Arithmetic mean of `xs` (0 for empty input).
double Mean(const std::vector<double>& xs);

/// Population variance of `xs` (0 for empty input).
double Variance(const std::vector<double>& xs);

/// Raw kurtosis of `xs`; see RunningMoments::Kurtosis.
double Kurtosis(const std::vector<double>& xs);

/// Linear-interpolation quantile of `xs` for q in [0, 1].
/// `xs` need not be sorted; empty input returns 0.
double Quantile(std::vector<double> xs, double q);

/// Median; shorthand for Quantile(xs, 0.5).
double Median(std::vector<double> xs);

/// Median of a pre-sorted, non-empty span (no copy).
double MedianSorted(const std::vector<double>& sorted_xs);

}  // namespace ipsketch

#endif  // IPSKETCH_COMMON_STATS_H_
