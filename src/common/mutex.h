// The library's annotated mutex: every lock in src/ goes through this
// wrapper (a lint rule in tools/lint_invariants.py forbids raw std::mutex
// anywhere else), which buys two checked invariants on top of std::mutex:
//
//  1. Static lock discipline. `Mutex` is a clang thread-safety CAPABILITY
//     (common/annotations.h): fields declared IPS_GUARDED_BY(mu) and
//     helpers declared IPS_REQUIRES(mu) are proved locked at compile time
//     under clang -Wthread-safety (CI's static-analysis job builds with it
//     as -Werror). GCC compiles the annotations away.
//
//  2. Dynamic lock ordering. Every Mutex carries a LockRank; in debug
//     builds a thread-local stack of held ranks aborts the process the
//     moment any thread acquires a mutex whose rank is not strictly above
//     everything it already holds — including same-rank re-entry. A
//     would-be ABBA deadlock (which TSAN only catches if the stress test
//     happens to interleave both orders) becomes a deterministic
//     single-thread failure at the first wrong acquisition. Under NDEBUG
//     the checker compiles out entirely: Lock() is an inline
//     std::mutex::lock with zero added cost (bench_service_throughput
//     release numbers gate this).
//
// The rank order encodes the service layer's documented acquisition
// chains (see each rank's comment); the deepest real chain is
// AttachListener's kListenerRegistry → kStoreShard → kIndexShard — the
// store-shard → index-shard order the SketchStore::Listener mirror
// protocol (index/banded_index.h) relies on.

#ifndef IPSKETCH_COMMON_MUTEX_H_
#define IPSKETCH_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/annotations.h"

namespace ipsketch {

/// Acquisition order of every mutex in the library: a thread may acquire a
/// mutex only if its rank is *strictly greater* than the rank of every
/// mutex it already holds. Equal ranks are never nested — that is how the
/// checker turns cross-shard (and cross-store) ABBA orders and accidental
/// re-entry into deterministic aborts.
enum class LockRank : int {
  /// SketchStore::listener_mu_ — serializes listener attach/detach and the
  /// compactify guard. Held *across* the per-shard replay in
  /// AttachListener, so it must rank below every shard lock.
  kListenerRegistry = 10,
  /// SketchStore per-shard locks. Mutation paths notify the attached
  /// listener while holding one, so everything a listener acquires must
  /// rank above this.
  kStoreShard = 20,
  /// BandedIndex per-shard locks — acquired inside listener callbacks
  /// under the store shard lock (the store-shard → index-shard order of
  /// the mirror protocol).
  kIndexShard = 30,
  /// Locks private to a Listener implementation beyond its mirror shards.
  /// None exist today; reserved so a future listener-owned lock has a
  /// rank above the index shards it is taken under.
  kListener = 40,
  /// FrontDoor's admission-queue lock (service/front_door.h). Held only
  /// for queue pushes/pops and the batch-slot bookkeeping; batch execution
  /// and completion callbacks run strictly after it is released. Ranked
  /// below kPoolQueue so dispatch may hand work to the pool while holding
  /// it, and above the shard ranks because Submit can be called from scan
  /// callbacks that hold a store or index shard lock.
  kFrontDoorQueue = 45,
  /// ThreadPool's task-queue lock. Nothing is ever acquired under it.
  kPoolQueue = 50,
  /// Terminal rank: first-error slots, ParallelFor completion sync, the
  /// metrics registry. Anything may be held when acquiring a leaf; nothing
  /// may be acquired while holding one (two leaves never nest).
  kLeaf = 100,
};

/// True iff the lock-rank checker is compiled in (debug builds). Tests use
/// this to skip rank death-tests under NDEBUG.
#ifdef NDEBUG
inline constexpr bool kLockRankCheckEnabled = false;
#else
inline constexpr bool kLockRankCheckEnabled = true;
#endif

class Mutex;

namespace lock_rank_internal {
#ifndef NDEBUG
/// Aborts with a "lock rank violation" diagnostic unless `mu`'s rank is
/// strictly above every rank the calling thread holds.
void CheckAcquire(const Mutex* mu);
/// Pushes / pops `mu` on the calling thread's held stack.
void PushHeld(const Mutex* mu);
void PopHeld(const Mutex* mu);
#endif
/// Number of locks the calling thread currently holds (0 under NDEBUG —
/// the stack does not exist there). Test-only introspection.
size_t HeldDepthForTesting();
}  // namespace lock_rank_internal

/// An annotated, ranked std::mutex. In release builds this is a zero-cost
/// wrapper; in debug builds every acquisition is rank-checked.
class IPS_CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kLeaf) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() IPS_ACQUIRE() {
#ifndef NDEBUG
    // Checked before blocking: a rank inversion aborts deterministically
    // even when the other thread of the would-be deadlock never runs.
    lock_rank_internal::CheckAcquire(this);
#endif
    mu_.lock();
#ifndef NDEBUG
    lock_rank_internal::PushHeld(this);
#endif
  }

  void Unlock() IPS_RELEASE() {
#ifndef NDEBUG
    lock_rank_internal::PopHeld(this);
#endif
    mu_.unlock();
  }

  bool TryLock() IPS_TRY_ACQUIRE(true) {
#ifndef NDEBUG
    // A try-acquisition in the wrong order is the same latent deadlock.
    lock_rank_internal::CheckAcquire(this);
#endif
    const bool acquired = mu_.try_lock();
#ifndef NDEBUG
    if (acquired) lock_rank_internal::PushHeld(this);
#endif
    return acquired;
  }

  LockRank rank() const { return rank_; }

 private:
  friend class CondVar;
  std::mutex mu_;
  const LockRank rank_;
};

/// RAII lock for a Mutex — the library's replacement for std::lock_guard.
class IPS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) IPS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() IPS_RELEASE() { mu_->Unlock(); }

 private:
  Mutex* const mu_;
};

/// Condition variable paired with Mutex. Wait atomically releases the
/// mutex and reacquires it before returning, exactly like
/// std::condition_variable — callers keep their IPS_REQUIRES contract
/// across the call (the capability is held on entry and on return). While
/// a thread waits, the mutex stays on its rank stack; that is accurate at
/// every point the thread can actually execute code. Prefer an explicit
/// `while (!cond) cv.Wait(mu);` loop over a predicate lambda so the
/// thread-safety analysis sees the guarded reads under the held lock.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Blocks until notified (spurious wakeups possible, as ever).
  void Wait(Mutex& mu) IPS_REQUIRES(mu) {
    std::unique_lock<std::mutex> inner(mu.mu_, std::adopt_lock);
    cv_.wait(inner);
    inner.release();  // the caller's scope still owns the (reacquired) lock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace ipsketch

#endif  // IPSKETCH_COMMON_MUTEX_H_
