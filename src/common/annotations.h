// Clang thread-safety analysis annotations (-Wthread-safety), in the shape
// popularized by abseil's thread_annotations.h. Under clang every macro
// expands to the corresponding analysis attribute, so the compiler proves —
// on every build with IPSKETCH_THREAD_SAFETY=ON — that each IPS_GUARDED_BY
// field is only touched with its mutex held and each IPS_REQUIRES function
// is only called with the named capability held. Under GCC (which has no
// thread-safety analysis) every macro compiles away to nothing, so the
// annotations cost nothing on the default toolchain.
//
// The annotations express the *static* half of the locking discipline; the
// dynamic half (lock-ordering across distinct mutexes, which the analysis
// cannot see) is enforced by the debug LockRank checker in
// common/mutex.h. The CI `static-analysis` job builds with clang and
// -Wthread-safety -Werror, so an unannotated access or an unlocked call to
// a *Locked() helper is a compile error, not a TSAN roll of the dice.

#ifndef IPSKETCH_COMMON_ANNOTATIONS_H_
#define IPSKETCH_COMMON_ANNOTATIONS_H_

#if defined(__clang__)
#define IPS_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define IPS_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op on GCC and others
#endif

/// Marks a class as a capability (a lockable object). The string names the
/// capability kind in diagnostics: IPS_CAPABILITY("mutex").
#define IPS_CAPABILITY(x) IPS_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII class whose constructor acquires and destructor releases a
/// capability (MutexLock).
#define IPS_SCOPED_CAPABILITY IPS_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Declares that a data member may only be accessed while holding the given
/// capability.
#define IPS_GUARDED_BY(x) IPS_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Declares that the data *pointed to* by a pointer member may only be
/// accessed while holding the given capability (the pointer itself is free).
#define IPS_PT_GUARDED_BY(x) IPS_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Documents a required acquisition order between capabilities declared in
/// the same scope: this one must be acquired before / after the arguments.
#define IPS_ACQUIRED_BEFORE(...) \
  IPS_THREAD_ANNOTATION_ATTRIBUTE_(acquired_before(__VA_ARGS__))
#define IPS_ACQUIRED_AFTER(...) \
  IPS_THREAD_ANNOTATION_ATTRIBUTE_(acquired_after(__VA_ARGS__))

/// The function may only be called while holding the named capabilities
/// (and does not release them) — the contract of every *Locked() helper.
#define IPS_REQUIRES(...) \
  IPS_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))
#define IPS_REQUIRES_SHARED(...) \
  IPS_THREAD_ANNOTATION_ATTRIBUTE_(requires_shared_capability(__VA_ARGS__))

/// The function acquires / releases the named capabilities (no argument:
/// `this`).
#define IPS_ACQUIRE(...) \
  IPS_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))
#define IPS_RELEASE(...) \
  IPS_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// The function tries to acquire the capability and returns the first
/// argument (true/false) on success.
#define IPS_TRY_ACQUIRE(...) \
  IPS_THREAD_ANNOTATION_ATTRIBUTE_(try_acquire_capability(__VA_ARGS__))

/// The function must NOT be called while holding the named capabilities
/// (it acquires them itself — calling with them held would deadlock).
#define IPS_EXCLUDES(...) \
  IPS_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Asserts at runtime that the capability is held, informing the analysis.
#define IPS_ASSERT_CAPABILITY(x) \
  IPS_THREAD_ANNOTATION_ATTRIBUTE_(assert_capability(x))

/// The function returns a reference to the named capability.
#define IPS_RETURN_CAPABILITY(x) \
  IPS_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Escape hatch: the function's body is excluded from the analysis. Every
/// use must carry an inline comment saying why the analysis cannot see the
/// invariant (e.g. move-assignment with documented external exclusivity).
#define IPS_NO_THREAD_SAFETY_ANALYSIS \
  IPS_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // IPSKETCH_COMMON_ANNOTATIONS_H_
