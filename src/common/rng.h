// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through the primitives in this file so
// that sketches are reproducible from a single 64-bit seed, and so that two
// machines sketching different vectors with the same seed produce
// *coordinated* randomness (the property MinHash-style sketches rely on).
//
// Three layers are provided:
//   * Mix64 / MixCombine: stateless 64-bit finalizers used to derive
//     independent stream keys from (seed, sample, block, ...) tuples.
//   * SplitMix64: a tiny sequential generator, used for seeding.
//   * Xoshiro256StarStar: the main counter-advanced generator used by data
//     generators and by the active-index sketching engine.

#ifndef IPSKETCH_COMMON_RNG_H_
#define IPSKETCH_COMMON_RNG_H_

#include <cstdint>

namespace ipsketch {

/// Stateless 64-bit mixing finalizer (SplitMix64 finalizer). Bijective, with
/// strong avalanche behaviour: flipping any input bit flips ~half the output
/// bits. Used to key independent random streams from structured tuples.
uint64_t Mix64(uint64_t x);

/// Derives a stream key from two components, e.g. (seed, sample index).
uint64_t MixCombine(uint64_t a, uint64_t b);

/// Derives a stream key from three components, e.g. (seed, sample, block).
uint64_t MixCombine(uint64_t a, uint64_t b, uint64_t c);

/// Maps a 64-bit word to a double in [0, 1) using the top 53 bits.
double UnitFromU64(uint64_t x);

/// Maps a 64-bit word to a double in (0, 1]; never returns exactly 0.
/// Useful when the value feeds a logarithm.
double PositiveUnitFromU64(uint64_t x);

/// Minimal sequential generator used for seeding larger-state generators.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// Returns the next 64-bit output and advances the state.
  uint64_t Next();

 private:
  uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator concept so it can drive
/// <random> distributions.
class Xoshiro256StarStar {
 public:
  using result_type = uint64_t;

  /// Seeds the four 64-bit state words from `seed` via SplitMix64.
  explicit Xoshiro256StarStar(uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~uint64_t{0}; }

  /// Returns the next 64-bit output.
  uint64_t operator()();

  /// Returns a double uniform in [0, 1).
  double NextUnit() { return UnitFromU64((*this)()); }

  /// Returns a double uniform in (0, 1].
  double NextPositiveUnit() { return PositiveUnitFromU64((*this)()); }

  /// Returns an integer uniform in [0, bound) without modulo bias.
  /// `bound` must be positive.
  uint64_t NextBounded(uint64_t bound);

  /// Returns a standard normal variate (Box–Muller, one value per call).
  double NextGaussian();

 private:
  uint64_t s_[4];
};

/// Samples G ~ Geometric(p): the number of i.i.d. Bernoulli(p) trials up to
/// and including the first success, so G >= 1 and E[G] = 1/p.
///
/// `u` must lie in (0, 1]; `p` must lie in (0, 1]. Implemented by inversion,
/// G = ceil(log(u) / log(1 - p)), which costs O(1) regardless of p — this is
/// the "skip ahead" primitive behind the active-index weighted MinHash
/// sketcher (Gollapudi & Panigrahy 2006).
uint64_t GeometricFromUnit(double u, double p);

}  // namespace ipsketch

#endif  // IPSKETCH_COMMON_RNG_H_
