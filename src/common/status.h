// Lightweight Status / Result error-handling primitives.
//
// The library reports recoverable errors (invalid configuration, malformed
// input) through `Status` and `Result<T>` return values rather than
// exceptions, following the convention of database engines such as RocksDB.
// Programmer errors (broken invariants) abort through IPS_CHECK.

#ifndef IPSKETCH_COMMON_STATUS_H_
#define IPSKETCH_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace ipsketch {

/// Machine-readable category of a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kFailedPrecondition = 2,
  kOutOfRange = 3,
  kNotFound = 4,
  kInternal = 5,
  kUnavailable = 6,
  kDeadlineExceeded = 7,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Result of a fallible operation: a code plus a human-readable message.
///
/// `Status` is cheap to copy and move. The default-constructed value is OK.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory for the OK status.
  static Status Ok() { return Status(); }
  /// The caller passed an argument outside the documented domain.
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  /// The object is not in a state where the operation is allowed.
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  /// An index or parameter fell outside a valid range.
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  /// A looked-up entity does not exist.
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  /// An internal invariant failed in a recoverable context.
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// The service cannot take the request right now (load shedding,
  /// shutdown); retrying later may succeed.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  /// The request's deadline passed before it could be served.
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status category.
  StatusCode code() const { return code_; }
  /// The human-readable detail message (empty for OK).
  const std::string& message() const { return message_; }

  /// Renders as "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type `T` or an error `Status`.
///
/// Accessing `value()` on an error result aborts; check `ok()` first or use
/// the IPS_ASSIGN_OR_RETURN macro.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The error status (OK if a value is present).
  const Status& status() const { return status_; }

  /// The contained value; aborts if `!ok()`.
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  /// Moves the contained value out; aborts if `!ok()`.
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr);
}  // namespace internal

/// Aborts with a diagnostic if `cond` is false. Enabled in all build modes:
/// sketch correctness depends on invariants that must not be compiled out.
#define IPS_CHECK(cond)                                         \
  do {                                                          \
    if (!(cond)) {                                              \
      ::ipsketch::internal::CheckFailed(__FILE__, __LINE__, #cond); \
    }                                                           \
  } while (0)

/// Propagates a non-OK Status to the caller.
#define IPS_RETURN_IF_ERROR(expr)        \
  do {                                   \
    ::ipsketch::Status ips_status_ = (expr); \
    if (!ips_status_.ok()) return ips_status_; \
  } while (0)

}  // namespace ipsketch

#endif  // IPSKETCH_COMMON_STATUS_H_
