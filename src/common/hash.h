// Hash families used by the sketching algorithms.
//
// The paper's analysis assumes uniformly random hash functions h: {1..n} ->
// [0,1]; in practice it prescribes 2-wise independent Carter–Wegman hashing
// over a Mersenne prime, with hash values stored as 32-bit integers (§5,
// "Choice of Hash Function"). This file provides:
//
//   * CarterWegman31 — h(x) = ((a·x + b) mod p) with p = 2^31 − 1. Matches
//     the paper's practical choice; output fits a 32-bit int.
//   * CarterWegman61 — the same construction over p = 2^61 − 1, for domains
//     (such as the expanded vectors of Algorithm 3, size n·L) that exceed
//     2^31 elements.
//   * SignHash / BucketHash — the ±1 and bucket hashes used by linear
//     sketches (JL, CountSketch, SimHash).
//
// Every family is deterministic given (seed, stream index), so independently
// computed sketches are coordinated.

#ifndef IPSKETCH_COMMON_HASH_H_
#define IPSKETCH_COMMON_HASH_H_

#include <cstdint>

namespace ipsketch {

/// p = 2^31 − 1, the 31-bit Mersenne prime used by CarterWegman31.
inline constexpr uint64_t kMersenne31 = (uint64_t{1} << 31) - 1;

/// p = 2^61 − 1, the 61-bit Mersenne prime used by CarterWegman61.
inline constexpr uint64_t kMersenne61 = (uint64_t{1} << 61) - 1;

/// Reduces x (< 2^62) modulo 2^31 − 1 using Mersenne folding.
uint64_t ModMersenne31(uint64_t x);

/// Reduces a 128-bit product modulo 2^61 − 1 using Mersenne folding.
uint64_t ModMersenne61(unsigned __int128 x);

/// 2-wise independent hash h(x) = ((a·x + b) mod p), p = 2^31 − 1.
///
/// For any x != y, (h(x), h(y)) is uniform over pairs, which is the
/// independence level assumed by prior weighted MinHash implementations
/// (Wu et al. 2020) and by the paper's experiments. Domain: x in [0, p).
class CarterWegman31 {
 public:
  /// Draws (a, b) pseudo-randomly from (seed, stream); a in [1, p), b in [0, p).
  CarterWegman31(uint64_t seed, uint64_t stream);

  /// Hash value in [0, p) as an integer. Fits in 31 bits (a 32-bit int).
  uint32_t Hash(uint64_t x) const;

  /// Hash value mapped to the unit interval [0, 1).
  double HashUnit(uint64_t x) const { return static_cast<double>(Hash(x)) / kP; }

  /// Multiplier (exposed for tests).
  uint64_t a() const { return a_; }
  /// Offset (exposed for tests).
  uint64_t b() const { return b_; }

 private:
  static constexpr double kP = static_cast<double>(kMersenne31);
  uint64_t a_;
  uint64_t b_;
};

/// 2-wise independent hash h(x) = ((a·x + b) mod p), p = 2^61 − 1.
///
/// Used whenever the hashed domain may exceed 2^31 elements — notably the
/// expanded vectors of Algorithm 3 whose length is n·L. 61 bits of output
/// also make hash-value collisions between distinct inputs (probability
/// 1/p ≈ 4.3e-19 per pair) negligible, which the MinHash match test
/// `h_a[i] == h_b[i]` relies on.
class CarterWegman61 {
 public:
  /// Draws (a, b) pseudo-randomly from (seed, stream); a in [1, p), b in [0, p).
  CarterWegman61(uint64_t seed, uint64_t stream);

  /// Hash value in [0, p) as an integer.
  uint64_t Hash(uint64_t x) const;

  /// Hash value mapped to the unit interval [0, 1).
  double HashUnit(uint64_t x) const {
    return static_cast<double>(Hash(x)) / kP;
  }

  /// Multiplier (exposed for tests).
  uint64_t a() const { return a_; }
  /// Offset (exposed for tests).
  uint64_t b() const { return b_; }

 private:
  static constexpr double kP = static_cast<double>(kMersenne61);
  uint64_t a_;
  uint64_t b_;
};

/// ±1-valued hash used by AMS/JL/CountSketch/SimHash. 4-wise independence is
/// the textbook requirement for AMS variance bounds; we implement it as a
/// degree-3 polynomial over p = 2^61 − 1 whose low bit supplies the sign.
class SignHash {
 public:
  /// Draws four polynomial coefficients from (seed, stream).
  SignHash(uint64_t seed, uint64_t stream);

  /// Returns +1.0 or −1.0.
  double Sign(uint64_t x) const;

 private:
  uint64_t c_[4];
};

/// Which index → [0,1) hash family a sampling sketch uses.
///
/// The paper's analysis assumes uniformly random hash functions (§3,
/// Notation); its experiments use 2-wise Carter–Wegman hashing, which is
/// indistinguishable in practice for *scattered* supports but measurably
/// biases minimum-based union estimators on adversarial inputs (e.g. long
/// runs of consecutive indices, where a linear hash's values form an
/// arithmetic progression). kMixed64 is the default: a SplitMix64-style
/// bijective finalizer that behaves like the idealized uniform hash.
enum class HashKind {
  kMixed64 = 0,        ///< full-avalanche 64-bit mixing (idealized uniform)
  kCarterWegman61 = 1, ///< 2-wise independent over p = 2^61 − 1
  kCarterWegman31 = 2, ///< 2-wise independent over p = 2^31 − 1 (paper's §5)
};

/// A keyed hash from 64-bit indices to the unit interval [0, 1), generic
/// over `HashKind`. One instance corresponds to one hash function h_i; the
/// (seed, stream) pair selects the function from the family.
class IndexHasher {
 public:
  /// Selects function `stream` of the family seeded by `seed`.
  IndexHasher(HashKind kind, uint64_t seed, uint64_t stream);

  /// Hash value in [0, 1).
  double HashUnit(uint64_t x) const;

 private:
  HashKind kind_;
  uint64_t mix_key_;  // kMixed64
  uint64_t a_ = 0;    // Carter–Wegman coefficients
  uint64_t b_ = 0;
};

/// Bucket hash mapping keys to [0, num_buckets), 2-wise independent.
/// Used by CountSketch to pick the counter each coordinate lands in.
class BucketHash {
 public:
  /// Draws parameters from (seed, stream). `num_buckets` must be positive.
  BucketHash(uint64_t seed, uint64_t stream, uint32_t num_buckets);

  /// Bucket index in [0, num_buckets).
  uint32_t Bucket(uint64_t x) const;

  /// The configured number of buckets.
  uint32_t num_buckets() const { return num_buckets_; }

 private:
  CarterWegman61 cw_;
  uint32_t num_buckets_;
};

}  // namespace ipsketch

#endif  // IPSKETCH_COMMON_HASH_H_
