#include "common/rng.h"

#include <cmath>

#include "common/status.h"

namespace ipsketch {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ull;

}  // namespace

uint64_t Mix64(uint64_t x) {
  x += kGolden;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t MixCombine(uint64_t a, uint64_t b) { return Mix64(Mix64(a) ^ b); }

uint64_t MixCombine(uint64_t a, uint64_t b, uint64_t c) {
  return Mix64(MixCombine(a, b) ^ c);
}

double UnitFromU64(uint64_t x) {
  return static_cast<double>(x >> 11) * 0x1.0p-53;
}

double PositiveUnitFromU64(uint64_t x) {
  return (static_cast<double>(x >> 11) + 1.0) * 0x1.0p-53;
}

uint64_t SplitMix64::Next() {
  state_ += kGolden;
  uint64_t z = state_;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

Xoshiro256StarStar::Xoshiro256StarStar(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) s = sm.Next();
  // All-zero state is the one invalid state for xoshiro; SplitMix64 cannot
  // produce four zero outputs in a row from any seed, but guard regardless.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = kGolden;
}

uint64_t Xoshiro256StarStar::operator()() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Xoshiro256StarStar::NextBounded(uint64_t bound) {
  IPS_CHECK(bound > 0);
  // Rejection sampling over the largest multiple of `bound`.
  const uint64_t threshold = (~bound + 1) % bound;  // (2^64 - bound) mod bound
  for (;;) {
    const uint64_t r = (*this)();
    if (r >= threshold) return r % bound;
  }
}

double Xoshiro256StarStar::NextGaussian() {
  // Box–Muller; u1 in (0,1] keeps the logarithm finite.
  const double u1 = NextPositiveUnit();
  const double u2 = NextUnit();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return r * std::cos(2.0 * M_PI * u2);
}

uint64_t GeometricFromUnit(double u, double p) {
  IPS_CHECK(u > 0.0 && u <= 1.0);
  IPS_CHECK(p > 0.0 && p <= 1.0);
  if (p >= 1.0) return 1;
  const double g = std::floor(std::log(u) / std::log1p(-p));
  // g is >= 0 since log(u) <= 0 and log1p(-p) < 0. Guard against overflow for
  // astronomically small p * u combinations.
  if (g >= 9.0e18) return UINT64_MAX;
  return static_cast<uint64_t>(g) + 1;
}

}  // namespace ipsketch
