#include "data/worldbank.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "table/vectorize.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

// Distribution shapes rotated across columns, ordered roughly by kurtosis.
enum class ValueShape {
  kUniform = 0,      // kurtosis 1.8
  kGaussian = 1,     // kurtosis 3
  kExponential = 2,  // kurtosis 9
  kLogNormal = 3,    // kurtosis ≫ 3, scale-dependent
  kStudentT5 = 4,    // kurtosis 9 with occasional extremes
  kSpiky = 5,        // near-constant with rare huge spikes: extreme kurtosis
};

constexpr int kNumShapes = 6;

double SampleShape(ValueShape shape, Xoshiro256StarStar& rng) {
  switch (shape) {
    case ValueShape::kUniform:
      return rng.NextUnit() * 10.0;
    case ValueShape::kGaussian:
      return 5.0 + rng.NextGaussian();
    case ValueShape::kExponential:
      return -std::log(rng.NextPositiveUnit()) * 3.0;
    case ValueShape::kLogNormal:
      return std::exp(1.0 + 1.2 * rng.NextGaussian());
    case ValueShape::kStudentT5: {
      // Student-t via normal / sqrt(chi²/ν), ν = 5.
      double chi2 = 0.0;
      for (int i = 0; i < 5; ++i) {
        const double g = rng.NextGaussian();
        chi2 += g * g;
      }
      return rng.NextGaussian() / std::sqrt(chi2 / 5.0);
    }
    case ValueShape::kSpiky:
      // 2% of rows carry values ~500× larger than the bulk.
      return rng.NextUnit() < 0.02 ? 500.0 + 100.0 * rng.NextGaussian()
                                   : 1.0 + 0.1 * rng.NextUnit();
  }
  IPS_CHECK(false);
  return 0.0;
}

const char* ShapeName(ValueShape shape) {
  switch (shape) {
    case ValueShape::kUniform:
      return "uniform";
    case ValueShape::kGaussian:
      return "gaussian";
    case ValueShape::kExponential:
      return "exponential";
    case ValueShape::kLogNormal:
      return "lognormal";
    case ValueShape::kStudentT5:
      return "student_t5";
    case ValueShape::kSpiky:
      return "spiky";
  }
  return "unknown";
}

}  // namespace

Status WorldBankOptions::Validate() const {
  if (num_datasets == 0 || columns_per_dataset == 0) {
    return Status::InvalidArgument("corpus dimensions must be positive");
  }
  if (min_rows == 0 || min_rows > max_rows) {
    return Status::InvalidArgument("invalid row-count range");
  }
  if (static_cast<uint64_t>(max_rows) > key_universe) {
    return Status::InvalidArgument("max_rows exceeds key universe");
  }
  if (family_fraction < 0.0 || family_fraction > 1.0) {
    return Status::InvalidArgument("family_fraction must be in [0, 1]");
  }
  if (num_families == 0) {
    return Status::InvalidArgument("num_families must be positive");
  }
  return Status::Ok();
}

Result<std::vector<Table>> GenerateWorldBankCorpus(
    const WorldBankOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  Xoshiro256StarStar rng(MixCombine(options.seed, 0x30B1DB4Bull));

  // Family anchors in the circular key universe: a shared offset and a
  // shared nominal size, so same-family datasets overlap strongly (these
  // populate Figure 5's high-overlap columns, like the paper's corpus where
  // most datasets share the country-period key backbone).
  std::vector<uint64_t> anchor_offset(options.num_families);
  std::vector<size_t> anchor_rows(options.num_families);
  for (size_t f = 0; f < options.num_families; ++f) {
    anchor_offset[f] = rng.NextBounded(options.key_universe);
    anchor_rows[f] =
        options.min_rows +
        static_cast<size_t>(rng.NextBounded(options.max_rows -
                                            options.min_rows + 1));
  }

  std::vector<Table> corpus;
  corpus.reserve(options.num_datasets);
  for (size_t d = 0; d < options.num_datasets; ++d) {
    size_t rows =
        options.min_rows +
        static_cast<size_t>(rng.NextBounded(options.max_rows -
                                            options.min_rows + 1));
    // Key window: family members jitter around a shared anchor (high mutual
    // overlap); the rest land anywhere (mostly low overlap).
    uint64_t offset;
    if (rng.NextUnit() < options.family_fraction) {
      const size_t f = rng.NextBounded(options.num_families);
      // Size near the family's nominal size (x0.8 .. x1.25).
      const double size_factor = 0.8 + 0.45 * rng.NextUnit();
      rows = std::clamp<size_t>(
          static_cast<size_t>(static_cast<double>(anchor_rows[f]) *
                              size_factor),
          options.min_rows, options.max_rows);
      const uint64_t jitter = rng.NextBounded(std::max<uint64_t>(rows / 4, 1));
      offset = (anchor_offset[f] + jitter) % options.key_universe;
    } else {
      offset = rng.NextBounded(options.key_universe);
    }
    // Contiguous circular window, thinned: each key kept with probability
    // density ∈ [0.6, 1), so windows of equal extent still differ.
    const double density = 0.6 + 0.4 * rng.NextUnit();
    const uint64_t extent = std::min<uint64_t>(
        options.key_universe,
        static_cast<uint64_t>(std::ceil(static_cast<double>(rows) / density)));
    std::vector<uint64_t> keys;
    keys.reserve(rows);
    for (uint64_t step = 0; step < extent && keys.size() < rows; ++step) {
      if (rng.NextUnit() < density) {
        keys.push_back((offset + step) % options.key_universe);
      }
    }
    std::sort(keys.begin(), keys.end());
    keys.erase(std::unique(keys.begin(), keys.end()), keys.end());

    std::vector<std::string> column_names;
    std::vector<std::vector<double>> column_values;
    for (size_t c = 0; c < options.columns_per_dataset; ++c) {
      const ValueShape shape =
          static_cast<ValueShape>(rng.NextBounded(kNumShapes));
      std::vector<double> values(keys.size());
      for (auto& v : values) v = SampleShape(shape, rng);
      column_names.push_back("col" + std::to_string(c) + "_" +
                             ShapeName(shape));
      column_values.push_back(std::move(values));
    }
    auto table = Table::Make("dataset" + std::to_string(d), std::move(keys),
                             std::move(column_names), std::move(column_values));
    IPS_RETURN_IF_ERROR(table.status());
    corpus.push_back(std::move(table).value());
  }
  return corpus;
}

Result<std::vector<ColumnPairSample>> SampleColumnPairs(
    const std::vector<Table>& corpus, uint64_t key_universe, size_t count,
    uint64_t seed) {
  if (corpus.size() < 2) {
    return Status::InvalidArgument("corpus needs at least two tables");
  }
  Xoshiro256StarStar rng(MixCombine(seed, 0xC01BA125ull));
  std::vector<ColumnPairSample> out;
  out.reserve(count);
  size_t attempts = 0;
  const size_t max_attempts = count * 20 + 1000;
  while (out.size() < count && attempts < max_attempts) {
    ++attempts;
    const size_t da = rng.NextBounded(corpus.size());
    size_t db = rng.NextBounded(corpus.size());
    if (da == db) continue;
    const Table& ta = corpus[da];
    const Table& tb = corpus[db];
    auto ca = ta.ColumnAt(rng.NextBounded(ta.num_columns()));
    IPS_RETURN_IF_ERROR(ca.status());
    auto cb = tb.ColumnAt(rng.NextBounded(tb.num_columns()));
    IPS_RETURN_IF_ERROR(cb.status());

    auto va = ValueVector(ca.value(), key_universe);
    IPS_RETURN_IF_ERROR(va.status());
    auto vb = ValueVector(cb.value(), key_universe);
    IPS_RETURN_IF_ERROR(vb.status());
    if (va.value().empty() || vb.value().empty()) continue;

    ColumnPairSample sample;
    // The paper normalizes columns to unit norm "so that all inner products
    // have magnitude less than 1".
    sample.a = va.value().Scaled(1.0 / va.value().Norm());
    sample.b = vb.value().Scaled(1.0 / vb.value().Norm());
    sample.overlap = OverlapRatio(sample.a, sample.b);
    sample.kurtosis =
        std::max(Kurtosis(ca.value().values()), Kurtosis(cb.value().values()));
    out.push_back(std::move(sample));
  }
  if (out.size() < count) {
    return Status::Internal("could not sample enough non-empty column pairs");
  }
  return out;
}

}  // namespace ipsketch
