#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/rng.h"

namespace ipsketch {

Status SyntheticPairOptions::Validate() const {
  if (dimension == 0 || nnz == 0) {
    return Status::InvalidArgument("dimension and nnz must be positive");
  }
  if (overlap < 0.0 || overlap > 1.0) {
    return Status::InvalidArgument("overlap must be in [0, 1]");
  }
  if (outlier_fraction < 0.0 || outlier_fraction > 1.0) {
    return Status::InvalidArgument("outlier_fraction must be in [0, 1]");
  }
  if (outlier_min > outlier_max) {
    return Status::InvalidArgument("outlier_min > outlier_max");
  }
  const size_t shared = static_cast<size_t>(
      std::llround(overlap * static_cast<double>(nnz)));
  const uint64_t needed = 2 * static_cast<uint64_t>(nnz) - shared;
  if (needed > dimension) {
    return Status::InvalidArgument(
        "dimension too small for requested nnz and overlap");
  }
  return Status::Ok();
}

std::vector<uint64_t> SampleDistinctIndices(uint64_t universe, size_t count,
                                            uint64_t seed) {
  IPS_CHECK(count <= universe);
  Xoshiro256StarStar rng(MixCombine(seed, 0x5A4D9E1EB00Cull));
  std::vector<uint64_t> out;
  out.reserve(count);
  // Partial Fisher–Yates when the universe is small enough to materialize;
  // hash-set rejection otherwise (efficient whenever count ≪ universe).
  if (universe <= (uint64_t{1} << 22) || count * 4 >= universe) {
    std::vector<uint64_t> pool(universe);
    std::iota(pool.begin(), pool.end(), uint64_t{0});
    for (size_t i = 0; i < count; ++i) {
      const uint64_t j = i + rng.NextBounded(universe - i);
      std::swap(pool[i], pool[j]);
      out.push_back(pool[i]);
    }
  } else {
    std::unordered_set<uint64_t> seen;
    seen.reserve(count * 2);
    while (out.size() < count) {
      const uint64_t candidate = rng.NextBounded(universe);
      if (seen.insert(candidate).second) out.push_back(candidate);
    }
  }
  return out;
}

double TruncatedUnitNormal(Xoshiro256StarStar& rng) {
  for (;;) {
    const double x = rng.NextGaussian();
    if (std::fabs(x) <= 1.0) return x;
  }
}

namespace {

// Fills `entries` with values per §5.1: truncated normals, with an exact
// outlier_count of entries replaced by U[outlier_min, outlier_max].
void FillValues(const SyntheticPairOptions& options,
                const std::vector<uint64_t>& indices, uint64_t value_seed,
                std::vector<Entry>* entries) {
  Xoshiro256StarStar rng(value_seed);
  entries->clear();
  entries->reserve(indices.size());
  for (uint64_t idx : indices) {
    entries->push_back({idx, TruncatedUnitNormal(rng)});
  }
  // Choose exactly ⌊fraction·nnz⌋ outlier positions by partial shuffle.
  const size_t outlier_count = static_cast<size_t>(
      options.outlier_fraction * static_cast<double>(indices.size()));
  std::vector<size_t> positions(indices.size());
  std::iota(positions.begin(), positions.end(), size_t{0});
  for (size_t i = 0; i < outlier_count; ++i) {
    const size_t j =
        i + static_cast<size_t>(rng.NextBounded(positions.size() - i));
    std::swap(positions[i], positions[j]);
    const double span = options.outlier_max - options.outlier_min;
    (*entries)[positions[i]].value =
        options.outlier_min + span * rng.NextUnit();
  }
}

}  // namespace

Result<VectorPair> GenerateSyntheticPair(const SyntheticPairOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  const size_t shared = static_cast<size_t>(
      std::llround(options.overlap * static_cast<double>(options.nnz)));
  const size_t total = 2 * options.nnz - shared;

  // One draw of `total` distinct indices, split into [shared | a-only |
  // b-only].
  const std::vector<uint64_t> indices =
      SampleDistinctIndices(options.dimension, total, options.seed);

  std::vector<uint64_t> a_indices(indices.begin(),
                                  indices.begin() + options.nnz);
  std::vector<uint64_t> b_indices(indices.begin(), indices.begin() + shared);
  b_indices.insert(b_indices.end(), indices.begin() + options.nnz,
                   indices.end());

  std::vector<Entry> a_entries, b_entries;
  FillValues(options, a_indices, MixCombine(options.seed, 0xA11CEull),
             &a_entries);
  FillValues(options, b_indices, MixCombine(options.seed, 0xB0Bull),
             &b_entries);

  VectorPair pair;
  auto a = SparseVector::Make(options.dimension, std::move(a_entries));
  IPS_RETURN_IF_ERROR(a.status());
  pair.a = std::move(a).value();
  auto b = SparseVector::Make(options.dimension, std::move(b_entries));
  IPS_RETURN_IF_ERROR(b.status());
  pair.b = std::move(b).value();
  return pair;
}

Result<std::vector<VectorPair>> GenerateSyntheticPairs(
    const SyntheticPairOptions& options, size_t count) {
  std::vector<VectorPair> out;
  out.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    SyntheticPairOptions per = options;
    per.seed = MixCombine(options.seed, 0x9A175EEDull, i);
    auto pair = GenerateSyntheticPair(per);
    IPS_RETURN_IF_ERROR(pair.status());
    out.push_back(std::move(pair).value());
  }
  return out;
}

}  // namespace ipsketch
