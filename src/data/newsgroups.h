// Synthetic stand-in for the 20 Newsgroups corpus used in the §5.2 document
// similarity experiment (the real dataset is not available offline).
//
// The generator reproduces the statistical properties that drive Figure 6:
//   * Zipf-distributed vocabulary → sparse TF-IDF vectors whose entries span
//     orders of magnitude (common terms have huge TF, rare terms tiny IDF);
//   * topic structure → document pairs with small but nonzero overlap
//     (same-topic pairs share topical vocabulary, cross-topic pairs share
//     only the global head of the Zipf distribution);
//   * log-normal document lengths with a heavy right tail → a subpopulation
//     of long (> 700-word) documents where term-frequency outliers make the
//     vectors far from binary, which is what separates WMH from unweighted
//     MH in Figure 6(b).

#ifndef IPSKETCH_DATA_NEWSGROUPS_H_
#define IPSKETCH_DATA_NEWSGROUPS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace ipsketch {

/// Configuration for `GenerateNewsgroupsCorpus`. Defaults mirror the paper's
/// setup (700 documents, 20 topics).
struct NewsgroupsOptions {
  size_t num_documents = 700;
  size_t vocab_size = 20000;
  size_t num_topics = 20;
  double zipf_exponent = 1.05;   ///< word-frequency power law
  double topic_mix = 0.55;       ///< fraction of words drawn from the topic
  double length_log_mean = 5.3;  ///< log-normal length: exp(5.3) ≈ 200 words
  double length_log_sigma = 0.9;
  size_t min_length = 40;
  size_t max_length = 5000;
  uint64_t seed = 0;

  /// Validates field ranges.
  Status Validate() const;
};

/// One generated document: token ids in order (feed through IdFeatures +
/// TfidfVectorizer to get vectors).
struct SyntheticDocument {
  std::vector<uint64_t> token_ids;
  size_t topic = 0;

  /// Word count.
  size_t length() const { return token_ids.size(); }
};

/// Generates the corpus; deterministic in the seed.
Result<std::vector<SyntheticDocument>> GenerateNewsgroupsCorpus(
    const NewsgroupsOptions& options);

/// A Zipf(s) sampler over ranks {0, ..., n−1}: P(r) ∝ (r+1)^−s.
/// Precomputes the CDF once; sampling is O(log n).
class ZipfSampler {
 public:
  /// Builds the CDF for `n` ranks with exponent `s` > 0.
  ZipfSampler(size_t n, double s);

  /// Samples a rank given a uniform variate in [0, 1).
  size_t Sample(double unit) const;

 private:
  std::vector<double> cdf_;
};

}  // namespace ipsketch

#endif  // IPSKETCH_DATA_NEWSGROUPS_H_
