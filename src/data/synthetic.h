// The paper's §5.1 synthetic workload: pairs of sparse vectors with a
// controlled overlap ratio and heavy outliers.
//
//   "We generate length-10000 vectors a and b, each with 2000 non-zero
//    entries. The ratio of non-zero entries that overlap ... is adjusted
//    ... The non-zero entries are normal random variables with values
//    between −1 and 1, except 10% of entries are chosen randomly as
//    outliers and set to random values between 20 and 30."

#ifndef IPSKETCH_DATA_SYNTHETIC_H_
#define IPSKETCH_DATA_SYNTHETIC_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Configuration for `GenerateSyntheticPair`. Defaults reproduce §5.1.
struct SyntheticPairOptions {
  uint64_t dimension = 10000;     ///< vector length n
  size_t nnz = 2000;              ///< non-zeros per vector
  double overlap = 0.1;           ///< fraction of non-zeros shared by a and b
  double outlier_fraction = 0.1;  ///< fraction of non-zeros that are outliers
  double outlier_min = 20.0;      ///< outlier magnitude lower bound
  double outlier_max = 30.0;      ///< outlier magnitude upper bound
  uint64_t seed = 0;

  /// Validates field ranges (needs 2·nnz − overlap·nnz ≤ dimension).
  Status Validate() const;
};

/// A generated pair.
struct VectorPair {
  SparseVector a;
  SparseVector b;
};

/// Generates one pair per the options; deterministic in the seed.
Result<VectorPair> GenerateSyntheticPair(const SyntheticPairOptions& options);

/// Generates `count` independent pairs (seeds derived from options.seed).
Result<std::vector<VectorPair>> GenerateSyntheticPairs(
    const SyntheticPairOptions& options, size_t count);

/// Samples `count` distinct indices uniformly from [0, universe) — partial
/// Fisher–Yates for dense universes, hash-set rejection for sparse ones.
/// Exposed for reuse by the other generators and tests.
std::vector<uint64_t> SampleDistinctIndices(uint64_t universe, size_t count,
                                            uint64_t seed);

/// A standard normal variate conditioned on |x| ≤ 1 (rejection sampling),
/// the paper's "normal random variables with values between −1 and 1".
double TruncatedUnitNormal(class Xoshiro256StarStar& rng);

}  // namespace ipsketch

#endif  // IPSKETCH_DATA_SYNTHETIC_H_
