// Synthetic stand-in for the World Bank Group finances corpus used in §5.2
// ("Assessing the Effect of Overlap and Outliers").
//
// The real corpus (56 datasets, 5000 sketched column pairs) is not available
// offline, so this generator reproduces the two properties Figure 5 buckets
// by, with marginals matching the paper's report (§1.2: "42% of table pairs
// had Jaccard similarity ≤ 0.1, and 35% ≤ 0.05"):
//
//   * overlap spread — datasets draw their key sets from sliding windows
//     over a shared key universe, with half the datasets clustered into
//     "families" (same window region) so pairs span Jaccard ≈ 0 … ≈ 1;
//   * kurtosis spread — value columns rotate through distributions from
//     light- to heavy-tailed (uniform, Gaussian, exponential, lognormal,
//     Student-t, spiky), so pairs span low → very high kurtosis.

#ifndef IPSKETCH_DATA_WORLDBANK_H_
#define IPSKETCH_DATA_WORLDBANK_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "table/table.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Configuration for `GenerateWorldBankCorpus`. Defaults mirror the paper's
/// corpus scale.
struct WorldBankOptions {
  size_t num_datasets = 56;
  size_t columns_per_dataset = 4;
  uint64_t key_universe = 5500;   ///< shared entity-key domain
  size_t min_rows = 300;
  size_t max_rows = 4000;
  size_t num_families = 5;        ///< clusters of overlapping datasets
  double family_fraction = 0.8;   ///< fraction of datasets inside a family
  uint64_t seed = 0;

  /// Validates field ranges.
  Status Validate() const;
};

/// Generates the corpus; deterministic in the seed.
Result<std::vector<Table>> GenerateWorldBankCorpus(
    const WorldBankOptions& options);

/// One sampled cross-dataset column pair, vectorized and unit-normalized as
/// in the paper's experiment, with its bucketing covariates.
struct ColumnPairSample {
  SparseVector a;        ///< normalized value vector of the first column
  SparseVector b;        ///< normalized value vector of the second column
  double overlap = 0.0;  ///< support overlap ratio |A∩B|/max(|A|,|B|)
  double kurtosis = 0.0; ///< max of the two columns' value kurtosis
};

/// Samples `count` random cross-dataset column pairs from the corpus.
/// Pairs where both columns vectorize to zero vectors are skipped.
Result<std::vector<ColumnPairSample>> SampleColumnPairs(
    const std::vector<Table>& corpus, uint64_t key_universe, size_t count,
    uint64_t seed);

}  // namespace ipsketch

#endif  // IPSKETCH_DATA_WORLDBANK_H_
