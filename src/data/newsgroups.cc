#include "data/newsgroups.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/status.h"

namespace ipsketch {

ZipfSampler::ZipfSampler(size_t n, double s) {
  IPS_CHECK(n > 0 && s > 0.0);
  cdf_.resize(n);
  double total = 0.0;
  for (size_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -s);
    cdf_[r] = total;
  }
  for (auto& c : cdf_) c /= total;
}

size_t ZipfSampler::Sample(double unit) const {
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), unit);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<size_t>(it - cdf_.begin());
}

Status NewsgroupsOptions::Validate() const {
  if (num_documents == 0 || vocab_size == 0 || num_topics == 0) {
    return Status::InvalidArgument("corpus dimensions must be positive");
  }
  if (zipf_exponent <= 0.0) {
    return Status::InvalidArgument("zipf_exponent must be positive");
  }
  if (topic_mix < 0.0 || topic_mix > 1.0) {
    return Status::InvalidArgument("topic_mix must be in [0, 1]");
  }
  if (min_length == 0 || min_length > max_length) {
    return Status::InvalidArgument("invalid length range");
  }
  return Status::Ok();
}

Result<std::vector<SyntheticDocument>> GenerateNewsgroupsCorpus(
    const NewsgroupsOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  Xoshiro256StarStar rng(MixCombine(options.seed, 0x4E3A56E25ull));

  const ZipfSampler zipf(options.vocab_size, options.zipf_exponent);

  // Each topic is a pseudo-random permutation of the vocabulary: the topic's
  // word at Zipf rank r is Mix64-derived, so every topic has its own head of
  // frequent words while sharing the global tail through the background
  // distribution. Token ids are Mix64(word index) so they behave like hashed
  // tokens (see text/tokenizer.h).
  auto topic_word = [&](size_t topic, size_t rank) -> uint64_t {
    const uint64_t word =
        MixCombine(options.seed, topic + 1, rank) % options.vocab_size;
    return Mix64(word);
  };
  auto background_word = [&](size_t rank) -> uint64_t {
    return Mix64(static_cast<uint64_t>(rank));
  };

  std::vector<SyntheticDocument> corpus;
  corpus.reserve(options.num_documents);
  for (size_t d = 0; d < options.num_documents; ++d) {
    SyntheticDocument doc;
    doc.topic = rng.NextBounded(options.num_topics);

    const double log_len = options.length_log_mean +
                           options.length_log_sigma * rng.NextGaussian();
    const size_t length = std::clamp(
        static_cast<size_t>(std::llround(std::exp(log_len))),
        options.min_length, options.max_length);

    doc.token_ids.reserve(length);
    for (size_t w = 0; w < length; ++w) {
      const size_t rank = zipf.Sample(rng.NextUnit());
      if (rng.NextUnit() < options.topic_mix) {
        doc.token_ids.push_back(topic_word(doc.topic, rank));
      } else {
        doc.token_ids.push_back(background_word(rank));
      }
    }
    corpus.push_back(std::move(doc));
  }
  return corpus;
}

}  // namespace ipsketch
