// Experiment harness: storage sweeps (Figures 4 and 6) and bucketed
// winning tables (Figure 5).

#ifndef IPSKETCH_EXPT_HARNESS_H_
#define IPSKETCH_EXPT_HARNESS_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sketch/estimator_registry.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// A (vector, vector) workload item.
struct EvalPair {
  SparseVector a;
  SparseVector b;
};

/// Configuration for `RunStorageSweep`.
struct SweepOptions {
  /// Storage budgets in 64-bit words (the x-axis of Figures 4 and 6).
  std::vector<double> storage_words = {100, 200, 300, 400};
  /// Independent sketching trials per pair ("average error over 10
  /// independent trials", §5).
  size_t trials = 10;
  /// Master seed; trial t of pair p uses a sub-seed derived from (seed,p,t).
  uint64_t seed = 0;

  /// Validates field ranges.
  Status Validate() const;
};

/// Mean scaled errors from a storage sweep.
struct SweepResult {
  std::vector<std::string> method_names;
  std::vector<double> storage_words;
  /// mean_errors[method][storage_index], averaged over pairs × trials.
  std::vector<std::vector<double>> mean_errors;
};

/// Runs every method over every (pair × trial × storage budget) cell.
/// Methods are Prepared once per (pair, trial) at the maximum budget and
/// evaluated at each budget by truncation.
Result<SweepResult> RunStorageSweep(
    const std::vector<std::unique_ptr<MethodEvaluator>>& methods,
    const std::vector<EvalPair>& pairs, const SweepOptions& options);

/// `RunStorageSweep` over methods named by sketch/family.h registry key
/// ("wmh", "icws", "mh", "kmv", "cs", "jl"): each evaluator is built
/// through the family registry — the same code path the service layer
/// estimates with. InvalidArgument on unknown family names.
Result<SweepResult> RunStorageSweepForFamilies(
    const std::vector<std::string>& families,
    const std::vector<EvalPair>& pairs, const SweepOptions& options);

/// One observation for a winning table: covariates plus per-method errors.
struct PairErrors {
  double overlap = 0.0;
  double kurtosis = 0.0;
  /// Scaled error per method, aligned with the method list used to fill it.
  std::vector<double> errors;
};

/// Computes per-pair scaled errors of every method at one fixed storage
/// budget (Figure 5 uses 400 words), averaged over `trials` sketch seeds.
Result<std::vector<PairErrors>> ComputePairErrors(
    const std::vector<std::unique_ptr<MethodEvaluator>>& methods,
    const std::vector<EvalPair>& pairs, double storage_words, size_t trials,
    uint64_t seed);

/// A Figure-5-style winning table: cells bucket pairs by (kurtosis row,
/// overlap column) and hold the mean difference err_target − err_baseline.
struct WinningTable {
  std::vector<double> overlap_edges;   ///< column bucket upper edges
  std::vector<double> kurtosis_edges;  ///< row bucket upper edges
  /// diff[row][col]: mean(err_target − err_baseline); negative ⇒ target wins.
  std::vector<std::vector<double>> diff;
  /// count[row][col]: observations per cell.
  std::vector<std::vector<size_t>> count;
};

/// Builds the winning table of method index `target` against `baseline`
/// from per-pair errors. Bucket edges are upper bounds; the last bucket is
/// open-ended.
WinningTable BuildWinningTable(const std::vector<PairErrors>& observations,
                               size_t target, size_t baseline,
                               std::vector<double> overlap_edges,
                               std::vector<double> kurtosis_edges);

}  // namespace ipsketch

#endif  // IPSKETCH_EXPT_HARNESS_H_
