#include "expt/error.h"

#include <cmath>

#include "vector/vector_ops.h"

namespace ipsketch {

double ScaledError(double estimate, double truth, double norm_product) {
  const double err = std::fabs(estimate - truth);
  if (norm_product <= 0.0) return err;
  return err / norm_product;
}

double ScaledError(double estimate, const SparseVector& a,
                   const SparseVector& b) {
  return ScaledError(estimate, Dot(a, b), a.Norm() * b.Norm());
}

}  // namespace ipsketch
