// Plain-text rendering of experiment outputs: aligned tables and simple
// line charts, so every bench binary reproduces its paper figure directly
// in the terminal.

#ifndef IPSKETCH_EXPT_ASCII_H_
#define IPSKETCH_EXPT_ASCII_H_

#include <ostream>
#include <string>
#include <vector>

#include "expt/harness.h"

namespace ipsketch {

/// Prints an aligned table: `headers` then `rows` (all cells pre-formatted).
void PrintAlignedTable(std::ostream& os,
                       const std::vector<std::string>& headers,
                       const std::vector<std::vector<std::string>>& rows);

/// Prints a storage-sweep result as a table: one row per storage budget,
/// one column per method.
void PrintSweepTable(std::ostream& os, const SweepResult& result);

/// Renders a storage-sweep result as an ASCII line chart (one letter per
/// method series), y = mean scaled error, x = storage budget.
void PrintSweepChart(std::ostream& os, const SweepResult& result,
                     size_t width = 72, size_t height = 20);

/// Prints a Figure-5-style winning table with bucket labels; negative cells
/// (target wins) are marked with '*'.
void PrintWinningTable(std::ostream& os, const WinningTable& table,
                       const std::string& target_name,
                       const std::string& baseline_name);

/// Formats a double with `digits` significant digits.
std::string FormatG(double value, int digits = 4);

}  // namespace ipsketch

#endif  // IPSKETCH_EXPT_ASCII_H_
