#include "expt/ascii.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iomanip>
#include <sstream>

#include "common/status.h"

namespace ipsketch {

std::string FormatG(double value, int digits) {
  std::ostringstream os;
  os << std::setprecision(digits) << std::defaultfloat << value;
  return os.str();
}

void PrintAlignedTable(std::ostream& os,
                       const std::vector<std::string>& headers,
                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<size_t> widths(headers.size());
  for (size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows) {
    for (size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << "  " << std::setw(static_cast<int>(widths[c])) << cell;
    }
    os << "\n";
  };
  print_row(headers);
  std::vector<std::string> rule;
  for (size_t w : widths) rule.push_back(std::string(w, '-'));
  print_row(rule);
  for (const auto& row : rows) print_row(row);
}

void PrintSweepTable(std::ostream& os, const SweepResult& result) {
  std::vector<std::string> headers = {"storage"};
  for (const auto& name : result.method_names) headers.push_back(name);
  std::vector<std::vector<std::string>> rows;
  for (size_t si = 0; si < result.storage_words.size(); ++si) {
    std::vector<std::string> row = {FormatG(result.storage_words[si], 6)};
    for (size_t mi = 0; mi < result.method_names.size(); ++mi) {
      row.push_back(FormatG(result.mean_errors[mi][si], 4));
    }
    rows.push_back(std::move(row));
  }
  PrintAlignedTable(os, headers, rows);
}

void PrintSweepChart(std::ostream& os, const SweepResult& result,
                     size_t width, size_t height) {
  IPS_CHECK(width >= 16 && height >= 4);
  double y_max = 0.0;
  for (const auto& series : result.mean_errors) {
    for (double v : series) y_max = std::max(y_max, v);
  }
  if (y_max <= 0.0) y_max = 1.0;
  const double x_min = result.storage_words.front();
  const double x_max = result.storage_words.back();
  const double x_span = std::max(x_max - x_min, 1e-12);

  std::vector<std::string> canvas(height, std::string(width, ' '));
  for (size_t mi = 0; mi < result.mean_errors.size(); ++mi) {
    const char mark = result.method_names[mi].empty()
                          ? '?'
                          : result.method_names[mi][0];
    for (size_t si = 0; si < result.storage_words.size(); ++si) {
      const double x = (result.storage_words[si] - x_min) / x_span;
      const double y = result.mean_errors[mi][si] / y_max;
      const size_t col = std::min(
          width - 1, static_cast<size_t>(std::llround(x * (width - 1))));
      const size_t row_from_top = std::min(
          height - 1,
          static_cast<size_t>(std::llround((1.0 - y) * (height - 1))));
      char& cell = canvas[row_from_top][col];
      cell = (cell == ' ' || cell == mark) ? mark : '+';
    }
  }

  os << "  error (max " << FormatG(y_max, 3) << ")\n";
  for (const auto& line : canvas) os << "  |" << line << "\n";
  os << "  +" << std::string(width, '-') << "\n";
  os << "   storage: " << FormatG(x_min, 6) << " ... " << FormatG(x_max, 6)
     << " (64-bit words)\n";
  os << "   series:";
  for (const auto& name : result.method_names) {
    os << " " << name[0] << "=" << name;
  }
  os << "  ('+' = overlap)\n";
}

void PrintWinningTable(std::ostream& os, const WinningTable& table,
                       const std::string& target_name,
                       const std::string& baseline_name) {
  os << "  mean(err_" << target_name << " - err_" << baseline_name
     << ") by kurtosis (rows) x overlap (cols); negative* = " << target_name
     << " wins\n";
  auto bucket_label = [](const std::vector<double>& edges, size_t i) {
    std::ostringstream lbl;
    if (i == 0) {
      lbl << "<=" << FormatG(edges[0], 3);
    } else if (i < edges.size()) {
      lbl << FormatG(edges[i - 1], 3) << "-" << FormatG(edges[i], 3);
    } else {
      lbl << ">" << FormatG(edges.back(), 3);
    }
    return lbl.str();
  };
  std::vector<std::string> headers = {"kurtosis \\ overlap"};
  for (size_t c = 0; c <= table.overlap_edges.size(); ++c) {
    headers.push_back(bucket_label(table.overlap_edges, c));
  }
  std::vector<std::vector<std::string>> rows;
  for (size_t r = 0; r <= table.kurtosis_edges.size(); ++r) {
    std::vector<std::string> row = {bucket_label(table.kurtosis_edges, r)};
    for (size_t c = 0; c <= table.overlap_edges.size(); ++c) {
      if (table.count[r][c] == 0) {
        row.push_back("-");
      } else {
        std::string cell = FormatG(table.diff[r][c], 3);
        if (table.diff[r][c] < 0.0) cell += "*";
        cell += " (n=" + std::to_string(table.count[r][c]) + ")";
        row.push_back(std::move(cell));
      }
    }
    rows.push_back(std::move(row));
  }
  PrintAlignedTable(os, headers, rows);
}

}  // namespace ipsketch
