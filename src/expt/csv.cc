#include "expt/csv.h"

#include <fstream>

#include "expt/ascii.h"

namespace ipsketch {
namespace {

std::string EscapeCell(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

void WriteRow(std::ofstream& os, const std::vector<std::string>& row) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) os << ",";
    os << EscapeCell(row[i]);
  }
  os << "\n";
}

}  // namespace

Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows) {
  std::ofstream os(path);
  if (!os) return Status::Internal("cannot open " + path + " for writing");
  WriteRow(os, header);
  for (const auto& row : rows) WriteRow(os, row);
  if (!os) return Status::Internal("write failed for " + path);
  return Status::Ok();
}

Status WriteSweepCsv(const std::string& path, const SweepResult& result) {
  std::vector<std::string> header = {"storage_words"};
  for (const auto& name : result.method_names) header.push_back(name);
  std::vector<std::vector<std::string>> rows;
  for (size_t si = 0; si < result.storage_words.size(); ++si) {
    std::vector<std::string> row = {FormatG(result.storage_words[si], 10)};
    for (size_t mi = 0; mi < result.method_names.size(); ++mi) {
      row.push_back(FormatG(result.mean_errors[mi][si], 10));
    }
    rows.push_back(std::move(row));
  }
  return WriteCsv(path, header, rows);
}

}  // namespace ipsketch
