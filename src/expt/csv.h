// CSV output so figure data can be re-plotted outside the terminal.

#ifndef IPSKETCH_EXPT_CSV_H_
#define IPSKETCH_EXPT_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "expt/harness.h"

namespace ipsketch {

/// Writes rows of pre-formatted cells as CSV (naive quoting: cells
/// containing commas or quotes are double-quoted).
Status WriteCsv(const std::string& path,
                const std::vector<std::string>& header,
                const std::vector<std::vector<std::string>>& rows);

/// Writes a storage sweep as CSV: storage, then one column per method.
Status WriteSweepCsv(const std::string& path, const SweepResult& result);

}  // namespace ipsketch

#endif  // IPSKETCH_EXPT_CSV_H_
