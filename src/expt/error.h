// The paper's error metric (§5, "Estimation Error"): absolute error scaled
// by ‖a‖·‖b‖, the Fact-1 error scale, so values are comparable across
// datasets and roughly within [0, 1].

#ifndef IPSKETCH_EXPT_ERROR_H_
#define IPSKETCH_EXPT_ERROR_H_

#include "vector/sparse_vector.h"

namespace ipsketch {

/// |estimate − truth| / norm_product. Returns |estimate − truth| unscaled if
/// norm_product is 0 (both vectors zero).
double ScaledError(double estimate, double truth, double norm_product);

/// Convenience overload computing truth = ⟨a,b⟩ and the norms.
double ScaledError(double estimate, const SparseVector& a,
                   const SparseVector& b);

}  // namespace ipsketch

#endif  // IPSKETCH_EXPT_ERROR_H_
