#include "expt/harness.h"

#include <algorithm>

#include "common/rng.h"
#include "common/stats.h"
#include "expt/error.h"
#include "vector/vector_ops.h"

namespace ipsketch {

Status SweepOptions::Validate() const {
  if (storage_words.empty()) {
    return Status::InvalidArgument("storage_words must be non-empty");
  }
  for (double w : storage_words) {
    if (w <= 0.0) return Status::InvalidArgument("storage budgets must be positive");
  }
  if (trials == 0) return Status::InvalidArgument("trials must be positive");
  return Status::Ok();
}

Result<SweepResult> RunStorageSweep(
    const std::vector<std::unique_ptr<MethodEvaluator>>& methods,
    const std::vector<EvalPair>& pairs, const SweepOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  if (methods.empty()) return Status::InvalidArgument("no methods");
  if (pairs.empty()) return Status::InvalidArgument("no pairs");

  const double max_words =
      *std::max_element(options.storage_words.begin(),
                        options.storage_words.end());

  SweepResult result;
  result.storage_words = options.storage_words;
  for (const auto& m : methods) result.method_names.push_back(m->name());
  result.mean_errors.assign(methods.size(),
                            std::vector<double>(options.storage_words.size(),
                                                0.0));

  size_t cells = 0;
  for (size_t p = 0; p < pairs.size(); ++p) {
    const EvalPair& pair = pairs[p];
    const double truth = Dot(pair.a, pair.b);
    const double norm_product = pair.a.Norm() * pair.b.Norm();
    for (size_t t = 0; t < options.trials; ++t) {
      const uint64_t trial_seed = MixCombine(options.seed, p, t);
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        IPS_RETURN_IF_ERROR(
            methods[mi]->Prepare(pair.a, pair.b, max_words, trial_seed));
        for (size_t si = 0; si < options.storage_words.size(); ++si) {
          auto est = methods[mi]->Estimate(options.storage_words[si]);
          IPS_RETURN_IF_ERROR(est.status());
          result.mean_errors[mi][si] +=
              ScaledError(est.value(), truth, norm_product);
        }
      }
    }
    cells += options.trials;
  }
  for (auto& row : result.mean_errors) {
    for (auto& v : row) v /= static_cast<double>(cells);
  }
  return result;
}

Result<SweepResult> RunStorageSweepForFamilies(
    const std::vector<std::string>& families,
    const std::vector<EvalPair>& pairs, const SweepOptions& options) {
  std::vector<std::unique_ptr<MethodEvaluator>> methods;
  methods.reserve(families.size());
  for (const std::string& family : families) {
    auto made = MakeFamilyEvaluator(family);
    IPS_RETURN_IF_ERROR(made.status());
    methods.push_back(std::move(made).value());
  }
  return RunStorageSweep(methods, pairs, options);
}

Result<std::vector<PairErrors>> ComputePairErrors(
    const std::vector<std::unique_ptr<MethodEvaluator>>& methods,
    const std::vector<EvalPair>& pairs, double storage_words, size_t trials,
    uint64_t seed) {
  if (methods.empty()) return Status::InvalidArgument("no methods");
  if (trials == 0) return Status::InvalidArgument("trials must be positive");

  std::vector<PairErrors> out;
  out.reserve(pairs.size());
  for (size_t p = 0; p < pairs.size(); ++p) {
    const EvalPair& pair = pairs[p];
    PairErrors obs;
    obs.overlap = OverlapRatio(pair.a, pair.b);
    {
      // Kurtosis of the pooled non-zero values — used when the caller has
      // no richer covariate (callers may overwrite it).
      RunningMoments m;
      for (const Entry& e : pair.a.entries()) m.Add(e.value);
      for (const Entry& e : pair.b.entries()) m.Add(e.value);
      obs.kurtosis = m.Kurtosis();
    }
    obs.errors.assign(methods.size(), 0.0);
    const double truth = Dot(pair.a, pair.b);
    const double norm_product = pair.a.Norm() * pair.b.Norm();
    for (size_t t = 0; t < trials; ++t) {
      const uint64_t trial_seed = MixCombine(seed, p, t);
      for (size_t mi = 0; mi < methods.size(); ++mi) {
        IPS_RETURN_IF_ERROR(
            methods[mi]->Prepare(pair.a, pair.b, storage_words, trial_seed));
        auto est = methods[mi]->Estimate(storage_words);
        IPS_RETURN_IF_ERROR(est.status());
        obs.errors[mi] += ScaledError(est.value(), truth, norm_product);
      }
    }
    for (auto& e : obs.errors) e /= static_cast<double>(trials);
    out.push_back(std::move(obs));
  }
  return out;
}

WinningTable BuildWinningTable(const std::vector<PairErrors>& observations,
                               size_t target, size_t baseline,
                               std::vector<double> overlap_edges,
                               std::vector<double> kurtosis_edges) {
  WinningTable table;
  table.overlap_edges = std::move(overlap_edges);
  table.kurtosis_edges = std::move(kurtosis_edges);
  const size_t rows = table.kurtosis_edges.size() + 1;
  const size_t cols = table.overlap_edges.size() + 1;
  table.diff.assign(rows, std::vector<double>(cols, 0.0));
  table.count.assign(rows, std::vector<size_t>(cols, 0));

  auto bucket = [](double x, const std::vector<double>& edges) {
    size_t i = 0;
    while (i < edges.size() && x > edges[i]) ++i;
    return i;
  };

  for (const PairErrors& obs : observations) {
    IPS_CHECK(target < obs.errors.size() && baseline < obs.errors.size());
    const size_t r = bucket(obs.kurtosis, table.kurtosis_edges);
    const size_t c = bucket(obs.overlap, table.overlap_edges);
    table.diff[r][c] += obs.errors[target] - obs.errors[baseline];
    ++table.count[r][c];
  }
  for (size_t r = 0; r < rows; ++r) {
    for (size_t c = 0; c < cols; ++c) {
      if (table.count[r][c] > 0) {
        table.diff[r][c] /= static_cast<double>(table.count[r][c]);
      }
    }
  }
  return table;
}

}  // namespace ipsketch
