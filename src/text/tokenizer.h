// Text tokenization and feature extraction for the document-similarity
// experiments (§5.2): each document becomes a bag of unigram and bigram
// features, identified by 64-bit hashes so the feature space never needs a
// materialized vocabulary ("n can be very large ... set n large enough to
// cover the whole domain", §1.2).

#ifndef IPSKETCH_TEXT_TOKENIZER_H_
#define IPSKETCH_TEXT_TOKENIZER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace ipsketch {

/// Splits `text` into lowercase tokens at non-alphanumeric boundaries.
std::vector<std::string> Tokenize(std::string_view text);

/// Stable 64-bit id of a token (FNV-1a finalized with Mix64).
uint64_t TokenId(std::string_view token);

/// Stable 64-bit id of the bigram (first, second).
uint64_t BigramId(uint64_t first_token_id, uint64_t second_token_id);

/// Options for feature extraction.
struct FeatureOptions {
  bool unigrams = true;
  bool bigrams = true;
};

/// Maps a token sequence to feature ids: unigram ids plus (optionally)
/// bigram ids of adjacent pairs, in document order (duplicates preserved —
/// term frequency is counted downstream).
std::vector<uint64_t> TokenFeatures(const std::vector<std::string>& tokens,
                                    const FeatureOptions& options);

/// Same, over pre-hashed token ids (used by the synthetic corpus generator,
/// which produces token ids directly).
std::vector<uint64_t> IdFeatures(const std::vector<uint64_t>& token_ids,
                                 const FeatureOptions& options);

}  // namespace ipsketch

#endif  // IPSKETCH_TEXT_TOKENIZER_H_
