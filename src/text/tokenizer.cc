#include "text/tokenizer.h"

#include <cctype>

#include "common/rng.h"

namespace ipsketch {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char c : text) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      current.push_back(
          static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

uint64_t TokenId(std::string_view token) {
  // FNV-1a over the bytes, then Mix64 for avalanche.
  uint64_t h = 0xCBF29CE484222325ull;
  for (char c : token) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return Mix64(h);
}

uint64_t BigramId(uint64_t first_token_id, uint64_t second_token_id) {
  // Order-sensitive combine with a domain-separation tag so a bigram id can
  // never collide with a unigram id by construction alone.
  return MixCombine(0xB16A4071D00DFEEDull, first_token_id, second_token_id);
}

std::vector<uint64_t> TokenFeatures(const std::vector<std::string>& tokens,
                                    const FeatureOptions& options) {
  std::vector<uint64_t> ids;
  ids.reserve(tokens.size());
  for (const std::string& t : tokens) ids.push_back(TokenId(t));
  return IdFeatures(ids, options);
}

std::vector<uint64_t> IdFeatures(const std::vector<uint64_t>& token_ids,
                                 const FeatureOptions& options) {
  std::vector<uint64_t> features;
  features.reserve(token_ids.size() * (options.bigrams ? 2 : 1));
  if (options.unigrams) {
    features.insert(features.end(), token_ids.begin(), token_ids.end());
  }
  if (options.bigrams) {
    for (size_t i = 0; i + 1 < token_ids.size(); ++i) {
      features.push_back(BigramId(token_ids[i], token_ids[i + 1]));
    }
  }
  return features;
}

}  // namespace ipsketch
