#include "text/tfidf.h"

#include <cmath>
#include <unordered_set>

namespace ipsketch {

Status TfidfOptions::Validate() const {
  if (dimension == 0 || (dimension & (dimension - 1)) != 0) {
    return Status::InvalidArgument("dimension must be a power of two");
  }
  return Status::Ok();
}

Status TfidfVectorizer::Fit(
    const std::vector<std::vector<uint64_t>>& documents) {
  IPS_RETURN_IF_ERROR(options_.Validate());
  if (fitted_) return Status::FailedPrecondition("Fit called twice");
  for (const auto& doc : documents) {
    std::unordered_set<uint64_t> distinct(doc.begin(), doc.end());
    for (uint64_t f : distinct) ++document_frequency_[f];
  }
  num_documents_ = documents.size();
  fitted_ = true;
  return Status::Ok();
}

Result<SparseVector> TfidfVectorizer::Transform(
    const std::vector<uint64_t>& document) const {
  if (!fitted_) return Status::FailedPrecondition("Transform before Fit");

  std::unordered_map<uint64_t, uint32_t> term_frequency;
  term_frequency.reserve(document.size());
  for (uint64_t f : document) ++term_frequency[f];

  const double n_docs = static_cast<double>(num_documents_);
  const uint64_t mask = options_.dimension - 1;
  // Feature hashing: distinct feature ids can (rarely) collide in the
  // reduced dimension; their TF-IDF mass is summed, as is standard.
  std::unordered_map<uint64_t, double> accum;
  accum.reserve(term_frequency.size());
  for (const auto& [feature, count] : term_frequency) {
    auto it = document_frequency_.find(feature);
    const double df = it == document_frequency_.end()
                          ? 0.0
                          : static_cast<double>(it->second);
    const double idf = std::log((1.0 + n_docs) / (1.0 + df)) + 1.0;
    const double tf = options_.sublinear_tf
                          ? 1.0 + std::log(static_cast<double>(count))
                          : static_cast<double>(count);
    accum[feature & mask] += tf * idf;
  }

  std::vector<Entry> entries;
  entries.reserve(accum.size());
  for (const auto& [index, value] : accum) entries.push_back({index, value});
  auto vec = SparseVector::Make(options_.dimension, std::move(entries));
  IPS_RETURN_IF_ERROR(vec.status());
  if (options_.l2_normalize && !vec.value().empty()) {
    return vec.value().Normalized();
  }
  return vec;
}

Result<std::vector<SparseVector>> TfidfVectorizer::FitTransform(
    const std::vector<std::vector<uint64_t>>& documents) {
  IPS_RETURN_IF_ERROR(Fit(documents));
  std::vector<SparseVector> out;
  out.reserve(documents.size());
  for (const auto& doc : documents) {
    auto vec = Transform(doc);
    IPS_RETURN_IF_ERROR(vec.status());
    out.push_back(std::move(vec).value());
  }
  return out;
}

}  // namespace ipsketch
