// TF-IDF vectorization (Salton et al. 1975), as used for the §5.2 document
// similarity experiments: "each entry represents a term or a combination of
// 2 terms (bigrams), and is associated with a value that encodes ...
// importance using TF-IDF weights".
//
// Feature ids are 64-bit hashes; the vectorizer maps them into a sparse
// vector over a configurable power-of-two dimension (feature hashing). With
// the default 2^40 dimension, collisions are negligible for corpora of
// millions of features.

#ifndef IPSKETCH_TEXT_TFIDF_H_
#define IPSKETCH_TEXT_TFIDF_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Configuration for TfidfVectorizer.
struct TfidfOptions {
  /// Sparse vector dimension; must be a power of two.
  uint64_t dimension = uint64_t{1} << 40;
  /// Use 1 + log(tf) instead of raw term counts.
  bool sublinear_tf = false;
  /// L2-normalize the output vectors (cosine similarity = inner product).
  bool l2_normalize = true;

  /// Validates field ranges.
  Status Validate() const;
};

/// Fits document frequencies over a corpus and transforms documents into
/// TF-IDF vectors.
class TfidfVectorizer {
 public:
  explicit TfidfVectorizer(TfidfOptions options = TfidfOptions())
      : options_(options) {}

  /// Counts document frequencies over `documents` (each a multiset of
  /// feature ids). Must be called exactly once before Transform.
  Status Fit(const std::vector<std::vector<uint64_t>>& documents);

  /// TF-IDF vector of one document:
  ///   value(f) = tf(f) · idf(f),  idf(f) = ln((1+N)/(1+df(f))) + 1
  /// (the smooth IDF convention, robust to unseen features).
  Result<SparseVector> Transform(const std::vector<uint64_t>& document) const;

  /// Fit + Transform over the same corpus.
  Result<std::vector<SparseVector>> FitTransform(
      const std::vector<std::vector<uint64_t>>& documents);

  /// Number of distinct features seen during Fit.
  size_t vocabulary_size() const { return document_frequency_.size(); }

  /// Number of documents seen during Fit.
  size_t num_documents() const { return num_documents_; }

 private:
  TfidfOptions options_;
  std::unordered_map<uint64_t, uint32_t> document_frequency_;
  size_t num_documents_ = 0;
  bool fitted_ = false;
};

}  // namespace ipsketch

#endif  // IPSKETCH_TEXT_TFIDF_H_
