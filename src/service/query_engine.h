// Estimation and retrieval queries over a SketchStore — the read side of
// the service. All estimates go through the store's SketchFamily on stored
// sketches, whatever the family is; the engine never touches raw vectors
// except to sketch an incoming query exactly once.
//
// Parallelism: scans decompose by shard. Each worker thread walks whole
// shards in place under the shard lock (SketchStore::ForEachInShard — no
// copies), feeding a private TopKHeap (core/similarity_search.h), and the
// per-thread heaps are merged at the end; BetterHit's deterministic
// tie-break makes the merged result identical to a serial scan regardless
// of thread count or shard order.
//
// Locking contract (see common/mutex.h): the engine itself is stateless —
// it owns no mutex. Scan workers acquire exactly one store or index shard
// Mutex (kStoreShard / kIndexShard) at a time inside the scan callback,
// plus a short-lived kLeaf error-slot Mutex local to each query; both
// orders are strictly rank-increasing, so engine queries can never take
// part in a lock-order cycle with ingest or index maintenance.

#ifndef IPSKETCH_SERVICE_QUERY_ENGINE_H_
#define IPSKETCH_SERVICE_QUERY_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"
#include "service/metrics.h"
#include "service/sketch_store.h"
#include "service/thread_pool.h"
#include "sketch/family.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

class BandedIndex;  // index/banded_index.h

/// One scored result of a store query.
struct QueryHit {
  uint64_t id = 0;        ///< vector id in the store
  double estimate = 0.0;  ///< estimated ⟨query, stored vector⟩
};

/// How scans read the store's shards.
enum class ReadMode {
  /// Scan shard maps in place under each shard's mutex (ForEachInShard) —
  /// the historical behavior. Readers briefly block writers to the shard
  /// they are scanning.
  kLockedScan,
  /// Pin each shard's published epoch view (SketchStore::PinShard) — one
  /// atomic load per shard, zero shard-mutex acquisitions, so heavy read
  /// traffic never contends with ingest. A query sees, per shard, the
  /// newest epoch published before its scan reached that shard. This is
  /// what the FrontDoor uses.
  kSnapshot,
};

/// How TopK/TopKSketch traverse the catalog.
enum class IndexPolicy {
  /// Scan every stored sketch in place through the store's shard maps —
  /// exact, index-free, the pre-index behavior.
  kExactScan,
  /// Scan every resident sketch through the banded index's slab arenas —
  /// same exact results as kExactScan (bit-identical estimates, same
  /// tie-break), but 1-query-vs-many over contiguous lanes. Requires an
  /// index; falls back to kExactScan without one.
  kSlabScan,
  /// LSH-banded candidate generation + slab re-rank — sublinear, recall
  /// governed by the index's (b, r). Requires an index; falls back to
  /// kExactScan without one.
  kBandedRerank,
};

/// Read-side engine over one store. Holds no mutable state of its own, so a
/// single engine may serve concurrent queries from many threads; the store
/// may be ingesting concurrently (each shard scan holds that shard's lock,
/// so it sees a consistent per-shard state and briefly delays writers).
class QueryEngine {
 public:
  /// Queries run against `store`, fanning across `pool` (nullptr = serial).
  /// Both pointers must outlive the engine; the engine owns neither. This
  /// form pins IndexPolicy::kExactScan (no index, no fallback accounting).
  explicit QueryEngine(const SketchStore* store, ThreadPool* pool = nullptr);

  /// Index-aware engine: top-k queries follow `policy` against `index`
  /// (which must be attached to the same `store`; all pointers must outlive
  /// the engine). A null `index` with a non-exact policy is permitted —
  /// every top-k query then falls back to the exact scan and counts on
  /// ipsketch_index_fallback_total.
  QueryEngine(const SketchStore* store, ThreadPool* pool,
              const BandedIndex* index,
              IndexPolicy policy = IndexPolicy::kBandedRerank);

  /// Selects how store scans read shards (default kLockedScan). kSnapshot
  /// affects the exact-scan and pairwise paths; the index paths already
  /// take only index-shard locks (the mirror is kept snapshot-coherent
  /// synchronously under the mutated shard's store lock). Set before
  /// sharing the engine across threads.
  void set_read_mode(ReadMode mode) { read_mode_ = mode; }
  ReadMode read_mode() const { return read_mode_; }

  /// Estimates ⟨a, b⟩ between two stored vectors. NotFound if either id is
  /// absent.
  Result<double> EstimateInnerProduct(uint64_t id_a, uint64_t id_b) const;

  /// Sketches `query` once with the store's family, then scans every shard
  /// (in parallel when a pool is present) and returns an estimate for every
  /// stored vector, sorted by id. A non-null `trace` receives stage spans
  /// (sketch-query, shard-scan).
  Result<std::vector<QueryHit>> EstimateAgainstQuery(
      const SparseVector& query, metrics::QueryTrace* trace = nullptr) const;

  /// The `k` stored vectors with the largest estimated inner product
  /// against `query` (sketched once), best first; ties break toward the
  /// smaller id. Returns fewer than `k` hits iff the store is smaller.
  /// A non-null `trace` receives stage spans (sketch-query, shard-scan,
  /// heap-merge) showing where this query's time went.
  Result<std::vector<QueryHit>> TopK(const SparseVector& query, size_t k,
                                     metrics::QueryTrace* trace = nullptr)
      const;

  /// TopK against a pre-built query sketch (must be compatible with the
  /// store's family options) — the path for queries that arrive already
  /// sketched, e.g. from a remote catalog shard.
  Result<std::vector<QueryHit>> TopKSketch(const AnySketch& query, size_t k,
                                           metrics::QueryTrace* trace =
                                               nullptr) const;

  /// Runs `queries.size()` top-k queries in ONE traversal of the catalog —
  /// the batch entry point the FrontDoor's admission queue feeds. Shards
  /// are visited once per *batch* instead of once per query: the exact
  /// path pins each shard view (or takes each shard lock) once for all
  /// queries, the slab path holds each index-shard lock once and runs the
  /// SlabCatalog 1-vs-many kernels per query over contiguous lanes
  /// (BandedIndex::ScanShardBatch), and the banded path computes each
  /// query's band keys once up front. `ks[i]` is query i's k. Results are
  /// per query, in input order; a query whose sketch is incompatible (or
  /// whose estimates fail) gets an error slot without failing the batch.
  std::vector<Result<std::vector<QueryHit>>> TopKSketchBatch(
      const std::vector<const AnySketch*>& queries,
      const std::vector<size_t>& ks) const;

  /// Measures the banded index's recall on one query: sketches it once,
  /// runs both the exact scan and the banded path, and returns
  /// |banded ∩ exact| / |exact| over the top-k id sets (1.0 when the exact
  /// set is empty). Updates the recall-probe counters, so sampling live
  /// queries through this builds an online recall estimate.
  /// FailedPrecondition without an index.
  Result<double> ProbeRecall(const SparseVector& query, size_t k) const;

 private:
  /// Sketches a raw query vector with the store's family.
  Result<std::unique_ptr<AnySketch>> SketchQuery(
      const SparseVector& query) const;

  /// Scans one store shard per read_mode_: in place under the shard lock
  /// (kLockedScan) or over the pinned epoch view (kSnapshot — no lock).
  /// Same early-stop contract as SketchStore::ForEachInShard.
  bool ScanStoreShard(
      size_t shard,
      const std::function<bool(uint64_t, const AnySketch&)>& fn) const;

  /// Runs fn(shard_index) over all shards, on the pool when available.
  void ForEachShard(const std::function<void(size_t)>& fn) const;

  /// TopKSketch under an explicit policy — the shared body of TopKSketch
  /// (which passes policy_) and ProbeRecall (which runs both paths).
  Result<std::vector<QueryHit>> TopKSketchWithPolicy(
      const AnySketch& query, size_t k, IndexPolicy policy,
      metrics::QueryTrace* trace) const;

  const SketchStore* store_;
  ThreadPool* pool_;
  const BandedIndex* index_ = nullptr;
  IndexPolicy policy_ = IndexPolicy::kExactScan;
  ReadMode read_mode_ = ReadMode::kLockedScan;

  // Process-wide query metrics (all QueryEngine instances aggregate).
  // Registry-owned; valid forever.
  metrics::Histogram* estimate_pair_ns_ = nullptr;
  metrics::Histogram* scan_ns_ = nullptr;
  metrics::Histogram* topk_ns_ = nullptr;
  metrics::Histogram* candidates_per_query_ = nullptr;
  metrics::Counter* sketches_scanned_ = nullptr;
  metrics::Counter* queries_ = nullptr;
  metrics::Histogram* rerank_ns_ = nullptr;
  metrics::Counter* fallbacks_ = nullptr;
  metrics::Counter* recall_probe_expected_ = nullptr;
  metrics::Counter* recall_probe_hits_ = nullptr;
};

}  // namespace ipsketch

#endif  // IPSKETCH_SERVICE_QUERY_ENGINE_H_
