// A fixed-size worker pool with a FIFO task queue — the execution substrate
// of the service layer. SketchStore fans batch ingest across it and
// QueryEngine fans shard scans across it; both also run correctly with no
// pool at all (serial fallback), so the pool is a pure throughput knob.
//
// Deliberately minimal: std::function tasks, one mutex, one condition
// variable. The service workloads hand the pool coarse chunks (hundreds of
// vectors to sketch, whole shards to scan), so per-task overhead is noise
// and work stealing would buy nothing.

#ifndef IPSKETCH_SERVICE_THREAD_POOL_H_
#define IPSKETCH_SERVICE_THREAD_POOL_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "service/metrics.h"

namespace ipsketch {

/// Fixed-size thread pool. Construction spawns the workers; destruction
/// drains every task already submitted, then joins them.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Finishes all queued tasks, then stops and joins the workers.
  ~ThreadPool();

  /// Number of worker threads.
  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `task` for execution on some worker. Returns true iff the
  /// task was accepted; false once the pool has begun stopping (work
  /// submitted from a task that is still draining during destruction is
  /// rejected, not run and not aborted on). Tasks must not throw — the
  /// service layer reports failures through Status captured in the
  /// closure, never through exceptions.
  [[nodiscard]] bool Submit(std::function<void()> task);

  /// Runs fn(i) for every i in [0, n), spread across the workers, and
  /// returns when all calls have finished.
  ///
  /// Safe to call from multiple threads at once, and — unlike a naive
  /// submit-and-wait — safe to call from *inside* a pool task: a call from
  /// one of this pool's own workers runs the whole loop inline on that
  /// worker (queueing would deadlock: the worker would block on completion
  /// while its subtasks sit in the queue behind it). From outside the pool
  /// the calling thread normally blocks without executing tasks; it runs
  /// iterations itself only when the pool is stopping and rejects the
  /// submissions.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

 private:
  /// A queued task plus its enqueue timestamp (0 when metrics were off at
  /// submit time — the dequeue side then skips the depth/wait updates, so
  /// each task's gauge adjustments stay paired whatever happens in between).
  struct QueuedTask {
    std::function<void()> fn;
    uint64_t enqueue_ns = 0;
  };

  void WorkerLoop();

  std::vector<std::thread> workers_;
  // kPoolQueue: task bodies run with no lock held, so nothing is ever
  // acquired under the queue lock; it may itself be taken while holding
  // store/index shard locks (Submit from a shard scan).
  Mutex mu_{LockRank::kPoolQueue};
  std::deque<QueuedTask> queue_ IPS_GUARDED_BY(mu_);
  bool stopping_ IPS_GUARDED_BY(mu_) = false;
  CondVar cv_;

  // Process-wide pool metrics (all ThreadPool instances aggregate):
  // queue depth, accepted/rejected/executed counts, and how long tasks
  // waited in the queue vs ran. Registry-owned; valid forever.
  metrics::Gauge* queue_depth_;
  metrics::Counter* tasks_executed_;
  metrics::Counter* tasks_rejected_;
  metrics::Histogram* task_wait_ns_;
  metrics::Histogram* task_run_ns_;
};

}  // namespace ipsketch

#endif  // IPSKETCH_SERVICE_THREAD_POOL_H_
