#include "service/front_door.h"

#include <algorithm>
#include <string>

#include "index/banded_index.h"

namespace ipsketch {

struct FrontDoor::Request {
  enum class Kind { kEstimate, kTopK };

  Kind kind = Kind::kEstimate;
  // kEstimate
  uint64_t id_a = 0;
  uint64_t id_b = 0;
  EstimateCallback est_done;
  // kTopK: exactly one of query_vec (sketched inside the batch) or
  // query_sketch is set.
  std::optional<SparseVector> query_vec;
  std::unique_ptr<AnySketch> query_sketch;
  size_t k = 0;
  TopKCallback topk_done;

  /// Absolute steady-clock expiry (metrics::NowNs base); 0 = none.
  uint64_t deadline_ns = 0;
  uint64_t enqueue_ns = 0;

  void CompleteError(Status st) {
    if (kind == Kind::kEstimate) {
      est_done(EstimateResult(std::move(st)));
    } else {
      topk_done(TopKResult(std::move(st)));
    }
  }
};

FrontDoor::FrontDoor(const SketchStore* store, ThreadPool* pool,
                     const FrontDoorOptions& options, const BandedIndex* index,
                     IndexPolicy policy)
    : store_(store),
      pool_(pool),
      options_(options),
      engine_(store, /*pool=*/nullptr, index, policy) {
  IPS_CHECK(store_ != nullptr);
  IPS_CHECK(options_.max_queue_depth > 0);
  IPS_CHECK(options_.max_batch > 0);
  if (options_.max_concurrent_batches == 0) {
    options_.max_concurrent_batches =
        pool_ != nullptr ? pool_->num_threads() : 1;
  }
  engine_.set_read_mode(ReadMode::kSnapshot);
  auto& registry = metrics::MetricsRegistry::Global();
  submitted_ = &registry.GetCounter("ipsketch_frontdoor_submitted_total",
                                    "Requests submitted to the front door");
  completed_ = &registry.GetCounter(
      "ipsketch_frontdoor_completed_total",
      "Requests that executed to completion (answer or engine error)");
  shed_ = &registry.GetCounter(
      "ipsketch_frontdoor_shed_total",
      "Requests rejected with Unavailable (queue full or shutdown)");
  expired_ = &registry.GetCounter(
      "ipsketch_frontdoor_deadline_expired_total",
      "Requests whose deadline passed while queued (DeadlineExceeded)");
  queue_depth_ = &registry.GetGauge("ipsketch_frontdoor_queue_depth",
                                    "Requests waiting in the admission queue");
  queue_wait_ns_ = &registry.GetHistogram(
      "ipsketch_frontdoor_queue_wait_ns",
      "Time from submit to batch pickup (admission-queue delay)");
  batch_size_ = &registry.GetHistogram(
      "ipsketch_frontdoor_batch_size",
      "Requests coalesced per dispatched batch");
  latency_ns_ = &registry.GetHistogram(
      "ipsketch_frontdoor_latency_ns",
      "Submit-to-completion latency of executed requests");
}

FrontDoor::~FrontDoor() {
  std::deque<std::unique_ptr<Request>> orphaned;
  {
    MutexLock lock(&mu_);
    shutting_down_ = true;
    orphaned.swap(queue_);
    queue_depth_->Set(0);
  }
  // Completion runs outside the queue lock so user callbacks may not
  // re-enter the (same-ranked) front door.
  for (auto& req : orphaned) {
    shed_->Add(1);
    req->CompleteError(
        Status::Unavailable("front door shutting down; request not served"));
  }
  MutexLock lock(&mu_);
  while (active_batches_ > 0) drained_cv_.Wait(mu_);
}

void FrontDoor::Enqueue(std::unique_ptr<Request> req) {
  submitted_->Add(1);
  req->enqueue_ns = metrics::NowNs();
  const uint64_t budget =
      req->deadline_ns != 0 ? req->deadline_ns : options_.default_deadline_ns;
  req->deadline_ns = budget != 0 ? req->enqueue_ns + budget : 0;

  std::unique_ptr<Request> shed;
  const char* shed_reason = nullptr;
  bool spawn = false;
  {
    MutexLock lock(&mu_);
    if (shutting_down_) {
      shed = std::move(req);
      shed_reason = "front door shutting down";
    } else if (queue_.size() >= options_.max_queue_depth) {
      shed = std::move(req);
      shed_reason = "admission queue full";
    } else {
      queue_.push_back(std::move(req));
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
      if (active_batches_ < options_.max_concurrent_batches) {
        ++active_batches_;
        spawn = true;
      }
    }
  }
  if (shed != nullptr) {
    shed_->Add(1);
    shed->CompleteError(Status::Unavailable(
        std::string(shed_reason) + "; retry later or raise max_queue_depth"));
    return;
  }
  if (spawn) {
    // Pool gone or stopping: dispatch inline on the submitter — degenerate
    // but every request still completes.
    if (pool_ == nullptr || !pool_->Submit([this] { DispatchLoop(); })) {
      DispatchLoop();
    }
  }
}

void FrontDoor::DispatchLoop() {
  for (;;) {
    std::vector<std::unique_ptr<Request>> batch;
    {
      MutexLock lock(&mu_);
      if (shutting_down_ || queue_.empty()) {
        --active_batches_;
        if (active_batches_ == 0) drained_cv_.NotifyAll();
        return;
      }
      const size_t n = std::min(options_.max_batch, queue_.size());
      batch.reserve(n);
      for (size_t i = 0; i < n; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      queue_depth_->Set(static_cast<int64_t>(queue_.size()));
    }
    batch_size_->Record(batch.size());
    ExecuteBatch(std::move(batch));
  }
}

void FrontDoor::ExecuteBatch(std::vector<std::unique_ptr<Request>> batch) {
  const uint64_t picked_up_ns = metrics::NowNs();
  std::vector<Request*> live;
  live.reserve(batch.size());
  for (auto& req : batch) {
    queue_wait_ns_->Record(picked_up_ns - req->enqueue_ns);
    if (req->deadline_ns != 0 && picked_up_ns > req->deadline_ns) {
      expired_->Add(1);
      req->CompleteError(Status::DeadlineExceeded(
          "deadline passed while queued at the front door"));
      continue;
    }
    live.push_back(req.get());
  }

  // Sketch raw top-k query vectors with ONE Sketcher for the whole batch —
  // the scratch-reuse coalescing the per-caller synchronous path never
  // gets.
  std::unique_ptr<Sketcher> sketcher;
  for (Request* req : live) {
    if (req->kind != Request::Kind::kTopK || !req->query_vec.has_value()) {
      continue;
    }
    if (sketcher == nullptr) {
      auto made = store_->family().MakeSketcher();
      if (!made.ok()) {
        // Family cannot sketch: fail every raw-vector request up front.
        for (Request* r : live) {
          if (r->kind == Request::Kind::kTopK && r->query_vec.has_value() &&
              r->query_sketch == nullptr) {
            r->CompleteError(made.status());
          }
        }
        break;
      }
      sketcher = std::move(made).value();
    }
    std::unique_ptr<AnySketch> sketch = store_->family().NewSketch();
    Status st = sketcher->Sketch(*req->query_vec, sketch.get());
    if (st.ok()) req->query_sketch = std::move(sketch);
    // A failed sketch leaves query_sketch null; completed below.
  }

  // Partition: estimates run directly (snapshot lookups), top-ks go
  // through the engine's one-traversal batch API.
  std::vector<Request*> topks;
  std::vector<const AnySketch*> topk_queries;
  std::vector<size_t> topk_ks;
  for (Request* req : live) {
    if (req->kind == Request::Kind::kEstimate) {
      EstimateResult result = engine_.EstimateInnerProduct(req->id_a,
                                                           req->id_b);
      completed_->Add(1);
      latency_ns_->Record(metrics::NowNs() - req->enqueue_ns);
      req->est_done(std::move(result));
      continue;
    }
    if (req->query_sketch == nullptr) {
      req->CompleteError(Status::InvalidArgument(
          "query vector could not be sketched with the store's family"));
      continue;
    }
    topks.push_back(req);
    topk_queries.push_back(req->query_sketch.get());
    topk_ks.push_back(req->k);
  }
  if (topks.empty()) return;

  std::vector<TopKResult> results =
      engine_.TopKSketchBatch(topk_queries, topk_ks);
  IPS_CHECK(results.size() == topks.size());
  for (size_t i = 0; i < topks.size(); ++i) {
    completed_->Add(1);
    latency_ns_->Record(metrics::NowNs() - topks[i]->enqueue_ns);
    topks[i]->topk_done(std::move(results[i]));
  }
}

FrontDoorFuture<double> FrontDoor::SubmitEstimate(uint64_t id_a, uint64_t id_b,
                                                  uint64_t deadline_ns) {
  auto state =
      std::make_shared<front_door_internal::FutureState<double>>();
  SubmitEstimate(
      id_a, id_b,
      [state](EstimateResult r) {
        front_door_internal::Complete(state, std::move(r));
      },
      deadline_ns);
  return FrontDoorFuture<double>(std::move(state));
}

void FrontDoor::SubmitEstimate(uint64_t id_a, uint64_t id_b,
                               EstimateCallback done, uint64_t deadline_ns) {
  IPS_CHECK(done != nullptr);
  auto req = std::make_unique<Request>();
  req->kind = Request::Kind::kEstimate;
  req->id_a = id_a;
  req->id_b = id_b;
  req->est_done = std::move(done);
  req->deadline_ns = deadline_ns;
  Enqueue(std::move(req));
}

FrontDoorFuture<std::vector<QueryHit>> FrontDoor::SubmitTopK(
    const SparseVector& query, size_t k, uint64_t deadline_ns) {
  auto state = std::make_shared<
      front_door_internal::FutureState<std::vector<QueryHit>>>();
  SubmitTopK(
      query, k,
      [state](TopKResult r) {
        front_door_internal::Complete(state, std::move(r));
      },
      deadline_ns);
  return FrontDoorFuture<std::vector<QueryHit>>(std::move(state));
}

void FrontDoor::SubmitTopK(SparseVector query, size_t k, TopKCallback done,
                           uint64_t deadline_ns) {
  IPS_CHECK(done != nullptr);
  auto req = std::make_unique<Request>();
  req->kind = Request::Kind::kTopK;
  req->query_vec.emplace(std::move(query));
  req->k = k;
  req->topk_done = std::move(done);
  req->deadline_ns = deadline_ns;
  Enqueue(std::move(req));
}

FrontDoorFuture<std::vector<QueryHit>> FrontDoor::SubmitTopKSketch(
    std::unique_ptr<AnySketch> query, size_t k, uint64_t deadline_ns) {
  auto state = std::make_shared<
      front_door_internal::FutureState<std::vector<QueryHit>>>();
  SubmitTopKSketch(
      std::move(query), k,
      [state](TopKResult r) {
        front_door_internal::Complete(state, std::move(r));
      },
      deadline_ns);
  return FrontDoorFuture<std::vector<QueryHit>>(std::move(state));
}

void FrontDoor::SubmitTopKSketch(std::unique_ptr<AnySketch> query, size_t k,
                                 TopKCallback done, uint64_t deadline_ns) {
  IPS_CHECK(done != nullptr);
  IPS_CHECK(query != nullptr);
  auto req = std::make_unique<Request>();
  req->kind = Request::Kind::kTopK;
  req->query_sketch = std::move(query);
  req->k = k;
  req->topk_done = std::move(done);
  req->deadline_ns = deadline_ns;
  Enqueue(std::move(req));
}

}  // namespace ipsketch
