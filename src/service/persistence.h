// Whole-store save/load — the catalog survives process restarts.
//
// File format (little-endian, doubles as IEEE-754 bit patterns; built from
// the same wire primitives as sketch/serialize.h):
//
//   [magic u32 "IPST"][version u8]
//   [dimension u64][num_shards u64]
//   [num_samples u64][seed u64][L u64][engine u8]
//   [count u64] then per entry: [id u64][len u64][SerializeWmh bytes]
//   [fnv1a-64 checksum of all preceding bytes, u64]
//
// Each entry's payload is exactly the per-sketch wire format, so a store
// file is also a valid container of individually-parseable sketches. Load
// verifies the checksum and then every frame, so neither structural damage
// nor a flipped payload byte ever yields a silently wrong store.

#ifndef IPSKETCH_SERVICE_PERSISTENCE_H_
#define IPSKETCH_SERVICE_PERSISTENCE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "service/sketch_store.h"

namespace ipsketch {

/// Encodes the whole store (options + every sketch) to bytes. The encoding
/// of a given store state is deterministic: entries are written in
/// (shard, id) order from per-shard snapshots.
std::string EncodeSketchStore(const SketchStore& store);

/// Decodes a store previously produced by EncodeSketchStore, reproducing
/// options, shard layout, and every sketch. InvalidArgument on malformed
/// bytes.
Result<SketchStore> DecodeSketchStore(std::string_view bytes);

/// Writes EncodeSketchStore(store) to `path` atomically enough for a single
/// writer (write to a temp file in place is NOT attempted — this is a plain
/// truncate-and-write). Internal error statuses on I/O failure.
Status SaveSketchStore(const SketchStore& store, const std::string& path);

/// Reads `path` and decodes it. NotFound if the file cannot be opened.
Result<SketchStore> LoadSketchStore(const std::string& path);

}  // namespace ipsketch

#endif  // IPSKETCH_SERVICE_PERSISTENCE_H_
