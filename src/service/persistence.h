// Whole-store save/load — the catalog survives process restarts.
//
// File format v2 (little-endian, doubles as IEEE-754 bit patterns; built
// from the same wire primitives as sketch/serialize.h):
//
//   [magic u32 "IPST"][version u8 = 2]
//   [family name, u64-length-prefixed bytes][num_shards u64]
//   [resolved FamilyOptions: dimension u64, num_samples u64, seed u64,
//    param count u64, then (key bytes, value bytes) per param]
//   [count u64] then per entry: [id u64][len u64][family Serialize bytes]
//   [fnv1a-64 checksum of all preceding bytes, u64]
//
// The header carries the *family tag* and the family's fully resolved
// options, so a file is self-describing for any registered family and a
// reopening process can verify it got the catalog it expected
// (LoadSketchStoreAs). Version-1 files — the WMH-only format that predates
// the SketchFamily interface — are still readable: their fixed header maps
// onto family "wmh" with params {L, engine}.
//
// Each entry's payload is exactly the per-sketch wire format, so a store
// file is also a valid container of individually-parseable sketches. Load
// verifies the checksum and then every frame, so neither structural damage
// nor a flipped payload byte ever yields a silently wrong store.
//
// Locking contract (see common/mutex.h): persistence holds no locks of its
// own. Save reads through SketchStore::ShardSnapshot — each shard copied
// under its kStoreShard Mutex, nothing held across shards or during file
// I/O — and Load builds a private store no other thread can see yet, so
// these functions never appear in any lock-order chain.

#ifndef IPSKETCH_SERVICE_PERSISTENCE_H_
#define IPSKETCH_SERVICE_PERSISTENCE_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "service/sketch_store.h"

namespace ipsketch {

/// Encodes the whole store (family + options + every sketch) to bytes. The
/// encoding of a given store state is deterministic: entries are written in
/// (shard, id) order from per-shard snapshots.
std::string EncodeSketchStore(const SketchStore& store);

/// Decodes a store previously produced by EncodeSketchStore (version 2) or
/// by the pre-SketchFamily WMH-only format (version 1), reproducing family,
/// options, shard layout, and every sketch. InvalidArgument on malformed
/// bytes.
Result<SketchStore> DecodeSketchStore(std::string_view bytes);

/// Ok iff the store's family tag and resolved options match `expected`
/// (family name, dimension, num_samples, seed, and every family param;
/// `expected` is resolved through the registry first, so defaults like
/// WMH's L = 0 compare correctly). The failure Status names the first
/// mismatching field — the guard that keeps a process from serving
/// estimates out of a catalog built with different parameters.
Status CheckStoreMatches(const SketchStore& store,
                         const SketchStoreOptions& expected);

/// Writes EncodeSketchStore(store) to `path` atomically enough for a single
/// writer (write to a temp file in place is NOT attempted — this is a plain
/// truncate-and-write). Internal error statuses on I/O failure.
Status SaveSketchStore(const SketchStore& store, const std::string& path);

/// Reads `path` and decodes it. NotFound if the file cannot be opened.
Result<SketchStore> LoadSketchStore(const std::string& path);

/// LoadSketchStore + CheckStoreMatches against `expected`: the open path
/// for a service that already knows which catalog it is supposed to serve.
/// FailedPrecondition (with the mismatching field named) if the file holds
/// a different family or different options.
Result<SketchStore> LoadSketchStoreAs(const std::string& path,
                                      const SketchStoreOptions& expected);

}  // namespace ipsketch

#endif  // IPSKETCH_SERVICE_PERSISTENCE_H_
