#include "service/metrics.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>

namespace ipsketch {
namespace metrics {

#ifndef IPSKETCH_METRICS_DISABLED_BUILD
namespace internal {

std::atomic<int> g_enabled{-1};

bool ResolveEnabledFromEnv() {
  // getenv is read-once at first metric touch; nothing in the process
  // calls setenv, so the mt-unsafe warning is a false positive here.
  const char* env = std::getenv("IPSKETCH_METRICS");  // NOLINT(concurrency-mt-unsafe)
  bool on = true;
  if (env != nullptr) {
    std::string v(env);
    for (char& c : v) c = static_cast<char>(std::tolower(c));
    if (v == "off" || v == "0" || v == "false") on = false;
  }
  // Several threads may race the first resolution; they all compute the
  // same answer from the same environment, so last-write-wins is benign.
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}

}  // namespace internal

void SetEnabledForTesting(bool enabled) {
  internal::g_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
}
#endif  // IPSKETCH_METRICS_DISABLED_BUILD

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

size_t TlsShardSlot() {
  static std::atomic<uint32_t> next{0};
  thread_local const size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kShards;
  return slot;
}

double HistogramSnapshot::Percentile(double q) const {
  if (count == 0) return 0.0;
  if (q >= 100.0) return static_cast<double>(max);
  const double target = std::max(q, 0.0) / 100.0 * static_cast<double>(count);
  uint64_t cum = 0;
  for (size_t b = 0; b < kNumBuckets; ++b) {
    const uint64_t in_bucket = buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cum + in_bucket) >= target) {
      double lower = static_cast<double>(BucketLowerBound(b));
      // The overflow bucket has no upper boundary; the observed max caps
      // every bucket, so the top of the distribution interpolates toward
      // the true maximum instead of a synthetic boundary.
      double upper = b + 1 < kNumBuckets
                         ? static_cast<double>(BucketLowerBound(b + 1))
                         : static_cast<double>(max);
      upper = std::min(upper, static_cast<double>(max));
      lower = std::min(lower, upper);
      const double frac =
          (target - static_cast<double>(cum)) / static_cast<double>(in_bucket);
      return lower + (upper - lower) * frac;
    }
    cum += in_bucket;
  }
  return static_cast<double>(max);
}

HistogramSnapshot Histogram::Snapshot() const {
  HistogramSnapshot out;
  for (const Shard& s : shards_) {
    for (size_t b = 0; b < kNumBuckets; ++b) {
      const uint64_t c = s.counts[b].load(std::memory_order_relaxed);
      out.buckets[b] += c;
      out.count += c;
    }
    out.sum += s.sum.load(std::memory_order_relaxed);
    out.max = std::max(out.max, s.max.load(std::memory_order_relaxed));
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  // Deliberately leaked: components may record or subtract gauges from
  // static-storage destructors, which can run after any exit-time
  // destruction order the registry could pick.
  static MetricsRegistry* g = new MetricsRegistry();
  return *g;
}

Counter& MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
    if (!help.empty()) help_.emplace(name, help);
  }
  return *slot;
}

Gauge& MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Gauge>();
    if (!help.empty()) help_.emplace(name, help);
  }
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
    if (!help.empty()) help_.emplace(name, help);
  }
  return *slot;
}

namespace {

// Splits `name` into the metric base name and an embedded label block:
// `occupancy{shard="3"}` -> ("occupancy", `shard="3"`). No braces -> empty
// labels.
void SplitLabels(const std::string& name, std::string* base,
                 std::string* labels) {
  const size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *base = name;
    labels->clear();
    return;
  }
  *base = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

// `base{labels,extra}` with correct comma handling for any emptiness.
std::string JoinLabels(const std::string& base, const std::string& labels,
                       const std::string& extra) {
  std::string all = labels;
  if (!all.empty() && !extra.empty()) all += ",";
  all += extra;
  if (all.empty()) return base;
  return base + "{" + all + "}";
}

void AppendHeader(std::string* out, const std::string& base,
                  const std::string& help, const char* type,
                  std::string* last_base) {
  // One HELP/TYPE header per base name even when labeled instances repeat
  // (the map is sorted, so instances of a base are adjacent).
  if (base == *last_base) return;
  *last_base = base;
  if (!help.empty()) *out += "# HELP " + base + " " + help + "\n";
  *out += "# TYPE " + base + " " + std::string(type) + "\n";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string MetricsRegistry::RenderText() const {
  MutexLock lock(&mu_);
  std::string out;
  std::string base, labels, last_base;
  char buf[160];
  for (const auto& [name, counter] : counters_) {
    SplitLabels(name, &base, &labels);
    auto help = help_.find(name);
    AppendHeader(&out, base, help == help_.end() ? "" : help->second,
                 "counter", &last_base);
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(counter->Value()));
    out += JoinLabels(base, labels, "") + buf;
  }
  for (const auto& [name, gauge] : gauges_) {
    SplitLabels(name, &base, &labels);
    auto help = help_.find(name);
    AppendHeader(&out, base, help == help_.end() ? "" : help->second, "gauge",
                 &last_base);
    std::snprintf(buf, sizeof(buf), " %lld\n",
                  static_cast<long long>(gauge->Value()));
    out += JoinLabels(base, labels, "") + buf;
  }
  for (const auto& [name, hist] : histograms_) {
    SplitLabels(name, &base, &labels);
    auto help = help_.find(name);
    AppendHeader(&out, base, help == help_.end() ? "" : help->second,
                 "histogram", &last_base);
    const HistogramSnapshot snap = hist->Snapshot();
    uint64_t cum = 0;
    for (size_t b = 0; b < kNumBuckets; ++b) {
      if (snap.buckets[b] == 0) continue;
      cum += snap.buckets[b];
      // `le` is the bucket's inclusive upper edge; the overflow bucket
      // only appears through +Inf below.
      if (b + 1 < kNumBuckets) {
        std::snprintf(buf, sizeof(buf), "le=\"%llu\"",
                      static_cast<unsigned long long>(BucketLowerBound(b + 1) -
                                                      1));
        std::string labeled = JoinLabels(base + "_bucket", labels, buf);
        std::snprintf(buf, sizeof(buf), " %llu\n",
                      static_cast<unsigned long long>(cum));
        out += labeled + buf;
      }
    }
    std::string inf = JoinLabels(base + "_bucket", labels, "le=\"+Inf\"");
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(snap.count));
    out += inf + buf;
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(snap.sum));
    out += JoinLabels(base + "_sum", labels, "") + buf;
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(snap.count));
    out += JoinLabels(base + "_count", labels, "") + buf;
  }
  return out;
}

std::string MetricsRegistry::RenderJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\n  \"counters\": {";
  char buf[256];
  bool first = true;
  for (const auto& [name, counter] : counters_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %llu",
                  first ? "" : ",", JsonEscape(name).c_str(),
                  static_cast<unsigned long long>(counter->Value()));
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"gauges\": {";
  first = true;
  for (const auto& [name, gauge] : gauges_) {
    std::snprintf(buf, sizeof(buf), "%s\n    \"%s\": %lld",
                  first ? "" : ",", JsonEscape(name).c_str(),
                  static_cast<long long>(gauge->Value()));
    out += buf;
    first = false;
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  for (const auto& [name, hist] : histograms_) {
    const HistogramSnapshot snap = hist->Snapshot();
    std::snprintf(
        buf, sizeof(buf),
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"mean\": %.1f, "
        "\"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f, \"max\": %llu}",
        first ? "" : ",", JsonEscape(name).c_str(),
        static_cast<unsigned long long>(snap.count),
        static_cast<unsigned long long>(snap.sum), snap.Mean(),
        snap.Percentile(50), snap.Percentile(95), snap.Percentile(99),
        static_cast<unsigned long long>(snap.max));
    out += buf;
    first = false;
  }
  out += first ? "}\n" : "\n  }\n";
  out += "}\n";
  return out;
}

uint64_t QueryTrace::total_ns() const {
  uint64_t total = 0;
  for (size_t i = 0; i < size_; ++i) total += spans_[i].duration_ns;
  return total;
}

std::string QueryTrace::ToString() const {
  std::string out;
  char buf[96];
  for (size_t i = 0; i < size_; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%s=%.3fms", i == 0 ? "" : " ",
                  spans_[i].stage,
                  static_cast<double>(spans_[i].duration_ns) / 1e6);
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), "%stotal=%.3fms", size_ == 0 ? "" : " ",
                static_cast<double>(total_ns()) / 1e6);
  out += buf;
  if (dropped_ > 0) {
    std::snprintf(buf, sizeof(buf), " (+%zu spans dropped)", dropped_);
    out += buf;
  }
  return out;
}

}  // namespace metrics
}  // namespace ipsketch
