// The service's asynchronous front door: a future/callback query API
// backed by a bounded admission queue that batches concurrent callers onto
// the ThreadPool.
//
// Why a queue instead of a thread per caller: under overload a synchronous
// API makes every caller's latency grow without bound (the open-loop
// saturation sweep in bench_saturation shows TopK p50 collapsing from µs to
// hundreds of ms). The front door instead
//
//   1. admits requests into a bounded queue and *sheds* the excess with an
//      immediate Unavailable (counted on ipsketch_frontdoor_shed_total), so
//      accepted work has bounded queueing delay;
//   2. expires requests whose deadline passed while queued
//      (DeadlineExceeded) instead of wasting a scan on an answer nobody is
//      waiting for;
//   3. drains the queue in batches and runs each batch through
//      QueryEngine::TopKSketchBatch, which traverses the catalog once per
//      *batch* — shards are pinned/locked once for all queries, raw query
//      vectors are sketched with one shared Sketcher, and with a banded
//      index attached the SlabCatalog 1-vs-many kernels
//      (EstimateMany/EstimateAll) run over contiguous lanes;
//   4. reads the store exclusively through the epoch-snapshot path
//      (ReadMode::kSnapshot): zero shard-mutex acquisitions, so query
//      traffic never contends with ingest.
//
// Locking (common/mutex.h): the admission queue is guarded by a
// kFrontDoorQueue Mutex held only for push/pop and dispatch bookkeeping.
// Batch execution, completion callbacks, and future notification all run
// with the queue lock released; future states use a kLeaf Mutex. User
// callbacks run on a pool worker (or, for shed requests, the submitting
// thread) — they must be fast and must not block.

#ifndef IPSKETCH_SERVICE_FRONT_DOOR_H_
#define IPSKETCH_SERVICE_FRONT_DOOR_H_

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "service/metrics.h"
#include "service/query_engine.h"
#include "service/sketch_store.h"
#include "service/thread_pool.h"
#include "sketch/family.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Tuning knobs for FrontDoor.
struct FrontDoorOptions {
  /// Admission-queue capacity. A submit that finds the queue full is shed
  /// immediately with Unavailable; together with the batch service time
  /// this bounds the queueing delay of every accepted request.
  size_t max_queue_depth = 256;
  /// Most requests coalesced into one batch execution.
  size_t max_batch = 32;
  /// Batches allowed in flight at once (0 = the pool's thread count).
  /// More concurrent batches = more parallelism across shards; 1 gives
  /// strict FIFO completion order.
  size_t max_concurrent_batches = 0;
  /// Deadline budget applied to requests submitted without one
  /// (0 = no deadline). Measured from submit time.
  uint64_t default_deadline_ns = 0;
};

namespace front_door_internal {

/// Shared completion slot of one request: result + wakeup for the future
/// side, set exactly once by the front door.
template <typename T>
struct FutureState {
  /// kLeaf: completion and Take both hold it briefly; nothing is acquired
  /// under it.
  Mutex mu{LockRank::kLeaf};
  CondVar cv;
  std::optional<Result<T>> result IPS_GUARDED_BY(mu);
};

template <typename T>
void Complete(const std::shared_ptr<FutureState<T>>& state, Result<T> r) {
  MutexLock lock(&state->mu);
  state->result.emplace(std::move(r));
  state->cv.NotifyAll();
}

}  // namespace front_door_internal

/// Handle to one submitted request's eventual result. Every submitted
/// request is completed exactly once — with its answer, an error from the
/// engine, Unavailable (shed or shutdown), or DeadlineExceeded — so Take()
/// always returns. Copyable (all copies share the result); Take moves the
/// result out, so call it from one place.
template <typename T>
class FrontDoorFuture {
 public:
  FrontDoorFuture() = default;

  /// False only for a default-constructed handle.
  bool valid() const { return state_ != nullptr; }

  /// True once the result is set (non-blocking).
  bool Ready() const {
    MutexLock lock(&state_->mu);
    return state_->result.has_value();
  }

  /// Blocks until the result is set and moves it out.
  Result<T> Take() {
    MutexLock lock(&state_->mu);
    while (!state_->result.has_value()) state_->cv.Wait(state_->mu);
    return std::move(*state_->result);
  }

 private:
  friend class FrontDoor;
  explicit FrontDoorFuture(
      std::shared_ptr<front_door_internal::FutureState<T>> state)
      : state_(std::move(state)) {}

  std::shared_ptr<front_door_internal::FutureState<T>> state_;
};

/// The admission-queued async query API over one store. Thread-safe; see
/// the file comment for the model. The store, pool, and index must outlive
/// the front door.
class FrontDoor {
 public:
  using EstimateResult = Result<double>;
  using TopKResult = Result<std::vector<QueryHit>>;
  using EstimateCallback = std::function<void(EstimateResult)>;
  using TopKCallback = std::function<void(TopKResult)>;

  /// Serves `store` through `pool`. With a non-null `index` (attached to
  /// the same store), top-k batches follow `policy`; without one they run
  /// the exact snapshot scan. `pool` may be null — dispatch then runs
  /// inline on the submitting thread (degenerate but correct; useful in
  /// tests).
  FrontDoor(const SketchStore* store, ThreadPool* pool,
            const FrontDoorOptions& options = {},
            const BandedIndex* index = nullptr,
            IndexPolicy policy = IndexPolicy::kExactScan);

  /// Sheds everything still queued (each completes with Unavailable) and
  /// waits for batches already executing to finish, so no request is ever
  /// left incomplete and no callback outlives the front door.
  ~FrontDoor();

  FrontDoor(const FrontDoor&) = delete;
  FrontDoor& operator=(const FrontDoor&) = delete;

  const FrontDoorOptions& options() const { return options_; }

  /// Estimates ⟨a, b⟩ between two stored vectors. `deadline_ns` is a
  /// relative budget from now (0 = options().default_deadline_ns).
  FrontDoorFuture<double> SubmitEstimate(uint64_t id_a, uint64_t id_b,
                                         uint64_t deadline_ns = 0);
  void SubmitEstimate(uint64_t id_a, uint64_t id_b, EstimateCallback done,
                      uint64_t deadline_ns = 0);

  /// Top-k against a raw query vector. The vector is copied at submit and
  /// sketched inside the batch (one Sketcher per batch), keeping the
  /// expensive sketching off the submitting thread.
  FrontDoorFuture<std::vector<QueryHit>> SubmitTopK(const SparseVector& query,
                                                    size_t k,
                                                    uint64_t deadline_ns = 0);
  void SubmitTopK(SparseVector query, size_t k, TopKCallback done,
                  uint64_t deadline_ns = 0);

  /// Top-k against a pre-built query sketch (must match the store family).
  FrontDoorFuture<std::vector<QueryHit>> SubmitTopKSketch(
      std::unique_ptr<AnySketch> query, size_t k, uint64_t deadline_ns = 0);
  void SubmitTopKSketch(std::unique_ptr<AnySketch> query, size_t k,
                        TopKCallback done, uint64_t deadline_ns = 0);

 private:
  struct Request;  // front_door.cc — queue entries never escape

  /// Admits `req` (or sheds it) and makes sure a dispatcher is running.
  void Enqueue(std::unique_ptr<Request> req);

  /// Pops and executes batches until the queue is empty or shutdown.
  void DispatchLoop();

  /// Expires, sketches, and runs one popped batch, completing every
  /// request. Runs with no front-door lock held.
  void ExecuteBatch(std::vector<std::unique_ptr<Request>> batch);

  const SketchStore* store_;
  ThreadPool* pool_;
  FrontDoorOptions options_;
  /// Snapshot-mode engine; serial inside a batch (parallelism comes from
  /// concurrent batches, each on its own pool worker).
  QueryEngine engine_;

  mutable Mutex mu_{LockRank::kFrontDoorQueue};
  std::deque<std::unique_ptr<Request>> queue_ IPS_GUARDED_BY(mu_);
  size_t active_batches_ IPS_GUARDED_BY(mu_) = 0;
  bool shutting_down_ IPS_GUARDED_BY(mu_) = false;
  /// Signaled when the last in-flight batch retires (destructor wait).
  CondVar drained_cv_;

  // Process-wide front-door metrics (registry-owned).
  metrics::Counter* submitted_ = nullptr;
  metrics::Counter* completed_ = nullptr;
  metrics::Counter* shed_ = nullptr;
  metrics::Counter* expired_ = nullptr;
  metrics::Gauge* queue_depth_ = nullptr;
  metrics::Histogram* queue_wait_ns_ = nullptr;
  metrics::Histogram* batch_size_ = nullptr;
  metrics::Histogram* latency_ns_ = nullptr;
};

}  // namespace ipsketch

#endif  // IPSKETCH_SERVICE_FRONT_DOOR_H_
