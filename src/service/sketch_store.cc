#include "service/sketch_store.h"

#include <algorithm>

#include "common/rng.h"
#include "core/rounding.h"

namespace ipsketch {

Status SketchStoreOptions::Validate() const {
  if (dimension == 0) {
    return Status::InvalidArgument("store dimension must be positive");
  }
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  return sketch.Validate();
}

SketchStore::SketchStore(const SketchStoreOptions& options)
    : options_(options) {
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

Result<SketchStore> SketchStore::Make(const SketchStoreOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  SketchStoreOptions resolved = options;
  // Resolve L here so every sketch — including ones built by callers from
  // options() — agrees on it, and so it survives persistence verbatim.
  if (resolved.sketch.L == 0) {
    resolved.sketch.L = DefaultL(resolved.dimension);
  }
  return SketchStore(resolved);
}

size_t SketchStore::ShardOf(uint64_t id) const {
  // Mix first: sequential ids would otherwise all land in shard id % N for
  // small N and defeat the sharding.
  return static_cast<size_t>(Mix64(id) % shards_.size());
}

Status SketchStore::CheckCompatible(const WmhSketch& sketch) const {
  if (sketch.num_samples() != options_.sketch.num_samples ||
      sketch.seed != options_.sketch.seed || sketch.L != options_.sketch.L ||
      sketch.dimension != options_.dimension) {
    return Status::InvalidArgument(
        "sketch parameters do not match the store's (m, seed, L, dimension)");
  }
  if (sketch.hashes.size() != sketch.values.size()) {
    return Status::InvalidArgument("sketch hash/value length mismatch");
  }
  return Status::Ok();
}

size_t SketchStore::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->map.size();
  }
  return total;
}

Status SketchStore::Insert(uint64_t id, WmhSketch sketch) {
  IPS_RETURN_IF_ERROR(CheckCompatible(sketch));
  Shard& shard = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.map.insert_or_assign(id, std::move(sketch));
  return Status::Ok();
}

Status SketchStore::BuildAndInsert(uint64_t id, const SparseVector& vec) {
  if (vec.dimension() != options_.dimension) {
    return Status::InvalidArgument("vector dimension does not match store");
  }
  auto made = WmhSketcher::Make(options_.sketch);
  IPS_RETURN_IF_ERROR(made.status());
  WmhSketcher sketcher = std::move(made).value();
  WmhSketch sketch;
  IPS_RETURN_IF_ERROR(sketcher.Sketch(vec, &sketch));
  return Insert(id, std::move(sketch));
}

Status SketchStore::BuildAndInsertBatch(
    const std::vector<std::pair<uint64_t, SparseVector>>& batch,
    ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() == 1 || batch.size() <= 1) {
    // One sketcher for the whole batch — the same scratch reuse the chunked
    // path gets, so serial and parallel ingest differ only in parallelism.
    auto made = WmhSketcher::Make(options_.sketch);
    IPS_RETURN_IF_ERROR(made.status());
    WmhSketcher sketcher = std::move(made).value();
    WmhSketch sketch;
    for (const auto& [id, vec] : batch) {
      if (vec.dimension() != options_.dimension) {
        return Status::InvalidArgument("vector dimension does not match store");
      }
      IPS_RETURN_IF_ERROR(sketcher.Sketch(vec, &sketch));
      IPS_RETURN_IF_ERROR(Insert(id, std::move(sketch)));
    }
    return Status::Ok();
  }

  // Carve the batch into one contiguous chunk per worker: each chunk gets
  // its own WmhSketcher (scratch reuse across its vectors) and inserts as
  // it goes, so sketching — the expensive part — runs fully in parallel and
  // shard locks are held only for map writes. Chunks share no state except
  // the first-error slot.
  const size_t chunks = std::min(batch.size(), pool->num_threads());
  const size_t per_chunk = (batch.size() + chunks - 1) / chunks;
  std::mutex error_mu;
  Status first_error;
  pool->ParallelFor(chunks, [&](size_t c) {
    const size_t begin = c * per_chunk;
    const size_t end = std::min(begin + per_chunk, batch.size());
    auto made = WmhSketcher::Make(options_.sketch);
    if (!made.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (first_error.ok()) first_error = made.status();
      return;
    }
    WmhSketcher sketcher = std::move(made).value();
    WmhSketch sketch;
    for (size_t i = begin; i < end; ++i) {
      const auto& [id, vec] = batch[i];
      Status st;
      if (vec.dimension() != options_.dimension) {
        st = Status::InvalidArgument("vector dimension does not match store");
      } else {
        st = sketcher.Sketch(vec, &sketch);
        if (st.ok()) st = Insert(id, std::move(sketch));
      }
      if (!st.ok()) {
        std::lock_guard<std::mutex> lock(error_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
    }
  });
  return first_error;
}

bool SketchStore::Contains(uint64_t id) const {
  const Shard& shard = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.map.find(id) != shard.map.end();
}

Result<WmhSketch> SketchStore::Lookup(uint64_t id) const {
  const Shard& shard = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(id);
  if (it == shard.map.end()) {
    return Status::NotFound("no sketch stored under id " + std::to_string(id));
  }
  return it->second;
}

Status SketchStore::Erase(uint64_t id) {
  Shard& shard = *shards_[ShardOf(id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.erase(id) == 0) {
    return Status::NotFound("no sketch stored under id " + std::to_string(id));
  }
  return Status::Ok();
}

bool SketchStore::ForEachInShard(
    size_t shard_index,
    const std::function<bool(uint64_t, const WmhSketch&)>& fn) const {
  IPS_CHECK(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  for (const auto& [id, sketch] : shard.map) {
    if (!fn(id, sketch)) return false;
  }
  return true;
}

std::vector<StoreEntry> SketchStore::ShardSnapshot(size_t shard_index) const {
  IPS_CHECK(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  std::vector<StoreEntry> out;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    out.reserve(shard.map.size());
    for (const auto& [id, sketch] : shard.map) out.push_back({id, sketch});
  }
  std::sort(out.begin(), out.end(),
            [](const StoreEntry& a, const StoreEntry& b) { return a.id < b.id; });
  return out;
}

std::vector<StoreEntry> SketchStore::Snapshot() const {
  std::vector<StoreEntry> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    auto shard_entries = ShardSnapshot(s);
    out.insert(out.end(), std::make_move_iterator(shard_entries.begin()),
               std::make_move_iterator(shard_entries.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const StoreEntry& a, const StoreEntry& b) { return a.id < b.id; });
  return out;
}

std::vector<uint64_t> SketchStore::Ids() const {
  std::vector<uint64_t> out;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    for (const auto& [id, sketch] : shard->map) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ipsketch
