#include "service/sketch_store.h"

#include <algorithm>

#include "common/rng.h"

namespace ipsketch {

const AnySketch* ShardView::Find(uint64_t id) const {
  auto it = std::lower_bound(ids.begin(), ids.end(), id);
  if (it == ids.end() || *it != id) return nullptr;
  return sketches[static_cast<size_t>(it - ids.begin())].get();
}

Status SketchStoreOptions::Validate() const {
  if (family.empty()) {
    return Status::InvalidArgument("store family name must be non-empty");
  }
  if (sketch.dimension == 0) {
    return Status::InvalidArgument("store dimension must be positive");
  }
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  return Status::Ok();
}

SketchStore::SketchStore(SketchStoreOptions options,
                         std::shared_ptr<const SketchFamily> family)
    : options_(std::move(options)), family_(std::move(family)) {
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    // Publish the empty epoch-0 view so PinShard never observes null.
    auto empty = std::make_shared<ShardView>();
    empty->family = family_;
    shards_.back()->view.store(std::move(empty));
  }
  auto& registry = metrics::MetricsRegistry::Global();
  inserts_ = &registry.GetCounter("ipsketch_store_inserts_total",
                                  "Sketches inserted (including replaces)");
  erases_ = &registry.GetCounter("ipsketch_store_erases_total",
                                 "Sketches erased");
  ingest_ns_ = &registry.GetHistogram(
      "ipsketch_store_ingest_ns",
      "Per-vector ingest latency: sketch build plus shard insert");
  scan_lock_ns_ = &registry.GetHistogram(
      "ipsketch_store_scan_lock_ns",
      "Shard-lock acquire plus hold time of in-place shard scans");
  size_gauge_ = &registry.GetGauge("ipsketch_store_size",
                                   "Live sketches across all stores");
  shard_occupancy_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shard_occupancy_.push_back(&registry.GetGauge(
        "ipsketch_store_shard_occupancy{shard=\"" + std::to_string(i) + "\"}",
        "Live sketches per shard index (skew = max/mean across shards)"));
  }
}

void SketchStore::RetireOccupancy() {
  for (size_t s = 0; s < shards_.size(); ++s) {
    MutexLock lock(&shards_[s]->mu);
    const int64_t n = static_cast<int64_t>(shards_[s]->map.size());
    if (n == 0) continue;
    size_gauge_->Add(-n);
    shard_occupancy_[s]->Add(-n);
  }
}

SketchStore::~SketchStore() { RetireOccupancy(); }

SketchStore& SketchStore::operator=(SketchStore&& other) noexcept {
  if (this != &other) {
    RetireOccupancy();
    options_ = std::move(other.options_);
    family_ = std::move(other.family_);
    shards_ = std::move(other.shards_);
    inserts_ = other.inserts_;
    erases_ = other.erases_;
    ingest_ns_ = other.ingest_ns_;
    scan_lock_ns_ = other.scan_lock_ns_;
    size_gauge_ = other.size_gauge_;
    shard_occupancy_ = std::move(other.shard_occupancy_);
    // The header contract forbids moving while a listener is attached (the
    // listener points at the old store object); transfer anyway so the
    // fields stay coherent.
    listener_mu_ = std::move(other.listener_mu_);
    listener_ = other.listener_;
    other.listener_ = nullptr;
  }
  return *this;
}

Result<SketchStore> SketchStore::Make(const SketchStoreOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  auto family = MakeFamily(options.family, options.sketch);
  IPS_RETURN_IF_ERROR(family.status());
  SketchStoreOptions resolved = options;
  // The family resolves option defaults (e.g. WMH's L); echo the resolved
  // identity back into the store options so every sketch — including ones
  // built by callers from options() — agrees on it, and so it survives
  // persistence verbatim.
  resolved.sketch = family.value()->options();
  return SketchStore(std::move(resolved), std::move(family).value());
}

void SketchStore::PublishInsertLocked(
    Shard& shard, uint64_t id,
    const std::shared_ptr<const AnySketch>& sketch) {
  const ShardViewPtr prev = shard.view.load(std::memory_order_relaxed);
  auto next = std::make_shared<ShardView>();
  next->epoch = ++shard.version;
  next->family = family_;
  const auto pos = std::lower_bound(prev->ids.begin(), prev->ids.end(), id);
  const size_t i = static_cast<size_t>(pos - prev->ids.begin());
  const bool replace = pos != prev->ids.end() && *pos == id;
  const size_t new_size = prev->ids.size() + (replace ? 0 : 1);
  next->ids.reserve(new_size);
  next->sketches.reserve(new_size);
  next->ids.assign(prev->ids.begin(), pos);
  next->sketches.assign(prev->sketches.begin(), prev->sketches.begin() + i);
  next->ids.push_back(id);
  next->sketches.push_back(sketch);
  next->ids.insert(next->ids.end(), pos + (replace ? 1 : 0), prev->ids.end());
  next->sketches.insert(next->sketches.end(),
                        prev->sketches.begin() + i + (replace ? 1 : 0),
                        prev->sketches.end());
  shard.view.store(std::move(next));
}

void SketchStore::PublishEraseLocked(Shard& shard, uint64_t id) {
  const ShardViewPtr prev = shard.view.load(std::memory_order_relaxed);
  auto next = std::make_shared<ShardView>();
  next->epoch = ++shard.version;
  next->family = family_;
  const auto pos = std::lower_bound(prev->ids.begin(), prev->ids.end(), id);
  IPS_CHECK(pos != prev->ids.end() && *pos == id);
  const size_t i = static_cast<size_t>(pos - prev->ids.begin());
  next->ids.reserve(prev->ids.size() - 1);
  next->sketches.reserve(prev->ids.size() - 1);
  next->ids.assign(prev->ids.begin(), pos);
  next->ids.insert(next->ids.end(), pos + 1, prev->ids.end());
  next->sketches.assign(prev->sketches.begin(), prev->sketches.begin() + i);
  next->sketches.insert(next->sketches.end(), prev->sketches.begin() + i + 1,
                        prev->sketches.end());
  shard.view.store(std::move(next));
}

void SketchStore::PublishRebuildLocked(
    Shard& shard, std::shared_ptr<const SketchFamily> family) {
  auto next = std::make_shared<ShardView>();
  next->epoch = ++shard.version;
  next->family = std::move(family);
  next->ids.reserve(shard.map.size());
  for (const auto& [id, sketch] : shard.map) next->ids.push_back(id);
  std::sort(next->ids.begin(), next->ids.end());
  next->sketches.reserve(next->ids.size());
  for (uint64_t id : next->ids) next->sketches.push_back(shard.map.at(id));
  shard.view.store(std::move(next));
}

ShardViewPtr SketchStore::PinShard(size_t shard) const {
  IPS_CHECK(shard < shards_.size());
  return shards_[shard]->view.load(std::memory_order_acquire);
}

std::vector<ShardViewPtr> SketchStore::PinStore() const {
  std::vector<ShardViewPtr> views;
  views.reserve(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) views.push_back(PinShard(s));
  return views;
}

size_t SketchStore::ShardOf(uint64_t id) const {
  // Mix first: sequential ids would otherwise all land in shard id % N for
  // small N and defeat the sharding.
  return static_cast<size_t>(Mix64(id) % shards_.size());
}

size_t SketchStore::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    total += shard->map.size();
  }
  return total;
}

Status SketchStore::Insert(uint64_t id, std::unique_ptr<AnySketch> sketch) {
  if (sketch == nullptr) {
    return Status::InvalidArgument("cannot insert a null sketch");
  }
  IPS_RETURN_IF_ERROR(family_->CheckCompatible(*sketch));
  const size_t shard_index = ShardOf(id);
  Shard& shard = *shards_[shard_index];
  bool is_new = false;
  {
    MutexLock lock(&shard.mu);
    std::shared_ptr<const AnySketch> shared = std::move(sketch);
    auto [it, inserted] = shard.map.insert_or_assign(id, shared);
    is_new = inserted;
    PublishInsertLocked(shard, id, shared);
    if (shard.listener != nullptr) shard.listener->OnInsert(id, *it->second);
  }
  inserts_->Add(1);
  if (is_new) {
    size_gauge_->Add(1);
    shard_occupancy_[shard_index]->Add(1);
  }
  return Status::Ok();
}

Status SketchStore::BuildAndInsert(uint64_t id, const SparseVector& vec) {
  metrics::ScopedLatency ingest_timer(ingest_ns_);
  auto made = family_->MakeSketcher();
  IPS_RETURN_IF_ERROR(made.status());
  std::unique_ptr<AnySketch> sketch = family_->NewSketch();
  IPS_RETURN_IF_ERROR(made.value()->Sketch(vec, sketch.get()));
  return Insert(id, std::move(sketch));
}

Status SketchStore::BuildAndInsertBatch(
    const std::vector<std::pair<uint64_t, SparseVector>>& batch,
    ThreadPool* pool) {
  if (pool == nullptr || pool->num_threads() == 1 || batch.size() <= 1) {
    // One sketcher for the whole batch — the same scratch reuse the chunked
    // path gets, so serial and parallel ingest differ only in parallelism.
    auto made = family_->MakeSketcher();
    IPS_RETURN_IF_ERROR(made.status());
    std::unique_ptr<AnySketch> sketch = family_->NewSketch();
    for (const auto& [id, vec] : batch) {
      metrics::ScopedLatency ingest_timer(ingest_ns_);
      IPS_RETURN_IF_ERROR(made.value()->Sketch(vec, sketch.get()));
      IPS_RETURN_IF_ERROR(Insert(id, std::move(sketch)));
      sketch = family_->NewSketch();
    }
    return Status::Ok();
  }

  // Carve the batch into one contiguous chunk per worker: each chunk gets
  // its own Sketcher (scratch reuse across its vectors) and inserts as it
  // goes, so sketching — the expensive part — runs fully in parallel and
  // shard locks are held only for map writes. Chunks share no state except
  // the first-error slot.
  const size_t chunks = std::min(batch.size(), pool->num_threads());
  const size_t per_chunk = (batch.size() + chunks - 1) / chunks;
  // kLeaf: taken only from chunk bodies, which hold nothing at that point.
  Mutex error_mu;
  Status first_error;
  pool->ParallelFor(chunks, [&](size_t c) {
    const size_t begin = c * per_chunk;
    const size_t end = std::min(begin + per_chunk, batch.size());
    auto made = family_->MakeSketcher();
    if (!made.ok()) {
      MutexLock lock(&error_mu);
      if (first_error.ok()) first_error = made.status();
      return;
    }
    for (size_t i = begin; i < end; ++i) {
      const auto& [id, vec] = batch[i];
      metrics::ScopedLatency ingest_timer(ingest_ns_);
      std::unique_ptr<AnySketch> sketch = family_->NewSketch();
      Status st = made.value()->Sketch(vec, sketch.get());
      if (st.ok()) st = Insert(id, std::move(sketch));
      if (!st.ok()) {
        MutexLock lock(&error_mu);
        if (first_error.ok()) first_error = st;
        return;
      }
    }
  });
  MutexLock lock(&error_mu);
  return first_error;
}

bool SketchStore::Contains(uint64_t id) const {
  const Shard& shard = *shards_[ShardOf(id)];
  MutexLock lock(&shard.mu);
  return shard.map.find(id) != shard.map.end();
}

Result<std::unique_ptr<AnySketch>> SketchStore::Lookup(uint64_t id) const {
  const Shard& shard = *shards_[ShardOf(id)];
  MutexLock lock(&shard.mu);
  auto it = shard.map.find(id);
  if (it == shard.map.end()) {
    return Status::NotFound("no sketch stored under id " + std::to_string(id));
  }
  return it->second->Clone();
}

Status SketchStore::Erase(uint64_t id) {
  const size_t shard_index = ShardOf(id);
  Shard& shard = *shards_[shard_index];
  {
    MutexLock lock(&shard.mu);
    auto it = shard.map.find(id);
    if (it == shard.map.end()) {
      return Status::NotFound("no sketch stored under id " +
                              std::to_string(id));
    }
    if (shard.listener != nullptr) shard.listener->OnErase(id);
    shard.map.erase(it);
    PublishEraseLocked(shard, id);
  }
  erases_->Add(1);
  size_gauge_->Add(-1);
  shard_occupancy_[shard_index]->Add(-1);
  return Status::Ok();
}

Status SketchStore::AttachListener(Listener* listener) {
  if (listener == nullptr) {
    return Status::InvalidArgument("cannot attach a null listener");
  }
  MutexLock attach_lock(&*listener_mu_);
  if (listener_ != nullptr) {
    return Status::FailedPrecondition(
        "a mutation listener is already attached");
  }
  listener_ = listener;
  // Publish + replay shard by shard under one lock hold each: once a
  // shard's mirror is set, every later mutation of that shard notifies, and
  // everything already resident is replayed now — exactly-once per entry.
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->listener = listener;
    for (const auto& [id, sketch] : shard->map) {
      listener->OnInsert(id, *sketch);
    }
  }
  return Status::Ok();
}

Status SketchStore::DetachListener(Listener* listener) {
  MutexLock attach_lock(&*listener_mu_);
  if (listener == nullptr || listener_ != listener) {
    return Status::InvalidArgument("listener is not the attached one");
  }
  for (auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    shard->listener = nullptr;
  }
  listener_ = nullptr;
  return Status::Ok();
}

bool SketchStore::ForEachInShard(
    size_t shard_index,
    const std::function<bool(uint64_t, const AnySketch&)>& fn) const {
  IPS_CHECK(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  // The timer covers acquire + hold: lock *wait* inflates these numbers
  // exactly when writers contend, which is the skew signal the metric is
  // for.
  metrics::ScopedLatency lock_timer(scan_lock_ns_);
  MutexLock lock(&shard.mu);
  for (const auto& [id, sketch] : shard.map) {
    if (!fn(id, *sketch)) return false;
  }
  return true;
}

std::vector<StoreEntry> SketchStore::ShardSnapshot(size_t shard_index) const {
  IPS_CHECK(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  std::vector<StoreEntry> out;
  {
    MutexLock lock(&shard.mu);
    out.reserve(shard.map.size());
    for (const auto& [id, sketch] : shard.map) {
      out.push_back({id, sketch->Clone()});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const StoreEntry& a, const StoreEntry& b) { return a.id < b.id; });
  return out;
}

std::vector<StoreEntry> SketchStore::Snapshot() const {
  std::vector<StoreEntry> out;
  for (size_t s = 0; s < shards_.size(); ++s) {
    auto shard_entries = ShardSnapshot(s);
    out.insert(out.end(), std::make_move_iterator(shard_entries.begin()),
               std::make_move_iterator(shard_entries.end()));
  }
  std::sort(out.begin(), out.end(),
            [](const StoreEntry& a, const StoreEntry& b) { return a.id < b.id; });
  return out;
}

std::vector<uint64_t> SketchStore::Ids() const {
  std::vector<uint64_t> out;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (const auto& [id, sketch] : shard->map) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

double SketchStore::TotalStorageWords() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (const auto& [id, sketch] : shard->map) {
      // Every stored sketch passed CheckCompatible on insert, so the
      // family-side cast cannot fail.
      total += family_->StorageWords(*sketch).value();
    }
  }
  return total;
}

double SketchStore::TotalResidentWords() const {
  double total = 0.0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    for (const auto& [id, sketch] : shard->map) {
      total += family_->ResidentWords(*sketch).value();
    }
  }
  return total;
}

namespace {

/// Ok iff `family` is one of the quantized WMH encodings — identified by
/// storage class, so the check stays registry-driven.
Status CheckQuantizedTarget(const SketchFamily& family) {
  const StorageClass sc = family.storage_class();
  if (sc != StorageClass::kCompactSamplingWithNorm &&
      sc != StorageClass::kBbitSamplingWithNorm) {
    return Status::InvalidArgument(
        "target family '" + family.name() +
        "' is not a quantized WMH encoding (expected wmh_compact or "
        "wmh_bbit)");
  }
  return Status::Ok();
}

}  // namespace

Status SketchStore::CompactifyInPlace(
    const std::string& target_family,
    const std::map<std::string, std::string>& extra_params) {
  if (family_->name() != "wmh") {
    return Status::FailedPrecondition(
        "CompactifyInPlace requires a full-precision 'wmh' store; this "
        "store holds '" +
        family_->name() + "'");
  }
  {
    // A listener mirrors the current family's sketches; swapping the family
    // identity under it would corrupt the mirror. Detach first.
    MutexLock attach_lock(&*listener_mu_);
    if (listener_ != nullptr) {
      return Status::FailedPrecondition(
          "CompactifyInPlace cannot run while a mutation listener is "
          "attached; detach it first");
    }
  }
  // The target inherits this store's fully resolved sketch options (seed,
  // L, engine, ...) so the quantized sketches land on the same identity.
  FamilyOptions target_options = options_.sketch;
  for (const auto& [key, value] : extra_params) {
    target_options.params[key] = value;
  }
  auto made = MakeFamily(target_family, target_options);
  IPS_RETURN_IF_ERROR(made.status());
  IPS_RETURN_IF_ERROR(CheckQuantizedTarget(*made.value()));

  // Stage every conversion first so any failure leaves the store unchanged,
  // then commit. Callers quiesce writers, so nothing lands between the two
  // passes (see the header contract).
  std::vector<std::vector<std::pair<uint64_t, std::unique_ptr<AnySketch>>>>
      staged(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    MutexLock lock(&shard.mu);
    staged[s].reserve(shard.map.size());
    for (const auto& [id, sketch] : shard.map) {
      auto quantized = QuantizeWmhSketch(*made.value(), *sketch);
      IPS_RETURN_IF_ERROR(quantized.status());
      staged[s].emplace_back(id, std::move(quantized).value());
    }
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    MutexLock lock(&shard.mu);
    shard.map.clear();
    for (auto& [id, sketch] : staged[s]) {
      shard.map.emplace(id, std::move(sketch));
    }
    // Republish under the *target* family: a view pinned before this line
    // keeps serving the old family + old sketches coherently, a view pinned
    // after serves the compact pair — never a mix.
    PublishRebuildLocked(shard, made.value());
  }
  family_ = std::move(made).value();
  options_.family = family_->name();
  options_.sketch = family_->options();
  return Status::Ok();
}

Result<SketchStore> QuantizeStore(
    const SketchStore& source, const std::string& target_family,
    const std::map<std::string, std::string>& extra_params) {
  if (source.family().name() != "wmh") {
    return Status::FailedPrecondition(
        "QuantizeStore requires a full-precision 'wmh' store; the source "
        "holds '" +
        source.family().name() + "'");
  }
  SketchStoreOptions target_options = source.options();
  target_options.family = target_family;
  for (const auto& [key, value] : extra_params) {
    target_options.sketch.params[key] = value;
  }
  auto made = SketchStore::Make(target_options);
  IPS_RETURN_IF_ERROR(made.status());
  SketchStore out = std::move(made).value();
  IPS_RETURN_IF_ERROR(CheckQuantizedTarget(out.family()));
  // Quantize over the allocation-free shard scan: each source sketch is
  // read once under its shard lock and only the compact form is
  // materialized, so peak memory stays source + compact copy, never a
  // second full-precision clone. The compact forms are staged per shard and
  // inserted only after the scan returns: `out` is a distinct store, but
  // its shard locks share the kStoreShard rank with the source's, and
  // same-rank nesting is exactly the cross-store ABBA shape the lock-rank
  // discipline forbids (two concurrent QuantizeStore calls in opposite
  // directions would deadlock).
  Status first_error;
  std::vector<std::pair<uint64_t, std::unique_ptr<AnySketch>>> staged;
  for (size_t s = 0; s < source.num_shards(); ++s) {
    staged.clear();
    source.ForEachInShard(s, [&](uint64_t id, const AnySketch& sketch) {
      auto quantized = QuantizeWmhSketch(out.family(), sketch);
      if (!quantized.ok()) {
        first_error = quantized.status();
        return false;  // stop this shard's scan
      }
      staged.emplace_back(id, std::move(quantized).value());
      return true;
    });
    IPS_RETURN_IF_ERROR(first_error);
    for (auto& [id, sketch] : staged) {
      IPS_RETURN_IF_ERROR(out.Insert(id, std::move(sketch)));
    }
  }
  return out;
}

}  // namespace ipsketch
