// A sharded, thread-safe collection of sketches keyed by vector id — the
// catalog side of the dataset-search workload (§1.2): every dataset in the
// corpus is sketched once at ingest time and queries later run against
// sketches only.
//
// The store is *family-generic*: it is built from a family name ("wmh",
// "cs", ...) plus FamilyOptions through the sketch/family.h registry and
// handles sketches only through the polymorphic SketchFamily interface, so
// a CountSketch catalog and a Weighted MinHash catalog run through exactly
// the same code.
//
// Concurrency model: N shards (hash-on-id), one mutex per shard. Writers to
// different shards never contend; readers either copy sketches out under
// the shard lock (Lookup, Snapshot), scan in place while holding it
// (ForEachInShard), or — the heavy-read path — pin an immutable epoch view
// published by writers and never take the shard mutex at all (PinShard;
// see ShardView and docs/ARCHITECTURE.md's snapshot-epoch protocol). Batch
// ingest sketches *outside* any lock (sketching is the expensive part)
// with one family Sketcher per worker thread, then takes each shard lock
// only for the map insert and the copy-on-write view publication.
//
// Every sketch in a store shares the family's resolved options — the
// estimator's compatibility requirement — enforced at construction and on
// every insert through SketchFamily::CheckCompatible.

#ifndef IPSKETCH_SERVICE_SKETCH_STORE_H_
#define IPSKETCH_SERVICE_SKETCH_STORE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "service/metrics.h"
#include "service/thread_pool.h"
#include "sketch/family.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Configuration for `SketchStore::Make`.
struct SketchStoreOptions {
  /// Registry key of the sketch family every entry is built with.
  std::string family = "wmh";
  /// Family options. `sketch.dimension` is required (> 0): sketches of
  /// different dimensions are not comparable. Family defaults (e.g. WMH's
  /// L = DefaultL(dimension)) are resolved once, at Make, so the resolved
  /// values are part of the store's identity and survive persistence.
  FamilyOptions sketch;
  /// Shard count. More shards = less write contention; 16 is plenty below
  /// a few dozen threads. Must be positive.
  size_t num_shards = 16;

  /// Validates field ranges (family-specific checks happen in Make).
  Status Validate() const;
};

/// One (id, sketch) element of a store snapshot.
struct StoreEntry {
  uint64_t id = 0;
  std::unique_ptr<AnySketch> sketch;
};

/// An immutable point-in-time view of one shard — the epoch-snapshot read
/// path. Writers copy-on-write: every mutation builds the successor view
/// under the shard lock and publishes it with one atomic shared_ptr swap,
/// so readers pin an epoch with a single atomic load and never touch the
/// shard mutex (RCU-style; a pinned view keeps its sketches alive however
/// many epochs the shard advances past it).
///
/// `family` is the store's family at publication time, so a pinned view
/// stays internally consistent — sketches and the estimator that understands
/// them travel together — even across CompactifyInPlace.
struct ShardView {
  /// Per-shard publication sequence number; the empty pre-insert view is
  /// epoch 0 and every mutation increments it.
  uint64_t epoch = 0;
  std::shared_ptr<const SketchFamily> family;
  /// Sorted ascending; parallel to `sketches`.
  std::vector<uint64_t> ids;
  std::vector<std::shared_ptr<const AnySketch>> sketches;

  /// The sketch stored under `id`, or nullptr (binary search over `ids`).
  const AnySketch* Find(uint64_t id) const;
};

using ShardViewPtr = std::shared_ptr<const ShardView>;

/// The sharded concurrent map. All public methods are thread-safe.
class SketchStore {
 public:
  /// Receives synchronous mutation notifications (see AttachListener). Both
  /// callbacks run *under the shard lock* of the mutated id's shard, so a
  /// listener observing one shard's stream sees its mutations in order and
  /// can mirror the shard consistently. Callbacks must be fast and must
  /// never call back into the store (the lock is held — deadlock).
  class Listener {
   public:
    virtual ~Listener() = default;
    /// After `sketch` was stored (insert or replace) under `id`.
    virtual void OnInsert(uint64_t id, const AnySketch& sketch) = 0;
    /// Before `id` is removed.
    virtual void OnErase(uint64_t id) = 0;
  };

  /// Builds the family from the registry (resolving option defaults) and an
  /// empty store around it.
  static Result<SketchStore> Make(const SketchStoreOptions& options);

  SketchStore(SketchStore&&) = default;
  /// Move assignment first retires the target's sketches from the
  /// occupancy gauges (they are being destroyed), then adopts the source's.
  /// Analysis escape: a move requires external exclusivity over both stores
  /// (the header forbids moving with a listener attached or any concurrent
  /// user), so the listener fields are transferred without their mutex —
  /// which is itself being transferred.
  SketchStore& operator=(SketchStore&& other) noexcept
      IPS_NO_THREAD_SAFETY_ANALYSIS;

  /// Subtracts this store's sketches from the process-wide size/occupancy
  /// gauges (a moved-from store holds none and subtracts nothing).
  ~SketchStore();

  /// The store's options with family defaults resolved.
  const SketchStoreOptions& options() const { return options_; }

  /// The sketch family every entry belongs to. Valid for the store's
  /// lifetime; query engines estimate through it.
  const SketchFamily& family() const { return *family_; }

  /// Number of shards.
  size_t num_shards() const { return shards_.size(); }

  /// Total number of stored sketches.
  size_t size() const;

  /// Inserts (or replaces) a pre-built sketch. Fails with InvalidArgument
  /// if the sketch is not compatible with the store's family options.
  Status Insert(uint64_t id, std::unique_ptr<AnySketch> sketch);

  /// Sketches `vec` with the store's family and inserts it under `id`.
  /// Callers on a hot path that already hold a Sketcher should sketch
  /// themselves and call Insert; this is the convenient serial form.
  Status BuildAndInsert(uint64_t id, const SparseVector& vec);

  /// Sketches and inserts a whole batch, fanning the sketching work across
  /// `pool` (one Sketcher per worker; nullptr = sketch serially on the
  /// calling thread). Later batch entries win on duplicate ids. Returns the
  /// first error encountered; entries after an error in the same batch may
  /// or may not be inserted.
  Status BuildAndInsertBatch(
      const std::vector<std::pair<uint64_t, SparseVector>>& batch,
      ThreadPool* pool);

  /// True iff `id` is present.
  bool Contains(uint64_t id) const;

  /// Copies out the sketch stored under `id`; NotFound if absent.
  Result<std::unique_ptr<AnySketch>> Lookup(uint64_t id) const;

  /// Removes `id`. NotFound if absent.
  Status Erase(uint64_t id);

  /// Attaches the single mutation listener and replays every resident entry
  /// through OnInsert (shard by shard, under each shard's lock). Each entry
  /// is delivered exactly once: the listener pointer is published under the
  /// same shard-lock hold that replays the shard, so an entry is either
  /// replayed then or notifies on a later mutation, never both.
  /// FailedPrecondition if a listener is already attached. Detach before
  /// destroying either side; the store must not be moved from or
  /// compactified while a listener is attached.
  Status AttachListener(Listener* listener);

  /// Detaches `listener`. InvalidArgument if it is not the attached one.
  Status DetachListener(Listener* listener);

  /// Copies out one shard's contents, sorted by id. Each shard snapshot is
  /// internally consistent (taken under the shard lock); a full-store
  /// iteration built from per-shard snapshots is *not* a point-in-time view
  /// across shards — concurrent writers may land between shard copies.
  std::vector<StoreEntry> ShardSnapshot(size_t shard) const;

  /// Invokes fn(id, sketch) for every entry of one shard, *under that
  /// shard's lock*, in unspecified order; returns false iff `fn` ever did
  /// (which stops the scan early). The allocation-free scan path used by
  /// query scans: nothing is copied, at the price that writers to this
  /// shard block until the scan finishes — keep `fn` read-only and cheap,
  /// and never touch the store from inside it (the lock is held).
  bool ForEachInShard(
      size_t shard,
      const std::function<bool(uint64_t, const AnySketch&)>& fn) const;

  /// Pins the currently published view of one shard: one atomic load, no
  /// shard-mutex acquisition, never null. The view is immutable and sorted
  /// by id; holding the pointer keeps its epoch's sketches alive while
  /// writers publish newer epochs. This is the read path heavy query
  /// traffic should use — it cannot contend with ingest.
  ShardViewPtr PinShard(size_t shard) const;

  /// Pins every shard's current view. Each view is internally consistent;
  /// the cross-shard caveat of Snapshot() applies (views may be pinned at
  /// different epochs relative to concurrent writers).
  std::vector<ShardViewPtr> PinStore() const;

  /// All (id, sketch) pairs, sorted by id: the per-shard snapshots merged.
  std::vector<StoreEntry> Snapshot() const;

  /// All ids, sorted.
  std::vector<uint64_t> Ids() const;

  /// The shard an id maps to (stable across runs — persistence relies on a
  /// load with equal num_shards reproducing the layout).
  size_t ShardOf(uint64_t id) const;

  /// Sum of family().StorageWords over every stored sketch — the catalog's
  /// size under the paper's §5 accounting model.
  double TotalStorageWords() const;

  /// Sum of family().ResidentWords over every stored sketch — the actual
  /// in-memory catalog footprint in 64-bit words. For a full-precision
  /// "wmh" store this is ~2 words/sample; CompactifyInPlace halves it.
  double TotalResidentWords() const;

  /// Converts this full-precision "wmh" catalog to a compact one in place:
  /// every stored sketch is quantized (a cheap post-pass — ingest stays on
  /// the fast kDart path) and the store's family becomes `target_family`
  /// ("wmh_compact" or "wmh_bbit"; `extra_params` adds quantizer knobs such
  /// as {"bits", "8"}). The target inherits this store's resolved sketch
  /// options, so a reopened compact catalog matches field for field.
  ///
  /// One-shot and NOT concurrency-safe: the family identity swaps at the
  /// end, so callers must quiesce all readers and writers for the duration
  /// (the intended shape is load → compactify → serve). All-or-nothing: on
  /// any error the store is left unchanged. FailedPrecondition if the store
  /// does not hold full-precision "wmh" sketches; InvalidArgument for a
  /// non-quantized target family or bad params.
  Status CompactifyInPlace(
      const std::string& target_family,
      const std::map<std::string, std::string>& extra_params = {});

 private:
  struct Shard {
    mutable Mutex mu{LockRank::kStoreShard};
    /// Values are shared so the published views can reference them without
    /// cloning; the map itself stays the single mutable source of truth.
    std::unordered_map<uint64_t, std::shared_ptr<const AnySketch>> map
        IPS_GUARDED_BY(mu);
    /// Mirror of the store-level listener, guarded by `mu` so mutation
    /// paths need no second lock to find it.
    Listener* listener IPS_GUARDED_BY(mu) = nullptr;
    /// Publication count — the epoch stamped into the next view.
    uint64_t version IPS_GUARDED_BY(mu) = 0;
    /// The published immutable view. Written by mutators under `mu`
    /// (copy-on-write from the previous view), read lock-free by PinShard.
    /// Initialized to the empty epoch-0 view at construction, so readers
    /// never observe null.
    std::atomic<ShardViewPtr> view;
  };

  SketchStore(SketchStoreOptions options,
              std::shared_ptr<const SketchFamily> family);

  /// Publishes the successor view of `shard` with `id` inserted or
  /// replaced: O(shard size) pointer copies from the previous view, one
  /// sorted-position splice, one atomic swap.
  void PublishInsertLocked(Shard& shard, uint64_t id,
                           const std::shared_ptr<const AnySketch>& sketch)
      IPS_REQUIRES(shard.mu);

  /// Publishes the successor view of `shard` with `id` removed.
  void PublishEraseLocked(Shard& shard, uint64_t id) IPS_REQUIRES(shard.mu);

  /// Rebuilds and publishes `shard`'s view from its map under `family` —
  /// the bulk path CompactifyInPlace uses after swapping a shard's
  /// contents wholesale.
  void PublishRebuildLocked(Shard& shard,
                            std::shared_ptr<const SketchFamily> family)
      IPS_REQUIRES(shard.mu);

  /// Subtracts every shard's current occupancy from the gauges — the
  /// shared cleanup of the destructor and move assignment.
  void RetireOccupancy();

  SketchStoreOptions options_;
  std::shared_ptr<const SketchFamily> family_;
  // unique_ptrs because Shard (mutex) is immovable but the store is not.
  std::vector<std::unique_ptr<Shard>> shards_;
  // Serializes attach/detach (and the compactify guard); unique_ptr because
  // the store is movable (Mutex is not). The per-shard mirrors are what
  // mutations read. kListenerRegistry: AttachListener holds it *across* the
  // per-shard replay, so it must rank below every shard lock.
  std::unique_ptr<Mutex> listener_mu_ =
      std::make_unique<Mutex>(LockRank::kListenerRegistry);
  Listener* listener_ IPS_GUARDED_BY(*listener_mu_) = nullptr;

  // Process-wide store metrics (all SketchStore instances aggregate;
  // gauges track live totals via paired +/- updates). Registry-owned.
  metrics::Counter* inserts_ = nullptr;
  metrics::Counter* erases_ = nullptr;
  metrics::Histogram* ingest_ns_ = nullptr;
  metrics::Histogram* scan_lock_ns_ = nullptr;
  metrics::Gauge* size_gauge_ = nullptr;
  // One gauge per shard index, named ...{shard="i"} — per-shard skew is
  // visible directly in the exposition.
  std::vector<metrics::Gauge*> shard_occupancy_;
};

/// Out-of-place variant of SketchStore::CompactifyInPlace: builds a new
/// compact store holding the quantized form of every sketch in `source`
/// (which must be a full-precision "wmh" store and is left untouched). The
/// result has the same ids, shard layout, seed, L, and engine, so
/// estimates flow through QueryEngine unchanged. Same error contract as
/// CompactifyInPlace.
Result<SketchStore> QuantizeStore(
    const SketchStore& source, const std::string& target_family,
    const std::map<std::string, std::string>& extra_params = {});

}  // namespace ipsketch

#endif  // IPSKETCH_SERVICE_SKETCH_STORE_H_
