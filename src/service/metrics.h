// Process-wide service metrics: lock-free counters, gauges, and log-scale
// latency histograms, collected in a single MetricsRegistry and exported as
// Prometheus-style text (RenderText) or a JSON snapshot (RenderJson).
//
// Hot-path contract: recording NEVER takes a lock. Counters and histograms
// are sharded into a small fixed number of cache-line-padded atomic slots;
// each thread hashes to one slot and increments it with relaxed ordering,
// and the shards are merged only on read (Value / Snapshot / render). The
// registry mutex guards registration and rendering only.
//
// Percentiles come from fixed-boundary log-scale buckets: 4 sub-buckets per
// power of two (≤ 25% relative bucket width), linearly interpolated inside
// the bucket, with the observed maximum tracked exactly — so p50/p95/p99
// are exact to within one bucket and p100 == max is exact. All latency
// histograms in the service record NANOSECONDS.
//
// Escape hatches, for proving the instrumentation costs nothing when off:
//  * env:     IPSKETCH_METRICS=off|0|false disables every instrument at
//             startup (resolved once, on first use).
//  * compile: -DIPSKETCH_METRICS_DISABLED_BUILD (cmake
//             -DIPSKETCH_METRICS=OFF) makes Enabled() constexpr false, so
//             recording compiles to nothing.
// When disabled, Add/Set/Record return immediately and the RAII timers skip
// their clock reads; registration and rendering still work (everything
// reads zero). SetEnabledForTesting flips the env decision at runtime —
// note that toggling while tasks are in flight can skew paired gauge
// updates (queue depth); it is a testing/bench hook, not a production knob.
//
// QueryTrace is separate from the registry: a caller-owned, fixed-capacity
// record of per-query stage spans (sketch-query, shard-scan, heap-merge)
// threaded through QueryEngine on request. It is always live — tracing is
// opt-in per call, so it costs nothing unless a trace is passed.

#ifndef IPSKETCH_SERVICE_METRICS_H_
#define IPSKETCH_SERVICE_METRICS_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/mutex.h"

namespace ipsketch {
namespace metrics {

/// True iff metrics were compiled in (cmake -DIPSKETCH_METRICS=OFF removes
/// them). Tests use this to skip metric-delta assertions in disabled builds.
#ifdef IPSKETCH_METRICS_DISABLED_BUILD
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

#ifdef IPSKETCH_METRICS_DISABLED_BUILD
constexpr bool Enabled() { return false; }
inline void SetEnabledForTesting(bool) {}
#else
namespace internal {
// -1 = not yet resolved from the environment; 0/1 = resolved.
extern std::atomic<int> g_enabled;
bool ResolveEnabledFromEnv();
}  // namespace internal

/// True iff instruments record. Resolved once from IPSKETCH_METRICS on
/// first call; a relaxed load afterwards.
inline bool Enabled() {
  const int e = internal::g_enabled.load(std::memory_order_relaxed);
  return e >= 0 ? e != 0 : internal::ResolveEnabledFromEnv();
}

/// Overrides the env decision (bench A/B and tests).
void SetEnabledForTesting(bool enabled);
#endif

/// Monotonic clock in nanoseconds — the time base of every histogram.
uint64_t NowNs();

/// Number of atomic slots counters and histograms shard across. Each
/// recording thread is pinned to slot (thread-arrival-index mod kShards).
inline constexpr size_t kShards = 16;

/// The calling thread's shard slot, assigned round-robin on first use.
size_t TlsShardSlot();

/// Monotonic event counter. Add is lock-free and wait-free (one relaxed
/// fetch_add on the caller's shard); Value sums the shards.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    if (!Enabled()) return;
    shards_[TlsShardSlot()].v.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t Value() const {
    uint64_t total = 0;
    for (const Slot& s : shards_) total += s.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<uint64_t> v{0};
  };
  Slot shards_[kShards];
};

/// A signed instantaneous value (queue depth, occupancy). Gauges are not
/// hot enough to shard: one atomic.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Add(int64_t delta) {
    if (!Enabled()) return;
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Set(int64_t value) {
    if (!Enabled()) return;
    v_.store(value, std::memory_order_relaxed);
  }
  int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> v_{0};
};

/// Fixed log-scale bucket layout shared by Histogram and its snapshots:
/// buckets 0–3 are exact values 0–3; from there, 4 sub-buckets per power of
/// two up to bucket kNumBuckets-1, which absorbs everything at or above its
/// lower bound (the overflow bucket; its effective upper edge is the
/// recorded max). With values in ns the last regular boundary sits near
/// 2^40 ns ≈ 18 minutes.
inline constexpr size_t kNumBuckets = 160;

/// Index of the bucket holding `v`.
constexpr size_t BucketIndex(uint64_t v) {
  if (v < 4) return static_cast<size_t>(v);
  const int k = 63 - std::countl_zero(v);  // index of the highest set bit
  const uint64_t sub = (v >> (k - 2)) & 3;
  const size_t idx = static_cast<size_t>(4 * (k - 1)) + sub;
  return idx < kNumBuckets ? idx : kNumBuckets - 1;
}

/// Inclusive lower bound of bucket `idx` (upper bound = lower of idx + 1).
constexpr uint64_t BucketLowerBound(size_t idx) {
  if (idx < 4) return idx;
  const uint64_t k = idx / 4 + 1;
  const uint64_t sub = idx % 4;
  return (4 + sub) << (k - 2);
}

/// A merged, point-in-time view of a Histogram — what every read API and
/// renderer works from.
struct HistogramSnapshot {
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t max = 0;
  uint64_t buckets[kNumBuckets] = {};

  /// The q-th percentile (q in [0, 100]), interpolated linearly inside the
  /// covering bucket and clamped to the observed max; 0 when empty.
  /// q >= 100 returns the exact max.
  double Percentile(double q) const;

  double Mean() const {
    return count == 0 ? 0.0 : static_cast<double>(sum) / count;
  }
};

/// Sharded log-scale histogram. Record is lock-free (one relaxed fetch_add
/// plus a relaxed CAS-max on the caller's shard).
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(uint64_t value) {
    if (!Enabled()) return;
    Shard& s = shards_[TlsShardSlot()];
    s.counts[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(value, std::memory_order_relaxed);
    uint64_t cur = s.max.load(std::memory_order_relaxed);
    while (value > cur &&
           !s.max.compare_exchange_weak(cur, value,
                                        std::memory_order_relaxed)) {
    }
  }

  HistogramSnapshot Snapshot() const;

  uint64_t Count() const { return Snapshot().count; }
  double Percentile(double q) const { return Snapshot().Percentile(q); }

 private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> counts[kNumBuckets] = {};
    std::atomic<uint64_t> sum{0};
    std::atomic<uint64_t> max{0};
  };
  Shard shards_[kShards];
};

/// The process-wide metric namespace. Get* registers on first use and
/// returns a reference that stays valid for the process lifetime (the
/// global registry is never destroyed); repeated calls with the same name
/// return the same metric, so components simply look their instruments up
/// at construction. Names may carry embedded Prometheus labels —
/// `store_shard_occupancy{shard="3"}` — which RenderText splits correctly.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every service component records into.
  static MetricsRegistry& Global();

  Counter& GetCounter(const std::string& name, const std::string& help = "");
  Gauge& GetGauge(const std::string& name, const std::string& help = "");
  Histogram& GetHistogram(const std::string& name,
                          const std::string& help = "");

  /// Prometheus text exposition: HELP/TYPE headers, cumulative
  /// `_bucket{le=...}` lines (non-empty buckets plus +Inf), `_sum`,
  /// `_count`. Deterministic order (sorted by name).
  std::string RenderText() const;

  /// JSON snapshot: {"counters": {...}, "gauges": {...}, "histograms":
  /// {name: {count, sum, mean, p50, p95, p99, max}}}. Histogram values are
  /// in the histogram's own unit (ns for all service latency metrics).
  std::string RenderJson() const;

 private:
  // kLeaf: registration happens in component constructors and rendering in
  // exposition endpoints, both of which hold no other lock — and nothing is
  // ever acquired while holding the registry.
  mutable Mutex mu_{LockRank::kLeaf};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      IPS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ IPS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      IPS_GUARDED_BY(mu_);
  std::map<std::string, std::string> help_ IPS_GUARDED_BY(mu_);
};

/// RAII histogram timer: records NowNs() - construction time into `hist`
/// on destruction. Null hist, or metrics disabled at construction, skips
/// the clock reads entirely.
class ScopedLatency {
 public:
  explicit ScopedLatency(Histogram* hist)
      : hist_(Enabled() ? hist : nullptr), start_(hist_ ? NowNs() : 0) {}
  ScopedLatency(const ScopedLatency&) = delete;
  ScopedLatency& operator=(const ScopedLatency&) = delete;
  ~ScopedLatency() {
    if (hist_ != nullptr) hist_->Record(NowNs() - start_);
  }

 private:
  Histogram* hist_;
  uint64_t start_;
};

/// Where one query's time went: a fixed-capacity list of named stage spans
/// filled in by QueryEngine when a caller passes a trace. Spans beyond
/// kMaxSpans are dropped (and counted), never reallocated — a trace is
/// stack-friendly and allocation-free.
class QueryTrace {
 public:
  static constexpr size_t kMaxSpans = 8;

  struct Span {
    const char* stage = "";      ///< static string, e.g. "shard-scan"
    uint64_t start_ns = 0;       ///< NowNs() at span start
    uint64_t duration_ns = 0;
  };

  void Clear() { size_ = 0; dropped_ = 0; }
  void Add(const char* stage, uint64_t start_ns, uint64_t duration_ns) {
    if (size_ >= kMaxSpans) {
      ++dropped_;
      return;
    }
    spans_[size_++] = {stage, start_ns, duration_ns};
  }

  size_t size() const { return size_; }
  const Span& span(size_t i) const { return spans_[i]; }
  size_t dropped() const { return dropped_; }

  /// Sum of recorded span durations.
  uint64_t total_ns() const;

  /// One line, human-oriented: `sketch-query=0.812ms shard-scan=3.104ms
  /// heap-merge=0.021ms total=3.937ms`.
  std::string ToString() const;

 private:
  Span spans_[kMaxSpans];
  size_t size_ = 0;
  size_t dropped_ = 0;
};

/// RAII span recorder for a QueryTrace. A null trace skips the clock reads,
/// so instrumented code paths pay nothing when no one is tracing.
class ScopedSpan {
 public:
  ScopedSpan(QueryTrace* trace, const char* stage)
      : trace_(trace), stage_(stage), start_(trace ? NowNs() : 0) {}
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;
  ~ScopedSpan() {
    if (trace_ != nullptr) trace_->Add(stage_, start_, NowNs() - start_);
  }

 private:
  QueryTrace* trace_;
  const char* stage_;
  uint64_t start_;
};

}  // namespace metrics
}  // namespace ipsketch

#endif  // IPSKETCH_SERVICE_METRICS_H_
