#include "service/query_engine.h"

#include <algorithm>
#include <mutex>

#include "core/similarity_search.h"

namespace ipsketch {

// Heap entries carry store ids in SimilarityHit::index.
static_assert(sizeof(size_t) >= sizeof(uint64_t),
              "service ids require a 64-bit size_t");

QueryEngine::QueryEngine(const SketchStore* store, ThreadPool* pool)
    : store_(store), pool_(pool) {
  IPS_CHECK(store_ != nullptr);
  auto& registry = metrics::MetricsRegistry::Global();
  estimate_pair_ns_ = &registry.GetHistogram(
      "ipsketch_query_estimate_pair_ns",
      "EstimateInnerProduct latency: two lookups plus one estimate");
  scan_ns_ = &registry.GetHistogram(
      "ipsketch_query_scan_ns", "EstimateAgainstQuery end-to-end latency");
  topk_ns_ = &registry.GetHistogram("ipsketch_query_topk_ns",
                                    "TopK/TopKSketch end-to-end latency");
  candidates_per_query_ = &registry.GetHistogram(
      "ipsketch_query_candidates",
      "Sketches scanned (= candidates estimated) per top-k query");
  sketches_scanned_ = &registry.GetCounter(
      "ipsketch_query_sketches_scanned_total",
      "Stored sketches estimated against a query across all scans");
  queries_ = &registry.GetCounter("ipsketch_query_total",
                                  "Queries served (all query APIs)");
}

Result<double> QueryEngine::EstimateInnerProduct(uint64_t id_a,
                                                 uint64_t id_b) const {
  metrics::ScopedLatency latency(estimate_pair_ns_);
  queries_->Add(1);
  auto a = store_->Lookup(id_a);
  IPS_RETURN_IF_ERROR(a.status());
  auto b = store_->Lookup(id_b);
  IPS_RETURN_IF_ERROR(b.status());
  return store_->family().Estimate(*a.value(), *b.value());
}

Result<std::unique_ptr<AnySketch>> QueryEngine::SketchQuery(
    const SparseVector& query) const {
  auto sketcher = store_->family().MakeSketcher();
  IPS_RETURN_IF_ERROR(sketcher.status());
  std::unique_ptr<AnySketch> sketch = store_->family().NewSketch();
  IPS_RETURN_IF_ERROR(sketcher.value()->Sketch(query, sketch.get()));
  return sketch;
}

void QueryEngine::ForEachShard(const std::function<void(size_t)>& fn) const {
  const size_t n = store_->num_shards();
  if (pool_ != nullptr) {
    pool_->ParallelFor(n, fn);
  } else {
    for (size_t s = 0; s < n; ++s) fn(s);
  }
}

Result<std::vector<QueryHit>> QueryEngine::EstimateAgainstQuery(
    const SparseVector& query, metrics::QueryTrace* trace) const {
  metrics::ScopedLatency latency(scan_ns_);
  queries_->Add(1);
  Result<std::unique_ptr<AnySketch>> sketched = [&] {
    metrics::ScopedSpan span(trace, "sketch-query");
    return SketchQuery(query);
  }();
  IPS_RETURN_IF_ERROR(sketched.status());
  const AnySketch& qs = *sketched.value();
  const SketchFamily& family = store_->family();

  std::vector<std::vector<QueryHit>> per_shard(store_->num_shards());
  std::mutex error_mu;
  Status first_error;
  {
    metrics::ScopedSpan span(trace, "shard-scan");
    ForEachShard([&](size_t s) {
      // Estimation runs under the shard lock (ForEachInShard): copying whole
      // shards out per query would cost far more than briefly blocking that
      // shard's writers — the estimator is O(m) per entry and read-only.
      store_->ForEachInShard(s, [&](uint64_t id, const AnySketch& sketch) {
        auto est = family.Estimate(qs, sketch);
        if (!est.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = est.status();
          return false;
        }
        per_shard[s].push_back({id, est.value()});
        return true;
      });
    });
  }
  IPS_RETURN_IF_ERROR(first_error);

  std::vector<QueryHit> all;
  for (auto& shard_hits : per_shard) {
    all.insert(all.end(), shard_hits.begin(), shard_hits.end());
  }
  std::sort(all.begin(), all.end(),
            [](const QueryHit& a, const QueryHit& b) { return a.id < b.id; });
  sketches_scanned_->Add(all.size());
  return all;
}

Result<std::vector<QueryHit>> QueryEngine::TopK(
    const SparseVector& query, size_t k, metrics::QueryTrace* trace) const {
  Result<std::unique_ptr<AnySketch>> sketched = [&] {
    metrics::ScopedSpan span(trace, "sketch-query");
    return SketchQuery(query);
  }();
  IPS_RETURN_IF_ERROR(sketched.status());
  return TopKSketch(*sketched.value(), k, trace);
}

Result<std::vector<QueryHit>> QueryEngine::TopKSketch(
    const AnySketch& query, size_t k, metrics::QueryTrace* trace) const {
  metrics::ScopedLatency latency(topk_ns_);
  queries_->Add(1);
  const SketchFamily& family = store_->family();
  {
    Status compatible = family.CheckCompatible(query);
    if (!compatible.ok()) {
      return Status::InvalidArgument(
          "query sketch does not match the store's family: " +
          compatible.message());
    }
  }

  // One private heap per shard; each shard is scanned by exactly one worker,
  // so the heaps (and scan tallies) are written lock-free and merged once
  // all scans finish.
  const size_t n = store_->num_shards();
  std::vector<TopKHeap> heaps;
  heaps.reserve(n);
  for (size_t s = 0; s < n; ++s) heaps.emplace_back(k);
  std::vector<size_t> scanned(n, 0);
  std::mutex error_mu;
  Status first_error;
  {
    metrics::ScopedSpan span(trace, "shard-scan");
    ForEachShard([&](size_t s) {
      store_->ForEachInShard(s, [&](uint64_t id, const AnySketch& sketch) {
        auto est = family.Estimate(query, sketch);
        if (!est.ok()) {
          std::lock_guard<std::mutex> lock(error_mu);
          if (first_error.ok()) first_error = est.status();
          return false;
        }
        heaps[s].Offer(static_cast<size_t>(id), est.value());
        ++scanned[s];
        return true;
      });
    });
  }
  IPS_RETURN_IF_ERROR(first_error);

  metrics::ScopedSpan merge_span(trace, "heap-merge");
  TopKHeap merged(k);
  for (const TopKHeap& heap : heaps) merged.Merge(heap);
  std::vector<QueryHit> hits;
  for (const SimilarityHit& hit : merged.TakeSorted()) {
    hits.push_back({static_cast<uint64_t>(hit.index), hit.estimate});
  }
  size_t total_scanned = 0;
  for (size_t s : scanned) total_scanned += s;
  sketches_scanned_->Add(total_scanned);
  candidates_per_query_->Record(total_scanned);
  return hits;
}

}  // namespace ipsketch
