#include "service/query_engine.h"

#include <algorithm>
#include <unordered_set>

#include "common/mutex.h"

#include "core/similarity_search.h"
#include "index/banded_index.h"

namespace ipsketch {

// Heap entries carry store ids in SimilarityHit::index.
static_assert(sizeof(size_t) >= sizeof(uint64_t),
              "service ids require a 64-bit size_t");

QueryEngine::QueryEngine(const SketchStore* store, ThreadPool* pool)
    : QueryEngine(store, pool, nullptr, IndexPolicy::kExactScan) {}

QueryEngine::QueryEngine(const SketchStore* store, ThreadPool* pool,
                         const BandedIndex* index, IndexPolicy policy)
    : store_(store), pool_(pool), index_(index), policy_(policy) {
  IPS_CHECK(store_ != nullptr);
  IPS_CHECK(index_ == nullptr || index_->store() == store_);
  auto& registry = metrics::MetricsRegistry::Global();
  estimate_pair_ns_ = &registry.GetHistogram(
      "ipsketch_query_estimate_pair_ns",
      "EstimateInnerProduct latency: two lookups plus one estimate");
  scan_ns_ = &registry.GetHistogram(
      "ipsketch_query_scan_ns", "EstimateAgainstQuery end-to-end latency");
  topk_ns_ = &registry.GetHistogram("ipsketch_query_topk_ns",
                                    "TopK/TopKSketch end-to-end latency");
  candidates_per_query_ = &registry.GetHistogram(
      "ipsketch_query_candidates",
      "Sketches scanned (= candidates estimated) per top-k query");
  sketches_scanned_ = &registry.GetCounter(
      "ipsketch_query_sketches_scanned_total",
      "Stored sketches estimated against a query across all scans");
  queries_ = &registry.GetCounter("ipsketch_query_total",
                                  "Queries served (all query APIs)");
  rerank_ns_ = &registry.GetHistogram(
      "ipsketch_index_rerank_ns",
      "Banded path latency: bucket probes plus candidate re-rank");
  fallbacks_ = &registry.GetCounter(
      "ipsketch_index_fallback_total",
      "Top-k queries that wanted an index path but fell back to the exact "
      "scan (no index attached)");
  recall_probe_expected_ = &registry.GetCounter(
      "ipsketch_index_recall_probe_expected_total",
      "Exact-scan top-k hits across ProbeRecall calls (denominator)");
  recall_probe_hits_ = &registry.GetCounter(
      "ipsketch_index_recall_probe_hits_total",
      "Banded top-k hits matching the exact scan across ProbeRecall calls "
      "(numerator)");
}

Result<double> QueryEngine::EstimateInnerProduct(uint64_t id_a,
                                                 uint64_t id_b) const {
  metrics::ScopedLatency latency(estimate_pair_ns_);
  queries_->Add(1);
  if (read_mode_ == ReadMode::kSnapshot) {
    // Pinned views instead of Lookup: no shard mutex, no sketch clones.
    const ShardViewPtr va = store_->PinShard(store_->ShardOf(id_a));
    const AnySketch* a = va->Find(id_a);
    if (a == nullptr) {
      return Status::NotFound("no sketch stored under id " +
                              std::to_string(id_a));
    }
    const ShardViewPtr vb = store_->PinShard(store_->ShardOf(id_b));
    const AnySketch* b = vb->Find(id_b);
    if (b == nullptr) {
      return Status::NotFound("no sketch stored under id " +
                              std::to_string(id_b));
    }
    return va->family->Estimate(*a, *b);
  }
  auto a = store_->Lookup(id_a);
  IPS_RETURN_IF_ERROR(a.status());
  auto b = store_->Lookup(id_b);
  IPS_RETURN_IF_ERROR(b.status());
  return store_->family().Estimate(*a.value(), *b.value());
}

bool QueryEngine::ScanStoreShard(
    size_t shard,
    const std::function<bool(uint64_t, const AnySketch&)>& fn) const {
  if (read_mode_ == ReadMode::kSnapshot) {
    const ShardViewPtr view = store_->PinShard(shard);
    for (size_t i = 0; i < view->ids.size(); ++i) {
      if (!fn(view->ids[i], *view->sketches[i])) return false;
    }
    return true;
  }
  return store_->ForEachInShard(shard, fn);
}

Result<std::unique_ptr<AnySketch>> QueryEngine::SketchQuery(
    const SparseVector& query) const {
  auto sketcher = store_->family().MakeSketcher();
  IPS_RETURN_IF_ERROR(sketcher.status());
  std::unique_ptr<AnySketch> sketch = store_->family().NewSketch();
  IPS_RETURN_IF_ERROR(sketcher.value()->Sketch(query, sketch.get()));
  return sketch;
}

void QueryEngine::ForEachShard(const std::function<void(size_t)>& fn) const {
  const size_t n = store_->num_shards();
  if (pool_ != nullptr) {
    pool_->ParallelFor(n, fn);
  } else {
    for (size_t s = 0; s < n; ++s) fn(s);
  }
}

Result<std::vector<QueryHit>> QueryEngine::EstimateAgainstQuery(
    const SparseVector& query, metrics::QueryTrace* trace) const {
  metrics::ScopedLatency latency(scan_ns_);
  queries_->Add(1);
  Result<std::unique_ptr<AnySketch>> sketched = [&] {
    metrics::ScopedSpan span(trace, "sketch-query");
    return SketchQuery(query);
  }();
  IPS_RETURN_IF_ERROR(sketched.status());
  const AnySketch& qs = *sketched.value();
  const SketchFamily& family = store_->family();

  std::vector<std::vector<QueryHit>> per_shard(store_->num_shards());
  // kLeaf: acquired while a store shard lock (kStoreShard) is held inside
  // the scan callback; nothing nests under it.
  Mutex error_mu;
  Status first_error;
  {
    metrics::ScopedSpan span(trace, "shard-scan");
    ForEachShard([&](size_t s) {
      // In kLockedScan mode estimation runs under the shard lock: copying
      // whole shards out per query would cost far more than briefly
      // blocking that shard's writers — the estimator is O(m) per entry
      // and read-only. kSnapshot trades that contention for a pinned view.
      ScanStoreShard(s, [&](uint64_t id, const AnySketch& sketch) {
        auto est = family.Estimate(qs, sketch);
        if (!est.ok()) {
          MutexLock lock(&error_mu);
          if (first_error.ok()) first_error = est.status();
          return false;
        }
        per_shard[s].push_back({id, est.value()});
        return true;
      });
    });
  }
  IPS_RETURN_IF_ERROR(first_error);

  std::vector<QueryHit> all;
  for (auto& shard_hits : per_shard) {
    all.insert(all.end(), shard_hits.begin(), shard_hits.end());
  }
  std::sort(all.begin(), all.end(),
            [](const QueryHit& a, const QueryHit& b) { return a.id < b.id; });
  sketches_scanned_->Add(all.size());
  return all;
}

Result<std::vector<QueryHit>> QueryEngine::TopK(
    const SparseVector& query, size_t k, metrics::QueryTrace* trace) const {
  Result<std::unique_ptr<AnySketch>> sketched = [&] {
    metrics::ScopedSpan span(trace, "sketch-query");
    return SketchQuery(query);
  }();
  IPS_RETURN_IF_ERROR(sketched.status());
  return TopKSketch(*sketched.value(), k, trace);
}

Result<std::vector<QueryHit>> QueryEngine::TopKSketch(
    const AnySketch& query, size_t k, metrics::QueryTrace* trace) const {
  return TopKSketchWithPolicy(query, k, policy_, trace);
}

Result<std::vector<QueryHit>> QueryEngine::TopKSketchWithPolicy(
    const AnySketch& query, size_t k, IndexPolicy policy,
    metrics::QueryTrace* trace) const {
  metrics::ScopedLatency latency(topk_ns_);
  queries_->Add(1);
  const SketchFamily& family = store_->family();
  {
    Status compatible = family.CheckCompatible(query);
    if (!compatible.ok()) {
      return Status::InvalidArgument(
          "query sketch does not match the store's family: " +
          compatible.message());
    }
  }

  if (policy != IndexPolicy::kExactScan && index_ == nullptr) {
    fallbacks_->Add(1);
    policy = IndexPolicy::kExactScan;
  }

  // One private heap per shard; each shard is visited by exactly one worker,
  // so the heaps (and per-shard tallies) are written lock-free and merged
  // once all shards finish. BetterHit's deterministic tie-break makes the
  // merged result independent of thread count and shard order.
  const size_t n = store_->num_shards();
  std::vector<TopKHeap> heaps;
  heaps.reserve(n);
  for (size_t s = 0; s < n; ++s) heaps.emplace_back(k);
  std::vector<size_t> scanned(n, 0);
  // kLeaf: record_error runs inside shard-scan callbacks with a store or
  // index shard lock held; nothing nests under it.
  Mutex error_mu;
  Status first_error;
  auto record_error = [&](const Status& st) {
    MutexLock lock(&error_mu);
    if (first_error.ok()) first_error = st;
  };

  switch (policy) {
    case IndexPolicy::kExactScan: {
      metrics::ScopedSpan span(trace, "shard-scan");
      ForEachShard([&](size_t s) {
        ScanStoreShard(s, [&](uint64_t id, const AnySketch& sketch) {
          auto est = family.Estimate(query, sketch);
          if (!est.ok()) {
            record_error(est.status());
            return false;
          }
          heaps[s].Offer(static_cast<size_t>(id), est.value());
          ++scanned[s];
          return true;
        });
      });
      break;
    }
    case IndexPolicy::kSlabScan: {
      metrics::ScopedSpan span(trace, "shard-scan");
      ForEachShard([&](size_t s) {
        Status st = index_->ScanShard(query, s, &heaps[s], &scanned[s]);
        if (!st.ok()) record_error(st);
      });
      break;
    }
    case IndexPolicy::kBandedRerank: {
      std::vector<uint64_t> band_keys;
      {
        metrics::ScopedSpan span(trace, "band-query");
        IPS_RETURN_IF_ERROR(index_->QueryBandKeys(query, &band_keys));
      }
      metrics::ScopedSpan span(trace, "index-probe");
      metrics::ScopedLatency rerank_latency(rerank_ns_);
      std::vector<IndexProbeStats> stats(n);
      ForEachShard([&](size_t s) {
        Status st =
            index_->ProbeShard(query, band_keys, s, &heaps[s], &stats[s]);
        if (!st.ok()) record_error(st);
      });
      for (size_t s = 0; s < n; ++s) {
        scanned[s] = static_cast<size_t>(stats[s].candidates);
      }
      break;
    }
  }
  IPS_RETURN_IF_ERROR(first_error);

  metrics::ScopedSpan merge_span(trace, "heap-merge");
  TopKHeap merged(k);
  for (const TopKHeap& heap : heaps) merged.Merge(heap);
  std::vector<QueryHit> hits;
  for (const SimilarityHit& hit : merged.TakeSorted()) {
    hits.push_back({static_cast<uint64_t>(hit.index), hit.estimate});
  }
  // For the banded path "scanned" counts re-ranked candidates — the work
  // actually done — so candidates_per_query_ exposes the banding win
  // directly against the exact scan's corpus-sized numbers.
  size_t total_scanned = 0;
  for (size_t s : scanned) total_scanned += s;
  sketches_scanned_->Add(total_scanned);
  candidates_per_query_->Record(total_scanned);
  return hits;
}

std::vector<Result<std::vector<QueryHit>>> QueryEngine::TopKSketchBatch(
    const std::vector<const AnySketch*>& queries,
    const std::vector<size_t>& ks) const {
  IPS_CHECK(queries.size() == ks.size());
  metrics::ScopedLatency latency(topk_ns_);
  const size_t q_count = queries.size();
  queries_->Add(q_count);
  const SketchFamily& family = store_->family();
  std::vector<Result<std::vector<QueryHit>>> results(
      q_count, Result<std::vector<QueryHit>>(
                   Status::Internal("batch slot not filled")));
  // live[q] marks queries still participating in the traversal; a query
  // leaves the batch at validation (here) or band-key time, never
  // mid-scan — scan workers only *record* errors, resolved at the merge.
  std::vector<bool> live(q_count, false);
  size_t live_count = 0;
  for (size_t q = 0; q < q_count; ++q) {
    IPS_CHECK(queries[q] != nullptr);
    Status compatible = family.CheckCompatible(*queries[q]);
    if (!compatible.ok()) {
      results[q] = Status::InvalidArgument(
          "query sketch does not match the store's family: " +
          compatible.message());
      continue;
    }
    live[q] = true;
    ++live_count;
  }

  IndexPolicy policy = policy_;
  if (policy != IndexPolicy::kExactScan && index_ == nullptr) {
    fallbacks_->Add(live_count);
    policy = IndexPolicy::kExactScan;
  }

  const size_t n = store_->num_shards();
  std::vector<std::vector<TopKHeap>> heaps(q_count);
  for (size_t q = 0; q < q_count; ++q) {
    if (!live[q]) continue;
    heaps[q].reserve(n);
    for (size_t s = 0; s < n; ++s) heaps[q].emplace_back(ks[q]);
  }
  // Shared by exact/slab (every live query scans the same entries);
  // per-query candidate counts for the banded path come from probe stats.
  std::vector<size_t> entries_per_shard(n, 0);
  std::vector<std::vector<IndexProbeStats>> probe_stats;
  // kLeaf: record_error runs inside scan callbacks with a store or index
  // shard lock held; nothing nests under it.
  Mutex error_mu;
  std::vector<Status> errors(q_count);
  auto record_error = [&](size_t q, const Status& st) {
    MutexLock lock(&error_mu);
    if (errors[q].ok()) errors[q] = st;
  };

  switch (policy) {
    case IndexPolicy::kExactScan: {
      ForEachShard([&](size_t s) {
        ScanStoreShard(s, [&](uint64_t id, const AnySketch& sketch) {
          ++entries_per_shard[s];
          for (size_t q = 0; q < q_count; ++q) {
            if (!live[q]) continue;
            auto est = family.Estimate(*queries[q], sketch);
            if (!est.ok()) {
              record_error(q, est.status());
              continue;
            }
            heaps[q][s].Offer(static_cast<size_t>(id), est.value());
          }
          return true;
        });
      });
      break;
    }
    case IndexPolicy::kSlabScan: {
      ForEachShard([&](size_t s) {
        std::vector<const AnySketch*> shard_queries;
        std::vector<TopKHeap*> shard_heaps;
        shard_queries.reserve(live_count);
        shard_heaps.reserve(live_count);
        for (size_t q = 0; q < q_count; ++q) {
          if (!live[q]) continue;
          shard_queries.push_back(queries[q]);
          shard_heaps.push_back(&heaps[q][s]);
        }
        Status st = index_->ScanShardBatch(shard_queries, s, shard_heaps,
                                           &entries_per_shard[s]);
        if (!st.ok()) {
          for (size_t q = 0; q < q_count; ++q) {
            if (live[q]) record_error(q, st);
          }
        }
      });
      break;
    }
    case IndexPolicy::kBandedRerank: {
      // Band keys once per query, shared across every shard probe.
      std::vector<std::vector<uint64_t>> keys(q_count);
      for (size_t q = 0; q < q_count; ++q) {
        if (!live[q]) continue;
        Status st = index_->QueryBandKeys(*queries[q], &keys[q]);
        if (!st.ok()) {
          results[q] = st;
          live[q] = false;
          --live_count;
        }
      }
      probe_stats.assign(q_count, std::vector<IndexProbeStats>(n));
      metrics::ScopedLatency rerank_latency(rerank_ns_);
      ForEachShard([&](size_t s) {
        for (size_t q = 0; q < q_count; ++q) {
          if (!live[q]) continue;
          Status st = index_->ProbeShard(*queries[q], keys[q], s,
                                         &heaps[q][s], &probe_stats[q][s]);
          if (!st.ok()) record_error(q, st);
        }
      });
      break;
    }
  }

  size_t total_entries = 0;
  for (size_t c : entries_per_shard) total_entries += c;
  size_t total_estimated = 0;
  for (size_t q = 0; q < q_count; ++q) {
    if (!live[q]) continue;
    {
      MutexLock lock(&error_mu);
      if (!errors[q].ok()) {
        results[q] = errors[q];
        continue;
      }
    }
    TopKHeap merged(ks[q]);
    for (const TopKHeap& heap : heaps[q]) merged.Merge(heap);
    std::vector<QueryHit> hits;
    for (const SimilarityHit& hit : merged.TakeSorted()) {
      hits.push_back({static_cast<uint64_t>(hit.index), hit.estimate});
    }
    size_t candidates = total_entries;
    if (policy == IndexPolicy::kBandedRerank) {
      candidates = 0;
      for (const IndexProbeStats& st : probe_stats[q]) {
        candidates += static_cast<size_t>(st.candidates);
      }
    }
    candidates_per_query_->Record(candidates);
    total_estimated += candidates;
    results[q] = std::move(hits);
  }
  sketches_scanned_->Add(total_estimated);
  return results;
}

Result<double> QueryEngine::ProbeRecall(const SparseVector& query,
                                        size_t k) const {
  if (index_ == nullptr) {
    return Status::FailedPrecondition(
        "recall probes require a banded index");
  }
  auto sketched = SketchQuery(query);
  IPS_RETURN_IF_ERROR(sketched.status());
  auto exact = TopKSketchWithPolicy(*sketched.value(), k,
                                    IndexPolicy::kExactScan, nullptr);
  IPS_RETURN_IF_ERROR(exact.status());
  auto banded = TopKSketchWithPolicy(*sketched.value(), k,
                                     IndexPolicy::kBandedRerank, nullptr);
  IPS_RETURN_IF_ERROR(banded.status());
  if (exact.value().empty()) return 1.0;
  std::unordered_set<uint64_t> exact_ids;
  exact_ids.reserve(exact.value().size());
  for (const QueryHit& hit : exact.value()) exact_ids.insert(hit.id);
  size_t overlap = 0;
  for (const QueryHit& hit : banded.value()) {
    overlap += exact_ids.count(hit.id);
  }
  recall_probe_expected_->Add(exact.value().size());
  recall_probe_hits_->Add(overlap);
  return static_cast<double>(overlap) /
         static_cast<double>(exact.value().size());
}

}  // namespace ipsketch
