#include "service/thread_pool.h"

#include <atomic>
#include <utility>

#include "common/status.h"

namespace ipsketch {
namespace {

// The pool (if any) whose WorkerLoop owns the current thread. Lets
// ParallelFor detect reentrancy from its own workers, where queueing the
// loop and blocking on it would deadlock: this worker cannot drain the
// queue while it waits, and with every worker doing the same nobody can.
thread_local const ThreadPool* tls_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  auto& registry = metrics::MetricsRegistry::Global();
  queue_depth_ = &registry.GetGauge(
      "ipsketch_pool_queue_depth", "Tasks accepted but not yet dequeued");
  tasks_executed_ = &registry.GetCounter(
      "ipsketch_pool_tasks_executed_total", "Tasks run to completion");
  tasks_rejected_ = &registry.GetCounter(
      "ipsketch_pool_tasks_rejected_total",
      "Submissions refused because the pool was stopping");
  task_wait_ns_ = &registry.GetHistogram(
      "ipsketch_pool_task_wait_ns", "Queue wait: submit to dequeue");
  task_run_ns_ = &registry.GetHistogram(
      "ipsketch_pool_task_run_ns", "Task body execution time");
  if (num_threads == 0) num_threads = 1;
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    MutexLock lock(&mu_);
    stopping_ = true;
  }
  cv_.NotifyAll();
  for (std::thread& w : workers_) w.join();
}

bool ThreadPool::Submit(std::function<void()> task) {
  IPS_CHECK(task != nullptr);
  const uint64_t enqueue_ns = metrics::Enabled() ? metrics::NowNs() : 0;
  {
    MutexLock lock(&mu_);
    // Rejection, not IPS_CHECK: a task still draining during destruction
    // may legitimately try to schedule follow-up work; the caller decides
    // whether to drop it or run it inline.
    if (stopping_) {
      tasks_rejected_->Add(1);
      return false;
    }
    queue_.push_back({std::move(task), enqueue_ns});
  }
  if (enqueue_ns != 0) queue_depth_->Add(1);
  cv_.NotifyOne();
  return true;
}

void ThreadPool::WorkerLoop() {
  tls_worker_pool = this;
  for (;;) {
    QueuedTask task;
    {
      MutexLock lock(&mu_);
      // Explicit loop, not a predicate lambda: the thread-safety analysis
      // checks the guarded reads here under the held lock (lambdas are
      // analyzed without the caller's lock set).
      while (!stopping_ && queue_.empty()) cv_.Wait(mu_);
      // Drain the queue even when stopping: Submit is rejected after stop,
      // so this terminates, and destruction never drops accepted work.
      if (queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    // Gate on the submit-time stamp, not Enabled() now: the depth +1/-1
    // and wait window always pair per task.
    uint64_t start_ns = 0;
    if (task.enqueue_ns != 0) {
      queue_depth_->Add(-1);
      start_ns = metrics::NowNs();
      task_wait_ns_->Record(start_ns - task.enqueue_ns);
    }
    task.fn();
    if (start_ns != 0) task_run_ns_->Record(metrics::NowNs() - start_ns);
    tasks_executed_->Add(1);
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  // Reentrant call from one of this pool's own workers: run inline. The
  // worker cannot block on queued subtasks — they would wait in the queue
  // behind the very task that is waiting for them.
  if (n == 1 || tls_worker_pool == this) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // One task per worker, each pulling the next index from a shared counter:
  // self-balancing when iterations have uneven cost (skewed shards, vectors
  // with very different nnz) without any tuning parameter.
  struct Sync {
    std::atomic<size_t> next{0};
    std::atomic<size_t> live;
    // kLeaf: task bodies hold nothing when they signal completion, and the
    // caller acquires it holding nothing; nothing nests under it.
    Mutex mu{LockRank::kLeaf};
    CondVar done;
    explicit Sync(size_t tasks) : live(tasks) {}
  };
  const size_t tasks = std::min(n, num_threads());
  auto sync = std::make_shared<Sync>(tasks);
  const auto body = [sync, n, &fn] {
    for (;;) {
      const size_t i = sync->next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      fn(i);
    }
    if (sync->live.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      MutexLock lock(&sync->mu);
      sync->done.NotifyAll();
    }
  };
  for (size_t t = 0; t < tasks; ++t) {
    // A stopping pool rejects the submission; the loop still completes —
    // the calling thread runs that share inline (the first inline run
    // drains the whole counter, later ones exit immediately).
    if (!Submit(body)) body();
  }
  MutexLock lock(&sync->mu);
  while (sync->live.load(std::memory_order_acquire) != 0) {
    sync->done.Wait(sync->mu);
  }
}

}  // namespace ipsketch
