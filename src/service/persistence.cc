#include "service/persistence.h"

#include <cstdio>

#include "service/metrics.h"
#include "sketch/serialize.h"

namespace ipsketch {
namespace {

// Persistence metrics live behind function-local statics: these are free
// functions with no object to hang registration on, and the registry hands
// out stable references for the process lifetime.
metrics::Histogram& SaveNsHistogram() {
  static metrics::Histogram& h = metrics::MetricsRegistry::Global().GetHistogram(
      "ipsketch_persist_save_ns", "SaveSketchStore wall time: encode + write");
  return h;
}

metrics::Histogram& LoadNsHistogram() {
  static metrics::Histogram& h = metrics::MetricsRegistry::Global().GetHistogram(
      "ipsketch_persist_load_ns", "LoadSketchStore wall time: read + decode");
  return h;
}

metrics::Counter& BytesWrittenCounter() {
  static metrics::Counter& c = metrics::MetricsRegistry::Global().GetCounter(
      "ipsketch_persist_bytes_written_total",
      "Encoded store bytes written to disk");
  return c;
}

metrics::Counter& BytesReadCounter() {
  static metrics::Counter& c = metrics::MetricsRegistry::Global().GetCounter(
      "ipsketch_persist_bytes_read_total", "Store bytes read from disk");
  return c;
}

metrics::Counter& ChecksumFailuresCounter() {
  static metrics::Counter& c = metrics::MetricsRegistry::Global().GetCounter(
      "ipsketch_persist_checksum_failures_total",
      "Store loads rejected by the FNV-1a trailer check");
  return c;
}

constexpr uint32_t kStoreMagic = 0x49505354;  // "IPST"
constexpr uint8_t kStoreVersion = 2;
// The pre-SketchFamily format: WMH-only, fixed header
// [dimension u64][num_shards u64][num_samples u64][seed u64][L u64]
// [engine u8], entries framed with SerializeWmh.
constexpr uint8_t kStoreVersionV1 = 1;
// Decode-time sanity cap: shards are allocated up front, so an absurd
// header value must become InvalidArgument, not a giant allocation. Real
// stores use dozens of shards; 2^16 is far beyond any sane deployment.
constexpr uint64_t kMaxDecodedShards = 1u << 16;

// FNV-1a over the encoded payload, stored as an 8-byte trailer. The wire
// framing alone only catches *structural* corruption; a flipped byte inside
// a double payload would otherwise load as a silently wrong sketch.
uint64_t Checksum(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// Reads the v1 header into family-generic store options.
Status ReadV1Header(wire::BoundedReader* r, SketchStoreOptions* opts) {
  uint64_t num_shards = 0, num_samples = 0, L = 0;
  uint8_t engine = 0;
  IPS_RETURN_IF_ERROR(r->ReadU64(&opts->sketch.dimension));
  IPS_RETURN_IF_ERROR(r->ReadU64(&num_shards));
  IPS_RETURN_IF_ERROR(r->ReadU64(&num_samples));
  IPS_RETURN_IF_ERROR(r->ReadU64(&opts->sketch.seed));
  IPS_RETURN_IF_ERROR(r->ReadU64(&L));
  IPS_RETURN_IF_ERROR(r->ReadU8(&engine));
  if (engine > 1) {
    return Status::InvalidArgument("unknown sketch engine in v1 store file");
  }
  opts->family = "wmh";
  opts->num_shards = static_cast<size_t>(num_shards);
  opts->sketch.num_samples = static_cast<size_t>(num_samples);
  opts->sketch.params["L"] = std::to_string(L);
  opts->sketch.params["engine"] =
      engine == 0 ? "active_index" : "expanded_reference";
  return Status::Ok();
}

Status ReadV2Header(wire::BoundedReader* r, SketchStoreOptions* opts) {
  std::string_view family;
  IPS_RETURN_IF_ERROR(r->ReadBytes(&family));
  opts->family = std::string(family);
  uint64_t num_shards = 0;
  IPS_RETURN_IF_ERROR(r->ReadU64(&num_shards));
  opts->num_shards = static_cast<size_t>(num_shards);
  IPS_RETURN_IF_ERROR(ReadFamilyOptions(r, &opts->sketch));
  // v2 files written before the icws engine param existed carry an empty
  // params block; every sketch in them was built by the exact engine. The
  // modern default (dart) must not be substituted — the family would
  // reject the stored sketches (or, worse, relabel them), so pin the
  // legacy engine explicitly. (wmh files always carried their engine.)
  if (opts->family == "icws" &&
      opts->sketch.params.count("engine") == 0) {
    opts->sketch.params["engine"] = "icws";
  }
  return Status::Ok();
}

}  // namespace

std::string EncodeSketchStore(const SketchStore& store) {
  const SketchStoreOptions& opts = store.options();
  std::string out;
  wire::AppendU32(&out, kStoreMagic);
  wire::AppendU8(&out, kStoreVersion);
  wire::AppendBytes(&out, opts.family);
  wire::AppendU64(&out, opts.num_shards);
  AppendFamilyOptions(&out, opts.sketch);

  // Count first, then entries in (shard, id) order. Snapshots are taken per
  // shard, so a concurrently-written store encodes *some* consistent-per-
  // shard state; quiesce writers for a point-in-time image.
  std::vector<std::vector<StoreEntry>> shards;
  shards.reserve(store.num_shards());
  uint64_t count = 0;
  for (size_t s = 0; s < store.num_shards(); ++s) {
    shards.push_back(store.ShardSnapshot(s));
    count += shards.back().size();
  }
  wire::AppendU64(&out, count);
  for (const auto& entries : shards) {
    for (const StoreEntry& e : entries) {
      wire::AppendU64(&out, e.id);
      // Serialize cannot fail here: every stored sketch passed the family's
      // CheckCompatible on insert, so it is of the family's concrete type.
      wire::AppendBytes(&out, store.family().Serialize(*e.sketch).value());
    }
  }
  wire::AppendU64(&out, Checksum(out));
  return out;
}

Result<SketchStore> DecodeSketchStore(std::string_view bytes) {
  if (bytes.size() < 8) {
    return Status::InvalidArgument("sketch-store bytes too short");
  }
  const std::string_view payload = bytes.substr(0, bytes.size() - 8);
  {
    wire::Reader trailer(bytes.substr(bytes.size() - 8));
    uint64_t stored = 0;
    IPS_RETURN_IF_ERROR(trailer.ReadU64(&stored));
    if (stored != Checksum(payload)) {
      ChecksumFailuresCounter().Add(1);
      return Status::InvalidArgument("sketch-store checksum mismatch");
    }
  }
  wire::BoundedReader r(payload);
  uint32_t magic = 0;
  IPS_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kStoreMagic) {
    return Status::InvalidArgument("bad sketch-store magic");
  }
  uint8_t version = 0;
  IPS_RETURN_IF_ERROR(r.ReadU8(&version));

  SketchStoreOptions opts;
  if (version == kStoreVersionV1) {
    IPS_RETURN_IF_ERROR(ReadV1Header(&r, &opts));
  } else if (version == kStoreVersion) {
    IPS_RETURN_IF_ERROR(ReadV2Header(&r, &opts));
  } else {
    return Status::InvalidArgument("unsupported sketch-store version " +
                                   std::to_string(version));
  }

  if (opts.num_shards == 0 || opts.num_shards > kMaxDecodedShards) {
    return Status::InvalidArgument("sketch-store shard count out of range");
  }
  auto made = SketchStore::Make(opts);
  IPS_RETURN_IF_ERROR(made.status());
  SketchStore store = std::move(made).value();

  // Every entry costs at least 16 bytes (id + length prefix), so the
  // bounded count read rejects absurd values before the loop.
  uint64_t count = 0;
  IPS_RETURN_IF_ERROR(r.ReadCount(16, &count));
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    IPS_RETURN_IF_ERROR(r.ReadU64(&id));
    std::string_view blob;
    IPS_RETURN_IF_ERROR(r.ReadBytes(&blob));
    auto sketch = store.family().Deserialize(blob);
    IPS_RETURN_IF_ERROR(sketch.status());
    // Insert re-validates against the family's resolved options, so a file
    // whose entries disagree with its own header is rejected.
    IPS_RETURN_IF_ERROR(store.Insert(id, std::move(sketch).value()));
  }
  IPS_RETURN_IF_ERROR(r.ExpectEnd());
  return store;
}

Status CheckStoreMatches(const SketchStore& store,
                         const SketchStoreOptions& expected) {
  if (store.options().family != expected.family) {
    return Status::FailedPrecondition(
        "store family mismatch: file holds '" + store.options().family +
        "', expected '" + expected.family + "'");
  }
  // Resolve the expectation through the registry so defaults (e.g. WMH's
  // L = 0 → DefaultL) compare against the file's resolved values.
  auto family = MakeFamily(expected.family, expected.sketch);
  if (!family.ok()) {
    return Status::FailedPrecondition("expected options are invalid: " +
                                      family.status().message());
  }
  const FamilyOptions& want = family.value()->options();
  const FamilyOptions& got = store.options().sketch;
  if (!(got == want)) {
    return Status::FailedPrecondition(
        "store options mismatch for family '" + expected.family +
        "': file has {" + FamilyOptionsToString(got) + "}, expected {" +
        FamilyOptionsToString(want) + "}");
  }
  return Status::Ok();
}

Status SaveSketchStore(const SketchStore& store, const std::string& path) {
  metrics::ScopedLatency latency(&SaveNsHistogram());
  const std::string bytes = EncodeSketchStore(store);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  BytesWrittenCounter().Add(static_cast<uint64_t>(written));
  if (written != bytes.size() || !close_ok) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

Result<SketchStore> LoadSketchStore(const std::string& path) {
  metrics::ScopedLatency latency(&LoadNsHistogram());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string bytes;
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.append(buffer, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("read error on " + path);
  }
  BytesReadCounter().Add(static_cast<uint64_t>(bytes.size()));
  return DecodeSketchStore(bytes);
}

Result<SketchStore> LoadSketchStoreAs(const std::string& path,
                                      const SketchStoreOptions& expected) {
  auto loaded = LoadSketchStore(path);
  IPS_RETURN_IF_ERROR(loaded.status());
  IPS_RETURN_IF_ERROR(CheckStoreMatches(loaded.value(), expected));
  return loaded;
}

}  // namespace ipsketch
