#include "service/persistence.h"

#include <cstdio>

#include "sketch/serialize.h"

namespace ipsketch {
namespace {

constexpr uint32_t kStoreMagic = 0x49505354;  // "IPST"
constexpr uint8_t kStoreVersion = 1;

// FNV-1a over the encoded payload, stored as an 8-byte trailer. The wire
// framing alone only catches *structural* corruption; a flipped byte inside
// a double payload would otherwise load as a silently wrong sketch.
uint64_t Checksum(std::string_view bytes) {
  uint64_t h = 0xcbf29ce484222325ull;
  for (char c : bytes) {
    h ^= static_cast<uint8_t>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::string EncodeSketchStore(const SketchStore& store) {
  const SketchStoreOptions& opts = store.options();
  std::string out;
  wire::AppendU32(&out, kStoreMagic);
  wire::AppendU8(&out, kStoreVersion);
  wire::AppendU64(&out, opts.dimension);
  wire::AppendU64(&out, opts.num_shards);
  wire::AppendU64(&out, opts.sketch.num_samples);
  wire::AppendU64(&out, opts.sketch.seed);
  wire::AppendU64(&out, opts.sketch.L);
  wire::AppendU8(&out, static_cast<uint8_t>(opts.sketch.engine));

  // Count first, then entries in (shard, id) order. Snapshots are taken per
  // shard, so a concurrently-written store encodes *some* consistent-per-
  // shard state; quiesce writers for a point-in-time image.
  std::vector<std::vector<StoreEntry>> shards;
  shards.reserve(store.num_shards());
  uint64_t count = 0;
  for (size_t s = 0; s < store.num_shards(); ++s) {
    shards.push_back(store.ShardSnapshot(s));
    count += shards.back().size();
  }
  wire::AppendU64(&out, count);
  for (const auto& entries : shards) {
    for (const StoreEntry& e : entries) {
      wire::AppendU64(&out, e.id);
      wire::AppendBytes(&out, SerializeWmh(e.sketch));
    }
  }
  wire::AppendU64(&out, Checksum(out));
  return out;
}

Result<SketchStore> DecodeSketchStore(std::string_view bytes) {
  if (bytes.size() < 8) {
    return Status::InvalidArgument("sketch-store bytes too short");
  }
  const std::string_view payload = bytes.substr(0, bytes.size() - 8);
  {
    wire::Reader trailer(bytes.substr(bytes.size() - 8));
    uint64_t stored = 0;
    IPS_RETURN_IF_ERROR(trailer.ReadU64(&stored));
    if (stored != Checksum(payload)) {
      return Status::InvalidArgument("sketch-store checksum mismatch");
    }
  }
  wire::Reader r(payload);
  uint32_t magic = 0;
  IPS_RETURN_IF_ERROR(r.ReadU32(&magic));
  if (magic != kStoreMagic) {
    return Status::InvalidArgument("bad sketch-store magic");
  }
  uint8_t version = 0;
  IPS_RETURN_IF_ERROR(r.ReadU8(&version));
  if (version != kStoreVersion) {
    return Status::InvalidArgument("unsupported sketch-store version " +
                                   std::to_string(version));
  }

  SketchStoreOptions opts;
  uint64_t num_shards = 0;
  uint8_t engine = 0;
  IPS_RETURN_IF_ERROR(r.ReadU64(&opts.dimension));
  IPS_RETURN_IF_ERROR(r.ReadU64(&num_shards));
  uint64_t num_samples = 0;
  IPS_RETURN_IF_ERROR(r.ReadU64(&num_samples));
  IPS_RETURN_IF_ERROR(r.ReadU64(&opts.sketch.seed));
  IPS_RETURN_IF_ERROR(r.ReadU64(&opts.sketch.L));
  IPS_RETURN_IF_ERROR(r.ReadU8(&engine));
  opts.num_shards = static_cast<size_t>(num_shards);
  opts.sketch.num_samples = static_cast<size_t>(num_samples);
  if (engine > static_cast<uint8_t>(WmhEngine::kExpandedReference)) {
    return Status::InvalidArgument("unknown sketch engine in store file");
  }
  opts.sketch.engine = static_cast<WmhEngine>(engine);

  auto made = SketchStore::Make(opts);
  IPS_RETURN_IF_ERROR(made.status());
  SketchStore store = std::move(made).value();

  uint64_t count = 0;
  IPS_RETURN_IF_ERROR(r.ReadU64(&count));
  // Every entry costs at least 16 bytes (id + length prefix), so this bound
  // rejects absurd counts before the loop.
  if (count > r.Remaining() / 16) {
    return Status::InvalidArgument("sketch-store entry count out of range");
  }
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    IPS_RETURN_IF_ERROR(r.ReadU64(&id));
    std::string_view blob;
    IPS_RETURN_IF_ERROR(r.ReadBytes(&blob));
    auto sketch = DeserializeWmh(blob);
    IPS_RETURN_IF_ERROR(sketch.status());
    // Insert re-validates (m, seed, L, dimension) against the decoded
    // options, so a file with internally inconsistent sketches is rejected.
    IPS_RETURN_IF_ERROR(store.Insert(id, std::move(sketch).value()));
  }
  IPS_RETURN_IF_ERROR(r.ExpectEnd());
  return store;
}

Status SaveSketchStore(const SketchStore& store, const std::string& path) {
  const std::string bytes = EncodeSketchStore(store);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool close_ok = std::fclose(f) == 0;
  if (written != bytes.size() || !close_ok) {
    return Status::Internal("short write to " + path);
  }
  return Status::Ok();
}

Result<SketchStore> LoadSketchStore(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  std::string bytes;
  char buffer[1 << 16];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    bytes.append(buffer, got);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Internal("read error on " + path);
  }
  return DecodeSketchStore(bytes);
}

}  // namespace ipsketch
