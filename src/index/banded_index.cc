#include "index/banded_index.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/rng.h"

namespace ipsketch {
namespace {

/// The salted key of one band: a Mix64 chain over the band's r collision
/// codes, seeded per band so the same run of codes files into different
/// buckets in different bands (and per store seed, so two stores never
/// share bucket geometry by accident).
uint64_t BandKey(const uint64_t* codes, size_t rows, size_t band,
                 uint64_t seed) {
  uint64_t h = Mix64(seed ^ static_cast<uint64_t>(band + 1));
  for (size_t i = 0; i < rows; ++i) h = Mix64(h ^ codes[i]);
  return h;
}

/// Swap-removes one occurrence of `slot` from the bucket under `key`,
/// dropping the bucket entirely when it empties.
void EraseBucketEntry(
    std::unordered_map<uint64_t, std::vector<uint32_t>>* buckets,
    uint64_t key, uint32_t slot) {
  auto it = buckets->find(key);
  IPS_CHECK(it != buckets->end());
  auto& slots = it->second;
  auto pos = std::find(slots.begin(), slots.end(), slot);
  IPS_CHECK(pos != slots.end());
  *pos = slots.back();
  slots.pop_back();
  if (slots.empty()) buckets->erase(it);
}

/// Repoints one occurrence of `from` to `to` in the bucket under `key`.
void RewireBucketEntry(
    std::unordered_map<uint64_t, std::vector<uint32_t>>* buckets,
    uint64_t key, uint32_t from, uint32_t to) {
  auto it = buckets->find(key);
  IPS_CHECK(it != buckets->end());
  auto pos = std::find(it->second.begin(), it->second.end(), from);
  IPS_CHECK(pos != it->second.end());
  *pos = to;
}

}  // namespace

Status BandedLshParams::Validate(size_t num_samples) const {
  if (bands == 0 || rows == 0) {
    return Status::InvalidArgument("bands and rows must be positive");
  }
  if (bands > num_samples / rows) {
    return Status::InvalidArgument(
        "bands * rows (" + std::to_string(bands) + " * " +
        std::to_string(rows) + ") exceeds the family's num_samples (" +
        std::to_string(num_samples) + ")");
  }
  return Status::Ok();
}

BandedIndex::BandedIndex(SketchStore* store, const BandedLshParams& params,
                         SlabCatalog catalog)
    : store_(store),
      params_(params),
      catalog_(std::move(catalog)),
      key_seed_(store->options().sketch.seed) {
  shards_.reserve(store->num_shards());
  for (size_t i = 0; i < store->num_shards(); ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  auto& registry = metrics::MetricsRegistry::Global();
  inserts_ = &registry.GetCounter("ipsketch_index_inserts_total",
                                  "Sketches filed into banded indexes");
  erases_ = &registry.GetCounter("ipsketch_index_erases_total",
                                 "Sketches removed from banded indexes");
  buckets_probed_ = &registry.GetCounter(
      "ipsketch_index_buckets_probed_total",
      "Non-empty band buckets hit by index probes");
  candidates_ = &registry.GetCounter(
      "ipsketch_index_candidates_total",
      "Deduped candidates re-ranked by index probes");
  size_gauge_ = &registry.GetGauge("ipsketch_index_size",
                                   "Live sketches across banded indexes");
}

Result<std::unique_ptr<BandedIndex>> BandedIndex::MakeAttached(
    SketchStore* store, const BandedLshParams& params) {
  IPS_CHECK(store != nullptr);
  const SketchFamily& family = store->family();
  if (!family.supports_banding()) {
    return Status::FailedPrecondition(
        "family '" + family.name() +
        "' does not support LSH banding (coordinates are not "
        "positionally coordinated samples)");
  }
  IPS_RETURN_IF_ERROR(params.Validate(family.options().num_samples));
  auto catalog = SlabCatalog::Make(&family, store->num_shards());
  IPS_RETURN_IF_ERROR(catalog.status());
  std::unique_ptr<BandedIndex> index(
      new BandedIndex(store, params, std::move(catalog).value()));
  // Attach replays every resident sketch through OnInsert, so the index
  // comes back consistent with the store no matter when it is created.
  IPS_RETURN_IF_ERROR(store->AttachListener(index.get()));
  index->attached_ = true;
  return index;
}

BandedIndex::~BandedIndex() {
  if (attached_) {
    // Cannot fail: this index is the attached listener.
    store_->DetachListener(this);
  }
  const auto resident = static_cast<int64_t>(size());
  if (resident != 0) size_gauge_->Add(-resident);
}

size_t BandedIndex::size() const {
  size_t total = 0;
  for (size_t s = 0; s < shards_.size(); ++s) {
    MutexLock lock(&shards_[s]->mu);
    total += catalog_.size(s);
  }
  return total;
}

void BandedIndex::OnInsert(uint64_t id, const AnySketch& sketch) {
  const size_t shard_index = store_->ShardOf(id);
  Shard& shard = *shards_[shard_index];
  MutexLock lock(&shard.mu);
  // insert_or_assign replaces silently; mirror that by removing any stale
  // entry first.
  const bool replaced = RemoveLocked(shard, shard_index, id);
  InsertLocked(shard, shard_index, id, sketch);
  inserts_->Add(1);
  if (!replaced) size_gauge_->Add(1);
}

void BandedIndex::OnErase(uint64_t id) {
  const size_t shard_index = store_->ShardOf(id);
  Shard& shard = *shards_[shard_index];
  MutexLock lock(&shard.mu);
  if (RemoveLocked(shard, shard_index, id)) {
    erases_->Add(1);
    size_gauge_->Add(-1);
  }
}

void BandedIndex::InsertLocked(Shard& shard, size_t shard_index, uint64_t id,
                               const AnySketch& sketch) {
  // Every sketch reaching a listener already passed the store's
  // CheckCompatible, and the family supports banding (MakeAttached), so
  // neither call below can fail.
  std::vector<uint64_t> codes;
  IPS_CHECK(store_->family().AppendLshCodes(sketch, &codes).ok());
  auto slot = catalog_.Append(shard_index, id, sketch);
  IPS_CHECK(slot.ok());
  for (size_t j = 0; j < params_.bands; ++j) {
    const uint64_t key =
        BandKey(codes.data() + j * params_.rows, params_.rows, j, key_seed_);
    shard.keys.push_back(key);
    shard.buckets[key].push_back(slot.value());
  }
}

bool BandedIndex::RemoveLocked(Shard& shard, size_t shard_index,
                               uint64_t id) {
  auto found = catalog_.SlotOf(shard_index, id);
  if (!found.ok()) return false;
  const uint32_t slot = found.value();
  const size_t bands = params_.bands;
  for (size_t j = 0; j < bands; ++j) {
    EraseBucketEntry(&shard.buckets, shard.keys[slot * bands + j], slot);
  }
  auto removed = catalog_.Remove(shard_index, id);
  IPS_CHECK(removed.ok());
  if (removed.value().moved) {
    // The old last slot's lanes now live at `slot`; move its band keys down
    // and repoint its bucket entries.
    const size_t last = catalog_.size(shard_index);
    for (size_t j = 0; j < bands; ++j) {
      const uint64_t key = shard.keys[last * bands + j];
      RewireBucketEntry(&shard.buckets, key, static_cast<uint32_t>(last),
                        slot);
      shard.keys[slot * bands + j] = key;
    }
  }
  shard.keys.resize(catalog_.size(shard_index) * bands);
  return true;
}

Status BandedIndex::QueryBandKeys(const AnySketch& query,
                                  std::vector<uint64_t>* keys) const {
  std::vector<uint64_t> codes;
  IPS_RETURN_IF_ERROR(store_->family().AppendLshCodes(query, &codes));
  keys->clear();
  keys->reserve(params_.bands);
  for (size_t j = 0; j < params_.bands; ++j) {
    keys->push_back(
        BandKey(codes.data() + j * params_.rows, params_.rows, j, key_seed_));
  }
  return Status::Ok();
}

Status BandedIndex::ProbeShard(const AnySketch& query,
                               const std::vector<uint64_t>& keys,
                               size_t shard_index, TopKHeap* heap,
                               IndexProbeStats* stats) const {
  IPS_CHECK(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  MutexLock lock(&shard.mu);
  std::vector<uint32_t> candidates;
  uint64_t buckets_hit = 0;
  for (uint64_t key : keys) {
    auto it = shard.buckets.find(key);
    if (it == shard.buckets.end()) continue;
    ++buckets_hit;
    candidates.insert(candidates.end(), it->second.begin(), it->second.end());
  }
  stats->buckets_probed += buckets_hit;
  buckets_probed_->Add(buckets_hit);
  if (candidates.empty()) return Status::Ok();
  // A sketch colliding in several bands appears once per collision; dedup
  // before the (much more expensive) re-rank.
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());
  stats->candidates += candidates.size();
  candidates_->Add(candidates.size());
  std::vector<double> estimates(candidates.size());
  IPS_RETURN_IF_ERROR(catalog_.EstimateMany(shard_index, query,
                                            candidates.data(),
                                            candidates.size(),
                                            estimates.data()));
  for (size_t i = 0; i < candidates.size(); ++i) {
    heap->Offer(static_cast<size_t>(catalog_.IdAt(shard_index, candidates[i])),
                estimates[i]);
  }
  return Status::Ok();
}

Status BandedIndex::ScanShard(const AnySketch& query, size_t shard_index,
                              TopKHeap* heap, size_t* scanned) const {
  IPS_CHECK(shard_index < shards_.size());
  const Shard& shard = *shards_[shard_index];
  MutexLock lock(&shard.mu);
  const size_t resident = catalog_.size(shard_index);
  if (resident == 0) return Status::Ok();
  std::vector<double> estimates(resident);
  IPS_RETURN_IF_ERROR(
      catalog_.EstimateAll(shard_index, query, estimates.data()));
  for (size_t slot = 0; slot < resident; ++slot) {
    heap->Offer(static_cast<size_t>(catalog_.IdAt(shard_index, slot)),
                estimates[slot]);
  }
  *scanned += resident;
  return Status::Ok();
}

Status BandedIndex::ScanShardBatch(
    const std::vector<const AnySketch*>& queries, size_t shard_index,
    const std::vector<TopKHeap*>& heaps, size_t* scanned) const {
  IPS_CHECK(shard_index < shards_.size());
  IPS_CHECK(queries.size() == heaps.size());
  const Shard& shard = *shards_[shard_index];
  MutexLock lock(&shard.mu);
  const size_t resident = catalog_.size(shard_index);
  if (resident == 0 || queries.empty()) return Status::Ok();
  std::vector<double> estimates(resident);
  for (size_t q = 0; q < queries.size(); ++q) {
    IPS_RETURN_IF_ERROR(
        catalog_.EstimateAll(shard_index, *queries[q], estimates.data()));
    for (size_t slot = 0; slot < resident; ++slot) {
      heaps[q]->Offer(
          static_cast<size_t>(catalog_.IdAt(shard_index, slot)),
          estimates[slot]);
    }
  }
  *scanned += resident;
  return Status::Ok();
}

}  // namespace ipsketch
