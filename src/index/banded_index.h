// MinHash-LSH banded candidate index over a SketchStore — sublinear top-k.
//
// The m positionally-coordinated samples of each stored sketch are split
// into b bands of r rows (b·r ≤ m); each band's r per-sample collision
// codes hash to one 64-bit band key, and every stored sketch is filed into
// one bucket per band. A query collides with a stored sketch in a band iff
// all r samples match, which for (weighted) Jaccard similarity J happens
// with probability J^r per band, so a sketch becomes a candidate with
// probability 1 − (1 − J^r)^b — the classic LSH S-curve: (b, r) is the
// recall/cost knob. Candidates are re-ranked exactly (through the family's
// span estimator core over the slab catalog, bit-identical to the pairwise
// estimator), so banding only ever *misses* true hits, never mis-scores
// them.
//
// The index is a SketchStore::Listener: MakeAttached subscribes it to the
// store and replays what is already resident, after which every insert,
// replace, and erase is mirrored synchronously under the store's shard lock
// for that id. The index's shard partition mirrors the store's
// (SketchStore::ShardOf), and each index shard has its own mutex; the only
// lock order is store-shard → index-shard, so queries (which take only
// index locks) never deadlock against writers.
//
// Supported families: exactly those with FamilyInfo::supports_banding (the
// minwise samplers wmh, icws, mh, wmh_compact, wmh_bbit). The linear
// sketches (cs, jl) and kmv are rejected at MakeAttached with
// FailedPrecondition — their coordinates are not positionally coordinated
// samples, so banding them would be silently meaningless.

#ifndef IPSKETCH_INDEX_BANDED_INDEX_H_
#define IPSKETCH_INDEX_BANDED_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "core/similarity_search.h"
#include "index/slab_catalog.h"
#include "service/metrics.h"
#include "service/sketch_store.h"

namespace ipsketch {

/// The (b, r) banding knob. Recall for similarity J is 1 − (1 − J^r)^b:
/// more bands = more recall and more candidates; more rows = sharper
/// selectivity. bands·rows ≤ m; samples beyond bands·rows are unused by the
/// filter (re-ranking always uses all m).
struct BandedLshParams {
  size_t bands = 16;
  size_t rows = 4;

  /// Ok iff bands, rows ≥ 1 and bands·rows ≤ num_samples.
  Status Validate(size_t num_samples) const;
};

/// Per-query probe counters, aggregated across shards by the caller.
struct IndexProbeStats {
  uint64_t buckets_probed = 0;  ///< non-empty buckets hit
  uint64_t candidates = 0;      ///< deduped candidates re-ranked
};

/// The banded index + slab catalog over one store. Thread-safe; see the
/// file comment for the locking model.
class BandedIndex final : public SketchStore::Listener {
 public:
  /// Builds an index over `store` and attaches it as the store's mutation
  /// listener, replaying everything already resident. FailedPrecondition if
  /// the store's family does not support banding or a listener is already
  /// attached; InvalidArgument for out-of-range (b, r). The store must
  /// outlive the returned index (which detaches itself on destruction).
  static Result<std::unique_ptr<BandedIndex>> MakeAttached(
      SketchStore* store, const BandedLshParams& params);

  /// Detaches from the store.
  ~BandedIndex() override;

  BandedIndex(const BandedIndex&) = delete;
  BandedIndex& operator=(const BandedIndex&) = delete;

  /// The store this index mirrors.
  const SketchStore* store() const { return store_; }

  /// The banding knob the index was built with.
  const BandedLshParams& params() const { return params_; }

  /// Total resident sketches (sums shards; not a point-in-time snapshot
  /// across them, same caveat as SketchStore::size).
  size_t size() const;

  // SketchStore::Listener — called under the store's shard lock.
  void OnInsert(uint64_t id, const AnySketch& sketch) override;
  void OnErase(uint64_t id) override;

  /// The query's b band keys, in band order — computed once per query and
  /// shared across shard probes. InvalidArgument unless `query` passes the
  /// family's CheckCompatible.
  Status QueryBandKeys(const AnySketch& query,
                       std::vector<uint64_t>* keys) const;

  /// Probes one shard's buckets with `keys` (from QueryBandKeys), re-ranks
  /// the deduped candidates through the slab, and offers (id, estimate)
  /// pairs to `heap`. Holds the index shard's lock for the duration.
  Status ProbeShard(const AnySketch& query,
                    const std::vector<uint64_t>& keys, size_t shard,
                    TopKHeap* heap, IndexProbeStats* stats) const;

  /// Estimates `query` against every resident sketch of one shard through
  /// the slab arena (no banding filter) and offers all of them to `heap` —
  /// the exact-scan path over slab layout. `*scanned` grows by the shard's
  /// resident count.
  Status ScanShard(const AnySketch& query, size_t shard, TopKHeap* heap,
                   size_t* scanned) const;

  /// Batch form of ScanShard: estimates every query of `queries` against
  /// the shard's resident slab under ONE shard-lock hold, reusing the
  /// estimate buffer across queries — the 1-vs-many coalescing entry point
  /// the FrontDoor's admission queue feeds (SlabCatalog::EstimateAll per
  /// query over contiguous lanes). `heaps[i]` receives query i's offers;
  /// `*scanned` grows by the shard's resident count (entries, not
  /// entry × query pairs). Fails on the first bad query, leaving heaps of
  /// earlier queries populated.
  Status ScanShardBatch(const std::vector<const AnySketch*>& queries,
                        size_t shard, const std::vector<TopKHeap*>& heaps,
                        size_t* scanned) const;

 private:
  struct Shard {
    /// kIndexShard: acquired inside listener callbacks while the store's
    /// shard lock (kStoreShard) is held — the mirror protocol's only order.
    mutable Mutex mu{LockRank::kIndexShard};
    /// Band keys of resident slots, slot-major: slot s's key for band j at
    /// s·bands + j. Swap-removed in step with the slab catalog's slots.
    std::vector<uint64_t> keys IPS_GUARDED_BY(mu);
    /// Band key → slots filed under it (across all bands; keys are salted
    /// per band, so cross-band collisions are as unlikely as any other).
    std::unordered_map<uint64_t, std::vector<uint32_t>> buckets
        IPS_GUARDED_BY(mu);
  };

  BandedIndex(SketchStore* store, const BandedLshParams& params,
              SlabCatalog catalog);

  /// Appends `sketch` under `id` to `shard` (which is
  /// shards_[shard_index]; the index is still needed for the catalog side).
  void InsertLocked(Shard& shard, size_t shard_index, uint64_t id,
                    const AnySketch& sketch) IPS_REQUIRES(shard.mu);

  /// Removes `id` from `shard` if resident (swap-remove: bucket references
  /// to the moved last slot are rewired). Returns false if the id was not
  /// resident.
  bool RemoveLocked(Shard& shard, size_t shard_index, uint64_t id)
      IPS_REQUIRES(shard.mu);

  SketchStore* store_;
  BandedLshParams params_;
  /// Partitioned exactly like shards_: slab s is only ever touched with
  /// shards_[s]->mu held. The analysis cannot express "guarded by the
  /// same-indexed mutex", so the discipline here rests on the REQUIRES
  /// contracts of the *Locked helpers plus the per-shard lock in every
  /// public read path.
  SlabCatalog catalog_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t key_seed_ = 0;
  bool attached_ = false;

  // Process-wide index metrics (registry-owned).
  metrics::Counter* inserts_ = nullptr;
  metrics::Counter* erases_ = nullptr;
  metrics::Counter* buckets_probed_ = nullptr;
  metrics::Counter* candidates_ = nullptr;
  metrics::Gauge* size_gauge_ = nullptr;
};

}  // namespace ipsketch

#endif  // IPSKETCH_INDEX_BANDED_INDEX_H_
