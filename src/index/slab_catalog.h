// The slot-addressed side of the banded index: per shard, one
// structure-of-arrays SketchSlab (sketch/family.h) plus the slot ↔ id
// bookkeeping a swap-remove arena needs. Candidate re-ranking and the
// exact-scan fallback both estimate 1-query-vs-many-slots straight through
// the slab's contiguous lanes (and so through the dispatched SIMD kernels),
// with estimates bit-identical to SketchFamily::Estimate.
//
// NOT thread-safe: every method takes a shard index and must run under the
// owner's lock for that shard (index/banded_index.h holds one
// ipsketch::Mutex at LockRank::kIndexShard per shard; the shard partition
// mirrors SketchStore::ShardOf). Clang's thread-safety analysis cannot
// express "guarded by the owner's same-indexed mutex", so the contract is
// carried by the owner's IPS_REQUIRES(shard.mu) helpers rather than
// IPS_GUARDED_BY annotations here.

#ifndef IPSKETCH_INDEX_SLAB_CATALOG_H_
#define IPSKETCH_INDEX_SLAB_CATALOG_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "sketch/family.h"

namespace ipsketch {

/// Per-shard slabs + slot bookkeeping. Slots are dense [0, size(shard)) and
/// renumber on Remove (swap-remove: the last slot moves into the hole).
class SlabCatalog {
 public:
  /// What `Remove` did: `slot` is now free of the removed id; if `moved`,
  /// the entry formerly at the last slot (`moved_id`) now lives at `slot`
  /// (the caller rewires any slot-keyed references it holds).
  struct RemoveResult {
    uint32_t slot = 0;
    bool moved = false;
    uint64_t moved_id = 0;
  };

  /// An empty catalog with `num_shards` slabs of `family`'s lanes.
  /// FailedPrecondition unless the family supports banding.
  static Result<SlabCatalog> Make(const SketchFamily* family,
                                  size_t num_shards);

  /// Number of shards (fixed at Make).
  size_t num_shards() const { return shards_.size(); }

  /// Number of resident sketches in `shard`.
  size_t size(size_t shard) const { return shards_[shard].ids.size(); }

  /// Appends `sketch` under `id`, returning its slot. InvalidArgument if the
  /// sketch fails the family's CheckCompatible or `id` is already resident
  /// in the shard (callers remove first on replace).
  Result<uint32_t> Append(size_t shard, uint64_t id, const AnySketch& sketch);

  /// Swap-removes `id` from `shard`. NotFound if absent.
  Result<RemoveResult> Remove(size_t shard, uint64_t id);

  /// The slot `id` occupies in `shard`; NotFound if absent.
  Result<uint32_t> SlotOf(size_t shard, uint64_t id) const;

  /// The id resident at `slot` of `shard`. Dies if out of range.
  uint64_t IdAt(size_t shard, size_t slot) const {
    IPS_CHECK(slot < shards_[shard].ids.size());
    return shards_[shard].ids[slot];
  }

  /// Estimates `query` against `slots[0..count)` of `shard` into
  /// `out[0..count)` — the candidate re-rank path.
  Status EstimateMany(size_t shard, const AnySketch& query,
                      const uint32_t* slots, size_t count, double* out) const {
    return shards_[shard].slab->EstimateMany(query, slots, count, out);
  }

  /// Estimates `query` against every slot of `shard` into
  /// `out[0..size(shard))` — the exact-scan path.
  Status EstimateAll(size_t shard, const AnySketch& query, double* out) const {
    return shards_[shard].slab->EstimateAll(query, out);
  }

 private:
  struct ShardState {
    std::unique_ptr<SketchSlab> slab;
    std::vector<uint64_t> ids;                     // slot → id
    std::unordered_map<uint64_t, uint32_t> slot_of;  // id → slot
  };

  explicit SlabCatalog(std::vector<ShardState> shards)
      : shards_(std::move(shards)) {}

  std::vector<ShardState> shards_;
};

}  // namespace ipsketch

#endif  // IPSKETCH_INDEX_SLAB_CATALOG_H_
