#include "index/slab_catalog.h"

#include <string>
#include <utility>

namespace ipsketch {

Result<SlabCatalog> SlabCatalog::Make(const SketchFamily* family,
                                      size_t num_shards) {
  IPS_CHECK(family != nullptr);
  if (num_shards == 0) {
    return Status::InvalidArgument("num_shards must be positive");
  }
  if (!family->supports_banding()) {
    return Status::FailedPrecondition(
        "family '" + family->name() +
        "' does not support slab catalogs (supports_banding is false)");
  }
  std::vector<ShardState> shards(num_shards);
  for (auto& shard : shards) {
    auto slab = family->NewSlab();
    IPS_RETURN_IF_ERROR(slab.status());
    shard.slab = std::move(slab).value();
  }
  return SlabCatalog(std::move(shards));
}

Result<uint32_t> SlabCatalog::Append(size_t shard, uint64_t id,
                                     const AnySketch& sketch) {
  ShardState& state = shards_[shard];
  if (state.slot_of.find(id) != state.slot_of.end()) {
    return Status::InvalidArgument("id " + std::to_string(id) +
                                   " is already resident in the shard");
  }
  IPS_RETURN_IF_ERROR(state.slab->Append(sketch));
  const auto slot = static_cast<uint32_t>(state.ids.size());
  state.ids.push_back(id);
  state.slot_of.emplace(id, slot);
  return slot;
}

Result<SlabCatalog::RemoveResult> SlabCatalog::Remove(size_t shard,
                                                      uint64_t id) {
  ShardState& state = shards_[shard];
  auto it = state.slot_of.find(id);
  if (it == state.slot_of.end()) {
    return Status::NotFound("id " + std::to_string(id) +
                            " is not resident in the shard");
  }
  RemoveResult result;
  result.slot = it->second;
  state.slot_of.erase(it);
  const size_t last = state.ids.size() - 1;
  state.slab->SwapRemove(result.slot);
  if (result.slot != last) {
    result.moved = true;
    result.moved_id = state.ids[last];
    state.ids[result.slot] = result.moved_id;
    state.slot_of[result.moved_id] = result.slot;
  }
  state.ids.pop_back();
  return result;
}

Result<uint32_t> SlabCatalog::SlotOf(size_t shard, uint64_t id) const {
  const ShardState& state = shards_[shard];
  auto it = state.slot_of.find(id);
  if (it == state.slot_of.end()) {
    return Status::NotFound("id " + std::to_string(id) +
                            " is not resident in the shard");
  }
  return it->second;
}

}  // namespace ipsketch
