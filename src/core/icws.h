// Ioffe's Improved Consistent Weighted Sampling (ICWS, ICDM 2010) adapted to
// inner product estimation, plus a DartMinHash-accelerated variant.
//
// The paper notes (§5, "Efficient Weighted Hashing") that Consistent
// Weighted Sampling schemes are essentially equivalent to the expanded
// Weighted MinHash but computationally cheaper, and leaves their adaptation
// to inner product sketching as future work. This module implements that
// adaptation:
//
//   * Sketching costs O(nnz · m) with no discretization parameter at all —
//     ICWS samples index j with probability exactly proportional to the
//     continuous weight S_j = (a[j]/‖a‖)², and two sketches collide on a
//     sample with probability equal to the *weighted Jaccard similarity* of
//     the squared normalized vectors (the same collision law as Fact 5).
//   * The estimator mirrors Algorithm 5, but estimates the weighted union
//     size M = Σ max(ã², b̃²) through the closed form M = 2/(1 + J̄) (valid
//     because both weight vectors sum to 1) with J̄ estimated by the match
//     rate.
//
// Matches are detected by comparing a 64-bit fingerprint of the sampled
// (index, "consistent level" t_j) pair, which CWS guarantees is equal for
// both vectors precisely when they sample consistently.
//
// Two engines realize these semantics:
//
//   * kExact — Ioffe's scheme verbatim, O(nnz · m) per vector: the
//     continuous-weight reference.
//   * kDart — discretizes the weights with Algorithm 4 at a parameter L and
//     runs the dart engine (core/dart_minhash.h) over the expanded blocks,
//     expected O(nnz + m · log m) per vector: the default ingest engine.
//     The fingerprint is the bit pattern of the per-sample minimum hash,
//     which two coordinated sketches share exactly when they sampled the
//     same expanded slot; the collision law is the weighted Jaccard of the
//     *discretized* squared vectors, within O(1/L) of the continuous one.
//
// Engines realize different hash functions: sketches are only comparable
// across equal engines (and, for kDart, equal L) — enforced by the
// estimator and carried in the sketch.

#ifndef IPSKETCH_CORE_ICWS_H_
#define IPSKETCH_CORE_ICWS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/rounding.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Which engine realizes the ICWS sampling semantics. Numeric values are
/// wire-stable (sketch/serialize.cc stores them).
enum class IcwsEngine {
  kExact = 0,  ///< Ioffe's continuous scheme, O(nnz·m)
  kDart = 1,   ///< discretized dart engine, O(nnz + m·log m); default
};

/// Configuration for `SketchIcws`.
struct IcwsOptions {
  /// Number of samples m.
  size_t num_samples = 128;
  /// Random seed; sketches are comparable only with equal seeds.
  uint64_t seed = 0;
  /// Engine choice; see IcwsEngine.
  IcwsEngine engine = IcwsEngine::kExact;
  /// Discretization parameter for the kDart engine (Algorithm 4); 0 selects
  /// DefaultL(n). Ignored by kExact.
  uint64_t L = 0;

  /// Validates field ranges.
  Status Validate() const;
};

/// An ICWS inner product sketch: m (fingerprint, value) samples plus ‖a‖.
struct IcwsSketch {
  /// Fingerprint of the sampled (index, level) pair per sample; 0 for the
  /// empty sketch.
  std::vector<uint64_t> fingerprints;
  /// Normalized entry ã[j] = a[j]/‖a‖ at the sampled index, per sample (the
  /// discretized z̃[j] under kDart).
  std::vector<double> values;
  /// Euclidean norm of the original vector.
  double norm = 0.0;
  uint64_t seed = 0;
  uint64_t dimension = 0;
  /// Engine the sketch was built by; estimation requires equality.
  IcwsEngine engine = IcwsEngine::kExact;
  /// Resolved discretization parameter (kDart only; 0 under kExact).
  uint64_t L = 0;

  /// Number of samples m.
  size_t num_samples() const { return fingerprints.size(); }

  /// Storage in 64-bit words: one double + one 64-bit fingerprint per
  /// sample, + the norm. (A production system could store 32-bit
  /// fingerprints; we charge the same 1.5 words/sample as WMH so the
  /// methods are compared at equal budget.)
  double StorageWords() const {
    return 1.5 * static_cast<double>(num_samples()) + 1.0;
  }
};

/// Computes the ICWS sketch of `a`. The zero vector yields an empty sketch
/// (norm 0) that estimates 0 against anything.
Result<IcwsSketch> SketchIcws(const SparseVector& a, const IcwsOptions& options);

/// Reusable sketching context mirroring WmhSketcher: options validated
/// once, discretization scratch recycled across calls (kDart). NOT
/// thread-safe; concurrent ingest uses one sketcher per worker.
class IcwsSketcher {
 public:
  /// Validates `options` and builds a context. Fails like SketchIcws.
  static Result<IcwsSketcher> Make(const IcwsOptions& options);

  /// The options this context sketches with.
  const IcwsOptions& options() const { return options_; }

  /// Sketches `a` into `*out`, reusing its vectors' capacity.
  Status Sketch(const SparseVector& a, IcwsSketch* out);

 private:
  explicit IcwsSketcher(const IcwsOptions& options) : options_(options) {}

  IcwsOptions options_;
  DiscretizedVector scratch_;
  std::vector<double> hash_scratch_;
};

/// Estimates ⟨a, b⟩ from two ICWS sketches; see the module comment.
Result<double> EstimateIcwsInnerProduct(const IcwsSketch& a,
                                        const IcwsSketch& b);

/// Span-level core of `EstimateIcwsInnerProduct`: the match-rate estimator
/// over the raw fingerprint/value lanes of two sketches the caller has
/// already verified to be mutually comparable (equal m, seed, engine, L,
/// dimension). Both the pairwise estimator above and the slab catalog's
/// 1-vs-many re-rank path (`SketchFamily::NewSlab`) run through this one
/// function, which is what makes their estimates bit-identical. `m` must be
/// positive.
Result<double> EstimateIcwsSpans(
    const uint64_t* a_fingerprints, const double* a_values, double a_norm,
    const uint64_t* b_fingerprints, const double* b_values, double b_norm,
    size_t m);

/// Prefix truncation (first m samples), as with the other sampling sketches.
IcwsSketch TruncatedIcws(const IcwsSketch& sketch, size_t m);

}  // namespace ipsketch

#endif  // IPSKETCH_CORE_ICWS_H_
