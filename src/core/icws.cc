#include "core/icws.h"

#include <bit>
#include <cmath>
#include <limits>
#include <utility>

#include "common/rng.h"
#include "core/dart_minhash.h"
#include "core/simd/dispatch.h"

namespace ipsketch {
namespace {

// Domain-separation tag for ICWS per-(sample, index) streams. Also keys the
// kDart engine's seed, so an ICWS dart sketch and a WMH dart sketch with
// equal (seed, L, m) draw independent randomness.
constexpr uint64_t kIcwsTag = 0xA5C1E771C0DE1234ull;

// Ioffe's continuous scheme, one sample row at a time.
void SketchExact(const SparseVector& a, const IcwsOptions& options,
                 double norm, IcwsSketch* out) {
  for (size_t s = 0; s < options.num_samples; ++s) {
    const uint64_t sample_key = MixCombine(options.seed, kIcwsTag, s);
    double best_a = std::numeric_limits<double>::infinity();
    uint64_t best_fp = 0;
    double best_value = 0.0;
    for (const Entry& e : a.entries()) {
      const double z = e.value / norm;
      const double weight = z * z;  // S_j in (0, 1]
      // Ioffe's ICWS draws, keyed consistently by (seed, sample, index):
      //   r, c ~ Gamma(2, 1),  β ~ U[0, 1)
      //   t  = ⌊ln(S)/r + β⌋          (the consistent "level")
      //   y  = exp(r·(t − β))         (a consistent weight ≤ S)
      //   a* = c / (y·exp(r))         (the minimized key)
      SplitMix64 rng(Mix64(sample_key ^ e.index));
      const double r = -std::log(PositiveUnitFromU64(rng.Next())) -
                       std::log(PositiveUnitFromU64(rng.Next()));
      const double c = -std::log(PositiveUnitFromU64(rng.Next())) -
                       std::log(PositiveUnitFromU64(rng.Next()));
      const double beta = UnitFromU64(rng.Next());
      const double t = std::floor(std::log(weight) / r + beta);
      const double y = std::exp(r * (t - beta));
      const double a_key = c / (y * std::exp(r));
      if (a_key < best_a) {
        best_a = a_key;
        // Fingerprint the (index, level) pair. CWS guarantees two vectors
        // sample consistently iff they agree on both.
        best_fp = MixCombine(e.index, static_cast<uint64_t>(
                                          static_cast<int64_t>(t)));
        best_value = z;
      }
    }
    out->fingerprints[s] = best_fp;
    out->values[s] = best_value;
  }
}

}  // namespace

Status IcwsOptions::Validate() const {
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (engine != IcwsEngine::kExact && engine != IcwsEngine::kDart) {
    return Status::InvalidArgument("unknown engine");
  }
  return Status::Ok();
}

Result<IcwsSketcher> IcwsSketcher::Make(const IcwsOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  return IcwsSketcher(options);
}

Status IcwsSketcher::Sketch(const SparseVector& a, IcwsSketch* out) {
  out->seed = options_.seed;
  out->dimension = a.dimension();
  out->engine = options_.engine;
  out->L = options_.engine == IcwsEngine::kDart
               ? (options_.L != 0 ? options_.L : DefaultL(a.dimension()))
               : 0;

  if (a.empty()) {
    out->norm = 0.0;
    out->fingerprints.assign(options_.num_samples, 0);
    out->values.assign(options_.num_samples, 0.0);
    return Status::Ok();
  }

  out->fingerprints.resize(options_.num_samples);
  out->values.resize(options_.num_samples);

  if (options_.engine == IcwsEngine::kExact) {
    out->norm = a.Norm();
    SketchExact(a, options_, out->norm, out);
    return Status::Ok();
  }

  // kDart: Algorithm-4 rounding, then the dart kernel over the expanded
  // blocks. The per-sample minimum hash identifies the sampled expanded
  // slot, so its bit pattern is the consistency fingerprint: coordinated
  // sketches share it exactly when they sampled the same slot.
  IPS_RETURN_IF_ERROR(RoundInto(a, out->L, &scratch_));
  out->norm = scratch_.original_norm;
  hash_scratch_.resize(options_.num_samples);
  SketchWithDart(scratch_, MixCombine(options_.seed, kIcwsTag),
                 options_.num_samples, &hash_scratch_, &out->values);
  for (size_t s = 0; s < options_.num_samples; ++s) {
    out->fingerprints[s] = std::bit_cast<uint64_t>(hash_scratch_[s]);
  }
  return Status::Ok();
}

Result<IcwsSketch> SketchIcws(const SparseVector& a,
                              const IcwsOptions& options) {
  auto made = IcwsSketcher::Make(options);
  IPS_RETURN_IF_ERROR(made.status());
  IcwsSketcher sketcher = std::move(made).value();
  IcwsSketch sketch;
  IPS_RETURN_IF_ERROR(sketcher.Sketch(a, &sketch));
  return sketch;
}

Result<double> EstimateIcwsInnerProduct(const IcwsSketch& a,
                                        const IcwsSketch& b) {
  if (a.num_samples() != b.num_samples()) {
    return Status::InvalidArgument("sketch sample counts differ");
  }
  if (a.num_samples() == 0) {
    return Status::InvalidArgument("sketches are empty");
  }
  if (a.seed != b.seed) {
    return Status::InvalidArgument("sketch seeds differ");
  }
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }
  if (a.engine != b.engine) {
    return Status::InvalidArgument("sketch engines differ");
  }
  if (a.L != b.L) {
    return Status::InvalidArgument("sketch discretization parameters differ");
  }
  return EstimateIcwsSpans(a.fingerprints.data(), a.values.data(), a.norm,
                           b.fingerprints.data(), b.values.data(), b.norm,
                           a.num_samples());
}

Result<double> EstimateIcwsSpans(const uint64_t* a_fingerprints,
                                 const double* a_values, double a_norm,
                                 const uint64_t* b_fingerprints,
                                 const double* b_values, double b_norm,
                                 size_t m) {
  if (m == 0) return Status::InvalidArgument("sketches are empty");
  if (a_norm == 0.0 || b_norm == 0.0) return 0.0;

  // The fingerprint-match hot loop, dispatched to the widest kernel tier
  // the CPU supports (scalar and vector tiers are bit-identical).
  const simd::MatchStats stats = simd::ActiveKernel().match_u64(
      a_fingerprints, b_fingerprints, a_values, b_values, m);
  const double md = static_cast<double>(m);
  // Weighted union size via the unit-norm closed form M = 2/(1 + J̄).
  const double j_hat = static_cast<double>(stats.match_count) / md;
  const double m_hat = 2.0 / (1.0 + j_hat);
  return a_norm * b_norm * (m_hat / md) * stats.weighted_match_sum;
}

IcwsSketch TruncatedIcws(const IcwsSketch& sketch, size_t m) {
  IPS_CHECK(m > 0 && m <= sketch.num_samples());
  IcwsSketch out = sketch;
  out.fingerprints.resize(m);
  out.values.resize(m);
  return out;
}

}  // namespace ipsketch
