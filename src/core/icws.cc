#include "core/icws.h"

#include <cmath>
#include <limits>

#include "common/rng.h"

namespace ipsketch {
namespace {

// Domain-separation tag for ICWS per-(sample, index) streams.
constexpr uint64_t kIcwsTag = 0xA5C1E771C0DE1234ull;

}  // namespace

Status IcwsOptions::Validate() const {
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  return Status::Ok();
}

Result<IcwsSketch> SketchIcws(const SparseVector& a,
                              const IcwsOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());

  IcwsSketch sketch;
  sketch.seed = options.seed;
  sketch.dimension = a.dimension();
  if (a.empty()) {
    sketch.norm = 0.0;
    sketch.fingerprints.assign(options.num_samples, 0);
    sketch.values.assign(options.num_samples, 0.0);
    return sketch;
  }

  const double norm = a.Norm();
  sketch.norm = norm;
  sketch.fingerprints.resize(options.num_samples);
  sketch.values.resize(options.num_samples);

  for (size_t s = 0; s < options.num_samples; ++s) {
    const uint64_t sample_key = MixCombine(options.seed, kIcwsTag, s);
    double best_a = std::numeric_limits<double>::infinity();
    uint64_t best_fp = 0;
    double best_value = 0.0;
    for (const Entry& e : a.entries()) {
      const double z = e.value / norm;
      const double weight = z * z;  // S_j in (0, 1]
      // Ioffe's ICWS draws, keyed consistently by (seed, sample, index):
      //   r, c ~ Gamma(2, 1),  β ~ U[0, 1)
      //   t  = ⌊ln(S)/r + β⌋          (the consistent "level")
      //   y  = exp(r·(t − β))         (a consistent weight ≤ S)
      //   a* = c / (y·exp(r))         (the minimized key)
      SplitMix64 rng(Mix64(sample_key ^ e.index));
      const double r = -std::log(PositiveUnitFromU64(rng.Next())) -
                       std::log(PositiveUnitFromU64(rng.Next()));
      const double c = -std::log(PositiveUnitFromU64(rng.Next())) -
                       std::log(PositiveUnitFromU64(rng.Next()));
      const double beta = UnitFromU64(rng.Next());
      const double t = std::floor(std::log(weight) / r + beta);
      const double y = std::exp(r * (t - beta));
      const double a_key = c / (y * std::exp(r));
      if (a_key < best_a) {
        best_a = a_key;
        // Fingerprint the (index, level) pair. CWS guarantees two vectors
        // sample consistently iff they agree on both.
        best_fp = MixCombine(e.index, static_cast<uint64_t>(
                                          static_cast<int64_t>(t)));
        best_value = z;
      }
    }
    sketch.fingerprints[s] = best_fp;
    sketch.values[s] = best_value;
  }
  return sketch;
}

Result<double> EstimateIcwsInnerProduct(const IcwsSketch& a,
                                        const IcwsSketch& b) {
  if (a.num_samples() != b.num_samples()) {
    return Status::InvalidArgument("sketch sample counts differ");
  }
  if (a.num_samples() == 0) {
    return Status::InvalidArgument("sketches are empty");
  }
  if (a.seed != b.seed) {
    return Status::InvalidArgument("sketch seeds differ");
  }
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }
  if (a.norm == 0.0 || b.norm == 0.0) return 0.0;

  const size_t m = a.num_samples();
  double weighted_match_sum = 0.0;
  size_t match_count = 0;
  for (size_t i = 0; i < m; ++i) {
    if (a.fingerprints[i] == b.fingerprints[i]) {
      const double va = a.values[i];
      const double vb = b.values[i];
      const double q = std::min(va * va, vb * vb);
      if (q > 0.0) {
        weighted_match_sum += va * vb / q;
        ++match_count;
      }
    }
  }
  const double md = static_cast<double>(m);
  // Weighted union size via the unit-norm closed form M = 2/(1 + J̄).
  const double j_hat = static_cast<double>(match_count) / md;
  const double m_hat = 2.0 / (1.0 + j_hat);
  return a.norm * b.norm * (m_hat / md) * weighted_match_sum;
}

IcwsSketch TruncatedIcws(const IcwsSketch& sketch, size_t m) {
  IPS_CHECK(m > 0 && m <= sketch.num_samples());
  IcwsSketch out = sketch;
  out.fingerprints.resize(m);
  out.values.resize(m);
  return out;
}

}  // namespace ipsketch
