#include "core/rounding.h"

#include <algorithm>
#include <cmath>

namespace ipsketch {

uint64_t DiscretizedVector::TotalReps() const {
  uint64_t total = 0;
  for (const auto& e : entries) total += e.reps;
  return total;
}

SparseVector DiscretizedVector::ToSparseVector() const {
  std::vector<Entry> out;
  out.reserve(entries.size());
  for (const auto& e : entries) out.push_back({e.index, e.value});
  return SparseVector::MakeOrDie(dimension, std::move(out));
}

double DiscretizedVector::SquaredValueAt(uint64_t index) const {
  auto it = std::lower_bound(entries.begin(), entries.end(), index,
                             [](const DiscretizedEntry& e, uint64_t idx) {
                               return e.index < idx;
                             });
  if (it != entries.end() && it->index == index) {
    return static_cast<double>(it->reps) / static_cast<double>(L);
  }
  return 0.0;
}

Result<DiscretizedVector> Round(const SparseVector& a, uint64_t L) {
  DiscretizedVector out;
  IPS_RETURN_IF_ERROR(RoundInto(a, L, &out));
  return out;
}

Status RoundInto(const SparseVector& a, uint64_t L, DiscretizedVector* out_p) {
  if (L == 0) return Status::InvalidArgument("L must be positive");
  const double norm = a.Norm();
  if (norm == 0.0) {
    return Status::FailedPrecondition("cannot round the zero vector");
  }

  const double Ld = static_cast<double>(L);
  DiscretizedVector& out = *out_p;
  out.dimension = a.dimension();
  out.L = L;
  out.original_norm = norm;
  out.entries.clear();
  out.entries.reserve(a.nnz());

  // Line 1 of Algorithm 4: round every squared entry down to a multiple of
  // 1/L, tracked as integer repetition counts t[i] = ⌊z[i]²·L⌋.
  uint64_t total = 0;
  size_t max_pos = 0;  // position (in out.entries) of the max-|z| coordinate
  double max_abs = -1.0;
  for (const Entry& e : a.entries()) {
    const double z = e.value / norm;
    double scaled = z * z * Ld;
    // Guard against floating error pushing an exact multiple above itself
    // (e.g. z² = 1/4, L = 8 should give exactly 2 reps, not 1).
    uint64_t reps = static_cast<uint64_t>(scaled);
    if (static_cast<double>(reps + 1) <= scaled) ++reps;
    // Entries may round to zero reps; they are dropped from the discretized
    // support (they would occupy zero expanded slots).
    const double abs_z = std::fabs(z);
    if (abs_z > max_abs) {
      max_abs = abs_z;
      max_pos = out.entries.size();  // may point one past end; fixed below
    }
    if (reps > 0) {
      out.entries.push_back(
          {e.index, reps,
           std::copysign(std::sqrt(static_cast<double>(reps) / Ld), z)});
      total += reps;
    } else if (abs_z == max_abs && max_pos == out.entries.size()) {
      // The max-magnitude coordinate rounded to zero reps (possible only when
      // L < n); it must still exist so the deficit bump below can land on it.
      out.entries.push_back({e.index, 0, 0.0});
    }
  }

  // Floating error can push z[i]²·L a hair above an exact integer, making the
  // floor one too large; walk any surplus back off the max entry so that
  // Σ t[i] == L holds exactly.
  if (total > L) {
    const uint64_t surplus = total - L;
    IPS_CHECK(max_pos < out.entries.size());
    DiscretizedEntry& m = out.entries[max_pos];
    IPS_CHECK(m.reps >= surplus);
    m.reps -= surplus;
    const double sign = a.Get(m.index) < 0.0 ? -1.0 : 1.0;
    m.value =
        m.reps == 0
            ? 0.0
            : sign * std::sqrt(static_cast<double>(m.reps) / Ld);
    total = L;
  }

  // Lines 2–3: add the unit-norm deficit δ = 1 − ‖z̃‖² to the largest entry.
  // In integer space: L − Σ t[i] extra reps. Rounding down means the deficit
  // is never negative.
  const uint64_t deficit = L - total;
  if (deficit > 0) {
    IPS_CHECK(max_pos < out.entries.size());
    DiscretizedEntry& m = out.entries[max_pos];
    m.reps += deficit;
    const double sign = a.Get(m.index) < 0.0 ? -1.0 : 1.0;
    m.value = sign * std::sqrt(static_cast<double>(m.reps) / Ld);
  }
  // Drop any zero-rep placeholder that did not receive the deficit.
  std::erase_if(out.entries,
                [](const DiscretizedEntry& e) { return e.reps == 0; });
  IPS_CHECK(out.TotalReps() == L);
  return Status::Ok();
}

uint64_t DefaultL(uint64_t dimension) {
  constexpr uint64_t kMin = 1024;
  constexpr uint64_t kMax = uint64_t{1} << 40;
  const uint64_t n = std::min(dimension, uint64_t{1} << 32);
  const uint64_t scaled = std::max<uint64_t>(n, 4) * 256;
  return std::clamp(scaled, kMin, kMax);
}

namespace {

// Merges two discretized vectors, calling fn(reps_a, reps_b) per union index.
template <typename Fn>
Status MergeReps(const DiscretizedVector& a, const DiscretizedVector& b,
                 Fn fn) {
  if (a.L != b.L) {
    return Status::InvalidArgument("discretization parameter L mismatch");
  }
  size_t i = 0, j = 0;
  while (i < a.entries.size() || j < b.entries.size()) {
    if (j == b.entries.size() ||
        (i < a.entries.size() && a.entries[i].index < b.entries[j].index)) {
      fn(a.entries[i].reps, uint64_t{0});
      ++i;
    } else if (i == a.entries.size() ||
               b.entries[j].index < a.entries[i].index) {
      fn(uint64_t{0}, b.entries[j].reps);
      ++j;
    } else {
      fn(a.entries[i].reps, b.entries[j].reps);
      ++i;
      ++j;
    }
  }
  return Status::Ok();
}

}  // namespace

Result<double> WeightedJaccard(const DiscretizedVector& a,
                               const DiscretizedVector& b) {
  uint64_t min_sum = 0, max_sum = 0;
  IPS_RETURN_IF_ERROR(MergeReps(a, b, [&](uint64_t ra, uint64_t rb) {
    min_sum += std::min(ra, rb);
    max_sum += std::max(ra, rb);
  }));
  if (max_sum == 0) return 0.0;
  return static_cast<double>(min_sum) / static_cast<double>(max_sum);
}

Result<double> WeightedUnionSize(const DiscretizedVector& a,
                                 const DiscretizedVector& b) {
  uint64_t max_sum = 0;
  IPS_RETURN_IF_ERROR(MergeReps(a, b, [&](uint64_t ra, uint64_t rb) {
    max_sum += std::max(ra, rb);
  }));
  return static_cast<double>(max_sum) / static_cast<double>(a.L);
}

}  // namespace ipsketch
