#include "core/similarity_search.h"

#include <algorithm>

namespace ipsketch {
namespace {

void SortAndTruncateHits(std::vector<SimilarityHit>* hits, size_t top_k) {
  std::stable_sort(hits->begin(), hits->end(),
                   [](const SimilarityHit& x, const SimilarityHit& y) {
                     return x.estimate > y.estimate;
                   });
  if (hits->size() > top_k) hits->resize(top_k);
}

}  // namespace

Result<std::vector<SimilarityHit>> TopKByInnerProduct(
    const WmhSketch& query, const std::vector<WmhSketch>& candidates,
    size_t top_k, const WmhEstimateOptions& options) {
  std::vector<SimilarityHit> hits;
  hits.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto est = EstimateWmhInnerProduct(query, candidates[i], options);
    IPS_RETURN_IF_ERROR(est.status());
    hits.push_back({i, est.value()});
  }
  SortAndTruncateHits(&hits, top_k);
  return hits;
}

Result<std::vector<SimilarityHit>> TopKByCosine(
    const WmhSketch& query, const std::vector<WmhSketch>& candidates,
    size_t top_k, const WmhEstimateOptions& options) {
  std::vector<SimilarityHit> hits;
  hits.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto est = EstimateWmhInnerProduct(query, candidates[i], options);
    IPS_RETURN_IF_ERROR(est.status());
    const double denom = query.norm * candidates[i].norm;
    hits.push_back({i, denom > 0.0 ? est.value() / denom : 0.0});
  }
  SortAndTruncateHits(&hits, top_k);
  return hits;
}

Result<std::vector<SimilarityPair>> AllPairsTopK(
    const std::vector<WmhSketch>& sketches, size_t top_k,
    const WmhEstimateOptions& options) {
  std::vector<SimilarityPair> pairs;
  for (size_t i = 0; i < sketches.size(); ++i) {
    for (size_t j = i + 1; j < sketches.size(); ++j) {
      auto est = EstimateWmhInnerProduct(sketches[i], sketches[j], options);
      IPS_RETURN_IF_ERROR(est.status());
      pairs.push_back({i, j, est.value()});
    }
  }
  std::stable_sort(pairs.begin(), pairs.end(),
                   [](const SimilarityPair& x, const SimilarityPair& y) {
                     return x.estimate > y.estimate;
                   });
  if (pairs.size() > top_k) pairs.resize(top_k);
  return pairs;
}

}  // namespace ipsketch
