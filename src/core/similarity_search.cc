#include "core/similarity_search.h"

#include <algorithm>

namespace ipsketch {
namespace {

// Heap comparator: the *worst* hit (per BetterHit) must surface at the top
// so it is the one evicted, hence the inverted order.
bool WorseOnTop(const SimilarityHit& x, const SimilarityHit& y) {
  return BetterHit(x, y);
}

}  // namespace

void TopKHeap::Offer(size_t index, double estimate) {
  if (top_k_ == 0) return;
  const SimilarityHit hit{index, estimate};
  if (heap_.size() < top_k_) {
    heap_.push_back(hit);
    std::push_heap(heap_.begin(), heap_.end(), WorseOnTop);
    return;
  }
  if (!BetterHit(hit, heap_.front())) return;
  std::pop_heap(heap_.begin(), heap_.end(), WorseOnTop);
  heap_.back() = hit;
  std::push_heap(heap_.begin(), heap_.end(), WorseOnTop);
}

void TopKHeap::Merge(const TopKHeap& other) {
  for (const SimilarityHit& hit : other.heap_) Offer(hit.index, hit.estimate);
}

std::vector<SimilarityHit> TopKHeap::TakeSorted() {
  std::vector<SimilarityHit> out = std::move(heap_);
  heap_.clear();
  std::sort(out.begin(), out.end(), BetterHit);
  return out;
}

Result<std::vector<SimilarityHit>> TopKByInnerProduct(
    const WmhSketch& query, const std::vector<WmhSketch>& candidates,
    size_t top_k, const WmhEstimateOptions& options) {
  TopKHeap heap(top_k);
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto est = EstimateWmhInnerProduct(query, candidates[i], options);
    IPS_RETURN_IF_ERROR(est.status());
    heap.Offer(i, est.value());
  }
  return heap.TakeSorted();
}

Result<std::vector<SimilarityHit>> TopKByCosine(
    const WmhSketch& query, const std::vector<WmhSketch>& candidates,
    size_t top_k, const WmhEstimateOptions& options) {
  TopKHeap heap(top_k);
  for (size_t i = 0; i < candidates.size(); ++i) {
    auto est = EstimateWmhInnerProduct(query, candidates[i], options);
    IPS_RETURN_IF_ERROR(est.status());
    const double denom = query.norm * candidates[i].norm;
    heap.Offer(i, denom > 0.0 ? est.value() / denom : 0.0);
  }
  return heap.TakeSorted();
}

Result<std::vector<SimilarityPair>> AllPairsTopK(
    const std::vector<WmhSketch>& sketches, size_t top_k,
    const WmhEstimateOptions& options) {
  // Pairs (i, j) are flattened through the heap as index i·n + j so the
  // shared kernel's deterministic tie-break applies to pairs too.
  const size_t n = sketches.size();
  TopKHeap heap(top_k);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      auto est = EstimateWmhInnerProduct(sketches[i], sketches[j], options);
      IPS_RETURN_IF_ERROR(est.status());
      heap.Offer(i * n + j, est.value());
    }
  }
  std::vector<SimilarityPair> pairs;
  for (const SimilarityHit& hit : heap.TakeSorted()) {
    pairs.push_back({hit.index / n, hit.index % n, hit.estimate});
  }
  return pairs;
}

}  // namespace ipsketch
