#include "core/active_index.h"

#include "common/rng.h"
#include "common/status.h"

namespace ipsketch {
namespace {

// Walks the record (prefix-minimum) stream of one (sample, block) pair and
// returns the block minimum for `reps` occupied slots. SplitMix64 is used as
// the stream generator: construction is free and each draw is a handful of
// arithmetic ops, which matters because this loop runs nnz·m times per
// sketch.
inline double BlockMin(uint64_t stream_key, uint64_t reps) {
  SplitMix64 rng(stream_key);
  // Slot 1 always exists (reps >= 1) and is always a record.
  double v = PositiveUnitFromU64(rng.Next());
  uint64_t pos = 1;
  for (;;) {
    // Next record position: pos + G, G ~ Geometric(v). Stop as soon as it
    // falls beyond the occupied prefix.
    const uint64_t g = GeometricFromUnit(PositiveUnitFromU64(rng.Next()), v);
    if (g > reps - pos) break;  // pos + g > reps, no overflow possible
    pos += g;
    // Record value: uniform on (0, v).
    v *= PositiveUnitFromU64(rng.Next());
  }
  return v;
}

}  // namespace

double ActiveIndexBlockMin(uint64_t seed, size_t sample, uint64_t block_index,
                           uint64_t reps) {
  IPS_CHECK(reps > 0);
  return BlockMin(MixCombine(seed, sample, block_index), reps);
}

void SketchWithActiveIndex(const DiscretizedVector& dv, uint64_t seed,
                           size_t num_samples, std::vector<double>* hashes,
                           std::vector<double>* values) {
  IPS_CHECK(hashes->size() == num_samples && values->size() == num_samples);
  for (size_t s = 0; s < num_samples; ++s) {
    const uint64_t sample_key = MixCombine(seed, s);
    double best_hash = 1.0;
    double best_value = 0.0;
    for (const DiscretizedEntry& e : dv.entries) {
      const double bm = BlockMin(Mix64(sample_key ^ e.index), e.reps);
      if (bm < best_hash) {
        best_hash = bm;
        best_value = e.value;
      }
    }
    (*hashes)[s] = best_hash;
    (*values)[s] = best_value;
  }
}

}  // namespace ipsketch
