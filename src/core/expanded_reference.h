// Reference (oracle) Weighted MinHash engine.
//
// Implements Algorithm 3 literally: for each of the m samples it applies a
// Carter–Wegman hash over the expanded domain {0, ..., n·L − 1} to every
// occupied slot of the expanded vector ā and records the argmin. Cost is
// O(m · L) hash evaluations per vector (the occupied slots of a discretized
// unit vector always total exactly L), so this engine is only practical for
// small L. It exists to pin down the exact sketch semantics that the fast
// active-index engine must reproduce distributionally, and to power the
// Fact 5 / Lemma 1 statistical tests.

#ifndef IPSKETCH_CORE_EXPANDED_REFERENCE_H_
#define IPSKETCH_CORE_EXPANDED_REFERENCE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rounding.h"

namespace ipsketch {

/// Fills hashes/values (each pre-sized to num_samples) with the MinHash of
/// the expanded vector described by `dv`, using hash functions keyed by
/// (seed, sample).
void SketchWithExpandedReference(const DiscretizedVector& dv, uint64_t seed,
                                 size_t num_samples,
                                 std::vector<double>* hashes,
                                 std::vector<double>* values);

/// The hash value the reference engine assigns to slot `slot_in_block` of
/// block `block_index` under sample `sample`. Exposed so tests can verify
/// the argmin slot-by-slot.
double ReferenceSlotHash(uint64_t seed, size_t sample, uint64_t block_index,
                         uint64_t slot_in_block, uint64_t L);

}  // namespace ipsketch

#endif  // IPSKETCH_CORE_EXPANDED_REFERENCE_H_
