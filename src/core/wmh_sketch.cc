#include "core/wmh_sketch.h"

#include <utility>

#include "core/active_index.h"
#include "core/dart_minhash.h"
#include "core/expanded_reference.h"
#include "core/rounding.h"

namespace ipsketch {

const char* WmhEngineName(WmhEngine engine) {
  switch (engine) {
    case WmhEngine::kActiveIndex: return "active_index";
    case WmhEngine::kExpandedReference: return "expanded_reference";
    case WmhEngine::kDart: return "dart";
  }
  return "dart";
}

Status WmhOptions::Validate() const {
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (engine != WmhEngine::kActiveIndex &&
      engine != WmhEngine::kExpandedReference &&
      engine != WmhEngine::kDart) {
    return Status::InvalidArgument("unknown engine");
  }
  return Status::Ok();
}

Result<WmhSketcher> WmhSketcher::Make(const WmhOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  return WmhSketcher(options);
}

Status WmhSketcher::Sketch(const SparseVector& a, WmhSketch* out) {
  const uint64_t L = options_.L != 0 ? options_.L : DefaultL(a.dimension());
  out->seed = options_.seed;
  out->L = L;
  out->dimension = a.dimension();
  out->engine = options_.engine;

  if (a.empty()) {
    // The zero vector has no direction to sketch. Represent it with the
    // hash supremum so min(h_a, h_b) degenerates to h_b in the union
    // estimator, and matches (which would multiply by norm = 0 anyway)
    // cannot occur.
    out->norm = 0.0;
    out->hashes.assign(options_.num_samples, 1.0);
    out->values.assign(options_.num_samples, 0.0);
    return Status::Ok();
  }

  IPS_RETURN_IF_ERROR(RoundInto(a, L, &scratch_));
  out->norm = scratch_.original_norm;
  out->hashes.resize(options_.num_samples);
  out->values.resize(options_.num_samples);

  switch (options_.engine) {
    case WmhEngine::kActiveIndex:
      SketchWithActiveIndex(scratch_, options_.seed, options_.num_samples,
                            &out->hashes, &out->values);
      break;
    case WmhEngine::kExpandedReference:
      SketchWithExpandedReference(scratch_, options_.seed,
                                  options_.num_samples, &out->hashes,
                                  &out->values);
      break;
    case WmhEngine::kDart:
      SketchWithDart(scratch_, options_.seed, options_.num_samples,
                     &out->hashes, &out->values);
      break;
  }
  return Status::Ok();
}

Result<WmhSketch> SketchWmh(const SparseVector& a, const WmhOptions& options) {
  auto made = WmhSketcher::Make(options);
  IPS_RETURN_IF_ERROR(made.status());
  WmhSketcher sketcher = std::move(made).value();
  WmhSketch sketch;
  IPS_RETURN_IF_ERROR(sketcher.Sketch(a, &sketch));
  return sketch;
}

}  // namespace ipsketch
