#include "core/wmh_sketch.h"

#include "core/active_index.h"
#include "core/expanded_reference.h"
#include "core/rounding.h"

namespace ipsketch {

Status WmhOptions::Validate() const {
  if (num_samples == 0) {
    return Status::InvalidArgument("num_samples must be positive");
  }
  if (engine != WmhEngine::kActiveIndex &&
      engine != WmhEngine::kExpandedReference) {
    return Status::InvalidArgument("unknown engine");
  }
  return Status::Ok();
}

Result<WmhSketch> SketchWmh(const SparseVector& a, const WmhOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  const uint64_t L = options.L != 0 ? options.L : DefaultL(a.dimension());

  WmhSketch sketch;
  sketch.seed = options.seed;
  sketch.L = L;
  sketch.dimension = a.dimension();

  if (a.empty()) {
    // The zero vector has no direction to sketch. Represent it with the
    // hash supremum so min(h_a, h_b) degenerates to h_b in the union
    // estimator, and matches (which would multiply by norm = 0 anyway)
    // cannot occur.
    sketch.norm = 0.0;
    sketch.hashes.assign(options.num_samples, 1.0);
    sketch.values.assign(options.num_samples, 0.0);
    return sketch;
  }

  auto rounded = Round(a, L);
  IPS_RETURN_IF_ERROR(rounded.status());
  const DiscretizedVector& dv = rounded.value();
  sketch.norm = dv.original_norm;
  sketch.hashes.resize(options.num_samples);
  sketch.values.resize(options.num_samples);

  switch (options.engine) {
    case WmhEngine::kActiveIndex:
      SketchWithActiveIndex(dv, options.seed, options.num_samples,
                            &sketch.hashes, &sketch.values);
      break;
    case WmhEngine::kExpandedReference:
      SketchWithExpandedReference(dv, options.seed, options.num_samples,
                                  &sketch.hashes, &sketch.values);
      break;
  }
  return sketch;
}

}  // namespace ipsketch
