#include "core/wmh_estimator.h"

#include <algorithm>

#include "core/simd/dispatch.h"

namespace ipsketch {
namespace {

Status CheckCompatible(const WmhSketch& a, const WmhSketch& b) {
  if (a.num_samples() != b.num_samples()) {
    return Status::InvalidArgument("sketch sample counts differ");
  }
  if (a.num_samples() == 0) {
    return Status::InvalidArgument("sketches are empty");
  }
  if (a.seed != b.seed) {
    return Status::InvalidArgument("sketch seeds differ");
  }
  if (a.L != b.L) {
    return Status::InvalidArgument("sketch discretization parameters differ");
  }
  if (a.engine != b.engine) {
    // Engines are distributionally equivalent but realize different hash
    // functions; a cross-engine pair would estimate silently wrong.
    return Status::InvalidArgument("sketch engines differ");
  }
  if (a.dimension != b.dimension) {
    return Status::InvalidArgument("sketch dimensions differ");
  }
  return Status::Ok();
}

}  // namespace

Result<double> EstimateWmhInnerProduct(const WmhSketch& a, const WmhSketch& b,
                                       const WmhEstimateOptions& options) {
  IPS_RETURN_IF_ERROR(CheckCompatible(a, b));
  return EstimateWmhSpans(a.hashes.data(), a.values.data(), a.norm,
                          b.hashes.data(), b.values.data(), b.norm,
                          a.num_samples(), a.L, options);
}

Result<double> EstimateWmhSpans(const double* a_hashes,
                                const double* a_values, double a_norm,
                                const double* b_hashes,
                                const double* b_values, double b_norm,
                                size_t m, uint64_t L,
                                const WmhEstimateOptions& options) {
  if (m == 0) return Status::InvalidArgument("sketches are empty");
  if (a_norm == 0.0 || b_norm == 0.0) return 0.0;

  const double md = static_cast<double>(m);

  // Line 3 summation and, simultaneously, the ingredients of both union
  // estimators — the fused hot loop, dispatched to the widest kernel tier
  // the CPU supports (scalar and vector tiers are bit-identical).
  const simd::WmhPairStats stats = simd::ActiveKernel().wmh_pair(
      a_hashes, b_hashes, a_values, b_values, m);
  const double min_hash_sum = stats.min_hash_sum;
  const double weighted_match_sum = stats.weighted_match_sum;
  const size_t match_count = stats.match_count;

  const double Ld = static_cast<double>(L);
  double m_tilde = 0.0;
  switch (options.union_estimator) {
    case UnionEstimator::kFlajoletMartin: {
      // Line 2. min_hash_sum is positive with probability 1 (hashes are
      // continuous); guard the degenerate case anyway.
      if (min_hash_sum <= 0.0) {
        return Status::Internal("degenerate minimum-hash sum");
      }
      m_tilde = (md / min_hash_sum - 1.0) / Ld;
      break;
    }
    case UnionEstimator::kJaccardClosedForm: {
      // For unit vectors ‖ã‖² = ‖b̃‖² = 1: M = 2 − Σ min(ã², b̃²) and
      // J̄ = Σ min / M, hence M = 2 / (1 + J̄).
      const double j_hat = static_cast<double>(match_count) / md;
      m_tilde = 2.0 / (1.0 + j_hat);
      break;
    }
  }

  const double inner_unit = (m_tilde / md) * weighted_match_sum;
  return a_norm * b_norm * inner_unit;
}

Result<double> EstimateWeightedJaccard(const WmhSketch& a,
                                       const WmhSketch& b) {
  IPS_RETURN_IF_ERROR(CheckCompatible(a, b));
  if (a.norm == 0.0 || b.norm == 0.0) return 0.0;
  const uint64_t matches = simd::ActiveKernel().count_eq_f64(
      a.hashes.data(), b.hashes.data(), a.num_samples());
  return static_cast<double>(matches) /
         static_cast<double>(a.num_samples());
}

Result<double> EstimateWeightedUnion(const WmhSketch& a, const WmhSketch& b) {
  IPS_RETURN_IF_ERROR(CheckCompatible(a, b));
  const double min_hash_sum = simd::ActiveKernel().min_sum_f64(
      a.hashes.data(), b.hashes.data(), a.num_samples());
  if (min_hash_sum <= 0.0) {
    return Status::Internal("degenerate minimum-hash sum");
  }
  const double md = static_cast<double>(a.num_samples());
  return (md / min_hash_sum - 1.0) / static_cast<double>(a.L);
}

WmhSketch TruncatedWmh(const WmhSketch& sketch, size_t m) {
  IPS_CHECK(m > 0 && m <= sketch.num_samples());
  WmhSketch out = sketch;
  out.hashes.resize(m);
  out.values.resize(m);
  return out;
}

}  // namespace ipsketch
