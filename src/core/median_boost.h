// Median-of-estimates boosting (Theorem 2's 1 − δ guarantee).
//
// A single WMH sketch pair achieves the ε·max(‖a_I‖‖b‖, ‖a‖‖b_I‖) error
// bound with constant probability 2/3. Concatenating t = O(log(1/δ))
// independently seeded sketches and returning the median of the t estimates
// boosts the success probability to 1 − δ via a Chernoff bound (the
// standard "median trick", see the proof of Theorem 2).

#ifndef IPSKETCH_CORE_MEDIAN_BOOST_H_
#define IPSKETCH_CORE_MEDIAN_BOOST_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"

namespace ipsketch {

/// Configuration for the boosted sketch.
struct MedianWmhOptions {
  /// Number of independent sketch repetitions t. Odd values make the median
  /// unambiguous. t = O(log(1/δ)) gives failure probability δ.
  size_t repetitions = 9;
  /// Per-repetition sketch configuration. The seed acts as a master seed;
  /// repetition r uses a sub-seed derived from (seed, r).
  WmhOptions base;

  /// Validates field ranges.
  Status Validate() const;

  /// Number of repetitions sufficient for failure probability `delta` under
  /// the per-repetition failure rate 1/3 (Chernoff bound with exponent
  /// D(1/2 ‖ 1/3)); always odd.
  static size_t RepetitionsForDelta(double delta);
};

/// Concatenation of t independently seeded WMH sketches.
struct MedianWmhSketch {
  std::vector<WmhSketch> repetitions;

  /// Total storage in 64-bit words (sum over repetitions).
  double StorageWords() const;
};

/// Sketches `a` with t independent repetitions.
Result<MedianWmhSketch> SketchMedianWmh(const SparseVector& a,
                                        const MedianWmhOptions& options);

/// Median of the per-repetition Algorithm-5 estimates.
Result<double> EstimateMedianWmhInnerProduct(
    const MedianWmhSketch& a, const MedianWmhSketch& b,
    const WmhEstimateOptions& options = WmhEstimateOptions());

}  // namespace ipsketch

#endif  // IPSKETCH_CORE_MEDIAN_BOOST_H_
