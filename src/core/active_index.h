// Fast Weighted MinHash engine via "active indices" (Gollapudi & Panigrahy
// 2006; §5 of the paper, "Efficient Weighted Hashing").
//
// For one sample and one block of the expanded vector ā, the sequence of
// slot hashes h(1), h(2), ..., h(L) is i.i.d. uniform, and only its *prefix
// minima* ("active indices") can ever be the block's minimum. The engine
// generates just those records directly:
//
//   value at slot 1:      v₁ ~ U(0,1]
//   next record position: current + G, G ~ Geometric(v)   (skip ahead)
//   next record value:    v' = v·U(0,1]                   (uniform below v)
//
// The stream is keyed by (seed, sample, block) only — never by the vector's
// weight — so two vectors sketched independently read the *same* stream and
// merely truncate it at their own repetition counts t[i]. This preserves the
// coordination property of expanded MinHash exactly:
//
//   * block minimum at t = value of the last record with position ≤ t;
//   * if t_a ≤ t_b, block-min_b ≤ block-min_a, with equality iff no record
//     falls in (t_a, t_b] — the same event as in slot-by-slot hashing;
//   * min(sketch_a[s], sketch_b[s]) equals the MinHash of the expanded
//     *union*, keeping the Flajolet–Martin union estimator calibrated.
//
// Expected records per block ≈ ln(t) + 1, so sketching costs
// O(nnz · m · log L) instead of the O(m · L) of the reference engine.

#ifndef IPSKETCH_CORE_ACTIVE_INDEX_H_
#define IPSKETCH_CORE_ACTIVE_INDEX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rounding.h"

namespace ipsketch {

/// Fills hashes/values (each pre-sized to num_samples) with the Weighted
/// MinHash of `dv` using the active-index stream keyed by (seed, sample,
/// block).
void SketchWithActiveIndex(const DiscretizedVector& dv, uint64_t seed,
                           size_t num_samples, std::vector<double>* hashes,
                           std::vector<double>* values);

/// The block-minimum hash for `reps` occupied slots of block `block_index`
/// under (seed, sample) — i.e. the value the engine would contribute for a
/// vector whose discretized block i has t[i] = reps. Exposed for tests of
/// the truncation/coordination property. `reps` must be positive.
double ActiveIndexBlockMin(uint64_t seed, size_t sample, uint64_t block_index,
                           uint64_t reps);

}  // namespace ipsketch

#endif  // IPSKETCH_CORE_ACTIVE_INDEX_H_
