#include "core/median_boost.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "common/stats.h"

namespace ipsketch {
namespace {

// Domain-separation tag so repetition sub-seeds never collide with the
// sample-stream keys derived inside a single sketch.
constexpr uint64_t kRepetitionTag = 0x9D5AB3E1C0FFEE01ull;

uint64_t RepetitionSeed(uint64_t master_seed, size_t rep) {
  return MixCombine(master_seed, kRepetitionTag, rep);
}

}  // namespace

Status MedianWmhOptions::Validate() const {
  if (repetitions == 0) {
    return Status::InvalidArgument("repetitions must be positive");
  }
  return base.Validate();
}

size_t MedianWmhOptions::RepetitionsForDelta(double delta) {
  IPS_CHECK(delta > 0.0 && delta < 1.0);
  // Each repetition fails with probability ≤ 1/3; the median fails only if
  // ≥ t/2 repetitions fail. By Chernoff, t ≥ ln(1/δ) / D(1/2 ‖ 1/3) ≈
  // 19.2·log10(1/δ) suffices; D(1/2‖1/3) = ln(3/2)/2 + ln(3/4)/2.
  const double divergence = 0.5 * std::log(1.5) + 0.5 * std::log(0.75);
  const double t = std::ceil(std::log(1.0 / delta) / divergence);
  size_t reps = static_cast<size_t>(std::max(1.0, t));
  if (reps % 2 == 0) ++reps;
  return reps;
}

double MedianWmhSketch::StorageWords() const {
  double total = 0.0;
  for (const auto& rep : repetitions) total += rep.StorageWords();
  return total;
}

Result<MedianWmhSketch> SketchMedianWmh(const SparseVector& a,
                                        const MedianWmhOptions& options) {
  IPS_RETURN_IF_ERROR(options.Validate());
  MedianWmhSketch out;
  out.repetitions.reserve(options.repetitions);
  for (size_t r = 0; r < options.repetitions; ++r) {
    WmhOptions rep_options = options.base;
    rep_options.seed = RepetitionSeed(options.base.seed, r);
    auto sketch = SketchWmh(a, rep_options);
    IPS_RETURN_IF_ERROR(sketch.status());
    out.repetitions.push_back(std::move(sketch).value());
  }
  return out;
}

Result<double> EstimateMedianWmhInnerProduct(const MedianWmhSketch& a,
                                             const MedianWmhSketch& b,
                                             const WmhEstimateOptions& options) {
  if (a.repetitions.size() != b.repetitions.size()) {
    return Status::InvalidArgument("repetition counts differ");
  }
  if (a.repetitions.empty()) {
    return Status::InvalidArgument("empty boosted sketch");
  }
  std::vector<double> estimates;
  estimates.reserve(a.repetitions.size());
  for (size_t r = 0; r < a.repetitions.size(); ++r) {
    auto est =
        EstimateWmhInnerProduct(a.repetitions[r], b.repetitions[r], options);
    IPS_RETURN_IF_ERROR(est.status());
    estimates.push_back(est.value());
  }
  return Median(std::move(estimates));
}

}  // namespace ipsketch
