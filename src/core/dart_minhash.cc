#include "core/dart_minhash.h"

#include <cmath>

#include "common/rng.h"
#include "common/status.h"
#include "core/active_index.h"

namespace ipsketch {
namespace {

// Domain-separation tags: the per-block dart stream and the per-(sample,
// block) fallback stream must be independent of each other and of the
// active-index engine's streams (a dart sketch is never comparable with an
// active-index sketch, and reusing streams would silently correlate them).
constexpr uint64_t kDartStreamTag = 0xDA27DA27DA27DA27ull;
constexpr uint64_t kDartFallbackTag = 0xFA11BAC4FA11BAC4ull;

// Expected uncovered samples per sketch is e^(-slack): ~0.018 at 4, so the
// O(nnz·log L) fallback walk is off the hot path while θ — and with it the
// dart count m·(ln m + slack) — stays small.
constexpr double kDartCoverageSlack = 4.0;

}  // namespace

double DartThreshold(size_t num_samples, uint64_t L) {
  IPS_CHECK(num_samples > 0 && L > 0);
  const double theta =
      (std::log(static_cast<double>(num_samples)) + kDartCoverageSlack) /
      static_cast<double>(L);
  return theta < 1.0 ? theta : 1.0;
}

void SketchWithDartThreshold(const DiscretizedVector& dv, uint64_t seed,
                             size_t num_samples, double theta,
                             std::vector<double>* hashes,
                             std::vector<double>* values) {
  IPS_CHECK(hashes->size() == num_samples && values->size() == num_samples);
  IPS_CHECK(theta > 0.0 && theta <= 1.0);
  const size_t m = num_samples;

  if (dv.entries.empty()) {
    // No occupied slots: the hash supremum, as the other engines yield.
    for (size_t s = 0; s < m; ++s) {
      (*hashes)[s] = 1.0;
      (*values)[s] = 0.0;
    }
    return;
  }

  // Sentinel above every reachable hash: dart values lie in (0, θ].
  for (size_t s = 0; s < m; ++s) {
    (*hashes)[s] = 2.0;
    (*values)[s] = 0.0;
  }

  // Dart layer: per block, one Bernoulli(θ) skip-walk over the slot-major
  // grid p = slot·m + s, p ∈ [0, reps·m). The stream is keyed by
  // (seed, block) only and the walk order is a prefix in the slot count, so
  // every vector containing this block reads the identical dart sequence up
  // to its own repetition count. 128-bit positions: reps·m can exceed 2^64
  // for extreme (L, m) pairs, and geometric gaps can be astronomically
  // large for tiny θ.
  size_t covered = 0;
  for (const DiscretizedEntry& e : dv.entries) {
    SplitMix64 rng(MixCombine(seed, kDartStreamTag, e.index));
    const unsigned __int128 span =
        static_cast<unsigned __int128>(e.reps) * m;
    unsigned __int128 pos =
        GeometricFromUnit(PositiveUnitFromU64(rng.Next()), theta);
    pos -= 1;  // first hit, 0-based
    while (pos < span) {
      // Draw order is (gap, value, gap, value, ...): a vector whose walk
      // stops earlier never consumes the value of a hit beyond its span, so
      // shorter and longer prefixes read identical bytes in common.
      const double hit = theta * PositiveUnitFromU64(rng.Next());
      const size_t s = static_cast<size_t>(pos % m);
      if (hit < (*hashes)[s]) {
        if ((*hashes)[s] > 1.0) ++covered;  // first dart for this sample
        (*hashes)[s] = hit;
        (*values)[s] = e.value;
      }
      pos += GeometricFromUnit(PositiveUnitFromU64(rng.Next()), theta);
    }
  }
  if (covered == m) return;

  // Fallback layer for samples with no dart anywhere in their L slots: the
  // exact minimum of h over the prefix is θ + (1−θ)·min over blocks of the
  // V-stream prefix minimum, because an uncovered sample has *no* hit slot —
  // every one of its slots carries the V branch. The V stream is the
  // active-index prefix-minimum recursion under a domain-separated seed, so
  // it is deterministic in (seed, sample, block) and truncation-coordinated
  // like everything else.
  const uint64_t fallback_seed = MixCombine(seed, kDartFallbackTag);
  for (size_t s = 0; s < m; ++s) {
    if ((*hashes)[s] <= 1.0) continue;
    double best_v = 2.0;
    double best_value = 0.0;
    for (const DiscretizedEntry& e : dv.entries) {
      const double v = ActiveIndexBlockMin(fallback_seed, s, e.index, e.reps);
      if (v < best_v) {
        best_v = v;
        best_value = e.value;
      }
    }
    (*hashes)[s] = theta + (1.0 - theta) * best_v;
    (*values)[s] = best_value;
  }
}

void SketchWithDart(const DiscretizedVector& dv, uint64_t seed,
                    size_t num_samples, std::vector<double>* hashes,
                    std::vector<double>* values) {
  SketchWithDartThreshold(dv, seed, num_samples,
                          DartThreshold(num_samples, dv.L), hashes, values);
}

}  // namespace ipsketch
