// Algorithm 4: vector rounding for Weighted MinHash.
//
// Round(a/‖a‖, L) produces a unit vector whose squared entries are integer
// multiples of 1/L. The paper's scheme rounds every squared entry *down* to
// ⌊z[i]²·L⌋/L and then adds the total deficit to the largest-magnitude entry
// so the result is exactly unit norm. This non-standard "bump the max" rule
// is what lets Theorem 2 avoid additive error that scales with 1/L
// (Lemma 3 in the paper).
//
// We work directly in integer repetition counts t[i] = round(z̃[i]²·L):
// Σ t[i] == L holds exactly, so the expanded vector ā of Algorithm 3 has
// exactly t[i] non-zero slots in block i and Σ blocks = L slots total.

#ifndef IPSKETCH_CORE_ROUNDING_H_
#define IPSKETCH_CORE_ROUNDING_H_

#include <cstdint>
#include <vector>

#include "vector/sparse_vector.h"

namespace ipsketch {

/// One non-zero coordinate of a discretized unit vector.
struct DiscretizedEntry {
  uint64_t index = 0;  ///< coordinate in the original vector
  uint64_t reps = 0;   ///< t[i]: number of expanded slots; t[i]/L = z̃[i]²
  double value = 0.0;  ///< z̃[i] = sign(z[i])·√(t[i]/L)
};

/// A unit vector with squared entries that are integer multiples of 1/L,
/// produced by `Round`. Also remembers the original Euclidean norm so the
/// final estimator can rescale (Algorithm 5 line 4).
struct DiscretizedVector {
  uint64_t dimension = 0;       ///< n of the original vector
  uint64_t L = 0;               ///< discretization parameter
  double original_norm = 0.0;   ///< ‖a‖ of the vector that was rounded
  std::vector<DiscretizedEntry> entries;  ///< sorted by index, reps > 0

  /// Σ t[i]; equals L for any vector produced by `Round`.
  uint64_t TotalReps() const;

  /// The discretized unit vector z̃ as a SparseVector (for analysis/tests).
  SparseVector ToSparseVector() const;

  /// Squared value t/L of the entry at `index`, 0 if absent.
  double SquaredValueAt(uint64_t index) const;
};

/// Rounds a to a discretized unit vector per Algorithm 4.
///
/// Fails with InvalidArgument if `L == 0` and FailedPrecondition if `a` is
/// the zero vector (its direction is undefined; callers represent zero
/// vectors as empty sketches instead). The paper requires L ≥ n for accuracy
/// (entries of a unit vector average 1/n in square); this function does not
/// enforce that — callers choose L, see `DefaultL`.
Result<DiscretizedVector> Round(const SparseVector& a, uint64_t L);

/// `Round` into a caller-owned output, reusing its entry storage. The hot
/// path of bulk sketching (service ingest, benches) rounds millions of
/// vectors; recycling the entries vector avoids an allocation per vector.
/// On error `*out` is left in an unspecified but destructible state.
Status RoundInto(const SparseVector& a, uint64_t L, DiscretizedVector* out);

/// A practical default for L: max(1024, 256·min(n, 2^32)), clamped to 2^40.
/// The paper's analysis wants L = Θ(n⁶/ε²) but notes the bound is loose and
/// that L ≳ 100·n suffices empirically (§5, "Choice of L"); L has no effect
/// on sketch size and only a log(L) effect on sketching time.
uint64_t DefaultL(uint64_t dimension);

/// Exact weighted Jaccard similarity J̄ = Σ min(ã[i]², b̃[i]²) / Σ max(...)
/// between two discretized vectors (Fact 5). Computed in exact integer
/// arithmetic on repetition counts. Requires equal L.
Result<double> WeightedJaccard(const DiscretizedVector& a,
                               const DiscretizedVector& b);

/// Exact weighted union size M = Σ max(ã[i]², b̃[i]²) (the quantity Algorithm
/// 5 estimates as M̃). Requires equal L.
Result<double> WeightedUnionSize(const DiscretizedVector& a,
                                 const DiscretizedVector& b);

}  // namespace ipsketch

#endif  // IPSKETCH_CORE_ROUNDING_H_
