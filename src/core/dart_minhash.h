// Fast Weighted MinHash engine via dart throwing (DartMinHash, Christiani
// 2020, adapted to the paper's discretized expanded-vector semantics).
//
// The active-index engine (core/active_index.h) walks one prefix-minimum
// stream per (sample, block) pair: O(nnz · m · log L) per vector, which makes
// *ingest* — not estimation — the dominant cost of a sketch service. The
// dart engine inverts the loop: instead of asking "what is block b's minimum
// for sample s?" m·nnz times, it generates, per block, the sparse set of
// *darts* — slot hashes that fall below a threshold θ — jointly for all m
// samples, in one pass over a Bernoulli(θ) skip-walk of the block's
// (slot, sample) grid.
//
// Conceptually, every occupied slot of the expanded vector ā carries one
// uniform hash per sample, split into two independent layers:
//
//   h(s, slot) = θ · U(s, slot)                  if (slot, s) is a dart hit
//              = θ + (1 − θ) · V(s, slot)        otherwise
//
// with hits i.i.d. Bernoulli(θ). Both branches are deterministic functions
// of (seed, sample, block, slot), so h is a proper hash function and two
// vectors sketched independently read the *same* values on shared slots —
// the coordination property the estimator's match test and the
// Flajolet–Martin union estimator rely on. The marginal of h is exactly
// U(0, 1]: uniform on (0, θ] with probability θ, uniform on (θ, 1]
// otherwise. Sketches are therefore drawn from the same distribution as the
// other engines' (a different hash function, not a different estimator).
//
//   * Dart layer: per block, hits are enumerated by geometric skips over
//     the slot-major linearization p = slot·m + s of the block's grid, from
//     a stream keyed by (seed, block) only. Truncating a block at t slots
//     truncates the walk at p < t·m — a *prefix* of the stream — so vectors
//     with different repetition counts stay coordinated exactly as in the
//     active-index engine.
//   * Fallback layer: a sample with no dart in any of its L slots (its
//     true minimum exceeds θ) falls back to the prefix-minimum walk of the
//     V stream, keyed by (seed, sample, block) — the active-index recursion
//     under a domain-separated seed, mapped through θ + (1 − θ)·v. Because
//     an uncovered sample by definition has no hit on any of its slots, the
//     V minimum over the whole prefix is the exact minimum of h.
//
// With θ = (ln m + slack)/L, the expected dart count is Σ_blocks t·m·θ =
// m·(ln m + slack) and the expected number of uncovered samples is
// m·(1−θ)^L ≈ e^(−slack) ≪ 1, so sketching costs expected
// O(nnz + m · log m) — independent of L except for the rare fallback.

#ifndef IPSKETCH_CORE_DART_MINHASH_H_
#define IPSKETCH_CORE_DART_MINHASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/rounding.h"

namespace ipsketch {

/// The dart threshold θ used by `SketchWithDart`: min(1, (ln m + slack)/L)
/// with slack = 4. θ is a pure function of (m, L), so every vector sketched
/// with equal parameters uses the same two-layer hash function — required
/// for coordination. Exposed for tests and documentation.
double DartThreshold(size_t num_samples, uint64_t L);

/// Fills hashes/values (each pre-sized to num_samples) with the Weighted
/// MinHash of `dv` using the dart engine at an explicit threshold `theta`
/// in (0, 1]. Sketches are only comparable across equal thresholds; the
/// production entry point below derives θ from (m, L). Exposed so tests can
/// force the fallback layer (tiny θ) and the dense walk (θ = 1).
void SketchWithDartThreshold(const DiscretizedVector& dv, uint64_t seed,
                             size_t num_samples, double theta,
                             std::vector<double>* hashes,
                             std::vector<double>* values);

/// Production entry point: `SketchWithDartThreshold` at
/// `DartThreshold(num_samples, dv.L)`.
void SketchWithDart(const DiscretizedVector& dv, uint64_t seed,
                    size_t num_samples, std::vector<double>* hashes,
                    std::vector<double>* values);

}  // namespace ipsketch

#endif  // IPSKETCH_CORE_DART_MINHASH_H_
