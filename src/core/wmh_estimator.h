// Algorithm 5: estimating ⟨a, b⟩ from two Weighted MinHash sketches.
//
// Given W_a = {W_hash_a, W_val_a, ‖a‖} and W_b built with identical
// (m, seed, L):
//
//   q_i  = min(W_val_a[i]², W_val_b[i]²)
//   M̃    = (1/L)·(m / Σ_i min(W_hash_a[i], W_hash_b[i]) − 1)       (line 2)
//   I    = (M̃/m)·Σ_i 1[W_hash_a[i] = W_hash_b[i]]·W_val_a[i]·W_val_b[i]/q_i
//   est  = ‖a‖·‖b‖·I                                               (line 4)
//
// M̃ is the Flajolet–Martin-style estimate of the weighted union size
// M = Σ_j max(ã[j]², b̃[j]²) (Lemma 1 applied to the expanded supports).
// Theorem 2: with m = O(log(1/δ)/ε²) samples the error is at most
// ε·max(‖a_I‖‖b‖, ‖a‖‖b_I‖) with probability 1 − δ.

#ifndef IPSKETCH_CORE_WMH_ESTIMATOR_H_
#define IPSKETCH_CORE_WMH_ESTIMATOR_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "core/wmh_sketch.h"

namespace ipsketch {

/// How the weighted union size M is estimated from the sketches.
enum class UnionEstimator {
  /// Paper's Algorithm 5 line 2: the Flajolet–Martin estimator
  /// m / Σ min(h_a, h_b) − 1, divided by L.
  kFlajoletMartin = 0,
  /// Closed form from the match rate: for unit vectors
  /// M = 2 / (1 + J̄) where J̄ is the weighted Jaccard similarity, estimated
  /// by the fraction of matching samples. Not part of the paper's analysis;
  /// provided as an ablation (bench_ablation_union).
  kJaccardClosedForm = 1,
};

/// Options for `EstimateWmhInnerProduct`.
struct WmhEstimateOptions {
  UnionEstimator union_estimator = UnionEstimator::kFlajoletMartin;
};

/// Estimates ⟨a, b⟩ from two WMH sketches (Algorithm 5).
///
/// Fails with InvalidArgument if the sketches were built with different
/// sample counts, seeds, L, or dimensions. If either sketch is of the zero
/// vector the estimate is exactly 0.
Result<double> EstimateWmhInnerProduct(
    const WmhSketch& a, const WmhSketch& b,
    const WmhEstimateOptions& options = WmhEstimateOptions());

/// Span-level core of `EstimateWmhInnerProduct`: Algorithm 5 over the raw
/// hash/value lanes of two sketches the caller has already verified to be
/// mutually comparable (equal m, seed, L, engine, dimension). Both the
/// pairwise estimator above and the slab catalog's 1-vs-many re-rank path
/// (`SketchFamily::NewSlab`) run through this one function — that is what
/// makes slab and pairwise estimates bit-identical. `m` must be positive.
Result<double> EstimateWmhSpans(
    const double* a_hashes, const double* a_values, double a_norm,
    const double* b_hashes, const double* b_values, double b_norm, size_t m,
    uint64_t L, const WmhEstimateOptions& options = WmhEstimateOptions());

/// Estimates the *weighted Jaccard similarity* of the squared normalized
/// vectors, J̄ = Σ min(ã², b̃²) / Σ max(ã², b̃²) (Fact 5): the fraction of
/// matching samples. This is the quantity classic Weighted MinHash was
/// built for; exposed because dataset-search systems rank by it directly.
Result<double> EstimateWeightedJaccard(const WmhSketch& a, const WmhSketch& b);

/// Estimates the weighted union size M = Σ max(ã², b̃²) via the
/// Flajolet–Martin estimator of Algorithm 5 line 2 (Lemma 1). For unit
/// vectors M ∈ [1, 2]; M = 1 iff the vectors coincide elementwise in square.
Result<double> EstimateWeightedUnion(const WmhSketch& a, const WmhSketch& b);

/// A prefix of a WMH sketch: the first `m` samples, which are themselves a
/// valid m-sample sketch (samples are i.i.d. across hash functions). Used to
/// evaluate many storage budgets from one sketching pass. `m` must not
/// exceed the sketch's sample count.
WmhSketch TruncatedWmh(const WmhSketch& sketch, size_t m);

}  // namespace ipsketch

#endif  // IPSKETCH_CORE_WMH_ESTIMATOR_H_
