// Sketch-based similarity retrieval: given a collection of pre-computed WMH
// sketches, find the vectors (or vector pairs) with the largest estimated
// inner products — the dataset-search / document-retrieval access pattern
// (§1.2, §5.2) packaged as a library utility.

#ifndef IPSKETCH_CORE_SIMILARITY_SEARCH_H_
#define IPSKETCH_CORE_SIMILARITY_SEARCH_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"

namespace ipsketch {

/// One retrieval hit.
struct SimilarityHit {
  size_t index = 0;       ///< position in the candidate collection
  double estimate = 0.0;  ///< estimated ⟨query, candidate⟩
};

/// One all-pairs hit.
struct SimilarityPair {
  size_t first = 0;
  size_t second = 0;
  double estimate = 0.0;
};

/// Ranks all candidates against `query` by estimated inner product and
/// returns the `top_k` largest. All sketches must share (m, seed, L,
/// dimension). O(|candidates| · m).
Result<std::vector<SimilarityHit>> TopKByInnerProduct(
    const WmhSketch& query, const std::vector<WmhSketch>& candidates,
    size_t top_k,
    const WmhEstimateOptions& options = WmhEstimateOptions());

/// Ranks all candidates by estimated *cosine* similarity — identical to
/// TopKByInnerProduct on unit-norm inputs, but divides each estimate by
/// ‖query‖·‖candidate‖ so mixed-norm collections rank sensibly.
Result<std::vector<SimilarityHit>> TopKByCosine(
    const WmhSketch& query, const std::vector<WmhSketch>& candidates,
    size_t top_k,
    const WmhEstimateOptions& options = WmhEstimateOptions());

/// All-pairs top-k: the `top_k` pairs (i < j) with the largest estimated
/// inner products. O(n²·m) — intended for corpus-scale n up to a few
/// thousand, as in the paper's document-similarity experiment.
Result<std::vector<SimilarityPair>> AllPairsTopK(
    const std::vector<WmhSketch>& sketches, size_t top_k,
    const WmhEstimateOptions& options = WmhEstimateOptions());

}  // namespace ipsketch

#endif  // IPSKETCH_CORE_SIMILARITY_SEARCH_H_
