// Sketch-based similarity retrieval: given a collection of pre-computed WMH
// sketches, find the vectors (or vector pairs) with the largest estimated
// inner products — the dataset-search / document-retrieval access pattern
// (§1.2, §5.2) packaged as a library utility.

#ifndef IPSKETCH_CORE_SIMILARITY_SEARCH_H_
#define IPSKETCH_CORE_SIMILARITY_SEARCH_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"

namespace ipsketch {

/// One retrieval hit.
struct SimilarityHit {
  size_t index = 0;       ///< position in the candidate collection
  double estimate = 0.0;  ///< estimated ⟨query, candidate⟩
};

/// Total order on hits: larger estimate first, ties broken by smaller index.
/// Every ranking in this header (and in service/query_engine.h) sorts by
/// this order, so results are deterministic regardless of scan order — the
/// property that lets a parallel shard scan match a serial one exactly.
inline bool BetterHit(const SimilarityHit& x, const SimilarityHit& y) {
  if (x.estimate != y.estimate) return x.estimate > y.estimate;
  return x.index < y.index;
}

/// Bounded collector that keeps the `top_k` best hits (per `BetterHit`) of a
/// stream. O(log k) per offer against the worst retained hit; the brute-force
/// scan over n candidates costs O(n log k) instead of the O(n log n) of
/// sort-everything. This is the single kernel behind every brute-force path:
/// the serial rankers below feed one heap; the service QueryEngine feeds one
/// heap per worker thread and merges them at the end.
class TopKHeap {
 public:
  /// A collector retaining at most `top_k` hits. `top_k == 0` retains none.
  explicit TopKHeap(size_t top_k) : top_k_(top_k) {}

  /// Offers one hit; evicts the worst retained hit if over capacity.
  void Offer(size_t index, double estimate);

  /// Offers every hit another collector retained (its capacity may differ).
  void Merge(const TopKHeap& other);

  /// Number of hits currently retained (≤ top_k).
  size_t size() const { return heap_.size(); }

  /// Extracts the retained hits, best first, leaving the collector empty.
  std::vector<SimilarityHit> TakeSorted();

 private:
  size_t top_k_;
  std::vector<SimilarityHit> heap_;  // min-heap: worst retained hit on top
};

/// One all-pairs hit.
struct SimilarityPair {
  size_t first = 0;
  size_t second = 0;
  double estimate = 0.0;
};

/// Ranks all candidates against `query` by estimated inner product and
/// returns the `top_k` largest. All sketches must share (m, seed, L,
/// dimension). O(|candidates| · m).
Result<std::vector<SimilarityHit>> TopKByInnerProduct(
    const WmhSketch& query, const std::vector<WmhSketch>& candidates,
    size_t top_k,
    const WmhEstimateOptions& options = WmhEstimateOptions());

/// Ranks all candidates by estimated *cosine* similarity — identical to
/// TopKByInnerProduct on unit-norm inputs, but divides each estimate by
/// ‖query‖·‖candidate‖ so mixed-norm collections rank sensibly.
Result<std::vector<SimilarityHit>> TopKByCosine(
    const WmhSketch& query, const std::vector<WmhSketch>& candidates,
    size_t top_k,
    const WmhEstimateOptions& options = WmhEstimateOptions());

/// All-pairs top-k: the `top_k` pairs (i < j) with the largest estimated
/// inner products. O(n²·m) — intended for corpus-scale n up to a few
/// thousand, as in the paper's document-similarity experiment.
Result<std::vector<SimilarityPair>> AllPairsTopK(
    const std::vector<WmhSketch>& sketches, size_t top_k,
    const WmhEstimateOptions& options = WmhEstimateOptions());

}  // namespace ipsketch

#endif  // IPSKETCH_CORE_SIMILARITY_SEARCH_H_
