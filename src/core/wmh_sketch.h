// Algorithm 3: the Weighted MinHash inner product sketch.
//
// A WMH sketch of a vector a consists of m (hash, value) sample pairs plus
// the scalar ‖a‖. Conceptually, the vector is normalized, discretized
// (Algorithm 4), expanded into a length n·L binary-occupancy vector ā whose
// block i holds t[i] = ã[i]²·L occupied slots, and an unweighted MinHash of
// ā is taken with m independent hash functions. Three engines implement
// these semantics:
//
//   * kExpandedReference — literally hashes every occupied slot of ā with a
//     Carter–Wegman hash over the n·L domain. O(m·L) per vector: the test
//     oracle, only usable for small L.
//   * kActiveIndex — generates, per (sample, block), only the O(log L)
//     "active indices" (prefix minima) of the block's hash sequence using
//     geometric jumps (Gollapudi & Panigrahy 2006; §5 of the paper).
//     O(nnz·m·log L) per vector.
//   * kDart — generates only the sub-threshold slot hashes ("darts") for
//     all m samples jointly, per block (DartMinHash, Christiani 2020;
//     core/dart_minhash.h). Expected O(nnz + m·log m) per vector: the
//     default ingest engine.
//
// All engines are deterministic in (seed, sample, block), so independently
// computed sketches of different vectors are coordinated — the property the
// estimator's match test relies on. Different engines realize *different*
// hash functions with the same distribution: sketches are only comparable
// across equal engines (the estimator and the family registry enforce
// this), which is why the engine is part of the sketch and of a store's
// resolved identity.

#ifndef IPSKETCH_CORE_WMH_SKETCH_H_
#define IPSKETCH_CORE_WMH_SKETCH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/status.h"
#include "core/rounding.h"
#include "vector/sparse_vector.h"

namespace ipsketch {

/// Which sketching engine realizes the Algorithm-3 semantics. The numeric
/// values are wire-stable (sketch/serialize.cc stores them).
enum class WmhEngine {
  kActiveIndex = 0,         ///< prefix-minima walk, O(nnz·m·log L)
  kExpandedReference = 1,   ///< slot-by-slot oracle, O(m·L); tests only
  kDart = 2,                ///< dart generation, O(nnz + m·log m); default
};

/// The engine's registry/options name: "active_index",
/// "expanded_reference", or "dart" — the single mapping shared by the
/// family registry, the evaluators, and persistence.
const char* WmhEngineName(WmhEngine engine);

/// Configuration for `SketchWmh`.
struct WmhOptions {
  /// Number of samples m. Error decays as O(1/√m) (Theorem 2).
  size_t num_samples = 128;
  /// Random seed. Sketches are only comparable if built with equal seeds.
  uint64_t seed = 0;
  /// Discretization parameter L (Algorithm 4). 0 selects DefaultL(n).
  /// Larger L costs only log(L) sketching time and no sketch space.
  uint64_t L = 0;
  /// Engine choice; see WmhEngine.
  WmhEngine engine = WmhEngine::kDart;

  /// Validates field ranges.
  Status Validate() const;
};

/// The sketch W_a = {W_hash, W_val, ‖a‖} produced by Algorithm 3.
struct WmhSketch {
  /// Minimum hash value per sample, in [0, 1]. Empty-vector sketches store
  /// 1.0 (the supremum) in every slot so union estimates stay calibrated.
  std::vector<double> hashes;
  /// Discretized-unit-vector entry ã[j] at the argmin slot, per sample.
  std::vector<double> values;
  /// Euclidean norm of the original (pre-normalization) vector.
  double norm = 0.0;
  /// Parameters the sketch was built with; estimation requires equality.
  uint64_t seed = 0;
  uint64_t L = 0;
  uint64_t dimension = 0;
  /// Engine the sketch was built by. Engines realize different hash
  /// functions, so estimation also requires engine equality.
  WmhEngine engine = WmhEngine::kDart;

  /// Number of samples m.
  size_t num_samples() const { return hashes.size(); }

  /// Storage footprint in 64-bit words under the paper's accounting model
  /// (§5): one 64-bit double + one 32-bit hash per sample, + the norm.
  double StorageWords() const {
    return 1.5 * static_cast<double>(num_samples()) + 1.0;
  }
};

/// Computes the Weighted MinHash sketch of `a` (Algorithm 3).
///
/// The zero vector yields a valid "empty" sketch (norm 0, all hashes 1.0):
/// it estimates inner products as 0 against anything. Fails only on invalid
/// options.
Result<WmhSketch> SketchWmh(const SparseVector& a, const WmhOptions& options);

/// Reusable sketching context: options are validated once and the
/// discretization scratch buffer is recycled across calls, so bulk ingest
/// pays no per-vector validation or rounding allocation.
///
/// A `WmhSketcher` is NOT thread-safe — it owns mutable scratch state. The
/// intended pattern for concurrent ingest (service/sketch_store.h) is one
/// sketcher per worker thread, all constructed from the same options;
/// sketches are coordinated across sketchers because the engines are
/// deterministic in (seed, sample, block).
class WmhSketcher {
 public:
  /// Validates `options` and builds a context. Fails like SketchWmh.
  static Result<WmhSketcher> Make(const WmhOptions& options);

  /// The options this context sketches with.
  const WmhOptions& options() const { return options_; }

  /// Sketches `a` into `*out`, reusing its vectors' capacity. Equivalent to
  /// `*out = SketchWmh(a, options()).value()` without the allocations.
  Status Sketch(const SparseVector& a, WmhSketch* out);

 private:
  explicit WmhSketcher(const WmhOptions& options) : options_(options) {}

  WmhOptions options_;
  DiscretizedVector scratch_;
};

}  // namespace ipsketch

#endif  // IPSKETCH_CORE_WMH_SKETCH_H_
