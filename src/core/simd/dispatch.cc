#include "core/simd/dispatch.h"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <string>

namespace ipsketch {
namespace simd {
namespace {

/// Test override; nullptr means "use the resolved tier".
std::atomic<const EstimateKernel*> g_override{nullptr};

// [[maybe_unused]]: under IPSKETCH_FORCE_SCALAR builds Resolve() never
// consults the CPU.
[[maybe_unused]] bool CpuHasAvx2() {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2");
#else
  return false;
#endif
}

const EstimateKernel* Resolve() {
#if defined(IPSKETCH_FORCE_SCALAR_BUILD)
  return &ScalarKernel();
#else
  if (ParseForceScalarEnv(std::getenv("IPSKETCH_FORCE_SCALAR"))) {
    return &ScalarKernel();
  }
  if (CpuHasAvx2()) {
    if (const EstimateKernel* k = Avx2Kernel()) return k;
  }
  if (const EstimateKernel* k = NeonKernel()) return k;
  if (const EstimateKernel* k = Sse2Kernel()) return k;
  return &ScalarKernel();
#endif
}

const EstimateKernel& ResolvedKernel() {
  static const EstimateKernel* kernel = Resolve();
  return *kernel;
}

}  // namespace

const EstimateKernel& ActiveKernel() {
  const EstimateKernel* override_kernel =
      g_override.load(std::memory_order_acquire);
  if (override_kernel != nullptr) return *override_kernel;
  return ResolvedKernel();
}

const char* ActiveKernelName() { return ActiveKernel().name; }

std::vector<const EstimateKernel*> AvailableKernels() {
  std::vector<const EstimateKernel*> out;
  out.push_back(&ScalarKernel());
  if (const EstimateKernel* k = Sse2Kernel()) out.push_back(k);
  if (CpuHasAvx2()) {
    if (const EstimateKernel* k = Avx2Kernel()) out.push_back(k);
  }
  if (const EstimateKernel* k = NeonKernel()) out.push_back(k);
  return out;
}

void SetActiveKernelForTesting(const EstimateKernel* kernel) {
  g_override.store(kernel, std::memory_order_release);
}

bool ParseForceScalarEnv(const char* value) {
  if (value == nullptr || value[0] == '\0') return false;
  std::string lowered(value);
  for (char& c : lowered) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  // Any other non-empty value (1, on, true, yes, ...) forces scalar.
  return lowered != "0" && lowered != "off" && lowered != "false" &&
         lowered != "no";
}

}  // namespace simd
}  // namespace ipsketch
