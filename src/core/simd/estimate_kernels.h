// The pairwise estimation kernels: the hot loops every estimator in the
// library runs over two coordinated sketches, expressed over raw spans so
// one interface serves the scalar reference and the vectorized (SSE2 /
// AVX2 / NEON) implementations behind runtime dispatch (dispatch.h).
//
// Bit-identity contract
// ---------------------
// Every implementation of a kernel returns *bit-identical* results for the
// same inputs — the simd-equivalence CI job enforces this across compilers.
// Two rules make that possible:
//
//   1. Fixed reduction order. Floating-point accumulation is performed in
//      kAccumLanes = 4 independent partial sums; element i contributes to
//      lane i mod 4, and the final value is (l0 + l1) + (l2 + l3). The
//      scalar kernel implements this literally; a 256-bit implementation
//      gets it for free from one 4-wide accumulator, and 128-bit
//      implementations use two 2-wide accumulators. With the order pinned,
//      every per-element operation left is an individually correctly
//      rounded IEEE op (add, mul, div, min, compare, float→double), which
//      vector units and scalar units compute identically.
//   2. No contraction. The library builds with -ffp-contract=off
//      (CMakeLists.txt) and the vector kernels use explicit mul/add — never
//      FMA — so gcc and clang cannot fuse a·b+c differently per path.
//
// Masked accumulation (e.g. "add va·vb/q only where the hashes match") is
// realized in vector code by adding +0.0 in masked-out lanes. That is
// bit-equivalent to skipping the addition: lane sums start at +0.0 and can
// never become -0.0 (IEEE round-to-nearest cancellation yields +0.0), and
// s + 0.0 == s bitwise for every such s. Guarded divisions substitute 1.0
// for the divisor in masked-out lanes, so no spurious Inf/NaN is ever
// computed. Inputs are assumed NaN-free (sketches never contain NaNs).
//
// The kernels cover:
//   * wmh_pair     — Algorithm 5's fused loop (core/wmh_estimator.cc):
//                    Σ min(h_a, h_b), Σ [h_a = h_b, q > 0] v_a·v_b/q with
//                    q = min(v_a², v_b²), and the q>0 match count.
//   * match_u64    — ICWS fingerprint match loop (core/icws.cc).
//   * compact_pair — 32-bit quantized WMH loop (sketch/quantize.cc): the
//                    min is taken in the integer domain, then dequantized
//                    as (q + 0.5)/2³² with the ~0u sentinel mapping to 1.0.
//   * match_u32    — b-bit fingerprint match loop (sketch/quantize.cc).
//   * mh_pair      — unweighted MinHash loop (sketch/minhash.cc): matches
//                    require h < 1.0 (the empty-sketch sentinel never
//                    matches) and accumulate v_a·v_b unscaled.
//   * count_eq_f64 / count_eq_below1_f64 / min_sum_f64 — the Jaccard and
//                    union estimators' reduced forms.
//   * sum_f64      — plain lane-ordered sum (KMV's pooled matched
//                    products, sketch/kmv.cc).
//   * dot_f64      — lane-ordered dot product (JL rows, CountSketch
//                    tables).
//
// Integer results (match counts) are exact and carry no ordering contract.

#ifndef IPSKETCH_CORE_SIMD_ESTIMATE_KERNELS_H_
#define IPSKETCH_CORE_SIMD_ESTIMATE_KERNELS_H_

#include <cstddef>
#include <cstdint>

namespace ipsketch {
namespace simd {

/// Number of independent accumulation lanes every kernel implementation
/// reduces over; part of the bit-identity contract (see file comment).
inline constexpr size_t kAccumLanes = 4;

/// Dequantization of a 32-bit fixed-point minimum hash: mid-point
/// (q + 0.5)/2³², with the saturated bucket — the empty-slot sentinel —
/// pinned back to exactly 1.0. The single source of truth for the inverse
/// of sketch/quantize.cc's QuantizeHash; the vector tiers' in-register
/// dequantization and their scalar tails must both agree with it bit for
/// bit. Declared `static` deliberately: each kernel TU compiles its own
/// internal-linkage copy with its own target flags, so the linker can
/// never substitute, say, an AVX-encoded copy into a TU that must run on
/// pre-AVX hardware.
static inline double DequantizeHash32(uint32_t q) {
  if (q == ~uint32_t{0}) return 1.0;
  return (static_cast<double>(q) + 0.5) / 4294967296.0;
}

/// Results of one fused pass over m full-precision WMH sample pairs.
struct WmhPairStats {
  double min_hash_sum = 0.0;        ///< Σ min(h_a[i], h_b[i])
  double weighted_match_sum = 0.0;  ///< Σ [match ∧ q>0] v_a·v_b/q
  uint64_t match_count = 0;         ///< #{i : match ∧ q > 0}
};

/// Results of a fingerprint-match pass (ICWS u64, b-bit u32).
struct MatchStats {
  double weighted_match_sum = 0.0;  ///< Σ [match ∧ q>0] v_a·v_b/q
  uint64_t match_count = 0;         ///< #{i : match ∧ q > 0}
};

/// Results of one pass over m compact (32-bit quantized) WMH pairs.
struct CompactPairStats {
  double min_hash_sum = 0.0;        ///< Σ Dequantize(min(h_a[i], h_b[i]))
  double weighted_match_sum = 0.0;  ///< Σ [match ∧ q>0] v_a·v_b/q
};

/// Results of one pass over m unweighted MinHash pairs.
struct MhPairStats {
  double min_hash_sum = 0.0;  ///< Σ min(h_a[i], h_b[i])
  double match_sum = 0.0;     ///< Σ [h_a = h_b < 1] v_a·v_b
};

/// One implementation tier: a table of kernel entry points. Instances are
/// immutable statics; estimators fetch the dispatched table once per call
/// via simd::ActiveKernel() (dispatch.h).
struct EstimateKernel {
  /// Tier name recorded in bench artifacts: "scalar", "sse2", "avx2",
  /// "neon".
  const char* name;

  WmhPairStats (*wmh_pair)(const double* ha, const double* hb,
                           const double* va, const double* vb, size_t m);

  MatchStats (*match_u64)(const uint64_t* fa, const uint64_t* fb,
                          const double* va, const double* vb, size_t m);

  CompactPairStats (*compact_pair)(const uint32_t* ha, const uint32_t* hb,
                                   const float* va, const float* vb,
                                   size_t m);

  MatchStats (*match_u32)(const uint32_t* fa, const uint32_t* fb,
                          const float* va, const float* vb, size_t m);

  MhPairStats (*mh_pair)(const double* ha, const double* hb,
                         const double* va, const double* vb, size_t m);

  /// #{i : ha[i] == hb[i]}.
  uint64_t (*count_eq_f64)(const double* ha, const double* hb, size_t m);

  /// #{i : ha[i] == hb[i] ∧ ha[i] < 1.0}.
  uint64_t (*count_eq_below1_f64)(const double* ha, const double* hb,
                                  size_t m);

  /// Σ min(ha[i], hb[i]).
  double (*min_sum_f64)(const double* ha, const double* hb, size_t m);

  /// Σ x[i].
  double (*sum_f64)(const double* x, size_t m);

  /// Σ x[i]·y[i] (mul then add — never fused).
  double (*dot_f64)(const double* x, const double* y, size_t m);
};

/// The scalar reference tier; always available, defines the semantics every
/// vector tier must reproduce bit for bit.
const EstimateKernel& ScalarKernel();

/// Vector tiers, or nullptr when not compiled in for this target. Runtime
/// CPU support is NOT checked here — use dispatch.h's ActiveKernel() /
/// AvailableKernels() for that.
const EstimateKernel* Sse2Kernel();
const EstimateKernel* Avx2Kernel();
const EstimateKernel* NeonKernel();

}  // namespace simd
}  // namespace ipsketch

#endif  // IPSKETCH_CORE_SIMD_ESTIMATE_KERNELS_H_
