// Scalar reference tier. This file *defines* the semantics of every kernel:
// the vector tiers reproduce these loops bit for bit by following the same
// 4-lane accumulation order (see estimate_kernels.h).
//
// The lane structure below is deliberate, not an optimization: element i
// accumulates into lane i & 3 and the lanes reduce as (l0 + l1) + (l2 + l3),
// which is exactly the order a 4-wide vector accumulator produces.

#include "core/simd/estimate_kernels.h"

#include <algorithm>

namespace ipsketch {
namespace simd {
namespace {

/// kAccumLanes partial sums with the pinned reduction order.
struct Lanes {
  double l[kAccumLanes] = {0.0, 0.0, 0.0, 0.0};

  void Add(size_t i, double term) { l[i & 3] += term; }
  double Reduce() const { return (l[0] + l[1]) + (l[2] + l[3]); }
};

WmhPairStats WmhPair(const double* ha, const double* hb, const double* va,
                     const double* vb, size_t m) {
  WmhPairStats out;
  Lanes min_sum, match_sum;
  for (size_t i = 0; i < m; ++i) {
    min_sum.Add(i, std::min(ha[i], hb[i]));
    if (ha[i] == hb[i]) {
      const double q = std::min(va[i] * va[i], vb[i] * vb[i]);
      if (q > 0.0) {
        match_sum.Add(i, va[i] * vb[i] / q);
        ++out.match_count;
      }
    }
  }
  out.min_hash_sum = min_sum.Reduce();
  out.weighted_match_sum = match_sum.Reduce();
  return out;
}

MatchStats MatchU64(const uint64_t* fa, const uint64_t* fb, const double* va,
                    const double* vb, size_t m) {
  MatchStats out;
  Lanes match_sum;
  for (size_t i = 0; i < m; ++i) {
    if (fa[i] == fb[i]) {
      const double q = std::min(va[i] * va[i], vb[i] * vb[i]);
      if (q > 0.0) {
        match_sum.Add(i, va[i] * vb[i] / q);
        ++out.match_count;
      }
    }
  }
  out.weighted_match_sum = match_sum.Reduce();
  return out;
}

CompactPairStats CompactPair(const uint32_t* ha, const uint32_t* hb,
                             const float* va, const float* vb, size_t m) {
  CompactPairStats out;
  Lanes min_sum, match_sum;
  for (size_t i = 0; i < m; ++i) {
    min_sum.Add(i, DequantizeHash32(std::min(ha[i], hb[i])));
    if (ha[i] == hb[i]) {
      const double da = va[i];
      const double db = vb[i];
      const double q = std::min(da * da, db * db);
      if (q > 0.0) match_sum.Add(i, da * db / q);
    }
  }
  out.min_hash_sum = min_sum.Reduce();
  out.weighted_match_sum = match_sum.Reduce();
  return out;
}

MatchStats MatchU32(const uint32_t* fa, const uint32_t* fb, const float* va,
                    const float* vb, size_t m) {
  MatchStats out;
  Lanes match_sum;
  for (size_t i = 0; i < m; ++i) {
    if (fa[i] == fb[i]) {
      const double da = va[i];
      const double db = vb[i];
      const double q = std::min(da * da, db * db);
      if (q > 0.0) {
        match_sum.Add(i, da * db / q);
        ++out.match_count;
      }
    }
  }
  out.weighted_match_sum = match_sum.Reduce();
  return out;
}

MhPairStats MhPair(const double* ha, const double* hb, const double* va,
                   const double* vb, size_t m) {
  MhPairStats out;
  Lanes min_sum, match_sum;
  for (size_t i = 0; i < m; ++i) {
    min_sum.Add(i, std::min(ha[i], hb[i]));
    if (ha[i] == hb[i] && ha[i] < 1.0) {
      match_sum.Add(i, va[i] * vb[i]);
    }
  }
  out.min_hash_sum = min_sum.Reduce();
  out.match_sum = match_sum.Reduce();
  return out;
}

uint64_t CountEqF64(const double* ha, const double* hb, size_t m) {
  uint64_t count = 0;
  for (size_t i = 0; i < m; ++i) count += (ha[i] == hb[i]);
  return count;
}

uint64_t CountEqBelow1F64(const double* ha, const double* hb, size_t m) {
  uint64_t count = 0;
  for (size_t i = 0; i < m; ++i) count += (ha[i] == hb[i] && ha[i] < 1.0);
  return count;
}

double MinSumF64(const double* ha, const double* hb, size_t m) {
  Lanes sum;
  for (size_t i = 0; i < m; ++i) sum.Add(i, std::min(ha[i], hb[i]));
  return sum.Reduce();
}

double SumF64(const double* x, size_t m) {
  Lanes sum;
  for (size_t i = 0; i < m; ++i) sum.Add(i, x[i]);
  return sum.Reduce();
}

double DotF64(const double* x, const double* y, size_t m) {
  Lanes sum;
  for (size_t i = 0; i < m; ++i) {
    const double p = x[i] * y[i];
    sum.Add(i, p);
  }
  return sum.Reduce();
}

}  // namespace

const EstimateKernel& ScalarKernel() {
  static constexpr EstimateKernel kScalar = {
      "scalar",    &WmhPair,        &MatchU64, &CompactPair, &MatchU32,
      &MhPair,     &CountEqF64,     &CountEqBelow1F64,
      &MinSumF64,  &SumF64,         &DotF64,
  };
  return kScalar;
}

}  // namespace simd
}  // namespace ipsketch
