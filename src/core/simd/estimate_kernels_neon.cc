// NEON tier (AArch64): the ARM counterpart of the SSE2 tier. Two 2-wide
// double accumulators realize the 4-lane contract of estimate_kernels.h
// (lo holds lanes 0-1, hi holds lanes 2-3); scalar tails continue the lane
// assignment, so results are bit-identical to the scalar tier. AArch64 NEON
// has IEEE double min/div natively, so no emulation is needed beyond
// sign-extending 32-bit comparison masks to per-double width.

#include "core/simd/estimate_kernels.h"

#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>

namespace ipsketch {
namespace simd {
namespace {

double Reduce(const double l[4]) { return (l[0] + l[1]) + (l[2] + l[3]); }

uint64_t MaskCount(uint64x2_t mask) {
  return (vgetq_lane_u64(mask, 0) & 1) + (vgetq_lane_u64(mask, 1) & 1);
}

/// Sign-extends two 32-bit comparison masks into per-double masks.
uint64x2_t WidenMask32(uint32x2_t mask32) {
  return vreinterpretq_u64_s64(vmovl_s32(vreinterpret_s32_u32(mask32)));
}

float64x2_t MaskedF64(float64x2_t v, uint64x2_t mask) {
  return vreinterpretq_f64_u64(vandq_u64(vreinterpretq_u64_f64(v), mask));
}

/// The masked weighted-match term for two lanes: [eq ∧ q>0] va·vb/q, with
/// masked lanes contributing +0.0 and counted into *count. Matches are the
/// rare case in a full scan; with no lane matching the term is all +0.0,
/// so skipping the divide block is both bit-identical and the fast path.
float64x2_t WeightedTerm(uint64x2_t eq, float64x2_t va, float64x2_t vb,
                         uint64_t* count) {
  const float64x2_t zero = vdupq_n_f64(0.0);
  if ((vgetq_lane_u64(eq, 0) | vgetq_lane_u64(eq, 1)) == 0) return zero;
  const float64x2_t ones = vdupq_n_f64(1.0);
  const float64x2_t q = vminq_f64(vmulq_f64(va, va), vmulq_f64(vb, vb));
  const uint64x2_t mask = vandq_u64(eq, vcgtq_f64(q, zero));
  const float64x2_t q_safe = vbslq_f64(mask, q, ones);
  const float64x2_t term = vdivq_f64(vmulq_f64(va, vb), q_safe);
  *count += MaskCount(mask);
  return MaskedF64(term, mask);
}

WmhPairStats WmhPair(const double* ha, const double* hb, const double* va,
                     const double* vb, size_t m) {
  float64x2_t min_lo = vdupq_n_f64(0.0), min_hi = vdupq_n_f64(0.0);
  float64x2_t w_lo = vdupq_n_f64(0.0), w_hi = vdupq_n_f64(0.0);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float64x2_t ha_lo = vld1q_f64(ha + i);
    const float64x2_t ha_hi = vld1q_f64(ha + i + 2);
    const float64x2_t hb_lo = vld1q_f64(hb + i);
    const float64x2_t hb_hi = vld1q_f64(hb + i + 2);
    min_lo = vaddq_f64(min_lo, vminq_f64(ha_lo, hb_lo));
    min_hi = vaddq_f64(min_hi, vminq_f64(ha_hi, hb_hi));
    w_lo = vaddq_f64(w_lo, WeightedTerm(vceqq_f64(ha_lo, hb_lo),
                                        vld1q_f64(va + i),
                                        vld1q_f64(vb + i), &count));
    w_hi = vaddq_f64(w_hi, WeightedTerm(vceqq_f64(ha_hi, hb_hi),
                                        vld1q_f64(va + i + 2),
                                        vld1q_f64(vb + i + 2), &count));
  }
  double min_l[4], w_l[4];
  vst1q_f64(min_l, min_lo);
  vst1q_f64(min_l + 2, min_hi);
  vst1q_f64(w_l, w_lo);
  vst1q_f64(w_l + 2, w_hi);
  for (; i < m; ++i) {
    min_l[i & 3] += std::min(ha[i], hb[i]);
    if (ha[i] == hb[i]) {
      const double q = std::min(va[i] * va[i], vb[i] * vb[i]);
      if (q > 0.0) {
        w_l[i & 3] += va[i] * vb[i] / q;
        ++count;
      }
    }
  }
  return {Reduce(min_l), Reduce(w_l), count};
}

MatchStats MatchU64(const uint64_t* fa, const uint64_t* fb, const double* va,
                    const double* vb, size_t m) {
  float64x2_t w_lo = vdupq_n_f64(0.0), w_hi = vdupq_n_f64(0.0);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const uint64x2_t eq_lo =
        vceqq_u64(vld1q_u64(fa + i), vld1q_u64(fb + i));
    const uint64x2_t eq_hi =
        vceqq_u64(vld1q_u64(fa + i + 2), vld1q_u64(fb + i + 2));
    w_lo = vaddq_f64(w_lo, WeightedTerm(eq_lo, vld1q_f64(va + i),
                                        vld1q_f64(vb + i), &count));
    w_hi = vaddq_f64(w_hi, WeightedTerm(eq_hi, vld1q_f64(va + i + 2),
                                        vld1q_f64(vb + i + 2), &count));
  }
  double w_l[4];
  vst1q_f64(w_l, w_lo);
  vst1q_f64(w_l + 2, w_hi);
  for (; i < m; ++i) {
    if (fa[i] == fb[i]) {
      const double q = std::min(va[i] * va[i], vb[i] * vb[i]);
      if (q > 0.0) {
        w_l[i & 3] += va[i] * vb[i] / q;
        ++count;
      }
    }
  }
  return {Reduce(w_l), count};
}

CompactPairStats CompactPair(const uint32_t* ha, const uint32_t* hb,
                             const float* va, const float* vb, size_t m) {
  const float64x2_t half = vdupq_n_f64(0.5);
  const float64x2_t two32 = vdupq_n_f64(4294967296.0);
  const float64x2_t ones = vdupq_n_f64(1.0);
  float64x2_t min_lo = vdupq_n_f64(0.0), min_hi = vdupq_n_f64(0.0);
  float64x2_t w_lo = vdupq_n_f64(0.0), w_hi = vdupq_n_f64(0.0);
  uint64_t count = 0;  // discarded: compact stats carry no count
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const uint32x4_t ha4 = vld1q_u32(ha + i);
    const uint32x4_t hb4 = vld1q_u32(hb + i);
    const uint32x4_t minv = vminq_u32(ha4, hb4);
    const uint32x4_t sent32 = vceqq_u32(minv, vdupq_n_u32(~0u));
    const uint32x4_t eq32 = vceqq_u32(ha4, hb4);
    // Exact u32 → f64 (every u32 is representable), then dequantize
    // (q + 0.5)/2³² with the saturated sentinel pinned to 1.0.
    float64x2_t deq_lo = vdivq_f64(
        vaddq_f64(vcvtq_f64_u64(vmovl_u32(vget_low_u32(minv))), half),
        two32);
    float64x2_t deq_hi = vdivq_f64(
        vaddq_f64(vcvtq_f64_u64(vmovl_u32(vget_high_u32(minv))), half),
        two32);
    deq_lo = vbslq_f64(WidenMask32(vget_low_u32(sent32)), ones, deq_lo);
    deq_hi = vbslq_f64(WidenMask32(vget_high_u32(sent32)), ones, deq_hi);
    min_lo = vaddq_f64(min_lo, deq_lo);
    min_hi = vaddq_f64(min_hi, deq_hi);

    const float32x4_t vaf = vld1q_f32(va + i);
    const float32x4_t vbf = vld1q_f32(vb + i);
    w_lo = vaddq_f64(w_lo, WeightedTerm(WidenMask32(vget_low_u32(eq32)),
                                        vcvt_f64_f32(vget_low_f32(vaf)),
                                        vcvt_f64_f32(vget_low_f32(vbf)),
                                        &count));
    w_hi = vaddq_f64(w_hi, WeightedTerm(WidenMask32(vget_high_u32(eq32)),
                                        vcvt_f64_f32(vget_high_f32(vaf)),
                                        vcvt_f64_f32(vget_high_f32(vbf)),
                                        &count));
  }
  double min_l[4], w_l[4];
  vst1q_f64(min_l, min_lo);
  vst1q_f64(min_l + 2, min_hi);
  vst1q_f64(w_l, w_lo);
  vst1q_f64(w_l + 2, w_hi);
  for (; i < m; ++i) {
    min_l[i & 3] += DequantizeHash32(std::min(ha[i], hb[i]));
    if (ha[i] == hb[i]) {
      const double da = va[i];
      const double db = vb[i];
      const double q = std::min(da * da, db * db);
      if (q > 0.0) w_l[i & 3] += da * db / q;
    }
  }
  return {Reduce(min_l), Reduce(w_l)};
}

MatchStats MatchU32(const uint32_t* fa, const uint32_t* fb, const float* va,
                    const float* vb, size_t m) {
  float64x2_t w_lo = vdupq_n_f64(0.0), w_hi = vdupq_n_f64(0.0);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const uint32x4_t eq32 = vceqq_u32(vld1q_u32(fa + i), vld1q_u32(fb + i));
    const float32x4_t vaf = vld1q_f32(va + i);
    const float32x4_t vbf = vld1q_f32(vb + i);
    w_lo = vaddq_f64(w_lo, WeightedTerm(WidenMask32(vget_low_u32(eq32)),
                                        vcvt_f64_f32(vget_low_f32(vaf)),
                                        vcvt_f64_f32(vget_low_f32(vbf)),
                                        &count));
    w_hi = vaddq_f64(w_hi, WeightedTerm(WidenMask32(vget_high_u32(eq32)),
                                        vcvt_f64_f32(vget_high_f32(vaf)),
                                        vcvt_f64_f32(vget_high_f32(vbf)),
                                        &count));
  }
  double w_l[4];
  vst1q_f64(w_l, w_lo);
  vst1q_f64(w_l + 2, w_hi);
  for (; i < m; ++i) {
    if (fa[i] == fb[i]) {
      const double da = va[i];
      const double db = vb[i];
      const double q = std::min(da * da, db * db);
      if (q > 0.0) {
        w_l[i & 3] += da * db / q;
        ++count;
      }
    }
  }
  return {Reduce(w_l), count};
}

MhPairStats MhPair(const double* ha, const double* hb, const double* va,
                   const double* vb, size_t m) {
  const float64x2_t ones = vdupq_n_f64(1.0);
  float64x2_t min_lo = vdupq_n_f64(0.0), min_hi = vdupq_n_f64(0.0);
  float64x2_t w_lo = vdupq_n_f64(0.0), w_hi = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const float64x2_t ha_lo = vld1q_f64(ha + i);
    const float64x2_t ha_hi = vld1q_f64(ha + i + 2);
    const float64x2_t hb_lo = vld1q_f64(hb + i);
    const float64x2_t hb_hi = vld1q_f64(hb + i + 2);
    min_lo = vaddq_f64(min_lo, vminq_f64(ha_lo, hb_lo));
    min_hi = vaddq_f64(min_hi, vminq_f64(ha_hi, hb_hi));
    const uint64x2_t mask_lo =
        vandq_u64(vceqq_f64(ha_lo, hb_lo), vcltq_f64(ha_lo, ones));
    const uint64x2_t mask_hi =
        vandq_u64(vceqq_f64(ha_hi, hb_hi), vcltq_f64(ha_hi, ones));
    w_lo = vaddq_f64(
        w_lo, MaskedF64(vmulq_f64(vld1q_f64(va + i), vld1q_f64(vb + i)),
                        mask_lo));
    w_hi = vaddq_f64(
        w_hi,
        MaskedF64(vmulq_f64(vld1q_f64(va + i + 2), vld1q_f64(vb + i + 2)),
                  mask_hi));
  }
  double min_l[4], w_l[4];
  vst1q_f64(min_l, min_lo);
  vst1q_f64(min_l + 2, min_hi);
  vst1q_f64(w_l, w_lo);
  vst1q_f64(w_l + 2, w_hi);
  for (; i < m; ++i) {
    min_l[i & 3] += std::min(ha[i], hb[i]);
    if (ha[i] == hb[i] && ha[i] < 1.0) {
      w_l[i & 3] += va[i] * vb[i];
    }
  }
  return {Reduce(min_l), Reduce(w_l)};
}

uint64_t CountEqF64(const double* ha, const double* hb, size_t m) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    count += MaskCount(vceqq_f64(vld1q_f64(ha + i), vld1q_f64(hb + i)));
  }
  for (; i < m; ++i) count += (ha[i] == hb[i]);
  return count;
}

uint64_t CountEqBelow1F64(const double* ha, const double* hb, size_t m) {
  const float64x2_t ones = vdupq_n_f64(1.0);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const float64x2_t ha2 = vld1q_f64(ha + i);
    count += MaskCount(vandq_u64(vceqq_f64(ha2, vld1q_f64(hb + i)),
                                 vcltq_f64(ha2, ones)));
  }
  for (; i < m; ++i) count += (ha[i] == hb[i] && ha[i] < 1.0);
  return count;
}

double MinSumF64(const double* ha, const double* hb, size_t m) {
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    lo = vaddq_f64(lo, vminq_f64(vld1q_f64(ha + i), vld1q_f64(hb + i)));
    hi = vaddq_f64(hi,
                   vminq_f64(vld1q_f64(ha + i + 2), vld1q_f64(hb + i + 2)));
  }
  double l[4];
  vst1q_f64(l, lo);
  vst1q_f64(l + 2, hi);
  for (; i < m; ++i) l[i & 3] += std::min(ha[i], hb[i]);
  return Reduce(l);
}

double SumF64(const double* x, size_t m) {
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    lo = vaddq_f64(lo, vld1q_f64(x + i));
    hi = vaddq_f64(hi, vld1q_f64(x + i + 2));
  }
  double l[4];
  vst1q_f64(l, lo);
  vst1q_f64(l + 2, hi);
  for (; i < m; ++i) l[i & 3] += x[i];
  return Reduce(l);
}

double DotF64(const double* x, const double* y, size_t m) {
  float64x2_t lo = vdupq_n_f64(0.0), hi = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    lo = vaddq_f64(lo, vmulq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
    hi = vaddq_f64(hi,
                   vmulq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2)));
  }
  double l[4];
  vst1q_f64(l, lo);
  vst1q_f64(l + 2, hi);
  for (; i < m; ++i) l[i & 3] += x[i] * y[i];
  return Reduce(l);
}

}  // namespace

const EstimateKernel* NeonKernel() {
  static constexpr EstimateKernel kNeon = {
      "neon",     &WmhPair,    &MatchU64, &CompactPair, &MatchU32,
      &MhPair,    &CountEqF64, &CountEqBelow1F64,
      &MinSumF64, &SumF64,     &DotF64,
  };
  return &kNeon;
}

}  // namespace simd
}  // namespace ipsketch

#else  // !defined(__aarch64__)

namespace ipsketch {
namespace simd {

const EstimateKernel* NeonKernel() { return nullptr; }

}  // namespace simd
}  // namespace ipsketch

#endif
