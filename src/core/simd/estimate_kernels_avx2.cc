// AVX2 tier: one 4-wide double accumulator per sum realizes the 4-lane
// contract of estimate_kernels.h directly; scalar tails continue the lane
// assignment (i & 3) so results stay bit-identical to the scalar tier.
//
// This translation unit is the only one compiled with -mavx2
// (CMakeLists.txt); everything here is internal-linkage except the
// Avx2Kernel() accessor, so no AVX2 code can leak into TUs that run on
// pre-AVX2 machines. Callers must check runtime support via dispatch.h.

#include "core/simd/estimate_kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

#include <algorithm>
#include <bit>

namespace ipsketch {
namespace simd {
namespace {

double Reduce(const double l[4]) { return (l[0] + l[1]) + (l[2] + l[3]); }

/// Exact u32 → f64 of four packed values: bias to signed, convert, un-bias
/// (both steps exact — every u32 is exactly representable in double).
__m256d CvtU32ToF64(__m128i v) {
  const __m128i biased = _mm_xor_si128(v, _mm_set1_epi32(INT32_MIN));
  return _mm256_add_pd(_mm256_cvtepi32_pd(biased),
                       _mm256_set1_pd(2147483648.0));
}

/// The masked weighted-match term for four lanes: [eq ∧ q>0] va·vb/q, with
/// masked lanes contributing +0.0 and counted into *count. Masked-out lanes
/// divide by 1.0 instead of a possibly-zero q, so no spurious Inf/NaN is
/// ever formed; the AND then zeroes them. Mirrors the SSE2/NEON helpers.
__m256d WeightedTerm(__m256d eq, __m256d va, __m256d vb, uint64_t* count) {
  const __m256d zero = _mm256_setzero_pd();
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d q = _mm256_min_pd(_mm256_mul_pd(va, va),
                                  _mm256_mul_pd(vb, vb));
  const __m256d qpos = _mm256_cmp_pd(q, zero, _CMP_GT_OQ);
  const __m256d mask = _mm256_and_pd(eq, qpos);
  const __m256d q_safe = _mm256_blendv_pd(ones, q, mask);
  const __m256d term = _mm256_div_pd(_mm256_mul_pd(va, vb), q_safe);
  *count += std::popcount(
      static_cast<unsigned>(_mm256_movemask_pd(mask)));
  return _mm256_and_pd(term, mask);
}

WmhPairStats WmhPair(const double* ha, const double* hb, const double* va,
                     const double* vb, size_t m) {
  __m256d min_acc = _mm256_setzero_pd();
  __m256d w_acc = _mm256_setzero_pd();
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256d ha4 = _mm256_loadu_pd(ha + i);
    const __m256d hb4 = _mm256_loadu_pd(hb + i);
    min_acc = _mm256_add_pd(min_acc, _mm256_min_pd(ha4, hb4));
    const __m256d eq = _mm256_cmp_pd(ha4, hb4, _CMP_EQ_OQ);
    // Matches are the rare case in a full scan; when no lane matches the
    // weighted term is all +0.0, so skipping the divide block is both
    // bit-identical and the fast path.
    if (_mm256_movemask_pd(eq) == 0) continue;
    const __m256d va4 = _mm256_loadu_pd(va + i);
    const __m256d vb4 = _mm256_loadu_pd(vb + i);
    w_acc = _mm256_add_pd(w_acc, WeightedTerm(eq, va4, vb4, &count));
  }
  double min_l[4], w_l[4];
  _mm256_storeu_pd(min_l, min_acc);
  _mm256_storeu_pd(w_l, w_acc);
  for (; i < m; ++i) {
    min_l[i & 3] += std::min(ha[i], hb[i]);
    if (ha[i] == hb[i]) {
      const double q = std::min(va[i] * va[i], vb[i] * vb[i]);
      if (q > 0.0) {
        w_l[i & 3] += va[i] * vb[i] / q;
        ++count;
      }
    }
  }
  return {Reduce(min_l), Reduce(w_l), count};
}

MatchStats MatchU64(const uint64_t* fa, const uint64_t* fb, const double* va,
                    const double* vb, size_t m) {
  __m256d w_acc = _mm256_setzero_pd();
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256i fa4 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fa + i));
    const __m256i fb4 =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(fb + i));
    const __m256d eq = _mm256_castsi256_pd(_mm256_cmpeq_epi64(fa4, fb4));
    if (_mm256_movemask_pd(eq) == 0) continue;  // no match: nothing to add
    const __m256d va4 = _mm256_loadu_pd(va + i);
    const __m256d vb4 = _mm256_loadu_pd(vb + i);
    w_acc = _mm256_add_pd(w_acc, WeightedTerm(eq, va4, vb4, &count));
  }
  double w_l[4];
  _mm256_storeu_pd(w_l, w_acc);
  for (; i < m; ++i) {
    if (fa[i] == fb[i]) {
      const double q = std::min(va[i] * va[i], vb[i] * vb[i]);
      if (q > 0.0) {
        w_l[i & 3] += va[i] * vb[i] / q;
        ++count;
      }
    }
  }
  return {Reduce(w_l), count};
}

CompactPairStats CompactPair(const uint32_t* ha, const uint32_t* hb,
                             const float* va, const float* vb, size_t m) {
  const __m256d ones = _mm256_set1_pd(1.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d two32 = _mm256_set1_pd(4294967296.0);
  __m256d min_acc = _mm256_setzero_pd();
  __m256d w_acc = _mm256_setzero_pd();
  uint64_t count = 0;  // discarded: compact stats carry no count
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m128i ha4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ha + i));
    const __m128i hb4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hb + i));
    const __m128i minv = _mm_min_epu32(ha4, hb4);
    // Dequantize (q + 0.5)/2³², with the saturated sentinel pinned to 1.0.
    __m256d deq =
        _mm256_div_pd(_mm256_add_pd(CvtU32ToF64(minv), half), two32);
    const __m256i sent64 = _mm256_cvtepi32_epi64(
        _mm_cmpeq_epi32(minv, _mm_set1_epi32(-1)));
    deq = _mm256_blendv_pd(deq, ones, _mm256_castsi256_pd(sent64));
    min_acc = _mm256_add_pd(min_acc, deq);

    const __m128i eq32 = _mm_cmpeq_epi32(ha4, hb4);
    if (_mm_movemask_epi8(eq32) == 0) continue;  // no match: nothing to add
    const __m256d eq = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(eq32));
    const __m256d va4 = _mm256_cvtps_pd(_mm_loadu_ps(va + i));
    const __m256d vb4 = _mm256_cvtps_pd(_mm_loadu_ps(vb + i));
    w_acc = _mm256_add_pd(w_acc, WeightedTerm(eq, va4, vb4, &count));
  }
  double min_l[4], w_l[4];
  _mm256_storeu_pd(min_l, min_acc);
  _mm256_storeu_pd(w_l, w_acc);
  for (; i < m; ++i) {
    min_l[i & 3] += DequantizeHash32(std::min(ha[i], hb[i]));
    if (ha[i] == hb[i]) {
      const double da = va[i];
      const double db = vb[i];
      const double q = std::min(da * da, db * db);
      if (q > 0.0) w_l[i & 3] += da * db / q;
    }
  }
  return {Reduce(min_l), Reduce(w_l)};
}

MatchStats MatchU32(const uint32_t* fa, const uint32_t* fb, const float* va,
                    const float* vb, size_t m) {
  __m256d w_acc = _mm256_setzero_pd();
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m128i fa4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fa + i));
    const __m128i fb4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fb + i));
    const __m128i eq32 = _mm_cmpeq_epi32(fa4, fb4);
    if (_mm_movemask_epi8(eq32) == 0) continue;  // no match: nothing to add
    const __m256d eq = _mm256_castsi256_pd(_mm256_cvtepi32_epi64(eq32));
    const __m256d va4 = _mm256_cvtps_pd(_mm_loadu_ps(va + i));
    const __m256d vb4 = _mm256_cvtps_pd(_mm_loadu_ps(vb + i));
    w_acc = _mm256_add_pd(w_acc, WeightedTerm(eq, va4, vb4, &count));
  }
  double w_l[4];
  _mm256_storeu_pd(w_l, w_acc);
  for (; i < m; ++i) {
    if (fa[i] == fb[i]) {
      const double da = va[i];
      const double db = vb[i];
      const double q = std::min(da * da, db * db);
      if (q > 0.0) {
        w_l[i & 3] += da * db / q;
        ++count;
      }
    }
  }
  return {Reduce(w_l), count};
}

MhPairStats MhPair(const double* ha, const double* hb, const double* va,
                   const double* vb, size_t m) {
  const __m256d ones = _mm256_set1_pd(1.0);
  __m256d min_acc = _mm256_setzero_pd();
  __m256d w_acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256d ha4 = _mm256_loadu_pd(ha + i);
    const __m256d hb4 = _mm256_loadu_pd(hb + i);
    min_acc = _mm256_add_pd(min_acc, _mm256_min_pd(ha4, hb4));
    const __m256d eq = _mm256_cmp_pd(ha4, hb4, _CMP_EQ_OQ);
    const __m256d below1 = _mm256_cmp_pd(ha4, ones, _CMP_LT_OQ);
    const __m256d mask = _mm256_and_pd(eq, below1);
    if (_mm256_movemask_pd(mask) == 0) continue;  // no match: nothing to add
    const __m256d va4 = _mm256_loadu_pd(va + i);
    const __m256d vb4 = _mm256_loadu_pd(vb + i);
    const __m256d term = _mm256_mul_pd(va4, vb4);
    w_acc = _mm256_add_pd(w_acc, _mm256_and_pd(term, mask));
  }
  double min_l[4], w_l[4];
  _mm256_storeu_pd(min_l, min_acc);
  _mm256_storeu_pd(w_l, w_acc);
  for (; i < m; ++i) {
    min_l[i & 3] += std::min(ha[i], hb[i]);
    if (ha[i] == hb[i] && ha[i] < 1.0) {
      w_l[i & 3] += va[i] * vb[i];
    }
  }
  return {Reduce(min_l), Reduce(w_l)};
}

uint64_t CountEqF64(const double* ha, const double* hb, size_t m) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256d eq = _mm256_cmp_pd(_mm256_loadu_pd(ha + i),
                                     _mm256_loadu_pd(hb + i), _CMP_EQ_OQ);
    count += std::popcount(static_cast<unsigned>(_mm256_movemask_pd(eq)));
  }
  for (; i < m; ++i) count += (ha[i] == hb[i]);
  return count;
}

uint64_t CountEqBelow1F64(const double* ha, const double* hb, size_t m) {
  const __m256d ones = _mm256_set1_pd(1.0);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m256d ha4 = _mm256_loadu_pd(ha + i);
    const __m256d eq =
        _mm256_cmp_pd(ha4, _mm256_loadu_pd(hb + i), _CMP_EQ_OQ);
    const __m256d below1 = _mm256_cmp_pd(ha4, ones, _CMP_LT_OQ);
    count += std::popcount(static_cast<unsigned>(
        _mm256_movemask_pd(_mm256_and_pd(eq, below1))));
  }
  for (; i < m; ++i) count += (ha[i] == hb[i] && ha[i] < 1.0);
  return count;
}

double MinSumF64(const double* ha, const double* hb, size_t m) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_min_pd(_mm256_loadu_pd(ha + i),
                                           _mm256_loadu_pd(hb + i)));
  }
  double l[4];
  _mm256_storeu_pd(l, acc);
  for (; i < m; ++i) l[i & 3] += std::min(ha[i], hb[i]);
  return Reduce(l);
}

double SumF64(const double* x, size_t m) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    acc = _mm256_add_pd(acc, _mm256_loadu_pd(x + i));
  }
  double l[4];
  _mm256_storeu_pd(l, acc);
  for (; i < m; ++i) l[i & 3] += x[i];
  return Reduce(l);
}

double DotF64(const double* x, const double* y, size_t m) {
  __m256d acc = _mm256_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    acc = _mm256_add_pd(
        acc, _mm256_mul_pd(_mm256_loadu_pd(x + i), _mm256_loadu_pd(y + i)));
  }
  double l[4];
  _mm256_storeu_pd(l, acc);
  for (; i < m; ++i) l[i & 3] += x[i] * y[i];
  return Reduce(l);
}

}  // namespace

const EstimateKernel* Avx2Kernel() {
  static constexpr EstimateKernel kAvx2 = {
      "avx2",     &WmhPair,    &MatchU64, &CompactPair, &MatchU32,
      &MhPair,    &CountEqF64, &CountEqBelow1F64,
      &MinSumF64, &SumF64,     &DotF64,
  };
  return &kAvx2;
}

}  // namespace simd
}  // namespace ipsketch

#else  // !defined(__AVX2__)

namespace ipsketch {
namespace simd {

const EstimateKernel* Avx2Kernel() { return nullptr; }

}  // namespace simd
}  // namespace ipsketch

#endif
