// SSE2 tier: the baseline x86-64 fallback for machines without AVX2. Two
// 2-wide double accumulators realize the 4-lane contract of
// estimate_kernels.h (lo holds lanes 0-1, hi holds lanes 2-3); scalar tails
// continue the lane assignment, so results are bit-identical to the scalar
// and AVX2 tiers.
//
// Pure SSE2 only — the few missing integer ops are emulated:
//   * 64-bit equality: 32-bit cmpeq ANDed with its pair-swapped self.
//   * unsigned 32-bit min: sign-bias, signed compare, bitwise select.
//   * blendv: or(and(mask, a), andnot(mask, b)).

#include "core/simd/estimate_kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

#include <algorithm>
#include <bit>

namespace ipsketch {
namespace simd {
namespace {

double Reduce(const double l[4]) { return (l[0] + l[1]) + (l[2] + l[3]); }

/// mask ? a : b, lanewise (mask lanes are all-ones or all-zero).
__m128d Select(__m128d mask, __m128d a, __m128d b) {
  return _mm_or_pd(_mm_and_pd(mask, a), _mm_andnot_pd(mask, b));
}

/// All-ones per 64-bit lane iff the u64 lanes are equal.
__m128i CmpEqU64(__m128i a, __m128i b) {
  const __m128i eq32 = _mm_cmpeq_epi32(a, b);
  return _mm_and_si128(eq32,
                       _mm_shuffle_epi32(eq32, _MM_SHUFFLE(2, 3, 0, 1)));
}

/// Unsigned 32-bit minimum (SSE2 has only signed 16-bit flavors).
__m128i MinU32(__m128i a, __m128i b) {
  const __m128i sign = _mm_set1_epi32(INT32_MIN);
  const __m128i a_gt_b =
      _mm_cmpgt_epi32(_mm_xor_si128(a, sign), _mm_xor_si128(b, sign));
  return _mm_or_si128(_mm_and_si128(a_gt_b, b), _mm_andnot_si128(a_gt_b, a));
}

/// Exact u32 → f64 of the two u32 values in the low half of `v`.
__m128d CvtU32LoToF64(__m128i v) {
  const __m128i biased = _mm_xor_si128(v, _mm_set1_epi32(INT32_MIN));
  return _mm_add_pd(_mm_cvtepi32_pd(biased), _mm_set1_pd(2147483648.0));
}

/// The masked weighted-match term for two lanes: [eq ∧ q>0] va·vb/q, with
/// masked lanes contributing +0.0 and counted into *count. Matches are the
/// rare case in a full scan; with no lane matching the term is all +0.0,
/// so skipping the divide block is both bit-identical and the fast path.
__m128d WeightedTerm(__m128d eq, __m128d va, __m128d vb, uint64_t* count) {
  const __m128d zero = _mm_setzero_pd();
  if (_mm_movemask_pd(eq) == 0) return zero;
  const __m128d ones = _mm_set1_pd(1.0);
  const __m128d q = _mm_min_pd(_mm_mul_pd(va, va), _mm_mul_pd(vb, vb));
  const __m128d mask = _mm_and_pd(eq, _mm_cmpgt_pd(q, zero));
  const __m128d q_safe = Select(mask, q, ones);
  const __m128d term = _mm_div_pd(_mm_mul_pd(va, vb), q_safe);
  *count += std::popcount(static_cast<unsigned>(_mm_movemask_pd(mask)));
  return _mm_and_pd(term, mask);
}

WmhPairStats WmhPair(const double* ha, const double* hb, const double* va,
                     const double* vb, size_t m) {
  __m128d min_lo = _mm_setzero_pd(), min_hi = _mm_setzero_pd();
  __m128d w_lo = _mm_setzero_pd(), w_hi = _mm_setzero_pd();
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m128d ha_lo = _mm_loadu_pd(ha + i);
    const __m128d ha_hi = _mm_loadu_pd(ha + i + 2);
    const __m128d hb_lo = _mm_loadu_pd(hb + i);
    const __m128d hb_hi = _mm_loadu_pd(hb + i + 2);
    min_lo = _mm_add_pd(min_lo, _mm_min_pd(ha_lo, hb_lo));
    min_hi = _mm_add_pd(min_hi, _mm_min_pd(ha_hi, hb_hi));
    w_lo = _mm_add_pd(w_lo, WeightedTerm(_mm_cmpeq_pd(ha_lo, hb_lo),
                                         _mm_loadu_pd(va + i),
                                         _mm_loadu_pd(vb + i), &count));
    w_hi = _mm_add_pd(w_hi, WeightedTerm(_mm_cmpeq_pd(ha_hi, hb_hi),
                                         _mm_loadu_pd(va + i + 2),
                                         _mm_loadu_pd(vb + i + 2), &count));
  }
  double min_l[4], w_l[4];
  _mm_storeu_pd(min_l, min_lo);
  _mm_storeu_pd(min_l + 2, min_hi);
  _mm_storeu_pd(w_l, w_lo);
  _mm_storeu_pd(w_l + 2, w_hi);
  for (; i < m; ++i) {
    min_l[i & 3] += std::min(ha[i], hb[i]);
    if (ha[i] == hb[i]) {
      const double q = std::min(va[i] * va[i], vb[i] * vb[i]);
      if (q > 0.0) {
        w_l[i & 3] += va[i] * vb[i] / q;
        ++count;
      }
    }
  }
  return {Reduce(min_l), Reduce(w_l), count};
}

MatchStats MatchU64(const uint64_t* fa, const uint64_t* fb, const double* va,
                    const double* vb, size_t m) {
  __m128d w_lo = _mm_setzero_pd(), w_hi = _mm_setzero_pd();
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m128d eq_lo = _mm_castsi128_pd(CmpEqU64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fa + i)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fb + i))));
    const __m128d eq_hi = _mm_castsi128_pd(CmpEqU64(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fa + i + 2)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fb + i + 2))));
    w_lo = _mm_add_pd(w_lo, WeightedTerm(eq_lo, _mm_loadu_pd(va + i),
                                         _mm_loadu_pd(vb + i), &count));
    w_hi = _mm_add_pd(w_hi, WeightedTerm(eq_hi, _mm_loadu_pd(va + i + 2),
                                         _mm_loadu_pd(vb + i + 2), &count));
  }
  double w_l[4];
  _mm_storeu_pd(w_l, w_lo);
  _mm_storeu_pd(w_l + 2, w_hi);
  for (; i < m; ++i) {
    if (fa[i] == fb[i]) {
      const double q = std::min(va[i] * va[i], vb[i] * vb[i]);
      if (q > 0.0) {
        w_l[i & 3] += va[i] * vb[i] / q;
        ++count;
      }
    }
  }
  return {Reduce(w_l), count};
}

CompactPairStats CompactPair(const uint32_t* ha, const uint32_t* hb,
                             const float* va, const float* vb, size_t m) {
  const __m128d half = _mm_set1_pd(0.5);
  const __m128d two32 = _mm_set1_pd(4294967296.0);
  const __m128d ones = _mm_set1_pd(1.0);
  __m128d min_lo = _mm_setzero_pd(), min_hi = _mm_setzero_pd();
  __m128d w_lo = _mm_setzero_pd(), w_hi = _mm_setzero_pd();
  uint64_t count = 0;  // discarded: compact stats carry no count
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m128i ha4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(ha + i));
    const __m128i hb4 =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(hb + i));
    const __m128i minv = MinU32(ha4, hb4);
    const __m128i sent32 = _mm_cmpeq_epi32(minv, _mm_set1_epi32(-1));
    const __m128i eq32 = _mm_cmpeq_epi32(ha4, hb4);
    const __m128i minv_hi = _mm_shuffle_epi32(minv, _MM_SHUFFLE(3, 2, 3, 2));
    __m128d deq_lo =
        _mm_div_pd(_mm_add_pd(CvtU32LoToF64(minv), half), two32);
    __m128d deq_hi =
        _mm_div_pd(_mm_add_pd(CvtU32LoToF64(minv_hi), half), two32);
    // Widen the 32-bit sentinel/equality masks into per-double masks.
    const __m128d sent_lo = _mm_castsi128_pd(
        _mm_shuffle_epi32(sent32, _MM_SHUFFLE(1, 1, 0, 0)));
    const __m128d sent_hi = _mm_castsi128_pd(
        _mm_shuffle_epi32(sent32, _MM_SHUFFLE(3, 3, 2, 2)));
    deq_lo = Select(sent_lo, ones, deq_lo);
    deq_hi = Select(sent_hi, ones, deq_hi);
    min_lo = _mm_add_pd(min_lo, deq_lo);
    min_hi = _mm_add_pd(min_hi, deq_hi);

    const __m128d eq_lo = _mm_castsi128_pd(
        _mm_shuffle_epi32(eq32, _MM_SHUFFLE(1, 1, 0, 0)));
    const __m128d eq_hi = _mm_castsi128_pd(
        _mm_shuffle_epi32(eq32, _MM_SHUFFLE(3, 3, 2, 2)));
    const __m128 vaf = _mm_loadu_ps(va + i);
    const __m128 vbf = _mm_loadu_ps(vb + i);
    w_lo = _mm_add_pd(w_lo, WeightedTerm(eq_lo, _mm_cvtps_pd(vaf),
                                         _mm_cvtps_pd(vbf), &count));
    w_hi = _mm_add_pd(
        w_hi, WeightedTerm(eq_hi, _mm_cvtps_pd(_mm_movehl_ps(vaf, vaf)),
                           _mm_cvtps_pd(_mm_movehl_ps(vbf, vbf)), &count));
  }
  double min_l[4], w_l[4];
  _mm_storeu_pd(min_l, min_lo);
  _mm_storeu_pd(min_l + 2, min_hi);
  _mm_storeu_pd(w_l, w_lo);
  _mm_storeu_pd(w_l + 2, w_hi);
  for (; i < m; ++i) {
    min_l[i & 3] += DequantizeHash32(std::min(ha[i], hb[i]));
    if (ha[i] == hb[i]) {
      const double da = va[i];
      const double db = vb[i];
      const double q = std::min(da * da, db * db);
      if (q > 0.0) w_l[i & 3] += da * db / q;
    }
  }
  return {Reduce(min_l), Reduce(w_l)};
}

MatchStats MatchU32(const uint32_t* fa, const uint32_t* fb, const float* va,
                    const float* vb, size_t m) {
  __m128d w_lo = _mm_setzero_pd(), w_hi = _mm_setzero_pd();
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m128i eq32 = _mm_cmpeq_epi32(
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fa + i)),
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(fb + i)));
    const __m128d eq_lo = _mm_castsi128_pd(
        _mm_shuffle_epi32(eq32, _MM_SHUFFLE(1, 1, 0, 0)));
    const __m128d eq_hi = _mm_castsi128_pd(
        _mm_shuffle_epi32(eq32, _MM_SHUFFLE(3, 3, 2, 2)));
    const __m128 vaf = _mm_loadu_ps(va + i);
    const __m128 vbf = _mm_loadu_ps(vb + i);
    w_lo = _mm_add_pd(w_lo, WeightedTerm(eq_lo, _mm_cvtps_pd(vaf),
                                         _mm_cvtps_pd(vbf), &count));
    w_hi = _mm_add_pd(
        w_hi, WeightedTerm(eq_hi, _mm_cvtps_pd(_mm_movehl_ps(vaf, vaf)),
                           _mm_cvtps_pd(_mm_movehl_ps(vbf, vbf)), &count));
  }
  double w_l[4];
  _mm_storeu_pd(w_l, w_lo);
  _mm_storeu_pd(w_l + 2, w_hi);
  for (; i < m; ++i) {
    if (fa[i] == fb[i]) {
      const double da = va[i];
      const double db = vb[i];
      const double q = std::min(da * da, db * db);
      if (q > 0.0) {
        w_l[i & 3] += da * db / q;
        ++count;
      }
    }
  }
  return {Reduce(w_l), count};
}

MhPairStats MhPair(const double* ha, const double* hb, const double* va,
                   const double* vb, size_t m) {
  const __m128d ones = _mm_set1_pd(1.0);
  __m128d min_lo = _mm_setzero_pd(), min_hi = _mm_setzero_pd();
  __m128d w_lo = _mm_setzero_pd(), w_hi = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    const __m128d ha_lo = _mm_loadu_pd(ha + i);
    const __m128d ha_hi = _mm_loadu_pd(ha + i + 2);
    const __m128d hb_lo = _mm_loadu_pd(hb + i);
    const __m128d hb_hi = _mm_loadu_pd(hb + i + 2);
    min_lo = _mm_add_pd(min_lo, _mm_min_pd(ha_lo, hb_lo));
    min_hi = _mm_add_pd(min_hi, _mm_min_pd(ha_hi, hb_hi));
    const __m128d mask_lo = _mm_and_pd(_mm_cmpeq_pd(ha_lo, hb_lo),
                                       _mm_cmplt_pd(ha_lo, ones));
    const __m128d mask_hi = _mm_and_pd(_mm_cmpeq_pd(ha_hi, hb_hi),
                                       _mm_cmplt_pd(ha_hi, ones));
    w_lo = _mm_add_pd(
        w_lo, _mm_and_pd(_mm_mul_pd(_mm_loadu_pd(va + i),
                                    _mm_loadu_pd(vb + i)),
                         mask_lo));
    w_hi = _mm_add_pd(
        w_hi, _mm_and_pd(_mm_mul_pd(_mm_loadu_pd(va + i + 2),
                                    _mm_loadu_pd(vb + i + 2)),
                         mask_hi));
  }
  double min_l[4], w_l[4];
  _mm_storeu_pd(min_l, min_lo);
  _mm_storeu_pd(min_l + 2, min_hi);
  _mm_storeu_pd(w_l, w_lo);
  _mm_storeu_pd(w_l + 2, w_hi);
  for (; i < m; ++i) {
    min_l[i & 3] += std::min(ha[i], hb[i]);
    if (ha[i] == hb[i] && ha[i] < 1.0) {
      w_l[i & 3] += va[i] * vb[i];
    }
  }
  return {Reduce(min_l), Reduce(w_l)};
}

uint64_t CountEqF64(const double* ha, const double* hb, size_t m) {
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const __m128d eq =
        _mm_cmpeq_pd(_mm_loadu_pd(ha + i), _mm_loadu_pd(hb + i));
    count += std::popcount(static_cast<unsigned>(_mm_movemask_pd(eq)));
  }
  for (; i < m; ++i) count += (ha[i] == hb[i]);
  return count;
}

uint64_t CountEqBelow1F64(const double* ha, const double* hb, size_t m) {
  const __m128d ones = _mm_set1_pd(1.0);
  uint64_t count = 0;
  size_t i = 0;
  for (; i + 2 <= m; i += 2) {
    const __m128d ha2 = _mm_loadu_pd(ha + i);
    const __m128d mask = _mm_and_pd(
        _mm_cmpeq_pd(ha2, _mm_loadu_pd(hb + i)), _mm_cmplt_pd(ha2, ones));
    count += std::popcount(static_cast<unsigned>(_mm_movemask_pd(mask)));
  }
  for (; i < m; ++i) count += (ha[i] == hb[i] && ha[i] < 1.0);
  return count;
}

double MinSumF64(const double* ha, const double* hb, size_t m) {
  __m128d lo = _mm_setzero_pd(), hi = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    lo = _mm_add_pd(lo, _mm_min_pd(_mm_loadu_pd(ha + i),
                                   _mm_loadu_pd(hb + i)));
    hi = _mm_add_pd(hi, _mm_min_pd(_mm_loadu_pd(ha + i + 2),
                                   _mm_loadu_pd(hb + i + 2)));
  }
  double l[4];
  _mm_storeu_pd(l, lo);
  _mm_storeu_pd(l + 2, hi);
  for (; i < m; ++i) l[i & 3] += std::min(ha[i], hb[i]);
  return Reduce(l);
}

double SumF64(const double* x, size_t m) {
  __m128d lo = _mm_setzero_pd(), hi = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    lo = _mm_add_pd(lo, _mm_loadu_pd(x + i));
    hi = _mm_add_pd(hi, _mm_loadu_pd(x + i + 2));
  }
  double l[4];
  _mm_storeu_pd(l, lo);
  _mm_storeu_pd(l + 2, hi);
  for (; i < m; ++i) l[i & 3] += x[i];
  return Reduce(l);
}

double DotF64(const double* x, const double* y, size_t m) {
  __m128d lo = _mm_setzero_pd(), hi = _mm_setzero_pd();
  size_t i = 0;
  for (; i + 4 <= m; i += 4) {
    lo = _mm_add_pd(lo, _mm_mul_pd(_mm_loadu_pd(x + i),
                                   _mm_loadu_pd(y + i)));
    hi = _mm_add_pd(hi, _mm_mul_pd(_mm_loadu_pd(x + i + 2),
                                   _mm_loadu_pd(y + i + 2)));
  }
  double l[4];
  _mm_storeu_pd(l, lo);
  _mm_storeu_pd(l + 2, hi);
  for (; i < m; ++i) l[i & 3] += x[i] * y[i];
  return Reduce(l);
}

}  // namespace

const EstimateKernel* Sse2Kernel() {
  static constexpr EstimateKernel kSse2 = {
      "sse2",     &WmhPair,    &MatchU64, &CompactPair, &MatchU32,
      &MhPair,    &CountEqF64, &CountEqBelow1F64,
      &MinSumF64, &SumF64,     &DotF64,
  };
  return &kSse2;
}

}  // namespace simd
}  // namespace ipsketch

#else  // !defined(__SSE2__)

namespace ipsketch {
namespace simd {

const EstimateKernel* Sse2Kernel() { return nullptr; }

}  // namespace simd
}  // namespace ipsketch

#endif
