// Runtime kernel dispatch: picks the widest EstimateKernel tier the running
// CPU supports, once, at first use. One binary runs everywhere — the AVX2
// tier is compiled into its own translation unit and only ever entered
// after a cpuid check.
//
// Selection order: avx2 (x86-64 with runtime AVX2) → neon (AArch64) → sse2
// (x86-64 baseline) → scalar. Two overrides force the scalar tier:
//
//   * IPSKETCH_FORCE_SCALAR=1 in the environment (read once, at first
//     resolution) — the CI equivalence matrix and field debugging both use
//     this; "0", "off", "false", "no" (any case), and empty mean no force.
//   * -DIPSKETCH_FORCE_SCALAR=ON at configure time — pins Resolve() to the
//     scalar tier at compile time, ignoring the environment. The vector
//     TUs are still compiled and listed by AvailableKernels() (the
//     equivalence tests exercise them even in this configuration); only
//     dispatch is pinned.
//
// All estimators fetch the table per call via ActiveKernel(), so the test
// override below takes effect everywhere at once.

#ifndef IPSKETCH_CORE_SIMD_DISPATCH_H_
#define IPSKETCH_CORE_SIMD_DISPATCH_H_

#include <vector>

#include "core/simd/estimate_kernels.h"

namespace ipsketch {
namespace simd {

/// The dispatched kernel tier: resolved once (thread-safe), then constant
/// for the life of the process unless overridden for testing.
const EstimateKernel& ActiveKernel();

/// The dispatched tier's name ("scalar", "sse2", "avx2", "neon") — recorded
/// in bench artifacts so results are interpretable across runners.
const char* ActiveKernelName();

/// Every tier this binary can run on this machine, scalar first. The
/// equivalence tests iterate this list and compare each tier against
/// scalar bit for bit.
std::vector<const EstimateKernel*> AvailableKernels();

/// Process-wide kernel override for tests and benches: pass a kernel from
/// AvailableKernels() to pin it, nullptr to restore dispatch. Not intended
/// for production code paths.
void SetActiveKernelForTesting(const EstimateKernel* kernel);

/// True iff `value` (an IPSKETCH_FORCE_SCALAR environment setting; may be
/// nullptr for unset) requests the scalar tier. Exposed for unit tests.
bool ParseForceScalarEnv(const char* value);

}  // namespace simd
}  // namespace ipsketch

#endif  // IPSKETCH_CORE_SIMD_DISPATCH_H_
