#include "core/expanded_reference.h"

#include "common/hash.h"
#include "common/status.h"

namespace ipsketch {
namespace {

// Expanded-domain index of slot `slot` within block `block`. Blocks are laid
// out consecutively: block i covers [i·L, (i+1)·L). The product can exceed
// 64 bits for extreme (dimension, L) pairs; reduce modulo the 61-bit Mersenne
// prime first, which is harmless because the slot index is itself only ever
// consumed by a CarterWegman61 hash over that field.
uint64_t ExpandedIndex(uint64_t block, uint64_t slot, uint64_t L) {
  const unsigned __int128 wide =
      static_cast<unsigned __int128>(block) * L + slot;
  return static_cast<uint64_t>(wide % kMersenne61);
}

}  // namespace

double ReferenceSlotHash(uint64_t seed, size_t sample, uint64_t block_index,
                         uint64_t slot_in_block, uint64_t L) {
  // A full-avalanche mixed hash plays the role of the uniformly random hash
  // function the analysis assumes. A 2-wise linear hash must NOT be used
  // here: expanded slots are contiguous integers, and the minimum of a
  // linear hash over an arithmetic progression is visibly non-uniform,
  // biasing the Flajolet-Martin union estimate.
  const IndexHasher h(HashKind::kMixed64, seed, sample);
  return h.HashUnit(ExpandedIndex(block_index, slot_in_block, L));
}

void SketchWithExpandedReference(const DiscretizedVector& dv, uint64_t seed,
                                 size_t num_samples,
                                 std::vector<double>* hashes,
                                 std::vector<double>* values) {
  IPS_CHECK(hashes->size() == num_samples && values->size() == num_samples);
  for (size_t s = 0; s < num_samples; ++s) {
    const IndexHasher h(HashKind::kMixed64, seed, s);
    double best_hash = 1.0;
    double best_value = 0.0;
    for (const DiscretizedEntry& e : dv.entries) {
      // The first t[i] slots of block `e.index` are occupied (Algorithm 3
      // line 3); hash each of them.
      for (uint64_t slot = 0; slot < e.reps; ++slot) {
        const double hv = h.HashUnit(ExpandedIndex(e.index, slot, dv.L));
        if (hv < best_hash) {
          best_hash = hv;
          best_value = e.value;
        }
      }
    }
    (*hashes)[s] = best_hash;
    (*values)[s] = best_value;
  }
}

}  // namespace ipsketch
