#include "sketch/estimator_registry.h"

#include <cmath>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

VectorPair TestPair(double overlap, uint64_t seed) {
  SyntheticPairOptions opt;
  opt.dimension = 2000;
  opt.nnz = 300;
  opt.overlap = overlap;
  opt.seed = seed;
  return GenerateSyntheticPair(opt).value();
}

TEST(RegistryTest, StandardSetHasPaperBaselines) {
  const auto methods = MakeStandardEvaluators();
  ASSERT_EQ(methods.size(), 5u);
  EXPECT_EQ(methods[0]->name(), "JL");
  EXPECT_EQ(methods[1]->name(), "CS");
  EXPECT_EQ(methods[2]->name(), "MH");
  EXPECT_EQ(methods[3]->name(), "KMV");
  EXPECT_EQ(methods[4]->name(), "WMH");
}

TEST(RegistryTest, ExtendedSetAddsIcws) {
  const auto methods = MakeExtendedEvaluators();
  ASSERT_EQ(methods.size(), 6u);
  EXPECT_EQ(methods.back()->name(), "ICWS");
}

TEST(RegistryTest, AllMethodsProduceFiniteEstimates) {
  const auto pair = TestPair(0.3, 1);
  for (auto& method : MakeExtendedEvaluators()) {
    ASSERT_TRUE(method->Prepare(pair.a, pair.b, 300, 42).ok())
        << method->name();
    auto est = method->Estimate(300);
    ASSERT_TRUE(est.ok()) << method->name();
    EXPECT_TRUE(std::isfinite(est.value())) << method->name();
  }
}

TEST(RegistryTest, AllMethodsReasonablyAccurateAtLargeBudget) {
  const auto pair = TestPair(0.5, 2);
  const double truth = Dot(pair.a, pair.b);
  const double scale = pair.a.Norm() * pair.b.Norm();
  for (auto& method : MakeExtendedEvaluators()) {
    double err = 0.0;
    const int kTrials = 10;
    for (int t = 0; t < kTrials; ++t) {
      ASSERT_TRUE(method->Prepare(pair.a, pair.b, 1200, 100 + t).ok());
      err += std::fabs(method->Estimate(1200).value() - truth);
    }
    EXPECT_LT(err / kTrials / scale, 0.25) << method->name();
  }
}

TEST(RegistryTest, EstimateAtSmallerBudgetAfterOnePrepare) {
  const auto pair = TestPair(0.2, 3);
  for (auto& method : MakeExtendedEvaluators()) {
    ASSERT_TRUE(method->Prepare(pair.a, pair.b, 600, 7).ok());
    for (double words : {60.0, 150.0, 300.0, 600.0}) {
      auto est = method->Estimate(words);
      EXPECT_TRUE(est.ok()) << method->name() << " at " << words;
    }
  }
}

TEST(RegistryTest, BudgetAbovePreparedFails) {
  const auto pair = TestPair(0.2, 4);
  for (auto& method : MakeExtendedEvaluators()) {
    ASSERT_TRUE(method->Prepare(pair.a, pair.b, 150, 7).ok());
    auto est = method->Estimate(1000);
    EXPECT_FALSE(est.ok()) << method->name();
    EXPECT_EQ(est.status().code(), StatusCode::kOutOfRange) << method->name();
  }
}

TEST(RegistryTest, TruncatedEstimateMatchesFreshPrepare) {
  // For truncation-based methods, Estimate(w) after Prepare(W) must equal
  // Estimate(w) after Prepare(w) with the same seed.
  const auto pair = TestPair(0.4, 5);
  for (auto& method : MakeExtendedEvaluators()) {
    ASSERT_TRUE(method->Prepare(pair.a, pair.b, 600, 11).ok());
    const double truncated = method->Estimate(150).value();
    ASSERT_TRUE(method->Prepare(pair.a, pair.b, 150, 11).ok());
    const double fresh = method->Estimate(150).value();
    EXPECT_DOUBLE_EQ(truncated, fresh) << method->name();
  }
}

TEST(RegistryTest, PrepareIsRepeatable) {
  const auto pair1 = TestPair(0.2, 6);
  const auto pair2 = TestPair(0.8, 7);
  auto method = MakeWmhEvaluator();
  ASSERT_TRUE(method->Prepare(pair1.a, pair1.b, 300, 1).ok());
  const double est1 = method->Estimate(300).value();
  ASSERT_TRUE(method->Prepare(pair2.a, pair2.b, 300, 1).ok());
  ASSERT_TRUE(method->Prepare(pair1.a, pair1.b, 300, 1).ok());
  EXPECT_DOUBLE_EQ(method->Estimate(300).value(), est1);
}

TEST(RegistryTest, QuantizedEvaluatorsFollowExplicitBits) {
  const auto pair = TestPair(0.2, 3);
  const double truth = Dot(pair.a, pair.b);
  const double scale = pair.a.Norm() * pair.b.Norm();
  // The compact and b-bit evaluators run through the same registry path;
  // an explicit non-default width must still prepare and estimate (the
  // budget mapping follows the resolved width, not the b = 16 default).
  for (auto& [family, params] :
       std::vector<std::pair<std::string, std::map<std::string, std::string>>>{
           {"wmh_compact", {}},
           {"wmh_bbit", {}},
           {"wmh_bbit", {{"bits", "32"}}},
           {"wmh_bbit", {{"bits", "8"}}}}) {
    auto method = MakeFamilyEvaluator(family, params).value();
    ASSERT_TRUE(method->Prepare(pair.a, pair.b, 400, 7).ok())
        << family;
    const auto estimate = method->Estimate(400);
    ASSERT_TRUE(estimate.ok()) << family << ": "
                               << estimate.status().ToString();
    EXPECT_TRUE(std::isfinite(estimate.value())) << family;
    EXPECT_LT(std::fabs(estimate.value() - truth) / scale, 0.5) << family;
  }
  // Malformed widths surface as Prepare errors through the registry's
  // validator — the evaluator never silently falls back.
  auto bad = MakeFamilyEvaluator("wmh_bbit", {{"bits", "64"}}).value();
  EXPECT_FALSE(bad->Prepare(pair.a, pair.b, 400, 7).ok());
}

TEST(RegistryTest, WmhEvaluatorSupportsReferenceEngine) {
  SyntheticPairOptions opt;
  opt.dimension = 200;
  opt.nnz = 30;
  opt.overlap = 0.5;
  opt.seed = 8;
  const auto pair = GenerateSyntheticPair(opt).value();
  auto method = MakeWmhEvaluator(WmhEngine::kExpandedReference, 2048);
  ASSERT_TRUE(method->Prepare(pair.a, pair.b, 300, 3).ok());
  EXPECT_TRUE(std::isfinite(method->Estimate(300).value()));
}

}  // namespace
}  // namespace ipsketch
