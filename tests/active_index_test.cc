#include "core/active_index.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"
#include "core/expanded_reference.h"

namespace ipsketch {
namespace {

TEST(ActiveIndexTest, Deterministic) {
  EXPECT_EQ(ActiveIndexBlockMin(1, 2, 3, 100),
            ActiveIndexBlockMin(1, 2, 3, 100));
  EXPECT_NE(ActiveIndexBlockMin(1, 2, 3, 100),
            ActiveIndexBlockMin(1, 2, 4, 100));
  EXPECT_NE(ActiveIndexBlockMin(1, 2, 3, 100),
            ActiveIndexBlockMin(1, 3, 3, 100));
  EXPECT_NE(ActiveIndexBlockMin(1, 2, 3, 100),
            ActiveIndexBlockMin(2, 2, 3, 100));
}

TEST(ActiveIndexTest, OutputInUnitInterval) {
  for (uint64_t block = 0; block < 200; ++block) {
    const double v = ActiveIndexBlockMin(7, 0, block, 50);
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(ActiveIndexTest, MonotoneNonIncreasingInReps) {
  // The block minimum is a prefix minimum: more occupied slots can only
  // lower (or keep) it. This is the coordination property two vectors with
  // different weights rely on.
  for (uint64_t block = 0; block < 100; ++block) {
    double prev = 2.0;
    for (uint64_t reps : {1u, 2u, 4u, 16u, 256u, 65536u}) {
      const double v = ActiveIndexBlockMin(11, 3, block, reps);
      EXPECT_LE(v, prev) << "block " << block << " reps " << reps;
      prev = v;
    }
  }
}

TEST(ActiveIndexTest, EqualityIffNoRecordInBetween) {
  // If blockmin(t1) == blockmin(t2) for t1 < t2, then blockmin is constant
  // on [t1, t2] (the record positions are fixed by the stream).
  for (uint64_t block = 0; block < 50; ++block) {
    const double v10 = ActiveIndexBlockMin(13, 1, block, 10);
    const double v20 = ActiveIndexBlockMin(13, 1, block, 20);
    const double v15 = ActiveIndexBlockMin(13, 1, block, 15);
    if (v10 == v20) {
      EXPECT_EQ(v15, v10) << "block " << block;
    } else {
      EXPECT_LT(v20, v10);
    }
  }
}

TEST(ActiveIndexTest, SingleRepMatchesFirstDraw) {
  // With reps = 1 the block min is the very first stream value, which is
  // uniform on (0, 1]: its mean should be 1/2.
  double sum = 0.0;
  const int n = 20000;
  for (int block = 0; block < n; ++block) {
    sum += ActiveIndexBlockMin(17, 0, block, 1);
  }
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(ActiveIndexTest, BlockMinDistributionMatchesBetaOneT) {
  // min of t i.i.d. U(0,1) has mean 1/(t+1) and E[min²] = 2/((t+1)(t+2)).
  for (uint64_t t : {2u, 8u, 64u, 1024u}) {
    RunningMoments m;
    const int n = 40000;
    for (int block = 0; block < n; ++block) {
      m.Add(ActiveIndexBlockMin(19, 2, block, t));
    }
    const double expected_mean = 1.0 / static_cast<double>(t + 1);
    EXPECT_NEAR(m.Mean(), expected_mean, 0.05 * expected_mean)
        << "t=" << t;
    const double expected_second =
        2.0 / (static_cast<double>(t + 1) * static_cast<double>(t + 2));
    EXPECT_NEAR(m.Variance() + m.Mean() * m.Mean(), expected_second,
                0.1 * expected_second)
        << "t=" << t;
  }
}

TEST(ActiveIndexTest, SurvivalFunctionMatchesPower) {
  // P(blockmin(t) > x) = (1 − x)^t.
  const uint64_t t = 10;
  const double x = 0.05;
  int exceed = 0;
  const int n = 40000;
  for (int block = 0; block < n; ++block) {
    if (ActiveIndexBlockMin(23, 0, block, t) > x) ++exceed;
  }
  EXPECT_NEAR(static_cast<double>(exceed) / n, std::pow(1.0 - x, t), 0.01);
}

TEST(ActiveIndexTest, TruncationSharingProbability) {
  // For t_a < t_b, P(blockmin(t_a) == blockmin(t_b)) = t_a / t_b: the
  // overall minimum of t_b uniforms lands in the first t_a slots with
  // exactly that probability. This is the heart of Fact 5.
  const uint64_t ta = 30, tb = 100;
  int equal = 0;
  const int n = 40000;
  for (int block = 0; block < n; ++block) {
    const double va = ActiveIndexBlockMin(29, 1, block, ta);
    const double vb = ActiveIndexBlockMin(29, 1, block, tb);
    if (va == vb) ++equal;
  }
  EXPECT_NEAR(static_cast<double>(equal) / n,
              static_cast<double>(ta) / static_cast<double>(tb), 0.015);
}

TEST(ActiveIndexTest, SketchMatchesBlockMinComposition) {
  // SketchWithActiveIndex must equal the explicit min over per-block
  // ActiveIndexBlockMin calls.
  DiscretizedVector dv;
  dv.dimension = 64;
  dv.L = 48;
  dv.original_norm = 1.0;
  dv.entries = {{3, 16, 0.577}, {10, 16, 0.577}, {40, 16, 0.577}};
  const size_t m = 16;
  std::vector<double> hashes(m), values(m);
  SketchWithActiveIndex(dv, 31, m, &hashes, &values);
  for (size_t s = 0; s < m; ++s) {
    double best = 2.0;
    double best_value = 0.0;
    for (const auto& e : dv.entries) {
      const double bm = ActiveIndexBlockMin(31, s, e.index, e.reps);
      if (bm < best) {
        best = bm;
        best_value = e.value;
      }
    }
    EXPECT_EQ(hashes[s], best);
    EXPECT_EQ(values[s], best_value);
  }
}

TEST(ActiveIndexTest, HugeRepsTerminates) {
  // Expected number of records is ~ln(reps); even astronomically wide
  // blocks complete fast and produce tiny minima.
  const double v = ActiveIndexBlockMin(37, 0, 0, uint64_t{1} << 40);
  EXPECT_GT(v, 0.0);
  EXPECT_LT(v, 1e-6);
}

TEST(ExpandedReferenceTest, SlotHashIsDeterministicUniform) {
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double h = ReferenceSlotHash(41, 0, i % 64, i / 64, 1024);
    EXPECT_GE(h, 0.0);
    EXPECT_LT(h, 1.0);
    sum += h;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.02);
  EXPECT_EQ(ReferenceSlotHash(41, 1, 2, 3, 64),
            ReferenceSlotHash(41, 1, 2, 3, 64));
}

TEST(ExpandedReferenceTest, SketchIsArgminOverSlots) {
  DiscretizedVector dv;
  dv.dimension = 16;
  dv.L = 32;
  dv.original_norm = 2.0;
  dv.entries = {{1, 8, 0.5}, {5, 8, 0.5}, {9, 16, std::sqrt(0.5)}};
  const size_t m = 8;
  std::vector<double> hashes(m), values(m);
  SketchWithExpandedReference(dv, 43, m, &hashes, &values);
  for (size_t s = 0; s < m; ++s) {
    double best = 2.0;
    double best_value = 0.0;
    for (const auto& e : dv.entries) {
      for (uint64_t slot = 0; slot < e.reps; ++slot) {
        const double h = ReferenceSlotHash(43, s, e.index, slot, dv.L);
        if (h < best) {
          best = h;
          best_value = e.value;
        }
      }
    }
    EXPECT_EQ(hashes[s], best);
    EXPECT_EQ(values[s], best_value);
  }
}

}  // namespace
}  // namespace ipsketch
