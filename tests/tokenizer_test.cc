#include "text/tokenizer.h"

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

TEST(TokenizeTest, LowercasesAndSplits) {
  const auto tokens = Tokenize("Hello, World! FOO-bar baz42");
  ASSERT_EQ(tokens.size(), 5u);
  EXPECT_EQ(tokens[0], "hello");
  EXPECT_EQ(tokens[1], "world");
  EXPECT_EQ(tokens[2], "foo");
  EXPECT_EQ(tokens[3], "bar");
  EXPECT_EQ(tokens[4], "baz42");
}

TEST(TokenizeTest, EmptyAndPunctuationOnly) {
  EXPECT_TRUE(Tokenize("").empty());
  EXPECT_TRUE(Tokenize("... !!! ---").empty());
}

TEST(TokenizeTest, NoTrailingSeparatorNeeded) {
  const auto tokens = Tokenize("last");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0], "last");
}

TEST(TokenIdTest, DeterministicAndDistinct) {
  EXPECT_EQ(TokenId("word"), TokenId("word"));
  EXPECT_NE(TokenId("word"), TokenId("Word"));
  EXPECT_NE(TokenId("word"), TokenId("words"));
  EXPECT_NE(TokenId("ab"), TokenId("ba"));
}

TEST(BigramIdTest, OrderSensitiveAndDistinctFromUnigrams) {
  const uint64_t a = TokenId("new");
  const uint64_t b = TokenId("york");
  EXPECT_NE(BigramId(a, b), BigramId(b, a));
  EXPECT_NE(BigramId(a, b), a);
  EXPECT_NE(BigramId(a, b), b);
}

TEST(TokenFeaturesTest, UnigramsOnly) {
  FeatureOptions o;
  o.bigrams = false;
  const auto features = TokenFeatures({"a", "b", "c"}, o);
  ASSERT_EQ(features.size(), 3u);
  EXPECT_EQ(features[0], TokenId("a"));
}

TEST(TokenFeaturesTest, UnigramsPlusBigrams) {
  FeatureOptions o;
  const auto features = TokenFeatures({"a", "b", "c"}, o);
  // 3 unigrams + 2 bigrams.
  ASSERT_EQ(features.size(), 5u);
  EXPECT_EQ(features[3], BigramId(TokenId("a"), TokenId("b")));
  EXPECT_EQ(features[4], BigramId(TokenId("b"), TokenId("c")));
}

TEST(TokenFeaturesTest, DuplicatesPreservedForTermFrequency) {
  FeatureOptions o;
  o.bigrams = false;
  const auto features = TokenFeatures({"x", "x", "x"}, o);
  ASSERT_EQ(features.size(), 3u);
  EXPECT_EQ(features[0], features[1]);
}

TEST(IdFeaturesTest, SingleTokenHasNoBigrams) {
  FeatureOptions o;
  const auto features = IdFeatures({42}, o);
  ASSERT_EQ(features.size(), 1u);
}

TEST(IdFeaturesTest, EmptyDocument) {
  FeatureOptions o;
  EXPECT_TRUE(IdFeatures({}, o).empty());
}

}  // namespace
}  // namespace ipsketch
