// Family-level scalar/vector equivalence: for every registered sketch
// family (and, where a family has engines, every engine), estimates
// computed under each available kernel tier must be bit-identical to the
// scalar tier's — over randomized sketch pairs, zero vectors, and
// truncated-prefix sketches. This is the assertion the simd-equivalence CI
// job runs on both gcc and clang.

#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/simd/dispatch.h"
#include "sketch/family.h"

namespace ipsketch {
namespace {

struct FamilyConfig {
  std::string family;
  std::map<std::string, std::string> params;
};

std::vector<FamilyConfig> AllConfigs() {
  return {
      {"wmh", {{"engine", "dart"}, {"L", "4096"}}},
      {"wmh", {{"engine", "active_index"}, {"L", "4096"}}},
      {"icws", {{"engine", "dart"}}},
      {"icws", {{"engine", "icws"}}},
      {"mh", {}},
      {"kmv", {}},
      {"cs", {}},
      {"jl", {}},
      {"wmh_compact", {{"engine", "dart"}}},
      {"wmh_compact", {{"engine", "active_index"}}},
      {"wmh_bbit", {{"engine", "dart"}, {"bits", "12"}}},
  };
}

constexpr uint64_t kDimension = 512;

SparseVector RandomVector(uint64_t seed, size_t target_nnz) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  uint64_t index = rng.NextBounded(3);
  while (entries.size() < target_nnz && index < kDimension) {
    double v = rng.NextGaussian();
    if (v == 0.0) v = 0.5;
    entries.push_back({index, v});
    index += 1 + rng.NextBounded(4);
  }
  return SparseVector::MakeOrDie(kDimension, std::move(entries));
}

/// Overlapping pair: b shares a prefix of a's support so matches actually
/// occur.
std::pair<SparseVector, SparseVector> RandomPair(uint64_t seed) {
  const SparseVector a = RandomVector(seed, 90);
  Xoshiro256StarStar rng(seed ^ 0x9E3779B97F4A7C15ull);
  std::vector<Entry> entries;
  for (const Entry& e : a.entries()) {
    if (rng.NextUnit() < 0.6) {
      entries.push_back({e.index, e.value * (0.5 + rng.NextUnit())});
    }
  }
  uint64_t index = kDimension / 2;
  while (index < kDimension) {
    entries.push_back({index, rng.NextGaussian() + 2.0});
    index += 3 + rng.NextBounded(5);
  }
  std::sort(entries.begin(), entries.end(),
            [](const Entry& x, const Entry& y) { return x.index < y.index; });
  std::vector<Entry> dedup;
  for (const Entry& e : entries) {
    if (dedup.empty() || dedup.back().index != e.index) dedup.push_back(e);
  }
  return {a, SparseVector::MakeOrDie(kDimension, std::move(dedup))};
}

class ScopedKernel {
 public:
  explicit ScopedKernel(const simd::EstimateKernel* kernel) {
    simd::SetActiveKernelForTesting(kernel);
  }
  ~ScopedKernel() { simd::SetActiveKernelForTesting(nullptr); }
};

/// Estimates a/b under `kernel` (family dispatch included).
double EstimateUnder(const simd::EstimateKernel* kernel,
                     const SketchFamily& family, const AnySketch& a,
                     const AnySketch& b) {
  ScopedKernel scoped(kernel);
  auto est = family.Estimate(a, b);
  EXPECT_TRUE(est.ok()) << est.status().ToString();
  return est.ok() ? est.value() : 0.0;
}

TEST(SimdEquivalenceTest, AllFamiliesAllEnginesBitIdenticalAcrossTiers) {
  // m = 67: not a multiple of any vector width, so every tier runs both
  // its vector body and its scalar tail.
  for (const FamilyConfig& config : AllConfigs()) {
    SCOPED_TRACE(config.family);
    FamilyOptions options;
    options.dimension = kDimension;
    options.num_samples = 67;
    options.seed = 42;
    options.params = config.params;
    auto family = MakeFamily(config.family, options);
    ASSERT_TRUE(family.ok()) << family.status().ToString();
    auto sketcher = family.value()->MakeSketcher();
    ASSERT_TRUE(sketcher.ok());

    for (uint64_t seed = 1; seed <= 4; ++seed) {
      const auto [va, vb] = RandomPair(seed * 1000);
      auto sa = family.value()->NewSketch();
      auto sb = family.value()->NewSketch();
      ASSERT_TRUE(sketcher.value()->Sketch(va, sa.get()).ok());
      ASSERT_TRUE(sketcher.value()->Sketch(vb, sb.get()).ok());

      const double reference =
          EstimateUnder(&simd::ScalarKernel(), *family.value(), *sa, *sb);
      for (const simd::EstimateKernel* kernel : simd::AvailableKernels()) {
        const double got =
            EstimateUnder(kernel, *family.value(), *sa, *sb);
        EXPECT_EQ(std::bit_cast<uint64_t>(reference),
                  std::bit_cast<uint64_t>(got))
            << config.family << " seed=" << seed << " tier='" << kernel->name
            << "': " << reference << " vs " << got;
      }
    }
  }
}

TEST(SimdEquivalenceTest, TruncatedPrefixSketchesBitIdenticalAcrossTiers) {
  for (const FamilyConfig& config : AllConfigs()) {
    FamilyOptions options;
    options.dimension = kDimension;
    options.num_samples = 64;
    options.seed = 9;
    options.params = config.params;
    auto family = MakeFamily(config.family, options);
    ASSERT_TRUE(family.ok()) << family.status().ToString();
    if (!family.value()->supports_truncation()) continue;
    SCOPED_TRACE(config.family);
    auto sketcher = family.value()->MakeSketcher();
    ASSERT_TRUE(sketcher.ok());
    const auto [va, vb] = RandomPair(77);
    auto sa = family.value()->NewSketch();
    auto sb = family.value()->NewSketch();
    ASSERT_TRUE(sketcher.value()->Sketch(va, sa.get()).ok());
    ASSERT_TRUE(sketcher.value()->Sketch(vb, sb.get()).ok());
    for (size_t m : {1u, 3u, 13u, 31u}) {
      auto ta = family.value()->Truncate(*sa, m);
      auto tb = family.value()->Truncate(*sb, m);
      ASSERT_TRUE(ta.ok() && tb.ok());
      const double reference = EstimateUnder(
          &simd::ScalarKernel(), *family.value(), *ta.value(), *tb.value());
      for (const simd::EstimateKernel* kernel : simd::AvailableKernels()) {
        const double got = EstimateUnder(kernel, *family.value(),
                                         *ta.value(), *tb.value());
        EXPECT_EQ(std::bit_cast<uint64_t>(reference),
                  std::bit_cast<uint64_t>(got))
            << config.family << " m=" << m << " tier='" << kernel->name
            << "'";
      }
    }
  }
}

TEST(SimdEquivalenceTest, ZeroVectorPairsBitIdenticalAcrossTiers) {
  const SparseVector zero = SparseVector::MakeOrDie(kDimension, {});
  for (const FamilyConfig& config : AllConfigs()) {
    SCOPED_TRACE(config.family);
    FamilyOptions options;
    options.dimension = kDimension;
    options.num_samples = 33;
    options.seed = 5;
    options.params = config.params;
    auto family = MakeFamily(config.family, options);
    ASSERT_TRUE(family.ok());
    auto sketcher = family.value()->MakeSketcher();
    ASSERT_TRUE(sketcher.ok());
    auto sz = family.value()->NewSketch();
    auto sv = family.value()->NewSketch();
    ASSERT_TRUE(sketcher.value()->Sketch(zero, sz.get()).ok());
    ASSERT_TRUE(sketcher.value()->Sketch(RandomVector(3, 50), sv.get()).ok());
    const double reference =
        EstimateUnder(&simd::ScalarKernel(), *family.value(), *sz, *sv);
    for (const simd::EstimateKernel* kernel : simd::AvailableKernels()) {
      const double got = EstimateUnder(kernel, *family.value(), *sz, *sv);
      EXPECT_EQ(std::bit_cast<uint64_t>(reference),
                std::bit_cast<uint64_t>(got))
          << config.family << " tier='" << kernel->name << "'";
    }
  }
}

}  // namespace
}  // namespace ipsketch
