#include "common/stats.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ipsketch {
namespace {

TEST(RunningMomentsTest, EmptyIsZero) {
  RunningMoments m;
  EXPECT_EQ(m.count(), 0u);
  EXPECT_EQ(m.Mean(), 0.0);
  EXPECT_EQ(m.Variance(), 0.0);
  EXPECT_EQ(m.Kurtosis(), 0.0);
}

TEST(RunningMomentsTest, SingleValue) {
  RunningMoments m;
  m.Add(5.0);
  EXPECT_EQ(m.count(), 1u);
  EXPECT_EQ(m.Mean(), 5.0);
  EXPECT_EQ(m.Variance(), 0.0);
}

TEST(RunningMomentsTest, KnownSmallSample) {
  RunningMoments m;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) m.Add(x);
  EXPECT_DOUBLE_EQ(m.Mean(), 5.0);
  EXPECT_DOUBLE_EQ(m.Variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(m.StdDev(), 2.0);
  EXPECT_NEAR(m.SampleVariance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningMomentsTest, ConstantSequenceHasZeroVariance) {
  RunningMoments m;
  for (int i = 0; i < 100; ++i) m.Add(3.25);
  EXPECT_DOUBLE_EQ(m.Mean(), 3.25);
  EXPECT_NEAR(m.Variance(), 0.0, 1e-20);
  EXPECT_EQ(m.Kurtosis(), 0.0);  // degenerate by convention
}

TEST(RunningMomentsTest, GaussianKurtosisIsThree) {
  Xoshiro256StarStar rng(71);
  RunningMoments m;
  for (int i = 0; i < 300000; ++i) m.Add(rng.NextGaussian());
  EXPECT_NEAR(m.Kurtosis(), 3.0, 0.1);
  EXPECT_NEAR(m.ExcessKurtosis(), 0.0, 0.1);
  EXPECT_NEAR(m.Skewness(), 0.0, 0.05);
}

TEST(RunningMomentsTest, UniformKurtosisIsNinePifths) {
  Xoshiro256StarStar rng(73);
  RunningMoments m;
  for (int i = 0; i < 300000; ++i) m.Add(rng.NextUnit());
  EXPECT_NEAR(m.Kurtosis(), 1.8, 0.05);
}

TEST(RunningMomentsTest, ExponentialKurtosisIsNine) {
  Xoshiro256StarStar rng(79);
  RunningMoments m;
  for (int i = 0; i < 500000; ++i) m.Add(-std::log(rng.NextPositiveUnit()));
  EXPECT_NEAR(m.Kurtosis(), 9.0, 0.5);
  EXPECT_NEAR(m.Skewness(), 2.0, 0.1);
}

TEST(RunningMomentsTest, MergeMatchesSequential) {
  Xoshiro256StarStar rng(83);
  RunningMoments whole, left, right;
  for (int i = 0; i < 5000; ++i) {
    const double x = rng.NextGaussian() * (i % 3 + 1) + i % 7;
    whole.Add(x);
    (i < 2000 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.Mean(), whole.Mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), whole.Variance(), 1e-9);
  EXPECT_NEAR(left.Skewness(), whole.Skewness(), 1e-9);
  EXPECT_NEAR(left.Kurtosis(), whole.Kurtosis(), 1e-9);
}

TEST(RunningMomentsTest, MergeWithEmptyIsIdentity) {
  RunningMoments m, empty;
  for (double x : {1.0, 2.0, 3.0}) m.Add(x);
  const double mean = m.Mean(), var = m.Variance();
  m.Merge(empty);
  EXPECT_EQ(m.count(), 3u);
  EXPECT_DOUBLE_EQ(m.Mean(), mean);
  EXPECT_DOUBLE_EQ(m.Variance(), var);

  empty.Merge(m);
  EXPECT_EQ(empty.count(), 3u);
  EXPECT_DOUBLE_EQ(empty.Mean(), mean);
}

TEST(FreeFunctionTest, MeanVarianceKurtosis) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(Variance(xs), 1.25);
  EXPECT_GT(Kurtosis(xs), 0.0);
  EXPECT_EQ(Mean({}), 0.0);
  EXPECT_EQ(Variance({}), 0.0);
}

TEST(QuantileTest, MedianOfOddAndEven) {
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
  EXPECT_DOUBLE_EQ(Median({4.0, 1.0, 2.0, 3.0}), 2.5);
}

TEST(QuantileTest, Extremes) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
}

TEST(QuantileTest, Interpolates) {
  const std::vector<double> xs = {0.0, 10.0};
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.75), 7.5);
}

TEST(QuantileTest, EmptyReturnsZero) { EXPECT_EQ(Quantile({}, 0.5), 0.0); }

TEST(MedianSortedTest, OddAndEven) {
  EXPECT_DOUBLE_EQ(MedianSorted({1.0, 2.0, 9.0}), 2.0);
  EXPECT_DOUBLE_EQ(MedianSorted({1.0, 2.0, 3.0, 9.0}), 2.5);
  EXPECT_DOUBLE_EQ(MedianSorted({7.0}), 7.0);
}

}  // namespace
}  // namespace ipsketch
