#include "table/join_estimates.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "table/join.h"

namespace ipsketch {
namespace {

// Two overlapping columns with correlated values on the shared keys.
struct TestColumns {
  KeyedColumn a;
  KeyedColumn b;
};

TestColumns MakeColumns(uint64_t seed, double mean_offset = 10.0,
                        size_t rows = 600, size_t shift = 200) {
  Xoshiro256StarStar rng(seed);
  // A latent value per *key*, so the columns are correlated on the keys
  // they share (a covers [0, rows), b covers [shift, rows + shift)).
  std::vector<double> base(rows + shift);
  for (auto& x : base) x = rng.NextGaussian() * 2.0 + mean_offset;
  std::vector<uint64_t> keys_a, keys_b;
  std::vector<double> vals_a, vals_b;
  for (size_t i = 0; i < rows; ++i) {
    keys_a.push_back(i);
    keys_b.push_back(i + shift);
    vals_a.push_back(base[i] + rng.NextGaussian() * 0.5);
    vals_b.push_back(0.8 * base[i + shift] + rng.NextGaussian() * 0.5);
  }
  return {KeyedColumn::MakeOrDie("a", keys_a, vals_a),
          KeyedColumn::MakeOrDie("b", keys_b, vals_b)};
}

ColumnSketchOptions Options(size_t m = 512) {
  ColumnSketchOptions o;
  o.num_samples = m;
  o.seed = 99;
  o.key_domain = 1 << 16;
  o.L = 1 << 20;
  return o;
}

TEST(ColumnSketchOptionsTest, Validation) {
  ColumnSketchOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.num_samples = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = ColumnSketchOptions();
  o.key_domain = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(SketchColumnTest, BuildsThreeSketches) {
  const auto cols = MakeColumns(1);
  const auto sketch = SketchColumn(cols.a, Options(64)).value();
  EXPECT_EQ(sketch.name, "a");
  EXPECT_EQ(sketch.key_indicator.num_samples(), 64u);
  EXPECT_EQ(sketch.values.num_samples(), 64u);
  EXPECT_EQ(sketch.squared_values.num_samples(), 64u);
  EXPECT_GT(sketch.StorageWords(), 3 * 64.0);
}

TEST(SketchColumnTest, RejectsOutOfDomainKeys) {
  const auto c = KeyedColumn::MakeOrDie("c", {uint64_t{1} << 40}, {1.0});
  ColumnSketchOptions o = Options(16);
  o.key_domain = 1 << 16;
  EXPECT_FALSE(SketchColumn(c, o).ok());
}

TEST(JoinEstimateTest, JoinSizeCloseToExact) {
  const auto cols = MakeColumns(2);
  const auto exact = ComputeJoinStats(cols.a, cols.b).value();  // size 400
  const auto o = Options();
  const auto sa = SketchColumn(cols.a, o).value();
  const auto sb = SketchColumn(cols.b, o).value();
  const double est = EstimateJoinSize(sa, sb).value();
  EXPECT_NEAR(est, static_cast<double>(exact.size),
              0.25 * static_cast<double>(exact.size));
}

TEST(JoinEstimateTest, JoinSumCloseToExact) {
  const auto cols = MakeColumns(3);
  const auto exact = ComputeJoinStats(cols.a, cols.b).value();
  const auto o = Options();
  const auto sa = SketchColumn(cols.a, o).value();
  const auto sb = SketchColumn(cols.b, o).value();
  EXPECT_NEAR(EstimateJoinSum(sa, sb).value(), exact.sum_a,
              0.25 * std::fabs(exact.sum_a));
  EXPECT_NEAR(EstimateJoinSum(sb, sa).value(), exact.sum_b,
              0.25 * std::fabs(exact.sum_b));
}

TEST(JoinEstimateTest, JoinMeanCloseToExact) {
  const auto cols = MakeColumns(4);
  const auto exact = ComputeJoinStats(cols.a, cols.b).value();
  const auto o = Options();
  const auto sa = SketchColumn(cols.a, o).value();
  const auto sb = SketchColumn(cols.b, o).value();
  // Means are ratios of two estimates; both concentrate, so the ratio does.
  EXPECT_NEAR(EstimateJoinMean(sa, sb).value(), exact.mean_a,
              0.2 * std::fabs(exact.mean_a));
}

TEST(JoinEstimateTest, InnerProductCloseToExact) {
  const auto cols = MakeColumns(5);
  const auto exact = ComputeJoinStats(cols.a, cols.b).value();
  const auto o = Options();
  const auto sa = SketchColumn(cols.a, o).value();
  const auto sb = SketchColumn(cols.b, o).value();
  EXPECT_NEAR(EstimateJoinInnerProduct(sa, sb).value(), exact.inner_product,
              0.25 * std::fabs(exact.inner_product));
}

TEST(JoinEstimateTest, FullStatsBundleIsConsistent) {
  // Zero-centered values: plug-in moment estimation of variance is
  // well-conditioned only when the mean does not dwarf the spread
  // (var = E[x²] − mean² cancels catastrophically otherwise — a documented
  // limitation of sketched second moments).
  const auto cols = MakeColumns(6, /*mean_offset=*/0.0);
  const auto exact = ComputeJoinStats(cols.a, cols.b).value();
  const auto o = Options();
  const auto sa = SketchColumn(cols.a, o).value();
  const auto sb = SketchColumn(cols.b, o).value();
  const auto est = EstimateJoinStats(sa, sb).value();
  EXPECT_NEAR(est.size, static_cast<double>(exact.size), 0.25 * exact.size);
  // Zero-centered data: check the mean with an absolute tolerance sized to
  // the value spread (relative error of a near-zero mean is meaningless).
  EXPECT_NEAR(est.mean_a, exact.mean_a, 0.5);
  EXPECT_GE(est.variance_a, 0.0);
  EXPECT_GE(est.variance_b, 0.0);
  EXPECT_GE(est.correlation, -1.0);
  EXPECT_LE(est.correlation, 1.0);
  EXPECT_GE(est.standardized_correlation, -1.0);
  EXPECT_LE(est.standardized_correlation, 1.0);
  // The columns were built strongly correlated (shared latent base); the
  // standardized estimator must see it.
  EXPECT_GT(est.standardized_correlation, 0.3);
}

TEST(JoinEstimateTest, StandardizedCorrelationRobustToHugeMeans) {
  // Shift both columns by a huge constant: plug-in moment correlation
  // degenerates (variance = E[x²] − mean² cancels), but the standardized
  // estimator is shift-invariant by construction.
  const auto base = MakeColumns(9, /*mean_offset=*/0.0);
  std::vector<double> va = base.a.values(), vb = base.b.values();
  for (double& v : va) v += 100000.0;
  for (double& v : vb) v += 100000.0;
  const auto a = KeyedColumn::MakeOrDie("a", base.a.keys(), va);
  const auto b = KeyedColumn::MakeOrDie("b", base.b.keys(), vb);
  const auto exact = ComputeJoinStats(a, b).value();
  ASSERT_GT(exact.correlation, 0.5);  // truly correlated
  const auto o = Options();
  const auto sa = SketchColumn(a, o).value();
  const auto sb = SketchColumn(b, o).value();
  const auto est = EstimateJoinStats(sa, sb).value();
  EXPECT_GT(est.standardized_correlation, 0.3);
  EXPECT_NEAR(est.standardized_correlation, exact.correlation, 0.45);
}

TEST(JoinEstimateTest, StandardizedCorrelationSignTracksExact) {
  // Anti-correlated columns must estimate negative.
  Xoshiro256StarStar rng(10);
  std::vector<uint64_t> keys;
  std::vector<double> va, vb;
  for (uint64_t k = 0; k < 800; ++k) {
    keys.push_back(k);
    const double base = rng.NextGaussian();
    va.push_back(base + 0.3 * rng.NextGaussian());
    vb.push_back(-base + 0.3 * rng.NextGaussian());
  }
  const auto a = KeyedColumn::MakeOrDie("a", keys, va);
  const auto b = KeyedColumn::MakeOrDie("b", keys, vb);
  const auto o = Options();
  const auto sa = SketchColumn(a, o).value();
  const auto sb = SketchColumn(b, o).value();
  const auto est = EstimateJoinStats(sa, sb).value();
  EXPECT_LT(est.standardized_correlation, -0.3);
}

TEST(JoinEstimateTest, DisjointColumnsEstimateZeroSize) {
  Xoshiro256StarStar rng(7);
  std::vector<uint64_t> ka, kb;
  std::vector<double> va, vb;
  for (uint64_t i = 0; i < 200; ++i) {
    ka.push_back(i);
    kb.push_back(10000 + i);
    va.push_back(rng.NextUnit());
    vb.push_back(rng.NextUnit());
  }
  const auto a = KeyedColumn::MakeOrDie("a", ka, va);
  const auto b = KeyedColumn::MakeOrDie("b", kb, vb);
  const auto o = Options(128);
  const auto sa = SketchColumn(a, o).value();
  const auto sb = SketchColumn(b, o).value();
  EXPECT_EQ(EstimateJoinSize(sa, sb).value(), 0.0);
  EXPECT_EQ(EstimateJoinSum(sa, sb).value(), 0.0);
  EXPECT_EQ(EstimateJoinMean(sa, sb).value(), 0.0);
}

TEST(JoinEstimateTest, MismatchedCatalogSeedsFail) {
  const auto cols = MakeColumns(8);
  auto o1 = Options(64);
  auto o2 = Options(64);
  o2.seed = o1.seed + 1;
  const auto sa = SketchColumn(cols.a, o1).value();
  const auto sb = SketchColumn(cols.b, o2).value();
  EXPECT_FALSE(EstimateJoinSize(sa, sb).ok());
}

}  // namespace
}  // namespace ipsketch
