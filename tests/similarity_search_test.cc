#include "core/similarity_search.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

// A family of vectors where vector i and i+1 share most of their support,
// so "neighbors" are the most similar pairs.
std::vector<SparseVector> MakeFamily(size_t count, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<SparseVector> out;
  for (size_t v = 0; v < count; ++v) {
    std::vector<Entry> entries;
    for (uint64_t i = 0; i < 120; ++i) {
      entries.push_back({v * 40 + i, 0.5 + rng.NextUnit()});
    }
    out.push_back(SparseVector::MakeOrDie(4096, std::move(entries)));
  }
  return out;
}

std::vector<WmhSketch> SketchAll(const std::vector<SparseVector>& vectors,
                                 size_t m, uint64_t seed) {
  WmhOptions o;
  o.num_samples = m;
  o.seed = seed;
  std::vector<WmhSketch> out;
  for (const auto& v : vectors) out.push_back(SketchWmh(v, o).value());
  return out;
}

TEST(TopKTest, FindsTheOverlappingNeighbors) {
  const auto vectors = MakeFamily(8, 1);
  const auto sketches = SketchAll(vectors, 256, 7);
  // Query with vector 3: its most similar candidates are 2 and 4 (they share
  // 2/3 of its support); 0 and 7 share nothing.
  const auto hits = TopKByInnerProduct(sketches[3], sketches, 3).value();
  ASSERT_EQ(hits.size(), 3u);
  EXPECT_EQ(hits[0].index, 3u);  // itself
  const bool neighbors = (hits[1].index == 2 || hits[1].index == 4) &&
                         (hits[2].index == 2 || hits[2].index == 4);
  EXPECT_TRUE(neighbors) << hits[1].index << " " << hits[2].index;
}

TEST(TopKTest, TopKLargerThanCollectionReturnsAll) {
  const auto vectors = MakeFamily(4, 2);
  const auto sketches = SketchAll(vectors, 64, 3);
  const auto hits = TopKByInnerProduct(sketches[0], sketches, 100).value();
  EXPECT_EQ(hits.size(), 4u);
}

TEST(TopKTest, EstimatesMatchPairwiseEstimator) {
  const auto vectors = MakeFamily(5, 3);
  const auto sketches = SketchAll(vectors, 128, 5);
  const auto hits = TopKByInnerProduct(sketches[1], sketches, 5).value();
  for (const auto& hit : hits) {
    EXPECT_DOUBLE_EQ(
        hit.estimate,
        EstimateWmhInnerProduct(sketches[1], sketches[hit.index]).value());
  }
}

TEST(TopKTest, IncompatibleSketchesFail) {
  const auto vectors = MakeFamily(3, 4);
  auto sketches = SketchAll(vectors, 64, 5);
  auto other = SketchAll(vectors, 64, 6);  // different seed
  sketches[2] = other[2];
  EXPECT_FALSE(TopKByInnerProduct(sketches[0], sketches, 3).ok());
}

TEST(TopKCosineTest, NormalizesByNorms) {
  // One candidate is a scaled copy of another: by inner product the big one
  // wins; by cosine they tie (≈ 1) with the query equal to the small one.
  const auto base = MakeFamily(2, 5)[0];
  std::vector<SparseVector> vectors = {base, base.Scaled(10.0),
                                       MakeFamily(2, 6)[1]};
  const auto sketches = SketchAll(vectors, 256, 7);
  const auto by_ip = TopKByInnerProduct(sketches[0], sketches, 3).value();
  EXPECT_EQ(by_ip[0].index, 1u);  // the 10x copy dominates raw inner product
  const auto by_cos = TopKByCosine(sketches[0], sketches, 3).value();
  // Cosine ties (both ≈ 1.0) between indices 0 and 1; both must lead.
  EXPECT_TRUE((by_cos[0].index == 0 && by_cos[1].index == 1) ||
              (by_cos[0].index == 1 && by_cos[1].index == 0));
  EXPECT_NEAR(by_cos[0].estimate, by_cos[1].estimate, 0.2);
  EXPECT_EQ(by_cos[2].index, 2u);
}

TEST(AllPairsTest, RanksNeighborPairsFirst) {
  const auto vectors = MakeFamily(6, 8);
  const auto sketches = SketchAll(vectors, 256, 9);
  const auto pairs = AllPairsTopK(sketches, 5).value();
  ASSERT_EQ(pairs.size(), 5u);
  // The five adjacent pairs (i, i+1) have the highest true inner products;
  // require the top-5 to be adjacent pairs.
  for (const auto& p : pairs) {
    EXPECT_EQ(p.second, p.first + 1)
        << "(" << p.first << "," << p.second << ")";
  }
}

TEST(AllPairsTest, PairCountAndOrdering) {
  const auto vectors = MakeFamily(4, 10);
  const auto sketches = SketchAll(vectors, 64, 11);
  const auto pairs = AllPairsTopK(sketches, 100).value();
  EXPECT_EQ(pairs.size(), 6u);  // C(4,2)
  for (size_t i = 1; i < pairs.size(); ++i) {
    EXPECT_GE(pairs[i - 1].estimate, pairs[i].estimate);
  }
}

TEST(AllPairsTest, EmptyCollection) {
  const auto pairs = AllPairsTopK({}, 5).value();
  EXPECT_TRUE(pairs.empty());
}

}  // namespace
}  // namespace ipsketch
