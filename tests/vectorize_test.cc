#include "table/vectorize.h"

#include <gtest/gtest.h>

#include "table/join.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

KeyedColumn FigureTwoA() {
  return KeyedColumn::MakeOrDie(
      "V_A", {1, 3, 4, 5, 6, 7, 8, 9, 11},
      {6.0, 2.0, 6.0, 1.0, 4.0, 2.0, 2.0, 8.0, 3.0});
}

KeyedColumn FigureTwoB() {
  return KeyedColumn::MakeOrDie(
      "V_B", {2, 4, 5, 8, 10, 11, 12, 15, 16},
      {1.0, 5.0, 1.0, 2.0, 4.0, 2.5, 6.0, 6.0, 3.7});
}

constexpr uint64_t kDomain = 17;

TEST(VectorizeTest, KeyIndicatorMatchesFigureThree) {
  const auto x = KeyIndicatorVector(FigureTwoA(), kDomain).value();
  EXPECT_EQ(x.nnz(), 9u);
  for (uint64_t k : {1, 3, 4, 5, 6, 7, 8, 9, 11}) EXPECT_EQ(x.Get(k), 1.0);
  EXPECT_EQ(x.Get(2), 0.0);
  EXPECT_EQ(x.Get(16), 0.0);
  EXPECT_EQ(x.dimension(), kDomain);
}

TEST(VectorizeTest, ValueVectorMatchesFigureThree) {
  const auto x = ValueVector(FigureTwoB(), kDomain).value();
  EXPECT_EQ(x.Get(2), 1.0);
  EXPECT_EQ(x.Get(4), 5.0);
  EXPECT_EQ(x.Get(11), 2.5);
  EXPECT_EQ(x.Get(16), 3.7);
  EXPECT_EQ(x.Get(1), 0.0);
}

TEST(VectorizeTest, SquaredValueVector) {
  const auto x = SquaredValueVector(FigureTwoB(), kDomain).value();
  EXPECT_EQ(x.Get(4), 25.0);
  EXPECT_DOUBLE_EQ(x.Get(16), 3.7 * 3.7);
}

TEST(VectorizeTest, RejectsDuplicateKeys) {
  const auto dup = KeyedColumn::MakeOrDie("d", {1, 1}, {1.0, 2.0});
  EXPECT_FALSE(KeyIndicatorVector(dup, 8).ok());
  EXPECT_FALSE(ValueVector(dup, 8).ok());
}

TEST(VectorizeTest, RejectsKeysOutsideDomain) {
  const auto c = KeyedColumn::MakeOrDie("c", {5}, {1.0});
  EXPECT_FALSE(ValueVector(c, 5).ok());
  EXPECT_TRUE(ValueVector(c, 6).ok());
}

// The reductions of §1.2: every post-join statistic equals an inner product
// of the Figure 3 encodings.
TEST(ReductionTest, JoinSizeIsIndicatorInnerProduct) {
  const auto ia = KeyIndicatorVector(FigureTwoA(), kDomain).value();
  const auto ib = KeyIndicatorVector(FigureTwoB(), kDomain).value();
  const auto stats = ComputeJoinStats(FigureTwoA(), FigureTwoB()).value();
  EXPECT_DOUBLE_EQ(Dot(ia, ib), static_cast<double>(stats.size));  // = 4
}

TEST(ReductionTest, PostJoinSumIsValueIndicatorInnerProduct) {
  const auto va = ValueVector(FigureTwoA(), kDomain).value();
  const auto ib = KeyIndicatorVector(FigureTwoB(), kDomain).value();
  const auto stats = ComputeJoinStats(FigureTwoA(), FigureTwoB()).value();
  EXPECT_DOUBLE_EQ(Dot(va, ib), stats.sum_a);  // = 12.0
}

TEST(ReductionTest, PostJoinMeanIsRatioOfInnerProducts) {
  const auto va = ValueVector(FigureTwoA(), kDomain).value();
  const auto ia = KeyIndicatorVector(FigureTwoA(), kDomain).value();
  const auto ib = KeyIndicatorVector(FigureTwoB(), kDomain).value();
  EXPECT_DOUBLE_EQ(Dot(va, ib) / Dot(ia, ib), 3.0);  // MEAN(V_A⋈)
}

TEST(ReductionTest, PostJoinInnerProduct) {
  const auto va = ValueVector(FigureTwoA(), kDomain).value();
  const auto vb = ValueVector(FigureTwoB(), kDomain).value();
  const auto stats = ComputeJoinStats(FigureTwoA(), FigureTwoB()).value();
  EXPECT_DOUBLE_EQ(Dot(va, vb), stats.inner_product);  // = 42.5
}

TEST(ReductionTest, PostJoinSumOfSquares) {
  const auto sa = SquaredValueVector(FigureTwoA(), kDomain).value();
  const auto ib = KeyIndicatorVector(FigureTwoB(), kDomain).value();
  const auto stats = ComputeJoinStats(FigureTwoA(), FigureTwoB()).value();
  EXPECT_DOUBLE_EQ(Dot(sa, ib), stats.sum_sq_a);
}

TEST(ReductionTest, ZeroValuesAreAbsentFromValueVector) {
  // A documented caveat: a value of exactly 0 vectorizes identically to a
  // missing key, so ⟨x_V, x_1⟩ still equals the post-join SUM, but the
  // value vector's support undercounts the key set.
  const auto c = KeyedColumn::MakeOrDie("z", {1, 2}, {0.0, 5.0});
  const auto v = ValueVector(c, 8).value();
  EXPECT_EQ(v.nnz(), 1u);
  const auto i = KeyIndicatorVector(c, 8).value();
  EXPECT_EQ(i.nnz(), 2u);
}

}  // namespace
}  // namespace ipsketch
