#include "data/synthetic.h"

#include <cmath>
#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

TEST(SyntheticOptionsTest, Validation) {
  SyntheticPairOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.overlap = 1.5;
  EXPECT_FALSE(o.Validate().ok());
  o = SyntheticPairOptions();
  o.nnz = 6000;  // 2·6000 > 10000
  o.overlap = 0.0;
  EXPECT_FALSE(o.Validate().ok());
  o.overlap = 1.0;  // needs only 6000 indices
  EXPECT_TRUE(o.Validate().ok());
}

TEST(SampleDistinctIndicesTest, DistinctInRange) {
  for (uint64_t universe : {100ull, 100000ull, 1ull << 40}) {
    const auto indices = SampleDistinctIndices(universe, 50, 7);
    EXPECT_EQ(indices.size(), 50u);
    std::unordered_set<uint64_t> seen(indices.begin(), indices.end());
    EXPECT_EQ(seen.size(), 50u);
    for (uint64_t i : indices) EXPECT_LT(i, universe);
  }
}

TEST(SampleDistinctIndicesTest, FullUniverse) {
  const auto indices = SampleDistinctIndices(10, 10, 3);
  std::unordered_set<uint64_t> seen(indices.begin(), indices.end());
  EXPECT_EQ(seen.size(), 10u);
}

TEST(SampleDistinctIndicesTest, DeterministicInSeed) {
  EXPECT_EQ(SampleDistinctIndices(1000, 20, 5),
            SampleDistinctIndices(1000, 20, 5));
  EXPECT_NE(SampleDistinctIndices(1000, 20, 5),
            SampleDistinctIndices(1000, 20, 6));
}

TEST(TruncatedUnitNormalTest, RangeAndShape) {
  Xoshiro256StarStar rng(9);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double x = TruncatedUnitNormal(rng);
    ASSERT_GE(x, -1.0);
    ASSERT_LE(x, 1.0);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.01);
  // Var of N(0,1) truncated to [−1,1] is ≈ 0.291.
  EXPECT_NEAR(sum2 / n, 0.291, 0.01);
}

TEST(SyntheticPairTest, ShapeMatchesPaperDefaults) {
  SyntheticPairOptions o;  // §5.1 defaults
  o.seed = 1;
  const auto pair = GenerateSyntheticPair(o).value();
  EXPECT_EQ(pair.a.dimension(), 10000u);
  EXPECT_EQ(pair.a.nnz(), 2000u);
  EXPECT_EQ(pair.b.nnz(), 2000u);
}

TEST(SyntheticPairTest, OverlapIsExact) {
  for (double overlap : {0.01, 0.05, 0.1, 0.5, 1.0}) {
    SyntheticPairOptions o;
    o.overlap = overlap;
    o.seed = 42;
    const auto pair = GenerateSyntheticPair(o).value();
    const size_t expected =
        static_cast<size_t>(std::llround(overlap * 2000.0));
    EXPECT_EQ(SupportIntersectionSize(pair.a, pair.b), expected)
        << "overlap=" << overlap;
  }
}

TEST(SyntheticPairTest, ZeroOverlapIsDisjoint) {
  SyntheticPairOptions o;
  o.overlap = 0.0;
  o.seed = 3;
  const auto pair = GenerateSyntheticPair(o).value();
  EXPECT_EQ(SupportIntersectionSize(pair.a, pair.b), 0u);
}

TEST(SyntheticPairTest, OutlierCountAndRange) {
  SyntheticPairOptions o;
  o.seed = 4;
  const auto pair = GenerateSyntheticPair(o).value();
  size_t outliers = 0;
  for (const Entry& e : pair.a.entries()) {
    if (e.value >= o.outlier_min && e.value <= o.outlier_max) {
      ++outliers;
    } else {
      EXPECT_LE(std::fabs(e.value), 1.0) << "value " << e.value
                                         << " neither normal nor outlier";
    }
  }
  EXPECT_EQ(outliers, 200u);  // exactly 10% of 2000
}

TEST(SyntheticPairTest, NoOutliersWhenFractionZero) {
  SyntheticPairOptions o;
  o.outlier_fraction = 0.0;
  o.seed = 5;
  const auto pair = GenerateSyntheticPair(o).value();
  for (const Entry& e : pair.a.entries()) {
    EXPECT_LE(std::fabs(e.value), 1.0);
  }
}

TEST(SyntheticPairTest, DeterministicInSeed) {
  SyntheticPairOptions o;
  o.seed = 6;
  const auto p1 = GenerateSyntheticPair(o).value();
  const auto p2 = GenerateSyntheticPair(o).value();
  EXPECT_TRUE(p1.a == p2.a);
  EXPECT_TRUE(p1.b == p2.b);
  o.seed = 7;
  const auto p3 = GenerateSyntheticPair(o).value();
  EXPECT_FALSE(p1.a == p3.a);
}

TEST(SyntheticPairTest, BatchGenerationIndependentPairs) {
  SyntheticPairOptions o;
  o.dimension = 1000;
  o.nnz = 100;
  o.seed = 8;
  const auto pairs = GenerateSyntheticPairs(o, 5).value();
  ASSERT_EQ(pairs.size(), 5u);
  EXPECT_FALSE(pairs[0].a == pairs[1].a);
  EXPECT_FALSE(pairs[1].a == pairs[2].a);
}

}  // namespace
}  // namespace ipsketch
