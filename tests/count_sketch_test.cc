#include "sketch/count_sketch.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector RandomVector(uint64_t dim, size_t nnz, uint64_t seed,
                          double heavy_fraction = 0.0) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (size_t i = 0; i < nnz; ++i) {
    double v = rng.NextGaussian() + 0.1;
    if (rng.NextUnit() < heavy_fraction) v *= 20.0;
    entries.push_back({i * (dim / nnz), v});
  }
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

CountSketch Sketch(const SparseVector& v, size_t total, uint64_t seed,
                   size_t reps = 5) {
  CountSketchOptions o;
  o.total_counters = total;
  o.repetitions = reps;
  o.seed = seed;
  return SketchCount(v, o).value();
}

TEST(CountSketchOptionsTest, Validation) {
  CountSketchOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.repetitions = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.repetitions = 5;
  o.total_counters = 4;  // width would be 0
  EXPECT_FALSE(o.Validate().ok());
}

TEST(CountSketchTest, ShapeAndDeterminism) {
  const auto v = RandomVector(500, 50, 1);
  const auto s1 = Sketch(v, 100, 7);
  const auto s2 = Sketch(v, 100, 7);
  EXPECT_EQ(s1.tables.size(), 5u);
  EXPECT_EQ(s1.width(), 20u);
  EXPECT_EQ(s1.tables, s2.tables);
  EXPECT_DOUBLE_EQ(s1.StorageWords(), 100.0);
}

TEST(CountSketchTest, SignedMassBoundedByL1) {
  const auto v = RandomVector(300, 40, 2);
  const auto s = Sketch(v, 60, 3);
  for (const auto& table : s.tables) {
    double total = 0.0;
    for (double c : table) total += c;
    EXPECT_LE(std::fabs(total), v.L1Norm() + 1e-9);
  }
}

TEST(CountSketchTest, SketchIsLinear) {
  const auto a = RandomVector(400, 40, 4);
  const auto b = RandomVector(400, 40, 5);
  const auto sum = Add(a, b).value();
  const auto sa = Sketch(a, 50, 11);
  const auto sb = Sketch(b, 50, 11);
  const auto ssum = Sketch(sum, 50, 11);
  for (size_t r = 0; r < sa.tables.size(); ++r) {
    for (size_t j = 0; j < sa.width(); ++j) {
      EXPECT_NEAR(ssum.tables[r][j], sa.tables[r][j] + sb.tables[r][j], 1e-9);
    }
  }
}

TEST(CountSketchEstimatorTest, CompatibilityChecks) {
  const auto v = RandomVector(100, 20, 6);
  EXPECT_FALSE(EstimateCountSketchInnerProduct(Sketch(v, 50, 1),
                                               Sketch(v, 100, 1))
                   .ok());
  EXPECT_FALSE(EstimateCountSketchInnerProduct(Sketch(v, 50, 1),
                                               Sketch(v, 50, 2))
                   .ok());
}

TEST(CountSketchEstimatorTest, UnbiasedOverSeeds) {
  const auto a = RandomVector(600, 80, 7);
  const auto b = RandomVector(600, 80, 8);
  const double truth = Dot(a, b);
  // Use 1 repetition for the unbiasedness check (medians are not unbiased).
  double sum = 0.0;
  const int kSeeds = 600;
  for (int seed = 0; seed < kSeeds; ++seed) {
    sum += EstimateCountSketchInnerProduct(Sketch(a, 64, seed, 1),
                                           Sketch(b, 64, seed, 1))
               .value();
  }
  const double se =
      Fact1Bound(a, b) / std::sqrt(64.0) / std::sqrt(double(kSeeds));
  EXPECT_NEAR(sum / kSeeds, truth, 6.0 * se);
}

TEST(CountSketchEstimatorTest, ExactWhenWidthExceedsSupport) {
  // With more buckets than distinct non-zeros and no collisions between the
  // two supports' buckets, a single repetition recovers the inner product
  // only in expectation — but identical supports hashing to distinct
  // buckets recover it exactly.
  const auto a = SparseVector::MakeOrDie(16, {{2, 1.5}, {9, -2.0}});
  const auto b = SparseVector::MakeOrDie(16, {{2, 4.0}, {9, 1.0}});
  // Seek a seed with no bucket collision among the two support indices.
  for (uint64_t seed = 0; seed < 64; ++seed) {
    CountSketchOptions o;
    o.total_counters = 64;
    o.repetitions = 1;
    o.seed = seed;
    const auto sa = SketchCount(a, o).value();
    const auto sb = SketchCount(b, o).value();
    size_t nonzero_buckets = 0;
    for (double c : sa.tables[0]) nonzero_buckets += (c != 0.0);
    if (nonzero_buckets == 2) {
      EXPECT_NEAR(
          EstimateCountSketchInnerProduct(sa, sb).value(),
          Dot(a, b), 1e-9);
      return;
    }
  }
  FAIL() << "no collision-free seed found in 64 tries (p < 1e-30)";
}

TEST(CountSketchEstimatorTest, MedianCompetitiveWithSingleRep) {
  const auto a = RandomVector(600, 80, 9, 0.1);
  const auto b = RandomVector(600, 80, 10, 0.1);
  const double truth = Dot(a, b);
  double err_single = 0.0, err_median = 0.0;
  const int kSeeds = 80;
  for (int seed = 0; seed < kSeeds; ++seed) {
    err_single += std::fabs(
        EstimateCountSketchInnerProduct(Sketch(a, 100, seed, 1),
                                        Sketch(b, 100, seed, 1))
            .value() -
        truth);
    err_median += std::fabs(
        EstimateCountSketchInnerProduct(Sketch(a, 100, seed, 5),
                                        Sketch(b, 100, seed, 5))
            .value() -
        truth);
  }
  // The 5-rep median uses 5× narrower tables; it should still be within a
  // small factor of the single wide table and usually better in the tails.
  EXPECT_LT(err_median, err_single * 3.0);
}

TEST(CountSketchEstimatorTest, ErrorWithinFact1Scale) {
  const auto a = RandomVector(500, 100, 11);
  const auto b = RandomVector(500, 100, 12);
  const double truth = Dot(a, b);
  const size_t m = 200;
  int violations = 0;
  const int kSeeds = 60;
  const double tolerance = 5.0 / std::sqrt(static_cast<double>(m) / 5.0);
  for (int seed = 0; seed < kSeeds; ++seed) {
    const double est = EstimateCountSketchInnerProduct(Sketch(a, m, seed),
                                                       Sketch(b, m, seed))
                           .value();
    if (std::fabs(est - truth) > tolerance * Fact1Bound(a, b)) ++violations;
  }
  EXPECT_LE(violations, 3);
}

TEST(CountSketchEstimatorTest, ErrorDecreasesWithWidth) {
  const auto a = RandomVector(500, 100, 13);
  const auto b = RandomVector(500, 100, 14);
  const double truth = Dot(a, b);
  double err_narrow = 0.0, err_wide = 0.0;
  const int kSeeds = 60;
  for (int seed = 0; seed < kSeeds; ++seed) {
    err_narrow += std::fabs(
        EstimateCountSketchInnerProduct(Sketch(a, 25, seed),
                                        Sketch(b, 25, seed))
            .value() -
        truth);
    err_wide += std::fabs(
        EstimateCountSketchInnerProduct(Sketch(a, 400, seed),
                                        Sketch(b, 400, seed))
            .value() -
        truth);
  }
  EXPECT_LT(err_wide, err_narrow / 2.0);
}

}  // namespace
}  // namespace ipsketch
