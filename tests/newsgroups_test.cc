#include "data/newsgroups.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "text/tfidf.h"
#include "text/tokenizer.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

NewsgroupsOptions SmallOptions() {
  NewsgroupsOptions o;
  o.num_documents = 120;
  o.vocab_size = 3000;
  o.num_topics = 6;
  o.seed = 11;
  return o;
}

TEST(NewsgroupsOptionsTest, Validation) {
  NewsgroupsOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.num_topics = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = NewsgroupsOptions();
  o.topic_mix = -0.1;
  EXPECT_FALSE(o.Validate().ok());
  o = NewsgroupsOptions();
  o.min_length = 100;
  o.max_length = 50;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(ZipfSamplerTest, RankZeroMostLikely) {
  const ZipfSampler zipf(1000, 1.1);
  Xoshiro256StarStar rng(3);
  std::vector<size_t> counts(1000, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng.NextUnit())];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[500]);
  // Zipf head mass: rank 0 should hold a few percent of all draws.
  EXPECT_GT(counts[0], n / 50);
}

TEST(ZipfSamplerTest, BoundaryUnits) {
  const ZipfSampler zipf(100, 1.0);
  EXPECT_EQ(zipf.Sample(0.0), 0u);
  EXPECT_LT(zipf.Sample(0.999999999), 100u);
}

TEST(NewsgroupsCorpusTest, ShapeAndDeterminism) {
  const auto c1 = GenerateNewsgroupsCorpus(SmallOptions()).value();
  const auto c2 = GenerateNewsgroupsCorpus(SmallOptions()).value();
  ASSERT_EQ(c1.size(), 120u);
  ASSERT_EQ(c2.size(), 120u);
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].token_ids, c2[i].token_ids);
    EXPECT_EQ(c1[i].topic, c2[i].topic);
  }
}

TEST(NewsgroupsCorpusTest, LengthsWithinBounds) {
  const auto corpus = GenerateNewsgroupsCorpus(SmallOptions()).value();
  for (const auto& doc : corpus) {
    EXPECT_GE(doc.length(), 40u);
    EXPECT_LE(doc.length(), 5000u);
  }
}

TEST(NewsgroupsCorpusTest, LengthsHaveHeavyRightTail) {
  NewsgroupsOptions o;
  o.num_documents = 700;
  o.seed = 13;
  const auto corpus = GenerateNewsgroupsCorpus(o).value();
  size_t long_docs = 0;
  for (const auto& doc : corpus) long_docs += (doc.length() > 700);
  // Figure 6(b) needs a meaningful >700-word subpopulation.
  EXPECT_GT(long_docs, 30u);
  EXPECT_LT(long_docs, 600u);
}

TEST(NewsgroupsCorpusTest, TopicsAssignedAcrossRange) {
  const auto corpus = GenerateNewsgroupsCorpus(SmallOptions()).value();
  std::unordered_set<size_t> topics;
  for (const auto& doc : corpus) {
    EXPECT_LT(doc.topic, 6u);
    topics.insert(doc.topic);
  }
  EXPECT_GE(topics.size(), 4u);  // 120 docs over 6 topics hits most
}

TEST(NewsgroupsCorpusTest, SameTopicPairsShareMoreVocabulary) {
  const auto corpus = GenerateNewsgroupsCorpus(SmallOptions()).value();
  auto distinct = [](const SyntheticDocument& d) {
    return std::unordered_set<uint64_t>(d.token_ids.begin(),
                                        d.token_ids.end());
  };
  auto jaccard = [&](const SyntheticDocument& x, const SyntheticDocument& y) {
    const auto sx = distinct(x);
    const auto sy = distinct(y);
    size_t inter = 0;
    for (uint64_t t : sx) inter += sy.count(t);
    return static_cast<double>(inter) /
           static_cast<double>(sx.size() + sy.size() - inter);
  };
  double same_sum = 0.0, cross_sum = 0.0;
  size_t same_n = 0, cross_n = 0;
  for (size_t i = 0; i < corpus.size(); ++i) {
    for (size_t j = i + 1; j < std::min(corpus.size(), i + 20); ++j) {
      const double jac = jaccard(corpus[i], corpus[j]);
      if (corpus[i].topic == corpus[j].topic) {
        same_sum += jac;
        ++same_n;
      } else {
        cross_sum += jac;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0u);
  ASSERT_GT(cross_n, 0u);
  EXPECT_GT(same_sum / same_n, cross_sum / cross_n);
}

TEST(NewsgroupsCorpusTest, TfidfPipelineProducesSparseHighDimVectors) {
  const auto corpus = GenerateNewsgroupsCorpus(SmallOptions()).value();
  std::vector<std::vector<uint64_t>> feature_docs;
  FeatureOptions fo;
  for (const auto& doc : corpus) {
    feature_docs.push_back(IdFeatures(doc.token_ids, fo));
  }
  TfidfVectorizer vectorizer;
  const auto vectors = vectorizer.FitTransform(feature_docs).value();
  ASSERT_EQ(vectors.size(), corpus.size());
  for (const auto& v : vectors) {
    EXPECT_GT(v.nnz(), 10u);
    EXPECT_NEAR(v.Norm(), 1.0, 1e-9);
  }
  // Pairwise cosines live in [0, 1] and are mostly small (sparse overlap).
  double max_cross = 0.0;
  for (size_t i = 1; i < 30; ++i) {
    const double c = CosineSimilarity(vectors[0], vectors[i]);
    EXPECT_GE(c, -1e-12);
    EXPECT_LE(c, 1.0 + 1e-12);
    max_cross = std::max(max_cross, c);
  }
  EXPECT_LT(max_cross, 0.9);
}

}  // namespace
}  // namespace ipsketch
