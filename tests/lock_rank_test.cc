// Tests for the debug LockRank layer in common/mutex.h: ordered
// acquisition passes, inversion and same-rank nesting abort, and the real
// store → index mirror chain (the deepest sanctioned order in the service)
// runs clean. The death tests only exist where the checker is compiled in —
// under NDEBUG (Release, the TSAN job's RelWithDebInfo) they skip.

#include "common/mutex.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "index/banded_index.h"
#include "service/sketch_store.h"
#include "vector/sparse_vector.h"

namespace ipsketch {
namespace {

using lock_rank_internal::HeldDepthForTesting;

TEST(LockRankTest, IncreasingChainPasses) {
  Mutex registry(LockRank::kListenerRegistry);
  Mutex store_shard(LockRank::kStoreShard);
  Mutex index_shard(LockRank::kIndexShard);
  Mutex leaf(LockRank::kLeaf);
  {
    MutexLock a(&registry);
    MutexLock b(&store_shard);
    MutexLock c(&index_shard);
    MutexLock d(&leaf);
    if (kLockRankCheckEnabled) {
      EXPECT_EQ(HeldDepthForTesting(), 4u);
    }
  }
  EXPECT_EQ(HeldDepthForTesting(), 0u);
}

TEST(LockRankTest, ReacquireAfterReleasePasses) {
  // Dropping back to empty resets the ceiling: lower ranks are fine again.
  Mutex store_shard(LockRank::kStoreShard);
  Mutex index_shard(LockRank::kIndexShard);
  { MutexLock lock(&index_shard); }
  { MutexLock lock(&store_shard); }
  EXPECT_EQ(HeldDepthForTesting(), 0u);
}

TEST(LockRankDeathTest, InversionAborts) {
  if (!kLockRankCheckEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out under NDEBUG";
  }
  // The forbidden order: an index shard lock held while acquiring a store
  // shard lock — the mirror protocol's deadlock shape.
  Mutex index_shard(LockRank::kIndexShard);
  Mutex store_shard(LockRank::kStoreShard);
  MutexLock outer(&index_shard);
  EXPECT_DEATH(MutexLock inner(&store_shard), "lock rank violation");
}

TEST(LockRankDeathTest, SameRankNestingAborts) {
  if (!kLockRankCheckEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out under NDEBUG";
  }
  // Two locks of equal rank (two shards of one store, or shards of two
  // different stores) never nest: with no order between them, concurrent
  // threads could take them in opposite orders — ABBA.
  Mutex shard_a(LockRank::kStoreShard);
  Mutex shard_b(LockRank::kStoreShard);
  MutexLock outer(&shard_a);
  EXPECT_DEATH(MutexLock inner(&shard_b), "lock rank violation");
}

TEST(LockRankDeathTest, TryLockInWrongOrderAborts) {
  if (!kLockRankCheckEnabled) {
    GTEST_SKIP() << "lock-rank checker compiled out under NDEBUG";
  }
  // try_lock would not block here, but the order is the same latent
  // deadlock, so the checker treats it identically.
  Mutex leaf(LockRank::kLeaf);
  Mutex store_shard(LockRank::kStoreShard);
  MutexLock outer(&leaf);
  EXPECT_DEATH((void)store_shard.TryLock(), "lock rank violation");
}

// A deterministic sparse vector, same shape as the service tests use.
SparseVector TestVector(uint64_t seed) {
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 24; ++i) {
    const uint64_t index = (seed * 97 + i * 31) % 512;
    bool duplicate = false;
    for (const Entry& e : entries) duplicate |= (e.index == index);
    if (!duplicate) {
      entries.push_back({index, 1.0 + static_cast<double>((seed + i) % 7)});
    }
  }
  return SparseVector::MakeOrDie(512, std::move(entries));
}

SketchStoreOptions SmallStoreOptions() {
  SketchStoreOptions opts;
  opts.family = "wmh";
  opts.sketch.dimension = 512;
  opts.sketch.num_samples = 64;
  opts.sketch.seed = 42;
  opts.num_shards = 4;
  return opts;
}

TEST(LockRankTest, StoreToIndexMirrorChainPasses) {
  // The real deepest chain: AttachListener holds the listener registry
  // across each shard's replay (kListenerRegistry → kStoreShard →
  // kIndexShard), and every later mutation notifies the index under the
  // store shard lock (kStoreShard → kIndexShard). Under the debug checker
  // this test is the positive proof those orders are sanctioned.
  auto store = SketchStore::Make(SmallStoreOptions()).value();
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(store.BuildAndInsert(i, TestVector(i)).ok());
  }
  BandedLshParams params;
  params.bands = 16;
  params.rows = 4;
  // Attach replays 16 resident entries through the full chain.
  auto index = BandedIndex::MakeAttached(&store, params);
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index.value()->size(), 16u);
  // Mirrored insert, replace, and erase all run store-shard → index-shard.
  ASSERT_TRUE(store.BuildAndInsert(100, TestVector(100)).ok());
  ASSERT_TRUE(store.BuildAndInsert(100, TestVector(101)).ok());
  ASSERT_TRUE(store.Erase(3).ok());
  EXPECT_EQ(index.value()->size(), 16u);
  EXPECT_EQ(HeldDepthForTesting(), 0u);
}

TEST(LockRankTest, QuantizeStoreRegression) {
  // Regression for a genuine lock-order bug the rank checker surfaced:
  // QuantizeStore used to Insert into the destination store from inside the
  // source's ForEachInShard scan — two kStoreShard locks nested, the
  // cross-store ABBA shape (two concurrent QuantizeStore calls in opposite
  // directions could deadlock). The compact forms are now staged per shard
  // and inserted after the scan; under the debug checker this test aborts
  // if the nesting ever comes back.
  auto source = SketchStore::Make(SmallStoreOptions()).value();
  for (uint64_t i = 0; i < 16; ++i) {
    ASSERT_TRUE(source.BuildAndInsert(i, TestVector(i)).ok());
  }
  auto compact = QuantizeStore(source, "wmh_compact");
  ASSERT_TRUE(compact.ok()) << compact.status().ToString();
  EXPECT_EQ(compact.value().size(), 16u);
  EXPECT_EQ(compact.value().Ids(), source.Ids());
  EXPECT_EQ(HeldDepthForTesting(), 0u);
}

}  // namespace
}  // namespace ipsketch
