#include "table/join.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

// The exact tables of Figure 2 in the paper.
KeyedColumn FigureTwoA() {
  return KeyedColumn::MakeOrDie(
      "V_A", {1, 3, 4, 5, 6, 7, 8, 9, 11},
      {6.0, 2.0, 6.0, 1.0, 4.0, 2.0, 2.0, 8.0, 3.0});
}

KeyedColumn FigureTwoB() {
  return KeyedColumn::MakeOrDie(
      "V_B", {2, 4, 5, 8, 10, 11, 12, 15, 16},
      {1.0, 5.0, 1.0, 2.0, 4.0, 2.5, 6.0, 6.0, 3.7});
}

TEST(JoinRowsTest, FigureTwoJoinRows) {
  auto rows = JoinRows(FigureTwoA(), FigureTwoB());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 4u);
  // Keys 4, 5, 8, 11 with values (6,5), (1,1), (2,2), (3,2.5).
  EXPECT_EQ(rows.value()[0].key, 4u);
  EXPECT_EQ(rows.value()[0].value_a, 6.0);
  EXPECT_EQ(rows.value()[0].value_b, 5.0);
  EXPECT_EQ(rows.value()[3].key, 11u);
  EXPECT_EQ(rows.value()[3].value_b, 2.5);
}

TEST(JoinRowsTest, RequiresUniqueKeys) {
  const auto dup = KeyedColumn::MakeOrDie("d", {1, 1}, {1.0, 2.0});
  const auto ok = KeyedColumn::MakeOrDie("o", {1, 2}, {1.0, 2.0});
  EXPECT_FALSE(JoinRows(dup, ok).ok());
  EXPECT_FALSE(JoinRows(ok, dup).ok());
  EXPECT_EQ(JoinRows(dup, ok).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(JoinRowsTest, AggregationRepairsDuplicates) {
  const auto dup = KeyedColumn::MakeOrDie("d", {1, 1, 2}, {1.0, 2.0, 5.0});
  const auto ok = KeyedColumn::MakeOrDie("o", {1, 2}, {10.0, 20.0});
  auto rows = JoinRows(dup.Aggregated(Aggregation::kSum), ok);
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows.value().size(), 2u);
  EXPECT_EQ(rows.value()[0].value_a, 3.0);  // 1 + 2 summed
}

TEST(JoinStatsTest, FigureTwoStatistics) {
  // The worked numbers printed in Figure 2:
  //   SIZE(V_A⋈) = 4, SUM(V_A⋈) = 12.0, SUM(V_B⋈) = 10.5,
  //   MEAN(V_A⋈) = 3.0.
  auto stats = ComputeJoinStats(FigureTwoA(), FigureTwoB()).value();
  EXPECT_EQ(stats.size, 4u);
  EXPECT_DOUBLE_EQ(stats.sum_a, 12.0);
  EXPECT_DOUBLE_EQ(stats.sum_b, 10.5);
  EXPECT_DOUBLE_EQ(stats.mean_a, 3.0);
  EXPECT_DOUBLE_EQ(stats.mean_b, 10.5 / 4.0);
  // ⟨x_VA, x_VB⟩ = 6·5 + 1·1 + 2·2 + 3·2.5 = 42.5 (Figure 3 reduction).
  EXPECT_DOUBLE_EQ(stats.inner_product, 42.5);
  EXPECT_DOUBLE_EQ(stats.sum_sq_a, 36.0 + 1.0 + 4.0 + 9.0);
  EXPECT_DOUBLE_EQ(stats.sum_sq_b, 25.0 + 1.0 + 4.0 + 6.25);
}

TEST(JoinStatsTest, MomentsMatchDirectComputation) {
  auto stats = ComputeJoinStats(FigureTwoA(), FigureTwoB()).value();
  // V_A⋈ = {6,1,2,3}, V_B⋈ = {5,1,2,2.5}.
  const double mean_a = 3.0, mean_b = 2.625;
  const double var_a =
      (36.0 + 1.0 + 4.0 + 9.0) / 4.0 - mean_a * mean_a;
  const double var_b =
      (25.0 + 1.0 + 4.0 + 6.25) / 4.0 - mean_b * mean_b;
  const double cov = 42.5 / 4.0 - mean_a * mean_b;
  EXPECT_DOUBLE_EQ(stats.variance_a, var_a);
  EXPECT_DOUBLE_EQ(stats.variance_b, var_b);
  EXPECT_DOUBLE_EQ(stats.covariance, cov);
  EXPECT_NEAR(stats.correlation, cov / std::sqrt(var_a * var_b), 1e-12);
  EXPECT_GE(stats.correlation, -1.0);
  EXPECT_LE(stats.correlation, 1.0);
}

TEST(JoinStatsTest, EmptyJoin) {
  const auto a = KeyedColumn::MakeOrDie("a", {1, 2}, {1.0, 2.0});
  const auto b = KeyedColumn::MakeOrDie("b", {3, 4}, {3.0, 4.0});
  auto stats = ComputeJoinStats(a, b).value();
  EXPECT_EQ(stats.size, 0u);
  EXPECT_EQ(stats.sum_a, 0.0);
  EXPECT_EQ(stats.mean_a, 0.0);
  EXPECT_EQ(stats.correlation, 0.0);
}

TEST(JoinStatsTest, PerfectlyCorrelatedColumns) {
  const auto a = KeyedColumn::MakeOrDie("a", {1, 2, 3}, {1.0, 2.0, 3.0});
  const auto b = KeyedColumn::MakeOrDie("b", {1, 2, 3}, {10.0, 20.0, 30.0});
  auto stats = ComputeJoinStats(a, b).value();
  EXPECT_NEAR(stats.correlation, 1.0, 1e-12);
}

TEST(JoinStatsTest, AntiCorrelatedColumns) {
  const auto a = KeyedColumn::MakeOrDie("a", {1, 2, 3}, {1.0, 2.0, 3.0});
  const auto b = KeyedColumn::MakeOrDie("b", {1, 2, 3}, {5.0, 3.0, 1.0});
  auto stats = ComputeJoinStats(a, b).value();
  EXPECT_NEAR(stats.correlation, -1.0, 1e-12);
}

TEST(JoinStatsTest, ConstantColumnHasZeroCorrelationByConvention) {
  const auto a = KeyedColumn::MakeOrDie("a", {1, 2, 3}, {7.0, 7.0, 7.0});
  const auto b = KeyedColumn::MakeOrDie("b", {1, 2, 3}, {1.0, 2.0, 3.0});
  auto stats = ComputeJoinStats(a, b).value();
  EXPECT_EQ(stats.correlation, 0.0);
  EXPECT_NEAR(stats.variance_a, 0.0, 1e-12);
}

TEST(JoinStatsTest, JoinIsSymmetricInSize) {
  const auto a = FigureTwoA();
  const auto b = FigureTwoB();
  EXPECT_EQ(ComputeJoinStats(a, b).value().size,
            ComputeJoinStats(b, a).value().size);
  EXPECT_DOUBLE_EQ(ComputeJoinStats(a, b).value().inner_product,
                   ComputeJoinStats(b, a).value().inner_product);
  EXPECT_DOUBLE_EQ(ComputeJoinStats(a, b).value().sum_a,
                   ComputeJoinStats(b, a).value().sum_b);
}

}  // namespace
}  // namespace ipsketch
