#include "sketch/quantize.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/wmh_estimator.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector TestVector(uint64_t seed, uint64_t lo, uint64_t hi) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t i = lo; i < hi; ++i) {
    entries.push_back({i, 0.3 + rng.NextUnit() * (i % 8 == 0 ? 6.0 : 1.0)});
  }
  return SparseVector::MakeOrDie(1024, std::move(entries));
}

WmhSketch Sketch(const SparseVector& v, size_t m, uint64_t seed,
                 WmhEngine engine = WmhEngine::kDart) {
  WmhOptions o;
  o.num_samples = m;
  o.seed = seed;
  o.L = 1 << 16;
  o.engine = engine;
  return SketchWmh(v, o).value();
}

TEST(CompactWmhTest, StorageIsOneWordPerSample) {
  const auto full = Sketch(TestVector(1, 0, 100), 64, 3);
  const auto compact = CompactFromWmh(full);
  EXPECT_DOUBLE_EQ(full.StorageWords(), 97.0);     // 1.5·64 + 1
  EXPECT_DOUBLE_EQ(compact.StorageWords(), 65.0);  // 1·64 + 1
}

TEST(CompactWmhTest, PreservesTrueMatches) {
  // True matches are equal doubles, which quantize equally: the compact
  // match count can never drop below the full-precision count.
  const auto a = TestVector(2, 0, 150);
  const auto b = TestVector(3, 75, 225);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto sa = Sketch(a, 128, seed);
    const auto sb = Sketch(b, 128, seed);
    const auto ca = CompactFromWmh(sa);
    const auto cb = CompactFromWmh(sb);
    size_t full_matches = 0, compact_matches = 0;
    for (size_t i = 0; i < 128; ++i) {
      full_matches += (sa.hashes[i] == sb.hashes[i]);
      compact_matches += (ca.hashes[i] == cb.hashes[i]);
    }
    EXPECT_GE(compact_matches, full_matches) << "seed " << seed;
  }
}

TEST(CompactWmhTest, EstimateTracksFullPrecision) {
  const auto a = TestVector(4, 0, 200);
  const auto b = TestVector(5, 100, 300);
  const double truth = Dot(a, b);
  const double scale = a.Norm() * b.Norm();
  double full_err = 0.0, compact_err = 0.0;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto sa = Sketch(a, 256, seed);
    const auto sb = Sketch(b, 256, seed);
    full_err +=
        std::fabs(EstimateWmhInnerProduct(sa, sb).value() - truth) / scale;
    compact_err += std::fabs(EstimateCompactWmhInnerProduct(
                                 CompactFromWmh(sa), CompactFromWmh(sb))
                                 .value() -
                             truth) /
                   scale;
  }
  // 32-bit hashes + float32 values: nearly indistinguishable accuracy.
  EXPECT_LT(compact_err, full_err * 1.25 + 0.002 * kSeeds);
}

TEST(CompactWmhTest, CompatibilityChecks) {
  const auto v = TestVector(6, 0, 64);
  const auto s1 = CompactFromWmh(Sketch(v, 16, 1));
  const auto s2 = CompactFromWmh(Sketch(v, 16, 2));
  EXPECT_FALSE(EstimateCompactWmhInnerProduct(s1, s2).ok());
}

TEST(CompactWmhTest, QuantizationCarriesTheEngine) {
  const auto v = TestVector(6, 0, 64);
  for (WmhEngine engine : {WmhEngine::kDart, WmhEngine::kActiveIndex,
                           WmhEngine::kExpandedReference}) {
    EXPECT_EQ(CompactFromWmh(Sketch(v, 16, 1, engine)).engine, engine);
    EXPECT_EQ(BbitFromWmh(Sketch(v, 16, 1, engine), 16).value().engine,
              engine);
  }
}

// Regression for the silent cross-engine acceptance bug: engines realize
// different hash functions, so — mirroring wmh_estimator_test — a kDart
// compact sketch against a kActiveIndex compact sketch must be
// InvalidArgument, not a silently wrong estimate.
TEST(CompactWmhTest, CrossEngineEstimationIsRejected) {
  const auto v = TestVector(6, 0, 64);
  const auto dart = CompactFromWmh(Sketch(v, 16, 1, WmhEngine::kDart));
  const auto active =
      CompactFromWmh(Sketch(v, 16, 1, WmhEngine::kActiveIndex));
  const auto estimate = EstimateCompactWmhInnerProduct(dart, active);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(estimate.status().message().find("engine"), std::string::npos);
  // Same-engine pairs keep estimating.
  EXPECT_TRUE(EstimateCompactWmhInnerProduct(dart, dart).ok());
}

TEST(BbitWmhTest, CrossEngineEstimationIsRejected) {
  const auto v = TestVector(6, 0, 64);
  const auto dart = BbitFromWmh(Sketch(v, 16, 1, WmhEngine::kDart), 16)
                        .value();
  const auto active =
      BbitFromWmh(Sketch(v, 16, 1, WmhEngine::kActiveIndex), 16).value();
  const auto estimate = EstimateBbitWmhInnerProduct(dart, active);
  ASSERT_FALSE(estimate.ok());
  EXPECT_EQ(estimate.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(estimate.status().message().find("engine"), std::string::npos);
  EXPECT_TRUE(EstimateBbitWmhInnerProduct(dart, dart).ok());
}

TEST(CompactWmhTest, ZeroVectorEstimatesZero) {
  SparseVector zero = SparseVector::FromDense(std::vector<double>(8, 0.0));
  WmhOptions o;
  o.num_samples = 16;
  const auto sz = CompactFromWmh(SketchWmh(zero, o).value());
  WmhOptions o2 = o;
  const auto sv = CompactFromWmh(
      SketchWmh(SparseVector::MakeOrDie(8, {{1, 2.0}}), o2).value());
  EXPECT_EQ(EstimateCompactWmhInnerProduct(sz, sv).value(), 0.0);
}

TEST(BbitWmhTest, ValidatesBitWidth) {
  const auto s = Sketch(TestVector(7, 0, 64), 16, 1);
  EXPECT_FALSE(BbitFromWmh(s, 0).ok());
  EXPECT_FALSE(BbitFromWmh(s, 33).ok());
  EXPECT_TRUE(BbitFromWmh(s, 1).ok());
  EXPECT_TRUE(BbitFromWmh(s, 32).ok());
}

TEST(BbitWmhTest, StorageScalesWithBits) {
  const auto s = Sketch(TestVector(8, 0, 64), 64, 1);
  EXPECT_DOUBLE_EQ(BbitFromWmh(s, 16).value().StorageWords(),
                   64.0 * 48.0 / 64.0 + 1.0);
  EXPECT_DOUBLE_EQ(BbitFromWmh(s, 8).value().StorageWords(),
                   64.0 * 40.0 / 64.0 + 1.0);
}

TEST(BbitWmhTest, FingerprintsWithinWidth) {
  const auto s = Sketch(TestVector(9, 0, 64), 64, 1);
  const auto b8 = BbitFromWmh(s, 8).value();
  for (uint32_t fp : b8.fingerprints) EXPECT_LT(fp, 256u);
}

TEST(BbitWmhTest, TrueMatchesAlwaysCollide) {
  const auto a = TestVector(10, 0, 150);
  const auto b = TestVector(11, 75, 225);
  const auto sa = Sketch(a, 128, 5);
  const auto sb = Sketch(b, 128, 5);
  const auto ba = BbitFromWmh(sa, 12).value();
  const auto bb = BbitFromWmh(sb, 12).value();
  for (size_t i = 0; i < 128; ++i) {
    if (sa.hashes[i] == sb.hashes[i]) {
      EXPECT_EQ(ba.fingerprints[i], bb.fingerprints[i]) << i;
    }
  }
}

TEST(BbitWmhTest, FalsePositiveRateNearTwoToMinusB) {
  // Disjoint supports: every fingerprint collision is spurious.
  const auto a = TestVector(12, 0, 100);
  const auto b = TestVector(13, 500, 600);
  size_t collisions = 0;
  const size_t m = 256;
  const int kSeeds = 40;
  const uint32_t bits = 8;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto ba = BbitFromWmh(Sketch(a, m, seed), bits).value();
    const auto bb = BbitFromWmh(Sketch(b, m, seed), bits).value();
    for (size_t i = 0; i < m; ++i) {
      collisions += (ba.fingerprints[i] == bb.fingerprints[i]);
    }
  }
  const double rate = static_cast<double>(collisions) / (m * kSeeds);
  EXPECT_NEAR(rate, 1.0 / 256.0, 1.5e-3);
}

TEST(BbitWmhTest, EstimateReasonableAtSixteenBits) {
  const auto a = TestVector(14, 0, 200);
  const auto b = TestVector(15, 100, 300);
  const double truth = Dot(a, b);
  const double scale = a.Norm() * b.Norm();
  double err = 0.0;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto ba = BbitFromWmh(Sketch(a, 256, seed), 16).value();
    const auto bb = BbitFromWmh(Sketch(b, 256, seed), 16).value();
    err += std::fabs(EstimateBbitWmhInnerProduct(ba, bb).value() - truth) /
           scale;
  }
  EXPECT_LT(err / kSeeds, 0.1);
}

// Regression for the saturated-sentinel bias: the empty-slot sentinel
// h = 1.0 quantizes to ~0u, and dequantization must map that bucket back to
// exactly 1.0 — the mid-point rule would put it below 1.0 and bias the FM
// union estimate on sparse catalogs.
TEST(CompactWmhTest, SaturatedSentinelRoundTripsToExactlyOne) {
  // One genuine slot at hash 0.5, the rest empty sentinels. The estimate
  // must equal the closed form computed with the sentinel at exactly 1.0.
  const size_t m = 16;
  CompactWmhSketch s;
  s.norm = 2.0;
  s.seed = 1;
  s.L = 1024;
  s.dimension = 8;
  s.hashes.assign(m, ~uint32_t{0});
  s.values.assign(m, 0.0f);
  s.hashes[0] = uint32_t{1} << 31;  // QuantizeHash(0.5)
  s.values[0] = 1.0f;

  const double est = EstimateCompactWmhInnerProduct(s, s).value();
  const double min_hash_sum =
      15.0 + (static_cast<double>(uint32_t{1} << 31) + 0.5) / 4294967296.0;
  const double m_tilde = (16.0 / min_hash_sum - 1.0) / 1024.0;
  EXPECT_DOUBLE_EQ(est, s.norm * s.norm * (m_tilde / 16.0) * 1.0);
}

TEST(CompactWmhTest, AllEmptySlotsEstimateExactlyZeroUnion) {
  // With every slot at the sentinel, min_hash_sum = m exactly, so the FM
  // union size is 0 — and the clamp keeps m_tilde from going negative
  // under float rounding. Nonzero norms force the estimator through the FM
  // path instead of the zero-norm short-circuit.
  const size_t m = 32;
  CompactWmhSketch s;
  s.norm = 3.0;
  s.seed = 7;
  s.L = 4096;
  s.dimension = 16;
  s.hashes.assign(m, ~uint32_t{0});
  // Nonzero values make every sentinel slot a "match", so a nonzero
  // m_tilde (the pre-fix mid-point bias) would surface as a nonzero
  // estimate instead of being masked by an all-zero weighted sum.
  s.values.assign(m, 1.0f);
  const auto est = EstimateCompactWmhInnerProduct(s, s);
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  EXPECT_EQ(est.value(), 0.0);
}

TEST(CompactWmhTest, TruncationCommutesWithQuantization) {
  // Compact sketches are coordinate-wise, so a truncated compact sketch is
  // bit-identical to quantizing the truncated full-precision sketch.
  const auto full = Sketch(TestVector(20, 0, 150), 128, 9);
  const auto compact = CompactFromWmh(full);
  for (size_t m : {1u, 17u, 64u, 128u}) {
    const auto a = TruncatedCompactWmh(compact, m);
    const auto b = CompactFromWmh(TruncatedWmh(full, m));
    EXPECT_EQ(a.hashes, b.hashes) << m;
    EXPECT_EQ(a.values, b.values) << m;
    EXPECT_EQ(a.engine, b.engine) << m;
  }
  const auto bb = BbitFromWmh(full, 12).value();
  const auto tb = TruncatedBbitWmh(bb, 17);
  const auto fresh = BbitFromWmh(TruncatedWmh(full, 17), 12).value();
  EXPECT_EQ(tb.fingerprints, fresh.fingerprints);
  EXPECT_EQ(tb.values, fresh.values);
  EXPECT_EQ(tb.bits, fresh.bits);
}

TEST(BbitWmhTest, MismatchedWidthsRejected) {
  const auto s = Sketch(TestVector(16, 0, 64), 16, 1);
  const auto b8 = BbitFromWmh(s, 8).value();
  const auto b16 = BbitFromWmh(s, 16).value();
  EXPECT_FALSE(EstimateBbitWmhInnerProduct(b8, b16).ok());
}

}  // namespace
}  // namespace ipsketch
