#include "sketch/quantize.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/wmh_estimator.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector TestVector(uint64_t seed, uint64_t lo, uint64_t hi) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t i = lo; i < hi; ++i) {
    entries.push_back({i, 0.3 + rng.NextUnit() * (i % 8 == 0 ? 6.0 : 1.0)});
  }
  return SparseVector::MakeOrDie(1024, std::move(entries));
}

WmhSketch Sketch(const SparseVector& v, size_t m, uint64_t seed) {
  WmhOptions o;
  o.num_samples = m;
  o.seed = seed;
  o.L = 1 << 16;
  return SketchWmh(v, o).value();
}

TEST(CompactWmhTest, StorageIsOneWordPerSample) {
  const auto full = Sketch(TestVector(1, 0, 100), 64, 3);
  const auto compact = CompactFromWmh(full);
  EXPECT_DOUBLE_EQ(full.StorageWords(), 97.0);     // 1.5·64 + 1
  EXPECT_DOUBLE_EQ(compact.StorageWords(), 65.0);  // 1·64 + 1
}

TEST(CompactWmhTest, PreservesTrueMatches) {
  // True matches are equal doubles, which quantize equally: the compact
  // match count can never drop below the full-precision count.
  const auto a = TestVector(2, 0, 150);
  const auto b = TestVector(3, 75, 225);
  for (uint64_t seed = 0; seed < 10; ++seed) {
    const auto sa = Sketch(a, 128, seed);
    const auto sb = Sketch(b, 128, seed);
    const auto ca = CompactFromWmh(sa);
    const auto cb = CompactFromWmh(sb);
    size_t full_matches = 0, compact_matches = 0;
    for (size_t i = 0; i < 128; ++i) {
      full_matches += (sa.hashes[i] == sb.hashes[i]);
      compact_matches += (ca.hashes[i] == cb.hashes[i]);
    }
    EXPECT_GE(compact_matches, full_matches) << "seed " << seed;
  }
}

TEST(CompactWmhTest, EstimateTracksFullPrecision) {
  const auto a = TestVector(4, 0, 200);
  const auto b = TestVector(5, 100, 300);
  const double truth = Dot(a, b);
  const double scale = a.Norm() * b.Norm();
  double full_err = 0.0, compact_err = 0.0;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto sa = Sketch(a, 256, seed);
    const auto sb = Sketch(b, 256, seed);
    full_err +=
        std::fabs(EstimateWmhInnerProduct(sa, sb).value() - truth) / scale;
    compact_err += std::fabs(EstimateCompactWmhInnerProduct(
                                 CompactFromWmh(sa), CompactFromWmh(sb))
                                 .value() -
                             truth) /
                   scale;
  }
  // 32-bit hashes + float32 values: nearly indistinguishable accuracy.
  EXPECT_LT(compact_err, full_err * 1.25 + 0.002 * kSeeds);
}

TEST(CompactWmhTest, CompatibilityChecks) {
  const auto v = TestVector(6, 0, 64);
  const auto s1 = CompactFromWmh(Sketch(v, 16, 1));
  const auto s2 = CompactFromWmh(Sketch(v, 16, 2));
  EXPECT_FALSE(EstimateCompactWmhInnerProduct(s1, s2).ok());
}

TEST(CompactWmhTest, ZeroVectorEstimatesZero) {
  SparseVector zero = SparseVector::FromDense(std::vector<double>(8, 0.0));
  WmhOptions o;
  o.num_samples = 16;
  const auto sz = CompactFromWmh(SketchWmh(zero, o).value());
  WmhOptions o2 = o;
  const auto sv = CompactFromWmh(
      SketchWmh(SparseVector::MakeOrDie(8, {{1, 2.0}}), o2).value());
  EXPECT_EQ(EstimateCompactWmhInnerProduct(sz, sv).value(), 0.0);
}

TEST(BbitWmhTest, ValidatesBitWidth) {
  const auto s = Sketch(TestVector(7, 0, 64), 16, 1);
  EXPECT_FALSE(BbitFromWmh(s, 0).ok());
  EXPECT_FALSE(BbitFromWmh(s, 33).ok());
  EXPECT_TRUE(BbitFromWmh(s, 1).ok());
  EXPECT_TRUE(BbitFromWmh(s, 32).ok());
}

TEST(BbitWmhTest, StorageScalesWithBits) {
  const auto s = Sketch(TestVector(8, 0, 64), 64, 1);
  EXPECT_DOUBLE_EQ(BbitFromWmh(s, 16).value().StorageWords(),
                   64.0 * 48.0 / 64.0 + 1.0);
  EXPECT_DOUBLE_EQ(BbitFromWmh(s, 8).value().StorageWords(),
                   64.0 * 40.0 / 64.0 + 1.0);
}

TEST(BbitWmhTest, FingerprintsWithinWidth) {
  const auto s = Sketch(TestVector(9, 0, 64), 64, 1);
  const auto b8 = BbitFromWmh(s, 8).value();
  for (uint32_t fp : b8.fingerprints) EXPECT_LT(fp, 256u);
}

TEST(BbitWmhTest, TrueMatchesAlwaysCollide) {
  const auto a = TestVector(10, 0, 150);
  const auto b = TestVector(11, 75, 225);
  const auto sa = Sketch(a, 128, 5);
  const auto sb = Sketch(b, 128, 5);
  const auto ba = BbitFromWmh(sa, 12).value();
  const auto bb = BbitFromWmh(sb, 12).value();
  for (size_t i = 0; i < 128; ++i) {
    if (sa.hashes[i] == sb.hashes[i]) {
      EXPECT_EQ(ba.fingerprints[i], bb.fingerprints[i]) << i;
    }
  }
}

TEST(BbitWmhTest, FalsePositiveRateNearTwoToMinusB) {
  // Disjoint supports: every fingerprint collision is spurious.
  const auto a = TestVector(12, 0, 100);
  const auto b = TestVector(13, 500, 600);
  size_t collisions = 0;
  const size_t m = 256;
  const int kSeeds = 40;
  const uint32_t bits = 8;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto ba = BbitFromWmh(Sketch(a, m, seed), bits).value();
    const auto bb = BbitFromWmh(Sketch(b, m, seed), bits).value();
    for (size_t i = 0; i < m; ++i) {
      collisions += (ba.fingerprints[i] == bb.fingerprints[i]);
    }
  }
  const double rate = static_cast<double>(collisions) / (m * kSeeds);
  EXPECT_NEAR(rate, 1.0 / 256.0, 1.5e-3);
}

TEST(BbitWmhTest, EstimateReasonableAtSixteenBits) {
  const auto a = TestVector(14, 0, 200);
  const auto b = TestVector(15, 100, 300);
  const double truth = Dot(a, b);
  const double scale = a.Norm() * b.Norm();
  double err = 0.0;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto ba = BbitFromWmh(Sketch(a, 256, seed), 16).value();
    const auto bb = BbitFromWmh(Sketch(b, 256, seed), 16).value();
    err += std::fabs(EstimateBbitWmhInnerProduct(ba, bb).value() - truth) /
           scale;
  }
  EXPECT_LT(err / kSeeds, 0.1);
}

TEST(BbitWmhTest, MismatchedWidthsRejected) {
  const auto s = Sketch(TestVector(16, 0, 64), 16, 1);
  const auto b8 = BbitFromWmh(s, 8).value();
  const auto b16 = BbitFromWmh(s, 16).value();
  EXPECT_FALSE(EstimateBbitWmhInnerProduct(b8, b16).ok());
}

}  // namespace
}  // namespace ipsketch
