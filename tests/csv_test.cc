#include "expt/csv.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream is(path);
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

TEST(WriteCsvTest, WritesHeaderAndRows) {
  const std::string path = TempPath("basic.csv");
  ASSERT_TRUE(WriteCsv(path, {"a", "b"}, {{"1", "2"}, {"3", "4"}}).ok());
  EXPECT_EQ(ReadAll(path), "a,b\n1,2\n3,4\n");
  std::remove(path.c_str());
}

TEST(WriteCsvTest, QuotesSpecialCells) {
  const std::string path = TempPath("quoted.csv");
  ASSERT_TRUE(WriteCsv(path, {"x"}, {{"has,comma"}, {"has\"quote"}}).ok());
  const std::string out = ReadAll(path);
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(WriteCsvTest, BadPathFails) {
  EXPECT_FALSE(WriteCsv("/nonexistent-dir/x.csv", {"a"}, {}).ok());
}

TEST(WriteSweepCsvTest, RoundTripsSweep) {
  SweepResult r;
  r.method_names = {"JL", "WMH"};
  r.storage_words = {100, 200};
  r.mean_errors = {{0.5, 0.25}, {0.125, 0.0625}};
  const std::string path = TempPath("sweep.csv");
  ASSERT_TRUE(WriteSweepCsv(path, r).ok());
  const std::string out = ReadAll(path);
  EXPECT_EQ(out,
            "storage_words,JL,WMH\n"
            "100,0.5,0.125\n"
            "200,0.25,0.0625\n");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ipsketch
