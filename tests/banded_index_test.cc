// BandedIndex + index-aware QueryEngine: listener attach/replay coherence
// under insert/erase/replace, banded and slab-scan top-k against the exact
// scan (slab-scan must be bit-identical; banded must find planted
// neighbors), TopK edge cases on both paths, deterministic tie-breaks,
// null-index fallback accounting, recall probes, and a concurrent
// insert/erase/query stress the TSAN job runs.

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "index/banded_index.h"
#include "service/metrics.h"
#include "service/query_engine.h"
#include "service/sketch_store.h"
#include "service/thread_pool.h"

namespace ipsketch {
namespace {

constexpr uint64_t kDim = 512;

SketchStoreOptions SmallStoreOptions(const std::string& family = "wmh") {
  SketchStoreOptions opts;
  opts.family = family;
  opts.sketch.dimension = kDim;
  opts.sketch.num_samples = 64;
  opts.sketch.seed = 42;
  opts.num_shards = 8;
  return opts;
}

// A deterministic random sparse vector with ~24 non-zeros.
SparseVector RandomVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDim, 24, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDim, std::move(entries));
}

SketchStore MakeFilledStore(size_t count, uint64_t seed_base = 100) {
  auto made = SketchStore::Make(SmallStoreOptions());
  IPS_CHECK(made.ok());
  SketchStore store = std::move(made).value();
  for (size_t i = 0; i < count; ++i) {
    IPS_CHECK(store.BuildAndInsert(i + 1, RandomVector(seed_base + i)).ok());
  }
  return store;
}

uint64_t CounterValue(const std::string& name) {
  return metrics::MetricsRegistry::Global().GetCounter(name, "").Value();
}

TEST(BandedLshParamsTest, ValidateEnforcesTheBandsTimesRowsBudget) {
  EXPECT_TRUE((BandedLshParams{16, 4}).Validate(64).ok());
  EXPECT_TRUE((BandedLshParams{1, 1}).Validate(1).ok());
  EXPECT_TRUE((BandedLshParams{21, 3}).Validate(64).ok());  // 63 ≤ 64
  EXPECT_EQ((BandedLshParams{0, 4}).Validate(64).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((BandedLshParams{4, 0}).Validate(64).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ((BandedLshParams{17, 4}).Validate(64).code(),
            StatusCode::kInvalidArgument);  // 68 > 64
}

TEST(BandedIndexTest, MakeAttachedRejectsNonBandingFamilies) {
  for (const char* family : {"kmv", "cs", "jl"}) {
    SCOPED_TRACE(family);
    auto made = SketchStore::Make(SmallStoreOptions(family));
    ASSERT_TRUE(made.ok());
    SketchStore store = std::move(made).value();
    auto index = BandedIndex::MakeAttached(&store, {16, 4});
    EXPECT_EQ(index.status().code(), StatusCode::kFailedPrecondition);
  }
}

TEST(BandedIndexTest, AttachReplaysResidentSketchesExactlyOnce) {
  SketchStore store = MakeFilledStore(37);
  auto index = BandedIndex::MakeAttached(&store, {16, 4});
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  EXPECT_EQ(index.value()->size(), store.size());
  EXPECT_EQ(index.value()->size(), 37u);
}

TEST(BandedIndexTest, OnlyOneListenerMayAttach) {
  SketchStore store = MakeFilledStore(5);
  auto made = BandedIndex::MakeAttached(&store, {16, 4});
  ASSERT_TRUE(made.ok());
  std::unique_ptr<BandedIndex> first = std::move(made).value();
  auto second = BandedIndex::MakeAttached(&store, {8, 8});
  EXPECT_EQ(second.status().code(), StatusCode::kFailedPrecondition);
  // Compactify must refuse too: it would swap the family out from under
  // the attached mirror.
  EXPECT_EQ(store.CompactifyInPlace("wmh_compact").code(),
            StatusCode::kFailedPrecondition);
  // Destroying the index detaches; the slot frees up.
  first.reset();
  auto third = BandedIndex::MakeAttached(&store, {8, 8});
  EXPECT_TRUE(third.ok());
}

TEST(BandedIndexTest, IndexTracksInsertEraseAndReplace) {
  SketchStore store = MakeFilledStore(0);
  auto index = BandedIndex::MakeAttached(&store, {16, 4});
  ASSERT_TRUE(index.ok());

  for (size_t i = 0; i < 20; ++i) {
    ASSERT_TRUE(store.BuildAndInsert(i + 1, RandomVector(500 + i)).ok());
  }
  EXPECT_EQ(index.value()->size(), 20u);

  // Replace (insert under an existing id) must not grow the index.
  ASSERT_TRUE(store.BuildAndInsert(7, RandomVector(999)).ok());
  EXPECT_EQ(index.value()->size(), 20u);

  // Erase shrinks; erasing an absent id is NotFound and leaves it alone.
  ASSERT_TRUE(store.Erase(7).ok());
  ASSERT_TRUE(store.Erase(13).ok());
  EXPECT_EQ(store.Erase(7).code(), StatusCode::kNotFound);
  EXPECT_EQ(index.value()->size(), 18u);

  // The replaced sketch is queryable under its new contents: a banded
  // self-query for the replacement vector must surface id 7... after
  // reinserting it.
  ASSERT_TRUE(store.BuildAndInsert(7, RandomVector(999)).ok());
  QueryEngine engine(&store, nullptr, index.value().get(),
                     IndexPolicy::kBandedRerank);
  auto hits = engine.TopK(RandomVector(999), 1);
  ASSERT_TRUE(hits.ok());
  ASSERT_EQ(hits.value().size(), 1u);
  EXPECT_EQ(hits.value()[0].id, 7u);
}

TEST(BandedIndexTest, BandedSelfQueriesFindEveryStoredVector) {
  // A query identical to a stored vector collides on every sample, hence in
  // every band — the index is *guaranteed* to surface it, whatever (b, r).
  constexpr size_t kCorpus = 30;
  SketchStore store = MakeFilledStore(kCorpus);
  auto index = BandedIndex::MakeAttached(&store, {16, 4});
  ASSERT_TRUE(index.ok());
  QueryEngine engine(&store, nullptr, index.value().get(),
                     IndexPolicy::kBandedRerank);
  for (size_t i = 0; i < kCorpus; ++i) {
    auto hits = engine.TopK(RandomVector(100 + i), 1);
    ASSERT_TRUE(hits.ok());
    ASSERT_EQ(hits.value().size(), 1u) << "query " << i;
    EXPECT_EQ(hits.value()[0].id, i + 1) << "query " << i;
  }
}

TEST(BandedIndexTest, SlabScanMatchesExactScanBitForBit) {
  constexpr size_t kCorpus = 50;  // > num_shards, so every shard is populated
  SketchStore store = MakeFilledStore(kCorpus);
  auto index = BandedIndex::MakeAttached(&store, {16, 4});
  ASSERT_TRUE(index.ok());
  ThreadPool pool(4);
  QueryEngine exact(&store, &pool);
  QueryEngine slab(&store, &pool, index.value().get(), IndexPolicy::kSlabScan);
  for (uint64_t seed : {1u, 2u, 3u}) {
    const SparseVector query = RandomVector(9000 + seed);
    for (size_t k : {1u, 10u, 17u}) {
      auto a = exact.TopK(query, k);
      auto b = slab.TopK(query, k);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      ASSERT_EQ(a.value().size(), b.value().size());
      for (size_t i = 0; i < a.value().size(); ++i) {
        EXPECT_EQ(a.value()[i].id, b.value()[i].id) << "rank " << i;
        EXPECT_EQ(std::bit_cast<uint64_t>(a.value()[i].estimate),
                  std::bit_cast<uint64_t>(b.value()[i].estimate))
            << "rank " << i;
      }
    }
  }
}

TEST(BandedIndexTest, TopKEdgeCasesOnExactSlabAndBandedPaths) {
  SketchStore empty_store = MakeFilledStore(0);
  auto empty_index = BandedIndex::MakeAttached(&empty_store, {16, 4});
  ASSERT_TRUE(empty_index.ok());
  constexpr size_t kCorpus = 23;  // spans all 8 shards unevenly
  SketchStore store = MakeFilledStore(kCorpus);
  auto index = BandedIndex::MakeAttached(&store, {16, 4});
  ASSERT_TRUE(index.ok());
  const SparseVector query = RandomVector(777);

  const IndexPolicy policies[] = {IndexPolicy::kExactScan,
                                  IndexPolicy::kSlabScan,
                                  IndexPolicy::kBandedRerank};
  for (IndexPolicy policy : policies) {
    SCOPED_TRACE(static_cast<int>(policy));
    QueryEngine on_empty(&empty_store, nullptr, empty_index.value().get(),
                         policy);
    QueryEngine engine(&store, nullptr, index.value().get(), policy);

    // Empty store: no hits at any k.
    for (size_t k : {0u, 1u, 10u}) {
      auto hits = on_empty.TopK(query, k);
      ASSERT_TRUE(hits.ok());
      EXPECT_TRUE(hits.value().empty()) << "k=" << k;
    }

    // k = 0: always empty.
    auto none = engine.TopK(query, 0);
    ASSERT_TRUE(none.ok());
    EXPECT_TRUE(none.value().empty());

    // k > corpus: at most the corpus comes back (exact/slab return all of
    // it; banded returns its candidates), sorted best-first with no
    // duplicate ids.
    auto all = engine.TopK(query, kCorpus + 100);
    ASSERT_TRUE(all.ok());
    EXPECT_LE(all.value().size(), kCorpus);
    if (policy != IndexPolicy::kBandedRerank) {
      EXPECT_EQ(all.value().size(), kCorpus);
    }
    for (size_t i = 1; i < all.value().size(); ++i) {
      EXPECT_GE(all.value()[i - 1].estimate, all.value()[i].estimate);
      EXPECT_NE(all.value()[i - 1].id, all.value()[i].id);
    }

    // k mid-corpus (crosses shard boundaries, 23 ids over 8 shards): the
    // result is the k-prefix of the full ranking.
    auto some = engine.TopK(query, 9);
    ASSERT_TRUE(some.ok());
    ASSERT_LE(some.value().size(), 9u);
    for (size_t i = 0; i < some.value().size(); ++i) {
      EXPECT_EQ(some.value()[i].id, all.value()[i].id) << "rank " << i;
      EXPECT_EQ(std::bit_cast<uint64_t>(some.value()[i].estimate),
                std::bit_cast<uint64_t>(all.value()[i].estimate));
    }
  }
}

TEST(BandedIndexTest, TiedEstimatesBreakTowardSmallerIdsOnEveryPath) {
  // The same vector under many ids produces exactly equal estimates; the
  // deterministic tie-break (core/similarity_search.h BetterHit) must hand
  // back the numerically smallest ids, in order, on every path — this pins
  // result stability across thread counts, shard orders, and policies.
  SketchStore store = MakeFilledStore(0);
  auto index = BandedIndex::MakeAttached(&store, {16, 4});
  ASSERT_TRUE(index.ok());
  const SparseVector vec = RandomVector(4242);
  const std::vector<uint64_t> ids = {90, 12, 55, 3, 71, 28, 41, 66, 17, 84};
  for (uint64_t id : ids) {
    ASSERT_TRUE(store.BuildAndInsert(id, vec).ok());
  }
  ThreadPool pool(4);
  const IndexPolicy policies[] = {IndexPolicy::kExactScan,
                                  IndexPolicy::kSlabScan,
                                  IndexPolicy::kBandedRerank};
  for (IndexPolicy policy : policies) {
    SCOPED_TRACE(static_cast<int>(policy));
    for (ThreadPool* p : {static_cast<ThreadPool*>(nullptr), &pool}) {
      QueryEngine engine(&store, p, index.value().get(), policy);
      auto hits = engine.TopK(vec, 4);
      ASSERT_TRUE(hits.ok());
      ASSERT_EQ(hits.value().size(), 4u);
      EXPECT_EQ(hits.value()[0].id, 3u);
      EXPECT_EQ(hits.value()[1].id, 12u);
      EXPECT_EQ(hits.value()[2].id, 17u);
      EXPECT_EQ(hits.value()[3].id, 28u);
    }
  }
}

TEST(BandedIndexTest, NullIndexFallsBackToExactScanAndCounts) {
  SketchStore store = MakeFilledStore(15);
  QueryEngine exact(&store, nullptr);
  QueryEngine no_index(&store, nullptr, nullptr, IndexPolicy::kBandedRerank);
  const SparseVector query = RandomVector(31337);

  const uint64_t fallbacks_before = CounterValue("ipsketch_index_fallback_total");
  auto expected = exact.TopK(query, 5);
  auto got = no_index.TopK(query, 5);
  ASSERT_TRUE(expected.ok());
  ASSERT_TRUE(got.ok());
  ASSERT_EQ(expected.value().size(), got.value().size());
  for (size_t i = 0; i < expected.value().size(); ++i) {
    EXPECT_EQ(expected.value()[i].id, got.value()[i].id);
    EXPECT_EQ(std::bit_cast<uint64_t>(expected.value()[i].estimate),
              std::bit_cast<uint64_t>(got.value()[i].estimate));
  }
  EXPECT_EQ(CounterValue("ipsketch_index_fallback_total"),
            fallbacks_before + 1);
  // The dedicated-exact engine never counts a fallback.
  EXPECT_EQ(expected.value().size(), 5u);
}

TEST(BandedIndexTest, ProbeRecallIsBoundedAndPerfectOnSelfQueries) {
  SketchStore store = MakeFilledStore(40);
  auto index = BandedIndex::MakeAttached(&store, {16, 4});
  ASSERT_TRUE(index.ok());
  QueryEngine engine(&store, nullptr, index.value().get(),
                     IndexPolicy::kBandedRerank);
  QueryEngine no_index(&store, nullptr);
  EXPECT_EQ(no_index.ProbeRecall(RandomVector(1), 10).status().code(),
            StatusCode::kFailedPrecondition);

  const uint64_t expected_before =
      CounterValue("ipsketch_index_recall_probe_expected_total");
  const uint64_t hits_before =
      CounterValue("ipsketch_index_recall_probe_hits_total");
  uint64_t probes = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    auto recall = engine.ProbeRecall(RandomVector(6000 + seed), 10);
    ASSERT_TRUE(recall.ok());
    EXPECT_GE(recall.value(), 0.0);
    EXPECT_LE(recall.value(), 1.0);
    ++probes;
  }
  // A self-query's top-1 is the stored twin on both paths: recall 1.0.
  auto self = engine.ProbeRecall(RandomVector(100), 1);
  ASSERT_TRUE(self.ok());
  EXPECT_EQ(self.value(), 1.0);
  EXPECT_EQ(CounterValue("ipsketch_index_recall_probe_expected_total") -
                expected_before,
            probes * 10 + 1);
  EXPECT_GE(CounterValue("ipsketch_index_recall_probe_hits_total"),
            hits_before + 1);

  // Empty store: exact set is empty, recall defined as 1.0.
  SketchStore empty_store = MakeFilledStore(0);
  auto empty_index = BandedIndex::MakeAttached(&empty_store, {16, 4});
  ASSERT_TRUE(empty_index.ok());
  QueryEngine on_empty(&empty_store, nullptr, empty_index.value().get(),
                       IndexPolicy::kBandedRerank);
  auto empty_recall = on_empty.ProbeRecall(RandomVector(2), 10);
  ASSERT_TRUE(empty_recall.ok());
  EXPECT_EQ(empty_recall.value(), 1.0);
}

// TSAN coverage: writers mutating the store (and, through the listener, the
// index) while readers run banded, slab, and exact queries concurrently.
TEST(BandedIndexTest, ConcurrentInsertEraseAndQueryStress) {
  SketchStore store = MakeFilledStore(32);
  auto index = BandedIndex::MakeAttached(&store, {16, 4});
  ASSERT_TRUE(index.ok());
  ThreadPool pool(2);
  QueryEngine engine(&store, &pool, index.value().get(),
                     IndexPolicy::kBandedRerank);
  QueryEngine slab(&store, nullptr, index.value().get(),
                   IndexPolicy::kSlabScan);

  constexpr size_t kOps = 150;
  std::thread writer([&] {
    for (size_t i = 0; i < kOps; ++i) {
      // Half fresh ids, half replacements of the seeded range.
      const uint64_t id = (i % 2 == 0) ? 1000 + i : 1 + (i % 32);
      ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(7000 + i)).ok());
    }
  });
  std::thread eraser([&] {
    for (size_t i = 0; i < kOps; ++i) {
      store.Erase(1 + (i % 32));  // NotFound races are expected and fine
    }
  });
  std::thread banded_reader([&] {
    for (size_t i = 0; i < 40; ++i) {
      auto hits = engine.TopK(RandomVector(8000 + i), 5);
      ASSERT_TRUE(hits.ok());
    }
  });
  std::thread slab_reader([&] {
    for (size_t i = 0; i < 40; ++i) {
      auto hits = slab.TopK(RandomVector(8500 + i), 5);
      ASSERT_TRUE(hits.ok());
    }
  });
  writer.join();
  eraser.join();
  banded_reader.join();
  slab_reader.join();

  // Quiesced: the index mirrors the store exactly, and a full slab scan
  // agrees with the exact scan bit for bit.
  EXPECT_EQ(index.value()->size(), store.size());
  QueryEngine exact(&store, nullptr);
  auto a = exact.TopK(RandomVector(9999), 20);
  auto b = slab.TopK(RandomVector(9999), 20);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].id, b.value()[i].id);
    EXPECT_EQ(std::bit_cast<uint64_t>(a.value()[i].estimate),
              std::bit_cast<uint64_t>(b.value()[i].estimate));
  }
}

}  // namespace
}  // namespace ipsketch
