#include "vector/vector_ops.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"

namespace ipsketch {
namespace {

SparseVector V(std::vector<Entry> e, uint64_t dim = 16) {
  return SparseVector::MakeOrDie(dim, std::move(e));
}

TEST(DotTest, BasicOverlap) {
  const auto a = V({{1, 2.0}, {3, 1.0}, {5, -1.0}});
  const auto b = V({{3, 4.0}, {5, 2.0}, {7, 9.0}});
  EXPECT_DOUBLE_EQ(Dot(a, b), 1.0 * 4.0 + (-1.0) * 2.0);
}

TEST(DotTest, DisjointSupportsIsZero) {
  EXPECT_EQ(Dot(V({{0, 1.0}}), V({{1, 1.0}})), 0.0);
}

TEST(DotTest, EmptyVector) {
  EXPECT_EQ(Dot(SparseVector(), SparseVector()), 0.0);
  EXPECT_EQ(Dot(V({{0, 1.0}}), SparseVector::FromDense({0.0})), 0.0);
}

TEST(DotTest, Symmetric) {
  const auto a = V({{1, 2.0}, {4, -3.0}});
  const auto b = V({{1, 5.0}, {4, 7.0}, {9, 1.0}});
  EXPECT_DOUBLE_EQ(Dot(a, b), Dot(b, a));
}

TEST(DotTest, MatchesFigure3Example) {
  // The worked example of Figures 2-3: ⟨x_VA, x_VB⟩ over the join keys
  // {4, 5, 8, 11} = 6·5 + 1·1 + 2·2 + 3·2.5 = 42.5.
  const auto x_va = V({{1, 6.0}, {3, 2.0}, {4, 6.0}, {5, 1.0}, {6, 4.0},
                       {7, 2.0}, {8, 2.0}, {9, 8.0}, {11, 3.0}},
                      17);
  const auto x_vb = V({{2, 1.0}, {4, 5.0}, {5, 1.0}, {8, 2.0}, {10, 4.0},
                       {11, 2.5}, {12, 6.0}, {15, 6.0}, {16, 3.7}},
                      17);
  EXPECT_DOUBLE_EQ(Dot(x_va, x_vb), 42.5);
}

TEST(SupportTest, IntersectionAndUnionSizes) {
  const auto a = V({{1, 1.0}, {2, 1.0}, {3, 1.0}});
  const auto b = V({{2, 1.0}, {3, 1.0}, {4, 1.0}, {5, 1.0}});
  EXPECT_EQ(SupportIntersectionSize(a, b), 2u);
  EXPECT_EQ(SupportUnionSize(a, b), 5u);
  EXPECT_DOUBLE_EQ(SupportJaccard(a, b), 2.0 / 5.0);
  EXPECT_DOUBLE_EQ(OverlapRatio(a, b), 2.0 / 4.0);
}

TEST(SupportTest, EmptyConventions) {
  SparseVector e;
  EXPECT_EQ(SupportIntersectionSize(e, e), 0u);
  EXPECT_EQ(SupportJaccard(e, e), 0.0);
  EXPECT_EQ(OverlapRatio(e, e), 0.0);
}

TEST(RestrictTest, KeepsOnlySharedIndicesWithAValues) {
  const auto a = V({{1, 10.0}, {2, 20.0}, {3, 30.0}});
  const auto b = V({{2, -1.0}, {3, -2.0}, {4, -3.0}});
  const auto aI = RestrictToIntersection(a, b);
  EXPECT_EQ(aI.nnz(), 2u);
  EXPECT_EQ(aI.Get(2), 20.0);
  EXPECT_EQ(aI.Get(3), 30.0);
  EXPECT_EQ(aI.Get(1), 0.0);
  EXPECT_EQ(aI.dimension(), a.dimension());
}

TEST(IntersectionNormsTest, MatchesRestrictedNorms) {
  const auto a = V({{1, 1.0}, {2, 2.0}, {3, 3.0}});
  const auto b = V({{2, 5.0}, {3, 6.0}, {7, 7.0}});
  const IntersectionNorms in = ComputeIntersectionNorms(a, b);
  EXPECT_DOUBLE_EQ(in.a_norm, RestrictToIntersection(a, b).Norm());
  EXPECT_DOUBLE_EQ(in.b_norm, RestrictToIntersection(b, a).Norm());
}

TEST(BoundsTest, Theorem2NeverExceedsFact1) {
  // Property sweep: over random sparse pairs, the Theorem 2 error scale is
  // always ≤ the Fact 1 scale, and equals it when supports coincide.
  for (uint64_t seed = 0; seed < 20; ++seed) {
    SyntheticPairOptions opt;
    opt.dimension = 500;
    opt.nnz = 80;
    opt.overlap = (seed % 5) * 0.25;
    opt.seed = seed;
    auto pair = GenerateSyntheticPair(opt).value();
    EXPECT_LE(Theorem2Bound(pair.a, pair.b),
              Fact1Bound(pair.a, pair.b) * (1 + 1e-12))
        << "seed " << seed;
  }
}

TEST(BoundsTest, EqualSupportsMakeBoundsEqual) {
  const auto a = V({{1, 2.0}, {2, -1.0}});
  const auto b = V({{1, 3.0}, {2, 5.0}});
  EXPECT_DOUBLE_EQ(Theorem2Bound(a, b), Fact1Bound(a, b));
}

TEST(BoundsTest, DisjointSupportsGiveZeroTheorem2) {
  const auto a = V({{1, 2.0}});
  const auto b = V({{2, 3.0}});
  EXPECT_EQ(Theorem2Bound(a, b), 0.0);
  EXPECT_GT(Fact1Bound(a, b), 0.0);
}

TEST(BoundsTest, BinaryVectorsMatchSetBound) {
  // For binary vectors, Theorem 2's scale equals √(max(|A|,|B|)·|A∩B|)
  // (§2 of the paper).
  const auto a = V({{1, 1.0}, {2, 1.0}, {3, 1.0}, {4, 1.0}});
  const auto b = V({{3, 1.0}, {4, 1.0}, {5, 1.0}});
  const double expected = std::sqrt(4.0 * 2.0);
  EXPECT_DOUBLE_EQ(Theorem2Bound(a, b), expected);
}

TEST(CosineTest, ParallelAndOrthogonal) {
  const auto a = V({{0, 1.0}, {1, 1.0}});
  EXPECT_NEAR(CosineSimilarity(a, a.Scaled(7.0)), 1.0, 1e-12);
  EXPECT_EQ(CosineSimilarity(V({{0, 1.0}}), V({{1, 1.0}})), 0.0);
  EXPECT_EQ(CosineSimilarity(a, SparseVector::FromDense({0, 0})), 0.0);
}

TEST(AddTest, MergesAndCancels) {
  const auto a = V({{1, 2.0}, {3, -1.0}});
  const auto b = V({{1, -2.0}, {2, 4.0}});
  auto sum = Add(a, b);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum.value().Get(1), 0.0);  // exact cancellation drops the entry
  EXPECT_EQ(sum.value().Get(2), 4.0);
  EXPECT_EQ(sum.value().Get(3), -1.0);
  EXPECT_EQ(sum.value().nnz(), 2u);
}

TEST(AddTest, DimensionMismatchFails) {
  EXPECT_FALSE(Add(V({{1, 1.0}}, 8), V({{1, 1.0}}, 9)).ok());
}

TEST(HadamardTest, ProductOnIntersection) {
  const auto a = V({{1, 2.0}, {2, 3.0}});
  const auto b = V({{2, 5.0}, {3, 7.0}});
  auto prod = Hadamard(a, b);
  ASSERT_TRUE(prod.ok());
  EXPECT_EQ(prod.value().nnz(), 1u);
  EXPECT_EQ(prod.value().Get(2), 15.0);
}

TEST(SquaredTest, SquaresEntries) {
  const auto v = Squared(V({{1, -3.0}, {2, 2.0}}));
  EXPECT_EQ(v.Get(1), 9.0);
  EXPECT_EQ(v.Get(2), 4.0);
}

TEST(SquaredTest, DotWithIndicatorGivesSumOfSquares) {
  // ⟨x_V², x_1[K]⟩ = Σ v² over joined keys — the reduction used for
  // post-join variance estimation (§1.2).
  const auto values = V({{1, 2.0}, {2, 3.0}, {5, 4.0}});
  const auto indicator = V({{1, 1.0}, {2, 1.0}, {9, 1.0}});
  EXPECT_DOUBLE_EQ(Dot(Squared(values), indicator), 4.0 + 9.0);
}

}  // namespace
}  // namespace ipsketch
