// Epoch-snapshot read path of SketchStore (PinShard / ShardView) and the
// batch top-k API that rides on it: copy-on-write publication semantics,
// RCU liveness of pinned views, zero shard-mutex reads, and coherence
// across CompactifyInPlace.

#include <atomic>
#include <cmath>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "service/metrics.h"
#include "service/query_engine.h"
#include "service/sketch_store.h"

namespace ipsketch {
namespace {

constexpr uint64_t kDim = 512;

SketchStoreOptions SmallStoreOptions(const std::string& family = "wmh") {
  SketchStoreOptions opts;
  opts.family = family;
  opts.sketch.dimension = kDim;
  opts.sketch.num_samples = 64;
  opts.sketch.seed = 42;
  opts.num_shards = 8;
  return opts;
}

// A deterministic random sparse vector with ~24 non-zeros.
SparseVector RandomVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDim, 24, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDim, std::move(entries));
}

SketchStore MakeStoreOrDie(const SketchStoreOptions& opts) {
  auto made = SketchStore::Make(opts);
  IPS_CHECK(made.ok());
  return std::move(made).value();
}

TEST(StoreSnapshotTest, EmptyStorePublishesEpochZeroViews) {
  SketchStore store = MakeStoreOrDie(SmallStoreOptions());
  for (size_t s = 0; s < store.num_shards(); ++s) {
    ShardViewPtr view = store.PinShard(s);
    ASSERT_NE(view, nullptr);
    EXPECT_EQ(view->epoch, 0u);
    EXPECT_TRUE(view->ids.empty());
    ASSERT_NE(view->family, nullptr);
    EXPECT_EQ(view->family->name(), "wmh");
    EXPECT_EQ(view->Find(123), nullptr);
  }
  EXPECT_EQ(store.PinStore().size(), store.num_shards());
}

TEST(StoreSnapshotTest, InsertPublishesSortedViewAndAdvancesEpoch) {
  SketchStore store = MakeStoreOrDie(SmallStoreOptions());
  for (uint64_t id = 0; id < 64; ++id) {
    ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(id)).ok());
  }
  size_t resident = 0;
  for (size_t s = 0; s < store.num_shards(); ++s) {
    ShardViewPtr view = store.PinShard(s);
    ASSERT_EQ(view->ids.size(), view->sketches.size());
    // One publication per insert into this shard.
    EXPECT_EQ(view->epoch, view->ids.size());
    for (size_t i = 0; i + 1 < view->ids.size(); ++i) {
      EXPECT_LT(view->ids[i], view->ids[i + 1]);
    }
    for (size_t i = 0; i < view->ids.size(); ++i) {
      EXPECT_EQ(store.ShardOf(view->ids[i]), s);
      EXPECT_EQ(view->Find(view->ids[i]), view->sketches[i].get());
    }
    resident += view->ids.size();
  }
  EXPECT_EQ(resident, 64u);
}

TEST(StoreSnapshotTest, EraseAndReplacePublishSuccessorViews) {
  SketchStore store = MakeStoreOrDie(SmallStoreOptions());
  ASSERT_TRUE(store.BuildAndInsert(7, RandomVector(1)).ok());
  const size_t s = store.ShardOf(7);
  ShardViewPtr v1 = store.PinShard(s);
  ASSERT_NE(v1->Find(7), nullptr);

  // Replace: new view holds a different sketch object under the same id.
  ASSERT_TRUE(store.BuildAndInsert(7, RandomVector(2)).ok());
  ShardViewPtr v2 = store.PinShard(s);
  EXPECT_GT(v2->epoch, v1->epoch);
  ASSERT_NE(v2->Find(7), nullptr);
  EXPECT_NE(v2->Find(7), v1->Find(7));
  EXPECT_EQ(v2->ids.size(), v1->ids.size());

  ASSERT_TRUE(store.Erase(7).ok());
  ShardViewPtr v3 = store.PinShard(s);
  EXPECT_GT(v3->epoch, v2->epoch);
  EXPECT_EQ(v3->Find(7), nullptr);
  // The pinned predecessors are immutable: they still serve the old epochs.
  EXPECT_NE(v1->Find(7), nullptr);
  EXPECT_NE(v2->Find(7), nullptr);
}

TEST(StoreSnapshotTest, PinnedViewKeepsSketchesAliveAcrossMutations) {
  SketchStore store = MakeStoreOrDie(SmallStoreOptions());
  ASSERT_TRUE(store.BuildAndInsert(1, RandomVector(1)).ok());
  ASSERT_TRUE(store.BuildAndInsert(2, RandomVector(2)).ok());
  ShardViewPtr va = store.PinShard(store.ShardOf(1));
  ShardViewPtr vb = store.PinShard(store.ShardOf(2));
  const AnySketch* a = va->Find(1);
  const AnySketch* b = vb->Find(2);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  // Erase both and churn the shards; the pinned epoch still estimates.
  ASSERT_TRUE(store.Erase(1).ok());
  ASSERT_TRUE(store.Erase(2).ok());
  for (uint64_t id = 100; id < 164; ++id) {
    ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(id)).ok());
  }
  auto est = va->family->Estimate(*a, *b);
  ASSERT_TRUE(est.ok());
  auto direct = QueryEngine(&store).EstimateInnerProduct(1, 2);
  EXPECT_FALSE(direct.ok());  // gone from the live store...
  EXPECT_TRUE(std::isfinite(est.value()));  // ...but the pin still serves
}

TEST(StoreSnapshotTest, SnapshotReadsTakeZeroShardMutexAcquisitions) {
  if (!metrics::kCompiledIn) {
    GTEST_SKIP() << "metrics compiled out; no scan-lock histogram to watch";
  }
  metrics::SetEnabledForTesting(true);
  SketchStore store = MakeStoreOrDie(SmallStoreOptions());
  for (uint64_t id = 0; id < 48; ++id) {
    ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(id)).ok());
  }
  auto& scan_lock = metrics::MetricsRegistry::Global().GetHistogram(
      "ipsketch_store_scan_lock_ns",
      "Shard-lock acquire plus hold time of in-place shard scans");

  QueryEngine snapshot_engine(&store);
  snapshot_engine.set_read_mode(ReadMode::kSnapshot);
  const uint64_t before = scan_lock.Count();
  for (int i = 0; i < 25; ++i) {
    auto hits = snapshot_engine.TopK(RandomVector(1000 + i), 5);
    ASSERT_TRUE(hits.status().ok());
    auto est = snapshot_engine.EstimateInnerProduct(1, 2);
    ASSERT_TRUE(est.ok());
    auto all = snapshot_engine.EstimateAgainstQuery(RandomVector(2000 + i));
    ASSERT_TRUE(all.status().ok());
  }
  // The whole read-only burst never touched a shard mutex.
  EXPECT_EQ(scan_lock.Count(), before);

  // Control: the locked path does count, so the histogram is live.
  QueryEngine locked_engine(&store);
  auto hits = locked_engine.TopK(RandomVector(99), 5);
  ASSERT_TRUE(hits.status().ok());
  EXPECT_GT(scan_lock.Count(), before);
}

TEST(StoreSnapshotTest, SnapshotModeMatchesLockedModeExactly) {
  SketchStore store = MakeStoreOrDie(SmallStoreOptions());
  for (uint64_t id = 0; id < 40; ++id) {
    ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(id)).ok());
  }
  QueryEngine locked(&store);
  QueryEngine snapshot(&store);
  snapshot.set_read_mode(ReadMode::kSnapshot);
  const SparseVector query = RandomVector(777);
  auto locked_hits = locked.TopK(query, 10);
  auto snapshot_hits = snapshot.TopK(query, 10);
  ASSERT_TRUE(locked_hits.status().ok());
  ASSERT_TRUE(snapshot_hits.status().ok());
  ASSERT_EQ(locked_hits.value().size(), snapshot_hits.value().size());
  for (size_t i = 0; i < locked_hits.value().size(); ++i) {
    EXPECT_EQ(locked_hits.value()[i].id, snapshot_hits.value()[i].id);
    EXPECT_EQ(locked_hits.value()[i].estimate,
              snapshot_hits.value()[i].estimate);
  }
  auto le = locked.EstimateInnerProduct(3, 5);
  auto se = snapshot.EstimateInnerProduct(3, 5);
  ASSERT_TRUE(le.ok());
  ASSERT_TRUE(se.ok());
  EXPECT_EQ(le.value(), se.value());
}

TEST(StoreSnapshotTest, CompactifyRepublishesCoherentViews) {
  SketchStore store = MakeStoreOrDie(SmallStoreOptions());
  for (uint64_t id = 0; id < 32; ++id) {
    ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(id)).ok());
  }
  const size_t s = store.ShardOf(1);
  ShardViewPtr old_view = store.PinShard(s);
  ASSERT_EQ(old_view->family->name(), "wmh");

  ASSERT_TRUE(store.CompactifyInPlace("wmh_compact").ok());

  // New pins serve the compact family + compact sketches coherently.
  ShardViewPtr new_view = store.PinShard(s);
  EXPECT_GT(new_view->epoch, old_view->epoch);
  ASSERT_EQ(new_view->family->name(), "wmh_compact");
  ASSERT_EQ(new_view->ids, old_view->ids);
  for (size_t i = 0; i + 1 < new_view->ids.size(); ++i) {
    auto est = new_view->family->Estimate(*new_view->sketches[i],
                                          *new_view->sketches[i + 1]);
    EXPECT_TRUE(est.ok()) << est.status().ToString();
  }
  // The pre-compactify pin stays internally consistent: its own family
  // still understands its own (full-precision) sketches.
  for (size_t i = 0; i + 1 < old_view->ids.size(); ++i) {
    auto est = old_view->family->Estimate(*old_view->sketches[i],
                                          *old_view->sketches[i + 1]);
    EXPECT_TRUE(est.ok()) << est.status().ToString();
  }
}

TEST(StoreSnapshotTest, TopKSketchBatchMatchesSingleQueries) {
  SketchStore store = MakeStoreOrDie(SmallStoreOptions());
  for (uint64_t id = 0; id < 40; ++id) {
    ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(id)).ok());
  }
  QueryEngine engine(&store);
  engine.set_read_mode(ReadMode::kSnapshot);

  auto sketcher = store.family().MakeSketcher();
  ASSERT_TRUE(sketcher.ok());
  std::vector<std::unique_ptr<AnySketch>> queries;
  for (int i = 0; i < 5; ++i) {
    auto sketch = store.family().NewSketch();
    ASSERT_TRUE(
        sketcher.value()->Sketch(RandomVector(500 + i), sketch.get()).ok());
    queries.push_back(std::move(sketch));
  }
  std::vector<const AnySketch*> query_ptrs;
  std::vector<size_t> ks;
  for (size_t i = 0; i < queries.size(); ++i) {
    query_ptrs.push_back(queries[i].get());
    ks.push_back(3 + i);  // mixed per-query k
  }
  auto batch = engine.TopKSketchBatch(query_ptrs, ks);
  ASSERT_EQ(batch.size(), queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    ASSERT_TRUE(batch[i].ok()) << batch[i].status().ToString();
    auto single = engine.TopKSketch(*queries[i], ks[i]);
    ASSERT_TRUE(single.status().ok());
    ASSERT_EQ(batch[i].value().size(), single.value().size());
    for (size_t j = 0; j < single.value().size(); ++j) {
      EXPECT_EQ(batch[i].value()[j].id, single.value()[j].id);
      EXPECT_EQ(batch[i].value()[j].estimate, single.value()[j].estimate);
    }
  }
}

TEST(StoreSnapshotTest, TopKSketchBatchIsolatesBadSlots) {
  SketchStore store = MakeStoreOrDie(SmallStoreOptions());
  for (uint64_t id = 0; id < 16; ++id) {
    ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(id)).ok());
  }
  QueryEngine engine(&store);

  auto good = store.Lookup(3);
  ASSERT_TRUE(good.ok());
  // A sketch from an incompatible family identity (different seed).
  SketchStoreOptions other_opts = SmallStoreOptions();
  other_opts.sketch.seed = 4242;
  SketchStore other = MakeStoreOrDie(other_opts);
  ASSERT_TRUE(other.BuildAndInsert(0, RandomVector(0)).ok());
  auto bad = other.Lookup(0);
  ASSERT_TRUE(bad.ok());

  std::vector<const AnySketch*> queries = {good.value().get(),
                                           bad.value().get(),
                                           good.value().get()};
  auto results = engine.TopKSketchBatch(queries, {5, 5, 5});
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].ok());
  ASSERT_FALSE(results[1].ok());
  EXPECT_EQ(results[1].status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[2].ok());
  // The healthy slots are unaffected by the bad one.
  ASSERT_EQ(results[0].value().size(), 5u);
  EXPECT_EQ(results[0].value()[0].id, 3u);  // the stored copy of itself
}

// TSAN fodder: writers publish epochs while readers pin and estimate.
TEST(StoreSnapshotTest, ConcurrentIngestAndSnapshotReads) {
  SketchStore store = MakeStoreOrDie(SmallStoreOptions());
  for (uint64_t id = 0; id < 16; ++id) {
    ASSERT_TRUE(store.BuildAndInsert(id, RandomVector(id)).ok());
  }
  std::atomic<bool> stop{false};
  std::atomic<int> read_errors{0};
  std::thread writer([&] {
    for (uint64_t round = 0; round < 40; ++round) {
      for (uint64_t id = 16; id < 32; ++id) {
        IPS_CHECK(store.BuildAndInsert(id, RandomVector(id + round)).ok());
      }
      for (uint64_t id = 16; id < 32; id += 2) {
        IPS_CHECK(store.Erase(id).ok());
      }
    }
    stop.store(true);
  });
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&, t] {
      QueryEngine engine(&store);
      engine.set_read_mode(ReadMode::kSnapshot);
      uint64_t last_epoch = 0;
      while (!stop.load()) {
        ShardViewPtr view = store.PinShard(static_cast<size_t>(t) %
                                           store.num_shards());
        if (view->epoch < last_epoch) read_errors.fetch_add(1);
        last_epoch = view->epoch;
        auto hits = engine.TopK(RandomVector(900 + t), 4);
        if (!hits.status().ok()) read_errors.fetch_add(1);
      }
    });
  }
  writer.join();
  for (auto& r : readers) r.join();
  EXPECT_EQ(read_errors.load(), 0);
}

}  // namespace
}  // namespace ipsketch
