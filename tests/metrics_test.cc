// Tests for the service metrics layer: counter/gauge/histogram semantics,
// log-bucket math, percentile edge cases, registry identity, the text/JSON
// renderers, QueryTrace, and a concurrent-recording stress that the TSAN CI
// job runs to prove the lock-free recording paths race-free.

#include "service/metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

namespace ipsketch {
namespace metrics {
namespace {

// Most assertions need instruments that actually record; in a
// -DIPSKETCH_METRICS=OFF build they are compiled to no-ops, so skip.
#define SKIP_IF_METRICS_COMPILED_OUT()                       \
  do {                                                       \
    if (!kCompiledIn) {                                      \
      GTEST_SKIP() << "metrics compiled out in this build";  \
    }                                                        \
  } while (0)

class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override { SetEnabledForTesting(true); }
  void TearDown() override { SetEnabledForTesting(true); }
};

// --- bucket math -----------------------------------------------------------

TEST(BucketMath, SmallValuesAreExact) {
  for (uint64_t v = 0; v < 4; ++v) {
    EXPECT_EQ(BucketIndex(v), v);
    EXPECT_EQ(BucketLowerBound(v), v);
  }
}

TEST(BucketMath, EveryValueFallsInsideItsBucket) {
  std::vector<uint64_t> probes = {4,    5,    7,    8,    15,   16,  17,
                                  100,  1000, 1023, 1024, 4096, 1u << 20,
                                  (1u << 20) + 17, 123456789};
  probes.push_back(uint64_t{1} << 39);
  for (uint64_t v : probes) {
    const size_t idx = BucketIndex(v);
    ASSERT_LT(idx, kNumBuckets);
    EXPECT_LE(BucketLowerBound(idx), v) << "v=" << v;
    if (idx + 1 < kNumBuckets) {
      EXPECT_LT(v, BucketLowerBound(idx + 1)) << "v=" << v;
    }
  }
}

TEST(BucketMath, BucketsAreMonotoneAndAtMost25PercentWide) {
  for (size_t idx = 0; idx + 1 < kNumBuckets; ++idx) {
    const uint64_t lo = BucketLowerBound(idx);
    const uint64_t hi = BucketLowerBound(idx + 1);
    ASSERT_LT(lo, hi) << "idx=" << idx;
    if (lo >= 4) {
      // Relative width (hi - lo) / lo ≤ 25%: one sub-bucket per quarter
      // power of two.
      EXPECT_LE(hi - lo, lo / 4 + 1) << "idx=" << idx;
    }
  }
}

TEST(BucketMath, HugeValuesLandInOverflowBucket) {
  EXPECT_EQ(BucketIndex(~uint64_t{0}), kNumBuckets - 1);
  EXPECT_EQ(BucketIndex(uint64_t{1} << 62), kNumBuckets - 1);
}

// --- counters and gauges ---------------------------------------------------

TEST_F(MetricsTest, CounterAccumulatesExactly) {
  SKIP_IF_METRICS_COMPILED_OUT();
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Add();
  c.Add(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST_F(MetricsTest, CounterIsExactUnderConcurrency) {
  SKIP_IF_METRICS_COMPILED_OUT();
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (size_t i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
}

TEST_F(MetricsTest, GaugeTracksSignedValue) {
  SKIP_IF_METRICS_COMPILED_OUT();
  Gauge g;
  g.Add(5);
  g.Add(-8);
  EXPECT_EQ(g.Value(), -3);
  g.Set(17);
  EXPECT_EQ(g.Value(), 17);
}

TEST_F(MetricsTest, DisabledInstrumentsRecordNothing) {
  SKIP_IF_METRICS_COMPILED_OUT();
  Counter c;
  Gauge g;
  Histogram h;
  SetEnabledForTesting(false);
  c.Add(100);
  g.Add(100);
  h.Record(100);
  SetEnabledForTesting(true);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.Count(), 0u);
  c.Add(1);
  EXPECT_EQ(c.Value(), 1u);
}

// --- histogram percentiles -------------------------------------------------

TEST_F(MetricsTest, EmptyHistogramReportsZero) {
  SKIP_IF_METRICS_COMPILED_OUT();
  Histogram h;
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.Percentile(50), 0.0);
  EXPECT_EQ(snap.Percentile(100), 0.0);
  EXPECT_EQ(snap.Mean(), 0.0);
}

TEST_F(MetricsTest, SingleSamplePercentilesClampToMax) {
  SKIP_IF_METRICS_COMPILED_OUT();
  Histogram h;
  h.Record(1000);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 1u);
  EXPECT_EQ(snap.max, 1000u);
  EXPECT_EQ(snap.Percentile(100), 1000.0);
  // Any percentile of one sample is that sample, to within the ≤ 25%
  // bucket-interpolation error (and never above the exact max).
  const double p50 = snap.Percentile(50);
  EXPECT_GE(p50, 750.0);
  EXPECT_LE(p50, 1000.0);
}

TEST_F(MetricsTest, UniformSamplesGiveSaneMedian) {
  SKIP_IF_METRICS_COMPILED_OUT();
  Histogram h;
  for (uint64_t v = 1; v <= 10000; ++v) h.Record(v);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 10000u);
  EXPECT_EQ(snap.max, 10000u);
  EXPECT_NEAR(snap.Percentile(50), 5000.0, 5000.0 * 0.25);
  EXPECT_NEAR(snap.Percentile(99), 9900.0, 9900.0 * 0.25);
  EXPECT_EQ(snap.Percentile(100), 10000.0);
  EXPECT_NEAR(snap.Mean(), 5000.5, 0.01);
}

TEST_F(MetricsTest, OverflowBucketUsesExactMaxAsUpperEdge) {
  SKIP_IF_METRICS_COMPILED_OUT();
  Histogram h;
  const uint64_t huge = uint64_t{1} << 62;
  h.Record(huge);
  h.Record(huge / 2);
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.max, huge);
  // Both samples sit in the overflow bucket; percentiles must stay within
  // [lower bound of overflow, exact max] rather than extrapolating.
  const double p99 = snap.Percentile(99);
  EXPECT_LE(p99, static_cast<double>(huge));
  EXPECT_GE(p99, static_cast<double>(BucketLowerBound(kNumBuckets - 1)));
}

TEST_F(MetricsTest, HistogramSumAndCountAreExact) {
  SKIP_IF_METRICS_COMPILED_OUT();
  Histogram h;
  uint64_t expect_sum = 0;
  for (uint64_t v : {0u, 1u, 3u, 17u, 1000u, 123456u}) {
    h.Record(v);
    expect_sum += v;
  }
  const HistogramSnapshot snap = h.Snapshot();
  EXPECT_EQ(snap.count, 6u);
  EXPECT_EQ(snap.sum, expect_sum);
}

// The TSAN-matrix stress: many threads hammer one histogram and one counter
// while a reader thread snapshots concurrently. Counts must be exact after
// the join, and no data race may be reported.
TEST_F(MetricsTest, ConcurrentRecordingIsRaceFreeAndExact) {
  SKIP_IF_METRICS_COMPILED_OUT();
  Histogram h;
  Counter c;
  constexpr size_t kThreads = 8;
  constexpr size_t kPerThread = 5000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      const HistogramSnapshot snap = h.Snapshot();
      ASSERT_LE(snap.count, kThreads * kPerThread);
      (void)c.Value();
    }
  });
  std::vector<std::thread> writers;
  for (size_t t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        h.Record(t * 1000 + i);
        c.Add(1);
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(c.Value(), kThreads * kPerThread);
  EXPECT_EQ(h.Snapshot().count, kThreads * kPerThread);
}

// --- registry --------------------------------------------------------------

TEST_F(MetricsTest, RegistryReturnsSameInstrumentForSameName) {
  auto& registry = MetricsRegistry::Global();
  Counter& a = registry.GetCounter("ipsketch_test_identity_total", "help");
  Counter& b = registry.GetCounter("ipsketch_test_identity_total");
  EXPECT_EQ(&a, &b);
  Histogram& ha = registry.GetHistogram("ipsketch_test_identity_ns");
  Histogram& hb = registry.GetHistogram("ipsketch_test_identity_ns");
  EXPECT_EQ(&ha, &hb);
}

TEST_F(MetricsTest, RenderTextEmitsPrometheusShape) {
  SKIP_IF_METRICS_COMPILED_OUT();
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("ipsketch_test_render_total", "a test counter")
      .Add(7);
  registry.GetGauge("ipsketch_test_render_gauge").Set(-2);
  registry.GetHistogram("ipsketch_test_render_ns").Record(100);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("# HELP ipsketch_test_render_total a test counter"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE ipsketch_test_render_total counter"),
            std::string::npos);
  EXPECT_NE(text.find("ipsketch_test_render_total 7"), std::string::npos);
  EXPECT_NE(text.find("ipsketch_test_render_gauge -2"), std::string::npos);
  EXPECT_NE(text.find("ipsketch_test_render_ns_count 1"), std::string::npos);
  EXPECT_NE(text.find("ipsketch_test_render_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
}

TEST_F(MetricsTest, RenderTextMergesEmbeddedLabels) {
  SKIP_IF_METRICS_COMPILED_OUT();
  auto& registry = MetricsRegistry::Global();
  registry.GetGauge("ipsketch_test_labeled{shard=\"0\"}").Set(3);
  registry.GetGauge("ipsketch_test_labeled{shard=\"1\"}").Set(4);
  const std::string text = registry.RenderText();
  EXPECT_NE(text.find("ipsketch_test_labeled{shard=\"0\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("ipsketch_test_labeled{shard=\"1\"} 4"),
            std::string::npos);
  // One TYPE header for the base name, not one per labeled instance.
  const size_t first = text.find("# TYPE ipsketch_test_labeled gauge");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(text.find("# TYPE ipsketch_test_labeled gauge", first + 1),
            std::string::npos);
}

TEST_F(MetricsTest, RenderJsonIsWellFormedAndCarriesValues) {
  SKIP_IF_METRICS_COMPILED_OUT();
  auto& registry = MetricsRegistry::Global();
  registry.GetCounter("ipsketch_test_json_total").Add(3);
  registry.GetHistogram("ipsketch_test_json_ns").Record(2048);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"ipsketch_test_json_total\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"ipsketch_test_json_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // Balanced braces — cheap well-formedness check without a JSON parser.
  int depth = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (ch == '"' && (i == 0 || json[i - 1] != '\\')) in_string = !in_string;
    if (in_string) continue;
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    ASSERT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
  EXPECT_FALSE(in_string);
}

// --- query trace -----------------------------------------------------------

TEST(QueryTraceTest, RecordsSpansAndTotals) {
  QueryTrace trace;
  trace.Add("sketch-query", 100, 1000);
  trace.Add("shard-scan", 1100, 5000);
  ASSERT_EQ(trace.size(), 2u);
  EXPECT_STREQ(trace.span(0).stage, "sketch-query");
  EXPECT_EQ(trace.span(1).duration_ns, 5000u);
  EXPECT_EQ(trace.total_ns(), 6000u);
  EXPECT_EQ(trace.dropped(), 0u);
  const std::string s = trace.ToString();
  EXPECT_NE(s.find("sketch-query="), std::string::npos);
  EXPECT_NE(s.find("total="), std::string::npos);
}

TEST(QueryTraceTest, DropsBeyondCapacityAndClears) {
  QueryTrace trace;
  for (size_t i = 0; i < QueryTrace::kMaxSpans + 3; ++i) {
    trace.Add("stage", i, 1);
  }
  EXPECT_EQ(trace.size(), QueryTrace::kMaxSpans);
  EXPECT_EQ(trace.dropped(), 3u);
  EXPECT_NE(trace.ToString().find("dropped"), std::string::npos);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
}

TEST(QueryTraceTest, ScopedSpanOnNullTraceIsHarmless) {
  ScopedSpan span(nullptr, "noop");  // must not crash or read the clock
}

}  // namespace
}  // namespace metrics
}  // namespace ipsketch
