#include "table/sketch_index.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ipsketch {
namespace {

ColumnSketchOptions Options() {
  ColumnSketchOptions o;
  o.num_samples = 256;
  o.seed = 7;
  o.key_domain = 1 << 16;
  o.L = 1 << 20;
  return o;
}

// A catalog with one clearly joinable table (shares 80% of the query's
// keys), one partially joinable (20%), and one disjoint.
struct Corpus {
  Table joinable;
  Table partial;
  Table disjoint;
  KeyedColumn query;
};

Corpus MakeCorpus() {
  Xoshiro256StarStar rng(13);
  std::vector<uint64_t> query_keys;
  std::vector<double> query_vals;
  for (uint64_t i = 0; i < 500; ++i) {
    query_keys.push_back(i);
    query_vals.push_back(rng.NextGaussian() + 5.0);
  }

  auto make_table = [&](const std::string& name, uint64_t lo) {
    std::vector<uint64_t> keys;
    std::vector<double> correlated, noise;
    for (uint64_t i = lo; i < lo + 500; ++i) {
      keys.push_back(i);
      const double q = i < 500 ? query_vals[i] : rng.NextGaussian();
      correlated.push_back(2.0 * q + rng.NextGaussian() * 0.1);
      noise.push_back(rng.NextGaussian());
    }
    return Table::MakeOrDie(name, keys, {"corr", "noise"},
                            {correlated, noise});
  };

  return {make_table("joinable", 100),   // keys 100..599: 80% overlap
          make_table("partial", 400),    // keys 400..899: 20% overlap
          make_table("disjoint", 5000),  // no overlap
          KeyedColumn::MakeOrDie("query", query_keys, query_vals)};
}

TEST(SketchIndexTest, AddTableSketchesAllColumns) {
  SketchIndex index(Options());
  const Corpus corpus = MakeCorpus();
  ASSERT_TRUE(index.AddTable(corpus.joinable).ok());
  EXPECT_EQ(index.size(), 2u);
  ASSERT_TRUE(index.AddTable(corpus.disjoint).ok());
  EXPECT_EQ(index.size(), 4u);
}

TEST(SketchIndexTest, SearchByJoinSizeRanksJoinableFirst) {
  SketchIndex index(Options());
  const Corpus corpus = MakeCorpus();
  ASSERT_TRUE(index.AddTable(corpus.joinable).ok());
  ASSERT_TRUE(index.AddTable(corpus.partial).ok());
  ASSERT_TRUE(index.AddTable(corpus.disjoint).ok());

  const auto hits =
      index.Search(corpus.query, RankBy::kJoinSize, 6).value();
  ASSERT_EQ(hits.size(), 6u);
  // The two "joinable" columns must outrank all "disjoint" columns.
  EXPECT_EQ(hits[0].column_name.substr(0, 8), "joinable");
  EXPECT_EQ(hits[1].column_name.substr(0, 8), "joinable");
  for (const auto& hit : hits) {
    if (hit.column_name.substr(0, 8) == "disjoint") {
      EXPECT_EQ(hit.stats.size, 0.0);
    }
  }
}

TEST(SketchIndexTest, SearchByCorrelationFindsCorrelatedColumn) {
  SketchIndex index(Options());
  const Corpus corpus = MakeCorpus();
  ASSERT_TRUE(index.AddTable(corpus.joinable).ok());

  const auto hits =
      index.Search(corpus.query, RankBy::kAbsCorrelation, 2).value();
  ASSERT_EQ(hits.size(), 2u);
  // The column built as 2·query + noise should beat the pure-noise column.
  EXPECT_EQ(hits[0].column_name, "joinable.corr");
  EXPECT_GT(hits[0].score, hits[1].score);
}

TEST(SketchIndexTest, TopKTruncates) {
  SketchIndex index(Options());
  const Corpus corpus = MakeCorpus();
  ASSERT_TRUE(index.AddTable(corpus.joinable).ok());
  ASSERT_TRUE(index.AddTable(corpus.partial).ok());
  EXPECT_EQ(index.Search(corpus.query, RankBy::kJoinSize, 3).value().size(),
            3u);
  EXPECT_EQ(index.Search(corpus.query, RankBy::kJoinSize, 100).value().size(),
            4u);
}

TEST(SketchIndexTest, AddSingleColumn) {
  SketchIndex index(Options());
  const Corpus corpus = MakeCorpus();
  ASSERT_TRUE(index.AddColumn(corpus.query).ok());
  EXPECT_EQ(index.size(), 1u);
  // Querying with itself: join size ≈ 500, correlation ≈ 1.
  const auto hits =
      index.Search(corpus.query, RankBy::kJoinSize, 1).value();
  EXPECT_NEAR(hits[0].stats.size, 500.0, 100.0);
}

TEST(SketchIndexTest, SearchScoresMatchRankCriterion) {
  SketchIndex index(Options());
  const Corpus corpus = MakeCorpus();
  ASSERT_TRUE(index.AddTable(corpus.partial).ok());
  const auto by_size =
      index.Search(corpus.query, RankBy::kJoinSize, 10).value();
  for (const auto& hit : by_size) {
    EXPECT_DOUBLE_EQ(hit.score, hit.stats.size);
  }
  const auto by_ip =
      index.Search(corpus.query, RankBy::kAbsInnerProduct, 10).value();
  for (const auto& hit : by_ip) {
    EXPECT_DOUBLE_EQ(hit.score, std::fabs(hit.stats.inner_product));
  }
}

}  // namespace
}  // namespace ipsketch
