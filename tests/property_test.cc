// Cross-cutting property tests: the paper's theoretical claims checked over
// parameterized families of inputs.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rounding.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "data/synthetic.h"
#include "expt/error.h"
#include "sketch/estimator_registry.h"
#include "sketch/jl_sketch.h"
#include "sketch/minhash.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

// ---------------------------------------------------------------------------
// Fact 5: the WMH collision probability equals the weighted Jaccard
// similarity, across sparsity/weight regimes.
// ---------------------------------------------------------------------------

struct Fact5Case {
  double overlap;
  double outlier_fraction;
};

class Fact5Test : public ::testing::TestWithParam<Fact5Case> {};

TEST_P(Fact5Test, MatchRateEqualsWeightedJaccard) {
  SyntheticPairOptions opt;
  opt.dimension = 600;
  opt.nnz = 120;
  opt.overlap = GetParam().overlap;
  opt.outlier_fraction = GetParam().outlier_fraction;
  opt.seed = 23;
  const auto pair = GenerateSyntheticPair(opt).value();

  const uint64_t L = 1 << 18;
  const double jw =
      WeightedJaccard(Round(pair.a, L).value(), Round(pair.b, L).value())
          .value();

  size_t matches = 0;
  const size_t m = 256;
  const int kSeeds = 25;
  for (int seed = 0; seed < kSeeds; ++seed) {
    WmhOptions w;
    w.num_samples = m;
    w.seed = seed;
    w.L = L;
    const auto sa = SketchWmh(pair.a, w).value();
    const auto sb = SketchWmh(pair.b, w).value();
    for (size_t i = 0; i < m; ++i) {
      matches += (sa.hashes[i] == sb.hashes[i]);
    }
  }
  const double rate = static_cast<double>(matches) / (m * kSeeds);
  const double sd = std::sqrt(jw * (1 - jw) / (m * kSeeds));
  EXPECT_NEAR(rate, jw, 5.0 * sd + 0.003)
      << "overlap=" << GetParam().overlap
      << " outliers=" << GetParam().outlier_fraction;
}

INSTANTIATE_TEST_SUITE_P(
    OverlapOutlierGrid, Fact5Test,
    ::testing::Values(Fact5Case{0.05, 0.0}, Fact5Case{0.05, 0.1},
                      Fact5Case{0.25, 0.0}, Fact5Case{0.25, 0.1},
                      Fact5Case{0.5, 0.1}, Fact5Case{1.0, 0.1},
                      Fact5Case{1.0, 0.0}));

// ---------------------------------------------------------------------------
// Table 1 ordering: on sparse inputs with outliers, the paper's headline —
// WMH's error scale beats linear sketching's, and the measured errors
// respect their respective scales.
// ---------------------------------------------------------------------------

class Table1Test : public ::testing::TestWithParam<double> {};

TEST_P(Table1Test, BoundOrderingHolds) {
  SyntheticPairOptions opt;
  opt.dimension = 4000;
  opt.nnz = 600;
  opt.overlap = GetParam();
  opt.seed = 29;
  const auto pair = GenerateSyntheticPair(opt).value();
  const double t2 = Theorem2Bound(pair.a, pair.b);
  const double f1 = Fact1Bound(pair.a, pair.b);
  EXPECT_LE(t2, f1 * (1 + 1e-12));
  if (GetParam() <= 0.1) {
    // With little overlap the WMH scale should be markedly better.
    EXPECT_LT(t2, 0.8 * f1);
  }
}

TEST_P(Table1Test, MeasuredErrorsTrackTheirScales) {
  SyntheticPairOptions opt;
  opt.dimension = 4000;
  opt.nnz = 600;
  opt.overlap = GetParam();
  opt.seed = 31;
  const auto pair = GenerateSyntheticPair(opt).value();
  const double truth = Dot(pair.a, pair.b);

  const size_t m = 128;
  double wmh_err = 0.0, jl_err = 0.0;
  const int kSeeds = 15;
  for (int seed = 0; seed < kSeeds; ++seed) {
    WmhOptions w;
    w.num_samples = m;
    w.seed = seed;
    const auto wa = SketchWmh(pair.a, w).value();
    const auto wb = SketchWmh(pair.b, w).value();
    wmh_err +=
        std::fabs(EstimateWmhInnerProduct(wa, wb).value() - truth);

    JlOptions j;
    j.num_rows = m;
    j.seed = seed;
    const auto ja = SketchJl(pair.a, j).value();
    const auto jb = SketchJl(pair.b, j).value();
    jl_err += std::fabs(EstimateJlInnerProduct(ja, jb).value() - truth);
  }
  wmh_err /= kSeeds;
  jl_err /= kSeeds;
  const double eps = 4.0 / std::sqrt(static_cast<double>(m));
  EXPECT_LE(wmh_err, eps * Theorem2Bound(pair.a, pair.b));
  EXPECT_LE(jl_err, eps * Fact1Bound(pair.a, pair.b));
}

INSTANTIATE_TEST_SUITE_P(OverlapSweep, Table1Test,
                         ::testing::Values(0.01, 0.05, 0.1, 0.5));

// ---------------------------------------------------------------------------
// Binary-vector specialization (§2): for binary inputs, Theorem 2 reduces to
// the set-intersection bound and WMH behaves like unweighted MinHash.
// ---------------------------------------------------------------------------

class BinaryVectorTest : public ::testing::TestWithParam<size_t> {};

TEST_P(BinaryVectorTest, WmhAndMhComparableOnBinaryInputs) {
  const size_t shift = GetParam();
  std::vector<Entry> ea, eb;
  for (uint64_t i = 0; i < 200; ++i) ea.push_back({i, 1.0});
  for (uint64_t i = shift; i < shift + 200; ++i) eb.push_back({i, 1.0});
  const auto a = SparseVector::MakeOrDie(1024, ea);
  const auto b = SparseVector::MakeOrDie(1024, eb);
  const double truth = Dot(a, b);

  double wmh_err = 0.0, mh_err = 0.0;
  const size_t m = 128;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    WmhOptions w;
    w.num_samples = m;
    w.seed = seed;
    wmh_err += std::fabs(EstimateWmhInnerProduct(SketchWmh(a, w).value(),
                                                 SketchWmh(b, w).value())
                             .value() -
                         truth);
    MhOptions mh;
    mh.num_samples = m;
    mh.seed = seed;
    mh_err += std::fabs(EstimateMhInnerProduct(SketchMh(a, mh).value(),
                                               SketchMh(b, mh).value())
                            .value() -
                        truth);
  }
  // On binary data the two methods share the same guarantee: mean errors
  // should be within a factor ~2.5 of each other.
  wmh_err /= kSeeds;
  mh_err /= kSeeds;
  if (truth > 0.0) {
    EXPECT_LT(wmh_err, 2.5 * mh_err + 0.05 * truth);
    EXPECT_LT(mh_err, 2.5 * wmh_err + 0.05 * truth);
  }
}

INSTANTIATE_TEST_SUITE_P(ShiftSweep, BinaryVectorTest,
                         ::testing::Values(20, 100, 180));

// ---------------------------------------------------------------------------
// The headline phenomenon (Figure 4 in miniature): with low overlap and
// outliers, WMH beats JL; with full overlap they are comparable.
// ---------------------------------------------------------------------------

TEST(HeadlineTest, WmhBeatsJlAtLowOverlap) {
  SyntheticPairOptions opt;
  opt.dimension = 10000;
  opt.nnz = 1000;
  opt.overlap = 0.02;
  opt.seed = 37;

  double wmh_err = 0.0, jl_err = 0.0;
  const int kPairs = 4, kSeeds = 4;
  for (int p = 0; p < kPairs; ++p) {
    opt.seed = 37 + p;
    const auto pair = GenerateSyntheticPair(opt).value();
    const double truth = Dot(pair.a, pair.b);
    const double np = pair.a.Norm() * pair.b.Norm();
    for (int seed = 0; seed < kSeeds; ++seed) {
      WmhOptions w;
      w.num_samples = 170;  // storage ≈ 256 words
      w.seed = seed;
      wmh_err += ScaledError(
          EstimateWmhInnerProduct(SketchWmh(pair.a, w).value(),
                                  SketchWmh(pair.b, w).value())
              .value(),
          truth, np);
      JlOptions j;
      j.num_rows = 256;
      j.seed = seed;
      jl_err += ScaledError(
          EstimateJlInnerProduct(SketchJl(pair.a, j).value(),
                                 SketchJl(pair.b, j).value())
              .value(),
          truth, np);
    }
  }
  EXPECT_LT(wmh_err, jl_err * 0.8);
}

}  // namespace
}  // namespace ipsketch
