#include "core/icws.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rounding.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector TestVector(uint64_t dim, uint64_t lo, uint64_t hi,
                        uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t i = lo; i < hi; ++i) {
    double v = 0.3 + rng.NextUnit() * (i % 6 == 0 ? 6.0 : 1.0);
    if (rng.NextUnit() < 0.5) v = -v;
    entries.push_back({i, v});
  }
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

IcwsSketch Sketch(const SparseVector& v, size_t m, uint64_t seed) {
  IcwsOptions o;
  o.num_samples = m;
  o.seed = seed;
  return SketchIcws(v, o).value();
}

TEST(IcwsOptionsTest, Validation) {
  IcwsOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.num_samples = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(IcwsTest, Deterministic) {
  const auto v = TestVector(128, 0, 64, 1);
  const auto s1 = Sketch(v, 32, 5);
  const auto s2 = Sketch(v, 32, 5);
  EXPECT_EQ(s1.fingerprints, s2.fingerprints);
  EXPECT_EQ(s1.values, s2.values);
}

TEST(IcwsTest, ScaleInvariantUpToNorm) {
  const auto v = TestVector(128, 0, 64, 2);
  const auto s1 = Sketch(v, 32, 5);
  const auto s2 = Sketch(v.Scaled(4.0), 32, 5);
  EXPECT_EQ(s1.fingerprints, s2.fingerprints);
  EXPECT_EQ(s1.values, s2.values);
  EXPECT_NEAR(s2.norm, 4.0 * s1.norm, 1e-9);
}

TEST(IcwsTest, EmptyVectorSketch) {
  SparseVector zero = SparseVector::FromDense(std::vector<double>(8, 0.0));
  const auto s = Sketch(zero, 16, 1);
  EXPECT_EQ(s.norm, 0.0);
  const auto v = TestVector(8, 0, 4, 3);
  EXPECT_EQ(EstimateIcwsInnerProduct(s, Sketch(v, 16, 1)).value(), 0.0);
}

TEST(IcwsTest, MatchProbabilityIsWeightedJaccard) {
  // The defining CWS property: P(sample matches) = weighted Jaccard of the
  // squared normalized vectors.
  const auto a = TestVector(200, 0, 120, 4);
  const auto b = TestVector(200, 60, 180, 5);
  const uint64_t L = 1 << 22;
  const double jw = WeightedJaccard(Round(a, L).value(),
                                    Round(b, L).value())
                        .value();
  size_t matches = 0;
  const size_t m = 512;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto sa = Sketch(a, m, seed);
    const auto sb = Sketch(b, m, seed);
    for (size_t i = 0; i < m; ++i) {
      matches += (sa.fingerprints[i] == sb.fingerprints[i]);
    }
  }
  const double rate = static_cast<double>(matches) / (m * kSeeds);
  EXPECT_NEAR(rate, jw, 0.15 * jw + 0.01);
}

TEST(IcwsTest, SamplesHeavyEntriesProportionally) {
  const auto v = SparseVector::MakeOrDie(
      16, {{0, 3.0}, {1, 1.0}, {2, 1.0}, {3, 1.0}});  // squared: 9/12 = 0.75
  const auto s = Sketch(v, 4000, 6);
  size_t heavy = 0;
  for (double value : s.values) {
    if (std::fabs(value) > 0.8) ++heavy;
  }
  EXPECT_NEAR(static_cast<double>(heavy) / 4000.0, 0.75, 0.03);
}

TEST(IcwsTest, EstimateAccuracyOnOverlappingVectors) {
  const auto a = TestVector(300, 0, 200, 7);
  const auto b = TestVector(300, 100, 300, 8);
  const double truth = Dot(a, b);
  double err = 0.0;
  const int kSeeds = 40;
  for (int seed = 0; seed < kSeeds; ++seed) {
    err += std::fabs(
        EstimateIcwsInnerProduct(Sketch(a, 256, seed), Sketch(b, 256, seed))
            .value() -
        truth);
  }
  const double scale = Theorem2Bound(a, b);
  EXPECT_LT(err / kSeeds, scale * 0.5);
}

TEST(IcwsTest, SelfEstimateNearlyExact) {
  const auto v = TestVector(200, 0, 150, 9);
  // Identical vectors: every sample matches, J̄ = 1, M = 1; the estimator
  // is then deterministic: ‖v‖²·(1/m)·Σ 1 = ‖v‖².
  const double est =
      EstimateIcwsInnerProduct(Sketch(v, 128, 3), Sketch(v, 128, 3)).value();
  EXPECT_NEAR(est, Dot(v, v), 1e-9 * Dot(v, v));
}

TEST(IcwsTest, CompatibilityChecks) {
  const auto v = TestVector(64, 0, 32, 10);
  EXPECT_FALSE(EstimateIcwsInnerProduct(Sketch(v, 16, 1), Sketch(v, 32, 1)).ok());
  EXPECT_FALSE(EstimateIcwsInnerProduct(Sketch(v, 16, 1), Sketch(v, 16, 2)).ok());
  const auto w = TestVector(65, 0, 32, 10);
  EXPECT_FALSE(EstimateIcwsInnerProduct(Sketch(v, 16, 1), Sketch(w, 16, 1)).ok());
}

TEST(IcwsTest, TruncationMatchesFreshSketch) {
  const auto a = TestVector(128, 0, 96, 11);
  const auto b = TestVector(128, 48, 128, 12);
  const auto sa = Sketch(a, 128, 13);
  const auto sb = Sketch(b, 128, 13);
  const double est_trunc =
      EstimateIcwsInnerProduct(TruncatedIcws(sa, 32), TruncatedIcws(sb, 32))
          .value();
  const double est_fresh =
      EstimateIcwsInnerProduct(Sketch(a, 32, 13), Sketch(b, 32, 13)).value();
  EXPECT_DOUBLE_EQ(est_trunc, est_fresh);
}

}  // namespace
}  // namespace ipsketch
