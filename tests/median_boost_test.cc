#include "core/median_boost.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector TestVector(uint64_t dim, uint64_t lo, uint64_t hi,
                        uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t i = lo; i < hi; ++i) {
    entries.push_back({i, 0.2 + rng.NextUnit() * (i % 9 == 0 ? 10.0 : 1.0)});
  }
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

TEST(MedianWmhOptionsTest, Validation) {
  MedianWmhOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.repetitions = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.repetitions = 3;
  o.base.num_samples = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(MedianWmhOptionsTest, RepetitionsForDeltaIsOddAndGrows) {
  const size_t r1 = MedianWmhOptions::RepetitionsForDelta(0.1);
  const size_t r2 = MedianWmhOptions::RepetitionsForDelta(0.01);
  const size_t r3 = MedianWmhOptions::RepetitionsForDelta(1e-6);
  EXPECT_EQ(r1 % 2, 1u);
  EXPECT_EQ(r2 % 2, 1u);
  EXPECT_EQ(r3 % 2, 1u);
  EXPECT_LE(r1, r2);
  EXPECT_LT(r2, r3);
  // O(log 1/δ): 1e-6 needs ≈ 6/0.0589·ln(10) ≈ a few hundred at most.
  EXPECT_LT(r3, 500u);
}

TEST(MedianWmhTest, SketchHasRequestedRepetitions) {
  MedianWmhOptions o;
  o.repetitions = 5;
  o.base.num_samples = 16;
  o.base.L = 1 << 12;
  const auto v = TestVector(128, 0, 64, 1);
  const auto s = SketchMedianWmh(v, o).value();
  EXPECT_EQ(s.repetitions.size(), 5u);
  // Sub-sketches must use distinct seeds.
  EXPECT_NE(s.repetitions[0].seed, s.repetitions[1].seed);
  EXPECT_NE(s.repetitions[1].seed, s.repetitions[2].seed);
  EXPECT_DOUBLE_EQ(s.StorageWords(), 5 * (1.5 * 16 + 1));
}

TEST(MedianWmhTest, EstimateRequiresMatchingShape) {
  MedianWmhOptions o3, o5;
  o3.repetitions = 3;
  o5.repetitions = 5;
  o3.base.num_samples = o5.base.num_samples = 8;
  const auto v = TestVector(64, 0, 32, 2);
  const auto s3 = SketchMedianWmh(v, o3).value();
  const auto s5 = SketchMedianWmh(v, o5).value();
  EXPECT_FALSE(EstimateMedianWmhInnerProduct(s3, s5).ok());
}

TEST(MedianWmhTest, MedianEstimateIsAccurate) {
  const auto a = TestVector(300, 0, 200, 3);
  const auto b = TestVector(300, 100, 300, 4);
  const double truth = Dot(a, b);
  MedianWmhOptions o;
  o.repetitions = 9;
  o.base.num_samples = 128;
  o.base.L = 1 << 14;
  o.base.seed = 77;
  const auto sa = SketchMedianWmh(a, o).value();
  const auto sb = SketchMedianWmh(b, o).value();
  const double est = EstimateMedianWmhInnerProduct(sa, sb).value();
  const double scale = Theorem2Bound(a, b) / std::sqrt(128.0);
  EXPECT_NEAR(est, truth, 5.0 * scale);
}

TEST(MedianWmhTest, MedianShrinksFailureTail) {
  // Count how often the error exceeds a threshold for single sketches vs
  // 9-way medians at the same per-repetition size. The median must fail
  // (strictly) less often on this workload.
  const auto a = TestVector(200, 0, 140, 5);
  const auto b = TestVector(200, 70, 200, 6);
  const double truth = Dot(a, b);
  const double threshold = Theorem2Bound(a, b) / 2.5;

  int single_fail = 0, median_fail = 0;
  const int kTrials = 40;
  for (int t = 0; t < kTrials; ++t) {
    MedianWmhOptions o;
    o.repetitions = 9;
    o.base.num_samples = 16;
    o.base.L = 1 << 12;
    o.base.seed = 1000 + t;
    const auto sa = SketchMedianWmh(a, o).value();
    const auto sb = SketchMedianWmh(b, o).value();
    const double med = EstimateMedianWmhInnerProduct(sa, sb).value();
    if (std::fabs(med - truth) > threshold) ++median_fail;
    const double single =
        EstimateWmhInnerProduct(sa.repetitions[0], sb.repetitions[0]).value();
    if (std::fabs(single - truth) > threshold) ++single_fail;
  }
  EXPECT_LE(median_fail, single_fail);
}

TEST(MedianWmhTest, ZeroVectorEstimatesZero) {
  MedianWmhOptions o;
  o.repetitions = 3;
  o.base.num_samples = 8;
  const auto v = TestVector(64, 0, 32, 7);
  SparseVector zero = SparseVector::FromDense(std::vector<double>(64, 0.0));
  const auto sv = SketchMedianWmh(v, o).value();
  const auto sz = SketchMedianWmh(zero, o).value();
  EXPECT_EQ(EstimateMedianWmhInnerProduct(sv, sz).value(), 0.0);
}

}  // namespace
}  // namespace ipsketch
