#include "common/hash.h"

#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ipsketch {
namespace {

TEST(MersenneTest, Mod31KnownValues) {
  EXPECT_EQ(ModMersenne31(0), 0u);
  EXPECT_EQ(ModMersenne31(kMersenne31), 0u);
  EXPECT_EQ(ModMersenne31(kMersenne31 + 5), 5u);
  EXPECT_EQ(ModMersenne31(2 * kMersenne31 + 7), 7u);
}

TEST(MersenneTest, Mod31MatchesBuiltinModulo) {
  SplitMix64 sm(3);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t x = sm.Next() >> 2;  // < 2^62, the documented domain
    EXPECT_EQ(ModMersenne31(x), x % kMersenne31);
  }
}

TEST(MersenneTest, Mod61MatchesBuiltinModulo) {
  SplitMix64 sm(5);
  for (int i = 0; i < 1000; ++i) {
    const unsigned __int128 x =
        (static_cast<unsigned __int128>(sm.Next()) << 57) ^ sm.Next();
    EXPECT_EQ(ModMersenne61(x),
              static_cast<uint64_t>(x % kMersenne61));
  }
}

TEST(CarterWegman31Test, DeterministicPerSeedStream) {
  CarterWegman31 h1(1, 2), h2(1, 2), h3(1, 3);
  EXPECT_EQ(h1.Hash(12345), h2.Hash(12345));
  EXPECT_NE(h1.a(), h3.a());
}

TEST(CarterWegman31Test, OutputBelowPrime) {
  CarterWegman31 h(7, 0);
  for (uint64_t x = 0; x < 1000; ++x) {
    EXPECT_LT(h.Hash(x * 2654435761u), kMersenne31);
  }
}

TEST(CarterWegman31Test, UnitRange) {
  CarterWegman31 h(7, 1);
  for (uint64_t x = 0; x < 1000; ++x) {
    const double u = h.HashUnit(x);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(CarterWegman31Test, LinearInInput) {
  // h(x) = a·x + b mod p is exactly linear: h(x+1) − h(x) = a (mod p).
  CarterWegman31 h(11, 4);
  const uint64_t d1 =
      (h.Hash(101) + kMersenne31 - h.Hash(100)) % kMersenne31;
  const uint64_t d2 =
      (h.Hash(5556) + kMersenne31 - h.Hash(5555)) % kMersenne31;
  EXPECT_EQ(d1, h.a() % kMersenne31);
  EXPECT_EQ(d1, d2);
}

TEST(CarterWegman61Test, DeterministicAndBelowPrime) {
  CarterWegman61 h(1, 2), same(1, 2);
  for (uint64_t x : {uint64_t{0}, uint64_t{1}, uint64_t{1} << 40,
                     kMersenne61 - 1}) {
    EXPECT_EQ(h.Hash(x), same.Hash(x));
    EXPECT_LT(h.Hash(x), kMersenne61);
  }
}

TEST(CarterWegman61Test, PairwiseCollisionRate) {
  // 2-universality holds in expectation over the draw of (a, b): averaged
  // over many functions from the family, distinct inputs collide in a
  // kBuckets-way reduction at rate ≈ 1/kBuckets.
  const int kBuckets = 8192;
  const int kStreams = 200;
  const int n = 400;
  size_t collisions = 0;
  for (int s = 0; s < kStreams; ++s) {
    CarterWegman61 h(13, s);
    std::map<uint32_t, int> counts;
    for (int i = 0; i < n; ++i) {
      const uint32_t b =
          static_cast<uint32_t>(h.Hash(Mix64(i)) % kBuckets);
      collisions += counts[b]++;
    }
  }
  const double expected =
      static_cast<double>(kStreams) * n * (n - 1) / 2.0 / kBuckets;  // ≈ 1948
  EXPECT_GT(static_cast<double>(collisions), expected * 0.7);
  EXPECT_LT(static_cast<double>(collisions), expected * 1.4);
}

TEST(CarterWegman61Test, UnitMeanIsHalf) {
  CarterWegman61 h(17, 3);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += h.HashUnit(i);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(SignHashTest, OnlyPlusMinusOne) {
  SignHash s(19, 0);
  for (uint64_t x = 0; x < 1000; ++x) {
    const double v = s.Sign(x);
    EXPECT_TRUE(v == 1.0 || v == -1.0);
  }
}

TEST(SignHashTest, Balanced) {
  SignHash s(23, 1);
  int plus = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) plus += s.Sign(i) > 0;
  EXPECT_NEAR(static_cast<double>(plus) / n, 0.5, 0.02);
}

TEST(SignHashTest, StreamsAreIndependent) {
  // Products of signs across two independent streams should be balanced.
  SignHash s1(29, 0), s2(29, 1);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += s1.Sign(i) * s2.Sign(i);
  EXPECT_NEAR(sum / n, 0.0, 0.02);
}

TEST(BucketHashTest, RangeAndDeterminism) {
  BucketHash b(31, 0, 17);
  BucketHash same(31, 0, 17);
  for (uint64_t x = 0; x < 2000; ++x) {
    const uint32_t v = b.Bucket(x);
    EXPECT_LT(v, 17u);
    EXPECT_EQ(v, same.Bucket(x));
  }
}

TEST(BucketHashTest, RoughlyUniform) {
  const uint32_t kBuckets = 32;
  BucketHash b(37, 0, kBuckets);
  std::vector<int> counts(kBuckets, 0);
  const int n = 64000;
  for (int i = 0; i < n; ++i) ++counts[b.Bucket(i)];
  for (int c : counts) {
    EXPECT_GT(c, n / kBuckets / 2);
    EXPECT_LT(c, n / kBuckets * 2);
  }
}

class IndexHasherParamTest : public ::testing::TestWithParam<HashKind> {};

TEST_P(IndexHasherParamTest, UnitRangeAndDeterminism) {
  IndexHasher h(GetParam(), 41, 5);
  IndexHasher same(GetParam(), 41, 5);
  IndexHasher other(GetParam(), 41, 6);
  int diff = 0;
  for (uint64_t x = 0; x < 2000; ++x) {
    const double u = h.HashUnit(x);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_EQ(u, same.HashUnit(x));
    diff += (u != other.HashUnit(x));
  }
  EXPECT_GT(diff, 1900);  // different streams are different functions
}

TEST_P(IndexHasherParamTest, MeanIsHalf) {
  IndexHasher h(GetParam(), 43, 0);
  double sum = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += h.HashUnit(i);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST_P(IndexHasherParamTest, MinOverScatteredSetCalibrated) {
  // E[min of k hashes] = 1/(k+1) — the Flajolet–Martin primitive all the
  // sampling sketches rely on. Scattered (mixed) inputs: all families pass.
  const size_t k = 64;
  double sum_min = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    IndexHasher h(GetParam(), 47, t);
    double mn = 1.0;
    for (size_t i = 0; i < k; ++i) {
      mn = std::min(mn, h.HashUnit(Mix64(i * 977 + 5)));
    }
    sum_min += mn;
  }
  EXPECT_NEAR(sum_min / trials, 1.0 / (k + 1), 0.15 / (k + 1));
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, IndexHasherParamTest,
                         ::testing::Values(HashKind::kMixed64,
                                           HashKind::kCarterWegman61,
                                           HashKind::kCarterWegman31));

TEST(IndexHasherTest, MixedMinCalibratedOnContiguousRuns) {
  // The idealized mixed hash stays calibrated even on contiguous indices —
  // the case that motivated it (expanded WMH blocks are contiguous).
  const size_t k = 64;
  double sum_min = 0;
  const int trials = 3000;
  for (int t = 0; t < trials; ++t) {
    IndexHasher h(HashKind::kMixed64, 53, t);
    double mn = 1.0;
    for (size_t i = 0; i < k; ++i) mn = std::min(mn, h.HashUnit(i));
    sum_min += mn;
  }
  EXPECT_NEAR(sum_min / trials, 1.0 / (k + 1), 0.15 / (k + 1));
}

}  // namespace
}  // namespace ipsketch
