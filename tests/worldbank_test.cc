#include "data/worldbank.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

WorldBankOptions SmallOptions() {
  WorldBankOptions o;
  o.num_datasets = 20;
  o.columns_per_dataset = 3;
  o.key_universe = 10000;
  o.min_rows = 100;
  o.max_rows = 800;
  o.seed = 5;
  return o;
}

TEST(WorldBankOptionsTest, Validation) {
  WorldBankOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.num_datasets = 0;
  EXPECT_FALSE(o.Validate().ok());
  o = WorldBankOptions();
  o.min_rows = 10;
  o.max_rows = 5;
  EXPECT_FALSE(o.Validate().ok());
  o = WorldBankOptions();
  o.max_rows = 100000;
  o.key_universe = 50000;
  EXPECT_FALSE(o.Validate().ok());
  o = WorldBankOptions();
  o.family_fraction = 1.5;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(WorldBankCorpusTest, ShapeMatchesOptions) {
  const auto corpus = GenerateWorldBankCorpus(SmallOptions()).value();
  ASSERT_EQ(corpus.size(), 20u);
  for (const auto& table : corpus) {
    EXPECT_EQ(table.num_columns(), 3u);
    EXPECT_GT(table.num_rows(), 0u);
    EXPECT_LE(table.num_rows(), 800u);
  }
}

TEST(WorldBankCorpusTest, KeysUniqueAndInUniverse) {
  const auto corpus = GenerateWorldBankCorpus(SmallOptions()).value();
  for (const auto& table : corpus) {
    // Table::Make enforces uniqueness; check the domain too.
    for (uint64_t k : table.keys()) EXPECT_LT(k, 10000u);
  }
}

TEST(WorldBankCorpusTest, Deterministic) {
  const auto c1 = GenerateWorldBankCorpus(SmallOptions()).value();
  const auto c2 = GenerateWorldBankCorpus(SmallOptions()).value();
  ASSERT_EQ(c1.size(), c2.size());
  for (size_t i = 0; i < c1.size(); ++i) {
    EXPECT_EQ(c1[i].keys(), c2[i].keys());
  }
}

TEST(WorldBankCorpusTest, ColumnShapesVaryInKurtosis) {
  // The generator rotates through light- and heavy-tailed distributions;
  // column names encode the shape.
  const auto corpus =
      GenerateWorldBankCorpus(SmallOptions()).value();
  size_t heavy = 0, light = 0;
  for (const auto& table : corpus) {
    for (const auto& name : table.column_names()) {
      if (name.find("lognormal") != std::string::npos ||
          name.find("spiky") != std::string::npos ||
          name.find("student") != std::string::npos) {
        ++heavy;
      } else {
        ++light;
      }
    }
  }
  EXPECT_GT(heavy, 0u);
  EXPECT_GT(light, 0u);
}

TEST(SampleColumnPairsTest, ProducesRequestedCount) {
  const auto corpus = GenerateWorldBankCorpus(SmallOptions()).value();
  const auto pairs = SampleColumnPairs(corpus, 10000, 200, 7).value();
  EXPECT_EQ(pairs.size(), 200u);
}

TEST(SampleColumnPairsTest, PairsAreUnitNormalized) {
  const auto corpus = GenerateWorldBankCorpus(SmallOptions()).value();
  const auto pairs = SampleColumnPairs(corpus, 10000, 50, 9).value();
  for (const auto& p : pairs) {
    EXPECT_NEAR(p.a.Norm(), 1.0, 1e-9);
    EXPECT_NEAR(p.b.Norm(), 1.0, 1e-9);
  }
}

TEST(SampleColumnPairsTest, CovariatesInRange) {
  const auto corpus = GenerateWorldBankCorpus(SmallOptions()).value();
  const auto pairs = SampleColumnPairs(corpus, 10000, 200, 11).value();
  for (const auto& p : pairs) {
    EXPECT_GE(p.overlap, 0.0);
    EXPECT_LE(p.overlap, 1.0);
    EXPECT_GE(p.kurtosis, 0.0);
  }
}

TEST(SampleColumnPairsTest, OverlapSpreadMatchesPaperShape) {
  // The paper reports a corpus dominated by low-overlap pairs (42% of pairs
  // with Jaccard ≤ 0.1) but with high-overlap pairs present. Require both
  // tails to exist in the synthetic stand-in.
  const auto corpus =
      GenerateWorldBankCorpus(WorldBankOptions{.seed = 3}).value();
  const auto pairs = SampleColumnPairs(corpus, 40000, 500, 13).value();
  size_t low = 0, high = 0;
  for (const auto& p : pairs) {
    if (p.overlap <= 0.1) ++low;
    if (p.overlap >= 0.5) ++high;
  }
  EXPECT_GT(low, pairs.size() / 5);   // sizable low-overlap mass
  EXPECT_GT(high, pairs.size() / 50); // high-overlap pairs exist (families)
}

TEST(SampleColumnPairsTest, KurtosisSpread) {
  const auto corpus =
      GenerateWorldBankCorpus(WorldBankOptions{.seed = 4}).value();
  const auto pairs = SampleColumnPairs(corpus, 40000, 500, 15).value();
  size_t low = 0, high = 0;
  for (const auto& p : pairs) {
    if (p.kurtosis < 5.0) ++low;
    if (p.kurtosis > 20.0) ++high;
  }
  EXPECT_GT(low, 10u);
  EXPECT_GT(high, 10u);
}

TEST(SampleColumnPairsTest, TooSmallCorpusFails) {
  const auto corpus = GenerateWorldBankCorpus(SmallOptions()).value();
  std::vector<Table> one = {corpus[0]};
  EXPECT_FALSE(SampleColumnPairs(one, 10000, 10, 1).ok());
}

}  // namespace
}  // namespace ipsketch
