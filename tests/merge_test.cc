#include "sketch/merge.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector TestVector(uint64_t seed, uint64_t lo, uint64_t hi) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t i = lo; i < hi; ++i) {
    entries.push_back({i, rng.NextGaussian() + 0.25});
  }
  return SparseVector::MakeOrDie(512, std::move(entries));
}

TEST(MergeJlTest, MergedEqualsSketchOfSum) {
  const auto a = TestVector(1, 0, 100);
  const auto b = TestVector(2, 50, 150);
  JlOptions o;
  o.num_rows = 32;
  o.seed = 7;
  const auto sa = SketchJl(a, o).value();
  const auto sb = SketchJl(b, o).value();
  const auto merged = MergeJl(sa, sb).value();
  const auto direct = SketchJl(Add(a, b).value(), o).value();
  ASSERT_EQ(merged.projection.size(), direct.projection.size());
  for (size_t r = 0; r < merged.projection.size(); ++r) {
    EXPECT_NEAR(merged.projection[r], direct.projection[r], 1e-9);
  }
}

TEST(MergeJlTest, RejectsIncompatibleSketches) {
  const auto v = TestVector(3, 0, 50);
  JlOptions o1, o2;
  o1.num_rows = 16;
  o2.num_rows = 32;
  EXPECT_FALSE(
      MergeJl(SketchJl(v, o1).value(), SketchJl(v, o2).value()).ok());
  o2.num_rows = 16;
  o2.seed = 99;
  EXPECT_FALSE(
      MergeJl(SketchJl(v, o1).value(), SketchJl(v, o2).value()).ok());
}

TEST(MergeJlTest, MergedSketchEstimatesSumInnerProduct) {
  const auto a = TestVector(4, 0, 120);
  const auto b = TestVector(5, 60, 180);
  const auto c = TestVector(6, 30, 150);
  const auto sum = Add(a, b).value();
  const double truth = Dot(sum, c);
  JlOptions o;
  o.num_rows = 512;
  o.seed = 11;
  const auto merged = MergeJl(SketchJl(a, o).value(), SketchJl(b, o).value());
  const auto sc = SketchJl(c, o).value();
  const double est = EstimateJlInnerProduct(merged.value(), sc).value();
  EXPECT_NEAR(est, truth, 0.5 * sum.Norm() * c.Norm());
}

TEST(MergeCountSketchTest, MergedEqualsSketchOfSum) {
  const auto a = TestVector(7, 0, 100);
  const auto b = TestVector(8, 50, 150);
  CountSketchOptions o;
  o.total_counters = 60;
  o.seed = 13;
  const auto merged =
      MergeCountSketch(SketchCount(a, o).value(), SketchCount(b, o).value())
          .value();
  const auto direct = SketchCount(Add(a, b).value(), o).value();
  ASSERT_EQ(merged.tables.size(), direct.tables.size());
  for (size_t r = 0; r < merged.tables.size(); ++r) {
    for (size_t j = 0; j < merged.tables[r].size(); ++j) {
      EXPECT_NEAR(merged.tables[r][j], direct.tables[r][j], 1e-9);
    }
  }
}

TEST(MergeCountSketchTest, RejectsShapeMismatch) {
  const auto v = TestVector(9, 0, 50);
  CountSketchOptions o1, o2;
  o1.total_counters = 50;
  o2.total_counters = 100;
  EXPECT_FALSE(MergeCountSketch(SketchCount(v, o1).value(),
                                SketchCount(v, o2).value())
                   .ok());
}

TEST(MergeKmvTest, DisjointSupportsMergeExactly) {
  const auto a = TestVector(10, 0, 80);
  const auto b = TestVector(11, 200, 280);
  KmvOptions o;
  o.k = 64;
  o.seed = 17;
  const auto merged =
      MergeKmv(SketchKmv(a, o).value(), SketchKmv(b, o).value()).value();
  const auto direct = SketchKmv(Add(a, b).value(), o).value();
  ASSERT_EQ(merged.samples.size(), direct.samples.size());
  for (size_t i = 0; i < merged.samples.size(); ++i) {
    EXPECT_EQ(merged.samples[i].hash, direct.samples[i].hash);
    EXPECT_EQ(merged.samples[i].value, direct.samples[i].value);
  }
}

TEST(MergeKmvTest, OverlappingSupportsSumValues) {
  // Exhaustive sketches (k > nnz): the merge must equal the sketch of the
  // summed vector exactly, including value sums on shared indices.
  const auto a = TestVector(12, 0, 40);
  const auto b = TestVector(13, 20, 60);
  KmvOptions o;
  o.k = 128;
  o.seed = 19;
  const auto merged =
      MergeKmv(SketchKmv(a, o).value(), SketchKmv(b, o).value()).value();
  const auto direct = SketchKmv(Add(a, b).value(), o).value();
  ASSERT_EQ(merged.samples.size(), direct.samples.size());
  for (size_t i = 0; i < merged.samples.size(); ++i) {
    EXPECT_EQ(merged.samples[i].hash, direct.samples[i].hash);
    EXPECT_NEAR(merged.samples[i].value, direct.samples[i].value, 1e-12);
  }
}

TEST(MergeKmvTest, ExactCancellationDropsEntry) {
  const auto a = SparseVector::MakeOrDie(16, {{3, 2.0}, {5, 1.0}});
  const auto b = SparseVector::MakeOrDie(16, {{3, -2.0}, {7, 1.0}});
  KmvOptions o;
  o.k = 16;
  o.seed = 23;
  const auto merged =
      MergeKmv(SketchKmv(a, o).value(), SketchKmv(b, o).value()).value();
  // Index 3 cancels: the merged sketch holds only indices 5 and 7.
  EXPECT_EQ(merged.samples.size(), 2u);
  const auto direct = SketchKmv(Add(a, b).value(), o).value();
  ASSERT_EQ(direct.samples.size(), 2u);
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(merged.samples[i].hash, direct.samples[i].hash);
  }
}

TEST(MergeKmvTest, CapacityRespected) {
  const auto a = TestVector(14, 0, 200);
  const auto b = TestVector(15, 200, 400);
  KmvOptions o;
  o.k = 32;
  o.seed = 29;
  const auto merged =
      MergeKmv(SketchKmv(a, o).value(), SketchKmv(b, o).value()).value();
  EXPECT_LE(merged.samples.size(), 32u);
  // Sorted ascending.
  for (size_t i = 1; i < merged.samples.size(); ++i) {
    EXPECT_LT(merged.samples[i - 1].hash, merged.samples[i].hash);
  }
}

TEST(MergeKmvTest, RejectsIncompatible) {
  const auto v = TestVector(16, 0, 50);
  KmvOptions o1, o2;
  o1.k = o2.k = 16;
  o2.seed = 1;
  EXPECT_FALSE(
      MergeKmv(SketchKmv(v, o1).value(), SketchKmv(v, o2).value()).ok());
  o2.seed = 0;
  o2.hash_kind = HashKind::kCarterWegman61;
  EXPECT_FALSE(
      MergeKmv(SketchKmv(v, o1).value(), SketchKmv(v, o2).value()).ok());
}

}  // namespace
}  // namespace ipsketch
