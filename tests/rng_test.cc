#include "common/rng.h"

#include <cmath>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

TEST(Mix64Test, Deterministic) {
  EXPECT_EQ(Mix64(12345), Mix64(12345));
  EXPECT_NE(Mix64(12345), Mix64(12346));
}

TEST(Mix64Test, AvalancheFlipsManyBits) {
  // Flipping one input bit should flip roughly half the output bits.
  size_t total = 0;
  const int kTrials = 256;
  for (int t = 0; t < kTrials; ++t) {
    const uint64_t x = Mix64(t * 7919 + 13);
    const uint64_t y = Mix64((t * 7919 + 13) ^ (uint64_t{1} << (t % 64)));
    total += __builtin_popcountll(Mix64(x) ^ Mix64(y));
  }
  const double mean_flips = static_cast<double>(total) / kTrials;
  EXPECT_GT(mean_flips, 24.0);
  EXPECT_LT(mean_flips, 40.0);
}

TEST(Mix64Test, CombineOrderSensitive) {
  EXPECT_NE(MixCombine(1, 2), MixCombine(2, 1));
  EXPECT_NE(MixCombine(1, 2, 3), MixCombine(1, 3, 2));
  EXPECT_NE(MixCombine(1, 2, 3), MixCombine(3, 2, 1));
}

TEST(Mix64Test, CombineInjectiveOnSmallGrid) {
  std::unordered_set<uint64_t> seen;
  for (uint64_t a = 0; a < 64; ++a) {
    for (uint64_t b = 0; b < 64; ++b) {
      EXPECT_TRUE(seen.insert(MixCombine(a, b)).second)
          << "collision at (" << a << "," << b << ")";
    }
  }
}

TEST(UnitFromU64Test, RangeAndEndpoints) {
  EXPECT_EQ(UnitFromU64(0), 0.0);
  EXPECT_LT(UnitFromU64(~uint64_t{0}), 1.0);
  EXPECT_GE(UnitFromU64(uint64_t{1} << 63), 0.5 - 1e-12);
}

TEST(UnitFromU64Test, PositiveUnitNeverZero) {
  EXPECT_GT(PositiveUnitFromU64(0), 0.0);
  EXPECT_LE(PositiveUnitFromU64(~uint64_t{0}), 1.0);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  SplitMix64 a(99), b(99);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(SplitMix64Test, DifferentSeedsDiverge) {
  SplitMix64 a(1), b(2);
  int diffs = 0;
  for (int i = 0; i < 16; ++i) diffs += (a.Next() != b.Next());
  EXPECT_EQ(diffs, 16);
}

TEST(XoshiroTest, Deterministic) {
  Xoshiro256StarStar a(7), b(7);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(a(), b());
}

TEST(XoshiroTest, UnitMeanIsHalf) {
  Xoshiro256StarStar rng(11);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.NextUnit();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(XoshiroTest, UnitVarianceMatchesUniform) {
  Xoshiro256StarStar rng(13);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double u = rng.NextUnit();
    sum += u;
    sum2 += u * u;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(var, 1.0 / 12.0, 0.005);
}

TEST(XoshiroTest, BoundedStaysInRangeAndCoversAll) {
  Xoshiro256StarStar rng(17);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t v = rng.NextBounded(10);
    ASSERT_LT(v, 10u);
    ++counts[v];
  }
  for (int c : counts) EXPECT_GT(c, 800);  // each bucket near 1000
}

TEST(XoshiroTest, BoundedOneAlwaysZero) {
  Xoshiro256StarStar rng(19);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.NextBounded(1), 0u);
}

TEST(XoshiroTest, GaussianMoments) {
  Xoshiro256StarStar rng(23);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(GeometricTest, PEqualsOneIsAlwaysOne) {
  EXPECT_EQ(GeometricFromUnit(0.5, 1.0), 1u);
  EXPECT_EQ(GeometricFromUnit(1e-9, 1.0), 1u);
}

TEST(GeometricTest, MinimumIsOne) {
  Xoshiro256StarStar rng(29);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(GeometricFromUnit(rng.NextPositiveUnit(), 0.3), 1u);
  }
}

TEST(GeometricTest, MeanIsOneOverP) {
  Xoshiro256StarStar rng(31);
  for (double p : {0.5, 0.1, 0.01}) {
    double sum = 0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
      sum += static_cast<double>(
          GeometricFromUnit(rng.NextPositiveUnit(), p));
    }
    const double mean = sum / n;
    EXPECT_NEAR(mean, 1.0 / p, 0.05 / p) << "p=" << p;
  }
}

TEST(GeometricTest, SurvivalMatchesClosedForm) {
  // P(G > k) = (1-p)^k.
  Xoshiro256StarStar rng(37);
  const double p = 0.2;
  const int k = 5;
  int exceed = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (GeometricFromUnit(rng.NextPositiveUnit(), p) > static_cast<uint64_t>(k))
      ++exceed;
  }
  EXPECT_NEAR(static_cast<double>(exceed) / n, std::pow(1 - p, k), 0.01);
}

TEST(GeometricTest, TinyPDoesNotOverflow) {
  const uint64_t g = GeometricFromUnit(1e-300, 1e-18);
  EXPECT_GT(g, uint64_t{1} << 40);  // astronomically large, but defined
}

}  // namespace
}  // namespace ipsketch
