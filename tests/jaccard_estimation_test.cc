// Tests for the direct (weighted) Jaccard and union-size estimation APIs.

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rounding.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "sketch/minhash.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector RangeVector(uint64_t dim, uint64_t lo, uint64_t hi,
                         uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t i = lo; i < hi; ++i) {
    entries.push_back({i, 0.4 + rng.NextUnit() * (i % 9 == 0 ? 5.0 : 1.0)});
  }
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

WmhSketch Wmh(const SparseVector& v, size_t m, uint64_t seed) {
  WmhOptions o;
  o.num_samples = m;
  o.seed = seed;
  o.L = 1 << 18;
  return SketchWmh(v, o).value();
}

TEST(WeightedJaccardEstimationTest, TracksExactValue) {
  const auto a = RangeVector(512, 0, 200, 1);
  const auto b = RangeVector(512, 100, 300, 2);
  const double exact = WeightedJaccard(Round(a, 1 << 18).value(),
                                       Round(b, 1 << 18).value())
                           .value();
  double est_sum = 0.0;
  const int kSeeds = 40;
  for (int seed = 0; seed < kSeeds; ++seed) {
    est_sum += EstimateWeightedJaccard(Wmh(a, 256, seed), Wmh(b, 256, seed))
                   .value();
  }
  EXPECT_NEAR(est_sum / kSeeds, exact, 0.15 * exact + 0.005);
}

TEST(WeightedJaccardEstimationTest, IdenticalVectorsGiveOne) {
  const auto v = RangeVector(256, 0, 100, 3);
  EXPECT_DOUBLE_EQ(
      EstimateWeightedJaccard(Wmh(v, 64, 5), Wmh(v, 64, 5)).value(), 1.0);
}

TEST(WeightedJaccardEstimationTest, DisjointVectorsGiveZero) {
  const auto a = RangeVector(512, 0, 100, 4);
  const auto b = RangeVector(512, 300, 400, 5);
  EXPECT_DOUBLE_EQ(
      EstimateWeightedJaccard(Wmh(a, 64, 5), Wmh(b, 64, 5)).value(), 0.0);
}

TEST(WeightedJaccardEstimationTest, ZeroVectorConvention) {
  const auto v = RangeVector(64, 0, 32, 6);
  SparseVector zero = SparseVector::FromDense(std::vector<double>(64, 0.0));
  EXPECT_EQ(EstimateWeightedJaccard(Wmh(v, 32, 1), Wmh(zero, 32, 1)).value(),
            0.0);
}

TEST(WeightedUnionEstimationTest, TracksExactValue) {
  const auto a = RangeVector(512, 0, 200, 7);
  const auto b = RangeVector(512, 100, 300, 8);
  const double exact = WeightedUnionSize(Round(a, 1 << 18).value(),
                                         Round(b, 1 << 18).value())
                           .value();
  double est_sum = 0.0;
  const int kSeeds = 40;
  for (int seed = 0; seed < kSeeds; ++seed) {
    est_sum +=
        EstimateWeightedUnion(Wmh(a, 256, seed), Wmh(b, 256, seed)).value();
  }
  EXPECT_NEAR(est_sum / kSeeds, exact, 0.1 * exact);
}

TEST(WeightedUnionEstimationTest, SelfUnionIsOne) {
  // For a vector against itself the weighted union is exactly ‖z̃‖² = 1.
  const auto v = RangeVector(256, 0, 120, 9);
  double est_sum = 0.0;
  const int kSeeds = 40;
  for (int seed = 0; seed < kSeeds; ++seed) {
    est_sum +=
        EstimateWeightedUnion(Wmh(v, 256, seed), Wmh(v, 256, seed)).value();
  }
  EXPECT_NEAR(est_sum / kSeeds, 1.0, 0.05);
}

MhSketch Mh(const SparseVector& v, size_t m, uint64_t seed) {
  MhOptions o;
  o.num_samples = m;
  o.seed = seed;
  return SketchMh(v, o).value();
}

TEST(SupportJaccardEstimationTest, TracksExactValue) {
  const auto a = RangeVector(512, 0, 200, 10);
  const auto b = RangeVector(512, 150, 350, 11);
  const double exact = SupportJaccard(a, b);  // 50 / 350
  double est_sum = 0.0;
  const int kSeeds = 40;
  for (int seed = 0; seed < kSeeds; ++seed) {
    est_sum +=
        EstimateSupportJaccard(Mh(a, 256, seed), Mh(b, 256, seed)).value();
  }
  EXPECT_NEAR(est_sum / kSeeds, exact, 0.15 * exact + 0.005);
}

TEST(SupportJaccardEstimationTest, EmptySketchNeverMatches) {
  SparseVector zero = SparseVector::FromDense(std::vector<double>(8, 0.0));
  // Even two empty sketches (both all-1.0 sentinels) report Jaccard 0.
  EXPECT_EQ(
      EstimateSupportJaccard(Mh(zero, 16, 1), Mh(zero, 16, 1)).value(), 0.0);
}

TEST(SupportUnionEstimationTest, Lemma1Accuracy) {
  const auto a = RangeVector(4096, 0, 700, 12);
  const auto b = RangeVector(4096, 350, 1050, 13);
  const double exact = static_cast<double>(SupportUnionSize(a, b));  // 1050
  double est_sum = 0.0;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    est_sum +=
        EstimateSupportUnion(Mh(a, 512, seed), Mh(b, 512, seed)).value();
  }
  // Lemma 1: relative error O(1/sqrt(m)) per sketch; the mean over 30 seeds
  // concentrates much tighter.
  EXPECT_NEAR(est_sum / kSeeds, exact, 0.05 * exact);
}

TEST(SupportUnionEstimationTest, CompatibilityChecks) {
  const auto v = RangeVector(64, 0, 32, 14);
  EXPECT_FALSE(EstimateSupportUnion(Mh(v, 16, 1), Mh(v, 16, 2)).ok());
  EXPECT_FALSE(EstimateSupportJaccard(Mh(v, 16, 1), Mh(v, 32, 1)).ok());
}

}  // namespace
}  // namespace ipsketch
