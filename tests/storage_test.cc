#include "sketch/storage.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

TEST(StorageTest, LinearFamilyIsIdentity) {
  EXPECT_EQ(SamplesForStorageWords(400, StorageClass::kLinear), 400u);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(400, StorageClass::kLinear), 400.0);
}

TEST(StorageTest, SamplingChargesOnePointFiveWords) {
  // §5: "a sampling-based sketch with m samples takes 1.5x as much space as
  // a JL sketch with m rows".
  EXPECT_EQ(SamplesForStorageWords(400, StorageClass::kSampling), 266u);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(266, StorageClass::kSampling),
                   399.0);
  EXPECT_EQ(SamplesForStorageWords(3, StorageClass::kSampling), 2u);
}

TEST(StorageTest, SamplingWithNormReservesOneWord) {
  EXPECT_EQ(SamplesForStorageWords(400, StorageClass::kSamplingWithNorm),
            266u);
  EXPECT_DOUBLE_EQ(
      StorageWordsForSamples(266, StorageClass::kSamplingWithNorm), 400.0);
}

TEST(StorageTest, BitsFamilyPacksSixtyFourPerWord) {
  EXPECT_EQ(SamplesForStorageWords(4, StorageClass::kBits), 256u);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(256, StorageClass::kBits), 4.0);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(70, StorageClass::kBits), 2.0);
}

TEST(StorageTest, RoundTripNeverExceedsBudget) {
  for (double words : {2.0, 10.0, 100.0, 400.0, 1000.0}) {
    for (auto family :
         {StorageClass::kLinear, StorageClass::kSampling,
          StorageClass::kSamplingWithNorm, StorageClass::kBits}) {
      const size_t m = SamplesForStorageWords(words, family);
      if (m > 0) {
        EXPECT_LE(StorageWordsForSamples(m, family), words + 1e-9)
            << "words=" << words << " family=" << static_cast<int>(family);
      }
    }
  }
}

TEST(StorageTest, TinyBudgetsYieldZeroSamples) {
  EXPECT_EQ(SamplesForStorageWords(0.0, StorageClass::kLinear), 0u);
  EXPECT_EQ(SamplesForStorageWords(-5.0, StorageClass::kLinear), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.0, StorageClass::kSampling), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.0, StorageClass::kSamplingWithNorm), 0u);
}

TEST(StorageTest, OneSampleBoundaryPerFamily) {
  // One sample costs exactly 1 word (linear), 1.5 (sampling), 2.5 (sampling
  // + norm); one word holds 64 bits. Just under fits nothing; exactly at
  // fits the first sample.
  EXPECT_EQ(SamplesForStorageWords(0.999, StorageClass::kLinear), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.0, StorageClass::kLinear), 1u);
  EXPECT_EQ(SamplesForStorageWords(1.499, StorageClass::kSampling), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.5, StorageClass::kSampling), 1u);
  EXPECT_EQ(SamplesForStorageWords(2.499, StorageClass::kSamplingWithNorm),
            0u);
  EXPECT_EQ(SamplesForStorageWords(2.5, StorageClass::kSamplingWithNorm), 1u);
  EXPECT_EQ(SamplesForStorageWords(0.999, StorageClass::kBits), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.0, StorageClass::kBits), 64u);
}

TEST(StorageTest, SubSampleBudgetsNeverUnderflow) {
  for (auto family :
       {StorageClass::kLinear, StorageClass::kSampling,
        StorageClass::kSamplingWithNorm, StorageClass::kBits}) {
    for (double words : {-1.0, 0.0, 0.25, 0.5, 0.9}) {
      EXPECT_EQ(SamplesForStorageWords(words, family), 0u)
          << "words=" << words << " family=" << static_cast<int>(family);
    }
  }
}

TEST(StorageTest, FractionalBitsBudgetStaysWithinBudget) {
  // ceil-based accounting charges whole words, so a 1.5-word budget holds
  // only one word of bits — 96 samples would round-trip to 2 words.
  EXPECT_EQ(SamplesForStorageWords(1.5, StorageClass::kBits), 64u);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(64, StorageClass::kBits), 1.0);
  EXPECT_LE(StorageWordsForSamples(
                SamplesForStorageWords(1.5, StorageClass::kBits),
                StorageClass::kBits),
            1.5);
}

TEST(StorageTest, NanBudgetsYieldZero) {
  for (auto family :
       {StorageClass::kLinear, StorageClass::kSampling,
        StorageClass::kSamplingWithNorm, StorageClass::kBits}) {
    EXPECT_EQ(SamplesForStorageWords(std::nan(""), family), 0u);
  }
}

TEST(StorageTest, UnrepresentablyLargeBudgetsSaturate) {
  constexpr size_t kMax = std::numeric_limits<size_t>::max();
  for (auto family :
       {StorageClass::kLinear, StorageClass::kSampling,
        StorageClass::kSamplingWithNorm, StorageClass::kBits}) {
    // Casting a double >= 2^64 to size_t is UB; these must clamp instead.
    EXPECT_EQ(SamplesForStorageWords(1e30, family), kMax);
    EXPECT_EQ(SamplesForStorageWords(
                  std::numeric_limits<double>::infinity(), family),
              kMax);
  }
}

}  // namespace
}  // namespace ipsketch
