#include "sketch/storage.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

TEST(StorageTest, LinearFamilyIsIdentity) {
  EXPECT_EQ(SamplesForStorageWords(400, StorageClass::kLinear), 400u);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(400, StorageClass::kLinear), 400.0);
}

TEST(StorageTest, SamplingChargesOnePointFiveWords) {
  // §5: "a sampling-based sketch with m samples takes 1.5x as much space as
  // a JL sketch with m rows".
  EXPECT_EQ(SamplesForStorageWords(400, StorageClass::kSampling), 266u);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(266, StorageClass::kSampling),
                   399.0);
  EXPECT_EQ(SamplesForStorageWords(3, StorageClass::kSampling), 2u);
}

TEST(StorageTest, SamplingWithNormReservesOneWord) {
  EXPECT_EQ(SamplesForStorageWords(400, StorageClass::kSamplingWithNorm),
            266u);
  EXPECT_DOUBLE_EQ(
      StorageWordsForSamples(266, StorageClass::kSamplingWithNorm), 400.0);
}

TEST(StorageTest, BitsFamilyPacksSixtyFourPerWord) {
  EXPECT_EQ(SamplesForStorageWords(4, StorageClass::kBits), 256u);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(256, StorageClass::kBits), 4.0);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(70, StorageClass::kBits), 2.0);
}

TEST(StorageTest, CompactSamplingChargesOneWordPlusNorm) {
  // The 32-bit compact encoding: (32+32) bits = 1 word per sample + norm.
  EXPECT_EQ(
      SamplesForStorageWords(400, StorageClass::kCompactSamplingWithNorm),
      399u);
  EXPECT_DOUBLE_EQ(
      StorageWordsForSamples(399, StorageClass::kCompactSamplingWithNorm),
      400.0);
  // One-sample boundary: a sample + the norm needs exactly 2 words.
  EXPECT_EQ(
      SamplesForStorageWords(1.999, StorageClass::kCompactSamplingWithNorm),
      0u);
  EXPECT_EQ(
      SamplesForStorageWords(2.0, StorageClass::kCompactSamplingWithNorm),
      1u);
}

TEST(StorageTest, BbitSamplingChargesAtDefaultWidth) {
  // Charged at b = 16: (16+32)/64 = 0.75 words per sample + the norm.
  EXPECT_EQ(SamplesForStorageWords(400, StorageClass::kBbitSamplingWithNorm),
            532u);
  EXPECT_DOUBLE_EQ(
      StorageWordsForSamples(532, StorageClass::kBbitSamplingWithNorm),
      400.0);
  EXPECT_EQ(
      SamplesForStorageWords(1.749, StorageClass::kBbitSamplingWithNorm),
      0u);
  EXPECT_EQ(SamplesForStorageWords(1.75, StorageClass::kBbitSamplingWithNorm),
            1u);
}

TEST(StorageTest, ExplicitBbitWidthMappingStaysWithinBudget) {
  // The enum charges the default b = 16; the explicit-width mapping must
  // agree there and never exceed budget at any other width — a b = 32
  // sweep through the default table would overshoot by a third.
  EXPECT_EQ(SamplesForBbitStorageWords(400, 16),
            SamplesForStorageWords(400, StorageClass::kBbitSamplingWithNorm));
  EXPECT_DOUBLE_EQ(StorageWordsForBbitSamples(532, 16), 400.0);
  for (uint32_t bits : {1u, 8u, 16u, 24u, 32u}) {
    for (double words : {2.0, 100.0, 400.0}) {
      const size_t m = SamplesForBbitStorageWords(words, bits);
      if (m > 0) {
        EXPECT_LE(StorageWordsForBbitSamples(m, bits), words + 1e-9)
            << "bits=" << bits << " words=" << words;
      }
    }
  }
  // b = 32 costs a full word per sample: (words − 1) samples, like compact.
  EXPECT_EQ(SamplesForBbitStorageWords(400, 32), 399u);
  EXPECT_EQ(SamplesForBbitStorageWords(0.0, 16), 0u);
  EXPECT_EQ(SamplesForBbitStorageWords(std::nan(""), 16), 0u);
}

TEST(StorageTest, RoundTripNeverExceedsBudget) {
  for (double words : {2.0, 10.0, 100.0, 400.0, 1000.0}) {
    for (auto family :
         {StorageClass::kLinear, StorageClass::kSampling,
          StorageClass::kSamplingWithNorm, StorageClass::kBits,
          StorageClass::kCompactSamplingWithNorm,
          StorageClass::kBbitSamplingWithNorm}) {
      const size_t m = SamplesForStorageWords(words, family);
      if (m > 0) {
        EXPECT_LE(StorageWordsForSamples(m, family), words + 1e-9)
            << "words=" << words << " family=" << static_cast<int>(family);
      }
    }
  }
}

TEST(StorageTest, TinyBudgetsYieldZeroSamples) {
  EXPECT_EQ(SamplesForStorageWords(0.0, StorageClass::kLinear), 0u);
  EXPECT_EQ(SamplesForStorageWords(-5.0, StorageClass::kLinear), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.0, StorageClass::kSampling), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.0, StorageClass::kSamplingWithNorm), 0u);
}

TEST(StorageTest, OneSampleBoundaryPerFamily) {
  // One sample costs exactly 1 word (linear), 1.5 (sampling), 2.5 (sampling
  // + norm); one word holds 64 bits. Just under fits nothing; exactly at
  // fits the first sample.
  EXPECT_EQ(SamplesForStorageWords(0.999, StorageClass::kLinear), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.0, StorageClass::kLinear), 1u);
  EXPECT_EQ(SamplesForStorageWords(1.499, StorageClass::kSampling), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.5, StorageClass::kSampling), 1u);
  EXPECT_EQ(SamplesForStorageWords(2.499, StorageClass::kSamplingWithNorm),
            0u);
  EXPECT_EQ(SamplesForStorageWords(2.5, StorageClass::kSamplingWithNorm), 1u);
  EXPECT_EQ(SamplesForStorageWords(0.999, StorageClass::kBits), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.0, StorageClass::kBits), 64u);
}

TEST(StorageTest, SubSampleBudgetsNeverUnderflow) {
  for (auto family :
       {StorageClass::kLinear, StorageClass::kSampling,
        StorageClass::kSamplingWithNorm, StorageClass::kBits,
        StorageClass::kCompactSamplingWithNorm,
        StorageClass::kBbitSamplingWithNorm}) {
    for (double words : {-1.0, 0.0, 0.25, 0.5, 0.9}) {
      EXPECT_EQ(SamplesForStorageWords(words, family), 0u)
          << "words=" << words << " family=" << static_cast<int>(family);
    }
  }
}

TEST(StorageTest, FractionalBitsBudgetStaysWithinBudget) {
  // ceil-based accounting charges whole words, so a 1.5-word budget holds
  // only one word of bits — 96 samples would round-trip to 2 words.
  EXPECT_EQ(SamplesForStorageWords(1.5, StorageClass::kBits), 64u);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(64, StorageClass::kBits), 1.0);
  EXPECT_LE(StorageWordsForSamples(
                SamplesForStorageWords(1.5, StorageClass::kBits),
                StorageClass::kBits),
            1.5);
}

TEST(StorageTest, NanBudgetsYieldZero) {
  for (auto family :
       {StorageClass::kLinear, StorageClass::kSampling,
        StorageClass::kSamplingWithNorm, StorageClass::kBits,
        StorageClass::kCompactSamplingWithNorm,
        StorageClass::kBbitSamplingWithNorm}) {
    EXPECT_EQ(SamplesForStorageWords(std::nan(""), family), 0u);
  }
}

TEST(StorageTest, UnrepresentablyLargeBudgetsSaturate) {
  constexpr size_t kMax = std::numeric_limits<size_t>::max();
  for (auto family :
       {StorageClass::kLinear, StorageClass::kSampling,
        StorageClass::kSamplingWithNorm, StorageClass::kBits,
        StorageClass::kCompactSamplingWithNorm,
        StorageClass::kBbitSamplingWithNorm}) {
    // Casting a double >= 2^64 to size_t is UB; these must clamp instead.
    EXPECT_EQ(SamplesForStorageWords(1e30, family), kMax);
    EXPECT_EQ(SamplesForStorageWords(
                  std::numeric_limits<double>::infinity(), family),
              kMax);
  }
}

}  // namespace
}  // namespace ipsketch
