#include "sketch/storage.h"

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

TEST(StorageTest, LinearFamilyIsIdentity) {
  EXPECT_EQ(SamplesForStorageWords(400, SketchFamily::kLinear), 400u);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(400, SketchFamily::kLinear), 400.0);
}

TEST(StorageTest, SamplingChargesOnePointFiveWords) {
  // §5: "a sampling-based sketch with m samples takes 1.5x as much space as
  // a JL sketch with m rows".
  EXPECT_EQ(SamplesForStorageWords(400, SketchFamily::kSampling), 266u);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(266, SketchFamily::kSampling),
                   399.0);
  EXPECT_EQ(SamplesForStorageWords(3, SketchFamily::kSampling), 2u);
}

TEST(StorageTest, SamplingWithNormReservesOneWord) {
  EXPECT_EQ(SamplesForStorageWords(400, SketchFamily::kSamplingWithNorm),
            266u);
  EXPECT_DOUBLE_EQ(
      StorageWordsForSamples(266, SketchFamily::kSamplingWithNorm), 400.0);
}

TEST(StorageTest, BitsFamilyPacksSixtyFourPerWord) {
  EXPECT_EQ(SamplesForStorageWords(4, SketchFamily::kBits), 256u);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(256, SketchFamily::kBits), 4.0);
  EXPECT_DOUBLE_EQ(StorageWordsForSamples(70, SketchFamily::kBits), 2.0);
}

TEST(StorageTest, RoundTripNeverExceedsBudget) {
  for (double words : {2.0, 10.0, 100.0, 400.0, 1000.0}) {
    for (auto family :
         {SketchFamily::kLinear, SketchFamily::kSampling,
          SketchFamily::kSamplingWithNorm, SketchFamily::kBits}) {
      const size_t m = SamplesForStorageWords(words, family);
      if (m > 0) {
        EXPECT_LE(StorageWordsForSamples(m, family), words + 1e-9)
            << "words=" << words << " family=" << static_cast<int>(family);
      }
    }
  }
}

TEST(StorageTest, TinyBudgetsYieldZeroSamples) {
  EXPECT_EQ(SamplesForStorageWords(0.0, SketchFamily::kLinear), 0u);
  EXPECT_EQ(SamplesForStorageWords(-5.0, SketchFamily::kLinear), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.0, SketchFamily::kSampling), 0u);
  EXPECT_EQ(SamplesForStorageWords(1.0, SketchFamily::kSamplingWithNorm), 0u);
}

}  // namespace
}  // namespace ipsketch
