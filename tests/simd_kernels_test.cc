// Kernel-level equivalence and edge-case coverage for the estimation
// kernels (core/simd/estimate_kernels.h): every vector tier available on
// this machine must return results bit-identical to the scalar tier, for
// lengths below / at / astride the vector width, all-match and zero-match
// inputs, q = 0 pairs, and compact-sentinel hashes. A plain sequential
// reference (no lane structure) additionally pins the numeric semantics.

#include "core/simd/estimate_kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/simd/dispatch.h"

namespace ipsketch {
namespace simd {
namespace {

// Lengths below one vector width (1..3), at it (4), astride it, and long.
const size_t kSizes[] = {1, 2, 3, 4, 5, 7, 8, 13, 16, 31, 64, 67, 128, 259};

/// Exact-bits equality: distinguishes ±0.0 and would catch any reduction
/// re-ordering EXPECT_DOUBLE_EQ's ULP tolerance would forgive.
void ExpectSameBits(double expected, double actual, const char* what,
                    const char* tier, size_t m) {
  EXPECT_EQ(std::bit_cast<uint64_t>(expected), std::bit_cast<uint64_t>(actual))
      << what << " differs on tier '" << tier << "' at m=" << m << ": "
      << expected << " vs " << actual;
}

struct PairInputs {
  std::vector<double> ha, hb, va, vb;
  std::vector<uint64_t> fa, fb;
  std::vector<uint32_t> qa, qb;  // u32 hashes / fingerprints
  std::vector<float> sa, sb;     // float values
};

/// Randomized inputs with forced structure: ~40% exact matches, some zero
/// values (q = 0 at a match), some 1.0 / sentinel hashes.
PairInputs MakeInputs(size_t m, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  PairInputs in;
  for (size_t i = 0; i < m; ++i) {
    const double h = rng.NextUnit();
    const bool match = rng.NextUnit() < 0.4;
    const bool zero_value = rng.NextUnit() < 0.15;
    const bool sentinel = rng.NextUnit() < 0.1;
    in.ha.push_back(sentinel ? 1.0 : h);
    in.hb.push_back(match ? in.ha.back() : rng.NextUnit());
    in.va.push_back(zero_value ? 0.0 : rng.NextGaussian());
    in.vb.push_back(rng.NextGaussian());
    const uint64_t f = rng();
    in.fa.push_back(f);
    in.fb.push_back(match ? f : rng());
    const uint32_t q = static_cast<uint32_t>(rng());
    in.qa.push_back(sentinel ? ~uint32_t{0} : q);
    in.qb.push_back(match ? in.qa.back()
                          : static_cast<uint32_t>(rng()));
    in.sa.push_back(zero_value ? 0.0f : static_cast<float>(rng.NextGaussian()));
    in.sb.push_back(static_cast<float>(rng.NextGaussian()));
  }
  return in;
}

void CheckAllKernelsAgree(const PairInputs& in, size_t m, uint64_t seed) {
  const EstimateKernel& scalar = ScalarKernel();
  const WmhPairStats wmh_ref =
      scalar.wmh_pair(in.ha.data(), in.hb.data(), in.va.data(),
                      in.vb.data(), m);
  const MatchStats u64_ref = scalar.match_u64(
      in.fa.data(), in.fb.data(), in.va.data(), in.vb.data(), m);
  const CompactPairStats compact_ref = scalar.compact_pair(
      in.qa.data(), in.qb.data(), in.sa.data(), in.sb.data(), m);
  const MatchStats u32_ref = scalar.match_u32(
      in.qa.data(), in.qb.data(), in.sa.data(), in.sb.data(), m);
  const MhPairStats mh_ref = scalar.mh_pair(in.ha.data(), in.hb.data(),
                                            in.va.data(), in.vb.data(), m);

  for (const EstimateKernel* kernel : AvailableKernels()) {
    SCOPED_TRACE(std::string("tier=") + kernel->name + " m=" +
                 std::to_string(m) + " seed=" + std::to_string(seed));
    const WmhPairStats wmh = kernel->wmh_pair(
        in.ha.data(), in.hb.data(), in.va.data(), in.vb.data(), m);
    ExpectSameBits(wmh_ref.min_hash_sum, wmh.min_hash_sum,
                   "wmh_pair.min_hash_sum", kernel->name, m);
    ExpectSameBits(wmh_ref.weighted_match_sum, wmh.weighted_match_sum,
                   "wmh_pair.weighted_match_sum", kernel->name, m);
    EXPECT_EQ(wmh_ref.match_count, wmh.match_count);

    const MatchStats u64 = kernel->match_u64(
        in.fa.data(), in.fb.data(), in.va.data(), in.vb.data(), m);
    ExpectSameBits(u64_ref.weighted_match_sum, u64.weighted_match_sum,
                   "match_u64.weighted_match_sum", kernel->name, m);
    EXPECT_EQ(u64_ref.match_count, u64.match_count);

    const CompactPairStats compact = kernel->compact_pair(
        in.qa.data(), in.qb.data(), in.sa.data(), in.sb.data(), m);
    ExpectSameBits(compact_ref.min_hash_sum, compact.min_hash_sum,
                   "compact_pair.min_hash_sum", kernel->name, m);
    ExpectSameBits(compact_ref.weighted_match_sum,
                   compact.weighted_match_sum,
                   "compact_pair.weighted_match_sum", kernel->name, m);

    const MatchStats u32 = kernel->match_u32(
        in.qa.data(), in.qb.data(), in.sa.data(), in.sb.data(), m);
    ExpectSameBits(u32_ref.weighted_match_sum, u32.weighted_match_sum,
                   "match_u32.weighted_match_sum", kernel->name, m);
    EXPECT_EQ(u32_ref.match_count, u32.match_count);

    const MhPairStats mh = kernel->mh_pair(
        in.ha.data(), in.hb.data(), in.va.data(), in.vb.data(), m);
    ExpectSameBits(mh_ref.min_hash_sum, mh.min_hash_sum,
                   "mh_pair.min_hash_sum", kernel->name, m);
    ExpectSameBits(mh_ref.match_sum, mh.match_sum, "mh_pair.match_sum",
                   kernel->name, m);

    EXPECT_EQ(scalar.count_eq_f64(in.ha.data(), in.hb.data(), m),
              kernel->count_eq_f64(in.ha.data(), in.hb.data(), m));
    EXPECT_EQ(scalar.count_eq_below1_f64(in.ha.data(), in.hb.data(), m),
              kernel->count_eq_below1_f64(in.ha.data(), in.hb.data(), m));
    ExpectSameBits(scalar.min_sum_f64(in.ha.data(), in.hb.data(), m),
                   kernel->min_sum_f64(in.ha.data(), in.hb.data(), m),
                   "min_sum_f64", kernel->name, m);
    ExpectSameBits(scalar.sum_f64(in.va.data(), m),
                   kernel->sum_f64(in.va.data(), m), "sum_f64",
                   kernel->name, m);
    ExpectSameBits(scalar.dot_f64(in.va.data(), in.vb.data(), m),
                   kernel->dot_f64(in.va.data(), in.vb.data(), m),
                   "dot_f64", kernel->name, m);
  }
}

TEST(SimdKernelsTest, AllTiersBitIdenticalOnRandomizedInputs) {
  for (size_t m : kSizes) {
    for (uint64_t seed = 1; seed <= 5; ++seed) {
      CheckAllKernelsAgree(MakeInputs(m, seed), m, seed);
    }
  }
}

TEST(SimdKernelsTest, AllTiersAgreeOnAllMatchPairs) {
  for (size_t m : kSizes) {
    PairInputs in = MakeInputs(m, 99);
    in.hb = in.ha;
    in.fb = in.fa;
    in.qb = in.qa;
    in.sb = in.sa;
    in.vb = in.va;
    CheckAllKernelsAgree(in, m, 99);
    // Sanity: with identical sides and nonzero values everywhere the match
    // count is m.
    std::fill(in.va.begin(), in.va.end(), 0.5);
    in.vb = in.va;
    const WmhPairStats stats = ScalarKernel().wmh_pair(
        in.ha.data(), in.hb.data(), in.va.data(), in.vb.data(), m);
    EXPECT_EQ(stats.match_count, m);
  }
}

TEST(SimdKernelsTest, AllTiersAgreeOnZeroMatchPairs) {
  for (size_t m : kSizes) {
    PairInputs in = MakeInputs(m, 7);
    // Shift one side so no hash, fingerprint, or quantized hash ever
    // matches.
    for (size_t i = 0; i < m; ++i) {
      in.hb[i] = in.ha[i] * 0.5 + 0.25;
      if (in.hb[i] == in.ha[i]) in.hb[i] += 0.125;
      in.fb[i] = in.fa[i] ^ 1;
      in.qb[i] = in.qa[i] ^ 1;
    }
    CheckAllKernelsAgree(in, m, 7);
    const WmhPairStats stats = ScalarKernel().wmh_pair(
        in.ha.data(), in.hb.data(), in.va.data(), in.vb.data(), m);
    EXPECT_EQ(stats.match_count, 0u);
    EXPECT_EQ(stats.weighted_match_sum, 0.0);
  }
}

TEST(SimdKernelsTest, MatchedZeroValuesAreExcluded) {
  // A match whose value is 0 on either side has q = 0 and must contribute
  // to neither the weighted sum nor the match count — on every tier.
  const size_t m = 9;
  PairInputs in = MakeInputs(m, 3);
  in.hb = in.ha;
  in.fb = in.fa;
  in.qb = in.qa;
  std::fill(in.va.begin(), in.va.end(), 0.0);
  std::fill(in.sa.begin(), in.sa.end(), 0.0f);
  for (const EstimateKernel* kernel : AvailableKernels()) {
    SCOPED_TRACE(kernel->name);
    const WmhPairStats wmh = kernel->wmh_pair(
        in.ha.data(), in.hb.data(), in.va.data(), in.vb.data(), m);
    EXPECT_EQ(wmh.match_count, 0u);
    EXPECT_EQ(wmh.weighted_match_sum, 0.0);
    const MatchStats u64 = kernel->match_u64(
        in.fa.data(), in.fb.data(), in.va.data(), in.vb.data(), m);
    EXPECT_EQ(u64.match_count, 0u);
    const MatchStats u32 = kernel->match_u32(
        in.qa.data(), in.qb.data(), in.sa.data(), in.sb.data(), m);
    EXPECT_EQ(u32.match_count, 0u);
  }
}

TEST(SimdKernelsTest, CompactSentinelDequantizesToExactlyOne) {
  // An all-sentinel pair must produce min_hash_sum == m exactly (the
  // empty-catalog calibration the compact estimator's clamp relies on).
  for (size_t m : kSizes) {
    std::vector<uint32_t> q(m, ~uint32_t{0});
    std::vector<float> v(m, 0.0f);
    for (const EstimateKernel* kernel : AvailableKernels()) {
      SCOPED_TRACE(kernel->name);
      const CompactPairStats stats =
          kernel->compact_pair(q.data(), q.data(), v.data(), v.data(), m);
      EXPECT_EQ(stats.min_hash_sum, static_cast<double>(m));
    }
  }
}

TEST(SimdKernelsTest, SequentialReferencePinsNumericSemantics) {
  // The lane-ordered sums must stay within ordinary reassociation distance
  // of a plain sequential loop — the kernels change ordering, not math.
  const size_t m = 257;
  const PairInputs in = MakeInputs(m, 21);
  double seq_min = 0.0, seq_w = 0.0;
  uint64_t seq_count = 0;
  for (size_t i = 0; i < m; ++i) {
    seq_min += std::min(in.ha[i], in.hb[i]);
    if (in.ha[i] == in.hb[i]) {
      const double q = std::min(in.va[i] * in.va[i], in.vb[i] * in.vb[i]);
      if (q > 0.0) {
        seq_w += in.va[i] * in.vb[i] / q;
        ++seq_count;
      }
    }
  }
  const WmhPairStats stats = ScalarKernel().wmh_pair(
      in.ha.data(), in.hb.data(), in.va.data(), in.vb.data(), m);
  EXPECT_NEAR(stats.min_hash_sum, seq_min, 1e-9 * m);
  EXPECT_NEAR(stats.weighted_match_sum, seq_w,
              1e-9 * (std::abs(seq_w) + 1.0));
  EXPECT_EQ(stats.match_count, seq_count);
}

TEST(SimdKernelsTest, TruncatedPrefixEqualsShorterInput) {
  // Running a kernel over the first m' entries of a longer buffer must
  // equal running it over a copied m'-length buffer: kernels may not read
  // past m (the Truncate/prefix-slicing path depends on it).
  const size_t m = 70;
  const PairInputs in = MakeInputs(m, 11);
  for (size_t prefix : {1u, 3u, 4u, 13u, 64u, 69u}) {
    PairInputs cut = in;
    cut.ha.resize(prefix);
    cut.hb.resize(prefix);
    cut.va.resize(prefix);
    cut.vb.resize(prefix);
    for (const EstimateKernel* kernel : AvailableKernels()) {
      SCOPED_TRACE(std::string(kernel->name) + " prefix=" +
                   std::to_string(prefix));
      const WmhPairStats full = kernel->wmh_pair(
          in.ha.data(), in.hb.data(), in.va.data(), in.vb.data(), prefix);
      const WmhPairStats copy = kernel->wmh_pair(
          cut.ha.data(), cut.hb.data(), cut.va.data(), cut.vb.data(),
          prefix);
      EXPECT_EQ(std::bit_cast<uint64_t>(full.min_hash_sum),
                std::bit_cast<uint64_t>(copy.min_hash_sum));
      EXPECT_EQ(std::bit_cast<uint64_t>(full.weighted_match_sum),
                std::bit_cast<uint64_t>(copy.weighted_match_sum));
      EXPECT_EQ(full.match_count, copy.match_count);
    }
  }
}

TEST(SimdDispatchTest, ActiveKernelIsAvailableAndNamed) {
  const EstimateKernel& active = ActiveKernel();
  EXPECT_STREQ(active.name, ActiveKernelName());
  bool found = false;
  for (const EstimateKernel* kernel : AvailableKernels()) {
    found = found || (kernel == &active);
  }
  EXPECT_TRUE(found) << "dispatched tier '" << active.name
                     << "' missing from AvailableKernels()";
  // Scalar is always first so the equivalence loops have their reference.
  EXPECT_STREQ(AvailableKernels().front()->name, "scalar");
}

TEST(SimdDispatchTest, TestingOverridePinsAndRestores) {
  const char* original = ActiveKernelName();
  SetActiveKernelForTesting(&ScalarKernel());
  EXPECT_STREQ(ActiveKernelName(), "scalar");
  SetActiveKernelForTesting(nullptr);
  EXPECT_STREQ(ActiveKernelName(), original);
}

TEST(SimdDispatchTest, EnvForceScalarPinIsHonored) {
  // Meaningful in the CI re-run with IPSKETCH_FORCE_SCALAR=1 set: a live
  // dispatch resolution that ignored the environment pin would fail here.
  // With the variable unset (or negative) the test asserts nothing.
  if (ParseForceScalarEnv(std::getenv("IPSKETCH_FORCE_SCALAR"))) {
    EXPECT_STREQ(ActiveKernelName(), "scalar");
  }
}

TEST(SimdDispatchTest, ForceScalarEnvParsing) {
  EXPECT_FALSE(ParseForceScalarEnv(nullptr));
  EXPECT_FALSE(ParseForceScalarEnv(""));
  EXPECT_FALSE(ParseForceScalarEnv("0"));
  EXPECT_FALSE(ParseForceScalarEnv("off"));
  EXPECT_FALSE(ParseForceScalarEnv("OFF"));
  EXPECT_FALSE(ParseForceScalarEnv("Off"));
  EXPECT_FALSE(ParseForceScalarEnv("false"));
  EXPECT_FALSE(ParseForceScalarEnv("False"));
  EXPECT_FALSE(ParseForceScalarEnv("no"));
  EXPECT_FALSE(ParseForceScalarEnv("NO"));
  EXPECT_TRUE(ParseForceScalarEnv("1"));
  EXPECT_TRUE(ParseForceScalarEnv("on"));
  EXPECT_TRUE(ParseForceScalarEnv("true"));
  EXPECT_TRUE(ParseForceScalarEnv("yes"));
}

}  // namespace
}  // namespace simd
}  // namespace ipsketch
