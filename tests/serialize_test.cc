#include "sketch/serialize.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/wmh_estimator.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector TestVector(uint64_t seed, uint64_t lo = 0, uint64_t hi = 80) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t i = lo; i < hi; ++i) {
    entries.push_back({i, rng.NextGaussian() + 0.2});
  }
  return SparseVector::MakeOrDie(256, std::move(entries));
}

TEST(SerializeWmhTest, RoundTripPreservesEverything) {
  WmhOptions o;
  o.num_samples = 32;
  o.seed = 7;
  o.L = 4096;
  const auto original = SketchWmh(TestVector(1), o).value();
  const std::string bytes = SerializeWmh(original);
  const auto restored = DeserializeWmh(bytes).value();
  EXPECT_EQ(restored.hashes, original.hashes);
  EXPECT_EQ(restored.values, original.values);
  EXPECT_EQ(restored.norm, original.norm);
  EXPECT_EQ(restored.seed, original.seed);
  EXPECT_EQ(restored.L, original.L);
  EXPECT_EQ(restored.dimension, original.dimension);
}

TEST(SerializeWmhTest, RestoredSketchEstimatesIdentically) {
  WmhOptions o;
  o.num_samples = 64;
  o.seed = 9;
  const auto sa = SketchWmh(TestVector(2, 0, 100), o).value();
  const auto sb = SketchWmh(TestVector(3, 50, 150), o).value();
  const double direct = EstimateWmhInnerProduct(sa, sb).value();
  const auto ra = DeserializeWmh(SerializeWmh(sa)).value();
  const auto rb = DeserializeWmh(SerializeWmh(sb)).value();
  EXPECT_DOUBLE_EQ(EstimateWmhInnerProduct(ra, rb).value(), direct);
}

TEST(SerializeWmhTest, EmptyVectorSketchRoundTrips) {
  WmhOptions o;
  o.num_samples = 8;
  SparseVector zero = SparseVector::FromDense(std::vector<double>(4, 0.0));
  const auto s = SketchWmh(zero, o).value();
  const auto restored = DeserializeWmh(SerializeWmh(s)).value();
  EXPECT_EQ(restored.norm, 0.0);
  EXPECT_EQ(restored.hashes, s.hashes);
}

TEST(SerializeMhTest, RoundTripIncludingHashKind) {
  MhOptions o;
  o.num_samples = 16;
  o.seed = 5;
  o.hash_kind = HashKind::kCarterWegman31;
  const auto s = SketchMh(TestVector(4), o).value();
  const auto restored = DeserializeMh(SerializeMh(s)).value();
  EXPECT_EQ(restored.hashes, s.hashes);
  EXPECT_EQ(restored.values, s.values);
  EXPECT_EQ(restored.hash_kind, HashKind::kCarterWegman31);
}

TEST(SerializeKmvTest, RoundTripPreservesSortedSamples) {
  KmvOptions o;
  o.k = 24;
  o.seed = 11;
  const auto s = SketchKmv(TestVector(5), o).value();
  const auto restored = DeserializeKmv(SerializeKmv(s)).value();
  ASSERT_EQ(restored.samples.size(), s.samples.size());
  for (size_t i = 0; i < s.samples.size(); ++i) {
    EXPECT_EQ(restored.samples[i].hash, s.samples[i].hash);
    EXPECT_EQ(restored.samples[i].value, s.samples[i].value);
  }
  EXPECT_EQ(restored.k, s.k);
}

TEST(SerializeKmvTest, RejectsUnsortedSamples) {
  KmvOptions o;
  o.k = 8;
  const auto s = SketchKmv(TestVector(6), o).value();
  std::string bytes = SerializeKmv(s);
  // Swap the two stored sample records (16 bytes each) after the header
  // (4 magic + 1 version + 1 tag + 8 seed + 8 dim + 8 k + 1 kind + 8 count).
  const size_t payload = 4 + 1 + 1 + 8 + 8 + 8 + 1 + 8;
  std::string swapped = bytes;
  for (size_t b = 0; b < 16; ++b) {
    std::swap(swapped[payload + b], swapped[payload + 16 + b]);
  }
  EXPECT_FALSE(DeserializeKmv(swapped).ok());
}

TEST(SerializeJlTest, RoundTrip) {
  JlOptions o;
  o.num_rows = 12;
  o.seed = 13;
  const auto s = SketchJl(TestVector(7), o).value();
  const auto restored = DeserializeJl(SerializeJl(s)).value();
  EXPECT_EQ(restored.projection, s.projection);
  EXPECT_EQ(restored.seed, s.seed);
}

TEST(SerializeCountSketchTest, RoundTrip) {
  CountSketchOptions o;
  o.total_counters = 40;
  o.seed = 17;
  const auto s = SketchCount(TestVector(8), o).value();
  const auto restored = DeserializeCountSketch(SerializeCountSketch(s)).value();
  EXPECT_EQ(restored.tables, s.tables);
}

TEST(SerializeIcwsTest, RoundTrip) {
  IcwsOptions o;
  o.num_samples = 16;
  o.seed = 19;
  const auto s = SketchIcws(TestVector(9), o).value();
  const auto restored = DeserializeIcws(SerializeIcws(s)).value();
  EXPECT_EQ(restored.fingerprints, s.fingerprints);
  EXPECT_EQ(restored.values, s.values);
  EXPECT_EQ(restored.norm, s.norm);
}

TEST(SerializeSimHashTest, RoundTrip) {
  SimHashOptions o;
  o.num_bits = 100;
  o.seed = 23;
  const auto s = SketchSimHash(TestVector(10), o).value();
  const auto restored = DeserializeSimHash(SerializeSimHash(s)).value();
  EXPECT_EQ(restored.bits, s.bits);
  EXPECT_EQ(restored.num_bits, s.num_bits);
  EXPECT_EQ(restored.norm, s.norm);
}

TEST(SerializeRobustnessTest, RejectsEmptyAndGarbage) {
  EXPECT_FALSE(DeserializeWmh("").ok());
  EXPECT_FALSE(DeserializeWmh("garbage bytes here").ok());
  EXPECT_FALSE(DeserializeJl(std::string(3, '\0')).ok());
}

TEST(SerializeRobustnessTest, RejectsTruncation) {
  WmhOptions o;
  o.num_samples = 16;
  const auto s = SketchWmh(TestVector(11), o).value();
  const std::string bytes = SerializeWmh(s);
  for (size_t cut : {bytes.size() - 1, bytes.size() / 2, size_t{7}}) {
    EXPECT_FALSE(DeserializeWmh(bytes.substr(0, cut)).ok()) << cut;
  }
}

TEST(SerializeRobustnessTest, EveryTruncationRejectedCleanly) {
  // Property: no prefix of a valid blob parses, and none crashes.
  WmhOptions o;
  o.num_samples = 4;
  const auto s = SketchWmh(TestVector(20, 0, 10), o).value();
  const std::string bytes = SerializeWmh(s);
  for (size_t cut = 0; cut < bytes.size(); ++cut) {
    EXPECT_FALSE(DeserializeWmh(bytes.substr(0, cut)).ok()) << cut;
  }
}

TEST(SerializeRobustnessTest, RejectsTrailingBytes) {
  WmhOptions o;
  o.num_samples = 8;
  const auto s = SketchWmh(TestVector(12), o).value();
  EXPECT_FALSE(DeserializeWmh(SerializeWmh(s) + "x").ok());
}

TEST(SerializeRobustnessTest, RejectsCrossTypeParse) {
  JlOptions o;
  o.num_rows = 8;
  const auto s = SketchJl(TestVector(13), o).value();
  const std::string bytes = SerializeJl(s);
  EXPECT_FALSE(DeserializeWmh(bytes).ok());
  EXPECT_FALSE(DeserializeKmv(bytes).ok());
}

TEST(SerializeRobustnessTest, RejectsBadVersion) {
  WmhOptions o;
  o.num_samples = 8;
  const auto s = SketchWmh(TestVector(14), o).value();
  std::string bytes = SerializeWmh(s);
  bytes[4] = 99;  // version byte
  EXPECT_FALSE(DeserializeWmh(bytes).ok());
}

TEST(PeekSketchTypeTest, IdentifiesAllTypes) {
  WmhOptions wo;
  wo.num_samples = 4;
  EXPECT_EQ(PeekSketchType(SerializeWmh(SketchWmh(TestVector(15), wo).value()))
                .value(),
            SketchTypeTag::kWmh);
  JlOptions jo;
  jo.num_rows = 4;
  EXPECT_EQ(PeekSketchType(SerializeJl(SketchJl(TestVector(16), jo).value()))
                .value(),
            SketchTypeTag::kJl);
  KmvOptions ko;
  ko.k = 4;
  EXPECT_EQ(PeekSketchType(SerializeKmv(SketchKmv(TestVector(17), ko).value()))
                .value(),
            SketchTypeTag::kKmv);
  const auto full = SketchWmh(TestVector(18), wo).value();
  EXPECT_EQ(PeekSketchType(SerializeCompactWmh(CompactFromWmh(full))).value(),
            SketchTypeTag::kCompactWmh);
  EXPECT_EQ(
      PeekSketchType(SerializeBbitWmh(BbitFromWmh(full, 16).value())).value(),
      SketchTypeTag::kBbitWmh);
  EXPECT_FALSE(PeekSketchType("nope").ok());
}

TEST(QuantizedSerializeTest, RoundTripsAndRejectsMalformedBytes) {
  WmhOptions o;
  o.num_samples = 8;
  o.engine = WmhEngine::kActiveIndex;
  const auto full = SketchWmh(TestVector(19), o).value();

  const auto compact = CompactFromWmh(full);
  const std::string cb = SerializeCompactWmh(compact);
  auto cparsed = DeserializeCompactWmh(cb);
  ASSERT_TRUE(cparsed.ok()) << cparsed.status().ToString();
  EXPECT_EQ(SerializeCompactWmh(cparsed.value()), cb);
  EXPECT_EQ(cparsed.value().engine, WmhEngine::kActiveIndex);
  EXPECT_EQ(cparsed.value().hashes, compact.hashes);
  EXPECT_EQ(cparsed.value().values, compact.values);

  const auto bbit = BbitFromWmh(full, 12).value();
  const std::string bb = SerializeBbitWmh(bbit);
  auto bparsed = DeserializeBbitWmh(bb);
  ASSERT_TRUE(bparsed.ok()) << bparsed.status().ToString();
  EXPECT_EQ(SerializeBbitWmh(bparsed.value()), bb);
  EXPECT_EQ(bparsed.value().bits, 12u);
  EXPECT_EQ(bparsed.value().fingerprints, bbit.fingerprints);

  // Truncated, type-confused, and empty inputs are all rejected.
  EXPECT_FALSE(DeserializeCompactWmh(bb).ok());
  EXPECT_FALSE(DeserializeBbitWmh(cb).ok());
  EXPECT_FALSE(DeserializeCompactWmh("").ok());
  for (size_t cut = 1; cut < cb.size(); cut += 7) {
    EXPECT_FALSE(
        DeserializeCompactWmh(std::string_view(cb).substr(0, cut)).ok());
  }
}

}  // namespace
}  // namespace ipsketch
