// The kDart engine's contract: exactly the Algorithm-3 semantics of the
// other engines — coordinated per-slot hashing of the expanded vector —
// under a different, faster hash function. The tests here check the three
// layers of that claim:
//
//   1. exact structural properties (union-min coordination, prefix
//      truncation, fallback consistency) that must hold bit-for-bit;
//   2. statistical equivalence with the kExpandedReference oracle at small
//      L (match rate against the closed-form weighted Jaccard, estimator
//      error distribution);
//   3. the same checks at production-scale L, where only kDart and
//      kActiveIndex can run, plus the fast-ICWS variant built on the same
//      kernel.

#include "core/dart_minhash.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/icws.h"
#include "core/rounding.h"
#include "core/wmh_estimator.h"
#include "core/wmh_sketch.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector RandomVector(uint64_t dim, size_t nnz, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (size_t i = 0; i < nnz; ++i) {
    double v = rng.NextGaussian();
    if (v == 0.0) v = 0.5;
    entries.push_back({i * (dim / nnz), v});
  }
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

// A pair with substantial overlap: the first `shared` coordinates carry
// identical values, the rest are independent — so the true inner product is
// well away from zero and the match test has something to match.
std::pair<SparseVector, SparseVector> OverlappingPair(uint64_t dim,
                                                      size_t nnz,
                                                      size_t shared,
                                                      uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> ea, eb;
  for (size_t i = 0; i < nnz; ++i) {
    const uint64_t index = i * (dim / nnz);
    const double va = rng.NextGaussian() + 0.1;
    const double vb = rng.NextGaussian() + 0.1;
    ea.push_back({index, va});
    eb.push_back({index, i < shared ? va : vb});
  }
  return {SparseVector::MakeOrDie(dim, std::move(ea)),
          SparseVector::MakeOrDie(dim, std::move(eb))};
}

// --- exact structural properties -------------------------------------------

// Hand-built discretized vectors (the kernel reads entries only; reps need
// not sum to L here).
DiscretizedVector MakeDv(std::vector<DiscretizedEntry> entries) {
  DiscretizedVector dv;
  dv.dimension = 64;
  dv.L = 1024;
  dv.original_norm = 1.0;
  dv.entries = std::move(entries);
  return dv;
}

std::vector<double> DartHashes(const DiscretizedVector& dv, uint64_t seed,
                               size_t m, double theta,
                               std::vector<double>* values = nullptr) {
  std::vector<double> hashes(m), vals(m);
  SketchWithDartThreshold(dv, seed, m, theta, &hashes, &vals);
  if (values != nullptr) *values = vals;
  return hashes;
}

// The property the whole estimator rests on: the per-sample minimum of the
// union of two expanded vectors equals min of the two sketches' minima,
// exactly, because every slot hash is a pure function of
// (seed, sample, block, slot). Checked across thresholds that exercise the
// dart layer, the fallback layer, and the dense θ = 1 walk.
TEST(DartKernelTest, UnionMinIsExactlyElementwiseMin) {
  const auto dv_a = MakeDv({{3, 5, 0.5}, {10, 2, -0.25}});
  const auto dv_b = MakeDv({{3, 2, 0.5}, {10, 7, -0.25}, {20, 4, 0.125}});
  const auto dv_u = MakeDv({{3, 5, 0.5}, {10, 7, -0.25}, {20, 4, 0.125}});
  const size_t m = 128;
  for (double theta : {1.0, 0.25, 0.01, 1e-4}) {
    for (uint64_t seed : {0u, 7u, 99u}) {
      const auto ha = DartHashes(dv_a, seed, m, theta);
      const auto hb = DartHashes(dv_b, seed, m, theta);
      const auto hu = DartHashes(dv_u, seed, m, theta);
      for (size_t s = 0; s < m; ++s) {
        EXPECT_EQ(hu[s], std::min(ha[s], hb[s]))
            << "theta " << theta << " seed " << seed << " sample " << s;
      }
    }
  }
}

// Growing a block's repetition count only ever lowers its contribution
// (more occupied slots), and a changed minimum means the argmin moved into
// the extension — the truncation-coordination property that keeps sketches
// of different vectors comparable.
TEST(DartKernelTest, BlockPrefixTruncationIsCoordinated) {
  const size_t m = 64;
  for (double theta : {0.3, 0.02, 1e-4}) {
    std::vector<double> prev =
        DartHashes(MakeDv({{5, 1, 1.0}}), 42, m, theta);
    for (uint64_t reps : {2u, 3u, 8u, 64u, 1024u}) {
      const auto cur = DartHashes(MakeDv({{5, reps, 1.0}}), 42, m, theta);
      for (size_t s = 0; s < m; ++s) {
        EXPECT_LE(cur[s], prev[s]) << "reps " << reps << " sample " << s;
      }
      prev = cur;
    }
  }
}

TEST(DartKernelTest, HashesAreInUnitIntervalEvenUnderFallback) {
  // θ = 1e-4 leaves nearly every sample uncovered, forcing the fallback
  // layer; every hash must stay in (0, 1] and map above θ.
  const auto dv = MakeDv({{1, 3, 1.0}, {9, 2, -0.5}});
  const auto hashes = DartHashes(dv, 3, 256, 1e-4);
  size_t fallback = 0;
  for (double h : hashes) {
    EXPECT_GT(h, 0.0);
    EXPECT_LE(h, 1.0);
    if (h > 1e-4) ++fallback;
  }
  EXPECT_GT(fallback, 200u);  // the tiny threshold covers almost nothing
}

TEST(DartKernelTest, ThresholdFormula) {
  // θ = (ln m + 4)/L, clamped to 1.
  EXPECT_NEAR(DartThreshold(128, 4096),
              (std::log(128.0) + 4.0) / 4096.0, 1e-15);
  EXPECT_EQ(DartThreshold(128, 2), 1.0);
  // Production-scale L drives θ — and with it the dart count — down.
  EXPECT_LT(DartThreshold(256, 1 << 20) * (1 << 20) * 256.0, 3000.0);
}

TEST(DartEngineTest, CrossEngineEstimationIsRejected) {
  const auto v = RandomVector(512, 32, 1);
  WmhOptions dart, active;
  dart.num_samples = active.num_samples = 16;
  dart.L = active.L = 4096;
  dart.engine = WmhEngine::kDart;
  active.engine = WmhEngine::kActiveIndex;
  const auto sd = SketchWmh(v, dart).value();
  const auto sa = SketchWmh(v, active).value();
  EXPECT_EQ(EstimateWmhInnerProduct(sd, sa).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(sd.engine, WmhEngine::kDart);
  EXPECT_EQ(sa.engine, WmhEngine::kActiveIndex);
}

// --- statistical equivalence with the oracle at small L ---------------------

// Match rate: for coordinated Weighted MinHash, P[hash_a[s] == hash_b[s]]
// is the weighted Jaccard similarity of the discretized vectors (Fact 5).
// Both the oracle and the dart engine must concentrate on the same exact
// value, computed in integer arithmetic by rounding.h.
TEST(DartEquivalenceTest, MatchRateMatchesExactWeightedJaccardSmallL) {
  const uint64_t kL = 512;
  const auto [a, b] = OverlappingPair(4096, 48, 24, 5);
  const double exact_j =
      WeightedJaccard(Round(a, kL).value(), Round(b, kL).value()).value();

  const size_t m = 64;
  const int kSeeds = 150;
  size_t matches_dart = 0, matches_ref = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    WmhOptions o;
    o.num_samples = m;
    o.seed = static_cast<uint64_t>(seed);
    o.L = kL;
    o.engine = WmhEngine::kDart;
    const auto da = SketchWmh(a, o).value();
    const auto db = SketchWmh(b, o).value();
    o.engine = WmhEngine::kExpandedReference;
    const auto ra = SketchWmh(a, o).value();
    const auto rb = SketchWmh(b, o).value();
    for (size_t s = 0; s < m; ++s) {
      matches_dart += (da.hashes[s] == db.hashes[s]);
      matches_ref += (ra.hashes[s] == rb.hashes[s]);
    }
  }
  const double n = static_cast<double>(m) * kSeeds;
  const double rate_dart = static_cast<double>(matches_dart) / n;
  const double rate_ref = static_cast<double>(matches_ref) / n;
  // 5σ of a Bernoulli(J) mean over n trials.
  const double tol = 5.0 * std::sqrt(exact_j * (1.0 - exact_j) / n);
  EXPECT_NEAR(rate_dart, exact_j, tol);
  EXPECT_NEAR(rate_ref, exact_j, tol);
}

// Estimator error: across many seeds, the dart engine's inner product
// estimates must be unbiased around the true value and carry the same
// error scale as the oracle's — the engines differ in hash function, not
// in distribution.
TEST(DartEquivalenceTest, EstimatorErrorIndistinguishableFromOracleSmallL) {
  const uint64_t kL = 512;
  const auto [a, b] = OverlappingPair(4096, 48, 28, 11);
  const double truth = Dot(a, b);
  ASSERT_GT(std::fabs(truth), 1e-6);

  const size_t m = 64;
  const int kSeeds = 200;
  double sum_dart = 0.0, sum_sq_dart = 0.0;
  double sum_ref = 0.0, sum_sq_ref = 0.0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    WmhOptions o;
    o.num_samples = m;
    o.seed = static_cast<uint64_t>(seed);
    o.L = kL;
    o.engine = WmhEngine::kDart;
    const double err_dart =
        EstimateWmhInnerProduct(SketchWmh(a, o).value(),
                                SketchWmh(b, o).value())
            .value() -
        truth;
    o.engine = WmhEngine::kExpandedReference;
    const double err_ref =
        EstimateWmhInnerProduct(SketchWmh(a, o).value(),
                                SketchWmh(b, o).value())
            .value() -
        truth;
    sum_dart += err_dart;
    sum_sq_dart += err_dart * err_dart;
    sum_ref += err_ref;
    sum_sq_ref += err_ref * err_ref;
  }
  const double mean_dart = sum_dart / kSeeds;
  const double mean_ref = sum_ref / kSeeds;
  const double rmse_dart = std::sqrt(sum_sq_dart / kSeeds);
  const double rmse_ref = std::sqrt(sum_sq_ref / kSeeds);

  // Means within 5 standard errors of zero (Theorem 2: nearly unbiased).
  EXPECT_LT(std::fabs(mean_dart), 5.0 * rmse_dart / std::sqrt(1.0 * kSeeds));
  EXPECT_LT(std::fabs(mean_ref), 5.0 * rmse_ref / std::sqrt(1.0 * kSeeds));
  // Error scales agree: the RMSE ratio concentrates at 1 with ~10%
  // sampling noise at 200 trials; 1.35 is a >5σ band.
  EXPECT_LT(rmse_dart / rmse_ref, 1.35);
  EXPECT_LT(rmse_ref / rmse_dart, 1.35);
}

// --- production L -----------------------------------------------------------

// At L = 2^20 the oracle cannot run; the dart engine must agree with the
// active-index engine (and with the exact weighted Jaccard) instead.
TEST(DartEquivalenceTest, ProductionLMatchRateAndErrorAgreeWithActiveIndex) {
  const uint64_t kL = 1 << 20;
  const auto [a, b] = OverlappingPair(1 << 16, 64, 32, 17);
  const double truth = Dot(a, b);
  const double exact_j =
      WeightedJaccard(Round(a, kL).value(), Round(b, kL).value()).value();

  const size_t m = 256;
  const int kSeeds = 50;
  size_t matches_dart = 0, matches_active = 0;
  double sum_sq_dart = 0.0, sum_sq_active = 0.0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    WmhOptions o;
    o.num_samples = m;
    o.seed = static_cast<uint64_t>(seed);
    o.L = kL;
    o.engine = WmhEngine::kDart;
    const auto da = SketchWmh(a, o).value();
    const auto db = SketchWmh(b, o).value();
    o.engine = WmhEngine::kActiveIndex;
    const auto aa = SketchWmh(a, o).value();
    const auto ab = SketchWmh(b, o).value();
    for (size_t s = 0; s < m; ++s) {
      matches_dart += (da.hashes[s] == db.hashes[s]);
      matches_active += (aa.hashes[s] == ab.hashes[s]);
    }
    const double ed = EstimateWmhInnerProduct(da, db).value() - truth;
    const double ea = EstimateWmhInnerProduct(aa, ab).value() - truth;
    sum_sq_dart += ed * ed;
    sum_sq_active += ea * ea;
  }
  const double n = static_cast<double>(m) * kSeeds;
  const double tol = 5.0 * std::sqrt(exact_j * (1.0 - exact_j) / n);
  EXPECT_NEAR(static_cast<double>(matches_dart) / n, exact_j, tol);
  EXPECT_NEAR(static_cast<double>(matches_active) / n, exact_j, tol);
  const double rmse_ratio =
      std::sqrt(sum_sq_dart / sum_sq_active);
  EXPECT_LT(rmse_ratio, 1.5);
  EXPECT_GT(rmse_ratio, 1.0 / 1.5);
}

// --- the fast-ICWS variant ---------------------------------------------------

TEST(IcwsDartTest, DeterministicAndCarriesEngineIdentity) {
  const auto v = RandomVector(512, 32, 3);
  IcwsOptions o;
  o.num_samples = 32;
  o.seed = 9;
  o.engine = IcwsEngine::kDart;
  o.L = 4096;
  const auto s1 = SketchIcws(v, o).value();
  const auto s2 = SketchIcws(v, o).value();
  EXPECT_EQ(s1.fingerprints, s2.fingerprints);
  EXPECT_EQ(s1.values, s2.values);
  EXPECT_EQ(s1.engine, IcwsEngine::kDart);
  EXPECT_EQ(s1.L, 4096u);

  // Values come from the discretized support.
  const auto dv = Round(v, 4096).value();
  for (double value : s1.values) {
    bool found = false;
    for (const auto& e : dv.entries) {
      if (std::fabs(e.value - value) < 1e-15) found = true;
    }
    EXPECT_TRUE(found);
  }

  // The sketcher context produces bit-identical sketches to the one-shot
  // entry point (scratch reuse must not change results).
  auto sketcher = IcwsSketcher::Make(o).value();
  IcwsSketch via_sketcher;
  ASSERT_TRUE(sketcher.Sketch(v, &via_sketcher).ok());
  EXPECT_EQ(via_sketcher.fingerprints, s1.fingerprints);
  EXPECT_EQ(via_sketcher.values, s1.values);
}

TEST(IcwsDartTest, CrossEngineAndCrossLEstimationIsRejected) {
  const auto v = RandomVector(512, 32, 4);
  IcwsOptions exact;
  exact.num_samples = 16;
  IcwsOptions dart = exact;
  dart.engine = IcwsEngine::kDart;
  dart.L = 4096;
  const auto se = SketchIcws(v, exact).value();
  const auto sd = SketchIcws(v, dart).value();
  EXPECT_EQ(EstimateIcwsInnerProduct(se, sd).status().code(),
            StatusCode::kInvalidArgument);
  dart.L = 8192;
  const auto sd2 = SketchIcws(v, dart).value();
  EXPECT_EQ(EstimateIcwsInnerProduct(sd, sd2).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(IcwsDartTest, EstimatesAgreeWithExactIcwsStatistically) {
  const auto [a, b] = OverlappingPair(4096, 48, 28, 23);
  const double truth = Dot(a, b);
  ASSERT_GT(std::fabs(truth), 1e-6);

  const int kSeeds = 150;
  double sum_dart = 0.0, sum_sq_dart = 0.0;
  double sum_exact = 0.0, sum_sq_exact = 0.0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    IcwsOptions o;
    o.num_samples = 64;
    o.seed = static_cast<uint64_t>(seed);
    o.engine = IcwsEngine::kDart;
    o.L = 1 << 16;
    const double err_dart =
        EstimateIcwsInnerProduct(SketchIcws(a, o).value(),
                                 SketchIcws(b, o).value())
            .value() -
        truth;
    o.engine = IcwsEngine::kExact;
    o.L = 0;
    const double err_exact =
        EstimateIcwsInnerProduct(SketchIcws(a, o).value(),
                                 SketchIcws(b, o).value())
            .value() -
        truth;
    sum_dart += err_dart;
    sum_sq_dart += err_dart * err_dart;
    sum_exact += err_exact;
    sum_sq_exact += err_exact * err_exact;
  }
  const double rmse_dart = std::sqrt(sum_sq_dart / kSeeds);
  const double rmse_exact = std::sqrt(sum_sq_exact / kSeeds);
  EXPECT_LT(std::fabs(sum_dart / kSeeds),
            5.0 * rmse_dart / std::sqrt(1.0 * kSeeds));
  EXPECT_LT(rmse_dart / rmse_exact, 1.5);
  EXPECT_LT(rmse_exact / rmse_dart, 1.5);
}

TEST(IcwsDartTest, EmptyVectorAndTruncation) {
  IcwsOptions o;
  o.num_samples = 8;
  o.engine = IcwsEngine::kDart;
  const SparseVector zero = SparseVector::FromDense(std::vector<double>(8, 0.0));
  const auto s = SketchIcws(zero, o).value();
  EXPECT_EQ(s.norm, 0.0);
  for (uint64_t fp : s.fingerprints) EXPECT_EQ(fp, 0u);

  const auto v = RandomVector(512, 16, 6);
  const auto full = SketchIcws(v, o).value();
  const auto half = TruncatedIcws(full, 4);
  EXPECT_EQ(half.num_samples(), 4u);
  EXPECT_EQ(half.engine, full.engine);
  EXPECT_EQ(half.L, full.L);
}

}  // namespace
}  // namespace ipsketch
