#include "vector/sparse_vector.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

TEST(SparseVectorTest, DefaultIsEmpty) {
  SparseVector v;
  EXPECT_EQ(v.dimension(), 0u);
  EXPECT_EQ(v.nnz(), 0u);
  EXPECT_TRUE(v.empty());
}

TEST(SparseVectorTest, MakeSortsEntries) {
  auto v = SparseVector::Make(10, {{7, 1.0}, {2, 2.0}, {5, 3.0}});
  ASSERT_TRUE(v.ok());
  const auto& e = v.value().entries();
  ASSERT_EQ(e.size(), 3u);
  EXPECT_EQ(e[0].index, 2u);
  EXPECT_EQ(e[1].index, 5u);
  EXPECT_EQ(e[2].index, 7u);
}

TEST(SparseVectorTest, MakeDropsExplicitZeros) {
  auto v = SparseVector::Make(10, {{1, 0.0}, {2, 5.0}});
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value().nnz(), 1u);
  EXPECT_EQ(v.value().Get(1), 0.0);
  EXPECT_EQ(v.value().Get(2), 5.0);
}

TEST(SparseVectorTest, MakeRejectsDuplicates) {
  auto v = SparseVector::Make(10, {{3, 1.0}, {3, 2.0}});
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kInvalidArgument);
}

TEST(SparseVectorTest, MakeRejectsOutOfRangeIndex) {
  auto v = SparseVector::Make(10, {{10, 1.0}});
  EXPECT_FALSE(v.ok());
}

TEST(SparseVectorTest, MakeRejectsNonFinite) {
  EXPECT_FALSE(SparseVector::Make(4, {{0, NAN}}).ok());
  EXPECT_FALSE(SparseVector::Make(4, {{0, INFINITY}}).ok());
}

TEST(SparseVectorTest, DenseRoundTrip) {
  const std::vector<double> dense = {0.0, 1.5, 0.0, -2.0, 0.0};
  const SparseVector v = SparseVector::FromDense(dense);
  EXPECT_EQ(v.dimension(), 5u);
  EXPECT_EQ(v.nnz(), 2u);
  EXPECT_EQ(v.ToDense(), dense);
}

TEST(SparseVectorTest, GetBinarySearch) {
  const auto v = SparseVector::MakeOrDie(100, {{10, 1.0}, {50, -3.0}, {99, 7.0}});
  EXPECT_EQ(v.Get(10), 1.0);
  EXPECT_EQ(v.Get(50), -3.0);
  EXPECT_EQ(v.Get(99), 7.0);
  EXPECT_EQ(v.Get(0), 0.0);
  EXPECT_EQ(v.Get(11), 0.0);
  EXPECT_EQ(v.Get(98), 0.0);
}

TEST(SparseVectorTest, Norms) {
  const auto v = SparseVector::MakeOrDie(10, {{0, 3.0}, {1, -4.0}});
  EXPECT_DOUBLE_EQ(v.Norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.SquaredNorm(), 25.0);
  EXPECT_DOUBLE_EQ(v.L1Norm(), 7.0);
  EXPECT_DOUBLE_EQ(v.InfNorm(), 4.0);
}

TEST(SparseVectorTest, NormsOfEmpty) {
  SparseVector v;
  EXPECT_EQ(v.Norm(), 0.0);
  EXPECT_EQ(v.L1Norm(), 0.0);
  EXPECT_EQ(v.InfNorm(), 0.0);
}

TEST(SparseVectorTest, Scaled) {
  const auto v = SparseVector::MakeOrDie(10, {{0, 2.0}, {3, -1.0}});
  const auto s = v.Scaled(-2.0);
  EXPECT_EQ(s.Get(0), -4.0);
  EXPECT_EQ(s.Get(3), 2.0);
  EXPECT_EQ(s.dimension(), 10u);
}

TEST(SparseVectorTest, ScaledByZeroIsEmpty) {
  const auto v = SparseVector::MakeOrDie(10, {{0, 2.0}});
  EXPECT_TRUE(v.Scaled(0.0).empty());
}

TEST(SparseVectorTest, Normalized) {
  const auto v = SparseVector::MakeOrDie(10, {{0, 3.0}, {1, 4.0}});
  auto n = v.Normalized();
  ASSERT_TRUE(n.ok());
  EXPECT_NEAR(n.value().Norm(), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(n.value().Get(0), 0.6);
  EXPECT_DOUBLE_EQ(n.value().Get(1), 0.8);
}

TEST(SparseVectorTest, NormalizeZeroVectorFails) {
  SparseVector v = SparseVector::FromDense({0.0, 0.0});
  auto n = v.Normalized();
  EXPECT_FALSE(n.ok());
  EXPECT_EQ(n.status().code(), StatusCode::kFailedPrecondition);
}

TEST(SparseVectorTest, Equality) {
  const auto a = SparseVector::MakeOrDie(10, {{1, 2.0}});
  const auto b = SparseVector::MakeOrDie(10, {{1, 2.0}});
  const auto c = SparseVector::MakeOrDie(11, {{1, 2.0}});
  const auto d = SparseVector::MakeOrDie(10, {{1, 3.0}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == d);
}

TEST(SparseVectorTest, LargeDimensionIndices) {
  const uint64_t big = uint64_t{1} << 62;
  const auto v = SparseVector::MakeOrDie(uint64_t{1} << 63, {{big, 1.0}});
  EXPECT_EQ(v.Get(big), 1.0);
  EXPECT_EQ(v.nnz(), 1u);
}

TEST(SparseVectorTest, DebugStringMentionsEntriesAndDim) {
  const auto v = SparseVector::MakeOrDie(16, {{3, 1.5}});
  const std::string s = v.DebugString();
  EXPECT_NE(s.find("3: 1.5"), std::string::npos);
  EXPECT_NE(s.find("dim 16"), std::string::npos);
}

}  // namespace
}  // namespace ipsketch
