#include "sketch/simhash.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector RandomVector(uint64_t dim, size_t nnz, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (size_t i = 0; i < nnz; ++i) {
    entries.push_back({i * (dim / nnz), rng.NextGaussian()});
  }
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

SimHashSketch Sketch(const SparseVector& v, size_t bits, uint64_t seed) {
  SimHashOptions o;
  o.num_bits = bits;
  o.seed = seed;
  return SketchSimHash(v, o).value();
}

TEST(SimHashOptionsTest, Validation) {
  SimHashOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.num_bits = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(SimHashTest, DeterministicAndPacked) {
  const auto v = RandomVector(512, 64, 1);
  const auto s1 = Sketch(v, 130, 7);
  const auto s2 = Sketch(v, 130, 7);
  EXPECT_EQ(s1.bits, s2.bits);
  EXPECT_EQ(s1.bits.size(), 3u);  // ceil(130/64)
  EXPECT_DOUBLE_EQ(s1.StorageWords(), 4.0);
  EXPECT_NEAR(s1.norm, v.Norm(), 1e-12);
}

TEST(SimHashTest, IdenticalVectorsAgreeEverywhere) {
  const auto v = RandomVector(512, 64, 2);
  const auto sa = Sketch(v, 256, 3);
  const auto sb = Sketch(v, 256, 3);
  EXPECT_DOUBLE_EQ(EstimateSimHashCosine(sa, sb).value(), 1.0);
}

TEST(SimHashTest, OppositeVectorsDisagreeEverywhere) {
  const auto v = RandomVector(512, 64, 4);
  const auto sa = Sketch(v, 256, 5);
  const auto sb = Sketch(v.Scaled(-1.0), 256, 5);
  // θ = π ⇒ cos ≈ −1 (boundary ties at acc == 0 are measure-zero-ish).
  EXPECT_LT(EstimateSimHashCosine(sa, sb).value(), -0.95);
}

TEST(SimHashTest, CosineEstimateAccuracy) {
  const auto a = RandomVector(1024, 128, 6);
  const auto b = RandomVector(1024, 128, 7);
  const double truth = CosineSimilarity(a, b);
  double est_sum = 0.0;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    est_sum +=
        EstimateSimHashCosine(Sketch(a, 2048, seed), Sketch(b, 2048, seed))
            .value();
  }
  EXPECT_NEAR(est_sum / kSeeds, truth, 0.05);
}

TEST(SimHashTest, InnerProductEstimateUsesNorms) {
  const auto a = RandomVector(1024, 128, 8);
  const auto b = RandomVector(1024, 128, 9);
  const double truth = Dot(a, b);
  double est_sum = 0.0;
  const int kSeeds = 30;
  for (int seed = 0; seed < kSeeds; ++seed) {
    est_sum += EstimateSimHashInnerProduct(Sketch(a, 2048, seed),
                                           Sketch(b, 2048, seed))
                   .value();
  }
  EXPECT_NEAR(est_sum / kSeeds, truth, 0.1 * a.Norm() * b.Norm());
}

TEST(SimHashTest, CompatibilityChecks) {
  const auto v = RandomVector(128, 16, 10);
  EXPECT_FALSE(
      EstimateSimHashCosine(Sketch(v, 64, 1), Sketch(v, 128, 1)).ok());
  EXPECT_FALSE(
      EstimateSimHashCosine(Sketch(v, 64, 1), Sketch(v, 64, 2)).ok());
}

TEST(SimHashTest, TailBitsMasked) {
  // num_bits not a multiple of 64: the final partial word's unused bits
  // must not contribute disagreements.
  const auto v = RandomVector(256, 32, 11);
  const auto sa = Sketch(v, 70, 12);
  auto sb = sa;
  // Poison the unused tail bits of the last word of b.
  sb.bits.back() |= ~((uint64_t{1} << (70 % 64)) - 1);
  EXPECT_DOUBLE_EQ(EstimateSimHashCosine(sa, sb).value(), 1.0);
}

}  // namespace
}  // namespace ipsketch
