#include "table/column.h"

#include <cmath>

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

TEST(KeyedColumnTest, MakeValidatesLengths) {
  EXPECT_FALSE(KeyedColumn::Make("x", {1, 2}, {1.0}).ok());
  EXPECT_TRUE(KeyedColumn::Make("x", {1, 2}, {1.0, 2.0}).ok());
  EXPECT_TRUE(KeyedColumn::Make("empty", {}, {}).ok());
}

TEST(KeyedColumnTest, MakeRejectsNonFinite) {
  EXPECT_FALSE(KeyedColumn::Make("x", {1}, {NAN}).ok());
  EXPECT_FALSE(KeyedColumn::Make("x", {1}, {INFINITY}).ok());
}

TEST(KeyedColumnTest, Accessors) {
  const auto c = KeyedColumn::MakeOrDie("rides", {3, 1, 2}, {30.0, 10.0, 20.0});
  EXPECT_EQ(c.name(), "rides");
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.keys()[0], 3u);
  EXPECT_EQ(c.values()[0], 30.0);
  EXPECT_EQ(c.MaxKey(), 3u);
}

TEST(KeyedColumnTest, UniqueKeyDetection) {
  EXPECT_TRUE(
      KeyedColumn::MakeOrDie("u", {1, 2, 3}, {1, 1, 1}).HasUniqueKeys());
  EXPECT_FALSE(
      KeyedColumn::MakeOrDie("d", {1, 2, 1}, {1, 1, 1}).HasUniqueKeys());
  EXPECT_TRUE(KeyedColumn::MakeOrDie("e", {}, {}).HasUniqueKeys());
}

TEST(KeyedColumnTest, AggregationSum) {
  const auto c =
      KeyedColumn::MakeOrDie("x", {5, 3, 5, 3, 7}, {1.0, 2.0, 3.0, 4.0, 5.0});
  const auto agg = c.Aggregated(Aggregation::kSum);
  EXPECT_TRUE(agg.HasUniqueKeys());
  ASSERT_EQ(agg.size(), 3u);
  // Sorted keys: 3, 5, 7.
  EXPECT_EQ(agg.keys(), (std::vector<uint64_t>{3, 5, 7}));
  EXPECT_EQ(agg.values(), (std::vector<double>{6.0, 4.0, 5.0}));
}

TEST(KeyedColumnTest, AggregationMean) {
  const auto c = KeyedColumn::MakeOrDie("x", {1, 1, 2}, {2.0, 4.0, 9.0});
  const auto agg = c.Aggregated(Aggregation::kMean);
  EXPECT_EQ(agg.values(), (std::vector<double>{3.0, 9.0}));
}

TEST(KeyedColumnTest, AggregationMinMax) {
  const auto c =
      KeyedColumn::MakeOrDie("x", {1, 1, 1}, {5.0, -2.0, 3.0});
  EXPECT_EQ(c.Aggregated(Aggregation::kMin).values(),
            (std::vector<double>{-2.0}));
  EXPECT_EQ(c.Aggregated(Aggregation::kMax).values(),
            (std::vector<double>{5.0}));
}

TEST(KeyedColumnTest, AggregationCountAndFirst) {
  const auto c =
      KeyedColumn::MakeOrDie("x", {4, 4, 4, 9}, {7.0, 8.0, 9.0, 1.0});
  EXPECT_EQ(c.Aggregated(Aggregation::kCount).values(),
            (std::vector<double>{3.0, 1.0}));
  EXPECT_EQ(c.Aggregated(Aggregation::kFirst).values(),
            (std::vector<double>{7.0, 1.0}));
}

TEST(KeyedColumnTest, AggregationPreservesName) {
  const auto c = KeyedColumn::MakeOrDie("taxi", {1, 1}, {1.0, 2.0});
  EXPECT_EQ(c.Aggregated(Aggregation::kSum).name(), "taxi");
}

TEST(KeyedColumnTest, AggregationOfUniqueKeysIsIdentityUnderFirst) {
  const auto c = KeyedColumn::MakeOrDie("x", {2, 1, 3}, {20.0, 10.0, 30.0});
  const auto agg = c.Aggregated(Aggregation::kFirst);
  EXPECT_EQ(agg.keys(), (std::vector<uint64_t>{1, 2, 3}));
  EXPECT_EQ(agg.values(), (std::vector<double>{10.0, 20.0, 30.0}));
}

}  // namespace
}  // namespace ipsketch
