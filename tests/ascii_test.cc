#include "expt/ascii.h"

#include <sstream>

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

SweepResult SampleSweep() {
  SweepResult r;
  r.method_names = {"JL", "WMH"};
  r.storage_words = {100, 200};
  r.mean_errors = {{0.05, 0.03}, {0.01, 0.005}};
  return r;
}

TEST(FormatGTest, SignificantDigits) {
  EXPECT_EQ(FormatG(0.123456, 3), "0.123");
  EXPECT_EQ(FormatG(1234.5678, 6), "1234.57");
  EXPECT_EQ(FormatG(0.0, 4), "0");
}

TEST(PrintAlignedTableTest, AlignsColumns) {
  std::ostringstream os;
  PrintAlignedTable(os, {"name", "value"},
                    {{"alpha", "1"}, {"b", "22222"}});
  const std::string out = os.str();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);  // header rule
}

TEST(PrintSweepTableTest, ContainsHeadersAndValues) {
  std::ostringstream os;
  PrintSweepTable(os, SampleSweep());
  const std::string out = os.str();
  EXPECT_NE(out.find("storage"), std::string::npos);
  EXPECT_NE(out.find("JL"), std::string::npos);
  EXPECT_NE(out.find("WMH"), std::string::npos);
  EXPECT_NE(out.find("0.05"), std::string::npos);
  EXPECT_NE(out.find("0.005"), std::string::npos);
}

TEST(PrintSweepChartTest, RendersSeriesMarks) {
  std::ostringstream os;
  PrintSweepChart(os, SampleSweep(), 40, 10);
  const std::string out = os.str();
  EXPECT_NE(out.find("J"), std::string::npos);
  EXPECT_NE(out.find("W"), std::string::npos);
  EXPECT_NE(out.find("storage"), std::string::npos);
  // 10 canvas rows, each framed by "  |".
  size_t rows = 0;
  for (size_t pos = out.find("  |"); pos != std::string::npos;
       pos = out.find("  |", pos + 1)) {
    ++rows;
  }
  EXPECT_EQ(rows, 10u);
}

TEST(PrintWinningTableTest, MarksNegativeCells) {
  WinningTable table;
  table.overlap_edges = {0.5};
  table.kurtosis_edges = {10.0};
  table.diff = {{-0.02, 0.01}, {0.0, -0.3}};
  table.count = {{5, 3}, {0, 2}};
  std::ostringstream os;
  PrintWinningTable(os, table, "WMH", "JL");
  const std::string out = os.str();
  EXPECT_NE(out.find("err_WMH - err_JL"), std::string::npos);
  EXPECT_NE(out.find("-0.02*"), std::string::npos);  // negative → starred
  EXPECT_NE(out.find("-0.3*"), std::string::npos);
  EXPECT_NE(out.find("(n=5)"), std::string::npos);
  EXPECT_NE(out.find("-"), std::string::npos);  // empty cell placeholder
}

}  // namespace
}  // namespace ipsketch
