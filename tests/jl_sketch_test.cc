#include "sketch/jl_sketch.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector RandomVector(uint64_t dim, size_t nnz, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (size_t i = 0; i < nnz; ++i) {
    entries.push_back({i * (dim / nnz), rng.NextGaussian() + 0.1});
  }
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

JlSketch Sketch(const SparseVector& v, size_t m, uint64_t seed) {
  JlOptions o;
  o.num_rows = m;
  o.seed = seed;
  return SketchJl(v, o).value();
}

TEST(JlOptionsTest, Validation) {
  JlOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.num_rows = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(JlSketchTest, DeterministicAndShaped) {
  const auto v = RandomVector(1000, 100, 1);
  const auto s1 = Sketch(v, 64, 7);
  const auto s2 = Sketch(v, 64, 7);
  EXPECT_EQ(s1.projection, s2.projection);
  EXPECT_EQ(s1.num_rows(), 64u);
  EXPECT_DOUBLE_EQ(s1.StorageWords(), 64.0);
}

TEST(JlSketchTest, SketchIsLinear) {
  // S(a + b) = S(a) + S(b) — the defining property of linear sketches.
  const auto a = RandomVector(500, 50, 2);
  const auto b = RandomVector(500, 50, 3);
  const auto sum = Add(a, b).value();
  const auto sa = Sketch(a, 32, 11);
  const auto sb = Sketch(b, 32, 11);
  const auto ssum = Sketch(sum, 32, 11);
  for (size_t r = 0; r < 32; ++r) {
    EXPECT_NEAR(ssum.projection[r], sa.projection[r] + sb.projection[r],
                1e-9);
  }
}

TEST(JlSketchTest, ZeroVectorSketchesToZero) {
  SparseVector zero = SparseVector::FromDense(std::vector<double>(16, 0.0));
  const auto s = Sketch(zero, 16, 1);
  for (double p : s.projection) EXPECT_EQ(p, 0.0);
}

TEST(JlEstimatorTest, CompatibilityChecks) {
  const auto v = RandomVector(100, 20, 4);
  EXPECT_FALSE(
      EstimateJlInnerProduct(Sketch(v, 16, 1), Sketch(v, 32, 1)).ok());
  EXPECT_FALSE(
      EstimateJlInnerProduct(Sketch(v, 16, 1), Sketch(v, 16, 2)).ok());
  const auto w = RandomVector(101, 20, 4);
  EXPECT_FALSE(
      EstimateJlInnerProduct(Sketch(v, 16, 1), Sketch(w, 16, 1)).ok());
}

TEST(JlEstimatorTest, UnbiasedOverSeeds) {
  const auto a = RandomVector(800, 120, 5);
  const auto b = RandomVector(800, 120, 6);  // same support grid → overlap
  const double truth = Dot(a, b);
  double sum = 0.0;
  const int kSeeds = 500;
  for (int seed = 0; seed < kSeeds; ++seed) {
    sum += EstimateJlInnerProduct(Sketch(a, 64, seed), Sketch(b, 64, seed))
               .value();
  }
  const double se =
      Fact1Bound(a, b) / std::sqrt(64.0) / std::sqrt(double(kSeeds));
  EXPECT_NEAR(sum / kSeeds, truth, 5.0 * se);
}

TEST(JlEstimatorTest, SelfEstimateApproximatesSquaredNorm) {
  const auto v = RandomVector(600, 80, 7);
  const double truth = Dot(v, v);
  double err = 0.0;
  const int kSeeds = 50;
  for (int seed = 0; seed < kSeeds; ++seed) {
    const auto s = Sketch(v, 256, seed);
    err += std::fabs(EstimateJlInnerProduct(s, s).value() - truth);
  }
  EXPECT_LT(err / kSeeds, 0.25 * truth);
}

TEST(JlEstimatorTest, ErrorWithinFact1Scale) {
  // Fact 1: |est − ⟨a,b⟩| ≤ ε‖a‖‖b‖ with ε = O(1/√m), w.h.p.
  const auto a = RandomVector(500, 100, 8);
  const auto b = RandomVector(500, 100, 9);
  const double truth = Dot(a, b);
  const size_t m = 128;
  int violations = 0;
  const int kSeeds = 60;
  const double tolerance = 4.0 / std::sqrt(static_cast<double>(m));
  for (int seed = 0; seed < kSeeds; ++seed) {
    const double est =
        EstimateJlInnerProduct(Sketch(a, m, seed), Sketch(b, m, seed)).value();
    if (std::fabs(est - truth) > tolerance * Fact1Bound(a, b)) ++violations;
  }
  EXPECT_LE(violations, 3);
}

TEST(JlEstimatorTest, ErrorDecreasesWithRows) {
  const auto a = RandomVector(500, 100, 10);
  const auto b = RandomVector(500, 100, 11);
  const double truth = Dot(a, b);
  double err16 = 0.0, err256 = 0.0;
  const int kSeeds = 60;
  for (int seed = 0; seed < kSeeds; ++seed) {
    err16 += std::fabs(
        EstimateJlInnerProduct(Sketch(a, 16, seed), Sketch(b, 16, seed))
            .value() -
        truth);
    err256 += std::fabs(
        EstimateJlInnerProduct(Sketch(a, 256, seed), Sketch(b, 256, seed))
            .value() -
        truth);
  }
  EXPECT_LT(err256, err16 / 1.8);
}

TEST(TruncatedJlTest, PrefixMatchesFreshSketch) {
  const auto a = RandomVector(300, 60, 12);
  const auto b = RandomVector(300, 60, 13);
  const auto sa = Sketch(a, 128, 14);
  const auto sb = Sketch(b, 128, 14);
  const double est_trunc =
      EstimateJlInnerProduct(TruncatedJl(sa, 32), TruncatedJl(sb, 32)).value();
  const double est_fresh =
      EstimateJlInnerProduct(Sketch(a, 32, 14), Sketch(b, 32, 14)).value();
  EXPECT_DOUBLE_EQ(est_trunc, est_fresh);
}

TEST(TruncatedJlDeathTest, RejectsBadPrefix) {
  const auto v = RandomVector(100, 10, 15);
  const auto s = Sketch(v, 16, 1);
  EXPECT_DEATH(TruncatedJl(s, 0), "IPS_CHECK");
  EXPECT_DEATH(TruncatedJl(s, 17), "IPS_CHECK");
}

}  // namespace
}  // namespace ipsketch
