// FrontDoor: async results match the synchronous engine, shedding and
// deadlines complete futures with the right codes, destruction never
// leaves a future hanging, and the read path takes zero shard mutexes.

#include "service/front_door.h"

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "index/banded_index.h"
#include "service/metrics.h"
#include "service/query_engine.h"
#include "service/sketch_store.h"
#include "service/thread_pool.h"

namespace ipsketch {
namespace {

constexpr uint64_t kDim = 512;

SketchStoreOptions SmallStoreOptions(const std::string& family = "wmh") {
  SketchStoreOptions opts;
  opts.family = family;
  opts.sketch.dimension = kDim;
  opts.sketch.num_samples = 64;
  opts.sketch.seed = 42;
  opts.num_shards = 8;
  return opts;
}

// A deterministic random sparse vector with ~24 non-zeros.
SparseVector RandomVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDim, 24, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDim, std::move(entries));
}

SketchStore MakeStoreOrDie(const SketchStoreOptions& opts) {
  auto made = SketchStore::Make(opts);
  IPS_CHECK(made.ok());
  return std::move(made).value();
}

SketchStore MakePopulatedStore(size_t count = 40) {
  SketchStore store = MakeStoreOrDie(SmallStoreOptions());
  for (uint64_t id = 0; id < count; ++id) {
    IPS_CHECK(store.BuildAndInsert(id, RandomVector(id)).ok());
  }
  return store;
}

// Parks the pool's only worker until `release` goes true, so everything
// submitted behind it queues deterministically at the front door.
void BlockPool(ThreadPool* pool, std::atomic<bool>* release) {
  IPS_CHECK(pool->Submit([release] {
    while (!release->load()) std::this_thread::yield();
  }));
}

TEST(FrontDoorTest, FuturesMatchSynchronousEngine) {
  SketchStore store = MakePopulatedStore();
  ThreadPool pool(2);
  FrontDoor door(&store, &pool);
  QueryEngine sync(&store);

  auto est_future = door.SubmitEstimate(3, 17);
  auto topk_future = door.SubmitTopK(RandomVector(777), 10);

  auto est = est_future.Take();
  ASSERT_TRUE(est.ok()) << est.status().ToString();
  auto sync_est = sync.EstimateInnerProduct(3, 17);
  ASSERT_TRUE(sync_est.ok());
  EXPECT_EQ(est.value(), sync_est.value());

  auto hits = topk_future.Take();
  ASSERT_TRUE(hits.ok()) << hits.status().ToString();
  auto sync_hits = sync.TopK(RandomVector(777), 10);
  ASSERT_TRUE(sync_hits.status().ok());
  ASSERT_EQ(hits.value().size(), sync_hits.value().size());
  for (size_t i = 0; i < hits.value().size(); ++i) {
    EXPECT_EQ(hits.value()[i].id, sync_hits.value()[i].id);
    EXPECT_EQ(hits.value()[i].estimate, sync_hits.value()[i].estimate);
  }
}

TEST(FrontDoorTest, CallbackFormDelivers) {
  SketchStore store = MakePopulatedStore();
  ThreadPool pool(2);
  FrontDoor door(&store, &pool);

  std::atomic<int> pending{3};
  std::atomic<bool> all_ok{true};
  door.SubmitEstimate(1, 2, [&](FrontDoor::EstimateResult r) {
    if (!r.ok()) all_ok.store(false);
    pending.fetch_sub(1);
  });
  door.SubmitTopK(RandomVector(5), 4, [&](FrontDoor::TopKResult r) {
    if (!r.ok() || r.value().size() != 4) all_ok.store(false);
    pending.fetch_sub(1);
  });
  auto sketch = store.family().NewSketch();
  auto sketcher = store.family().MakeSketcher();
  ASSERT_TRUE(sketcher.ok());
  ASSERT_TRUE(sketcher.value()->Sketch(RandomVector(6), sketch.get()).ok());
  door.SubmitTopKSketch(std::move(sketch), 4, [&](FrontDoor::TopKResult r) {
    if (!r.ok() || r.value().size() != 4) all_ok.store(false);
    pending.fetch_sub(1);
  });
  while (pending.load() != 0) std::this_thread::yield();
  EXPECT_TRUE(all_ok.load());
}

TEST(FrontDoorTest, MissingIdsAndBadQueriesFailPerRequest) {
  SketchStore store = MakePopulatedStore(8);
  ThreadPool pool(1);
  FrontDoor door(&store, &pool);

  auto missing = door.SubmitEstimate(3, 99999).Take();
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);

  // An incompatible pre-built sketch gets its own error slot; a healthy
  // request in the same window still completes.
  SketchStoreOptions other_opts = SmallStoreOptions();
  other_opts.sketch.seed = 4242;
  SketchStore other = MakeStoreOrDie(other_opts);
  ASSERT_TRUE(other.BuildAndInsert(0, RandomVector(0)).ok());
  auto bad = other.Lookup(0);
  ASSERT_TRUE(bad.ok());
  auto bad_future =
      door.SubmitTopKSketch(std::move(bad).value(), 3);
  auto good_future = door.SubmitTopK(RandomVector(9), 3);
  auto bad_result = bad_future.Take();
  ASSERT_FALSE(bad_result.ok());
  EXPECT_EQ(bad_result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(good_future.Take().ok());
}

TEST(FrontDoorTest, ShedsOnFullQueueWithUnavailable) {
  SketchStore store = MakePopulatedStore(16);
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  BlockPool(&pool, &release);

  FrontDoorOptions opts;
  opts.max_queue_depth = 4;
  FrontDoor door(&store, &pool, opts);

  std::vector<FrontDoorFuture<std::vector<QueryHit>>> futures;
  for (int i = 0; i < 7; ++i) {
    futures.push_back(door.SubmitTopK(RandomVector(100 + i), 3));
  }
  // The worker is parked, so the last three found the 4-deep queue full and
  // were shed synchronously at submit.
  size_t shed = 0;
  for (size_t i = 4; i < futures.size(); ++i) {
    ASSERT_TRUE(futures[i].Ready());
    auto r = futures[i].Take();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kUnavailable);
    ++shed;
  }
  EXPECT_EQ(shed, 3u);

  release.store(true);
  for (size_t i = 0; i < 4; ++i) {
    auto r = futures[i].Take();
    EXPECT_TRUE(r.ok()) << r.status().ToString();
  }
}

TEST(FrontDoorTest, DeadlineExpiresWhileQueued) {
  SketchStore store = MakePopulatedStore(16);
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  BlockPool(&pool, &release);

  FrontDoor door(&store, &pool);
  // 1 ns budget: certainly expired by the time the parked worker frees up.
  auto doomed = door.SubmitTopK(RandomVector(1), 3, /*deadline_ns=*/1);
  auto patient = door.SubmitTopK(RandomVector(2), 3);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  release.store(true);

  auto r = doomed.Take();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(patient.Take().ok());
}

TEST(FrontDoorTest, DestructionCompletesEveryInFlightFuture) {
  SketchStore store = MakePopulatedStore(16);
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  BlockPool(&pool, &release);

  std::vector<FrontDoorFuture<std::vector<QueryHit>>> futures;
  {
    FrontDoor door(&store, &pool);
    for (int i = 0; i < 8; ++i) {
      futures.push_back(door.SubmitTopK(RandomVector(200 + i), 3));
    }
    release.store(true);
    // ~FrontDoor: sheds what is still queued, drains what is executing.
  }
  for (auto& f : futures) {
    ASSERT_TRUE(f.Ready());  // the destructor may not leave futures hanging
    auto r = f.Take();
    EXPECT_TRUE(r.ok() || r.status().code() == StatusCode::kUnavailable)
        << r.status().ToString();
  }
}

TEST(FrontDoorTest, NullPoolDispatchesInline) {
  SketchStore store = MakePopulatedStore(16);
  FrontDoor door(&store, /*pool=*/nullptr);
  auto r = door.SubmitTopK(RandomVector(3), 5).Take();
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().size(), 5u);
}

TEST(FrontDoorTest, SnapshotReadsServeThroughCompactifyRefusal) {
  SketchStore store = MakePopulatedStore();
  auto index = BandedIndex::MakeAttached(&store, {/*bands=*/8, /*rows=*/2});
  ASSERT_TRUE(index.ok()) << index.status().ToString();
  ThreadPool pool(2);
  FrontDoor door(&store, &pool, {}, index.value().get(),
                 IndexPolicy::kSlabScan);

  auto before = door.SubmitTopK(RandomVector(50), 5).Take();
  ASSERT_TRUE(before.ok());

  // With a listener attached, in-place compactification must refuse — the
  // slab mirror cannot survive a family swap.
  Status st = store.CompactifyInPlace("wmh_compact");
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);

  // The refusal perturbed nothing: the same query answers identically.
  auto after = door.SubmitTopK(RandomVector(50), 5).Take();
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(after.value().size(), before.value().size());
  for (size_t i = 0; i < after.value().size(); ++i) {
    EXPECT_EQ(after.value()[i].id, before.value()[i].id);
    EXPECT_EQ(after.value()[i].estimate, before.value()[i].estimate);
  }
}

TEST(FrontDoorTest, SlabScanPolicyMatchesExactScan) {
  SketchStore store = MakePopulatedStore();
  auto index = BandedIndex::MakeAttached(&store, {/*bands=*/8, /*rows=*/2});
  ASSERT_TRUE(index.ok());
  ThreadPool pool(2);
  FrontDoor door(&store, &pool, {}, index.value().get(),
                 IndexPolicy::kSlabScan);
  QueryEngine exact(&store);

  for (int i = 0; i < 4; ++i) {
    auto slab_hits = door.SubmitTopK(RandomVector(300 + i), 8).Take();
    ASSERT_TRUE(slab_hits.ok());
    auto exact_hits = exact.TopK(RandomVector(300 + i), 8);
    ASSERT_TRUE(exact_hits.status().ok());
    ASSERT_EQ(slab_hits.value().size(), exact_hits.value().size());
    for (size_t j = 0; j < slab_hits.value().size(); ++j) {
      EXPECT_EQ(slab_hits.value()[j].id, exact_hits.value()[j].id);
      EXPECT_EQ(slab_hits.value()[j].estimate,
                exact_hits.value()[j].estimate);
    }
  }
}

// Acceptance: a read-only burst through the front door never acquires a
// store shard mutex (the snapshot path is mutex-free for readers).
TEST(FrontDoorTest, ReadBurstTakesZeroShardMutexAcquisitions) {
  if (!metrics::kCompiledIn) {
    GTEST_SKIP() << "metrics compiled out; no scan-lock histogram to watch";
  }
  metrics::SetEnabledForTesting(true);
  SketchStore store = MakePopulatedStore();
  ThreadPool pool(2);
  FrontDoor door(&store, &pool);
  auto& scan_lock = metrics::MetricsRegistry::Global().GetHistogram(
      "ipsketch_store_scan_lock_ns",
      "Shard-lock acquire plus hold time of in-place shard scans");

  const uint64_t before = scan_lock.Count();
  std::vector<FrontDoorFuture<std::vector<QueryHit>>> topks;
  std::vector<FrontDoorFuture<double>> estimates;
  for (int i = 0; i < 40; ++i) {
    topks.push_back(door.SubmitTopK(RandomVector(400 + i), 5));
    estimates.push_back(door.SubmitEstimate(i % 40, (i + 7) % 40));
  }
  for (auto& f : topks) ASSERT_TRUE(f.Take().ok());
  for (auto& f : estimates) ASSERT_TRUE(f.Take().ok());
  EXPECT_EQ(scan_lock.Count(), before);
}

TEST(FrontDoorTest, CountersAccountForEveryOutcome) {
  if (!metrics::kCompiledIn) {
    GTEST_SKIP() << "metrics compiled out";
  }
  metrics::SetEnabledForTesting(true);
  auto& registry = metrics::MetricsRegistry::Global();
  auto& submitted = registry.GetCounter("ipsketch_frontdoor_submitted_total",
                                        "Requests submitted to the front door");
  auto& completed = registry.GetCounter(
      "ipsketch_frontdoor_completed_total",
      "Requests that executed to completion (answer or engine error)");
  auto& shed = registry.GetCounter(
      "ipsketch_frontdoor_shed_total",
      "Requests rejected with Unavailable (queue full or shutdown)");
  auto& expired = registry.GetCounter(
      "ipsketch_frontdoor_deadline_expired_total",
      "Requests whose deadline passed while queued (DeadlineExceeded)");
  const uint64_t submitted0 = submitted.Value();
  const uint64_t completed0 = completed.Value();
  const uint64_t shed0 = shed.Value();
  const uint64_t expired0 = expired.Value();

  SketchStore store = MakePopulatedStore(16);
  ThreadPool pool(1);
  std::atomic<bool> release{false};
  BlockPool(&pool, &release);
  FrontDoorOptions opts;
  opts.max_queue_depth = 2;
  FrontDoor door(&store, &pool, opts);

  auto ok1 = door.SubmitTopK(RandomVector(1), 3);
  auto doomed = door.SubmitTopK(RandomVector(2), 3, /*deadline_ns=*/1);
  auto rejected = door.SubmitTopK(RandomVector(3), 3);  // queue full
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  release.store(true);
  ASSERT_TRUE(ok1.Take().ok());
  ASSERT_EQ(doomed.Take().status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_EQ(rejected.Take().status().code(), StatusCode::kUnavailable);

  EXPECT_EQ(submitted.Value() - submitted0, 3u);
  EXPECT_EQ(completed.Value() - completed0, 1u);
  EXPECT_EQ(shed.Value() - shed0, 1u);
  EXPECT_EQ(expired.Value() - expired0, 1u);
}

}  // namespace
}  // namespace ipsketch
