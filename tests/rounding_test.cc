#include "core/rounding.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

SparseVector RandomVector(uint64_t dim, size_t nnz, uint64_t seed,
                          double heavy_fraction = 0.1) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (size_t i = 0; i < nnz; ++i) {
    double v = rng.NextGaussian();
    if (rng.NextUnit() < heavy_fraction) v *= 25.0;
    if (v == 0.0) v = 1.0;
    entries.push_back({i * (dim / nnz), v});
  }
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

TEST(RoundTest, RejectsZeroL) {
  const auto v = SparseVector::MakeOrDie(4, {{0, 1.0}});
  EXPECT_EQ(Round(v, 0).status().code(), StatusCode::kInvalidArgument);
}

TEST(RoundTest, RejectsZeroVector) {
  SparseVector zero = SparseVector::FromDense({0.0, 0.0});
  EXPECT_EQ(Round(zero, 64).status().code(), StatusCode::kFailedPrecondition);
}

TEST(RoundTest, TotalRepsIsExactlyL) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    for (uint64_t L : {16u, 64u, 1024u, 65536u}) {
      const auto v = RandomVector(1000, 50, seed);
      auto dv = Round(v, L);
      ASSERT_TRUE(dv.ok());
      EXPECT_EQ(dv.value().TotalReps(), L) << "seed=" << seed << " L=" << L;
    }
  }
}

TEST(RoundTest, ResultIsUnitNorm) {
  const auto v = RandomVector(1000, 80, 3);
  const auto dv = Round(v, 4096).value();
  EXPECT_NEAR(dv.ToSparseVector().Norm(), 1.0, 1e-9);
}

TEST(RoundTest, SquaredEntriesAreMultiplesOfOneOverL) {
  const uint64_t L = 512;
  const auto v = RandomVector(400, 40, 5);
  const auto dv = Round(v, L).value();
  for (const auto& e : dv.entries) {
    const double scaled = e.value * e.value * static_cast<double>(L);
    EXPECT_NEAR(scaled, std::round(scaled), 1e-6);
    EXPECT_EQ(static_cast<uint64_t>(std::round(scaled)), e.reps);
  }
}

TEST(RoundTest, PreservesSigns) {
  const auto v = SparseVector::MakeOrDie(8, {{0, -3.0}, {1, 4.0}});
  const auto dv = Round(v, 100).value();
  for (const auto& e : dv.entries) {
    if (e.index == 0) {
      EXPECT_LT(e.value, 0.0);
    }
    if (e.index == 1) {
      EXPECT_GT(e.value, 0.0);
    }
  }
}

TEST(RoundTest, ScaleInvariant) {
  // Round(a/‖a‖) depends only on the direction of a.
  const auto v = RandomVector(300, 30, 7);
  const auto dv1 = Round(v, 2048).value();
  const auto dv2 = Round(v.Scaled(37.5), 2048).value();
  ASSERT_EQ(dv1.entries.size(), dv2.entries.size());
  for (size_t i = 0; i < dv1.entries.size(); ++i) {
    EXPECT_EQ(dv1.entries[i].index, dv2.entries[i].index);
    EXPECT_EQ(dv1.entries[i].reps, dv2.entries[i].reps);
  }
  EXPECT_NEAR(dv2.original_norm, 37.5 * dv1.original_norm, 1e-9);
}

TEST(RoundTest, DeficitGoesToMaxEntry) {
  // z = (sqrt(0.5), sqrt(0.3), sqrt(0.2)), L = 10: squared values 5, 3, 2 —
  // exact. With L = 16: floors are 8, 4, 3 (sum 15), deficit 1 → max entry.
  const auto v = SparseVector::MakeOrDie(
      4, {{0, std::sqrt(0.5)}, {1, std::sqrt(0.3)}, {2, std::sqrt(0.2)}});
  const auto dv = Round(v, 16).value();
  ASSERT_EQ(dv.entries.size(), 3u);
  EXPECT_EQ(dv.entries[0].reps, 9u);  // 8 + deficit
  EXPECT_EQ(dv.entries[1].reps, 4u);
  EXPECT_EQ(dv.entries[2].reps, 3u);
}

TEST(RoundTest, ExactMultiplesUnchanged) {
  // Entries already integer multiples of 1/L in square: Round is a no-op
  // modulo normalization (Lemma 2's precondition).
  const auto v = SparseVector::MakeOrDie(
      4, {{0, std::sqrt(0.25)}, {1, std::sqrt(0.5)}, {3, std::sqrt(0.25)}});
  const auto dv = Round(v, 8).value();
  ASSERT_EQ(dv.entries.size(), 3u);
  EXPECT_EQ(dv.entries[0].reps, 2u);
  EXPECT_EQ(dv.entries[1].reps, 4u);
  EXPECT_EQ(dv.entries[2].reps, 2u);
}

TEST(RoundTest, SingleEntryVectorTakesAllReps) {
  const auto v = SparseVector::MakeOrDie(4, {{2, -7.0}});
  const auto dv = Round(v, 1000).value();
  ASSERT_EQ(dv.entries.size(), 1u);
  EXPECT_EQ(dv.entries[0].reps, 1000u);
  EXPECT_NEAR(dv.entries[0].value, -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(dv.original_norm, 7.0);
}

TEST(RoundTest, SmallLDropsTinyEntriesButKeepsMax) {
  // With L smaller than nnz, most entries round to zero reps; the max entry
  // must survive and absorb the deficit (line 2-3 of Algorithm 4).
  std::vector<Entry> entries;
  for (uint64_t i = 0; i < 100; ++i) entries.push_back({i, 1.0});
  entries.push_back({100, 10.0});
  const auto v = SparseVector::MakeOrDie(128, entries);
  const auto dv = Round(v, 4).value();
  EXPECT_EQ(dv.TotalReps(), 4u);
  bool has_max = false;
  for (const auto& e : dv.entries) has_max |= (e.index == 100);
  EXPECT_TRUE(has_max);
}

TEST(RoundTest, RoundingErrorShrinksWithL) {
  const auto v = RandomVector(500, 60, 11);
  const auto unit = v.Normalized().value();
  double prev_err = 1e9;
  for (uint64_t L : {64u, 1024u, 16384u, 262144u}) {
    const auto dv = Round(v, L).value();
    const auto z = dv.ToSparseVector();
    auto diff = Add(z, unit.Scaled(-1.0)).value();
    const double err = diff.Norm();
    EXPECT_LT(err, prev_err * 1.5);  // non-increasing up to noise
    prev_err = err;
  }
  EXPECT_LT(prev_err, 0.01);
}

TEST(DiscretizedVectorTest, SquaredValueAtLookup) {
  const auto v = SparseVector::MakeOrDie(8, {{1, 1.0}, {5, 1.0}});
  const auto dv = Round(v, 10).value();
  EXPECT_NEAR(dv.SquaredValueAt(1) + dv.SquaredValueAt(5), 1.0, 1e-12);
  EXPECT_EQ(dv.SquaredValueAt(0), 0.0);
  EXPECT_EQ(dv.SquaredValueAt(7), 0.0);
}

TEST(WeightedJaccardTest, IdenticalVectorsGiveOne) {
  const auto v = RandomVector(200, 20, 13);
  const auto dv = Round(v, 4096).value();
  EXPECT_DOUBLE_EQ(WeightedJaccard(dv, dv).value(), 1.0);
  EXPECT_DOUBLE_EQ(WeightedUnionSize(dv, dv).value(), 1.0);
}

TEST(WeightedJaccardTest, DisjointVectorsGiveZero) {
  const auto a = Round(SparseVector::MakeOrDie(8, {{0, 1.0}}), 64).value();
  const auto b = Round(SparseVector::MakeOrDie(8, {{4, 1.0}}), 64).value();
  EXPECT_DOUBLE_EQ(WeightedJaccard(a, b).value(), 0.0);
  EXPECT_DOUBLE_EQ(WeightedUnionSize(a, b).value(), 2.0);
}

TEST(WeightedJaccardTest, MismatchedLFails) {
  const auto a = Round(SparseVector::MakeOrDie(8, {{0, 1.0}}), 64).value();
  const auto b = Round(SparseVector::MakeOrDie(8, {{0, 1.0}}), 128).value();
  EXPECT_FALSE(WeightedJaccard(a, b).ok());
  EXPECT_FALSE(WeightedUnionSize(a, b).ok());
}

TEST(WeightedJaccardTest, MatchesContinuousFormulaForLargeL) {
  const auto a = RandomVector(300, 40, 17);
  const auto b = RandomVector(300, 40, 19);
  const auto ua = a.Normalized().value();
  const auto ub = b.Normalized().value();
  // Continuous J̄ = Σ min(ã², b̃²) / Σ max(ã², b̃²).
  double min_sum = 0.0, max_sum = 0.0;
  for (uint64_t i = 0; i < 300; ++i) {
    const double x = ua.Get(i) * ua.Get(i);
    const double y = ub.Get(i) * ub.Get(i);
    min_sum += std::min(x, y);
    max_sum += std::max(x, y);
  }
  const uint64_t L = 1 << 22;
  const auto da = Round(a, L).value();
  const auto db = Round(b, L).value();
  EXPECT_NEAR(WeightedJaccard(da, db).value(), min_sum / max_sum, 1e-3);
  EXPECT_NEAR(WeightedUnionSize(da, db).value(), max_sum, 1e-3);
}

TEST(DefaultLTest, GrowsWithDimensionAndClamps) {
  EXPECT_GE(DefaultL(1), 1024u);
  EXPECT_EQ(DefaultL(10000), 10000u * 256u);
  EXPECT_GE(DefaultL(uint64_t{1} << 50), DefaultL(uint64_t{1} << 32));
  EXPECT_LE(DefaultL(~uint64_t{0}), uint64_t{1} << 40);
  // The paper's guidance: L should exceed n (for n below the clamp).
  for (uint64_t n : {100u, 10000u, 1000000u}) {
    EXPECT_GT(DefaultL(n), n);
  }
}

}  // namespace
}  // namespace ipsketch
