#include "text/tfidf.h"

#include <cmath>

#include <gtest/gtest.h>

#include "text/tokenizer.h"
#include "vector/vector_ops.h"

namespace ipsketch {
namespace {

std::vector<std::vector<uint64_t>> SmallCorpus() {
  // doc0: {a, a, b}; doc1: {b, c}; doc2: {c, c, c}.
  const uint64_t a = TokenId("a"), b = TokenId("b"), c = TokenId("c");
  return {{a, a, b}, {b, c}, {c, c, c}};
}

TEST(TfidfOptionsTest, DimensionMustBePowerOfTwo) {
  TfidfOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.dimension = 1000;
  EXPECT_FALSE(o.Validate().ok());
  o.dimension = 1024;
  EXPECT_TRUE(o.Validate().ok());
  o.dimension = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(TfidfTest, FitCountsDocumentFrequencies) {
  TfidfVectorizer v;
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  EXPECT_EQ(v.vocabulary_size(), 3u);
  EXPECT_EQ(v.num_documents(), 3u);
}

TEST(TfidfTest, FitTwiceFails) {
  TfidfVectorizer v;
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  EXPECT_EQ(v.Fit(SmallCorpus()).code(), StatusCode::kFailedPrecondition);
}

TEST(TfidfTest, TransformBeforeFitFails) {
  TfidfVectorizer v;
  EXPECT_FALSE(v.Transform({TokenId("a")}).ok());
}

TEST(TfidfTest, TransformValuesMatchFormula) {
  TfidfOptions o;
  o.l2_normalize = false;
  TfidfVectorizer v(o);
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  const auto vec = v.Transform(SmallCorpus()[0]).value();
  // doc0 = {a×2, b×1}; df(a) = 1, df(b) = 2, N = 3.
  const double idf_a = std::log(4.0 / 2.0) + 1.0;
  const double idf_b = std::log(4.0 / 3.0) + 1.0;
  EXPECT_EQ(vec.nnz(), 2u);
  const uint64_t mask = o.dimension - 1;
  EXPECT_NEAR(vec.Get(TokenId("a") & mask), 2.0 * idf_a, 1e-12);
  EXPECT_NEAR(vec.Get(TokenId("b") & mask), 1.0 * idf_b, 1e-12);
}

TEST(TfidfTest, SublinearTfDampensCounts) {
  TfidfOptions raw, sub;
  raw.l2_normalize = sub.l2_normalize = false;
  sub.sublinear_tf = true;
  TfidfVectorizer vr(raw), vs(sub);
  ASSERT_TRUE(vr.Fit(SmallCorpus()).ok());
  ASSERT_TRUE(vs.Fit(SmallCorpus()).ok());
  const uint64_t mask = raw.dimension - 1;
  const auto r = vr.Transform(SmallCorpus()[2]).value();  // c×3
  const auto s = vs.Transform(SmallCorpus()[2]).value();
  const double ratio =
      s.Get(TokenId("c") & mask) / r.Get(TokenId("c") & mask);
  EXPECT_NEAR(ratio, (1.0 + std::log(3.0)) / 3.0, 1e-12);
}

TEST(TfidfTest, NormalizedOutputHasUnitNorm) {
  TfidfVectorizer v;
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  for (const auto& doc : SmallCorpus()) {
    EXPECT_NEAR(v.Transform(doc).value().Norm(), 1.0, 1e-12);
  }
}

TEST(TfidfTest, EmptyDocumentTransformsToEmptyVector) {
  TfidfVectorizer v;
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  const auto vec = v.Transform({}).value();
  EXPECT_TRUE(vec.empty());
}

TEST(TfidfTest, UnseenFeatureGetsMaxIdf) {
  TfidfOptions o;
  o.l2_normalize = false;
  TfidfVectorizer v(o);
  ASSERT_TRUE(v.Fit(SmallCorpus()).ok());
  const auto vec = v.Transform({TokenId("zzz")}).value();
  const uint64_t mask = o.dimension - 1;
  EXPECT_NEAR(vec.Get(TokenId("zzz") & mask), std::log(4.0) + 1.0, 1e-12);
}

TEST(TfidfTest, FitTransformMatchesSeparateCalls) {
  TfidfVectorizer v1, v2;
  const auto corpus = SmallCorpus();
  const auto vecs = v1.FitTransform(corpus).value();
  ASSERT_TRUE(v2.Fit(corpus).ok());
  ASSERT_EQ(vecs.size(), corpus.size());
  for (size_t i = 0; i < corpus.size(); ++i) {
    EXPECT_TRUE(vecs[i] == v2.Transform(corpus[i]).value());
  }
}

TEST(TfidfTest, SharedVocabularyRaisesCosine) {
  // Documents sharing words should have higher cosine than disjoint ones.
  TfidfVectorizer v;
  const uint64_t a = TokenId("a"), b = TokenId("b"), c = TokenId("c"),
                 d = TokenId("d");
  const std::vector<std::vector<uint64_t>> corpus = {
      {a, b, a}, {a, b, c}, {c, d, d}};
  const auto vecs = v.FitTransform(corpus).value();
  EXPECT_GT(CosineSimilarity(vecs[0], vecs[1]),
            CosineSimilarity(vecs[0], vecs[2]));
}

}  // namespace
}  // namespace ipsketch
