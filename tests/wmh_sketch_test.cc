#include "core/wmh_sketch.h"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/rounding.h"

namespace ipsketch {
namespace {

SparseVector RandomVector(uint64_t dim, size_t nnz, uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (size_t i = 0; i < nnz; ++i) {
    double v = rng.NextGaussian();
    if (v == 0.0) v = 0.5;
    entries.push_back({i * (dim / nnz), v});
  }
  return SparseVector::MakeOrDie(dim, std::move(entries));
}

TEST(WmhOptionsTest, Validation) {
  WmhOptions o;
  EXPECT_TRUE(o.Validate().ok());
  o.num_samples = 0;
  EXPECT_FALSE(o.Validate().ok());
}

TEST(WmhSketchTest, StorageWordsAccounting) {
  WmhSketch s;
  s.hashes.resize(100);
  s.values.resize(100);
  EXPECT_DOUBLE_EQ(s.StorageWords(), 151.0);  // 1.5·m + norm
}

class WmhEngineTest : public ::testing::TestWithParam<WmhEngine> {
 protected:
  WmhOptions Options(size_t m, uint64_t seed) const {
    WmhOptions o;
    o.num_samples = m;
    o.seed = seed;
    o.L = 4096;  // small enough for the reference engine
    o.engine = GetParam();
    return o;
  }
};

TEST_P(WmhEngineTest, DeterministicInSeed) {
  const auto v = RandomVector(512, 40, 1);
  const auto s1 = SketchWmh(v, Options(32, 7)).value();
  const auto s2 = SketchWmh(v, Options(32, 7)).value();
  const auto s3 = SketchWmh(v, Options(32, 8)).value();
  EXPECT_EQ(s1.hashes, s2.hashes);
  EXPECT_EQ(s1.values, s2.values);
  EXPECT_NE(s1.hashes, s3.hashes);
}

TEST_P(WmhEngineTest, SketchShapeAndMetadata) {
  const auto v = RandomVector(512, 40, 2);
  const auto s = SketchWmh(v, Options(64, 3)).value();
  EXPECT_EQ(s.num_samples(), 64u);
  EXPECT_EQ(s.values.size(), 64u);
  EXPECT_EQ(s.seed, 3u);
  EXPECT_EQ(s.L, 4096u);
  EXPECT_EQ(s.dimension, 512u);
  EXPECT_NEAR(s.norm, v.Norm(), 1e-12);
}

TEST_P(WmhEngineTest, HashesInUnitInterval) {
  const auto v = RandomVector(512, 40, 4);
  const auto s = SketchWmh(v, Options(128, 5)).value();
  for (double h : s.hashes) {
    EXPECT_GT(h, 0.0);
    EXPECT_LT(h, 1.0);
  }
}

TEST_P(WmhEngineTest, ValuesComeFromDiscretizedVector) {
  const auto v = RandomVector(512, 40, 6);
  const auto s = SketchWmh(v, Options(64, 7)).value();
  const auto dv = Round(v, 4096).value();
  for (double value : s.values) {
    bool found = false;
    for (const auto& e : dv.entries) {
      if (std::fabs(e.value - value) < 1e-15) found = true;
    }
    EXPECT_TRUE(found) << "sampled value " << value
                       << " not in discretized support";
  }
}

TEST_P(WmhEngineTest, ScaleInvariantUpToNorm) {
  // Sketching 5a yields identical hashes/values with norm scaled by 5 —
  // the normalization property Algorithm 3 line 2 establishes.
  const auto v = RandomVector(512, 40, 8);
  const auto s1 = SketchWmh(v, Options(64, 9)).value();
  const auto s2 = SketchWmh(v.Scaled(5.0), Options(64, 9)).value();
  EXPECT_EQ(s1.hashes, s2.hashes);
  EXPECT_EQ(s1.values, s2.values);
  EXPECT_NEAR(s2.norm, 5.0 * s1.norm, 1e-9);
}

TEST_P(WmhEngineTest, EmptyVectorSketch) {
  SparseVector zero = SparseVector::FromDense(std::vector<double>(16, 0.0));
  const auto s = SketchWmh(zero, Options(32, 1)).value();
  EXPECT_EQ(s.norm, 0.0);
  for (double h : s.hashes) EXPECT_EQ(h, 1.0);
  for (double v : s.values) EXPECT_EQ(v, 0.0);
}

TEST_P(WmhEngineTest, SingleEntryVectorAlwaysSamplesIt) {
  const auto v = SparseVector::MakeOrDie(64, {{17, -4.0}});
  const auto s = SketchWmh(v, Options(32, 11)).value();
  for (double value : s.values) EXPECT_NEAR(value, -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.norm, 4.0);
}

TEST_P(WmhEngineTest, HeavyEntrySampledProportionallyToSquare) {
  // One entry carries 80% of the squared mass; it should be the argmin
  // roughly 80% of the time (Fact 5 marginal).
  const auto v = SparseVector::MakeOrDie(
      16, {{0, 2.0}, {1, 0.5}, {2, 0.5}, {3, 0.5}, {4, 0.5}});
  // squared mass: 4 / (4 + 4·0.25) = 0.8
  const auto s = SketchWmh(v, Options(4000, 13)).value();
  size_t heavy = 0;
  for (double value : s.values) {
    if (value > 0.8) ++heavy;  // ã[0] = sqrt(0.8) ≈ 0.894; others ≈ 0.22
  }
  EXPECT_NEAR(static_cast<double>(heavy) / 4000.0, 0.8, 0.03);
}

INSTANTIATE_TEST_SUITE_P(AllEngines, WmhEngineTest,
                         ::testing::Values(WmhEngine::kActiveIndex,
                                           WmhEngine::kExpandedReference,
                                           WmhEngine::kDart));

TEST(WmhDefaultLTest, AutoSelectsDefaultL) {
  const auto v = RandomVector(512, 16, 1);
  WmhOptions o;
  o.num_samples = 4;
  const auto s = SketchWmh(v, o).value();
  EXPECT_EQ(s.L, DefaultL(512));
}

TEST(WmhEngineAgreementTest, EnginesAgreeStatistically) {
  // The two engines realize the same distribution: compare the mean minimum
  // hash (a fine-grained functional of the sketch distribution) across many
  // seeds. Both should estimate 1/(L'+1)-style means identically.
  const auto v = RandomVector(256, 20, 21);
  double mean_active = 0.0, mean_reference = 0.0, mean_dart = 0.0;
  const int kSeeds = 300;
  for (int seed = 0; seed < kSeeds; ++seed) {
    WmhOptions o;
    o.num_samples = 8;
    o.seed = seed;
    o.L = 1024;
    o.engine = WmhEngine::kActiveIndex;
    const auto sa = SketchWmh(v, o).value();
    o.engine = WmhEngine::kExpandedReference;
    const auto sr = SketchWmh(v, o).value();
    o.engine = WmhEngine::kDart;
    const auto sd = SketchWmh(v, o).value();
    for (size_t i = 0; i < 8; ++i) {
      mean_active += sa.hashes[i];
      mean_reference += sr.hashes[i];
      mean_dart += sd.hashes[i];
    }
  }
  mean_active /= kSeeds * 8;
  mean_reference /= kSeeds * 8;
  mean_dart /= kSeeds * 8;
  // All ≈ 1/(L+1) since the expanded vector occupies exactly L slots.
  EXPECT_NEAR(mean_active, 1.0 / 1025.0, 0.15 / 1025.0);
  EXPECT_NEAR(mean_reference, 1.0 / 1025.0, 0.15 / 1025.0);
  EXPECT_NEAR(mean_dart, 1.0 / 1025.0, 0.15 / 1025.0);
}

}  // namespace
}  // namespace ipsketch
