// Deterministic malformed-input coverage for every wire decoder, plus a
// replayer for fuzzer-found crash files.
//
// Three layers:
//   1. Replay: every file under fuzz/regressions/ runs through every
//      decoder via the same decode-contract harness the fuzz targets use
//      (fuzz/decode_contract.h), so a crash input found by any one target
//      permanently guards the whole surface. Minimized crash files get
//      checked in there; tools/make_corpus.py regenerates the named seeds
//      for the bugs fixed when this harness was introduced.
//   2. Named regressions: each fixed decoder bug (length-field multiply
//      wrapping before the bounds check, zero-width row allocation,
//      word-count arithmetic overflow, NaN escaping a sortedness check,
//      duplicate option keys collapsing silently) is asserted rejected.
//   3. Systematic malformed inputs: for every golden payload, truncation at
//      every byte boundary; oversized length fields; unknown tag, version,
//      and engine bytes.
//
// This file is deliberately a *_test.cc under ctest: the fuzz targets only
// run in the CI fuzz-smoke job, but these locked inputs re-run everywhere.

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <string_view>

#include "fuzz/decode_contract.h"
#include "gtest/gtest.h"

namespace ipsketch {
namespace {

std::filesystem::path SourcePath(const char* relative) {
  return std::filesystem::path(IPSKETCH_SOURCE_DIR) / relative;
}

std::string ReadFileOrDie(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read " << path
                         << " (run tools/make_corpus.py?)";
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

// --- 1. replay every checked-in regression file ------------------------------

TEST(WireFuzzRegressions, ReplaysEveryRegressionFile) {
  const auto dir = SourcePath("fuzz/regressions");
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  size_t replayed = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    SCOPED_TRACE(entry.path().filename().string());
    const std::string bytes = ReadFileOrDie(entry.path());
    // A contract violation aborts; any sanitizer finding fails the build's
    // sanitizer CI jobs. Reaching the end of the loop is the assertion.
    fuzz::CheckAllDecoders(bytes);
    ++replayed;
  }
  // The named seeds for the originally fixed bugs must always be present.
  EXPECT_GE(replayed, 5u);
}

// --- 2. named regressions for fixed decoder bugs ------------------------------

TEST(WireFuzzRegressions, CountSketchShapeProductCannotWrap) {
  // reps = width = 2^32: the old `reps * width` bounds pre-check wrapped to
  // 0 and then allocated 2^32 tables.
  const std::string bytes =
      ReadFileOrDie(SourcePath("fuzz/regressions/cs_shape_overflow"));
  EXPECT_FALSE(DeserializeCountSketch(bytes).ok());
}

TEST(WireFuzzRegressions, CountSketchZeroWidthRowsRejected) {
  // width = 0 rows consume no payload bytes, so any reps value passed the
  // old remaining-bytes check and allocated that many empty rows.
  const std::string bytes =
      ReadFileOrDie(SourcePath("fuzz/regressions/cs_zero_width_rows"));
  EXPECT_FALSE(DeserializeCountSketch(bytes).ok());
}

TEST(WireFuzzRegressions, SimHashWordCountCannotWrap) {
  // num_bits near 2^64 made the old `(num_bits + 63) / 64` wrap to 0,
  // matching an empty bits vector and decoding silently.
  const std::string bytes =
      ReadFileOrDie(SourcePath("fuzz/regressions/simhash_numbits_overflow"));
  EXPECT_FALSE(DeserializeSimHash(bytes).ok());
}

TEST(WireFuzzRegressions, KmvNanHashRejected) {
  // NaN compares false both ways, so it slipped through the old `<=`
  // sortedness check into the estimator's merge loop.
  const std::string bytes =
      ReadFileOrDie(SourcePath("fuzz/regressions/kmv_nan_hash"));
  EXPECT_FALSE(DeserializeKmv(bytes).ok());
}

TEST(WireFuzzRegressions, FamilyOptionsDuplicateKeyRejected) {
  // Duplicate keys were silently collapsed by the map insert; the block is
  // defined to be canonical (strictly sorted keys), so both duplicates and
  // out-of-order keys are now errors.
  const std::string bytes =
      ReadFileOrDie(SourcePath("fuzz/regressions/family_options_dup_key"));
  wire::BoundedReader r(bytes);
  FamilyOptions options;
  EXPECT_FALSE(ReadFamilyOptions(&r, &options).ok());
}

TEST(WireFuzzRegressions, FamilyOptionsUnsortedKeysRejected) {
  std::string bytes;
  wire::AppendU64(&bytes, 512);  // dimension
  wire::AppendU64(&bytes, 16);   // num_samples
  wire::AppendU64(&bytes, 7);    // seed
  wire::AppendU64(&bytes, 2);    // param count
  wire::AppendBytes(&bytes, "engine");
  wire::AppendBytes(&bytes, "dart");
  wire::AppendBytes(&bytes, "L");  // "L" < "engine": out of order
  wire::AppendBytes(&bytes, "64");
  wire::BoundedReader r(bytes);
  FamilyOptions options;
  EXPECT_FALSE(ReadFamilyOptions(&r, &options).ok());
}

// --- 3a. truncation at every byte boundary ------------------------------------

struct GoldenCase {
  const char* corpus_file;  // relative to the repo root
  Status (*decode)(std::string_view);
};

// One decode wrapper per golden payload; the corpus seed files written by
// tools/make_corpus.py are the byte source, so this sweep also proves every
// checked-in seed is accepted by its decoder.
const GoldenCase kGoldenCases[] = {
    {"fuzz/corpus/fuzz_wmh_decode/golden_wmh",
     [](std::string_view b) { return DeserializeWmh(b).status(); }},
    {"fuzz/corpus/fuzz_wmh_decode/v1_wmh",
     [](std::string_view b) { return DeserializeWmh(b).status(); }},
    {"fuzz/corpus/fuzz_mh_decode/golden_mh",
     [](std::string_view b) { return DeserializeMh(b).status(); }},
    {"fuzz/corpus/fuzz_kmv_decode/golden_kmv",
     [](std::string_view b) { return DeserializeKmv(b).status(); }},
    {"fuzz/corpus/fuzz_jl_decode/golden_jl",
     [](std::string_view b) { return DeserializeJl(b).status(); }},
    {"fuzz/corpus/fuzz_cs_decode/golden_cs",
     [](std::string_view b) { return DeserializeCountSketch(b).status(); }},
    {"fuzz/corpus/fuzz_icws_decode/golden_icws",
     [](std::string_view b) { return DeserializeIcws(b).status(); }},
    {"fuzz/corpus/fuzz_icws_decode/v1_icws",
     [](std::string_view b) { return DeserializeIcws(b).status(); }},
    {"fuzz/corpus/fuzz_simhash_decode/golden_sim_hash",
     [](std::string_view b) { return DeserializeSimHash(b).status(); }},
    {"fuzz/corpus/fuzz_wmh_compact_decode/golden_compact_wmh",
     [](std::string_view b) { return DeserializeCompactWmh(b).status(); }},
    {"fuzz/corpus/fuzz_wmh_bbit_decode/golden_bbit_wmh",
     [](std::string_view b) { return DeserializeBbitWmh(b).status(); }},
    {"fuzz/corpus/fuzz_store_decode/golden_store_v2_empty",
     [](std::string_view b) { return DecodeSketchStore(b).status(); }},
    {"fuzz/corpus/fuzz_store_decode/golden_store_compact_empty",
     [](std::string_view b) { return DecodeSketchStore(b).status(); }},
    {"fuzz/corpus/fuzz_store_decode/v1_store_empty",
     [](std::string_view b) { return DecodeSketchStore(b).status(); }},
};

TEST(WireFuzzRegressions, TruncationAtEveryByteBoundaryRejectsCleanly) {
  for (const GoldenCase& c : kGoldenCases) {
    SCOPED_TRACE(c.corpus_file);
    const std::string bytes = ReadFileOrDie(SourcePath(c.corpus_file));
    ASSERT_FALSE(bytes.empty());
    EXPECT_TRUE(c.decode(bytes).ok()) << c.decode(bytes).ToString();
    for (size_t len = 0; len < bytes.size(); ++len) {
      const std::string_view prefix(bytes.data(), len);
      EXPECT_FALSE(c.decode(prefix).ok())
          << "prefix of length " << len << " decoded";
      // And the full contract must hold on every prefix for every decoder.
      fuzz::CheckAllDecoders(prefix);
    }
  }
}

// --- 3b. oversized length fields ----------------------------------------------

TEST(WireFuzzRegressions, OversizedVectorCountsRejected) {
  constexpr uint64_t kAbsurd = uint64_t{1} << 61;
  {
    std::string b;
    wire::AppendU32(&b, 0x49505348);
    wire::AppendU8(&b, 2);
    wire::AppendU8(&b, 4);  // kJl
    wire::AppendU64(&b, 7);    // seed
    wire::AppendU64(&b, 512);  // dimension
    wire::AppendU64(&b, kAbsurd);  // projection count, no payload behind it
    EXPECT_FALSE(DeserializeJl(b).ok());
  }
  {
    std::string b;
    wire::AppendU32(&b, 0x49505348);
    wire::AppendU8(&b, 2);
    wire::AppendU8(&b, 1);  // kWmh
    wire::AppendU64(&b, 7);     // seed
    wire::AppendU64(&b, 4096);  // L
    wire::AppendU64(&b, 512);   // dimension
    wire::AppendU8(&b, 0);      // engine
    wire::AppendDouble(&b, 1.0);   // norm
    wire::AppendU64(&b, kAbsurd);  // hashes count
    EXPECT_FALSE(DeserializeWmh(b).ok());
  }
  {
    std::string b;
    wire::AppendU64(&b, 512);      // dimension
    wire::AppendU64(&b, 16);       // num_samples
    wire::AppendU64(&b, 7);        // seed
    wire::AppendU64(&b, kAbsurd);  // param count
    wire::BoundedReader r(b);
    FamilyOptions options;
    EXPECT_FALSE(ReadFamilyOptions(&r, &options).ok());
  }
}

TEST(WireFuzzRegressions, OversizedStoreEntryCountRejected) {
  // The empty golden store's final u64 before the trailer is the entry
  // count; blow it up and re-seal the checksum so the count check itself
  // (not the trailer) must reject the file.
  std::string bytes = ReadFileOrDie(
      SourcePath("fuzz/corpus/fuzz_store_decode/golden_store_v2_empty"));
  ASSERT_GE(bytes.size(), 16u);
  std::string payload = bytes.substr(0, bytes.size() - 16);
  wire::AppendU64(&payload, uint64_t{1} << 61);  // entry count
  wire::AppendU64(&payload, fuzz::StoreChecksum(payload));
  EXPECT_FALSE(DecodeSketchStore(payload).ok());
}

// --- 3c. unknown tag / version / engine bytes ---------------------------------

TEST(WireFuzzRegressions, UnknownTagAndVersionBytesRejected) {
  const std::string golden =
      ReadFileOrDie(SourcePath("fuzz/corpus/fuzz_wmh_decode/golden_wmh"));
  for (uint8_t tag : {uint8_t{0}, uint8_t{10}, uint8_t{255}}) {
    std::string b = golden;
    b[5] = static_cast<char>(tag);  // tag byte follows magic + version
    EXPECT_FALSE(PeekSketchType(b).ok()) << unsigned{tag};
    EXPECT_FALSE(DeserializeWmh(b).ok()) << unsigned{tag};
  }
  std::string bad_version = golden;
  bad_version[4] = 3;
  EXPECT_FALSE(DeserializeWmh(bad_version).ok());
  // Tags 8/9 are v2-only: a v1 header on them is corruption, not history.
  const std::string compact = ReadFileOrDie(
      SourcePath("fuzz/corpus/fuzz_wmh_compact_decode/golden_compact_wmh"));
  std::string v1_compact = compact;
  v1_compact[4] = 1;
  EXPECT_FALSE(DeserializeCompactWmh(v1_compact).ok());
}

TEST(WireFuzzRegressions, UnknownEngineAndHashKindBytesRejected) {
  {
    std::string b = ReadFileOrDie(
        SourcePath("fuzz/corpus/fuzz_wmh_decode/golden_wmh"));
    b[30] = 99;  // engine byte: 6-byte header + seed + L + dimension
    EXPECT_FALSE(DeserializeWmh(b).ok());
  }
  {
    std::string b = ReadFileOrDie(
        SourcePath("fuzz/corpus/fuzz_icws_decode/golden_icws"));
    b[22] = 99;  // engine byte: 6-byte header + seed + dimension
    EXPECT_FALSE(DeserializeIcws(b).ok());
  }
  {
    std::string b = ReadFileOrDie(
        SourcePath("fuzz/corpus/fuzz_kmv_decode/golden_kmv"));
    b[30] = 99;  // hash-kind byte: 6-byte header + seed + dimension + k
    EXPECT_FALSE(DeserializeKmv(b).ok());
  }
  {
    // v1 store files carry a trailing engine byte in the fixed header;
    // only 0 and 1 ever existed.
    std::string bytes = ReadFileOrDie(
        SourcePath("fuzz/corpus/fuzz_store_decode/v1_store_empty"));
    ASSERT_GE(bytes.size(), 16u);
    std::string payload = bytes.substr(0, bytes.size() - 8);
    payload[4 + 1 + 8 * 5] = 2;  // magic + version + five u64 fields
    std::string resealed = payload;
    wire::AppendU64(&resealed, fuzz::StoreChecksum(payload));
    EXPECT_FALSE(DecodeSketchStore(resealed).ok());
  }
}

}  // namespace
}  // namespace ipsketch
