// Golden-bytes lock on the wire formats: the exact serialized bytes of one
// hand-built sketch per registered family, the persistence v2 store header,
// and the legacy per-sketch v1 decoding rules.
//
// Sketches are *stored* — a drifting wire format (a reordered field, a
// changed default, an endianness slip on a new platform) silently corrupts
// every existing catalog. These tests pin the bytes themselves, so format
// drift fails ctest instead of a customer's store file. The fixtures are
// built by struct assignment with exactly-representable doubles (no
// sketching, no libm), so the expected bytes are identical on every
// platform and compiler.
//
// If a test here fails because the format was *intentionally* changed: bump
// the wire version, keep a decode path for the old one (as v1 → v2 did),
// and only then regenerate the constants.

#include <string>
#include <string_view>

#include <gtest/gtest.h>

#include "service/persistence.h"
#include "service/sketch_store.h"
#include "sketch/serialize.h"
#include "sketch/simhash.h"

namespace ipsketch {
namespace {

std::string ToHex(std::string_view bytes) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (unsigned char c : bytes) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

std::string FromHex(std::string_view hex) {
  std::string out;
  out.reserve(hex.size() / 2);
  auto nibble = [](char c) {
    return c <= '9' ? c - '0' : c - 'a' + 10;
  };
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<char>((nibble(hex[i]) << 4) |
                                    nibble(hex[i + 1])));
  }
  return out;
}

// --- per-family sketch payloads (wire version 2) ----------------------------

constexpr char kGoldenWmh[] =
    "4853504902010700000000000000001000000000000000020000000000000200000000"
    "000004400200000000000000000000000000e03f000000000000d03f02000000000000"
    "00000000000000e83f000000000000e0bf";

TEST(GoldenBytesTest, Wmh) {
  WmhSketch s;
  s.seed = 7;
  s.L = 4096;
  s.dimension = 512;
  s.engine = WmhEngine::kDart;
  s.norm = 2.5;
  s.hashes = {0.5, 0.25};
  s.values = {0.75, -0.5};
  EXPECT_EQ(ToHex(SerializeWmh(s)), kGoldenWmh);

  const auto parsed = DeserializeWmh(FromHex(kGoldenWmh));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().engine, WmhEngine::kDart);
  EXPECT_EQ(parsed.value().L, 4096u);
  EXPECT_EQ(parsed.value().hashes, s.hashes);
}

constexpr char kGoldenIcws[] =
    "4853504902060700000000000000000200000000000001001000000000000000000000"
    "0000044002000000000000001581e97df41022112a0000000000000002000000000000"
    "00000000000000e83f000000000000e0bf";

TEST(GoldenBytesTest, Icws) {
  IcwsSketch s;
  s.seed = 7;
  s.dimension = 512;
  s.norm = 2.5;
  s.engine = IcwsEngine::kDart;
  s.L = 4096;
  s.fingerprints = {1234567890123456789ull, 42};
  s.values = {0.75, -0.5};
  EXPECT_EQ(ToHex(SerializeIcws(s)), kGoldenIcws);

  const auto parsed = DeserializeIcws(FromHex(kGoldenIcws));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().engine, IcwsEngine::kDart);
  EXPECT_EQ(parsed.value().L, 4096u);
  EXPECT_EQ(parsed.value().fingerprints, s.fingerprints);
}

constexpr char kGoldenCompactWmh[] =
    "4853504902080700000000000000001000000000000000020000000000000200000000"
    "000004400200000000000000000000800000004002000000000000000000403f000000"
    "bf";

TEST(GoldenBytesTest, CompactWmh) {
  CompactWmhSketch s;
  s.seed = 7;
  s.L = 4096;
  s.dimension = 512;
  s.engine = WmhEngine::kDart;
  s.norm = 2.5;
  s.hashes = {0x80000000u, 0x40000000u};  // QuantizeHash(0.5), (0.25)
  s.values = {0.75f, -0.5f};
  EXPECT_EQ(ToHex(SerializeCompactWmh(s)), kGoldenCompactWmh);

  const auto parsed = DeserializeCompactWmh(FromHex(kGoldenCompactWmh));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().engine, WmhEngine::kDart);
  EXPECT_EQ(parsed.value().L, 4096u);
  EXPECT_EQ(parsed.value().hashes, s.hashes);
  EXPECT_EQ(parsed.value().values, s.values);
  // Re-encode is byte-identical (float32 values survive as bit patterns).
  EXPECT_EQ(ToHex(SerializeCompactWmh(parsed.value())), kGoldenCompactWmh);
}

constexpr char kGoldenBbitWmh[] =
    "4853504902090700000000000000001000000000000000020000000000000210000000"
    "0000000000000440020000000000000034120000efbe00000200000000000000000040"
    "3f000000bf";

TEST(GoldenBytesTest, BbitWmh) {
  BbitWmhSketch s;
  s.seed = 7;
  s.L = 4096;
  s.dimension = 512;
  s.engine = WmhEngine::kDart;
  s.bits = 16;
  s.norm = 2.5;
  s.fingerprints = {0x1234u, 0xbeefu};
  s.values = {0.75f, -0.5f};
  EXPECT_EQ(ToHex(SerializeBbitWmh(s)), kGoldenBbitWmh);

  const auto parsed = DeserializeBbitWmh(FromHex(kGoldenBbitWmh));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().engine, WmhEngine::kDart);
  EXPECT_EQ(parsed.value().bits, 16u);
  EXPECT_EQ(parsed.value().fingerprints, s.fingerprints);
  EXPECT_EQ(ToHex(SerializeBbitWmh(parsed.value())), kGoldenBbitWmh);

  // Declared-width violations are corruption, not data: a fingerprint
  // above 2ᵇ − 1 must be rejected.
  std::string wide = FromHex(kGoldenBbitWmh);
  // Third fingerprint byte (bits 16..23 of the first fingerprint) is at
  // offset 4+1+1 + 24 + 1 + 4 + 8 + 8 + 2 = 53.
  wide[53] = 0x01;
  EXPECT_FALSE(DeserializeBbitWmh(wide).ok());
}

constexpr char kGoldenMh[] =
    "4853504902020700000000000000000200000000000000020000000000000000000000"
    "0000e03f000000000000d03f0200000000000000000000000000f03f00000000000000"
    "00";

TEST(GoldenBytesTest, Mh) {
  MhSketch s;
  s.seed = 7;
  s.dimension = 512;
  s.hash_kind = HashKind::kMixed64;
  s.hashes = {0.5, 0.25};
  s.values = {1.0, 0.0};
  EXPECT_EQ(ToHex(SerializeMh(s)), kGoldenMh);
  EXPECT_TRUE(DeserializeMh(FromHex(kGoldenMh)).ok());
}

constexpr char kGoldenKmv[] =
    "4853504902030700000000000000000200000000000002000000000000000002000000"
    "00000000000000000000c03f0000000000000840000000000000e03f000000000000f0"
    "bf";

TEST(GoldenBytesTest, Kmv) {
  KmvSketch s;
  s.seed = 7;
  s.dimension = 512;
  s.k = 2;
  s.hash_kind = HashKind::kMixed64;
  s.samples = {{0.125, 3.0}, {0.5, -1.0}};
  EXPECT_EQ(ToHex(SerializeKmv(s)), kGoldenKmv);
  EXPECT_TRUE(DeserializeKmv(FromHex(kGoldenKmv)).ok());
}

constexpr char kGoldenJl[] =
    "4853504902040700000000000000000200000000000002000000000000000000000000"
    "00f83f00000000000004c0";

TEST(GoldenBytesTest, Jl) {
  JlSketch s;
  s.seed = 7;
  s.dimension = 512;
  s.projection = {1.5, -2.5};
  EXPECT_EQ(ToHex(SerializeJl(s)), kGoldenJl);
  EXPECT_TRUE(DeserializeJl(FromHex(kGoldenJl)).ok());
}

constexpr char kGoldenCs[] =
    "4853504902050700000000000000000200000000000002000000000000000200000000"
    "000000000000000000f03f000000000000f0bf000000000000e03f000000000000d03f";

TEST(GoldenBytesTest, CountSketch) {
  CountSketch s;
  s.seed = 7;
  s.dimension = 512;
  s.tables = {{1.0, -1.0}, {0.5, 0.25}};
  EXPECT_EQ(ToHex(SerializeCountSketch(s)), kGoldenCs);
  EXPECT_TRUE(DeserializeCountSketch(FromHex(kGoldenCs)).ok());
}

constexpr char kGoldenSimHash[] =
    "4853504902070700000000000000000200000000000060000000000000000000000000"
    "0004400200000000000000efcdab89674523010000ffff00000000";

TEST(GoldenBytesTest, SimHash) {
  SimHashSketch s;
  s.seed = 7;
  s.dimension = 512;
  s.num_bits = 96;
  s.bits = {0x0123456789abcdefULL, 0x00000000ffff0000ULL};
  s.norm = 2.5;
  EXPECT_EQ(ToHex(SerializeSimHash(s)), kGoldenSimHash);
  const auto parsed = DeserializeSimHash(FromHex(kGoldenSimHash));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().num_bits, 96u);
  EXPECT_EQ(parsed.value().bits, s.bits);
  EXPECT_EQ(parsed.value().norm, 2.5);
}

// --- persistence v2 store header --------------------------------------------

// An *empty* store encodes header + count + checksum only — fully
// deterministic with hand-picked options (nothing libm-dependent).
constexpr char kGoldenStoreV2Empty[] =
    "54535049020300000000000000776d6802000000000000000002000000000000400000"
    "00000000002a00000000000000020000000000000001000000000000004c0400000000"
    "000000343039360600000000000000656e67696e650400000000000000646172740000"
    "000000000000210d05a4a2b1609b";

TEST(GoldenBytesTest, PersistenceV2Header) {
  SketchStoreOptions opts;
  opts.family = "wmh";
  opts.sketch.dimension = 512;
  opts.sketch.num_samples = 64;
  opts.sketch.seed = 42;
  opts.sketch.params["L"] = "4096";
  opts.sketch.params["engine"] = "dart";
  opts.num_shards = 2;
  auto store = SketchStore::Make(opts).value();
  const std::string bytes = EncodeSketchStore(store);
  // Layout: [magic "IPST"][version 2][family "wmh"][num_shards]
  // [dimension][num_samples][seed][param count]["L"="4096"]
  // ["engine"="dart"][entry count 0][fnv1a trailer].
  EXPECT_EQ(ToHex(bytes), kGoldenStoreV2Empty);

  // The golden bytes decode back to exactly these resolved options.
  auto decoded = DecodeSketchStore(bytes);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().options().sketch, store.options().sketch);
}

// A compact-catalog store file: same v2 container, family "wmh_compact",
// the resolved {L, engine} identity in the params block.
constexpr char kGoldenStoreCompactEmpty[] =
    "54535049020b00000000000000776d685f636f6d706163740200000000000000000200"
    "000000000040000000000000002a000000000000000200000000000000010000000000"
    "00004c0400000000000000343039360600000000000000656e67696e65040000000000"
    "00006461727400000000000000005b962bedaca8d44b";

TEST(GoldenBytesTest, PersistenceCompactStoreHeader) {
  SketchStoreOptions opts;
  opts.family = "wmh_compact";
  opts.sketch.dimension = 512;
  opts.sketch.num_samples = 64;
  opts.sketch.seed = 42;
  opts.sketch.params["L"] = "4096";
  opts.sketch.params["engine"] = "dart";
  opts.num_shards = 2;
  auto store = SketchStore::Make(opts).value();
  const std::string bytes = EncodeSketchStore(store);
  EXPECT_EQ(ToHex(bytes), kGoldenStoreCompactEmpty);

  auto decoded = DecodeSketchStore(bytes);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().options().family, "wmh_compact");
  EXPECT_EQ(decoded.value().options().sketch, store.options().sketch);
}

// --- legacy v1 per-sketch bytes ---------------------------------------------

// Version-1 payloads predate the engine fields; they must keep decoding,
// with the engines every v1 producer used: WMH kActiveIndex, ICWS kExact.
TEST(GoldenBytesTest, LegacyV1WmhBytesDecodeAsActiveIndex) {
  std::string v1;
  wire::AppendU32(&v1, 0x49505348);  // "IPSH"
  wire::AppendU8(&v1, 1);            // version 1
  wire::AppendU8(&v1, 1);            // kWmh
  wire::AppendU64(&v1, 7);           // seed
  wire::AppendU64(&v1, 4096);        // L
  wire::AppendU64(&v1, 512);         // dimension  (no engine byte in v1)
  wire::AppendDouble(&v1, 2.5);      // norm
  wire::AppendU64(&v1, 1);
  wire::AppendDouble(&v1, 0.5);      // hashes
  wire::AppendU64(&v1, 1);
  wire::AppendDouble(&v1, 0.75);     // values

  const auto parsed = DeserializeWmh(v1);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().engine, WmhEngine::kActiveIndex);
  EXPECT_EQ(parsed.value().L, 4096u);
  EXPECT_EQ(parsed.value().norm, 2.5);
  // Re-encoding writes the current version; v1 is decode-only.
  EXPECT_EQ(ToHex(SerializeWmh(parsed.value())).substr(8, 2), "02");
}

TEST(GoldenBytesTest, LegacyV1IcwsBytesDecodeAsExact) {
  std::string v1;
  wire::AppendU32(&v1, 0x49505348);  // "IPSH"
  wire::AppendU8(&v1, 1);            // version 1
  wire::AppendU8(&v1, 6);            // kIcws
  wire::AppendU64(&v1, 7);           // seed
  wire::AppendU64(&v1, 512);         // dimension  (no engine/L in v1)
  wire::AppendDouble(&v1, 2.5);      // norm
  wire::AppendU64(&v1, 1);
  wire::AppendU64(&v1, 42);          // fingerprints
  wire::AppendU64(&v1, 1);
  wire::AppendDouble(&v1, 0.75);     // values

  const auto parsed = DeserializeIcws(v1);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().engine, IcwsEngine::kExact);
  EXPECT_EQ(parsed.value().L, 0u);
}

TEST(GoldenBytesTest, UnknownVersionsAndEnginesAreRejected) {
  std::string v3 = FromHex(kGoldenWmh);
  v3[4] = 3;  // version byte
  EXPECT_FALSE(DeserializeWmh(v3).ok());

  std::string bad_engine = FromHex(kGoldenWmh);
  bad_engine[4 + 1 + 1 + 24] = 9;  // engine byte after seed/L/dimension
  EXPECT_FALSE(DeserializeWmh(bad_engine).ok());
}

TEST(GoldenBytesTest, QuantizedPayloadsRejectVersionOne) {
  // The quantized tags are new in wire version 2: no v1 producer ever
  // existed, so a v1 header on them is corruption, never legacy data.
  for (const char* golden : {kGoldenCompactWmh, kGoldenBbitWmh}) {
    std::string v1 = FromHex(golden);
    v1[4] = 1;  // version byte
    const bool compact = golden == kGoldenCompactWmh;
    EXPECT_FALSE(compact ? DeserializeCompactWmh(v1).ok()
                         : DeserializeBbitWmh(v1).ok());
  }
  // The engine byte is validated exactly as for full-precision WMH.
  std::string bad_engine = FromHex(kGoldenCompactWmh);
  bad_engine[4 + 1 + 1 + 24] = 9;
  EXPECT_FALSE(DeserializeCompactWmh(bad_engine).ok());
}

}  // namespace
}  // namespace ipsketch
