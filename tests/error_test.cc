#include "expt/error.h"

#include <gtest/gtest.h>

namespace ipsketch {
namespace {

TEST(ScaledErrorTest, BasicScaling) {
  EXPECT_DOUBLE_EQ(ScaledError(11.0, 10.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ScaledError(9.0, 10.0, 2.0), 0.5);
  EXPECT_DOUBLE_EQ(ScaledError(10.0, 10.0, 2.0), 0.0);
}

TEST(ScaledErrorTest, ZeroNormFallsBackToAbsolute) {
  EXPECT_DOUBLE_EQ(ScaledError(3.0, 1.0, 0.0), 2.0);
}

TEST(ScaledErrorTest, VectorOverloadMatchesManual) {
  const auto a = SparseVector::MakeOrDie(8, {{0, 3.0}, {1, 4.0}});  // norm 5
  const auto b = SparseVector::MakeOrDie(8, {{0, 1.0}});            // norm 1
  // ⟨a,b⟩ = 3; scaled error of estimate 4 = |4−3|/(5·1) = 0.2.
  EXPECT_DOUBLE_EQ(ScaledError(4.0, a, b), 0.2);
}

TEST(ScaledErrorTest, SymmetricInSign) {
  const auto a = SparseVector::MakeOrDie(8, {{0, 2.0}});
  const auto b = SparseVector::MakeOrDie(8, {{0, -2.0}});
  // truth −4, norms 2·2 = 4.
  EXPECT_DOUBLE_EQ(ScaledError(0.0, a, b), 1.0);
}

}  // namespace
}  // namespace ipsketch
