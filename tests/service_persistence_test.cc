#include "service/persistence.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "data/synthetic.h"
#include "service/query_engine.h"

namespace ipsketch {
namespace {

constexpr uint64_t kDim = 512;

SparseVector RandomVector(uint64_t seed) {
  Xoshiro256StarStar rng(seed);
  std::vector<Entry> entries;
  for (uint64_t index : SampleDistinctIndices(kDim, 24, seed)) {
    entries.push_back({index, rng.NextUnit() * 2.0 - 1.0});
  }
  return SparseVector::MakeOrDie(kDim, std::move(entries));
}

SketchStore MakePopulatedStore(size_t count) {
  SketchStoreOptions opts;
  opts.dimension = kDim;
  opts.num_shards = 8;
  opts.sketch.num_samples = 64;
  opts.sketch.seed = 42;
  auto store = SketchStore::Make(opts).value();
  for (uint64_t i = 0; i < count; ++i) {
    EXPECT_TRUE(store.BuildAndInsert(i * 11, RandomVector(i)).ok());
  }
  return store;
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(StorePersistenceTest, SaveLoadPreservesOptionsAndContents) {
  const auto store = MakePopulatedStore(60);
  const std::string path = TempPath("store_roundtrip.bin");
  ASSERT_TRUE(SaveSketchStore(store, path).ok());

  auto loaded = LoadSketchStore(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const SketchStore& reloaded = loaded.value();

  EXPECT_EQ(reloaded.options().dimension, store.options().dimension);
  EXPECT_EQ(reloaded.options().num_shards, store.options().num_shards);
  EXPECT_EQ(reloaded.options().sketch.num_samples,
            store.options().sketch.num_samples);
  EXPECT_EQ(reloaded.options().sketch.seed, store.options().sketch.seed);
  EXPECT_EQ(reloaded.options().sketch.L, store.options().sketch.L);
  EXPECT_EQ(reloaded.size(), store.size());
  EXPECT_EQ(reloaded.Ids(), store.Ids());
  std::remove(path.c_str());
}

TEST(StorePersistenceTest, ReloadedEstimatesAreByteIdentical) {
  const auto store = MakePopulatedStore(60);
  const std::string path = TempPath("store_estimates.bin");
  ASSERT_TRUE(SaveSketchStore(store, path).ok());
  auto loaded = LoadSketchStore(path);
  ASSERT_TRUE(loaded.ok());

  QueryEngine before(&store);
  QueryEngine after(&loaded.value());
  const auto ids = store.Ids();
  Xoshiro256StarStar rng(123);
  for (int trial = 0; trial < 100; ++trial) {
    const uint64_t a = ids[rng.NextBounded(ids.size())];
    const uint64_t b = ids[rng.NextBounded(ids.size())];
    const double x = before.EstimateInnerProduct(a, b).value();
    const double y = after.EstimateInnerProduct(a, b).value();
    // Exact double equality: serialization stores IEEE-754 bit patterns, so
    // the reloaded estimate must be the same to the last bit.
    EXPECT_EQ(x, y) << "pair (" << a << ", " << b << ")";
  }
  std::remove(path.c_str());
}

TEST(StorePersistenceTest, EncodingIsDeterministic) {
  const auto store = MakePopulatedStore(30);
  const std::string bytes = EncodeSketchStore(store);
  EXPECT_EQ(bytes, EncodeSketchStore(store));

  auto reloaded = DecodeSketchStore(bytes);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(EncodeSketchStore(reloaded.value()), bytes);
}

TEST(StorePersistenceTest, EmptyStoreRoundTrips) {
  const auto store = MakePopulatedStore(0);
  auto reloaded = DecodeSketchStore(EncodeSketchStore(store));
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(reloaded.value().size(), 0u);
}

TEST(StorePersistenceTest, RejectsCorruptedBytes) {
  const auto store = MakePopulatedStore(10);
  std::string bytes = EncodeSketchStore(store);

  EXPECT_FALSE(DecodeSketchStore("").ok());
  EXPECT_FALSE(DecodeSketchStore("IPSX junk").ok());
  // Truncation anywhere inside the entry stream must be detected.
  EXPECT_FALSE(DecodeSketchStore(
                   std::string_view(bytes).substr(0, bytes.size() - 3))
                   .ok());
  EXPECT_FALSE(DecodeSketchStore(
                   std::string_view(bytes).substr(0, bytes.size() / 2))
                   .ok());
  // Trailing garbage after the last entry must be detected.
  EXPECT_FALSE(DecodeSketchStore(bytes + "x").ok());
  // A flipped magic byte must be detected.
  std::string bad_magic = bytes;
  bad_magic[0] ^= 0xff;
  EXPECT_FALSE(DecodeSketchStore(bad_magic).ok());
  // A flipped byte *inside a sketch payload* is structurally valid wire
  // data; the checksum trailer must catch it at every position.
  for (size_t pos = 0; pos < bytes.size(); pos += 7) {
    std::string flipped = bytes;
    flipped[pos] ^= 0x41;
    EXPECT_FALSE(DecodeSketchStore(flipped).ok()) << "flip at " << pos;
  }
}

TEST(StorePersistenceTest, LoadMissingFileIsNotFound) {
  EXPECT_EQ(LoadSketchStore(TempPath("does_not_exist.bin")).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace ipsketch
